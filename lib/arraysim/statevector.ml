open Qdt_linalg
open Qdt_circuit

(* The amplitudes live in one flat interleaved float buffer (amplitude k
   at offsets 2k / 2k+1 — the Vec layout, see vec.mli "Storage"), so the
   gate kernels below update pairs of raw floats in place and allocate
   nothing per gate.  [scratch] is a lazily grown buffer reused across
   calls that need a dim-sized temporary (sampling); its size is exported
   through the [qdt.sv.scratch_bytes] gauge. *)
type t = { n : int; buf : float array; mutable scratch : float array }

let g_scratch = Qdt_obs.Metrics.gauge "qdt.sv.scratch_bytes"
let w_state = Qdt_obs.Watermark.watermark "sv.peak_state_bytes"
let w_scratch = Qdt_obs.Watermark.watermark "sv.peak_scratch_bytes"

let scratch_floats sv n =
  if Array.length sv.scratch < n then begin
    sv.scratch <- Array.make n 0.0;
    Qdt_obs.Metrics.set g_scratch (float_of_int (8 * n));
    Qdt_obs.Watermark.observe_int w_scratch (8 * n)
  end;
  sv.scratch

let scratch_bytes sv = 8 * Array.length sv.scratch

let create n =
  if n < 1 || n > 26 then invalid_arg "Statevector.create: unsupported qubit count";
  let buf = Array.make (2 * (1 lsl n)) 0.0 in
  buf.(0) <- 1.0;
  Qdt_obs.Watermark.observe_int w_state (8 * Array.length buf);
  { n; buf; scratch = [||] }

(* Return to |0…0⟩ in place, keeping the state buffer and any grown
   scratch — the session-reuse path of the arrays backend. *)
let reset sv =
  Array.fill sv.buf 0 (Array.length sv.buf) 0.0;
  sv.buf.(0) <- 1.0

let of_vec n v =
  if Vec.length v <> 1 lsl n then invalid_arg "Statevector.of_vec: wrong length";
  Qdt_obs.Watermark.observe_int w_state (16 * Vec.length v);
  { n; buf = Array.copy (Vec.buffer v); scratch = [||] }

let to_vec sv = Vec.of_buffer (Array.copy sv.buf)

(* Zero-copy view: mutating the statevector mutates the returned vector. *)
let vec_view sv = Vec.of_buffer sv.buf

let overwrite sv v =
  if 2 * Vec.length v <> Array.length sv.buf then
    invalid_arg "Statevector.overwrite: length mismatch";
  Array.blit (Vec.buffer v) 0 sv.buf 0 (Array.length sv.buf)

let copy sv = { sv with buf = Array.copy sv.buf; scratch = [||] }
let num_qubits sv = sv.n

let amplitude sv k = { Cx.re = sv.buf.(2 * k); im = sv.buf.((2 * k) + 1) }

let probability sv k =
  let re = sv.buf.(2 * k) and im = sv.buf.((2 * k) + 1) in
  (re *. re) +. (im *. im)

let probabilities sv = Array.init (1 lsl sv.n) (probability sv)

(* Every [for k = 0 to size-1] sweep below goes through
   [Qdt_par.parallel_for] with the default chunk (2^14 indices): states of
   ≤ 14 qubits fit in one chunk and run serially inline (zero overhead,
   bit-identical to the pre-parallel code), larger states split across the
   domain pool.  The sweeps are race-free under arbitrary chunking because
   only base indices (target bit(s) 0, controls satisfied) touch the
   buffer, and an index's partners are never base indices of any other
   iteration.

   Reductions use [chunked_sum]: one partial per fixed-boundary chunk,
   folded in chunk order, so the result is identical at any job count
   >= 2; at jobs = 1 the legacy single-accumulator order is preserved
   exactly. *)
let par_chunk = Qdt_par.default_chunk

let chunked_sum n partial =
  if n <= 0 then 0.0
  else if Qdt_par.jobs () <= 1 || n <= par_chunk then partial 0 n
  else begin
    let nchunks = (n + par_chunk - 1) / par_chunk in
    let partials = Array.make nchunks 0.0 in
    Qdt_par.parallel_for ~chunk:par_chunk 0 n (fun lo hi ->
        partials.(lo / par_chunk) <- partial lo hi);
    let acc = ref 0.0 in
    for c = 0 to nchunks - 1 do
      acc := !acc +. partials.(c)
    done;
    !acc
  end

(* Probabilities into [dst] (first [2^n] entries), no allocation. *)
let probabilities_into sv dst =
  Qdt_par.parallel_for ~chunk:par_chunk 0 (1 lsl sv.n) (fun lo hi ->
      for k = lo to hi - 1 do
        dst.(k) <- probability sv k
      done)

let norm2 sv =
  let buf = sv.buf in
  chunked_sum (Array.length buf) (fun lo hi ->
      let acc = ref 0.0 in
      for i = lo to hi - 1 do
        acc := !acc +. (buf.(i) *. buf.(i))
      done;
      !acc)

let norm sv = Float.sqrt (norm2 sv)

let control_mask controls =
  List.fold_left (fun mask q -> mask lor (1 lsl q)) 0 controls

(* Core kernel: iterate over all basis indices with target bit 0 and all
   control bits 1, updating the (k, k + 2^target) amplitude pair over the
   raw floats.

   Diagonal (Z, S, T, Rz, phase) and anti-diagonal (X, Y) gates get a fast
   path: one complex multiply per amplitude instead of the full 2x2
   combine.  The gate constructors in {!Qdt_linalg.Gates} place exact
   [Cx.zero] in the off/on-diagonal entries, so an exact test suffices —
   a matrix that is merely numerically close keeps the general kernel. *)
let apply_matrix sv m ~controls ~target =
  if Mat.rows m <> 2 || Mat.cols m <> 2 then
    invalid_arg "Statevector.apply_matrix: need a 2x2 matrix";
  let mb = Mat.buffer m in
  let u00r = mb.(0) and u00i = mb.(1) and u01r = mb.(2) and u01i = mb.(3) in
  let u10r = mb.(4) and u10i = mb.(5) and u11r = mb.(6) and u11i = mb.(7) in
  let stride = 1 lsl target in
  let cmask = control_mask controls in
  let buf = sv.buf in
  let size = 1 lsl sv.n in
  if u01r = 0.0 && u01i = 0.0 && u10r = 0.0 && u10i = 0.0 then begin
    (* Diagonal: amp(k) picks up u00 or u11 from its target bit alone. *)
    let skip00 = u00r = 1.0 && u00i = 0.0 in
    let skip11 = u11r = 1.0 && u11i = 0.0 in
    Qdt_par.parallel_for ~chunk:par_chunk 0 size (fun lo hi ->
        for k = lo to hi - 1 do
          if k land cmask = cmask then
            if k land stride = 0 then begin
              if not skip00 then begin
                let o = 2 * k in
                let ar = buf.(o) and ai = buf.(o + 1) in
                buf.(o) <- (u00r *. ar) -. (u00i *. ai);
                buf.(o + 1) <- (u00r *. ai) +. (u00i *. ar)
              end
            end
            else if not skip11 then begin
              let o = 2 * k in
              let ar = buf.(o) and ai = buf.(o + 1) in
              buf.(o) <- (u11r *. ar) -. (u11i *. ai);
              buf.(o + 1) <- (u11r *. ai) +. (u11i *. ar)
            end
        done)
  end
  else if u00r = 0.0 && u00i = 0.0 && u11r = 0.0 && u11i = 0.0 then
    (* Anti-diagonal: the pair swaps with scaling; one multiply each. *)
    Qdt_par.parallel_for ~chunk:par_chunk 0 size (fun lo hi ->
        for k = lo to hi - 1 do
          if k land stride = 0 && k land cmask = cmask then begin
            let o0 = 2 * k and o1 = 2 * (k + stride) in
            let a0r = buf.(o0) and a0i = buf.(o0 + 1) in
            let a1r = buf.(o1) and a1i = buf.(o1 + 1) in
            buf.(o0) <- (u01r *. a1r) -. (u01i *. a1i);
            buf.(o0 + 1) <- (u01r *. a1i) +. (u01i *. a1r);
            buf.(o1) <- (u10r *. a0r) -. (u10i *. a0i);
            buf.(o1 + 1) <- (u10r *. a0i) +. (u10i *. a0r)
          end
        done)
  else
    Qdt_par.parallel_for ~chunk:par_chunk 0 size (fun lo hi ->
        for k = lo to hi - 1 do
          if k land stride = 0 && k land cmask = cmask then begin
            let o0 = 2 * k and o1 = 2 * (k + stride) in
            let a0r = buf.(o0) and a0i = buf.(o0 + 1) in
            let a1r = buf.(o1) and a1i = buf.(o1 + 1) in
            buf.(o0) <- (u00r *. a0r) -. (u00i *. a0i) +. ((u01r *. a1r) -. (u01i *. a1i));
            buf.(o0 + 1) <- (u00r *. a0i) +. (u00i *. a0r) +. ((u01r *. a1i) +. (u01i *. a1r));
            buf.(o1) <- (u10r *. a0r) -. (u10i *. a0i) +. ((u11r *. a1r) -. (u11i *. a1i));
            buf.(o1 + 1) <- (u10r *. a0i) +. (u10i *. a0r) +. ((u11r *. a1i) +. (u11i *. a1r))
          end
        done)

(* Fused two-qubit kernel: one pass applying a dense 4x4 to every
   (q0, q1) amplitude quadruple.  Matrix index convention matches
   {!Unitary_builder.instruction_matrix} on 2 qubits: bit 0 of the matrix
   index is qubit [q0], bit 1 is qubit [q1]. *)
let apply_matrix2 sv m ~controls ~q0 ~q1 =
  if Mat.rows m <> 4 || Mat.cols m <> 4 then
    invalid_arg "Statevector.apply_matrix2: need a 4x4 matrix";
  if q0 = q1 then invalid_arg "Statevector.apply_matrix2: distinct qubits required";
  let mb = Mat.buffer m in
  let b0 = 1 lsl q0 and b1 = 1 lsl q1 in
  let pair_mask = b0 lor b1 in
  let cmask = control_mask controls in
  let buf = sv.buf in
  let size = 1 lsl sv.n in
  Qdt_par.parallel_for ~chunk:par_chunk 0 size (fun lo hi ->
      for k = lo to hi - 1 do
        if k land pair_mask = 0 && k land cmask = cmask then begin
          let o0 = 2 * k
          and o1 = 2 * (k + b0)
          and o2 = 2 * (k + b1)
          and o3 = 2 * (k + b0 + b1) in
          let a0r = buf.(o0) and a0i = buf.(o0 + 1) in
          let a1r = buf.(o1) and a1i = buf.(o1 + 1) in
          let a2r = buf.(o2) and a2i = buf.(o2 + 1) in
          let a3r = buf.(o3) and a3i = buf.(o3 + 1) in
          let row_re j =
            let b = 8 * j in
            (mb.(b) *. a0r) -. (mb.(b + 1) *. a0i)
            +. ((mb.(b + 2) *. a1r) -. (mb.(b + 3) *. a1i))
            +. ((mb.(b + 4) *. a2r) -. (mb.(b + 5) *. a2i))
            +. ((mb.(b + 6) *. a3r) -. (mb.(b + 7) *. a3i))
          and row_im j =
            let b = 8 * j in
            (mb.(b) *. a0i) +. (mb.(b + 1) *. a0r)
            +. ((mb.(b + 2) *. a1i) +. (mb.(b + 3) *. a1r))
            +. ((mb.(b + 4) *. a2i) +. (mb.(b + 5) *. a2r))
            +. ((mb.(b + 6) *. a3i) +. (mb.(b + 7) *. a3r))
          in
          buf.(o0) <- row_re 0;
          buf.(o0 + 1) <- row_im 0;
          buf.(o1) <- row_re 1;
          buf.(o1 + 1) <- row_im 1;
          buf.(o2) <- row_re 2;
          buf.(o2 + 1) <- row_im 2;
          buf.(o3) <- row_re 3;
          buf.(o3 + 1) <- row_im 3
        end
      done)

let apply_gate sv gate ~controls ~target =
  apply_matrix sv (Gate.matrix gate) ~controls ~target

let apply_swap sv ~controls a b =
  let cmask = control_mask controls in
  let ba = 1 lsl a and bb = 1 lsl b in
  let buf = sv.buf in
  Qdt_par.parallel_for ~chunk:par_chunk 0 (1 lsl sv.n) (fun lo hi ->
      for k = lo to hi - 1 do
        (* Swap amplitudes of index pairs that differ as (a=1,b=0) ↔ (a=0,b=1);
           visiting only the (a=1,b=0) representative avoids double swaps. *)
        if k land ba <> 0 && k land bb = 0 && k land cmask = cmask then begin
          let partner = k lxor ba lxor bb in
          let ok = 2 * k and op = 2 * partner in
          let tr = buf.(ok) and ti = buf.(ok + 1) in
          buf.(ok) <- buf.(op);
          buf.(ok + 1) <- buf.(op + 1);
          buf.(op) <- tr;
          buf.(op + 1) <- ti
        end
      done)

let rescale sv s =
  let buf = sv.buf in
  Qdt_par.parallel_for ~chunk:par_chunk 0 (Array.length buf) (fun lo hi ->
      for i = lo to hi - 1 do
        buf.(i) <- s *. buf.(i)
      done)

let renormalise sv =
  let n = norm sv in
  if n < 1e-14 then invalid_arg "Statevector: state collapsed to zero norm";
  rescale sv (1.0 /. n)

(* [kraus_weight sv k ~target] is ‖K|ψ⟩‖² for a single-qubit Kraus
   operator [K] on [target], computed by pure arithmetic over the pairs —
   no copy of the state, no allocation.  Used by the trajectory sampler
   to pick a branch before committing to the in-place application. *)
let kraus_weight sv m ~target =
  if Mat.rows m <> 2 || Mat.cols m <> 2 then
    invalid_arg "Statevector.kraus_weight: need a 2x2 matrix";
  let mb = Mat.buffer m in
  let u00r = mb.(0) and u00i = mb.(1) and u01r = mb.(2) and u01i = mb.(3) in
  let u10r = mb.(4) and u10i = mb.(5) and u11r = mb.(6) and u11i = mb.(7) in
  let stride = 1 lsl target in
  let buf = sv.buf in
  chunked_sum (1 lsl sv.n) (fun lo hi ->
      let acc = ref 0.0 in
      for k = lo to hi - 1 do
        if k land stride = 0 then begin
          let o0 = 2 * k and o1 = 2 * (k + stride) in
          let a0r = buf.(o0) and a0i = buf.(o0 + 1) in
          let a1r = buf.(o1) and a1i = buf.(o1 + 1) in
          let n0r = (u00r *. a0r) -. (u00i *. a0i) +. ((u01r *. a1r) -. (u01i *. a1i)) in
          let n0i = (u00r *. a0i) +. (u00i *. a0r) +. ((u01r *. a1i) +. (u01i *. a1r)) in
          let n1r = (u10r *. a0r) -. (u10i *. a0i) +. ((u11r *. a1r) -. (u11i *. a1i)) in
          let n1i = (u10r *. a0i) +. (u10i *. a0r) +. ((u11r *. a1i) +. (u11i *. a1r)) in
          acc := !acc +. (n0r *. n0r) +. (n0i *. n0i) +. (n1r *. n1r) +. (n1i *. n1i)
        end
      done;
      !acc)

let project sv q bit =
  let mask = 1 lsl q in
  let buf = sv.buf in
  Qdt_par.parallel_for ~chunk:par_chunk 0 (1 lsl sv.n) (fun lo hi ->
      for k = lo to hi - 1 do
        let has = if k land mask <> 0 then 1 else 0 in
        if has <> bit then begin
          buf.(2 * k) <- 0.0;
          buf.((2 * k) + 1) <- 0.0
        end
      done)

let prob_of_bit sv q bit =
  let mask = 1 lsl q in
  chunked_sum (1 lsl sv.n) (fun lo hi ->
      let acc = ref 0.0 in
      for k = lo to hi - 1 do
        let has = if k land mask <> 0 then 1 else 0 in
        if has = bit then acc := !acc +. probability sv k
      done;
      !acc)

let measure_qubit sv ~rng q =
  let p1 = prob_of_bit sv q 1 in
  let bit = if Random.State.float rng 1.0 < p1 then 1 else 0 in
  project sv q bit;
  renormalise sv;
  bit

(* Observability: instruments are bound once at module init, and the trace
   brackets are manual [emit_begin]/[emit_end] pairs — no closure allocation
   on the per-instruction path, one flag check each when disabled. *)
let m_gates = Qdt_obs.Metrics.counter "sv.gates"
let m_measurements = Qdt_obs.Metrics.counter "sv.measurements"

let rec apply_instruction sv instr ~rng ~clbits =
  match instr with
  | Circuit.If { value; instr } ->
      if Circuit.creg_value clbits = value then apply_instruction sv instr ~rng ~clbits
  | Circuit.Apply { gate; controls; target } ->
      Qdt_obs.Trace.emit_begin "sv.gate";
      Qdt_obs.Metrics.incr m_gates;
      apply_gate sv gate ~controls ~target;
      Qdt_obs.Trace.emit_end "sv.gate"
  | Circuit.Swap { controls; a; b } ->
      Qdt_obs.Trace.emit_begin "sv.gate";
      Qdt_obs.Metrics.incr m_gates;
      apply_swap sv ~controls a b;
      Qdt_obs.Trace.emit_end "sv.gate"
  | Circuit.Measure { qubit; clbit } ->
      Qdt_obs.Trace.emit_begin "sv.measure";
      Qdt_obs.Metrics.incr m_measurements;
      clbits.(clbit) <- measure_qubit sv ~rng qubit;
      Qdt_obs.Trace.emit_end "sv.measure"
  | Circuit.Reset q ->
      Qdt_obs.Trace.emit_begin "sv.reset";
      let bit = measure_qubit sv ~rng q in
      if bit = 1 then apply_gate sv Gate.X ~controls:[] ~target:q;
      Qdt_obs.Trace.emit_end "sv.reset"
  | Circuit.Barrier _ -> ()

let run ?(seed = 0) circuit =
  let sv = create (Circuit.num_qubits circuit) in
  let rng = Random.State.make [| seed |] in
  let clbits = Array.make (max 1 (Circuit.num_clbits circuit)) 0 in
  List.iter
    (fun instr -> apply_instruction sv instr ~rng ~clbits)
    (Circuit.instructions circuit);
  (sv, clbits)

let run_unitary circuit =
  if not (Circuit.is_unitary_only circuit) then
    invalid_arg "Statevector.run_unitary: circuit measures or resets";
  fst (run circuit)

let expectation_z sv q =
  let mask = 1 lsl q in
  chunked_sum (1 lsl sv.n) (fun lo hi ->
      let acc = ref 0.0 in
      for k = lo to hi - 1 do
        let p = probability sv k in
        if k land mask = 0 then acc := !acc +. p else acc := !acc -. p
      done;
      !acc)

let sample ?(seed = 0) sv ~shots =
  Qdt_obs.Trace.with_span "sv.sample" @@ fun () ->
  let rng = Random.State.make [| seed |] in
  let dim = 1 lsl sv.n in
  (* The probability table lives in the reusable scratch buffer — repeated
     sampling allocates nothing beyond the counts table. *)
  let probs = scratch_floats sv dim in
  probabilities_into sv probs;
  let counts = Hashtbl.create 64 in
  for _shot = 1 to shots do
    let r = Random.State.float rng 1.0 in
    let acc = ref 0.0 and chosen = ref (dim - 1) and k = ref 0 in
    let continue = ref true in
    while !continue && !k < dim do
      acc := !acc +. probs.(!k);
      if !acc >= r then begin
        chosen := !k;
        continue := false
      end;
      incr k
    done;
    Hashtbl.replace counts !chosen
      (1 + Option.value ~default:0 (Hashtbl.find_opt counts !chosen))
  done;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let fidelity a b =
  if a.n <> b.n then invalid_arg "Statevector.fidelity: size mismatch";
  Vec.fidelity (vec_view a) (vec_view b)

let memory_bytes sv = 8 * Array.length sv.buf

let bitstring n k = String.init n (fun i -> if k land (1 lsl (n - 1 - i)) <> 0 then '1' else '0')

let pp ppf sv =
  Format.fprintf ppf "@[<v 0>";
  for k = 0 to (1 lsl sv.n) - 1 do
    let z = amplitude sv k in
    if not (Cx.is_zero ~eps:1e-12 z) then
      Format.fprintf ppf "|%s⟩: %a@," (bitstring sv.n k) Cx.pp z
  done;
  Format.fprintf ppf "@]"
