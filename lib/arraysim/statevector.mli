(** Array-based state-vector simulation (Section II of the paper).

    The state of [n] qubits is the dense array of its [2^n] amplitudes;
    gates are applied in place with stride-[2^target] kernels rather than
    by materialising the full [2^n × 2^n] operator.  This is the baseline
    the other backends are measured against: simple, cache-friendly, and
    exponential in memory.

    {b Storage.}  Amplitudes live in one flat interleaved [float array]
    (the {!Qdt_linalg.Vec} layout); the gate kernels update raw float
    pairs in place and allocate nothing per gate.  A lazily grown scratch
    buffer (reported via the [qdt.sv.scratch_bytes] gauge) is reused
    across calls that need a dim-sized temporary, e.g. {!sample}. *)

type t

(** [create n] is [|0…0⟩] on [n] qubits. *)
val create : int -> t

(** [reset sv] returns the state to [|0…0⟩] in place, keeping the state
    buffer and any grown scratch — the buffer-reuse path of an arrays
    backend session. *)
val reset : t -> unit

(** [of_vec n v] wraps an explicit amplitude vector of length [2^n]. *)
val of_vec : int -> Qdt_linalg.Vec.t -> t

val to_vec : t -> Qdt_linalg.Vec.t

(** [vec_view sv] {e borrows} the amplitudes as a vector without copying:
    mutating [sv] mutates the view and vice versa.  Use for read-mostly
    consumers (expectation values, fidelity, column extraction) that would
    otherwise pay a full copy per call; take {!to_vec} when the result
    must outlive further evolution of [sv]. *)
val vec_view : t -> Qdt_linalg.Vec.t

(** [overwrite sv v] replaces the amplitudes of [sv] in place.
    @raise Invalid_argument on length mismatch. *)
val overwrite : t -> Qdt_linalg.Vec.t -> unit

(** [copy sv] — independent deep copy. *)
val copy : t -> t
val num_qubits : t -> int

(** [amplitude sv k] is [⟨k|ψ⟩]. *)
val amplitude : t -> int -> Qdt_linalg.Cx.t

(** [probability sv k] is [|⟨k|ψ⟩|²]. *)
val probability : t -> int -> float
val probabilities : t -> float array
val norm : t -> float

(** [apply_gate sv gate ~controls ~target] applies a (multi-)controlled
    single-qubit gate in place. *)
val apply_gate : t -> Qdt_circuit.Gate.t -> controls:int list -> target:int -> unit

(** [apply_matrix sv m ~controls ~target] applies an arbitrary 2×2 unitary. *)
val apply_matrix : t -> Qdt_linalg.Mat.t -> controls:int list -> target:int -> unit

(** [apply_matrix2 sv m ~controls ~q0 ~q1] applies an arbitrary 4×4
    unitary to the qubit pair [(q0, q1)] in one fused pass.  Matrix index
    convention: bit 0 of the matrix row/column index is qubit [q0], bit 1
    is qubit [q1] — the same convention as
    {!Unitary_builder.instruction_matrix} on two qubits. *)
val apply_matrix2 :
  t -> Qdt_linalg.Mat.t -> controls:int list -> q0:int -> q1:int -> unit

(** [apply_swap sv ~controls a b] swaps qubits [a] and [b]. *)
val apply_swap : t -> controls:int list -> int -> int -> unit

(** [kraus_weight sv k ~target] is [‖K|ψ⟩‖²] for a 2×2 Kraus operator [K]
    acting on [target], computed without copying or modifying the state.
    Lets a trajectory sampler weigh every branch before committing one
    in place. *)
val kraus_weight : t -> Qdt_linalg.Mat.t -> target:int -> float

(** [renormalise sv] rescales to unit norm in place.
    @raise Invalid_argument when the norm is numerically zero. *)
val renormalise : t -> unit

(** [scratch_bytes sv] — current size of the reusable scratch buffer
    (also exported as the [qdt.sv.scratch_bytes] gauge). *)
val scratch_bytes : t -> int

(** [apply_instruction sv instr ~rng ~clbits] executes one instruction;
    measurements collapse the state using [rng] and record into [clbits]. *)
val apply_instruction :
  t -> Qdt_circuit.Circuit.instruction -> rng:Random.State.t -> clbits:int array -> unit

(** [run ?seed circuit] simulates from [|0…0⟩]; returns the final state and
    the classical bits (all zero when the circuit never measures). *)
val run : ?seed:int -> Qdt_circuit.Circuit.t -> t * int array

(** [run_unitary circuit] simulates ignoring measurements/resets entirely.
    @raise Invalid_argument if the circuit contains any. *)
val run_unitary : Qdt_circuit.Circuit.t -> t

(** [measure_qubit sv ~rng q] projects qubit [q], renormalises, and returns
    the observed bit. *)
val measure_qubit : t -> rng:Random.State.t -> int -> int

(** [expectation_z sv q] is [⟨ψ|Z_q|ψ⟩] (a real number). *)
val expectation_z : t -> int -> float

(** [sample ?seed sv ~shots] draws basis states from [|ψ|²] and returns
    (basis index, count) pairs sorted by index. *)
val sample : ?seed:int -> t -> shots:int -> (int * int) list

(** [fidelity a b] is [|⟨a|b⟩|²]. *)
val fidelity : t -> t -> float

(** [memory_bytes sv] — amplitude payload size, for the E5 experiment. *)
val memory_bytes : t -> int

val pp : Format.formatter -> t -> unit
