open Qdt_linalg
open Qdt_circuit

let instruction_matrix ~num_qubits instr =
  let dim = 1 lsl num_qubits in
  match instr with
  | Circuit.Apply { gate; controls; target } ->
      let u = Gate.matrix gate in
      let cmask = List.fold_left (fun mask q -> mask lor (1 lsl q)) 0 controls in
      let tbit = 1 lsl target in
      Mat.init dim dim (fun row col ->
          if col land cmask <> cmask then
            (* controls not satisfied: identity column *)
            if row = col then Cx.one else Cx.zero
          else if row lor tbit <> col lor tbit || row land cmask <> cmask then
            (* rows must agree with col outside the target bit *)
            Cx.zero
          else
            Mat.get u (if row land tbit <> 0 then 1 else 0)
              (if col land tbit <> 0 then 1 else 0))
  | Circuit.Swap { controls; a; b } ->
      let cmask = List.fold_left (fun mask q -> mask lor (1 lsl q)) 0 controls in
      let ba = 1 lsl a and bb = 1 lsl b in
      Mat.init dim dim (fun row col ->
          let image =
            if col land cmask <> cmask then col
            else
              let bit_a = if col land ba <> 0 then 1 else 0 in
              let bit_b = if col land bb <> 0 then 1 else 0 in
              if bit_a = bit_b then col else col lxor ba lxor bb
          in
          if row = image then Cx.one else Cx.zero)
  | Circuit.Barrier _ -> Mat.identity dim
  | Circuit.Measure _ | Circuit.Reset _ | Circuit.If _ ->
      invalid_arg "Unitary_builder: non-unitary instruction"

let unitary circuit =
  if not (Circuit.is_unitary_only circuit) then
    invalid_arg "Unitary_builder.unitary: circuit measures or resets";
  let n = Circuit.num_qubits circuit in
  List.fold_left
    (fun acc instr -> Mat.mul (instruction_matrix ~num_qubits:n instr) acc)
    (Mat.identity (1 lsl n))
    (Circuit.instructions circuit)

let unitary_by_columns circuit =
  if not (Circuit.is_unitary_only circuit) then
    invalid_arg "Unitary_builder.unitary_by_columns: circuit measures or resets";
  let n = Circuit.num_qubits circuit in
  let dim = 1 lsl n in
  let out = Mat.create dim dim in
  let ob = Mat.buffer out in
  let rng = Random.State.make [| 0 |] in
  let clbits = [| 0 |] in
  let instrs = Circuit.instructions circuit in
  let sv = Statevector.create n in
  let sb = Vec.buffer (Statevector.vec_view sv) in
  for col = 0 to dim - 1 do
    (* Reuse one statevector: reset it to |col⟩ in place, evolve, and
       scatter the column straight from its borrowed buffer into the
       row-major matrix storage — no per-column vector copies. *)
    Array.fill sb 0 (Array.length sb) 0.0;
    sb.(2 * col) <- 1.0;
    List.iter (fun instr -> Statevector.apply_instruction sv instr ~rng ~clbits) instrs;
    for row = 0 to dim - 1 do
      let dst = 2 * ((row * dim) + col) in
      ob.(dst) <- sb.(2 * row);
      ob.(dst + 1) <- sb.((2 * row) + 1)
    done
  done;
  out
