open Qdt_circuit

type noise_model = { channel : unit -> Density.channel; label : string }

let depolarizing p = { channel = (fun () -> Density.depolarizing p); label = "depolarizing" }

let amplitude_damping gamma =
  { channel = (fun () -> Density.amplitude_damping gamma); label = "amplitude-damping" }

let phase_damping lambda =
  { channel = (fun () -> Density.phase_damping lambda); label = "phase-damping" }

let bit_flip p = { channel = (fun () -> Density.bit_flip p); label = "bit-flip" }

let apply_channel_stochastic sv ch q ~rng =
  (* Branch weights ‖K_i|ψ⟩‖² (they sum to 1 for a CPTP channel), computed
     by {!Statevector.kraus_weight} without copying the state.  Only the
     chosen Kraus operator is then applied, in place — the old
     copy-per-branch scheme allocated [|ch|] full statevectors per
     instruction qubit. *)
  if ch = [] then invalid_arg "Trajectories: empty channel";
  let weights = List.map (fun k -> (k, Statevector.kraus_weight sv k ~target:q)) ch in
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 weights in
  let r = Random.State.float rng total in
  let rec pick acc = function
    | [] -> assert false
    | [ (k, w) ] -> (k, w)
    | (k, w) :: rest -> if acc +. w >= r then (k, w) else pick (acc +. w) rest
  in
  let chosen, w = pick 0.0 weights in
  if w < 1e-28 then invalid_arg "Trajectories: zero-probability branch chosen";
  Statevector.apply_matrix sv chosen ~controls:[] ~target:q;
  Statevector.renormalise sv

let run_single ?(seed = 0) ~noise circuit =
  let sv = Statevector.create (Circuit.num_qubits circuit) in
  let rng = Random.State.make [| seed; 77 |] in
  let clbits = Array.make (max 1 (Circuit.num_clbits circuit)) 0 in
  List.iter
    (fun instr ->
      Statevector.apply_instruction sv instr ~rng ~clbits;
      match instr with
      | Circuit.Barrier _ -> ()
      | _ ->
          List.iter
            (fun q -> apply_channel_stochastic sv (noise.channel ()) q ~rng)
            (Circuit.qubits_of_instruction instr))
    (Circuit.instructions circuit);
  sv

let average_probabilities ?(seed = 0) ~noise ~trajectories circuit =
  if trajectories < 1 then invalid_arg "Trajectories: need at least one trajectory";
  let dim = 1 lsl Circuit.num_qubits circuit in
  let acc = Array.make dim 0.0 in
  for t = 0 to trajectories - 1 do
    let sv = run_single ~seed:(seed + t) ~noise circuit in
    let probs = Statevector.probabilities sv in
    Array.iteri (fun k p -> acc.(k) <- acc.(k) +. p) probs
  done;
  Array.map (fun p -> p /. Float.of_int trajectories) acc

let average_fidelity ?(seed = 0) ~noise ~trajectories circuit =
  if trajectories < 1 then invalid_arg "Trajectories: need at least one trajectory";
  let ideal = Statevector.run_unitary circuit in
  let acc = ref 0.0 in
  for t = 0 to trajectories - 1 do
    let sv = run_single ~seed:(seed + t) ~noise circuit in
    acc := !acc +. Statevector.fidelity ideal sv
  done;
  !acc /. Float.of_int trajectories
