open Qdt_circuit

type noise_model = { channel : unit -> Density.channel; label : string }

let depolarizing p = { channel = (fun () -> Density.depolarizing p); label = "depolarizing" }

let amplitude_damping gamma =
  { channel = (fun () -> Density.amplitude_damping gamma); label = "amplitude-damping" }

let phase_damping lambda =
  { channel = (fun () -> Density.phase_damping lambda); label = "phase-damping" }

let bit_flip p = { channel = (fun () -> Density.bit_flip p); label = "bit-flip" }

let apply_channel_stochastic sv ch q ~rng =
  (* Branch weights ‖K_i|ψ⟩‖² (they sum to 1 for a CPTP channel), computed
     by {!Statevector.kraus_weight} without copying the state.  Only the
     chosen Kraus operator is then applied, in place — the old
     copy-per-branch scheme allocated [|ch|] full statevectors per
     instruction qubit. *)
  if ch = [] then invalid_arg "Trajectories: empty channel";
  let weights = List.map (fun k -> (k, Statevector.kraus_weight sv k ~target:q)) ch in
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 weights in
  let r = Random.State.float rng total in
  let rec pick acc = function
    | [] -> assert false
    | [ (k, w) ] -> (k, w)
    | (k, w) :: rest -> if acc +. w >= r then (k, w) else pick (acc +. w) rest
  in
  let chosen, w = pick 0.0 weights in
  if w < 1e-28 then invalid_arg "Trajectories: zero-probability branch chosen";
  Statevector.apply_matrix sv chosen ~controls:[] ~target:q;
  Statevector.renormalise sv

let run_single ?(seed = 0) ~noise circuit =
  let sv = Statevector.create (Circuit.num_qubits circuit) in
  let rng = Random.State.make [| seed; 77 |] in
  let clbits = Array.make (max 1 (Circuit.num_clbits circuit)) 0 in
  List.iter
    (fun instr ->
      Statevector.apply_instruction sv instr ~rng ~clbits;
      match instr with
      | Circuit.Barrier _ -> ()
      | _ ->
          List.iter
            (fun q -> apply_channel_stochastic sv (noise.channel ()) q ~rng)
            (Circuit.qubits_of_instruction instr))
    (Circuit.instructions circuit);
  sv

(* Trajectory-level parallelism.  Each trajectory's RNG stream is derived
   from [seed + t] alone, so trajectories are independent of execution
   order.  At jobs = 1 the legacy sequential accumulation runs —
   bit-identical to the pre-parallel code.  At jobs >= 2 the trajectory
   range splits into [traj_blocks] blocks (a fixed count, independent of
   the job count); each block accumulates serially and the block results
   fold in block order, so the averages are identical at any job count
   >= 2.  The statevector kernels inside each trajectory fall back to
   serial automatically (nested-region guard in [Qdt_par]). *)
let traj_blocks = 16

let block_bounds ~trajectories b =
  (b * trajectories / traj_blocks, (b + 1) * trajectories / traj_blocks)

let average_probabilities ?(seed = 0) ~noise ~trajectories circuit =
  if trajectories < 1 then invalid_arg "Trajectories: need at least one trajectory";
  let dim = 1 lsl Circuit.num_qubits circuit in
  let accumulate acc t0 t1 =
    for t = t0 to t1 - 1 do
      let sv = run_single ~seed:(seed + t) ~noise circuit in
      let probs = Statevector.probabilities sv in
      Array.iteri (fun k p -> acc.(k) <- acc.(k) +. p) probs
    done;
    acc
  in
  let acc =
    if Qdt_par.jobs () <= 1 || trajectories < 2 then
      accumulate (Array.make dim 0.0) 0 trajectories
    else begin
      let blocks =
        Qdt_par.map
          (fun b ->
            let t0, t1 = block_bounds ~trajectories b in
            accumulate (Array.make dim 0.0) t0 t1)
          (Array.init traj_blocks Fun.id)
      in
      let acc = Array.make dim 0.0 in
      Array.iter
        (fun blk -> Array.iteri (fun k p -> acc.(k) <- acc.(k) +. p) blk)
        blocks;
      acc
    end
  in
  Array.map (fun p -> p /. Float.of_int trajectories) acc

let average_fidelity ?(seed = 0) ~noise ~trajectories circuit =
  if trajectories < 1 then invalid_arg "Trajectories: need at least one trajectory";
  let ideal = Statevector.run_unitary circuit in
  let accumulate t0 t1 =
    let acc = ref 0.0 in
    for t = t0 to t1 - 1 do
      let sv = run_single ~seed:(seed + t) ~noise circuit in
      acc := !acc +. Statevector.fidelity ideal sv
    done;
    !acc
  in
  let total =
    if Qdt_par.jobs () <= 1 || trajectories < 2 then accumulate 0 trajectories
    else
      Qdt_par.map
        (fun b ->
          let t0, t1 = block_bounds ~trajectories b in
          accumulate t0 t1)
        (Array.init traj_blocks Fun.id)
      |> Array.fold_left ( +. ) 0.0
  in
  total /. Float.of_int trajectories
