open Qdt_linalg
open Qdt_circuit

(* [scratch] holds one dim×dim matrix reused by {!conjugate} — with it the
   per-gate cost is two {!Mat.mul_into} passes plus one dagger, instead of
   two fresh product matrices per gate. *)
type t = { n : int; mutable rho : Mat.t; mutable scratch : Mat.t }

type channel = Mat.t list

let create n =
  if n < 1 || n > 12 then invalid_arg "Density.create: unsupported qubit count";
  let dim = 1 lsl n in
  let rho = Mat.create dim dim in
  Mat.set rho 0 0 Cx.one;
  { n; rho; scratch = Mat.create dim dim }

let of_statevector sv =
  let v = Statevector.vec_view sv in
  let dim = Vec.length v in
  let vb = Vec.buffer v in
  let rho = Mat.create dim dim in
  let rb = Mat.buffer rho in
  (* rho[r,c] = v_r · conj v_c over the raw buffers. *)
  for r = 0 to dim - 1 do
    let ar = vb.(2 * r) and ai = vb.((2 * r) + 1) in
    for c = 0 to dim - 1 do
      let br = vb.(2 * c) and bi = vb.((2 * c) + 1) in
      let o = 2 * ((r * dim) + c) in
      rb.(o) <- (ar *. br) +. (ai *. bi);
      rb.(o + 1) <- (ai *. br) -. (ar *. bi)
    done
  done;
  { n = Statevector.num_qubits sv; rho; scratch = Mat.create dim dim }

let num_qubits d = d.n
let matrix d = Mat.copy d.rho
let trace d = (Mat.trace d.rho).Cx.re
let purity d = (Mat.trace (Mat.mul d.rho d.rho)).Cx.re

let conjugate d u =
  (* scratch ← rho·u†; rho ← u·scratch.  Reusing the scratch matrix keeps
     the per-gate allocation down to the dagger alone. *)
  Mat.mul_into ~out:d.scratch d.rho (Mat.dagger u);
  Mat.mul_into ~out:d.rho u d.scratch

let apply_instruction d instr =
  match instr with
  | Circuit.Apply _ | Circuit.Swap _ ->
      conjugate d (Unitary_builder.instruction_matrix ~num_qubits:d.n instr)
  | Circuit.Barrier _ -> ()
  | Circuit.Measure _ | Circuit.Reset _ | Circuit.If _ ->
      invalid_arg "Density.apply_instruction: measurement not supported"

let embed_kraus n k q =
  (* K on qubit q, identity elsewhere, by direct index arithmetic. *)
  let dim = 1 lsl n in
  let bit = 1 lsl q in
  Mat.init dim dim (fun row col ->
      if row lor bit <> col lor bit then Cx.zero
      else
        Mat.get k (if row land bit <> 0 then 1 else 0) (if col land bit <> 0 then 1 else 0))

let apply_channel d ch q =
  let terms =
    List.map
      (fun k ->
        let full = embed_kraus d.n k q in
        Mat.mul full (Mat.mul d.rho (Mat.dagger full)))
      ch
  in
  match terms with
  | [] -> invalid_arg "Density.apply_channel: empty channel"
  | first :: rest -> d.rho <- List.fold_left Mat.add first rest

let run ?noise circuit =
  let d = create (Circuit.num_qubits circuit) in
  List.iter
    (fun instr ->
      match instr with
      | Circuit.Barrier _ -> ()
      | _ ->
          apply_instruction d instr;
          (match noise with
          | None -> ()
          | Some mk ->
              List.iter
                (fun q -> apply_channel d (mk ()) q)
                (Circuit.qubits_of_instruction instr)))
    (Circuit.instructions circuit);
  d

let probabilities d =
  Array.init (1 lsl d.n) (fun k -> (Mat.get d.rho k k).Cx.re)

let fidelity_to_pure d sv =
  let v = Statevector.to_vec sv in
  let rho_v = Mat.mul_vec d.rho v in
  (Vec.dot v rho_v).Cx.re

let m2 a b c dd = Mat.of_rows [| [| a; b |]; [| c; dd |] |]
let r = Cx.of_float

let depolarizing p =
  if p < 0.0 || p > 1.0 then invalid_arg "Density.depolarizing: p out of [0,1]";
  let s0 = Float.sqrt (1.0 -. (3.0 *. p /. 4.0)) in
  let s = Float.sqrt (p /. 4.0) in
  [
    Mat.scale (r s0) Gates.id2;
    Mat.scale (r s) Gates.x;
    Mat.scale (r s) Gates.y;
    Mat.scale (r s) Gates.z;
  ]

let amplitude_damping gamma =
  if gamma < 0.0 || gamma > 1.0 then invalid_arg "Density.amplitude_damping: gamma out of [0,1]";
  [
    m2 Cx.one Cx.zero Cx.zero (r (Float.sqrt (1.0 -. gamma)));
    m2 Cx.zero (r (Float.sqrt gamma)) Cx.zero Cx.zero;
  ]

let phase_damping lambda =
  if lambda < 0.0 || lambda > 1.0 then invalid_arg "Density.phase_damping: lambda out of [0,1]";
  [
    m2 Cx.one Cx.zero Cx.zero (r (Float.sqrt (1.0 -. lambda)));
    m2 Cx.zero Cx.zero Cx.zero (r (Float.sqrt lambda));
  ]

let bit_flip p =
  if p < 0.0 || p > 1.0 then invalid_arg "Density.bit_flip: p out of [0,1]";
  [ Mat.scale (r (Float.sqrt (1.0 -. p))) Gates.id2; Mat.scale (r (Float.sqrt p)) Gates.x ]
