(** Canonical complex-number table.

    Decision diagrams hash-cons nodes, which requires edge weights to have
    a *canonical* representative: two weights that differ only by floating
    point noise must become physically the same value with the same id
    (the "how to handle complex values" problem of Zulehner, Hillmich &
    Wille, ICCAD 2019 — ref [29] of the paper).

    Lookup quantises onto a grid of pitch [eps] and probes the neighbour
    buckets, so values within [eps] of a stored one are unified. *)

type t

(** [create ?eps ()] makes an empty table ([eps] defaults to [1e-9]).
    Ids 0 and 1 are pre-assigned to zero and one. *)
val create : ?eps:float -> unit -> t

val eps : t -> float

(** [canonical table z] is [(id, v)] where [v] is the canonical value for
    [z] (within [eps]) and [id] its stable identifier. *)
val canonical : t -> Complex.t -> int * Complex.t

(** Id of the canonical zero (0) and one (1). *)
val zero_id : int

val one_id : int

(** [sweep table ~live] removes every entry whose id fails the [live]
    predicate (the GC's dead-weight sweep; [zero_id]/[one_id] must be kept
    live by the caller).  Ids are never reused, so values held outside the
    table stay valid; a swept value that reappears gets a fresh id.
    Returns the number of entries removed. *)
val sweep : t -> live:(int -> bool) -> int

(** Number of ids ever allocated (monotonic; not decreased by {!sweep}). *)
val size : t -> int

(** Number of entries currently stored ({!size} minus swept entries). *)
val live_entries : t -> int
