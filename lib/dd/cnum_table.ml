open Qdt_linalg

type t = {
  eps : float;
  buckets : (int * int, (int * Cx.t) list ref) Hashtbl.t;
  mutable next_id : int;
  mutable live : int;
}

let zero_id = 0
let one_id = 1

let create ?(eps = 1e-9) () =
  let table = { eps; buckets = Hashtbl.create 4096; next_id = 2; live = 0 } in
  (* Pre-seed zero and one so their ids are stable. *)
  let seed id z =
    let kr = int_of_float (Float.round (z.Cx.re /. eps)) in
    let ki = int_of_float (Float.round (z.Cx.im /. eps)) in
    let bucket =
      match Hashtbl.find_opt table.buckets (kr, ki) with
      | Some b -> b
      | None ->
          let b = ref [] in
          Hashtbl.replace table.buckets (kr, ki) b;
          b
    in
    bucket := (id, z) :: !bucket;
    table.live <- table.live + 1
  in
  seed zero_id Cx.zero;
  seed one_id Cx.one;
  table

let eps t = t.eps

let canonical t z =
  if Float.abs z.Cx.re <= t.eps && Float.abs z.Cx.im <= t.eps then (zero_id, Cx.zero)
  else begin
    let kr = int_of_float (Float.round (z.Cx.re /. t.eps)) in
    let ki = int_of_float (Float.round (z.Cx.im /. t.eps)) in
    let found = ref None in
    (* Probe the quantised bucket and its 8 neighbours so values straddling
       a grid boundary still unify. *)
    (try
       for dr = -1 to 1 do
         for di = -1 to 1 do
           match Hashtbl.find_opt t.buckets (kr + dr, ki + di) with
           | None -> ()
           | Some bucket ->
               List.iter
                 (fun (id, v) ->
                   if Cx.approx_equal ~eps:t.eps v z then begin
                     found := Some (id, v);
                     raise Exit
                   end)
                 !bucket
         done
       done
     with Exit -> ());
    match !found with
    | Some hit -> hit
    | None ->
        let id = t.next_id in
        t.next_id <- id + 1;
        let bucket =
          match Hashtbl.find_opt t.buckets (kr, ki) with
          | Some b -> b
          | None ->
              let b = ref [] in
              Hashtbl.replace t.buckets (kr, ki) b;
              b
        in
        bucket := (id, z) :: !bucket;
        t.live <- t.live + 1;
        (id, z)
  end

let sweep t ~live =
  (* Ids are monotonic and never reused: a swept value that reappears is
     simply assigned a fresh id, so stale ids held outside the table can
     never collide with future entries. *)
  let removed = ref 0 in
  let empty = ref [] in
  Hashtbl.iter
    (fun key bucket ->
      let kept =
        List.filter
          (fun (id, _) ->
            if live id then true
            else begin
              incr removed;
              false
            end)
          !bucket
      in
      bucket := kept;
      if kept = [] then empty := key :: !empty)
    t.buckets;
  List.iter (Hashtbl.remove t.buckets) !empty;
  t.live <- t.live - !removed;
  !removed

let size t = t.next_id
let live_entries t = t.live
