open Qdt_linalg
open Qdt_circuit

let basis_state mgr n k =
  if n < 1 then invalid_arg "Build.basis_state: need n >= 1";
  if k < 0 || k >= 1 lsl n then invalid_arg "Build.basis_state: index out of range";
  let rec level var below =
    if var >= n then below
    else
      let zero = Pkg.zero_edge mgr in
      let edges =
        if (k lsr var) land 1 = 0 then [| below; zero |] else [| zero; below |]
      in
      level (var + 1) (Pkg.make_node mgr ~var edges)
  in
  level 0 (Pkg.one_edge mgr)

let zero_state mgr n = basis_state mgr n 0

let from_vec mgr v =
  let len = Vec.length v in
  let n =
    let rec log2 acc k = if k <= 1 then acc else log2 (acc + 1) (k / 2) in
    log2 0 len
  in
  if 1 lsl n <> len then invalid_arg "Build.from_vec: length must be a power of two";
  (* Recursive halving, exactly the decomposition of Fig. 1a. *)
  let rec encode var lo hi =
    if var < 0 then Pkg.terminal mgr (Vec.get v lo)
    else begin
      assert (hi - lo + 1 = 1 lsl (var + 1));
      let mid = lo + (1 lsl var) in
      let e0 = encode (var - 1) lo (mid - 1) in
      let e1 = encode (var - 1) mid hi in
      Pkg.make_node mgr ~var:(var) [| e0; e1 |]
    end
  in
  encode (n - 1) 0 (len - 1)

let identity mgr n =
  let zero = Pkg.zero_edge mgr in
  let rec level var below =
    if var >= n then below
    else level (var + 1) (Pkg.make_node mgr ~var [| below; zero; zero; below |])
  in
  level 0 (Pkg.one_edge mgr)

let projector_ones mgr n qubits =
  let zero = Pkg.zero_edge mgr in
  let rec level var below =
    if var >= n then below
    else
      let edges =
        if List.mem var qubits then [| zero; zero; zero; below |]
        else [| below; zero; zero; below |]
      in
      level (var + 1) (Pkg.make_node mgr ~var edges)
  in
  level 0 (Pkg.one_edge mgr)

let gate mgr ~num_qubits ~controls ~target u =
  if Mat.rows u <> 2 || Mat.cols u <> 2 then invalid_arg "Build.gate: need a 2x2 matrix";
  if target < 0 || target >= num_qubits then invalid_arg "Build.gate: target out of range";
  List.iter
    (fun q ->
      if q < 0 || q >= num_qubits || q = target then
        invalid_arg "Build.gate: bad control")
    controls;
  let zero = Pkg.zero_edge mgr in
  let controls_below = List.filter (fun q -> q < target) controls in
  (* Target level: O = Σ_{r,c} |r⟩⟨c| ⊗ (u_rc·P + δ_rc·(I−P)) where P
     projects the controls below the target onto all-ones. *)
  let target_node =
    let p = projector_ones mgr target controls_below in
    let diag_rest =
      if controls_below = [] then zero
      else
        (* I − P: identity on the parts where some below-control is 0. *)
        Pkg.add mgr (identity mgr target) (Pkg.scale mgr Cx.minus_one p)
    in
    let entry r c =
      let scaled = Pkg.scale mgr (Mat.get u r c) p in
      if r = c then Pkg.add mgr scaled diag_rest else scaled
    in
    Pkg.make_node mgr ~var:target [| entry 0 0; entry 0 1; entry 1 0; entry 1 1 |]
  in
  (* Levels above the target: controls gate the recursion, other qubits
     pass through. *)
  let rec level var below =
    if var >= num_qubits then below
    else
      let edges =
        if List.mem var controls then [| identity mgr var; zero; zero; below |]
        else [| below; zero; zero; below |]
      in
      level (var + 1) (Pkg.make_node mgr ~var edges)
  in
  level (target + 1) target_node

let swap mgr ~num_qubits ~controls a b =
  (* SWAP(a,b) = CX(a→b) · CX(b→a) · CX(a→b); the Fredkin adds the extra
     controls to the middle CX only... actually to all three is the naive
     correct expansion, but controls on the outer CXs cancel when the
     control is 0, so all three is what we build. *)
  let cx ~controls ~ctl ~tgt =
    gate mgr ~num_qubits ~controls:(ctl :: controls) ~target:tgt Gates.x
  in
  let first = cx ~controls ~ctl:a ~tgt:b in
  let second = cx ~controls ~ctl:b ~tgt:a in
  Pkg.mul_mm mgr first (Pkg.mul_mm mgr second first)

let instruction mgr ~num_qubits instr =
  match instr with
  | Circuit.Apply { gate = g; controls; target } ->
      gate mgr ~num_qubits ~controls ~target (Gate.matrix g)
  | Circuit.Swap { controls; a; b } -> swap mgr ~num_qubits ~controls a b
  | Circuit.Barrier _ -> identity mgr num_qubits
  | Circuit.Measure _ | Circuit.Reset _ | Circuit.If _ ->
      invalid_arg "Build.instruction: non-unitary instruction"

let circuit_unitary mgr c =
  if not (Circuit.is_unitary_only c) then
    invalid_arg "Build.circuit_unitary: circuit measures or resets";
  let n = Circuit.num_qubits c in
  (* Pin the running product so each retired partial unitary (and its gate
     DDs) can be collected at the per-instruction boundary. *)
  let start = identity mgr n in
  Pkg.ref_edge mgr start;
  let result =
    List.fold_left
      (fun acc instr ->
        let next = Pkg.mul_mm mgr (instruction mgr ~num_qubits:n instr) acc in
        Pkg.ref_edge mgr next;
        Pkg.unref_edge mgr acc;
        Pkg.maybe_gc mgr;
        next)
      start (Circuit.instructions c)
  in
  Pkg.unref_edge mgr result;
  result
