open Qdt_linalg

type node = { id : int; var : int; edges : edge array; mutable rc : int }
and edge = { w_id : int; w : Cx.t; target : target }
and target = Terminal | Node of node

(* Unique-table key: variable plus (weight id, child id) per edge; child id
   -1 encodes the terminal. *)
type key = int * (int * int) array

(* ------------------------------------------------------------------ *)
(* Bounded compute caches                                              *)
(* ------------------------------------------------------------------ *)

(* Fixed-size direct-mapped cache: 2^bits slots, a store replaces whatever
   occupies its slot.  Keys are up to three ints (node / weight ids, which
   the manager never reuses); unused key positions are 0.  This keeps
   compute-cache memory O(1) per manager where the previous Hashtbls grew
   without bound. *)
module Ccache = struct
  type 'a slot = Free | Slot of { k1 : int; k2 : int; k3 : int; v : 'a }

  type 'a t = {
    name : string;
    mask : int;
    (* Allocated on first store: a manager that never exercises an
       operation never pays for its cache, which keeps [create] cheap for
       the create-per-run callers (benches, equivalence checks). *)
    mutable slots : 'a slot array;
    mutable lookups : int;
    mutable hits : int;
    mutable fill : int;
    mutable evictions : int;
  }

  let create ~name ~bits =
    let bits = max 1 (min 24 bits) in
    let size = 1 lsl bits in
    { name; mask = size - 1; slots = [||];
      lookups = 0; hits = 0; fill = 0; evictions = 0 }

  let index t k1 k2 k3 =
    let h = (k1 * 0x9e3779b1) lxor (k2 * 0x85ebca77) lxor (k3 * 0xc2b2ae35) in
    (h lxor (h lsr 17)) land t.mask

  (* Process-global compute-cache counters shared by every manager — the
     per-manager tallies above feed [cache_stats]; these feed the metrics
     registry (one flag check each when disabled). *)
  let m_lookups = Qdt_obs.Metrics.counter "dd.cache.lookups"
  let m_hits = Qdt_obs.Metrics.counter "dd.cache.hits"

  let find t k1 k2 k3 =
    t.lookups <- t.lookups + 1;
    Qdt_obs.Metrics.incr m_lookups;
    if Array.length t.slots = 0 then None
    else
      match t.slots.(index t k1 k2 k3) with
      | Slot s when s.k1 = k1 && s.k2 = k2 && s.k3 = k3 ->
          t.hits <- t.hits + 1;
          Qdt_obs.Metrics.incr m_hits;
          Some s.v
      | _ -> None

  let store t k1 k2 k3 v =
    if Array.length t.slots = 0 then t.slots <- Array.make (t.mask + 1) Free;
    let i = index t k1 k2 k3 in
    (match t.slots.(i) with
    | Free -> t.fill <- t.fill + 1
    | Slot _ -> t.evictions <- t.evictions + 1);
    t.slots.(i) <- Slot { k1; k2; k3; v }

  let clear t =
    if t.fill > 0 then begin
      Array.fill t.slots 0 (Array.length t.slots) Free;
      t.fill <- 0
    end
end

type t = {
  ctab : Cnum_table.t;
  unique : (key, node) Hashtbl.t;
  mutable next_id : int;
  (* External pins (from [ref_edge]) on complex ids, so GC keeps the weight
     of a root edge alive in the complex table. *)
  pinned_cnums : (int, int) Hashtbl.t;
  add_cache : edge Ccache.t;
  mul_mv_cache : edge Ccache.t;
  mul_mm_cache : edge Ccache.t;
  adjoint_cache : edge Ccache.t;
  kron_cache : edge Ccache.t;
  inner_cache : Cx.t Ccache.t;
  trace_cache : Cx.t Ccache.t;
  (* GC policy: [gc_threshold] is the configured floor (0 disables
     automatic collection); [gc_limit] is the live-node count that triggers
     the next collection and doubles with the surviving population. *)
  gc_threshold : int;
  mutable gc_limit : int;
  mutable gc_runs : int;
  mutable nodes_collected : int;
  mutable cnums_collected : int;
  mutable peak_nodes : int;
  mutable n_unique_lookups : int;
  mutable n_unique_hits : int;
}

type cache_telemetry = {
  cache_name : string;
  slots : int;
  fill : int;
  lookups : int;
  hits : int;
  evictions : int;
}

type cache_stats = {
  unique_lookups : int;
  unique_hits : int;
  compute_lookups : int;
  compute_hits : int;
  gc_runs : int;
  nodes_collected : int;
  cnums_collected : int;
  peak_nodes : int;
  live_nodes : int;
  caches : cache_telemetry list;
}

let default_gc_threshold = ref 16384
let default_cache_bits = ref 12

let create ?eps ?gc_threshold ?cache_bits () =
  let gc_threshold = Option.value gc_threshold ~default:!default_gc_threshold in
  let bits = Option.value cache_bits ~default:!default_cache_bits in
  {
    ctab = Cnum_table.create ?eps ();
    unique = Hashtbl.create 4096;
    next_id = 0;
    pinned_cnums = Hashtbl.create 64;
    add_cache = Ccache.create ~name:"add" ~bits;
    mul_mv_cache = Ccache.create ~name:"mul-mv" ~bits;
    mul_mm_cache = Ccache.create ~name:"mul-mm" ~bits;
    adjoint_cache = Ccache.create ~name:"adjoint" ~bits;
    kron_cache = Ccache.create ~name:"kron" ~bits;
    inner_cache = Ccache.create ~name:"inner" ~bits;
    trace_cache = Ccache.create ~name:"trace" ~bits;
    gc_threshold;
    gc_limit = gc_threshold;
    gc_runs = 0;
    nodes_collected = 0;
    cnums_collected = 0;
    peak_nodes = 0;
    n_unique_lookups = 0;
    n_unique_hits = 0;
  }

let all_caches mgr =
  [
    Ccache.(mgr.add_cache.name, mgr.add_cache.mask + 1, mgr.add_cache.fill,
            mgr.add_cache.lookups, mgr.add_cache.hits, mgr.add_cache.evictions);
    Ccache.(mgr.mul_mv_cache.name, mgr.mul_mv_cache.mask + 1, mgr.mul_mv_cache.fill,
            mgr.mul_mv_cache.lookups, mgr.mul_mv_cache.hits, mgr.mul_mv_cache.evictions);
    Ccache.(mgr.mul_mm_cache.name, mgr.mul_mm_cache.mask + 1, mgr.mul_mm_cache.fill,
            mgr.mul_mm_cache.lookups, mgr.mul_mm_cache.hits, mgr.mul_mm_cache.evictions);
    Ccache.(mgr.adjoint_cache.name, mgr.adjoint_cache.mask + 1, mgr.adjoint_cache.fill,
            mgr.adjoint_cache.lookups, mgr.adjoint_cache.hits, mgr.adjoint_cache.evictions);
    Ccache.(mgr.kron_cache.name, mgr.kron_cache.mask + 1, mgr.kron_cache.fill,
            mgr.kron_cache.lookups, mgr.kron_cache.hits, mgr.kron_cache.evictions);
    Ccache.(mgr.inner_cache.name, mgr.inner_cache.mask + 1, mgr.inner_cache.fill,
            mgr.inner_cache.lookups, mgr.inner_cache.hits, mgr.inner_cache.evictions);
    Ccache.(mgr.trace_cache.name, mgr.trace_cache.mask + 1, mgr.trace_cache.fill,
            mgr.trace_cache.lookups, mgr.trace_cache.hits, mgr.trace_cache.evictions);
  ]

let cache_stats mgr =
  let caches =
    List.map
      (fun (cache_name, slots, fill, lookups, hits, evictions) ->
        { cache_name; slots; fill; lookups; hits; evictions })
      (all_caches mgr)
  in
  let compute_lookups = List.fold_left (fun acc c -> acc + c.lookups) 0 caches in
  let compute_hits = List.fold_left (fun acc c -> acc + c.hits) 0 caches in
  {
    unique_lookups = mgr.n_unique_lookups;
    unique_hits = mgr.n_unique_hits;
    compute_lookups;
    compute_hits;
    gc_runs = mgr.gc_runs;
    nodes_collected = mgr.nodes_collected;
    cnums_collected = mgr.cnums_collected;
    peak_nodes = max mgr.peak_nodes (Hashtbl.length mgr.unique);
    live_nodes = Hashtbl.length mgr.unique;
    caches;
  }

(* Per-job deltas for a session-held manager: monotone counters are
   subtracted, level signals (peak/live population, cache fill) keep the
   [after] value. *)
let diff_cache_stats ~before ~after =
  {
    unique_lookups = after.unique_lookups - before.unique_lookups;
    unique_hits = after.unique_hits - before.unique_hits;
    compute_lookups = after.compute_lookups - before.compute_lookups;
    compute_hits = after.compute_hits - before.compute_hits;
    gc_runs = after.gc_runs - before.gc_runs;
    nodes_collected = after.nodes_collected - before.nodes_collected;
    cnums_collected = after.cnums_collected - before.cnums_collected;
    peak_nodes = after.peak_nodes;
    live_nodes = after.live_nodes;
    caches =
      List.map2
        (fun (b : cache_telemetry) (a : cache_telemetry) ->
          {
            a with
            lookups = a.lookups - b.lookups;
            hits = a.hits - b.hits;
            evictions = a.evictions - b.evictions;
          })
        before.caches after.caches;
  }

let canonical mgr z = Cnum_table.canonical mgr.ctab z

let terminal mgr z =
  let w_id, w = canonical mgr z in
  { w_id; w; target = Terminal }

let zero_edge _mgr = { w_id = Cnum_table.zero_id; w = Cx.zero; target = Terminal }
let one_edge _mgr = { w_id = Cnum_table.one_id; w = Cx.one; target = Terminal }
let is_zero e = e.w_id = Cnum_table.zero_id

let target_id = function Terminal -> -1 | Node n -> n.id

let edge_equal a b = a.w_id = b.w_id && target_id a.target = target_id b.target

(* ------------------------------------------------------------------ *)
(* Reference counting and garbage collection                           *)
(* ------------------------------------------------------------------ *)

(* The protocol: an edge a client keeps across a potential collection
   point must be pinned with [ref_edge] and released with [unref_edge].
   The count lives on the target node; the edge's own weight id is pinned
   separately so the complex-table sweep keeps it.  Intermediate edges
   local to one arithmetic call need no pinning: [gc] only runs from
   [maybe_gc], which clients call at operation boundaries. *)

let ref_edge mgr e =
  (match e.target with Node n -> n.rc <- n.rc + 1 | Terminal -> ());
  Hashtbl.replace mgr.pinned_cnums e.w_id
    (1 + Option.value ~default:0 (Hashtbl.find_opt mgr.pinned_cnums e.w_id))

let unref_edge mgr e =
  (match e.target with
  | Node n -> if n.rc > 0 then n.rc <- n.rc - 1
  | Terminal -> ());
  match Hashtbl.find_opt mgr.pinned_cnums e.w_id with
  | Some 1 -> Hashtbl.remove mgr.pinned_cnums e.w_id
  | Some c -> Hashtbl.replace mgr.pinned_cnums e.w_id (c - 1)
  | None -> ()

let clear_caches mgr =
  Ccache.clear mgr.add_cache;
  Ccache.clear mgr.mul_mv_cache;
  Ccache.clear mgr.mul_mm_cache;
  Ccache.clear mgr.adjoint_cache;
  Ccache.clear mgr.kron_cache;
  Ccache.clear mgr.inner_cache;
  Ccache.clear mgr.trace_cache

(* Observability: instruments bound once at module init; recording is a
   single flag check when disabled. *)
let m_gc_runs = Qdt_obs.Metrics.counter "dd.gc.runs"
let m_gc_collected = Qdt_obs.Metrics.counter "dd.gc.nodes_collected"
let m_gc_pause = Qdt_obs.Metrics.histogram "dd.gc.pause_ns"
let m_live_nodes = Qdt_obs.Metrics.gauge "dd.live_nodes"
let w_peak_nodes = Qdt_obs.Watermark.watermark "dd.peak_live_nodes"

let gc (mgr : t) =
  Qdt_obs.Trace.emit_begin "dd.gc";
  let t0 = Qdt_obs.Clock.now_ns () in
  mgr.peak_nodes <- max mgr.peak_nodes (Hashtbl.length mgr.unique);
  Qdt_obs.Watermark.observe_int w_peak_nodes (Hashtbl.length mgr.unique);
  (* Mark: everything reachable from a pinned node stays, as do the
     complex ids those nodes' edges (and pinned root edges) use. *)
  let marked = Hashtbl.create (max 64 (Hashtbl.length mgr.unique / 2)) in
  let live_cnums = Hashtbl.create 256 in
  Hashtbl.replace live_cnums Cnum_table.zero_id ();
  Hashtbl.replace live_cnums Cnum_table.one_id ();
  Hashtbl.iter (fun id _ -> Hashtbl.replace live_cnums id ()) mgr.pinned_cnums;
  let rec mark n =
    if not (Hashtbl.mem marked n.id) then begin
      Hashtbl.replace marked n.id ();
      Array.iter
        (fun e ->
          Hashtbl.replace live_cnums e.w_id ();
          match e.target with Node c -> mark c | Terminal -> ())
        n.edges
    end
  in
  Hashtbl.iter (fun _ n -> if n.rc > 0 then mark n) mgr.unique;
  (* Sweep the unique table, then the complex table entries only dead
     nodes referenced.  Node and complex ids are never reused, so an
     unpinned edge a client still holds stays numerically valid — it just
     loses sharing with future nodes. *)
  let dead =
    Hashtbl.fold
      (fun key n acc -> if Hashtbl.mem marked n.id then acc else key :: acc)
      mgr.unique []
  in
  List.iter (Hashtbl.remove mgr.unique) dead;
  let collected = List.length dead in
  let swept = Cnum_table.sweep mgr.ctab ~live:(Hashtbl.mem live_cnums) in
  (* Cached results may reference swept nodes; drop them wholesale. *)
  clear_caches mgr;
  mgr.gc_runs <- mgr.gc_runs + 1;
  mgr.nodes_collected <- mgr.nodes_collected + collected;
  mgr.cnums_collected <- mgr.cnums_collected + swept;
  mgr.gc_limit <- max mgr.gc_threshold (2 * Hashtbl.length mgr.unique);
  Qdt_obs.Metrics.incr m_gc_runs;
  Qdt_obs.Metrics.add m_gc_collected collected;
  Qdt_obs.Metrics.observe m_gc_pause (Qdt_obs.Clock.elapsed_ns t0);
  Qdt_obs.Metrics.set m_live_nodes (float_of_int (Hashtbl.length mgr.unique));
  Qdt_obs.Trace.emit_end "dd.gc";
  collected

let maybe_gc mgr =
  if mgr.gc_threshold > 0 && Hashtbl.length mgr.unique > mgr.gc_limit then
    ignore (gc mgr)

let hashcons mgr ~var edges =
  let key = (var, Array.map (fun e -> (e.w_id, target_id e.target)) edges) in
  mgr.n_unique_lookups <- mgr.n_unique_lookups + 1;
  match Hashtbl.find_opt mgr.unique key with
  | Some n ->
      mgr.n_unique_hits <- mgr.n_unique_hits + 1;
      n
  | None ->
      let n = { id = mgr.next_id; var; edges; rc = 0 } in
      mgr.next_id <- n.id + 1;
      Hashtbl.replace mgr.unique key n;
      let size = Hashtbl.length mgr.unique in
      if size > mgr.peak_nodes then mgr.peak_nodes <- size;
      n

let make_node mgr ~var edges =
  let arity = Array.length edges in
  if arity <> 2 && arity <> 4 then invalid_arg "Pkg.make_node: arity must be 2 or 4";
  (* Pivot: the largest-magnitude weight (first among eps-ties) is pulled
     out as the incoming edge weight, making the node canonical. *)
  let eps = Cnum_table.eps mgr.ctab in
  let pivot = ref (-1) and best = ref 0.0 in
  Array.iteri
    (fun k e ->
      if not (is_zero e) then begin
        let m = Cx.norm e.w in
        if m > !best +. eps then begin
          best := m;
          pivot := k
        end
      end)
    edges;
  if !pivot < 0 then zero_edge mgr
  else begin
    let top = edges.(!pivot).w in
    let inv = Cx.inv top in
    let normalised =
      Array.mapi
        (fun k e ->
          if is_zero e then zero_edge mgr
          else if k = !pivot then { e with w_id = Cnum_table.one_id; w = Cx.one }
          else
            let w_id, w = canonical mgr (Cx.mul e.w inv) in
            { e with w_id; w })
        edges
    in
    let n = hashcons mgr ~var normalised in
    let w_id, w = canonical mgr top in
    { w_id; w; target = Node n }
  end

let scale mgr c e =
  if is_zero e then e
  else
    let w_id, w = canonical mgr (Cx.mul c e.w) in
    if w_id = Cnum_table.zero_id then zero_edge mgr else { e with w_id; w }

(* ------------------------------------------------------------------ *)
(* Addition                                                            *)
(* ------------------------------------------------------------------ *)

let rec add mgr e1 e2 =
  if is_zero e1 then e2
  else if is_zero e2 then e1
  else
    match (e1.target, e2.target) with
    | Terminal, Terminal -> terminal mgr (Cx.add e1.w e2.w)
    | Node n1, Node n2 ->
        assert (n1.var = n2.var && Array.length n1.edges = Array.length n2.edges);
        (* Factor out w1: e1 + e2 = w1 · (n1 + (w2/w1)·n2). *)
        let ratio_id, ratio = canonical mgr (Cx.div e2.w e1.w) in
        let body =
          match Ccache.find mgr.add_cache n1.id ratio_id n2.id with
          | Some cached -> cached
          | None ->
              let children =
                Array.init (Array.length n1.edges) (fun k ->
                    add mgr n1.edges.(k) (scale mgr ratio n2.edges.(k)))
              in
              let result = make_node mgr ~var:n1.var children in
              Ccache.store mgr.add_cache n1.id ratio_id n2.id result;
              result
        in
        scale mgr e1.w body
    | Terminal, Node _ | Node _, Terminal ->
        invalid_arg "Pkg.add: mixing scalar and node edges"

(* ------------------------------------------------------------------ *)
(* Multiplication                                                      *)
(* ------------------------------------------------------------------ *)

let rec mul_mv mgr m v =
  if is_zero m || is_zero v then zero_edge mgr
  else
    match (m.target, v.target) with
    | Terminal, Terminal -> terminal mgr (Cx.mul m.w v.w)
    | Node mn, Node vn ->
        assert (mn.var = vn.var && Array.length mn.edges = 4 && Array.length vn.edges = 2);
        let body =
          match Ccache.find mgr.mul_mv_cache mn.id vn.id 0 with
          | Some cached -> cached
          | None ->
              let row r =
                add mgr
                  (mul_mv mgr mn.edges.(2 * r) vn.edges.(0))
                  (mul_mv mgr mn.edges.((2 * r) + 1) vn.edges.(1))
              in
              let result = make_node mgr ~var:mn.var [| row 0; row 1 |] in
              Ccache.store mgr.mul_mv_cache mn.id vn.id 0 result;
              result
        in
        scale mgr (Cx.mul m.w v.w) body
    | Terminal, Node _ | Node _, Terminal ->
        invalid_arg "Pkg.mul_mv: level mismatch"

let rec mul_mm mgr a b =
  if is_zero a || is_zero b then zero_edge mgr
  else
    match (a.target, b.target) with
    | Terminal, Terminal -> terminal mgr (Cx.mul a.w b.w)
    | Node an, Node bn ->
        assert (an.var = bn.var && Array.length an.edges = 4 && Array.length bn.edges = 4);
        let body =
          match Ccache.find mgr.mul_mm_cache an.id bn.id 0 with
          | Some cached -> cached
          | None ->
              let entry r c =
                add mgr
                  (mul_mm mgr an.edges.(2 * r) bn.edges.(c))
                  (mul_mm mgr an.edges.((2 * r) + 1) bn.edges.(2 + c))
              in
              let result =
                make_node mgr ~var:an.var [| entry 0 0; entry 0 1; entry 1 0; entry 1 1 |]
              in
              Ccache.store mgr.mul_mm_cache an.id bn.id 0 result;
              result
        in
        scale mgr (Cx.mul a.w b.w) body
    | Terminal, Node _ | Node _, Terminal ->
        invalid_arg "Pkg.mul_mm: level mismatch"

let rec adjoint mgr m =
  if is_zero m then m
  else
    match m.target with
    | Terminal -> terminal mgr (Cx.conj m.w)
    | Node n ->
        assert (Array.length n.edges = 4);
        let body =
          match Ccache.find mgr.adjoint_cache n.id 0 0 with
          | Some cached -> cached
          | None ->
              let result =
                make_node mgr ~var:n.var
                  [|
                    adjoint mgr n.edges.(0);
                    adjoint mgr n.edges.(2);
                    adjoint mgr n.edges.(1);
                    adjoint mgr n.edges.(3);
                  |]
              in
              Ccache.store mgr.adjoint_cache n.id 0 0 result;
              result
        in
        scale mgr (Cx.conj m.w) body

let rec kron mgr ~lower_qubits upper lower =
  if is_zero upper || is_zero lower then zero_edge mgr
  else
    match upper.target with
    | Terminal -> scale mgr upper.w lower
    | Node n ->
        let body =
          match Ccache.find mgr.kron_cache n.id (target_id lower.target) lower.w_id with
          | Some cached -> cached
          | None ->
              let children =
                Array.map (fun e -> kron mgr ~lower_qubits e lower) n.edges
              in
              let result = make_node mgr ~var:(n.var + lower_qubits) children in
              Ccache.store mgr.kron_cache n.id (target_id lower.target) lower.w_id result;
              result
        in
        scale mgr upper.w body

let rec inner mgr a b =
  if is_zero a || is_zero b then Cx.zero
  else
    match (a.target, b.target) with
    | Terminal, Terminal -> Cx.mul (Cx.conj a.w) b.w
    | Node an, Node bn ->
        let body =
          match Ccache.find mgr.inner_cache an.id bn.id 0 with
          | Some cached -> cached
          | None ->
              let acc = ref Cx.zero in
              for k = 0 to Array.length an.edges - 1 do
                acc := Cx.add !acc (inner mgr an.edges.(k) bn.edges.(k))
              done;
              Ccache.store mgr.inner_cache an.id bn.id 0 !acc;
              !acc
        in
        Cx.mul (Cx.mul (Cx.conj a.w) b.w) body
    | Terminal, Node _ | Node _, Terminal -> invalid_arg "Pkg.inner: level mismatch"

let rec trace mgr m =
  if is_zero m then Cx.zero
  else
    match m.target with
    | Terminal -> m.w
    | Node n ->
        assert (Array.length n.edges = 4);
        let body =
          match Ccache.find mgr.trace_cache n.id 0 0 with
          | Some cached -> cached
          | None ->
              let v = Cx.add (trace mgr n.edges.(0)) (trace mgr n.edges.(3)) in
              Ccache.store mgr.trace_cache n.id 0 0 v;
              v
        in
        Cx.mul m.w body

(* ------------------------------------------------------------------ *)
(* Inspection                                                          *)
(* ------------------------------------------------------------------ *)

let iter_nodes f e =
  let seen = Hashtbl.create 256 in
  let rec walk = function
    | Terminal -> ()
    | Node n ->
        if not (Hashtbl.mem seen n.id) then begin
          Hashtbl.replace seen n.id ();
          f n;
          Array.iter (fun child -> walk child.target) n.edges
        end
  in
  walk e.target

let node_count e =
  let count = ref 0 in
  iter_nodes (fun _ -> incr count) e;
  !count

let memory_bytes e =
  let bytes = ref 0 in
  (* var + id (8 bytes each) plus per edge: weight (16) + id (8) + pointer (8). *)
  iter_nodes (fun n -> bytes := !bytes + 16 + (32 * Array.length n.edges)) e;
  !bytes

let amplitude _mgr e k =
  let rec walk e =
    if is_zero e then Cx.zero
    else
      match e.target with
      | Terminal -> e.w
      | Node n ->
          let bit = (k lsr n.var) land 1 in
          Cx.mul e.w (walk n.edges.(bit))
  in
  walk e

let matrix_entry _mgr e ~row ~col =
  let rec walk e =
    if is_zero e then Cx.zero
    else
      match e.target with
      | Terminal -> e.w
      | Node n ->
          let r = (row lsr n.var) land 1 and c = (col lsr n.var) land 1 in
          Cx.mul e.w (walk n.edges.((2 * r) + c))
  in
  walk e

let to_vec mgr e ~num_qubits =
  Vec.init (1 lsl num_qubits) (fun k -> amplitude mgr e k)

let to_mat mgr e ~num_qubits =
  let dim = 1 lsl num_qubits in
  Mat.init dim dim (fun row col -> matrix_entry mgr e ~row ~col)

let unique_table_size mgr = Hashtbl.length mgr.unique
let cnum_table_size mgr = Cnum_table.size mgr.ctab
let cnum_live_entries mgr = Cnum_table.live_entries mgr.ctab
let peak_unique_table_size (mgr : t) =
  max mgr.peak_nodes (Hashtbl.length mgr.unique)
let refcount e = match e.target with Terminal -> 0 | Node n -> n.rc
