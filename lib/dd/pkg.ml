open Qdt_linalg

type node = { id : int; var : int; edges : edge array }
and edge = { w_id : int; w : Cx.t; target : target }
and target = Terminal | Node of node

(* Unique-table key: variable plus (weight id, child id) per edge; child id
   -1 encodes the terminal. *)
type key = int * (int * int) array

type t = {
  ctab : Cnum_table.t;
  unique : (key, node) Hashtbl.t;
  mutable next_id : int;
  add_cache : (int * int * int, edge) Hashtbl.t;
  mul_mv_cache : (int * int, edge) Hashtbl.t;
  mul_mm_cache : (int * int, edge) Hashtbl.t;
  adjoint_cache : (int, edge) Hashtbl.t;
  kron_cache : (int * int * int, edge) Hashtbl.t;
  inner_cache : (int * int, Cx.t) Hashtbl.t;
  mutable n_unique_lookups : int;
  mutable n_unique_hits : int;
  mutable n_compute_lookups : int;
  mutable n_compute_hits : int;
}

type cache_stats = {
  unique_lookups : int;
  unique_hits : int;
  compute_lookups : int;
  compute_hits : int;
}

let create ?eps () =
  {
    ctab = Cnum_table.create ?eps ();
    unique = Hashtbl.create 4096;
    next_id = 0;
    add_cache = Hashtbl.create 4096;
    mul_mv_cache = Hashtbl.create 4096;
    mul_mm_cache = Hashtbl.create 4096;
    adjoint_cache = Hashtbl.create 1024;
    kron_cache = Hashtbl.create 1024;
    inner_cache = Hashtbl.create 1024;
    n_unique_lookups = 0;
    n_unique_hits = 0;
    n_compute_lookups = 0;
    n_compute_hits = 0;
  }

let cache_stats mgr =
  {
    unique_lookups = mgr.n_unique_lookups;
    unique_hits = mgr.n_unique_hits;
    compute_lookups = mgr.n_compute_lookups;
    compute_hits = mgr.n_compute_hits;
  }

(* All compute caches funnel through this lookup so hit rates cover every
   cached operation uniformly. *)
let cache_find mgr tbl key =
  mgr.n_compute_lookups <- mgr.n_compute_lookups + 1;
  match Hashtbl.find_opt tbl key with
  | Some _ as hit ->
      mgr.n_compute_hits <- mgr.n_compute_hits + 1;
      hit
  | None -> None

let canonical mgr z = Cnum_table.canonical mgr.ctab z

let terminal mgr z =
  let w_id, w = canonical mgr z in
  { w_id; w; target = Terminal }

let zero_edge _mgr = { w_id = Cnum_table.zero_id; w = Cx.zero; target = Terminal }
let one_edge _mgr = { w_id = Cnum_table.one_id; w = Cx.one; target = Terminal }
let is_zero e = e.w_id = Cnum_table.zero_id

let target_id = function Terminal -> -1 | Node n -> n.id

let edge_equal a b = a.w_id = b.w_id && target_id a.target = target_id b.target

let hashcons mgr ~var edges =
  let key = (var, Array.map (fun e -> (e.w_id, target_id e.target)) edges) in
  mgr.n_unique_lookups <- mgr.n_unique_lookups + 1;
  match Hashtbl.find_opt mgr.unique key with
  | Some n ->
      mgr.n_unique_hits <- mgr.n_unique_hits + 1;
      n
  | None ->
      let n = { id = mgr.next_id; var; edges } in
      mgr.next_id <- n.id + 1;
      Hashtbl.replace mgr.unique key n;
      n

let make_node mgr ~var edges =
  let arity = Array.length edges in
  if arity <> 2 && arity <> 4 then invalid_arg "Pkg.make_node: arity must be 2 or 4";
  (* Pivot: the largest-magnitude weight (first among eps-ties) is pulled
     out as the incoming edge weight, making the node canonical. *)
  let eps = Cnum_table.eps mgr.ctab in
  let pivot = ref (-1) and best = ref 0.0 in
  Array.iteri
    (fun k e ->
      if not (is_zero e) then begin
        let m = Cx.norm e.w in
        if m > !best +. eps then begin
          best := m;
          pivot := k
        end
      end)
    edges;
  if !pivot < 0 then zero_edge mgr
  else begin
    let top = edges.(!pivot).w in
    let inv = Cx.inv top in
    let normalised =
      Array.mapi
        (fun k e ->
          if is_zero e then zero_edge mgr
          else if k = !pivot then { e with w_id = Cnum_table.one_id; w = Cx.one }
          else
            let w_id, w = canonical mgr (Cx.mul e.w inv) in
            { e with w_id; w })
        edges
    in
    let n = hashcons mgr ~var normalised in
    let w_id, w = canonical mgr top in
    { w_id; w; target = Node n }
  end

let scale mgr c e =
  if is_zero e then e
  else
    let w_id, w = canonical mgr (Cx.mul c e.w) in
    if w_id = Cnum_table.zero_id then zero_edge mgr else { e with w_id; w }

(* ------------------------------------------------------------------ *)
(* Addition                                                            *)
(* ------------------------------------------------------------------ *)

let rec add mgr e1 e2 =
  if is_zero e1 then e2
  else if is_zero e2 then e1
  else
    match (e1.target, e2.target) with
    | Terminal, Terminal -> terminal mgr (Cx.add e1.w e2.w)
    | Node n1, Node n2 ->
        assert (n1.var = n2.var && Array.length n1.edges = Array.length n2.edges);
        (* Factor out w1: e1 + e2 = w1 · (n1 + (w2/w1)·n2). *)
        let ratio_id, ratio = canonical mgr (Cx.div e2.w e1.w) in
        let key = (n1.id, ratio_id, n2.id) in
        let body =
          match cache_find mgr mgr.add_cache key with
          | Some cached -> cached
          | None ->
              let children =
                Array.init (Array.length n1.edges) (fun k ->
                    add mgr n1.edges.(k) (scale mgr ratio n2.edges.(k)))
              in
              let result = make_node mgr ~var:n1.var children in
              Hashtbl.replace mgr.add_cache key result;
              result
        in
        scale mgr e1.w body
    | Terminal, Node _ | Node _, Terminal ->
        invalid_arg "Pkg.add: mixing scalar and node edges"

(* ------------------------------------------------------------------ *)
(* Multiplication                                                      *)
(* ------------------------------------------------------------------ *)

let rec mul_mv mgr m v =
  if is_zero m || is_zero v then zero_edge mgr
  else
    match (m.target, v.target) with
    | Terminal, Terminal -> terminal mgr (Cx.mul m.w v.w)
    | Node mn, Node vn ->
        assert (mn.var = vn.var && Array.length mn.edges = 4 && Array.length vn.edges = 2);
        let key = (mn.id, vn.id) in
        let body =
          match cache_find mgr mgr.mul_mv_cache key with
          | Some cached -> cached
          | None ->
              let row r =
                add mgr
                  (mul_mv mgr mn.edges.(2 * r) vn.edges.(0))
                  (mul_mv mgr mn.edges.((2 * r) + 1) vn.edges.(1))
              in
              let result = make_node mgr ~var:mn.var [| row 0; row 1 |] in
              Hashtbl.replace mgr.mul_mv_cache key result;
              result
        in
        scale mgr (Cx.mul m.w v.w) body
    | Terminal, Node _ | Node _, Terminal ->
        invalid_arg "Pkg.mul_mv: level mismatch"

let rec mul_mm mgr a b =
  if is_zero a || is_zero b then zero_edge mgr
  else
    match (a.target, b.target) with
    | Terminal, Terminal -> terminal mgr (Cx.mul a.w b.w)
    | Node an, Node bn ->
        assert (an.var = bn.var && Array.length an.edges = 4 && Array.length bn.edges = 4);
        let key = (an.id, bn.id) in
        let body =
          match cache_find mgr mgr.mul_mm_cache key with
          | Some cached -> cached
          | None ->
              let entry r c =
                add mgr
                  (mul_mm mgr an.edges.(2 * r) bn.edges.(c))
                  (mul_mm mgr an.edges.((2 * r) + 1) bn.edges.(2 + c))
              in
              let result =
                make_node mgr ~var:an.var [| entry 0 0; entry 0 1; entry 1 0; entry 1 1 |]
              in
              Hashtbl.replace mgr.mul_mm_cache key result;
              result
        in
        scale mgr (Cx.mul a.w b.w) body
    | Terminal, Node _ | Node _, Terminal ->
        invalid_arg "Pkg.mul_mm: level mismatch"

let rec adjoint mgr m =
  if is_zero m then m
  else
    match m.target with
    | Terminal -> terminal mgr (Cx.conj m.w)
    | Node n ->
        assert (Array.length n.edges = 4);
        let body =
          match cache_find mgr mgr.adjoint_cache n.id with
          | Some cached -> cached
          | None ->
              let result =
                make_node mgr ~var:n.var
                  [|
                    adjoint mgr n.edges.(0);
                    adjoint mgr n.edges.(2);
                    adjoint mgr n.edges.(1);
                    adjoint mgr n.edges.(3);
                  |]
              in
              Hashtbl.replace mgr.adjoint_cache n.id result;
              result
        in
        scale mgr (Cx.conj m.w) body

let rec kron mgr ~lower_qubits upper lower =
  if is_zero upper || is_zero lower then zero_edge mgr
  else
    match upper.target with
    | Terminal -> scale mgr upper.w lower
    | Node n ->
        let key = (n.id, target_id lower.target, lower.w_id) in
        let body =
          match cache_find mgr mgr.kron_cache key with
          | Some cached -> cached
          | None ->
              let children =
                Array.map (fun e -> kron mgr ~lower_qubits e lower) n.edges
              in
              let result = make_node mgr ~var:(n.var + lower_qubits) children in
              Hashtbl.replace mgr.kron_cache key result;
              result
        in
        scale mgr upper.w body

let rec inner mgr a b =
  if is_zero a || is_zero b then Cx.zero
  else
    match (a.target, b.target) with
    | Terminal, Terminal -> Cx.mul (Cx.conj a.w) b.w
    | Node an, Node bn ->
        let key = (an.id, bn.id) in
        let body =
          match cache_find mgr mgr.inner_cache key with
          | Some cached -> cached
          | None ->
              let acc = ref Cx.zero in
              for k = 0 to Array.length an.edges - 1 do
                acc := Cx.add !acc (inner mgr an.edges.(k) bn.edges.(k))
              done;
              Hashtbl.replace mgr.inner_cache key !acc;
              !acc
        in
        Cx.mul (Cx.mul (Cx.conj a.w) b.w) body
    | Terminal, Node _ | Node _, Terminal -> invalid_arg "Pkg.inner: level mismatch"

let rec trace _mgr m =
  if is_zero m then Cx.zero
  else
    match m.target with
    | Terminal -> m.w
    | Node n ->
        assert (Array.length n.edges = 4);
        Cx.mul m.w (Cx.add (trace _mgr n.edges.(0)) (trace _mgr n.edges.(3)))

(* ------------------------------------------------------------------ *)
(* Inspection                                                          *)
(* ------------------------------------------------------------------ *)

let iter_nodes f e =
  let seen = Hashtbl.create 256 in
  let rec walk = function
    | Terminal -> ()
    | Node n ->
        if not (Hashtbl.mem seen n.id) then begin
          Hashtbl.replace seen n.id ();
          f n;
          Array.iter (fun child -> walk child.target) n.edges
        end
  in
  walk e.target

let node_count e =
  let count = ref 0 in
  iter_nodes (fun _ -> incr count) e;
  !count

let memory_bytes e =
  let bytes = ref 0 in
  (* var + id (8 bytes each) plus per edge: weight (16) + id (8) + pointer (8). *)
  iter_nodes (fun n -> bytes := !bytes + 16 + (32 * Array.length n.edges)) e;
  !bytes

let amplitude _mgr e k =
  let rec walk e =
    if is_zero e then Cx.zero
    else
      match e.target with
      | Terminal -> e.w
      | Node n ->
          let bit = (k lsr n.var) land 1 in
          Cx.mul e.w (walk n.edges.(bit))
  in
  walk e

let matrix_entry _mgr e ~row ~col =
  let rec walk e =
    if is_zero e then Cx.zero
    else
      match e.target with
      | Terminal -> e.w
      | Node n ->
          let r = (row lsr n.var) land 1 and c = (col lsr n.var) land 1 in
          Cx.mul e.w (walk n.edges.((2 * r) + c))
  in
  walk e

let to_vec mgr e ~num_qubits =
  Vec.init (1 lsl num_qubits) (fun k -> amplitude mgr e k)

let to_mat mgr e ~num_qubits =
  let dim = 1 lsl num_qubits in
  Mat.init dim dim (fun row col -> matrix_entry mgr e ~row ~col)

let unique_table_size mgr = Hashtbl.length mgr.unique
let cnum_table_size mgr = Cnum_table.size mgr.ctab
