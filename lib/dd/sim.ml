open Qdt_linalg
open Qdt_circuit

type state = { mgr : Pkg.t; n : int; mutable edge : Pkg.edge }

let make mgr n =
  let edge = Build.zero_state mgr n in
  Pkg.ref_edge mgr edge;
  { mgr; n; edge }

let init n = make (Pkg.create ()) n
let num_qubits st = st.n
let manager st = st.mgr
let root st = st.edge

(* The state root is the only edge pinned across instructions: pin the new
   root before releasing the old one (they may be the same edge). *)
let set_root st e =
  Pkg.ref_edge st.mgr e;
  Pkg.unref_edge st.mgr st.edge;
  st.edge <- e

let amplitude st k = Pkg.amplitude st.mgr st.edge k
let probability st k = Cx.norm2 (amplitude st k)
let to_vec st = Pkg.to_vec st.mgr st.edge ~num_qubits:st.n

let norm2 st = (Pkg.inner st.mgr st.edge st.edge).Cx.re

let prob_one st q =
  let p1 = Build.projector_ones st.mgr st.n [ q ] in
  let projected = Pkg.mul_mv st.mgr p1 st.edge in
  (Pkg.inner st.mgr projected projected).Cx.re /. norm2 st

let expectation_z st q = 1.0 -. (2.0 *. prob_one st q)

let project st q bit =
  let proj =
    if bit = 1 then Build.projector_ones st.mgr st.n [ q ]
    else begin
      (* |0⟩⟨0| on q: build from the 2×2 projector matrix. *)
      let p0 = Mat.of_rows [| [| Cx.one; Cx.zero |]; [| Cx.zero; Cx.zero |] |] in
      Build.gate st.mgr ~num_qubits:st.n ~controls:[] ~target:q p0
    end
  in
  set_root st (Pkg.mul_mv st.mgr proj st.edge);
  let n2 = norm2 st in
  if n2 < 1e-14 then invalid_arg "Sim.project: zero-probability branch";
  set_root st (Pkg.scale st.mgr (Cx.of_float (1.0 /. Float.sqrt n2)) st.edge)

let measure_qubit st ~rng q =
  let p1 = prob_one st q in
  let bit = if Random.State.float rng 1.0 < p1 then 1 else 0 in
  project st q bit;
  bit

(* Observability: manual span brackets (no closure on the per-instruction
   path) chosen by instruction kind.  [Pkg.maybe_gc] runs inside the
   bracket, so "dd.gc" spans nest under the instruction that triggered
   them. *)
let m_gates = Qdt_obs.Metrics.counter "dd.gates"
let m_measurements = Qdt_obs.Metrics.counter "dd.measurements"

let span_of_instr = function
  | Circuit.Apply _ | Circuit.Swap _ -> "dd.gate"
  | Circuit.Measure _ -> "dd.measure"
  | Circuit.Reset _ -> "dd.reset"
  | Circuit.If _ -> "dd.conditional"
  | Circuit.Barrier _ -> ""

let rec apply_instruction st instr ~rng ~clbits =
  let span = span_of_instr instr in
  if span <> "" then Qdt_obs.Trace.emit_begin span;
  (match instr with
  | Circuit.Apply _ | Circuit.Swap _ ->
      Qdt_obs.Metrics.incr m_gates;
      let op = Build.instruction st.mgr ~num_qubits:st.n instr in
      set_root st (Pkg.mul_mv st.mgr op st.edge)
  | Circuit.Measure { qubit; clbit } ->
      Qdt_obs.Metrics.incr m_measurements;
      clbits.(clbit) <- measure_qubit st ~rng qubit
  | Circuit.Reset q ->
      let bit = measure_qubit st ~rng q in
      if bit = 1 then begin
        let op = Build.gate st.mgr ~num_qubits:st.n ~controls:[] ~target:q Gates.x in
        set_root st (Pkg.mul_mv st.mgr op st.edge)
      end
  | Circuit.If { value; instr } ->
      if Circuit.creg_value clbits = value then
        apply_instruction st instr ~rng ~clbits
  | Circuit.Barrier _ -> ());
  (* Only the root is pinned now; dead intermediates are collectable. *)
  Pkg.maybe_gc st.mgr;
  if span <> "" then Qdt_obs.Trace.emit_end span

let run ?(seed = 0) circuit =
  let st = init (Circuit.num_qubits circuit) in
  let rng = Random.State.make [| seed |] in
  let clbits = Array.make (max 1 (Circuit.num_clbits circuit)) 0 in
  List.iter
    (fun instr -> apply_instruction st instr ~rng ~clbits)
    (Circuit.instructions circuit);
  (st, clbits)

let run_unitary circuit =
  if not (Circuit.is_unitary_only circuit) then
    invalid_arg "Sim.run_unitary: circuit measures or resets";
  fst (run circuit)

(* Subtree squared norms for top-down sampling: s(node) = Σ|w_i|²·s(child). *)
let subtree_norms edge =
  let cache = Hashtbl.create 256 in
  let rec walk (e : Pkg.edge) =
    match e.Pkg.target with
    | Pkg.Terminal -> 1.0
    | Pkg.Node n -> (
        match Hashtbl.find_opt cache n.Pkg.id with
        | Some s -> s
        | None ->
            let acc = ref 0.0 in
            Array.iter
              (fun (child : Pkg.edge) ->
                if not (Pkg.is_zero child) then
                  acc := !acc +. (Cx.norm2 child.Pkg.w *. walk child))
              n.Pkg.edges;
            Hashtbl.replace cache n.Pkg.id !acc;
            !acc)
  in
  ignore (walk edge);
  cache

let sample ?(seed = 0) st ~shots =
  Qdt_obs.Trace.with_span "dd.sample" @@ fun () ->
  let rng = Random.State.make [| seed |] in
  let norms = subtree_norms st.edge in
  let norm_of (e : Pkg.edge) =
    match e.Pkg.target with
    | Pkg.Terminal -> 1.0
    | Pkg.Node n -> Hashtbl.find norms n.Pkg.id
  in
  let counts = Hashtbl.create 64 in
  for _shot = 1 to shots do
    let rec descend (e : Pkg.edge) acc =
      match e.Pkg.target with
      | Pkg.Terminal -> acc
      | Pkg.Node n ->
          let p_edge (child : Pkg.edge) =
            if Pkg.is_zero child then 0.0 else Cx.norm2 child.Pkg.w *. norm_of child
          in
          let p0 = p_edge n.Pkg.edges.(0) and p1 = p_edge n.Pkg.edges.(1) in
          let total = p0 +. p1 in
          let bit = if Random.State.float rng total < p1 then 1 else 0 in
          (* A zero-probability branch can be drawn only on a degenerate
             total; guard against descending into a 0-stub. *)
          let bit = if Pkg.is_zero n.Pkg.edges.(bit) then 1 - bit else bit in
          descend n.Pkg.edges.(bit) (acc lor (bit lsl n.Pkg.var))
    in
    let k = descend st.edge 0 in
    Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
  done;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let fidelity a b =
  if a.mgr != b.mgr then invalid_arg "Sim.fidelity: states from different managers";
  Cx.norm2 (Pkg.inner a.mgr a.edge b.edge)

let release st = Pkg.unref_edge st.mgr st.edge

let node_count st = Pkg.node_count st.edge
let memory_bytes st = Pkg.memory_bytes st.edge

let expectation_pauli st pauli =
  if String.length pauli <> st.n then
    invalid_arg "Sim.expectation_pauli: string length must equal qubit count";
  let matrix_of = function
    | 'I' -> Gates.id2
    | 'X' -> Gates.x
    | 'Y' -> Gates.y
    | 'Z' -> Gates.z
    | c -> invalid_arg (Printf.sprintf "Sim.expectation_pauli: bad Pauli %C" c)
  in
  (* qubit n-1 is the leftmost character *)
  let rec build q acc =
    if q >= st.n then acc
    else
      let m = matrix_of pauli.[st.n - 1 - q] in
      let gate = Build.gate st.mgr ~num_qubits:1 ~controls:[] ~target:0 m in
      let acc' =
        if q = 0 then gate else Pkg.kron st.mgr ~lower_qubits:q gate acc
      in
      build (q + 1) acc'
  in
  let op = build 0 (Pkg.one_edge st.mgr) in
  let applied = Pkg.mul_mv st.mgr op st.edge in
  (Pkg.inner st.mgr st.edge applied).Cx.re
