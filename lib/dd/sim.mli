(** DD-based quantum circuit simulation (the application of Section III;
    refs [9], [12], [13] of the paper).

    A simulation holds a vector DD and applies each instruction by building
    its (small) matrix DD and multiplying — never materialising arrays.
    For states with structure (GHZ, W, basis-like) the DD stays polynomial
    where arrays are exponential; this is experiment E6. *)

type state

(** [make mgr n] starts in [|0…0⟩] using an existing manager (lets several
    simulations share node storage, as equivalence checking does). *)
val make : Pkg.t -> int -> state

(** [init n] — fresh manager, fresh [|0…0⟩] state. *)
val init : int -> state

val num_qubits : state -> int
val manager : state -> Pkg.t

(** Current root edge of the state DD. *)
val root : state -> Pkg.edge

(** [set_root st e] replaces the state's root edge (used by
    {!Approx.prune_state}; [e] must come from the same manager). *)
val set_root : state -> Pkg.edge -> unit

val apply_instruction :
  state -> Qdt_circuit.Circuit.instruction -> rng:Random.State.t -> clbits:int array -> unit

(** [run ?seed circuit] simulates the whole circuit (measurements collapse
    with the seeded RNG); returns final state and classical bits. *)
val run : ?seed:int -> Qdt_circuit.Circuit.t -> state * int array

(** [run_unitary circuit] — as {!run} but rejects measurements/resets. *)
val run_unitary : Qdt_circuit.Circuit.t -> state

val amplitude : state -> int -> Qdt_linalg.Cx.t
val probability : state -> int -> float
val to_vec : state -> Qdt_linalg.Vec.t

(** [measure_qubit st ~rng q] collapses qubit [q] and returns the bit. *)
val measure_qubit : state -> rng:Random.State.t -> int -> int

(** [prob_one st q] is the probability of reading 1 on qubit [q]. *)
val prob_one : state -> int -> float

val expectation_z : state -> int -> float

(** [sample ?seed st ~shots] draws basis states without collapsing,
    descending the DD top-down with subtree probabilities — the
    DD-native sampling of ref [12]. *)
val sample : ?seed:int -> state -> shots:int -> (int * int) list

(** [fidelity a b] — [|⟨a|b⟩|²]; both states must share a manager. *)
val fidelity : state -> state -> float

(** [release st] drops the pin on the state's root so its nodes become
    collectable — call when abandoning a state that shares a manager with
    others (per-shot loops).  The state must not be used afterwards. *)
val release : state -> unit

(** Size of the current state DD in nodes. *)
val node_count : state -> int

val memory_bytes : state -> int

(** [expectation_pauli st pauli] — [⟨ψ|P|ψ⟩] for a Pauli string given as
    a string over [IXYZ] with qubit [n-1] leftmost (e.g. ["ZZI"]).
    @raise Invalid_argument on length mismatch or other characters. *)
val expectation_pauli : state -> string -> float
