open Qdt_linalg
open Qdt_circuit

type state = { mgr : Pkg.t; n : int; mutable rho : Pkg.edge }

let density_of_basis mgr n k =
  (* |k⟩⟨k| as a matrix DD: a chain selecting row = col = bit. *)
  let zero = Pkg.zero_edge mgr in
  let rec level var below =
    if var >= n then below
    else
      let bit = (k lsr var) land 1 in
      let edges =
        if bit = 0 then [| below; zero; zero; zero |]
        else [| zero; zero; zero; below |]
      in
      level (var + 1) (Pkg.make_node mgr ~var edges)
  in
  level 0 (Pkg.one_edge mgr)

let make mgr n =
  let rho = density_of_basis mgr n 0 in
  Pkg.ref_edge mgr rho;
  { mgr; n; rho }

let init n = make (Pkg.create ()) n
let num_qubits st = st.n
let manager st = st.mgr
let root st = st.rho

(* Pin the new ρ before releasing the old, then let dead intermediates go. *)
let set_rho st e =
  Pkg.ref_edge st.mgr e;
  Pkg.unref_edge st.mgr st.rho;
  st.rho <- e;
  Pkg.maybe_gc st.mgr

let conjugate st u =
  let udag = Pkg.adjoint st.mgr u in
  set_rho st (Pkg.mul_mm st.mgr u (Pkg.mul_mm st.mgr st.rho udag))

let apply_instruction st instr =
  match instr with
  | Circuit.Barrier _ -> ()
  | Circuit.Measure _ | Circuit.Reset _ | Circuit.If _ ->
      invalid_arg "Noise_sim.apply_instruction: non-unitary instruction"
  | Circuit.Apply _ | Circuit.Swap _ ->
      conjugate st (Build.instruction st.mgr ~num_qubits:st.n instr)

let apply_channel st kraus q =
  if kraus = [] then invalid_arg "Noise_sim.apply_channel: empty channel";
  let terms =
    List.map
      (fun k ->
        let op = Build.gate st.mgr ~num_qubits:st.n ~controls:[] ~target:q k in
        let opdag = Pkg.adjoint st.mgr op in
        Pkg.mul_mm st.mgr op (Pkg.mul_mm st.mgr st.rho opdag))
      kraus
  in
  match terms with
  | first :: rest -> set_rho st (List.fold_left (Pkg.add st.mgr) first rest)
  | [] -> assert false

let run ?noise circuit =
  if not (Circuit.is_unitary_only circuit) then
    invalid_arg "Noise_sim.run: circuit measures or resets";
  let st = init (Circuit.num_qubits circuit) in
  List.iter
    (fun instr ->
      match instr with
      | Circuit.Barrier _ -> ()
      | _ ->
          apply_instruction st instr;
          (match noise with
          | None -> ()
          | Some mk ->
              List.iter
                (fun q -> apply_channel st (mk ()) q)
                (Circuit.qubits_of_instruction instr)))
    (Circuit.instructions circuit);
  st

let trace st = (Pkg.trace st.mgr st.rho).Cx.re

let purity st = (Pkg.trace st.mgr (Pkg.mul_mm st.mgr st.rho st.rho)).Cx.re

let probability st k =
  (Pkg.matrix_entry st.mgr st.rho ~row:k ~col:k).Cx.re

let fidelity_to_pure st v =
  (* ⟨ψ|ρ|ψ⟩ = ⟨ψ| (ρ|ψ⟩) via a DD mat-vec against the densified ψ. *)
  let psi = Build.from_vec st.mgr v in
  let rho_psi = Pkg.mul_mv st.mgr st.rho psi in
  (Pkg.inner st.mgr psi rho_psi).Cx.re

let node_count st = Pkg.node_count st.rho
let to_mat st = Pkg.to_mat st.mgr st.rho ~num_qubits:st.n
