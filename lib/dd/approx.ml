open Qdt_linalg

let subtree_norms edge =
  let cache = Hashtbl.create 256 in
  let rec walk (e : Pkg.edge) =
    match e.Pkg.target with
    | Pkg.Terminal -> 1.0
    | Pkg.Node n -> (
        match Hashtbl.find_opt cache n.Pkg.id with
        | Some s -> s
        | None ->
            let acc = ref 0.0 in
            Array.iter
              (fun (child : Pkg.edge) ->
                if not (Pkg.is_zero child) then
                  acc := !acc +. (Cx.norm2 child.Pkg.w *. walk child))
              n.Pkg.edges;
            Hashtbl.replace cache n.Pkg.id !acc;
            !acc)
  in
  ignore (walk edge);
  cache

let prune mgr edge ~threshold =
  if threshold < 0.0 then invalid_arg "Approx.prune: negative threshold";
  let norms = subtree_norms edge in
  let norm_of (e : Pkg.edge) =
    match e.Pkg.target with
    | Pkg.Terminal -> 1.0
    | Pkg.Node n -> Hashtbl.find norms n.Pkg.id
  in
  let memo = Hashtbl.create 256 in
  let rec rebuild (e : Pkg.edge) =
    if Pkg.is_zero e then e
    else
      match e.Pkg.target with
      | Pkg.Terminal -> e
      | Pkg.Node n ->
          let body =
            match Hashtbl.find_opt memo n.Pkg.id with
            | Some cached -> cached
            | None ->
                let children =
                  Array.map
                    (fun (child : Pkg.edge) ->
                      if Pkg.is_zero child then child
                      else if Cx.norm2 child.Pkg.w *. norm_of child < threshold then
                        Pkg.zero_edge mgr
                      else rebuild child)
                    n.Pkg.edges
                in
                let result = Pkg.make_node mgr ~var:n.Pkg.var children in
                Hashtbl.replace memo n.Pkg.id result;
                result
          in
          Pkg.scale mgr e.Pkg.w body
  in
  let pruned = rebuild edge in
  if Pkg.is_zero pruned then invalid_arg "Approx.prune: threshold removed the whole state";
  let norm2 = (Pkg.inner mgr pruned pruned).Cx.re in
  Pkg.scale mgr (Cx.of_float (1.0 /. Float.sqrt norm2)) pruned

let prune_state st ~threshold =
  let mgr = Sim.manager st in
  let before = Sim.root st in
  let after = prune mgr before ~threshold in
  Sim.set_root st after;
  let fidelity = Cx.norm2 (Pkg.inner mgr before after) in
  (* The pruned-away subtrees are garbage now; reclaim them eagerly. *)
  Pkg.maybe_gc mgr;
  fidelity
