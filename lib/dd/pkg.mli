(** The decision-diagram package (Section III of the paper).

    QMDD-style diagrams: a quantum state over qubits [0..n-1] is a chain of
    binary nodes (variable = qubit index, qubit [n-1] on top), a quantum
    operation a chain of 4-ary nodes; equal sub-diagrams are shared through
    a unique table and common amplitude factors are pulled into edge
    weights (canonicalised through {!Cnum_table}).  Diagrams are
    quasi-reduced: every path visits every variable, as in the QMDD
    literature (refs [28], [29]).

    All state lives in a manager value [t]; no global mutable state. *)

type node = private { id : int; var : int; edges : edge array }
(** [edges] has length 2 (vector node) or 4 (matrix node, row-major:
    indices [2r + c]). *)

and edge = { w_id : int; w : Qdt_linalg.Cx.t; target : target }
and target = Terminal | Node of node

type t
(** Manager: unique tables, the complex table and the compute caches. *)

val create : ?eps:float -> unit -> t

(** {1 Edges} *)

(** [terminal mgr w] is a terminal edge with canonical weight [w]. *)
val terminal : t -> Qdt_linalg.Cx.t -> edge

val zero_edge : t -> edge
val one_edge : t -> edge
val is_zero : edge -> bool

(** [edge_equal a b] — physical equality of canonical edges. *)
val edge_equal : edge -> edge -> bool

(** [make_node mgr ~var edges] normalises (largest-magnitude weight pulled
    up) and hash-conses; returns the zero edge when all children are zero.
    [edges] must have length 2 or 4. *)
val make_node : t -> var:int -> edge array -> edge

(** [scale mgr c e] multiplies the edge weight by [c]. *)
val scale : t -> Qdt_linalg.Cx.t -> edge -> edge

(** {1 Arithmetic} — all results canonical and cached. *)

(** [add mgr a b] — works for vector and matrix DDs alike. *)
val add : t -> edge -> edge -> edge

(** [mul_mv mgr m v] — matrix-vector product. *)
val mul_mv : t -> edge -> edge -> edge

(** [mul_mm mgr a b] — matrix-matrix product [a·b]. *)
val mul_mm : t -> edge -> edge -> edge

(** [adjoint mgr m] — conjugate transpose of a matrix DD. *)
val adjoint : t -> edge -> edge

(** [kron mgr ~lower_qubits upper lower] — [upper ⊗ lower]; [lower] spans
    [lower_qubits] qubits, [upper]'s variables are shifted above them.
    Both edges must be of the same kind (vector or matrix; for matrix DDs
    [lower_qubits] is the qubit count, not the node count). *)
val kron : t -> lower_qubits:int -> edge -> edge -> edge

(** [inner mgr a b] is [⟨a|b⟩] of two vector DDs. *)
val inner : t -> edge -> edge -> Qdt_linalg.Cx.t

(** [trace mgr m] is the trace of a matrix DD. *)
val trace : t -> edge -> Qdt_linalg.Cx.t

(** {1 Inspection} *)

(** [node_count e] — number of distinct nodes reachable from [e]
    (terminals excluded). *)
val node_count : edge -> int

(** [memory_bytes e] — approximate heap footprint of the shared diagram,
    for the E5 experiment (per node: var + id + per-edge weight/pointer). *)
val memory_bytes : edge -> int

(** [amplitude mgr e k] — amplitude of basis state [k] in a vector DD. *)
val amplitude : t -> edge -> int -> Qdt_linalg.Cx.t

(** [matrix_entry mgr e ~row ~col] — entry of a matrix DD. *)
val matrix_entry : t -> edge -> row:int -> col:int -> Qdt_linalg.Cx.t

(** [to_vec mgr e ~num_qubits] — densify a vector DD (small [n] only). *)
val to_vec : t -> edge -> num_qubits:int -> Qdt_linalg.Vec.t

(** [to_mat mgr e ~num_qubits] — densify a matrix DD (small [n] only). *)
val to_mat : t -> edge -> num_qubits:int -> Qdt_linalg.Mat.t

(** Statistics of the manager itself. *)
val unique_table_size : t -> int

val cnum_table_size : t -> int

type cache_stats = {
  unique_lookups : int;  (** hash-cons attempts (node constructions) *)
  unique_hits : int;  (** attempts answered by an existing node *)
  compute_lookups : int;  (** lookups across all operation caches *)
  compute_hits : int;  (** operation-cache hits *)
}

(** [cache_stats mgr] — cumulative unique-table and compute-cache counters
    since [create]; hit rates are the backend-telemetry signal for how much
    sharing/memoisation the workload exposes. *)
val cache_stats : t -> cache_stats
