(** The decision-diagram package (Section III of the paper).

    QMDD-style diagrams: a quantum state over qubits [0..n-1] is a chain of
    binary nodes (variable = qubit index, qubit [n-1] on top), a quantum
    operation a chain of 4-ary nodes; equal sub-diagrams are shared through
    a unique table and common amplitude factors are pulled into edge
    weights (canonicalised through {!Cnum_table}).  Diagrams are
    quasi-reduced: every path visits every variable, as in the QMDD
    literature (refs [28], [29]).

    All state lives in a manager value [t]; no global mutable state.

    {2 Memory management}

    The manager reclaims memory in two ways (see DESIGN.md, "DD memory
    management"):

    - {b Reference-counted mark-and-sweep GC} over the unique table.
      Clients pin the edges they keep across operations with {!ref_edge}
      (released with {!unref_edge}); {!gc} marks everything reachable from
      a pinned node and sweeps the rest — including the {!Cnum_table}
      entries only dead nodes referenced.  {!maybe_gc} runs a collection
      automatically once the live-node count passes an adaptive threshold
      (configured floor [gc_threshold]; doubles with the surviving
      population), and is called by [Sim], [Noise_sim] and [Build] at
      instruction boundaries.  Node and complex ids are never reused, so
      an unpinned edge held across a collection stays numerically valid —
      it only loses sharing with nodes built later.

    - {b Bounded compute caches}: the seven operation caches (add, mat-vec,
      mat-mat, adjoint, kron, inner, trace) are fixed-size direct-mapped
      arrays of [2^cache_bits] slots with replace-on-collision, so cache
      memory is O(1) per manager; they are invalidated wholesale on GC. *)

type node = private { id : int; var : int; edges : edge array; mutable rc : int }
(** [edges] has length 2 (vector node) or 4 (matrix node, row-major:
    indices [2r + c]).  [rc] is the external reference count maintained by
    {!ref_edge}/{!unref_edge}; read-only outside the package. *)

and edge = { w_id : int; w : Qdt_linalg.Cx.t; target : target }
and target = Terminal | Node of node

type t
(** Manager: unique tables, the complex table and the compute caches. *)

(** Defaults used by {!create} when the corresponding argument is absent,
    settable by front ends (the CLI's [--dd-gc-threshold] and
    [--dd-cache-bits] flags write here).  [default_gc_threshold = 16384]
    live nodes ([0] disables automatic GC); [default_cache_bits = 12]
    (4096 slots per compute cache). *)
val default_gc_threshold : int ref

val default_cache_bits : int ref

(** [create ?eps ?gc_threshold ?cache_bits ()] — [gc_threshold] is the
    live-node floor that arms automatic collection (0 disables it);
    [cache_bits] sizes every compute cache at [2^cache_bits] slots
    (clamped to [1..24]). *)
val create : ?eps:float -> ?gc_threshold:int -> ?cache_bits:int -> unit -> t

(** {1 Edges} *)

(** [terminal mgr w] is a terminal edge with canonical weight [w]. *)
val terminal : t -> Qdt_linalg.Cx.t -> edge

val zero_edge : t -> edge
val one_edge : t -> edge
val is_zero : edge -> bool

(** [edge_equal a b] — physical equality of canonical edges. *)
val edge_equal : edge -> edge -> bool

(** [make_node mgr ~var edges] normalises (largest-magnitude weight pulled
    up) and hash-conses; returns the zero edge when all children are zero.
    [edges] must have length 2 or 4. *)
val make_node : t -> var:int -> edge array -> edge

(** [scale mgr c e] multiplies the edge weight by [c]. *)
val scale : t -> Qdt_linalg.Cx.t -> edge -> edge

(** {1 Reference counting and garbage collection} *)

(** [ref_edge mgr e] pins [e]: increments the target node's reference
    count and keeps the edge weight alive in the complex table across
    collections.  Every [ref_edge] must be balanced by {!unref_edge}. *)
val ref_edge : t -> edge -> unit

val unref_edge : t -> edge -> unit

(** [gc mgr] — mark-and-sweep collection: marks every node reachable from
    a node with a positive reference count, sweeps the rest from the
    unique table together with the complex-table entries only they used,
    and invalidates the compute caches.  Returns the number of nodes
    collected.  Safe at any operation boundary; edges currently pinned
    (and their sub-diagrams) are never touched. *)
val gc : t -> int

(** [maybe_gc mgr] — run {!gc} if automatic collection is enabled and the
    live-node count exceeds the adaptive threshold. *)
val maybe_gc : t -> unit

(** [refcount e] — current external reference count of the target node
    (0 for terminal edges). *)
val refcount : edge -> int

(** {1 Arithmetic} — all results canonical and cached. *)

(** [add mgr a b] — works for vector and matrix DDs alike. *)
val add : t -> edge -> edge -> edge

(** [mul_mv mgr m v] — matrix-vector product. *)
val mul_mv : t -> edge -> edge -> edge

(** [mul_mm mgr a b] — matrix-matrix product [a·b]. *)
val mul_mm : t -> edge -> edge -> edge

(** [adjoint mgr m] — conjugate transpose of a matrix DD. *)
val adjoint : t -> edge -> edge

(** [kron mgr ~lower_qubits upper lower] — [upper ⊗ lower]; [lower] spans
    [lower_qubits] qubits, [upper]'s variables are shifted above them.
    Both edges must be of the same kind (vector or matrix; for matrix DDs
    [lower_qubits] is the qubit count, not the node count). *)
val kron : t -> lower_qubits:int -> edge -> edge -> edge

(** [inner mgr a b] is [⟨a|b⟩] of two vector DDs. *)
val inner : t -> edge -> edge -> Qdt_linalg.Cx.t

(** [trace mgr m] is the trace of a matrix DD. *)
val trace : t -> edge -> Qdt_linalg.Cx.t

(** {1 Inspection} *)

(** [node_count e] — number of distinct nodes reachable from [e]
    (terminals excluded). *)
val node_count : edge -> int

(** [memory_bytes e] — approximate heap footprint of the shared diagram,
    for the E5 experiment (per node: var + id + per-edge weight/pointer). *)
val memory_bytes : edge -> int

(** [amplitude mgr e k] — amplitude of basis state [k] in a vector DD. *)
val amplitude : t -> edge -> int -> Qdt_linalg.Cx.t

(** [matrix_entry mgr e ~row ~col] — entry of a matrix DD. *)
val matrix_entry : t -> edge -> row:int -> col:int -> Qdt_linalg.Cx.t

(** [to_vec mgr e ~num_qubits] — densify a vector DD (small [n] only). *)
val to_vec : t -> edge -> num_qubits:int -> Qdt_linalg.Vec.t

(** [to_mat mgr e ~num_qubits] — densify a matrix DD (small [n] only). *)
val to_mat : t -> edge -> num_qubits:int -> Qdt_linalg.Mat.t

(** Statistics of the manager itself. *)
val unique_table_size : t -> int

val cnum_table_size : t -> int

(** Complex-table entries currently stored (ids minus swept entries). *)
val cnum_live_entries : t -> int

(** Largest unique-table population seen, including dead nodes between
    collections — the bounded-memory signal of experiment E16. *)
val peak_unique_table_size : t -> int

(** Per-cache telemetry of one bounded compute cache. *)
type cache_telemetry = {
  cache_name : string;
  slots : int;  (** capacity (2^cache_bits) *)
  fill : int;  (** occupied slots *)
  lookups : int;
  hits : int;
  evictions : int;  (** stores that replaced a colliding entry *)
}

type cache_stats = {
  unique_lookups : int;  (** hash-cons attempts (node constructions) *)
  unique_hits : int;  (** attempts answered by an existing node *)
  compute_lookups : int;  (** lookups across all operation caches *)
  compute_hits : int;  (** operation-cache hits *)
  gc_runs : int;  (** collections since [create] *)
  nodes_collected : int;  (** unique-table entries swept, cumulative *)
  cnums_collected : int;  (** complex-table entries swept, cumulative *)
  peak_nodes : int;  (** peak unique-table population *)
  live_nodes : int;  (** current unique-table population *)
  caches : cache_telemetry list;  (** one record per compute cache *)
}

(** [cache_stats mgr] — cumulative unique-table, compute-cache and GC
    counters since [create]; hit rates are the backend-telemetry signal for
    how much sharing/memoisation the workload exposes. *)
val cache_stats : t -> cache_stats

(** [diff_cache_stats ~before ~after] — the counter deltas between two
    {!cache_stats} snapshots of the same manager, for per-job telemetry
    on a long-lived session package.  Monotone counters (lookups, hits,
    GC runs, sweep totals, evictions) are subtracted; level signals
    ([peak_nodes], [live_nodes], cache [fill]) keep [after]'s value. *)
val diff_cache_stats : before:cache_stats -> after:cache_stats -> cache_stats
