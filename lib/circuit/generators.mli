(** Standard circuit families.

    These are the workloads of the experiment harness: the paper's Bell
    running example, highly structured states on which decision diagrams
    excel (GHZ, W), the QFT and Grover kernels used by simulation
    benchmarks, arithmetic (a ripple-carry adder), and seeded random
    circuits for the unstructured regime. *)

(** The paper's running example (Fig. 1–3): H on the most significant
    qubit, then CNOT down — state (|00⟩+|11⟩)/√2. *)
val bell : Circuit.t

(** [ghz n] prepares (|0…0⟩+|1…1⟩)/√2 on [n ≥ 1] qubits. *)
val ghz : int -> Circuit.t

(** [w_state n] prepares the equal superposition of the [n] one-hot basis
    states, [n ≥ 1]. *)
val w_state : int -> Circuit.t

(** [qft ?swaps n] is the quantum Fourier transform; [swaps] (default
    [true]) appends the bit-reversal swaps so the unitary equals the DFT
    matrix with [ω = e^{2πi/2^n}]. *)
val qft : ?swaps:bool -> int -> Circuit.t

(** [grover ~marked n] runs ⌊π/4·√2ⁿ⌋ Grover iterations marking basis
    state [marked] on an [n]-qubit search register. *)
val grover : marked:int -> int -> Circuit.t

(** [grover_iterations ~marked ~iterations n] with an explicit count. *)
val grover_iterations : marked:int -> iterations:int -> int -> Circuit.t

(** [bernstein_vazirani ~secret n] recovers the [n]-bit [secret] of the
    inner-product oracle in one query; the result register measures to
    [secret] with certainty. *)
val bernstein_vazirani : secret:int -> int -> Circuit.t

(** [deutsch_jozsa ~balanced n]: constant vs balanced oracle demo on [n]
    query qubits.  The balanced oracle is f(x) = x₀. *)
val deutsch_jozsa : balanced:bool -> int -> Circuit.t

(** [cuccaro_adder n] is the in-place ripple-carry adder on registers
    a[0..n-1], b[0..n-1] plus carry-in and carry-out ancillas
    (2n+2 qubits total): (a, b) ↦ (a, a+b).  Layout: qubit 0 is the
    carry-in, then alternating b_i, a_i pairs, finally the carry-out. *)
val cuccaro_adder : int -> Circuit.t

(** [random_circuit ~seed ~depth n] generates [depth] layers; each layer
    applies a Haar-ish random U3 to every qubit and CNOTs on a random
    maximal pairing. *)
val random_circuit : seed:int -> depth:int -> int -> Circuit.t

(** [random_clifford_t ~seed ~gates ~t_fraction n] samples a gate sequence
    from {H, S, CX} with each position upgraded to a T gate with
    probability [t_fraction]. *)
val random_clifford_t : seed:int -> gates:int -> t_fraction:float -> int -> Circuit.t

(** [random_clifford ~seed ~gates n] samples from {H, S, S†, CX, CZ}. *)
val random_clifford : seed:int -> gates:int -> int -> Circuit.t

(** [phase_estimation ~phase bits] estimates the eigenphase [phase] (in
    turns) of [P(2π·phase)] on one eigenstate qubit, writing the [bits]-bit
    binary expansion to the counting register (counting register occupies
    qubits [1..bits], eigenstate is qubit 0). *)
val phase_estimation : phase:float -> int -> Circuit.t

(** [qaoa_maxcut ~seed ~layers n] — a QAOA MaxCut ansatz on a random
    graph over [n] vertices: per layer, [ZZ] cost interactions
    (CX·Rz·CX) on every edge and an [Rx] mixer on every qubit; angles
    are seeded at random. *)
val qaoa_maxcut : seed:int -> layers:int -> int -> Circuit.t

(** [hidden_shift ~shift n] — the Clifford hidden-shift benchmark for the
    bent function f(x,y) = x·y on an even number of qubits: measuring the
    output yields [shift] with certainty. *)
val hidden_shift : shift:int -> int -> Circuit.t

(** [quantum_volume ~seed ~depth n] — brickwork of random two-qubit
    blocks over random pairings (a quantum-volume-style stress load). *)
val quantum_volume : seed:int -> depth:int -> int -> Circuit.t

(** {1 Dynamic-circuit workloads} — mid-circuit measurement, reset, and
    classical control; these exercise the per-shot execution path. *)

(** [teleportation ?prep ()] teleports the state [prep] builds on qubit 0
    (default [H], i.e. |+⟩) onto qubit 2 via a Bell pair and classically
    controlled X/Z fixes.  Clbits: c0/c1 the Bell measurement, c2 the
    teleported state's readout — [P(c2 = 1)] equals the prepared |1⟩
    population. *)
val teleportation : ?prep:(Circuit.t -> Circuit.t) -> unit -> Circuit.t

(** [repeat_until_success ?rounds ()] — up to [rounds] (default 3)
    guarded H·T·H attempts on an ancilla, stopping on outcome 1 (each
    attempt succeeds with probability sin²(π/8)); success flips the data
    qubit.  Counts key is 3 with [1-(1-sin²(π/8))^rounds], else 0. *)
val repeat_until_success : ?rounds:int -> unit -> Circuit.t

(** [repetition_code ?cycles ?error ()] — [cycles] (default 1) rounds of
    distance-3 bit-flip syndrome extraction with classically controlled
    correction and ancilla resets; [error] (default false) injects an X
    on data qubit 0.  The final readout is deterministically 0. *)
val repetition_code : ?cycles:int -> ?error:bool -> unit -> Circuit.t
