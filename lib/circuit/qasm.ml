exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let pp_angle ppf theta =
  (* Render simple rational multiples of pi exactly; fall back to %.17g so
     the round-trip through text is lossless. *)
  let pi = Float.pi in
  let ratio = theta /. pi in
  let denominators = [ 1; 2; 3; 4; 6; 8; 16; 32 ] in
  let found =
    List.find_opt
      (fun d ->
        let num = ratio *. float_of_int d in
        Float.abs (num -. Float.round num) < 1e-12 && Float.abs num < 1e6)
      denominators
  in
  match found with
  | Some d ->
      let num = int_of_float (Float.round (ratio *. float_of_int d)) in
      if num = 0 then Format.fprintf ppf "0"
      else if d = 1 && num = 1 then Format.fprintf ppf "pi"
      else if d = 1 && num = -1 then Format.fprintf ppf "-pi"
      else if d = 1 then Format.fprintf ppf "%d*pi" num
      else if num = 1 then Format.fprintf ppf "pi/%d" d
      else if num = -1 then Format.fprintf ppf "-pi/%d" d
      else Format.fprintf ppf "%d*pi/%d" num d
  | None -> Format.fprintf ppf "%.17g" theta

let pp_qubits ppf qs =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
    (fun ppf q -> Format.fprintf ppf "q[%d]" q)
    ppf qs

let rec pp_instruction ppf instr =
  match instr with
  | Circuit.If { value; instr } ->
      Format.fprintf ppf "if(c==%d) %a" value pp_instruction instr
  | Circuit.Apply { gate; controls; target } ->
      let prefix = String.concat "" (List.map (fun _ -> "c") controls) in
      let base = Gate.name gate in
      (match Gate.params gate with
      | [] -> Format.fprintf ppf "%s%s" prefix base
      | ps ->
          Format.fprintf ppf "%s%s(%a)" prefix base
            (Format.pp_print_list
               ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
               pp_angle)
            ps);
      Format.fprintf ppf " %a;" pp_qubits (controls @ [ target ])
  | Circuit.Swap { controls; a; b } ->
      let prefix = String.concat "" (List.map (fun _ -> "c") controls) in
      Format.fprintf ppf "%sswap %a;" prefix pp_qubits (controls @ [ a; b ])
  | Circuit.Measure { qubit; clbit } ->
      Format.fprintf ppf "measure q[%d] -> c[%d];" qubit clbit
  | Circuit.Reset q -> Format.fprintf ppf "reset q[%d];" q
  | Circuit.Barrier qs -> Format.fprintf ppf "barrier %a;" pp_qubits qs

let pp ppf c =
  Format.fprintf ppf "OPENQASM 2.0;@.include \"qelib1.inc\";@.";
  Format.fprintf ppf "qreg q[%d];@." (Circuit.num_qubits c);
  if Circuit.num_clbits c > 0 then
    Format.fprintf ppf "creg c[%d];@." (Circuit.num_clbits c);
  List.iter
    (fun instr -> Format.fprintf ppf "%a@." pp_instruction instr)
    (Circuit.instructions c)

let to_string c = Format.asprintf "%a" pp c

(* ------------------------------------------------------------------ *)
(* Lexing                                                              *)
(* ------------------------------------------------------------------ *)

type token =
  | Ident of string
  | Number of float
  | Str of string
  | Lparen
  | Rparen
  | Lbracket
  | Rbracket
  | Comma
  | Semicolon
  | Arrow
  | Plus
  | Minus
  | Star
  | Slash
  | Lbrace
  | Rbrace
  | Eq (* == *)

let tokenize src =
  let tokens = ref [] in
  let line = ref 1 in
  let n = String.length src in
  let fail msg = raise (Parse_error (Printf.sprintf "line %d: %s" !line msg)) in
  let pos = ref 0 in
  let emit tok = tokens := (tok, !line) :: !tokens in
  while !pos < n do
    let ch = src.[!pos] in
    (match ch with
    | '\n' ->
        incr line;
        incr pos
    | ' ' | '\t' | '\r' -> incr pos
    | '/' when !pos + 1 < n && src.[!pos + 1] = '/' ->
        while !pos < n && src.[!pos] <> '\n' do
          incr pos
        done
    | '(' -> emit Lparen; incr pos
    | ')' -> emit Rparen; incr pos
    | '{' -> emit Lbrace; incr pos
    | '}' -> emit Rbrace; incr pos
    | '[' -> emit Lbracket; incr pos
    | ']' -> emit Rbracket; incr pos
    | ',' -> emit Comma; incr pos
    | ';' -> emit Semicolon; incr pos
    | '+' -> emit Plus; incr pos
    | '*' -> emit Star; incr pos
    | '/' -> emit Slash; incr pos
    | '=' ->
        if !pos + 1 < n && src.[!pos + 1] = '=' then begin
          emit Eq;
          pos := !pos + 2
        end
        else fail "expected '==' (single '=' is not an operator)"
    | '-' ->
        if !pos + 1 < n && src.[!pos + 1] = '>' then begin
          emit Arrow;
          pos := !pos + 2
        end
        else begin
          emit Minus;
          incr pos
        end
    | '"' ->
        let start = !pos + 1 in
        let stop = ref start in
        while !stop < n && src.[!stop] <> '"' do
          incr stop
        done;
        if !stop >= n then fail "unterminated string";
        emit (Str (String.sub src start (!stop - start)));
        pos := !stop + 1
    | '0' .. '9' | '.' ->
        let start = !pos in
        while
          !pos < n
          && (match src.[!pos] with
             | '0' .. '9' | '.' | 'e' | 'E' -> true
             | '+' | '-' ->
                 !pos > start
                 && (src.[!pos - 1] = 'e' || src.[!pos - 1] = 'E')
             | _ -> false)
        do
          incr pos
        done;
        let text = String.sub src start (!pos - start) in
        (match float_of_string_opt text with
        | Some f -> emit (Number f)
        | None -> fail (Printf.sprintf "bad number %S" text))
    | 'a' .. 'z' | 'A' .. 'Z' | '_' ->
        let start = !pos in
        while
          !pos < n
          && (match src.[!pos] with
             | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' -> true
             | _ -> false)
        do
          incr pos
        done;
        emit (Ident (String.sub src start (!pos - start)))
    | _ -> fail (Printf.sprintf "unexpected character %C" ch));
  done;
  List.rev !tokens

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

type state = { mutable toks : (token * int) list }

let fail_at line msg = raise (Parse_error (Printf.sprintf "line %d: %s" line msg))

let peek st = match st.toks with [] -> None | (tok, line) :: _ -> Some (tok, line)

let next st =
  match st.toks with
  | [] -> raise (Parse_error "unexpected end of input")
  | (tok, line) :: rest ->
      st.toks <- rest;
      (tok, line)

let expect st want msg =
  let tok, line = next st in
  if tok <> want then fail_at line msg

let expect_ident st =
  match next st with
  | Ident id, _ -> id
  | _, line -> fail_at line "expected identifier"

let expect_nat st =
  match next st with
  | Number f, line ->
      let k = int_of_float f in
      if Float.of_int k <> f || k < 0 then fail_at line "expected non-negative integer";
      k
  | _, line -> fail_at line "expected integer"

(* Angle expressions: expr := term (('+'|'-') term)*;
   term := factor (('*'|'/') factor)*; factor := number | pi | identifier
   | '-' factor | '(' expr ')'.  Identifiers other than [pi] are the
   formal parameters of a user [gate] definition, resolved at expansion
   time. *)
type expr =
  | Enum of float
  | Evar of string * int (* declaration line, for error reporting *)
  | Eneg of expr
  | Ebin of char * expr * expr

let rec parse_sym_expr st =
  let v = ref (parse_term st) in
  let rec loop () =
    match peek st with
    | Some (Plus, _) ->
        ignore (next st);
        v := Ebin ('+', !v, parse_term st);
        loop ()
    | Some (Minus, _) ->
        ignore (next st);
        v := Ebin ('-', !v, parse_term st);
        loop ()
    | _ -> ()
  in
  loop ();
  !v

and parse_term st =
  let v = ref (parse_factor st) in
  let rec loop () =
    match peek st with
    | Some (Star, _) ->
        ignore (next st);
        v := Ebin ('*', !v, parse_factor st);
        loop ()
    | Some (Slash, _) ->
        ignore (next st);
        v := Ebin ('/', !v, parse_factor st);
        loop ()
    | _ -> ()
  in
  loop ();
  !v

and parse_factor st =
  match next st with
  | Number f, _ -> Enum f
  | Ident "pi", _ -> Enum Float.pi
  | Ident name, line -> Evar (name, line)
  | Minus, _ -> Eneg (parse_factor st)
  | Lparen, _ ->
      let v = parse_sym_expr st in
      expect st Rparen "expected ')'";
      v
  | _, line -> fail_at line "expected angle expression"

let rec eval_expr env = function
  | Enum f -> f
  | Evar (name, line) -> (
      match List.assoc_opt name env with
      | Some v -> v
      | None -> fail_at line (Printf.sprintf "unknown parameter %s" name))
  | Eneg e -> -.eval_expr env e
  | Ebin ('+', a, b) -> eval_expr env a +. eval_expr env b
  | Ebin ('-', a, b) -> eval_expr env a -. eval_expr env b
  | Ebin ('*', a, b) -> eval_expr env a *. eval_expr env b
  | Ebin ('/', a, b) -> eval_expr env a /. eval_expr env b
  | Ebin _ -> assert false

let parse_expr st = eval_expr [] (parse_sym_expr st)

let parse_index st reg line =
  let id = expect_ident st in
  if id <> reg then fail_at line (Printf.sprintf "expected register %s, got %s" reg id);
  expect st Lbracket "expected '['";
  let k = expect_nat st in
  expect st Rbracket "expected ']'";
  k

let base_gate name args line =
  let angle k = List.nth args k in
  let arity = List.length args in
  let need k =
    if arity <> k then
      fail_at line (Printf.sprintf "gate %s expects %d parameter(s), got %d" name k arity)
  in
  match name with
  | "id" -> need 0; Gate.I
  | "x" -> need 0; Gate.X
  | "y" -> need 0; Gate.Y
  | "z" -> need 0; Gate.Z
  | "h" -> need 0; Gate.H
  | "s" -> need 0; Gate.S
  | "sdg" -> need 0; Gate.Sdg
  | "t" -> need 0; Gate.T
  | "tdg" -> need 0; Gate.Tdg
  | "sx" -> need 0; Gate.Sx
  | "sxdg" -> need 0; Gate.Sxdg
  | "rx" -> need 1; Gate.Rx (angle 0)
  | "ry" -> need 1; Gate.Ry (angle 0)
  | "rz" -> need 1; Gate.Rz (angle 0)
  | "p" | "u1" | "phase" -> need 1; Gate.Phase (angle 0)
  | "u3" | "u" ->
      need 3;
      Gate.U3 { theta = angle 0; phi = angle 1; lambda = angle 2 }
  | _ -> fail_at line (Printf.sprintf "unknown gate %s" name)

let strip_controls name =
  let rec loop k =
    if
      k < String.length name - 1
      && name.[k] = 'c'
      && (* don't strip the 'c' that is part of "cx"-less names like
            "ch" -> 1 control of h; we just count leading c's and require
            the remainder to be a valid base or swap *)
      true
    then loop (k + 1)
    else k
  in
  (* Try all possible control counts from longest remainder to shortest so
     e.g. "cswap", "ccx", "ch", "cz" all resolve; prefer fewer controls so
     plain names win ("sx" should not parse as c + ...). *)
  let max_c = loop 0 in
  let candidates = List.init (max_c + 1) (fun k -> k) in
  (candidates, fun k -> String.sub name k (String.length name - k))

let known_base = function
  | "id" | "x" | "y" | "z" | "h" | "s" | "sdg" | "t" | "tdg" | "sx" | "sxdg"
  | "rx" | "ry" | "rz" | "p" | "u1" | "phase" | "u3" | "u" | "swap" ->
      true
  | _ -> false

let resolve_gate_name name line =
  let candidates, remainder = strip_controls name in
  let rec try_counts = function
    | [] -> fail_at line (Printf.sprintf "unknown gate %s" name)
    | k :: rest ->
        let base = remainder k in
        if known_base base then (k, base) else try_counts rest
  in
  try_counts candidates

(* Build the instruction for a (possibly c-prefixed) gate name applied to
   evaluated angles and absolute qubit operands. *)
let make_instruction name args operands line =
  let num_controls, base = resolve_gate_name name line in
  if base = "swap" then begin
    if List.length operands <> num_controls + 2 then fail_at line "swap needs two targets";
    let rec split k ops ctrls =
      if k = 0 then (List.rev ctrls, ops)
      else
        match ops with
        | op :: rest -> split (k - 1) rest (op :: ctrls)
        | [] -> fail_at line "not enough operands"
    in
    let controls, targets = split num_controls operands [] in
    match targets with
    | [ a; b ] -> Circuit.Swap { controls; a; b }
    | _ -> fail_at line "swap needs two targets"
  end
  else begin
    if List.length operands <> num_controls + 1 then
      fail_at line (Printf.sprintf "gate %s expects %d operand(s)" name (num_controls + 1));
    let rec split k ops ctrls =
      if k = 0 then (List.rev ctrls, ops)
      else
        match ops with
        | op :: rest -> split (k - 1) rest (op :: ctrls)
        | [] -> fail_at line "not enough operands"
    in
    let controls, targets = split num_controls operands [] in
    match targets with
    | [ target ] -> Circuit.Apply { gate = base_gate base args line; controls; target }
    | _ -> fail_at line "expected one target"
  end

(* User gate definitions: formal parameters, formal operands, and a body of
   (callee, symbolic angles, formal operand names). *)
type gate_def = {
  def_params : string list;
  def_operands : string list;
  def_body : (string * expr list * string list * int) list;
}

let of_string src =
  let st = { toks = tokenize src } in
  let definitions : (string, gate_def) Hashtbl.t = Hashtbl.create 8 in
  let rec expand_call name (args : float list) (operands : int list) line acc =
    match Hashtbl.find_opt definitions name with
    | None -> make_instruction name args operands line :: acc
    | Some def ->
        if List.length args <> List.length def.def_params then
          fail_at line (Printf.sprintf "gate %s expects %d parameter(s)" name (List.length def.def_params));
        if List.length operands <> List.length def.def_operands then
          fail_at line (Printf.sprintf "gate %s expects %d operand(s)" name (List.length def.def_operands));
        let env = List.combine def.def_params args in
        let omap = List.combine def.def_operands operands in
        List.fold_left
          (fun acc (callee, exprs, formals, body_line) ->
            let actual_args = List.map (eval_expr env) exprs in
            let actual_ops =
              List.map
                (fun f ->
                  match List.assoc_opt f omap with
                  | Some q -> q
                  | None -> fail_at body_line (Printf.sprintf "unknown operand %s" f))
                formals
            in
            expand_call callee actual_args actual_ops body_line acc)
          acc def.def_body
  in
  let add_checked line instr c =
    try Circuit.add instr c
    with Invalid_argument msg -> fail_at line msg
  in
  (* Header *)
  (match peek st with
  | Some (Ident "OPENQASM", _) ->
      ignore (next st);
      (match next st with
      | Number _, _ -> ()
      | _, line -> fail_at line "expected version number");
      expect st Semicolon "expected ';'"
  | _ -> ());
  (match peek st with
  | Some (Ident "include", _) ->
      ignore (next st);
      (match next st with
      | Str _, _ -> ()
      | _, line -> fail_at line "expected include path");
      expect st Semicolon "expected ';'"
  | _ -> ());
  let qreg = ref None in
  let creg_size = ref 0 in
  let circuit = ref None in
  let get_circuit line =
    match !circuit with
    | Some c -> c
    | None -> fail_at line "gate before qreg declaration"
  in
  let set_circuit c = circuit := Some c in
  (* Auto-grow the creg so [measure -> c[k]] works without a declaration. *)
  let grow_creg k c =
    if Circuit.num_clbits c > k then c
    else
      List.fold_left
        (fun acc instr -> Circuit.add instr acc)
        (Circuit.empty ~clbits:(k + 1) (Circuit.num_qubits c))
        (Circuit.instructions c)
  in
  (* [measure q[i] -> c[k]] up to (not including) the ';'. *)
  let parse_measure line =
    let reg = match !qreg with Some r -> r | None -> fail_at line "no qreg" in
    let q = parse_index st reg line in
    expect st Arrow "expected '->'";
    let _creg_name = expect_ident st in
    expect st Lbracket "expected '['";
    let k = expect_nat st in
    expect st Rbracket "expected ']'";
    (q, k)
  in
  (* A gate call [name(args) q[i],...;] expanded through user definitions. *)
  let parse_gate_call name line =
    let reg = match !qreg with Some r -> r | None -> fail_at line "no qreg" in
    let args =
      match peek st with
      | Some (Lparen, _) ->
          ignore (next st);
          let args = ref [ parse_expr st ] in
          let rec more () =
            match peek st with
            | Some (Comma, _) ->
                ignore (next st);
                args := parse_expr st :: !args;
                more ()
            | _ -> ()
          in
          more ();
          expect st Rparen "expected ')'";
          List.rev !args
      | _ -> []
    in
    let operands = ref [ parse_index st reg line ] in
    let rec more () =
      match peek st with
      | Some (Comma, _) ->
          ignore (next st);
          operands := parse_index st reg line :: !operands;
          more ()
      | _ -> ()
    in
    more ();
    expect st Semicolon "expected ';'";
    List.rev (expand_call name args (List.rev !operands) line [])
  in
  let rec loop () =
    match peek st with
    | None -> ()
    | Some (Ident "qreg", line) ->
        ignore (next st);
        if !qreg <> None then fail_at line "only one qreg supported";
        let name = expect_ident st in
        expect st Lbracket "expected '['";
        let size = expect_nat st in
        expect st Rbracket "expected ']'";
        expect st Semicolon "expected ';'";
        qreg := Some name;
        set_circuit (Circuit.empty ~clbits:!creg_size size);
        loop ()
    | Some (Ident "creg", line) ->
        ignore (next st);
        let _name = expect_ident st in
        expect st Lbracket "expected '['";
        let size = expect_nat st in
        expect st Rbracket "expected ']'";
        expect st Semicolon "expected ';'";
        creg_size := size;
        (match !circuit with
        | Some c ->
            if Circuit.num_clbits c > 0 then fail_at line "only one creg supported";
            let rebuilt =
              List.fold_left
                (fun acc instr -> Circuit.add instr acc)
                (Circuit.empty ~clbits:size (Circuit.num_qubits c))
                (Circuit.instructions c)
            in
            set_circuit rebuilt
        | None -> ());
        loop ()
    | Some (Ident "measure", line) ->
        ignore (next st);
        let q, k = parse_measure line in
        expect st Semicolon "expected ';'";
        let c = grow_creg k (get_circuit line) in
        set_circuit (add_checked line (Circuit.Measure { qubit = q; clbit = k }) c);
        loop ()
    | Some (Ident "if", line) ->
        ignore (next st);
        expect st Lparen "expected '(' after if";
        let _creg_name = expect_ident st in
        expect st Eq "expected '=='";
        let value = expect_nat st in
        expect st Rparen "expected ')'";
        (match peek st with
        | Some (Ident "measure", mline) ->
            ignore (next st);
            let q, k = parse_measure mline in
            expect st Semicolon "expected ';'";
            let c = grow_creg k (get_circuit mline) in
            set_circuit
              (add_checked mline
                 (Circuit.If { value; instr = Circuit.Measure { qubit = q; clbit = k } })
                 c)
        | Some (Ident "reset", rline) ->
            ignore (next st);
            let reg = match !qreg with Some r -> r | None -> fail_at rline "no qreg" in
            let q = parse_index st reg rline in
            expect st Semicolon "expected ';'";
            set_circuit
              (add_checked rline
                 (Circuit.If { value; instr = Circuit.Reset q })
                 (get_circuit rline))
        | Some (Ident name, gline) ->
            ignore (next st);
            let instrs = parse_gate_call name gline in
            List.iter
              (fun instr ->
                set_circuit
                  (add_checked gline (Circuit.If { value; instr }) (get_circuit gline)))
              instrs
        | Some (_, l) -> fail_at l "expected quantum operation after if(...)"
        | None -> fail_at line "unexpected end of input after if(...)");
        loop ()
    | Some (Ident "barrier", line) ->
        ignore (next st);
        let reg = match !qreg with Some r -> r | None -> fail_at line "no qreg" in
        let qs = ref [] in
        (match peek st with
        | Some (Semicolon, _) ->
            qs := List.init (Circuit.num_qubits (get_circuit line)) (fun q -> q)
        | _ ->
            qs := [ parse_index st reg line ];
            let rec more () =
              match peek st with
              | Some (Comma, _) ->
                  ignore (next st);
                  qs := parse_index st reg line :: !qs;
                  more ()
              | _ -> ()
            in
            more ());
        expect st Semicolon "expected ';'";
        set_circuit (add_checked line (Circuit.Barrier (List.rev !qs)) (get_circuit line));
        loop ()
    | Some (Ident "reset", line) ->
        ignore (next st);
        let reg = match !qreg with Some r -> r | None -> fail_at line "no qreg" in
        let q = parse_index st reg line in
        expect st Semicolon "expected ';'";
        set_circuit (add_checked line (Circuit.Reset q) (get_circuit line));
        loop ()
    | Some (Ident "gate", line) ->
        ignore (next st);
        let name = expect_ident st in
        if Hashtbl.mem definitions name then
          fail_at line (Printf.sprintf "gate %s already defined" name);
        let params =
          match peek st with
          | Some (Lparen, _) ->
              ignore (next st);
              let ps = ref [ expect_ident st ] in
              let rec more () =
                match peek st with
                | Some (Comma, _) ->
                    ignore (next st);
                    ps := expect_ident st :: !ps;
                    more ()
                | _ -> ()
              in
              more ();
              expect st Rparen "expected ')'";
              List.rev !ps
          | _ -> []
        in
        let formals = ref [ expect_ident st ] in
        let rec more_formals () =
          match peek st with
          | Some (Comma, _) ->
              ignore (next st);
              formals := expect_ident st :: !formals;
              more_formals ()
          | _ -> ()
        in
        more_formals ();
        let formals = List.rev !formals in
        expect st Lbrace "expected '{'";
        let body = ref [] in
        let rec body_loop () =
          match peek st with
          | Some (Rbrace, _) -> ignore (next st)
          | Some (Ident callee, body_line) ->
              ignore (next st);
              let exprs =
                match peek st with
                | Some (Lparen, _) ->
                    ignore (next st);
                    let es = ref [ parse_sym_expr st ] in
                    let rec more () =
                      match peek st with
                      | Some (Comma, _) ->
                          ignore (next st);
                          es := parse_sym_expr st :: !es;
                          more ()
                      | _ -> ()
                    in
                    more ();
                    expect st Rparen "expected ')'";
                    List.rev !es
                | _ -> []
              in
              let ops = ref [ expect_ident st ] in
              let rec more_ops () =
                match peek st with
                | Some (Comma, _) ->
                    ignore (next st);
                    ops := expect_ident st :: !ops;
                    more_ops ()
                | _ -> ()
              in
              more_ops ();
              expect st Semicolon "expected ';'";
              body := (callee, exprs, List.rev !ops, body_line) :: !body;
              body_loop ()
          | Some (_, l) -> fail_at l "expected gate call or '}'"
          | None -> fail_at line "unterminated gate body"
        in
        body_loop ();
        Hashtbl.replace definitions name
          { def_params = params; def_operands = formals; def_body = List.rev !body };
        loop ()
    | Some (Ident name, line) ->
        ignore (next st);
        let instrs = parse_gate_call name line in
        List.iter
          (fun instr -> set_circuit (add_checked line instr (get_circuit line)))
          instrs;
        loop ()
    | Some (_, line) -> fail_at line "expected statement"
  in
  loop ();
  match !circuit with
  | Some c -> c
  | None -> raise (Parse_error "no qreg declaration found")
