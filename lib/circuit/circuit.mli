(** Quantum circuits: the common input language of all four backends.

    A circuit is an ordered list of instructions over [num_qubits] qubits
    and [num_clbits] classical bits.  Values are immutable; the builder
    functions return extended circuits and are designed for pipelining:

    {[
      let bell = Circuit.(empty 2 |> h 1 |> cx 1 0)
    ]}

    Qubit [n-1] is the most significant (paper convention, Section III). *)

type instruction =
  | Apply of { gate : Gate.t; controls : int list; target : int }
      (** [gate] on [target], conditioned on all [controls] being |1⟩.
          An empty control list is an ordinary single-qubit gate. *)
  | Swap of { controls : int list; a : int; b : int }
      (** SWAP of [a] and [b]; non-empty [controls] makes it a Fredkin. *)
  | Measure of { qubit : int; clbit : int }
  | Reset of int
  | Barrier of int list
  | If of { value : int; instr : instruction }
      (** Classically-controlled operation (OpenQASM 2 [if (c==value) ...]):
          run [instr] when the whole classical register equals [value].
          [instr] may be any gate, measure or reset — not a barrier and not
          another conditional. *)

type t

(** [empty ?clbits n] is the empty circuit on [n] qubits.
    @raise Invalid_argument if [n <= 0]. *)
val empty : ?clbits:int -> int -> t

val num_qubits : t -> int
val num_clbits : t -> int

(** [instructions c] in program order. *)
val instructions : t -> instruction list

val length : t -> int

(** [add instr c] appends [instr].
    @raise Invalid_argument on out-of-range or overlapping qubits. *)
val add : instruction -> t -> t

(** {1 Gate builders} — each appends one instruction. *)

val gate : Gate.t -> int -> t -> t
val cgate : Gate.t -> controls:int list -> target:int -> t -> t
val x : int -> t -> t
val y : int -> t -> t
val z : int -> t -> t
val h : int -> t -> t
val s : int -> t -> t
val sdg : int -> t -> t
val t : int -> t -> t
val tdg : int -> t -> t
val sx : int -> t -> t
val rx : float -> int -> t -> t
val ry : float -> int -> t -> t
val rz : float -> int -> t -> t
val phase : float -> int -> t -> t
val u3 : theta:float -> phi:float -> lambda:float -> int -> t -> t
val cx : int -> int -> t -> t
val cy : int -> int -> t -> t
val cz : int -> int -> t -> t
val ch : int -> int -> t -> t
val cphase : float -> int -> int -> t -> t
val crz : float -> int -> int -> t -> t
val cry : float -> int -> int -> t -> t
val ccx : int -> int -> int -> t -> t
val ccz : int -> int -> int -> t -> t
val swap : int -> int -> t -> t
val cswap : int -> int -> int -> t -> t
val measure : qubit:int -> clbit:int -> t -> t
val measure_all : t -> t
val reset : int -> t -> t
val barrier : t -> t

(** [if_eq value instr c] appends [instr] conditioned on the classical
    register equalling [value].
    @raise Invalid_argument when the circuit has no classical register,
    [value] is negative or does not fit the register, or [instr] is a
    barrier or a nested conditional. *)
val if_eq : int -> instruction -> t -> t

(** [if_gate value g q c] — conditional single-qubit gate. *)
val if_gate : int -> Gate.t -> int -> t -> t

val if_x : int -> int -> t -> t
val if_z : int -> int -> t -> t

(** {1 Whole-circuit operations} *)

(** [append a b] runs [a] then [b].
    @raise Invalid_argument if qubit counts differ. *)
val append : t -> t -> t

(** [adjoint c] is the inverse circuit [c†]: reversed order, adjoint gates.
    @raise Invalid_argument if [c] contains measurements or resets. *)
val adjoint : t -> t

(** [remap f c] renames qubits through [f] (must be injective on use). *)
val remap : (int -> int) -> t -> t

(** [is_unitary_only c] holds when [c] has no measurement/reset/conditional. *)
val is_unitary_only : t -> bool

(** [unitary_instructions c] drops measurements, resets, barriers and
    conditionals. *)
val unitary_instructions : t -> instruction list

(** [has_conditionals c] — does [c] contain an [If]? *)
val has_conditionals : t -> bool

(** [has_measure c] — does [c] measure anything (conditionals included)? *)
val has_measure : t -> bool

(** [is_dynamic c] — the shot-loop classification: true when [c] contains a
    conditional, a reset, or a mid-circuit measurement (a measured qubit
    that is used again later).  Static circuits can be simulated once and
    sampled; dynamic circuits must re-execute per shot. *)
val is_dynamic : t -> bool

(** [creg_value clbits] packs a classical-bit array into an integer
    (clbit [k] is bit [k]) — the value OpenQASM 2 [if (c==n)] tests. *)
val creg_value : int array -> int

(** {1 Statistics} *)

(** [gate_counts c] maps gate mnemonics ("h", "cx", "ccx", "swap", …, with
    one leading "c" per control) to multiplicities. *)
val gate_counts : t -> (string * int) list

(** [count_total c] counts gate instructions (barriers excluded). *)
val count_total : t -> int

(** [count_two_qubit c] counts instructions touching exactly two qubits. *)
val count_two_qubit : t -> int

(** [t_count c] counts T/T† gates (controls included in the count basis:
    a controlled-T counts once). *)
val t_count : t -> int

(** [depth c] is the circuit depth: the longest chain of instructions that
    share a qubit (barriers synchronise but do not count). *)
val depth : t -> int

(** [qubits_of_instruction i] lists every qubit [i] touches. *)
val qubits_of_instruction : instruction -> int list

(** [equal a b] is structural equality (angles within [1e-12]). *)
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
val pp_instruction : Format.formatter -> instruction -> unit
