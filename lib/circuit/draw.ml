(* Each instruction becomes one column.  A column stores a cell per qubit
   (empty = plain wire) and a set of qubit gaps crossed by a vertical
   connector.  UTF-8 box characters are used, so cell widths are counted in
   code points, not bytes. *)

type column = { cells : string array; spans : bool array }

let utf8_length s =
  (* Count code points: bytes that are not UTF-8 continuation bytes. *)
  let count = ref 0 in
  String.iter (fun ch -> if Char.code ch land 0xC0 <> 0x80 then incr count) s;
  !count

let gate_label gate =
  match Gate.params gate with
  | [] -> Printf.sprintf "[%s]" (Gate.name gate)
  | [ p ] -> Printf.sprintf "[%s %.3g]" (Gate.name gate) p
  | ps ->
      Printf.sprintf "[%s %s]" (Gate.name gate)
        (String.concat "," (List.map (Printf.sprintf "%.2g") ps))

let column_of_instruction n instr =
  let cells = Array.make n "" and spans = Array.make (max 0 (n - 1)) false in
  let mark_span qs =
    match qs with
    | [] -> ()
    | q0 :: _ ->
        let lo = List.fold_left min q0 qs and hi = List.fold_left max q0 qs in
        for gap = lo to hi - 1 do
          spans.(gap) <- true
        done
  in
  let rec fill instr =
    match instr with
    | Circuit.Apply { gate; controls; target } ->
        cells.(target) <- gate_label gate;
        List.iter (fun ctl -> cells.(ctl) <- "●") controls;
        mark_span (target :: controls)
    | Circuit.Swap { controls; a; b } ->
        cells.(a) <- "✕";
        cells.(b) <- "✕";
        List.iter (fun ctl -> cells.(ctl) <- "●") controls;
        mark_span (a :: b :: controls)
    | Circuit.Measure { qubit; _ } -> cells.(qubit) <- "[M]"
    | Circuit.Reset q -> cells.(q) <- "[0]"
    | Circuit.Barrier qs -> List.iter (fun q -> cells.(q) <- "░") qs
    | Circuit.If { value; instr } ->
        (* render the guarded op, then tag its cells with the condition *)
        fill instr;
        let tag = Printf.sprintf "?%d" value in
        Array.iteri (fun q cell -> if cell <> "" then cells.(q) <- cell ^ tag) cells
  in
  fill instr;
  { cells; spans }

let pad_wire cell width =
  let len = utf8_length cell in
  let left = (width - len) / 2 in
  let right = width - len - left in
  String.concat ""
    [ String.concat "" (List.init left (fun _ -> "─"));
      (if cell = "" then String.concat "" (List.init 1 (fun _ -> "")) else cell);
      String.concat "" (List.init right (fun _ -> "─")) ]

let pad_gap has_line width =
  let left = (width - 1) / 2 in
  let right = width - 1 - left in
  String.concat ""
    [ String.make left ' '; (if has_line then "│" else " "); String.make right ' ' ]

(* Pack parallel instructions into shared columns: an instruction joins the
   current column when its full qubit span (controls included) is disjoint
   from every span already in it. *)
let pack_columns n instrs =
  let span instr =
    match Circuit.qubits_of_instruction instr with
    | [] -> (0, -1)
    | q :: rest -> (List.fold_left min q rest, List.fold_left max q rest)
  in
  let merge col instr =
    let cells = Array.copy col.cells and spans = Array.copy col.spans in
    let single = column_of_instruction n instr in
    Array.iteri (fun k cell -> if cell <> "" then cells.(k) <- cell) single.cells;
    Array.iteri (fun k s -> if s then spans.(k) <- true) single.spans;
    { cells; spans }
  in
  let conflicts col instr =
    let lo, hi = span instr in
    let busy = ref false in
    for q = lo to hi do
      if col.cells.(q) <> "" then busy := true;
      if q < hi && col.spans.(q) then busy := true
    done;
    (* also block if an existing gate's span crosses our cells *)
    for q = max 0 (lo - 1) to min (n - 2) hi do
      if col.spans.(q) then busy := true
    done;
    !busy
  in
  List.fold_left
    (fun acc instr ->
      match acc with
      | current :: rest when not (conflicts current instr) ->
          merge current instr :: rest
      | _ -> column_of_instruction n instr :: acc)
    [] instrs
  |> List.rev

let render c =
  let n = Circuit.num_qubits c in
  let columns = pack_columns n (Circuit.instructions c) in
  let widths =
    List.map
      (fun col -> Array.fold_left (fun acc cell -> max acc (utf8_length cell)) 1 col.cells + 2)
      columns
  in
  let label q = Printf.sprintf "q%-2d: " q in
  let buf = Buffer.create 1024 in
  (* Most significant qubit on top. *)
  for q = n - 1 downto 0 do
    Buffer.add_string buf (label q);
    List.iter2
      (fun col width ->
        Buffer.add_string buf
          (pad_wire (if col.cells.(q) = "" then "─" else col.cells.(q)) width))
      columns widths;
    Buffer.add_char buf '\n';
    if q > 0 then begin
      Buffer.add_string buf (String.make (String.length (label q)) ' ');
      List.iter2
        (fun col width -> Buffer.add_string buf (pad_gap col.spans.(q - 1) width))
        columns widths;
      Buffer.add_char buf '\n'
    end
  done;
  Buffer.contents buf

let pp ppf c = Format.pp_print_string ppf (render c)
