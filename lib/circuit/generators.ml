let bell = Circuit.(empty 2 |> h 1 |> cx 1 0)

let ghz n =
  if n < 1 then invalid_arg "Generators.ghz: need n >= 1";
  let c = Circuit.(empty n |> h (n - 1)) in
  let rec chain q c = if q < 0 then c else chain (q - 1) (Circuit.cx (q + 1) q c) in
  chain (n - 2) c

let w_state n =
  if n < 1 then invalid_arg "Generators.w_state: need n >= 1";
  let c = Circuit.(empty n |> x 0) in
  (* Split the single excitation down the register: after step k the
     excitation sits on qubit k with amplitude √((n-k)/n) remaining. *)
  let rec step k c =
    if k >= n - 1 then c
    else
      let remaining = float_of_int (n - k) in
      let theta = 2.0 *. Float.acos (1.0 /. Float.sqrt remaining) in
      c
      |> Circuit.cry theta k (k + 1)
      |> Circuit.cx (k + 1) k
      |> step (k + 1)
  in
  step 0 c

let qft ?(swaps = true) n =
  if n < 1 then invalid_arg "Generators.qft: need n >= 1";
  let c = ref (Circuit.empty n) in
  for j = n - 1 downto 0 do
    c := Circuit.h j !c;
    for k = j - 1 downto 0 do
      let theta = Float.pi /. Float.of_int (1 lsl (j - k)) in
      c := Circuit.cphase theta k j !c
    done
  done;
  if swaps then
    for q = 0 to (n / 2) - 1 do
      c := Circuit.swap q (n - 1 - q) !c
    done;
  !c

let multi_controlled_z n c =
  if n = 1 then Circuit.z 0 c
  else Circuit.cgate Gate.Z ~controls:(List.init (n - 1) (fun q -> q + 1)) ~target:0 c

let with_x_frame ~bits n c ~body =
  let flip c =
    let rec loop q c =
      if q >= n then c
      else loop (q + 1) (if bits land (1 lsl q) = 0 then Circuit.x q c else c)
    in
    loop 0 c
  in
  c |> flip |> body |> flip

let grover_iterations ~marked ~iterations n =
  if n < 1 then invalid_arg "Generators.grover: need n >= 1";
  if marked < 0 || marked >= 1 lsl n then invalid_arg "Generators.grover: bad marked state";
  let h_all c =
    let rec loop q c = if q >= n then c else loop (q + 1) (Circuit.h q c) in
    loop 0 c
  in
  let oracle c = with_x_frame ~bits:marked n c ~body:(multi_controlled_z n) in
  let diffusion c =
    c |> h_all |> with_x_frame ~bits:0 n ~body:(multi_controlled_z n) |> h_all
  in
  let rec iterate k c = if k = 0 then c else iterate (k - 1) (c |> oracle |> diffusion) in
  Circuit.empty n |> h_all |> iterate iterations

let grover ~marked n =
  let iterations =
    max 1 (int_of_float (Float.round (Float.pi /. 4.0 *. Float.sqrt (Float.of_int (1 lsl n)) -. 0.5)))
  in
  grover_iterations ~marked ~iterations n

let bernstein_vazirani ~secret n =
  if n < 1 then invalid_arg "Generators.bernstein_vazirani: need n >= 1";
  if secret < 0 || secret >= 1 lsl n then
    invalid_arg "Generators.bernstein_vazirani: secret out of range";
  let ancilla = n in
  let c = ref (Circuit.empty (n + 1)) in
  c := Circuit.x ancilla !c;
  for q = 0 to n do
    c := Circuit.h q !c
  done;
  for q = 0 to n - 1 do
    if secret land (1 lsl q) <> 0 then c := Circuit.cx q ancilla !c
  done;
  for q = 0 to n - 1 do
    c := Circuit.h q !c
  done;
  !c

let deutsch_jozsa ~balanced n =
  if n < 1 then invalid_arg "Generators.deutsch_jozsa: need n >= 1";
  let ancilla = n in
  let c = ref (Circuit.empty (n + 1)) in
  c := Circuit.x ancilla !c;
  for q = 0 to n do
    c := Circuit.h q !c
  done;
  if balanced then c := Circuit.cx 0 ancilla !c;
  for q = 0 to n - 1 do
    c := Circuit.h q !c
  done;
  !c

let cuccaro_adder n =
  if n < 1 then invalid_arg "Generators.cuccaro_adder: need n >= 1";
  let carry_in = 0 in
  let b i = (2 * i) + 1 and a i = (2 * i) + 2 in
  let carry_out = (2 * n) + 1 in
  let maj c x y z = c |> Circuit.cx z y |> Circuit.cx z x |> Circuit.ccx x y z in
  let uma c x y z = c |> Circuit.ccx x y z |> Circuit.cx z x |> Circuit.cx x y in
  let c = ref (Circuit.empty ((2 * n) + 2)) in
  c := maj !c carry_in (b 0) (a 0);
  for i = 1 to n - 1 do
    c := maj !c (a (i - 1)) (b i) (a i)
  done;
  c := Circuit.cx (a (n - 1)) carry_out !c;
  for i = n - 1 downto 1 do
    c := uma !c (a (i - 1)) (b i) (a i)
  done;
  c := uma !c carry_in (b 0) (a 0);
  !c

let random_circuit ~seed ~depth n =
  if n < 1 then invalid_arg "Generators.random_circuit: need n >= 1";
  let st = Random.State.make [| seed; n; depth |] in
  let angle () = Random.State.float st (2.0 *. Float.pi) in
  let c = ref (Circuit.empty n) in
  for _layer = 1 to depth do
    for q = 0 to n - 1 do
      c := Circuit.u3 ~theta:(angle ()) ~phi:(angle ()) ~lambda:(angle ()) q !c
    done;
    (* Random maximal pairing: shuffle and CX consecutive pairs. *)
    let order = Array.init n (fun q -> q) in
    for k = n - 1 downto 1 do
      let j = Random.State.int st (k + 1) in
      let tmp = order.(k) in
      order.(k) <- order.(j);
      order.(j) <- tmp
    done;
    let rec pair k =
      if k + 1 < n then begin
        c := Circuit.cx order.(k) order.(k + 1) !c;
        pair (k + 2)
      end
    in
    pair 0
  done;
  !c

let random_from_choices ~seed ~gates n choices =
  let st = Random.State.make [| seed; n; gates |] in
  let c = ref (Circuit.empty n) in
  for _g = 1 to gates do
    c := choices st n !c
  done;
  !c

let pick_two st n =
  let a = Random.State.int st n in
  let b = (a + 1 + Random.State.int st (n - 1)) mod n in
  (a, b)

let random_clifford_t ~seed ~gates ~t_fraction n =
  if n < 1 then invalid_arg "Generators.random_clifford_t: need n >= 1";
  random_from_choices ~seed ~gates n (fun st n c ->
      if Random.State.float st 1.0 < t_fraction then
        Circuit.t (Random.State.int st n) c
      else
        match Random.State.int st 3 with
        | 0 -> Circuit.h (Random.State.int st n) c
        | 1 -> Circuit.s (Random.State.int st n) c
        | _ ->
            if n = 1 then Circuit.h (Random.State.int st n) c
            else
              let a, b = pick_two st n in
              Circuit.cx a b c)

let random_clifford ~seed ~gates n =
  if n < 1 then invalid_arg "Generators.random_clifford: need n >= 1";
  random_from_choices ~seed ~gates n (fun st n c ->
      match Random.State.int st 5 with
      | 0 -> Circuit.h (Random.State.int st n) c
      | 1 -> Circuit.s (Random.State.int st n) c
      | 2 -> Circuit.sdg (Random.State.int st n) c
      | 3 ->
          if n = 1 then Circuit.s (Random.State.int st n) c
          else
            let a, b = pick_two st n in
            Circuit.cx a b c
      | _ ->
          if n = 1 then Circuit.h (Random.State.int st n) c
          else
            let a, b = pick_two st n in
            Circuit.cz a b c)

let embed ~into f sub =
  List.fold_left
    (fun acc instr ->
      let rec remap instr =
        match instr with
        | Circuit.Apply { gate; controls; target } ->
            Circuit.Apply { gate; controls = List.map f controls; target = f target }
        | Circuit.Swap { controls; a; b } ->
            Circuit.Swap { controls = List.map f controls; a = f a; b = f b }
        | Circuit.Measure { qubit; clbit } -> Circuit.Measure { qubit = f qubit; clbit }
        | Circuit.Reset q -> Circuit.Reset (f q)
        | Circuit.Barrier qs -> Circuit.Barrier (List.map f qs)
        | Circuit.If { value; instr } -> Circuit.If { value; instr = remap instr }
      in
      Circuit.add (remap instr) acc)
    into (Circuit.instructions sub)

let phase_estimation ~phase bits =
  if bits < 1 then invalid_arg "Generators.phase_estimation: need bits >= 1";
  let n = bits + 1 in
  let c = ref (Circuit.empty n) in
  (* Eigenstate |1⟩ of P(θ) on qubit 0. *)
  c := Circuit.x 0 !c;
  for j = 0 to bits - 1 do
    c := Circuit.h (1 + j) !c
  done;
  for j = 0 to bits - 1 do
    let theta = 2.0 *. Float.pi *. phase *. Float.of_int (1 lsl j) in
    c := Circuit.cphase theta (1 + j) 0 !c
  done;
  let inverse_qft = Circuit.adjoint (qft bits) in
  embed ~into:!c (fun q -> q + 1) inverse_qft

let qaoa_maxcut ~seed ~layers n =
  if n < 2 then invalid_arg "Generators.qaoa_maxcut: need n >= 2";
  let st = Random.State.make [| seed; n; layers; 11 |] in
  (* random graph: ring plus a few chords keeps it connected and irregular *)
  let edges = ref (List.init n (fun k -> (k, (k + 1) mod n))) in
  for _ = 1 to n / 2 do
    let a = Random.State.int st n in
    let b = (a + 2 + Random.State.int st (n - 2)) mod n in
    if a <> b && not (List.mem (a, b) !edges || List.mem (b, a) !edges) then
      edges := (a, b) :: !edges
  done;
  let c = ref (Circuit.empty n) in
  for q = 0 to n - 1 do
    c := Circuit.h q !c
  done;
  for _layer = 1 to layers do
    let gamma = Random.State.float st Float.pi in
    let beta = Random.State.float st Float.pi in
    List.iter
      (fun (a, b) ->
        c := !c |> Circuit.cx a b |> Circuit.rz (2.0 *. gamma) b |> Circuit.cx a b)
      !edges;
    for q = 0 to n - 1 do
      c := Circuit.rx (2.0 *. beta) q !c
    done
  done;
  !c

let hidden_shift ~shift n =
  if n < 2 || n mod 2 <> 0 then invalid_arg "Generators.hidden_shift: need even n >= 2";
  if shift < 0 || shift >= 1 lsl n then invalid_arg "Generators.hidden_shift: bad shift";
  let pairs = List.init (n / 2) (fun k -> (2 * k, (2 * k) + 1)) in
  let h_all c =
    let rec loop q c = if q >= n then c else loop (q + 1) (Circuit.h q c) in
    loop 0 c
  in
  let oracle c = List.fold_left (fun c (a, b) -> Circuit.cz a b c) c pairs in
  let shift_frame c =
    let rec loop q c =
      if q >= n then c
      else loop (q + 1) (if shift land (1 lsl q) <> 0 then Circuit.x q c else c)
    in
    loop 0 c
  in
  (* H · O_f̃ · H · O_g · H with O_g = X^s O_f X^s and f self-dual *)
  Circuit.empty n |> h_all |> shift_frame |> oracle |> shift_frame |> h_all |> oracle
  |> h_all

let quantum_volume ~seed ~depth n =
  if n < 2 then invalid_arg "Generators.quantum_volume: need n >= 2";
  let st = Random.State.make [| seed; n; depth; 23 |] in
  let angle () = Random.State.float st (2.0 *. Float.pi) in
  let c = ref (Circuit.empty n) in
  let su4ish a b =
    let u3 q =
      c := Circuit.u3 ~theta:(angle ()) ~phi:(angle ()) ~lambda:(angle ()) q !c
    in
    u3 a; u3 b;
    c := Circuit.cx a b !c;
    u3 a; u3 b;
    c := Circuit.cx b a !c;
    u3 a; u3 b
  in
  for _layer = 1 to depth do
    let order = Array.init n (fun q -> q) in
    for k = n - 1 downto 1 do
      let j = Random.State.int st (k + 1) in
      let tmp = order.(k) in
      order.(k) <- order.(j);
      order.(j) <- tmp
    done;
    let rec pair k =
      if k + 1 < n then begin
        su4ish order.(k) order.(k + 1);
        pair (k + 2)
      end
    in
    pair 0
  done;
  !c

(* ------------------------------------------------------------------ *)
(* Dynamic-circuit workloads: mid-circuit measurement, reset, and      *)
(* classical control (the shot-engine's per-shot path).                *)
(* ------------------------------------------------------------------ *)

let teleportation ?prep () =
  let prep = match prep with Some f -> f | None -> Circuit.h 0 in
  (* Teleport the prepared state of qubit 0 onto qubit 2 through a Bell
     pair on qubits 1-2; classical bits c0 (Z fix) and c1 (X fix) carry
     the Bell-measurement outcome, c2 the final readout of the
     teleported state. *)
  Circuit.empty 3 ~clbits:3
  |> prep
  |> Circuit.h 1
  |> Circuit.cx 1 2
  |> Circuit.cx 0 1
  |> Circuit.h 0
  |> Circuit.measure ~qubit:0 ~clbit:0
  |> Circuit.measure ~qubit:1 ~clbit:1
  |> Circuit.if_x 2 2
  |> Circuit.if_x 3 2
  |> Circuit.if_z 1 2
  |> Circuit.if_z 3 2
  |> Circuit.measure ~qubit:2 ~clbit:2

let repeat_until_success ?(rounds = 3) () =
  if rounds < 1 then invalid_arg "Generators.repeat_until_success: need rounds >= 1";
  (* Qubit 0 is the ancilla, qubit 1 the data.  Each round runs H·T·H on
     the ancilla and measures; success (outcome 1, probability sin²(π/8))
     stops further rounds via the c==0 guard.  On success the data qubit
     is flipped, so the counts key is 3 with p = 1-(1-sin²(π/8))^rounds
     and 0 otherwise. *)
  let round ~first c =
    let wrap instr = if first then instr else Circuit.If { value = 0; instr } in
    c
    |> Circuit.add (wrap (Circuit.Apply { gate = Gate.H; controls = []; target = 0 }))
    |> Circuit.add (wrap (Circuit.Apply { gate = Gate.T; controls = []; target = 0 }))
    |> Circuit.add (wrap (Circuit.Apply { gate = Gate.H; controls = []; target = 0 }))
    |> Circuit.add (wrap (Circuit.Measure { qubit = 0; clbit = 0 }))
  in
  let c = round ~first:true (Circuit.empty 2 ~clbits:2) in
  let rec rest k c =
    if k > rounds then c
    else
      rest (k + 1)
        (c
        |> Circuit.if_eq 0 (Circuit.Reset 0)
        |> round ~first:false)
  in
  rest 2 c |> Circuit.if_x 1 1 |> Circuit.measure ~qubit:1 ~clbit:1

let repetition_code ?(cycles = 1) ?(error = false) () =
  if cycles < 1 then invalid_arg "Generators.repetition_code: need cycles >= 1";
  (* Distance-3 bit-flip code: data qubits 0-2, syndrome ancillas 3-4.
     Each cycle extracts the two parities, applies the classically
     controlled correction, and resets the ancillas.  The final readout
     is deterministic (key 0) with or without the injected X error. *)
  let c = ref (Circuit.empty 5 ~clbits:3) in
  if error then c := Circuit.x 0 !c;
  for _cycle = 1 to cycles do
    c :=
      !c
      |> Circuit.cx 0 3
      |> Circuit.cx 1 3
      |> Circuit.cx 1 4
      |> Circuit.cx 2 4
      |> Circuit.measure ~qubit:3 ~clbit:0
      |> Circuit.measure ~qubit:4 ~clbit:1
      |> Circuit.if_x 1 0
      |> Circuit.if_x 2 2
      |> Circuit.if_x 3 1
      |> Circuit.reset 3
      |> Circuit.reset 4
  done;
  !c
  |> Circuit.measure ~qubit:0 ~clbit:0
  |> Circuit.measure ~qubit:1 ~clbit:1
  |> Circuit.measure ~qubit:2 ~clbit:2
