type instruction =
  | Apply of { gate : Gate.t; controls : int list; target : int }
  | Swap of { controls : int list; a : int; b : int }
  | Measure of { qubit : int; clbit : int }
  | Reset of int
  | Barrier of int list
  | If of { value : int; instr : instruction }

type t = {
  num_qubits : int;
  num_clbits : int;
  rev_instrs : instruction list;
  len : int;
}

let empty ?(clbits = 0) n =
  if n <= 0 then invalid_arg "Circuit.empty: need at least one qubit";
  if clbits < 0 then invalid_arg "Circuit.empty: negative clbit count";
  { num_qubits = n; num_clbits = clbits; rev_instrs = []; len = 0 }

let num_qubits c = c.num_qubits
let num_clbits c = c.num_clbits
let instructions c = List.rev c.rev_instrs
let length c = c.len

let rec qubits_of_instruction = function
  | Apply { controls; target; _ } -> target :: controls
  | Swap { controls; a; b } -> a :: b :: controls
  | Measure { qubit; _ } -> [ qubit ]
  | Reset q -> [ q ]
  | Barrier qs -> qs
  | If { instr; _ } -> qubits_of_instruction instr

let rec distinct = function
  | [] -> true
  | q :: rest -> (not (List.mem q rest)) && distinct rest

let rec validate c instr =
  let qs = qubits_of_instruction instr in
  List.iter
    (fun q ->
      if q < 0 || q >= c.num_qubits then
        invalid_arg
          (Printf.sprintf "Circuit.add: qubit %d out of range [0,%d)" q
             c.num_qubits))
    qs;
  if not (distinct qs) then invalid_arg "Circuit.add: repeated qubit operands";
  match instr with
  | Measure { clbit; _ } ->
      if clbit < 0 || clbit >= c.num_clbits then
        invalid_arg (Printf.sprintf "Circuit.add: clbit %d out of range" clbit)
  | If { value; instr = inner } -> (
      if c.num_clbits <= 0 then
        invalid_arg "Circuit.add: classical condition requires a classical register";
      if value < 0 then
        invalid_arg "Circuit.add: negative classical condition value";
      if c.num_clbits < Sys.int_size - 2 && value lsr c.num_clbits <> 0 then
        invalid_arg
          (Printf.sprintf
             "Circuit.add: condition value %d exceeds the %d-bit classical register"
             value c.num_clbits);
      match inner with
      | If _ -> invalid_arg "Circuit.add: nested classical conditions not supported"
      | Barrier _ -> invalid_arg "Circuit.add: conditional barrier not supported"
      | Apply _ | Swap _ | Measure _ | Reset _ -> validate c inner)
  | Apply _ | Swap _ | Reset _ | Barrier _ -> ()

let add instr c =
  validate c instr;
  { c with rev_instrs = instr :: c.rev_instrs; len = c.len + 1 }

let gate g target c = add (Apply { gate = g; controls = []; target }) c
let cgate g ~controls ~target c = add (Apply { gate = g; controls; target }) c
let x q c = gate Gate.X q c
let y q c = gate Gate.Y q c
let z q c = gate Gate.Z q c
let h q c = gate Gate.H q c
let s q c = gate Gate.S q c
let sdg q c = gate Gate.Sdg q c
let t q c = gate Gate.T q c
let tdg q c = gate Gate.Tdg q c
let sx q c = gate Gate.Sx q c
let rx theta q c = gate (Gate.Rx theta) q c
let ry theta q c = gate (Gate.Ry theta) q c
let rz theta q c = gate (Gate.Rz theta) q c
let phase theta q c = gate (Gate.Phase theta) q c
let u3 ~theta ~phi ~lambda q c = gate (Gate.U3 { theta; phi; lambda }) q c
let cx ctl tgt c = cgate Gate.X ~controls:[ ctl ] ~target:tgt c
let cy ctl tgt c = cgate Gate.Y ~controls:[ ctl ] ~target:tgt c
let cz ctl tgt c = cgate Gate.Z ~controls:[ ctl ] ~target:tgt c
let ch ctl tgt c = cgate Gate.H ~controls:[ ctl ] ~target:tgt c
let cphase theta ctl tgt c = cgate (Gate.Phase theta) ~controls:[ ctl ] ~target:tgt c
let crz theta ctl tgt c = cgate (Gate.Rz theta) ~controls:[ ctl ] ~target:tgt c
let cry theta ctl tgt c = cgate (Gate.Ry theta) ~controls:[ ctl ] ~target:tgt c
let ccx c1 c2 tgt c = cgate Gate.X ~controls:[ c1; c2 ] ~target:tgt c
let ccz c1 c2 tgt c = cgate Gate.Z ~controls:[ c1; c2 ] ~target:tgt c
let swap a b c = add (Swap { controls = []; a; b }) c
let cswap ctl a b c = add (Swap { controls = [ ctl ]; a; b }) c
let measure ~qubit ~clbit c = add (Measure { qubit; clbit }) c

let measure_all c =
  let c =
    if c.num_clbits >= c.num_qubits then c
    else { c with num_clbits = c.num_qubits }
  in
  let rec loop q acc =
    if q >= acc.num_qubits then acc
    else loop (q + 1) (measure ~qubit:q ~clbit:q acc)
  in
  loop 0 c

let reset q c = add (Reset q) c
let barrier c = add (Barrier (List.init c.num_qubits (fun q -> q))) c
let if_eq value instr c = add (If { value; instr }) c
let if_gate value g target c = if_eq value (Apply { gate = g; controls = []; target }) c
let if_x value q c = if_gate value Gate.X q c
let if_z value q c = if_gate value Gate.Z q c

let append a b =
  if a.num_qubits <> b.num_qubits then
    invalid_arg "Circuit.append: qubit count mismatch";
  {
    num_qubits = a.num_qubits;
    num_clbits = max a.num_clbits b.num_clbits;
    rev_instrs = b.rev_instrs @ a.rev_instrs;
    len = a.len + b.len;
  }

let is_unitary_only c =
  List.for_all
    (function
      | Measure _ | Reset _ | If _ -> false | Apply _ | Swap _ | Barrier _ -> true)
    c.rev_instrs

let unitary_instructions c =
  List.filter
    (function
      | Apply _ | Swap _ -> true | Measure _ | Reset _ | Barrier _ | If _ -> false)
    (instructions c)

let has_conditionals c = List.exists (function If _ -> true | _ -> false) c.rev_instrs

let rec instr_measures = function
  | Measure _ -> true
  | If { instr; _ } -> instr_measures instr
  | Apply _ | Swap _ | Reset _ | Barrier _ -> false

let has_measure c = List.exists instr_measures c.rev_instrs

(* A circuit is dynamic when its shot-loop outcome depends on per-shot
   classical state: any conditional or reset, or a measurement whose qubit
   is used again afterwards (mid-circuit measurement).  mqt-core draws the
   same line in [sample] — static circuits are simulated once and sampled,
   dynamic circuits re-execute per shot.  [rev_instrs] is reverse program
   order, so one pass marks "used later" qubits. *)
let is_dynamic c =
  let used = Array.make c.num_qubits false in
  let rec scan = function
    | [] -> false
    | instr :: rest -> (
        match instr with
        | If _ | Reset _ -> true
        | Measure { qubit; _ } ->
            if used.(qubit) then true
            else begin
              used.(qubit) <- true;
              scan rest
            end
        | Barrier _ -> scan rest
        | Apply _ | Swap _ ->
            List.iter (fun q -> used.(q) <- true) (qubits_of_instruction instr);
            scan rest)
  in
  scan c.rev_instrs

let creg_value clbits =
  let v = ref 0 in
  Array.iteri (fun k bit -> if bit <> 0 then v := !v lor (1 lsl k)) clbits;
  !v

let adjoint c =
  if not (is_unitary_only c) then
    invalid_arg "Circuit.adjoint: circuit contains measurements or resets";
  let invert = function
    | Apply { gate; controls; target } ->
        Apply { gate = Gate.adjoint gate; controls; target }
    | Swap _ as sw -> sw
    | Barrier _ as bar -> bar
    | Measure _ | Reset _ | If _ -> assert false
  in
  (* Reversal of program order is exactly keeping [rev_instrs] order. *)
  { c with rev_instrs = List.rev_map invert c.rev_instrs }

let remap f c =
  let rec g = function
    | Apply { gate; controls; target } ->
        Apply { gate; controls = List.map f controls; target = f target }
    | Swap { controls; a; b } -> Swap { controls = List.map f controls; a = f a; b = f b }
    | Measure { qubit; clbit } -> Measure { qubit = f qubit; clbit }
    | Reset q -> Reset (f q)
    | Barrier qs -> Barrier (List.map f qs)
    | If { value; instr } -> If { value; instr = g instr }
  in
  let remapped = List.rev_map g c.rev_instrs in
  List.fold_left (fun acc instr -> add instr acc) { c with rev_instrs = []; len = 0 } remapped

let rec mnemonic = function
  | Apply { gate; controls; target = _ } ->
      String.concat "" (List.map (fun _ -> "c") controls) ^ Gate.name gate
  | Swap { controls; _ } ->
      String.concat "" (List.map (fun _ -> "c") controls) ^ "swap"
  | Measure _ -> "measure"
  | Reset _ -> "reset"
  | Barrier _ -> "barrier"
  | If { instr; _ } -> "if(" ^ mnemonic instr ^ ")"

let gate_counts c =
  let table = Hashtbl.create 16 in
  List.iter
    (fun instr ->
      match instr with
      | Barrier _ -> ()
      | _ ->
          let key = mnemonic instr in
          Hashtbl.replace table key (1 + Option.value ~default:0 (Hashtbl.find_opt table key)))
    c.rev_instrs;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let count_total c =
  List.length (List.filter (function Barrier _ -> false | _ -> true) c.rev_instrs)

let count_two_qubit c =
  let rec two_qubit = function
    | Apply { controls = [ _ ]; _ } -> true
    | Swap { controls = []; _ } -> true
    | If { instr; _ } -> two_qubit instr
    | Apply _ | Swap _ | Measure _ | Reset _ | Barrier _ -> false
  in
  List.length (List.filter two_qubit c.rev_instrs)

let t_count c =
  let rec is_t = function
    | Apply { gate = Gate.T | Gate.Tdg; _ } -> true
    | If { instr; _ } -> is_t instr
    | _ -> false
  in
  List.length (List.filter is_t c.rev_instrs)

let depth c =
  let level = Array.make c.num_qubits 0 in
  List.iter
    (fun instr ->
      match instr with
      | Barrier qs ->
          let m = List.fold_left (fun acc q -> max acc level.(q)) 0 qs in
          List.iter (fun q -> level.(q) <- m) qs
      | _ ->
          let qs = qubits_of_instruction instr in
          let m = List.fold_left (fun acc q -> max acc level.(q)) 0 qs in
          List.iter (fun q -> level.(q) <- m + 1) qs)
    (instructions c);
  Array.fold_left max 0 level

let rec instruction_equal a b =
  match (a, b) with
  | Apply x, Apply y ->
      Gate.equal x.gate y.gate
      && List.sort compare x.controls = List.sort compare y.controls
      && x.target = y.target
  | Swap x, Swap y ->
      List.sort compare x.controls = List.sort compare y.controls
      && ((x.a = y.a && x.b = y.b) || (x.a = y.b && x.b = y.a))
  | Measure x, Measure y -> x.qubit = y.qubit && x.clbit = y.clbit
  | Reset p, Reset q -> p = q
  | Barrier p, Barrier q -> List.sort compare p = List.sort compare q
  | If x, If y -> x.value = y.value && instruction_equal x.instr y.instr
  | (Apply _ | Swap _ | Measure _ | Reset _ | Barrier _ | If _), _ -> false

let equal a b =
  a.num_qubits = b.num_qubits && a.len = b.len
  && List.for_all2 instruction_equal a.rev_instrs b.rev_instrs

let rec pp_instruction ppf instr =
  match instr with
  | If { value; instr } -> Format.fprintf ppf "if(c==%d) %a" value pp_instruction instr
  | Apply { gate; controls; target } ->
      let ops = List.map string_of_int (controls @ [ target ]) in
      Format.fprintf ppf "%s%a %s"
        (String.concat "" (List.map (fun _ -> "c") controls))
        Gate.pp gate
        (String.concat "," ops)
  | Swap { controls = []; a; b } -> Format.fprintf ppf "swap %d,%d" a b
  | Swap { controls; a; b } ->
      Format.fprintf ppf "%sswap %s,%d,%d"
        (String.concat "" (List.map (fun _ -> "c") controls))
        (String.concat "," (List.map string_of_int controls))
        a b
  | Measure { qubit; clbit } -> Format.fprintf ppf "measure %d -> %d" qubit clbit
  | Reset q -> Format.fprintf ppf "reset %d" q
  | Barrier _ -> Format.fprintf ppf "barrier"

let pp ppf c =
  Format.fprintf ppf "@[<v 0>circuit (%d qubits, %d instructions)" c.num_qubits c.len;
  List.iter (fun instr -> Format.fprintf ppf "@,  %a" pp_instruction instr) (instructions c);
  Format.fprintf ppf "@]"
