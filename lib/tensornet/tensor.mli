(** Dense labelled tensors (Section IV of the paper).

    A tensor is a multi-dimensional array of complex numbers whose axes
    carry integer labels; contracting two tensors sums over their shared
    labels (Example 3: matrix product as contraction of two rank-2
    tensors over the shared index k).  Storage is row-major: the first
    axis varies slowest.

    {b Storage (unboxed substrate).}  Entries live in one flat
    interleaved [float array] (the {!Qdt_linalg.Vec} layout), so
    {!of_vec}/{!of_mat} are single buffer copies, {!to_vec} adopts the
    permuted storage without copying, and {!contract} runs a box-free
    float kernel.  All functions returning [t] allocate fresh storage;
    no function aliases its argument's storage. *)

type t

(** [create ~shape ~labels] is the all-zero tensor.
    @raise Invalid_argument if lengths differ, a label repeats, or a
    dimension is non-positive. *)
val create : shape:int array -> labels:int array -> t

(** [init ~shape ~labels f] fills entry [idx] with [f idx]. *)
val init : shape:int array -> labels:int array -> (int array -> Qdt_linalg.Cx.t) -> t

(** [scalar z] is the rank-0 tensor. *)
val scalar : Qdt_linalg.Cx.t -> t

(** [of_vec ~labels v] reshapes a length-[2^n] vector into [n] binary axes,
    first axis = most significant bit. *)
val of_vec : labels:int array -> Qdt_linalg.Vec.t -> t

(** [of_mat ~row_labels ~col_labels m] reshapes a [2^r × 2^c] matrix into
    [r + c] binary axes (row axes first, most significant first). *)
val of_mat : row_labels:int array -> col_labels:int array -> Qdt_linalg.Mat.t -> t

val rank : t -> int
val shape : t -> int array
val labels : t -> int array

(** [size t] is the number of entries. *)
val size : t -> int

val get : t -> int array -> Qdt_linalg.Cx.t
val set : t -> int array -> Qdt_linalg.Cx.t -> unit

(** [to_scalar t] extracts the value of a rank-0 tensor.
    @raise Invalid_argument otherwise. *)
val to_scalar : t -> Qdt_linalg.Cx.t

(** [to_vec t ~order] flattens [t] using axis order [order] (labels, most
    significant first). *)
val to_vec : t -> order:int array -> Qdt_linalg.Vec.t

(** [relabel t f] renames every label through [f]. *)
val relabel : t -> (int -> int) -> t

(** [permute t order] reorders axes so labels appear in [order] (a
    permutation of [labels t]). *)
val permute : t -> int array -> t

(** [contract a b] sums over all labels common to [a] and [b]; the result
    keeps [a]'s free labels (in order) then [b]'s.  Contracting disjoint
    tensors is their outer product. *)
val contract : t -> t -> t

(** [contract_cost a b] is the number of scalar multiplications
    [contract a b] performs (|free_a| · |shared| · |free_b|). *)
val contract_cost : t -> t -> int

(** [fix t ~label ~value] slices axis [label] at index [value] (rank
    decreases by one) — the paper's "adding bubbles at the end of the
    circuit" to ask for one amplitude. *)
val fix : t -> label:int -> value:int -> t

val approx_equal : ?eps:float -> t -> t -> bool
val memory_bytes : t -> int
val pp : Format.formatter -> t -> unit
