type t = Tensor.t list

type plan = Sequential | Greedy

type stats = {
  multiplications : int;
  peak_tensor_size : int;
  contractions : int;
}

let empty = []
let add tensor net = net @ [ tensor ]
let of_list tensors = tensors
let tensors net = net
let tensor_count = List.length

let open_labels net =
  let counts = Hashtbl.create 64 in
  List.iter
    (fun tensor ->
      Array.iter
        (fun l ->
          Hashtbl.replace counts l (1 + Option.value ~default:0 (Hashtbl.find_opt counts l)))
        (Tensor.labels tensor))
    net;
  Hashtbl.fold (fun l c acc -> if c = 1 then l :: acc else acc) counts []
  |> List.sort compare

let memory_bytes net = List.fold_left (fun acc t -> acc + Tensor.memory_bytes t) 0 net

let w_tensor_size = Qdt_obs.Watermark.watermark "tn.peak_tensor_size"
let w_tensor_rank = Qdt_obs.Watermark.watermark "tn.peak_tensor_rank"

let contract_pair stats a b =
  let cost = Tensor.contract_cost a b in
  let result = Tensor.contract a b in
  Qdt_obs.Watermark.observe_int w_tensor_size (Tensor.size result);
  Qdt_obs.Watermark.observe_int w_tensor_rank (Tensor.rank result);
  let s =
    {
      multiplications = stats.multiplications + cost;
      peak_tensor_size = max stats.peak_tensor_size (Tensor.size result);
      contractions = stats.contractions + 1;
    }
  in
  (result, s)

let sequential net =
  match net with
  | [] -> invalid_arg "Network.contract_all: empty network"
  | first :: rest ->
      List.fold_left
        (fun (acc, stats) tensor -> contract_pair stats acc tensor)
        (first, { multiplications = 0; peak_tensor_size = Tensor.size first; contractions = 0 })
        rest

let shares_label a b =
  Array.exists (fun l -> Array.exists (( = ) l) (Tensor.labels b)) (Tensor.labels a)

let result_size a b =
  let la = Tensor.labels a and lb = Tensor.labels b in
  let shared l = Array.exists (( = ) l) lb in
  let free_a = Array.to_list la |> List.filter (fun l -> not (shared l)) in
  let shared_b l = Array.exists (( = ) l) la in
  let free_b = Array.to_list lb |> List.filter (fun l -> not (shared_b l)) in
  let dim t ls =
    let sh = Tensor.shape t and lab = Tensor.labels t in
    List.fold_left
      (fun acc l ->
        let k = ref 0 in
        Array.iteri (fun i x -> if x = l then k := i) lab;
        acc * sh.(!k))
      1 ls
  in
  dim a free_a * dim b free_b

let greedy net =
  match net with
  | [] -> invalid_arg "Network.contract_all: empty network"
  | [ only ] ->
      (only, { multiplications = 0; peak_tensor_size = Tensor.size only; contractions = 0 })
  | _ ->
      let pool = ref (Array.of_list net) in
      let stats =
        ref
          {
            multiplications = 0;
            peak_tensor_size = List.fold_left (fun acc t -> max acc (Tensor.size t)) 0 net;
            contractions = 0;
          }
      in
      while Array.length !pool > 1 do
        let best = ref None in
        let arr = !pool in
        for i = 0 to Array.length arr - 2 do
          for j = i + 1 to Array.length arr - 1 do
            (* Prefer pairs that actually share a bond; among those pick the
               smallest result, breaking ties by multiplication cost. *)
            let connected = shares_label arr.(i) arr.(j) in
            let sz = result_size arr.(i) arr.(j) in
            let cost = Tensor.contract_cost arr.(i) arr.(j) in
            let score = ((not connected), sz, cost) in
            match !best with
            | None -> best := Some (score, i, j)
            | Some (best_score, _, _) -> if score < best_score then best := Some (score, i, j)
          done
        done;
        (match !best with
        | None -> assert false
        | Some (_, i, j) ->
            let merged, s = contract_pair !stats arr.(i) arr.(j) in
            stats := s;
            let remaining =
              Array.to_list arr
              |> List.filteri (fun k _ -> k <> i && k <> j)
            in
            pool := Array.of_list (merged :: remaining))
      done;
      ((!pool).(0), !stats)

let contract_all ?(plan = Greedy) net =
  match plan with Sequential -> sequential net | Greedy -> greedy net

let bond_labels net =
  let counts = Hashtbl.create 64 in
  List.iter
    (fun tensor ->
      Array.iter
        (fun l ->
          Hashtbl.replace counts l (1 + Option.value ~default:0 (Hashtbl.find_opt counts l)))
        (Tensor.labels tensor))
    net;
  Hashtbl.fold (fun l c acc -> if c >= 2 then l :: acc else acc) counts []
  |> List.sort compare

let contract_scalar_sliced ?plan ~labels net =
  let bonds = bond_labels net in
  List.iter
    (fun l ->
      if not (List.mem l bonds) then
        invalid_arg "Network.contract_scalar_sliced: label is not a bond")
    labels;
  let k = List.length labels in
  if k > 20 then invalid_arg "Network.contract_scalar_sliced: too many sliced labels";
  let positioned = List.mapi (fun pos l -> (pos, l)) labels in
  (* One slice: fix every sliced label to its bit in [assignment], then
     contract the slimmed network.  Pure — tensors are immutable and
     [contract_all] keeps no shared state — so slices are independent
     tasks. *)
  let slice_one assignment =
    let sliced =
      List.map
        (fun tensor ->
          List.fold_left
            (fun t (pos, l) ->
              if Array.exists (( = ) l) (Tensor.labels t) then
                Tensor.fix t ~label:l ~value:((assignment lsr pos) land 1)
              else t)
            tensor positioned)
        net
    in
    let result, s = contract_all ?plan sliced in
    (Tensor.to_scalar result, s)
  in
  let total = 1 lsl k in
  let fold slices =
    let acc = ref Qdt_linalg.Cx.zero in
    let stats = ref { multiplications = 0; peak_tensor_size = 0; contractions = 0 } in
    Array.iter
      (fun (z, s) ->
        acc := Qdt_linalg.Cx.add !acc z;
        stats :=
          {
            multiplications = !stats.multiplications + s.multiplications;
            peak_tensor_size = max !stats.peak_tensor_size s.peak_tensor_size;
            contractions = !stats.contractions + s.contractions;
          })
      slices;
    (!acc, !stats)
  in
  if Qdt_par.jobs () <= 1 || total < 2 then
    (* Serial: same arithmetic order as the historical loop. *)
    fold (Array.init total slice_one)
  else
    (* Slices fan out across the domain pool; [Qdt_par.map] lands each
       result at its assignment's index, so the fold order — and hence
       the rounded sum — is identical at any job count >= 2. *)
    fold (Qdt_par.map slice_one (Array.init total Fun.id))
