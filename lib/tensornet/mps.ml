open Qdt_linalg
open Qdt_circuit

(* Site tensor A[l][p][r]: left bond, physical bit, right bond; stored
   row-major in one flat interleaved float buffer — entry (l, p, r) at
   linear offset ((l*2 + p) * dr + r), float pair at twice that (the
   {!Qdt_linalg.Vec} layout).  The two-qubit hot path below moves raw
   float pairs only; [Cx.t] survives in the cold contraction helpers. *)
type site = { dl : int; dr : int; data : float array }

type t = {
  n : int;
  sites : site array;
  mutable dropped : float;
  (* Reused theta workspace for {!apply_gate2}; grown geometrically, never
     shrunk, so steady-state gate application allocates only the exact
     theta' handed off to the SVD. *)
  mutable scratch : float array;
}

let site_get s l p r =
  let o = 2 * ((((l * 2) + p) * s.dr) + r) in
  { Cx.re = s.data.(o); im = s.data.(o + 1) }

let create n =
  if n < 1 then invalid_arg "Mps.create: need n >= 1";
  let site0 =
    let data = Array.make 4 0.0 in
    data.(0) <- 1.0;
    { dl = 1; dr = 1; data }
  in
  { n; sites = Array.init n (fun _ -> site0); dropped = 0.0; scratch = [||] }

let num_qubits mps = mps.n

let bond_dims mps =
  Array.init (mps.n - 1) (fun k -> mps.sites.(k).dr)

let max_bond_dim mps =
  Array.fold_left (fun acc s -> max acc (max s.dl s.dr)) 1 mps.sites

let truncation_error mps = mps.dropped

let memory_bytes mps =
  Array.fold_left (fun acc s -> acc + (8 * Array.length s.data)) 0 mps.sites

let apply_gate1 mps u q =
  if Mat.rows u <> 2 || Mat.cols u <> 2 then invalid_arg "Mps.apply_gate1: need 2x2";
  if q < 0 || q >= mps.n then invalid_arg "Mps.apply_gate1: qubit out of range";
  let s = mps.sites.(q) in
  let ub = Mat.buffer u in
  let u00r = ub.(0) and u00i = ub.(1) and u01r = ub.(2) and u01i = ub.(3) in
  let u10r = ub.(4) and u10i = ub.(5) and u11r = ub.(6) and u11i = ub.(7) in
  let sd = s.data in
  let data = Array.make (Array.length sd) 0.0 in
  (* For each (l, r) the physical pair sits [2·dr] floats apart. *)
  for l = 0 to s.dl - 1 do
    let base = 2 * l * 2 * s.dr in
    for r = 0 to s.dr - 1 do
      let o0 = base + (2 * r) in
      let o1 = o0 + (2 * s.dr) in
      let a0r = sd.(o0) and a0i = sd.(o0 + 1) in
      let a1r = sd.(o1) and a1i = sd.(o1 + 1) in
      data.(o0) <- (u00r *. a0r) -. (u00i *. a0i) +. ((u01r *. a1r) -. (u01i *. a1i));
      data.(o0 + 1) <- (u00r *. a0i) +. (u00i *. a0r) +. ((u01r *. a1i) +. (u01i *. a1r));
      data.(o1) <- (u10r *. a0r) -. (u10i *. a0i) +. ((u11r *. a1r) -. (u11i *. a1i));
      data.(o1 + 1) <- (u10r *. a0i) +. (u10i *. a0r) +. ((u11r *. a1i) +. (u11i *. a1r))
    done
  done;
  mps.sites.(q) <- { s with data }

(* Observability: instruments bound once at module init.  The two-qubit
   apply is the MPS hot path; the bond-dimension histogram records the
   kept rank after every SVD truncation. *)
let m_gates2 = Qdt_obs.Metrics.counter "mps.gates2"
let m_bond = Qdt_obs.Metrics.histogram "mps.bond_dim"
let w_bond = Qdt_obs.Watermark.watermark "mps.peak_bond_dim"
let w_trunc = Qdt_obs.Watermark.watermark "mps.peak_truncation_error"

let scratch_floats mps n =
  if Array.length mps.scratch < n then mps.scratch <- Array.make n 0.0;
  mps.scratch

let apply_gate2 mps ?(max_bond = max_int) ?(cutoff = 1e-12) u q =
  if Mat.rows u <> 4 || Mat.cols u <> 4 then invalid_arg "Mps.apply_gate2: need 4x4";
  if q < 0 || q + 1 >= mps.n then invalid_arg "Mps.apply_gate2: pair out of range";
  Qdt_obs.Trace.emit_begin "mps.apply2";
  Qdt_obs.Metrics.incr m_gates2;
  let a = mps.sites.(q) and b = mps.sites.(q + 1) in
  assert (a.dr = b.dl);
  let dl = a.dl and dm = a.dr and dr = b.dr in
  let len = dl * 4 * dr in
  (* theta[l][p0][p1][r] = Σ_m A[l][p0][m] · B[m][p1][r]; the float pair of
     (l, p0, p1, r) sits at 2·((((l·2 + p0)·2 + p1)·dr) + r).  theta lives
     in the reused scratch buffer. *)
  let theta = scratch_floats mps (2 * len) in
  Array.fill theta 0 (2 * len) 0.0;
  let ad = a.data and bd = b.data in
  for l = 0 to dl - 1 do
    for p0 = 0 to 1 do
      let arow = 2 * (((l * 2) + p0) * dm) in
      let trow = 2 * (((l * 2) + p0) * 2 * dr) in
      for m = 0 to dm - 1 do
        let avr = ad.(arow + (2 * m)) and avi = ad.(arow + (2 * m) + 1) in
        if avr <> 0.0 || avi <> 0.0 then
          for p1 = 0 to 1 do
            let brow = 2 * (((m * 2) + p1) * dr) in
            let torow = trow + (2 * p1 * dr) in
            for r = 0 to dr - 1 do
              let bvr = bd.(brow + (2 * r)) and bvi = bd.(brow + (2 * r) + 1) in
              theta.(torow + (2 * r)) <-
                theta.(torow + (2 * r)) +. ((avr *. bvr) -. (avi *. bvi));
              theta.(torow + (2 * r) + 1) <-
                theta.(torow + (2 * r) + 1) +. ((avr *. bvi) +. (avi *. bvr))
            done
          done
      done
    done
  done;
  (* Gate application: matrix index is p1·2 + p0 (bit 0 = qubit q).  The
     result goes to a fresh exact-size buffer whose layout — rows (l, p0),
     cols (p1, r) — is precisely the row-major (dl·2) × (2·dr) matrix the
     SVD wants, so the matrix below adopts it without copying. *)
  let theta' = Array.make (2 * len) 0.0 in
  let ub = Mat.buffer u in
  for l = 0 to dl - 1 do
    let lbase = 2 * (l * 4 * dr) in
    for r = 0 to dr - 1 do
      (* offsets of (p0, p1) = (0,0), (1,0), (0,1), (1,1) — matrix index
         order 0, 1, 2, 3 — for this (l, r) *)
      let o0 = lbase + (2 * r) in
      let o1 = o0 + (2 * 2 * dr) in
      let o2 = o0 + (2 * dr) in
      let o3 = o1 + (2 * dr) in
      let a0r = theta.(o0) and a0i = theta.(o0 + 1) in
      let a1r = theta.(o1) and a1i = theta.(o1 + 1) in
      let a2r = theta.(o2) and a2i = theta.(o2 + 1) in
      let a3r = theta.(o3) and a3i = theta.(o3 + 1) in
      let row_re j =
        let bse = 8 * j in
        (ub.(bse) *. a0r) -. (ub.(bse + 1) *. a0i)
        +. ((ub.(bse + 2) *. a1r) -. (ub.(bse + 3) *. a1i))
        +. ((ub.(bse + 4) *. a2r) -. (ub.(bse + 5) *. a2i))
        +. ((ub.(bse + 6) *. a3r) -. (ub.(bse + 7) *. a3i))
      and row_im j =
        let bse = 8 * j in
        (ub.(bse) *. a0i) +. (ub.(bse + 1) *. a0r)
        +. ((ub.(bse + 2) *. a1i) +. (ub.(bse + 3) *. a1r))
        +. ((ub.(bse + 4) *. a2i) +. (ub.(bse + 5) *. a2r))
        +. ((ub.(bse + 6) *. a3i) +. (ub.(bse + 7) *. a3r))
      in
      theta'.(o0) <- row_re 0;
      theta'.(o0 + 1) <- row_im 0;
      theta'.(o1) <- row_re 1;
      theta'.(o1 + 1) <- row_im 1;
      theta'.(o2) <- row_re 2;
      theta'.(o2 + 1) <- row_im 2;
      theta'.(o3) <- row_re 3;
      theta'.(o3 + 1) <- row_im 3
    done
  done;
  (* Split with SVD: rows (l, p0), cols (p1, r). *)
  let m = Mat.of_buffer ~rows:(dl * 2) ~cols:(2 * dr) theta' in
  Qdt_obs.Trace.emit_begin "mps.svd";
  let d = Svd.decompose m in
  let truncated, dropped = Svd.truncate ~max_rank:max_bond ~cutoff d in
  Qdt_obs.Trace.emit_end "mps.svd";
  mps.dropped <- mps.dropped +. dropped;
  (* The truncation-error watermark tracks the accumulated dropped weight
     (monotone per state), so its peak is the worst cumulative error any
     state reached during the run. *)
  Qdt_obs.Watermark.observe w_trunc mps.dropped;
  let k = Array.length truncated.Svd.sigma in
  Qdt_obs.Metrics.observe m_bond k;
  Qdt_obs.Watermark.observe_int w_bond k;
  (* Both factors come out of [Svd.truncate] freshly allocated with
     exactly the site layouts we need — adopt their buffers.  Left site:
     u is (dl·2) × k row-major = (l, p0, rk).  Right site: fold the
     singular values into vdag's rows in place; k × (2·dr) row-major =
     (rk, p1, r). *)
  let b_data = Mat.buffer truncated.Svd.vdag in
  for rk = 0 to k - 1 do
    let s = truncated.Svd.sigma.(rk) in
    let row = 2 * rk * 2 * dr in
    for i = row to row + (4 * dr) - 1 do
      b_data.(i) <- s *. b_data.(i)
    done
  done;
  mps.sites.(q) <- { dl; dr = k; data = Mat.buffer truncated.Svd.u };
  mps.sites.(q + 1) <- { dl = k; dr; data = b_data };
  Qdt_obs.Trace.emit_end "mps.apply2"

let swap_matrix = Gates.swap

let rec apply_instruction mps ?max_bond ?cutoff instr =
  match instr with
  | Circuit.Barrier _ -> ()
  | Circuit.Measure _ | Circuit.Reset _ | Circuit.If _ ->
      invalid_arg "Mps.apply_instruction: non-unitary instruction"
  | Circuit.Apply { gate; controls = []; target } ->
      apply_gate1 mps (Gate.matrix gate) target
  | Circuit.Apply { gate = _; controls = _ :: _ :: _; _ } ->
      invalid_arg "Mps.apply_instruction: gates on 3+ qubits not supported"
  | Circuit.Swap { controls = _ :: _; _ } ->
      invalid_arg "Mps.apply_instruction: gates on 3+ qubits not supported"
  | Circuit.Apply { gate; controls = [ ctl ]; target } ->
      let lo = min ctl target and hi = max ctl target in
      if hi - lo > 1 then route mps ?max_bond ?cutoff instr
      else begin
        (* 4×4 on (lo, lo+1); local bit 0 = lo. *)
        let local_ctl = if ctl = lo then 0 else 1 in
        let local_tgt = 1 - local_ctl in
        let u =
          Qdt_arraysim.Unitary_builder.instruction_matrix ~num_qubits:2
            (Circuit.Apply { gate; controls = [ local_ctl ]; target = local_tgt })
        in
        apply_gate2 mps ?max_bond ?cutoff u lo
      end
  | Circuit.Swap { controls = []; a; b } ->
      let lo = min a b and hi = max a b in
      if hi - lo > 1 then route mps ?max_bond ?cutoff instr
      else apply_gate2 mps ?max_bond ?cutoff swap_matrix lo

(* Bring the two operands adjacent with swaps, apply, and swap back. *)
and route mps ?max_bond ?cutoff instr =
  let lo, hi, rebuild =
    match instr with
    | Circuit.Apply { gate; controls = [ ctl ]; target } ->
        let lo = min ctl target and hi = max ctl target in
        ( lo,
          hi,
          fun hi' ->
            let ctl' = if ctl < target then lo else hi' in
            let tgt' = if ctl < target then hi' else lo in
            Circuit.Apply { gate; controls = [ ctl' ]; target = tgt' } )
    | Circuit.Swap { controls = []; a; b } ->
        let lo = min a b and hi = max a b in
        (lo, hi, fun hi' -> Circuit.Swap { controls = []; a = lo; b = hi' })
    | _ -> assert false
  in
  (* swap hi down to lo+1 *)
  for k = hi - 1 downto lo + 1 do
    apply_gate2 mps ?max_bond ?cutoff swap_matrix k
  done;
  apply_instruction mps ?max_bond ?cutoff (rebuild (lo + 1));
  for k = lo + 1 to hi - 1 do
    apply_gate2 mps ?max_bond ?cutoff swap_matrix k
  done

let run ?max_bond ?cutoff circuit =
  if not (Circuit.is_unitary_only circuit) then
    invalid_arg "Mps.run: circuit measures or resets";
  let mps = create (Circuit.num_qubits circuit) in
  List.iter (apply_instruction mps ?max_bond ?cutoff) (Circuit.instructions circuit);
  mps

let amplitude mps k =
  (* Left-to-right product of the selected 1×D slices. *)
  let vec = ref [| Cx.one |] in
  for q = 0 to mps.n - 1 do
    let s = mps.sites.(q) in
    let bit = (k lsr q) land 1 in
    let next = Array.make s.dr Cx.zero in
    for r = 0 to s.dr - 1 do
      let acc = ref Cx.zero in
      for l = 0 to s.dl - 1 do
        acc := Cx.mul_add !acc !vec.(l) (site_get s l bit r)
      done;
      next.(r) <- !acc
    done;
    vec := next
  done;
  (!vec).(0)

let norm mps =
  (* Contract ⟨ψ|ψ⟩ along the chain: E[l,l'] environment. *)
  let env = ref (Mat.identity 1) in
  for q = 0 to mps.n - 1 do
    let s = mps.sites.(q) in
    let next = Mat.create s.dr s.dr in
    for r = 0 to s.dr - 1 do
      for r' = 0 to s.dr - 1 do
        let acc = ref Cx.zero in
        for l = 0 to s.dl - 1 do
          for l' = 0 to s.dl - 1 do
            let e = Mat.get !env l l' in
            if not (Cx.is_zero ~eps:0.0 e) then
              for p = 0 to 1 do
                acc :=
                  Cx.add !acc
                    (Cx.mul e
                       (Cx.mul (Cx.conj (site_get s l p r)) (site_get s l' p r')))
              done
          done
        done;
        Mat.set next r r' !acc
      done
    done;
    env := next
  done;
  Float.sqrt (Float.abs (Mat.get !env 0 0).Cx.re)

let to_vec mps =
  Vec.init (1 lsl mps.n) (fun k -> amplitude mps k)

(* Right environments R.(i) = contraction of ⟨ψ|ψ⟩ over sites i..n-1,
   a (dl_i × dl_i) positive matrix; R.(n) = [1]. *)
let right_environments mps =
  let n = mps.n in
  let envs = Array.make (n + 1) (Mat.identity 1) in
  for i = n - 1 downto 0 do
    let s = mps.sites.(i) in
    let r = envs.(i + 1) in
    let next = Mat.create s.dl s.dl in
    for l = 0 to s.dl - 1 do
      for l' = 0 to s.dl - 1 do
        let acc = ref Cx.zero in
        for p = 0 to 1 do
          for a = 0 to s.dr - 1 do
            for a' = 0 to s.dr - 1 do
              let e = Mat.get r a a' in
              if not (Cx.is_zero ~eps:0.0 e) then
                acc :=
                  Cx.add !acc
                    (Cx.mul (site_get s l p a)
                       (Cx.mul e (Cx.conj (site_get s l' p a'))))
            done
          done
        done;
        Mat.set next l l' !acc
      done
    done;
    envs.(i) <- next
  done;
  envs

let expectation_z mps q =
  if q < 0 || q >= mps.n then invalid_arg "Mps.expectation_z: qubit out of range";
  (* Contract ⟨ψ|Z_q|ψ⟩ with a sign flip on p=1 at site q, over the left
     environment, against the right environments. *)
  let envs = right_environments mps in
  let rec sweep i (left : Mat.t) =
    if i > q then
      (* finish with the right environment *)
      let r = envs.(i) in
      let acc = ref Cx.zero in
      for l = 0 to Mat.rows left - 1 do
        for l' = 0 to Mat.cols left - 1 do
          acc := Cx.add !acc (Cx.mul (Mat.get left l l') (Mat.get r l l'))
        done
      done;
      !acc
    else begin
      let s = mps.sites.(i) in
      let next = Mat.create s.dr s.dr in
      for a = 0 to s.dr - 1 do
        for a' = 0 to s.dr - 1 do
          let acc = ref Cx.zero in
          for p = 0 to 1 do
            let sign = if i = q && p = 1 then -1.0 else 1.0 in
            for l = 0 to s.dl - 1 do
              for l' = 0 to s.dl - 1 do
                let e = Mat.get left l l' in
                if not (Cx.is_zero ~eps:0.0 e) then
                  acc :=
                    Cx.add !acc
                      (Cx.scale sign
                         (Cx.mul (site_get s l p a)
                            (Cx.mul e (Cx.conj (site_get s l' p a')))))
              done
            done
          done;
          Mat.set next a a' !acc
        done
      done;
      sweep (i + 1) next
    end
  in
  let numerator = sweep 0 (Mat.identity 1) in
  let n2 = norm mps in
  numerator.Cx.re /. (n2 *. n2)

let sample ?(seed = 0) mps ~shots =
  let rng = Random.State.make [| seed |] in
  let envs = right_environments mps in
  let counts = Hashtbl.create 64 in
  for _shot = 1 to shots do
    (* conditioned left vector over the current bond *)
    let left = ref [| Cx.one |] in
    let outcome = ref 0 in
    for i = 0 to mps.n - 1 do
      let s = mps.sites.(i) in
      let branch p =
        let v = Array.make s.dr Cx.zero in
        for r = 0 to s.dr - 1 do
          let acc = ref Cx.zero in
          for l = 0 to s.dl - 1 do
            acc := Cx.mul_add !acc !left.(l) (site_get s l p r)
          done;
          v.(r) <- !acc
        done;
        (* weight = v† · R_{i+1} · v *)
        let w = ref 0.0 in
        let renv = envs.(i + 1) in
        for a = 0 to s.dr - 1 do
          for a' = 0 to s.dr - 1 do
            w := !w +. (Cx.mul (Cx.conj v.(a)) (Cx.mul (Mat.get renv a a') v.(a'))).Cx.re
          done
        done;
        (v, Float.max 0.0 !w)
      in
      let v0, w0 = branch 0 in
      let v1, w1 = branch 1 in
      let total = w0 +. w1 in
      let bit = if Random.State.float rng total < w1 then 1 else 0 in
      if bit = 1 then outcome := !outcome lor (1 lsl i);
      left := if bit = 1 then v1 else v0
    done;
    Hashtbl.replace counts !outcome
      (1 + Option.value ~default:0 (Hashtbl.find_opt counts !outcome))
  done;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
