open Qdt_linalg

(* Unboxed storage: entries live in one flat interleaved [float array]
   (entry at linear offset [k] occupies floats [2k] / [2k+1]), row-major
   over the shape.  [Cx.t] appears only at the [get]/[set]/[init]
   boundary; permutation and contraction move raw float pairs.  The
   layout matches {!Qdt_linalg.Vec} and {!Qdt_linalg.Mat}, so
   vector/matrix conversions are single [Array.copy]s (or, for
   {!to_vec}, a zero-copy adoption). *)
type t = { shape : int array; labels : int array; data : float array }

let validate shape labels =
  if Array.length shape <> Array.length labels then
    invalid_arg "Tensor: shape/labels length mismatch";
  Array.iter (fun d -> if d <= 0 then invalid_arg "Tensor: non-positive dimension") shape;
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun l ->
      if Hashtbl.mem seen l then invalid_arg "Tensor: repeated label";
      Hashtbl.replace seen l ())
    labels

let total shape = Array.fold_left ( * ) 1 shape

let create ~shape ~labels =
  validate shape labels;
  {
    shape = Array.copy shape;
    labels = Array.copy labels;
    data = Array.make (2 * total shape) 0.0;
  }

(* Row-major strides: last axis has stride 1. *)
let strides shape =
  let n = Array.length shape in
  let s = Array.make n 1 in
  for k = n - 2 downto 0 do
    s.(k) <- s.(k + 1) * shape.(k + 1)
  done;
  s

let offset_of strides idx =
  let acc = ref 0 in
  Array.iteri (fun k i -> acc := !acc + (strides.(k) * i)) idx;
  !acc

let index_of_offset shape off =
  let n = Array.length shape in
  let idx = Array.make n 0 in
  let rem = ref off in
  for k = n - 1 downto 0 do
    idx.(k) <- !rem mod shape.(k);
    rem := !rem / shape.(k)
  done;
  idx

let init ~shape ~labels f =
  let t = create ~shape ~labels in
  let n = total shape in
  for off = 0 to n - 1 do
    let z = f (index_of_offset shape off) in
    t.data.(2 * off) <- z.Cx.re;
    t.data.((2 * off) + 1) <- z.Cx.im
  done;
  t

let scalar (z : Cx.t) = { shape = [||]; labels = [||]; data = [| z.Cx.re; z.Cx.im |] }

let log2_exact len =
  let rec go acc k = if k = 1 then acc else go (acc + 1) (k / 2) in
  let n = go 0 len in
  if 1 lsl n <> len then invalid_arg "Tensor: length must be a power of two";
  n

let of_vec ~labels v =
  let n = log2_exact (Vec.length v) in
  if Array.length labels <> n then invalid_arg "Tensor.of_vec: need one label per qubit";
  let shape = Array.make n 2 in
  validate shape labels;
  (* The flat row-major qubit layout is exactly the Vec layout. *)
  { shape; labels = Array.copy labels; data = Array.copy (Vec.buffer v) }

let of_mat ~row_labels ~col_labels m =
  let r = log2_exact (Mat.rows m) and c = log2_exact (Mat.cols m) in
  if Array.length row_labels <> r || Array.length col_labels <> c then
    invalid_arg "Tensor.of_mat: label counts must match matrix shape";
  let shape = Array.make (r + c) 2 in
  let labels = Array.append row_labels col_labels in
  validate shape labels;
  (* Row axes first, row-major: identical to the Mat buffer layout. *)
  { shape; labels; data = Array.copy (Mat.buffer m) }

let rank t = Array.length t.shape
let shape t = Array.copy t.shape
let labels t = Array.copy t.labels
let size t = Array.length t.data / 2

let get t idx =
  let o = 2 * offset_of (strides t.shape) idx in
  { Cx.re = t.data.(o); im = t.data.(o + 1) }

let set t idx (z : Cx.t) =
  let o = 2 * offset_of (strides t.shape) idx in
  t.data.(o) <- z.Cx.re;
  t.data.(o + 1) <- z.Cx.im

let to_scalar t =
  if rank t <> 0 then invalid_arg "Tensor.to_scalar: rank is not 0";
  { Cx.re = t.data.(0); im = t.data.(1) }

let axis_of_label t l =
  let found = ref (-1) in
  Array.iteri (fun k lab -> if lab = l then found := k) t.labels;
  if !found < 0 then invalid_arg "Tensor: unknown label";
  !found

let permute t order =
  if Array.length order <> rank t then invalid_arg "Tensor.permute: wrong order length";
  let axes = Array.map (axis_of_label t) order in
  let new_shape = Array.map (fun a -> t.shape.(a)) axes in
  let old_strides = strides t.shape in
  let new_strides_in_old = Array.map (fun a -> old_strides.(a)) axes in
  let n = size t in
  let rk = Array.length new_shape in
  let data = Array.make (2 * n) 0.0 in
  (* Odometer over the destination index; the source offset is maintained
     incrementally, so the copy moves raw float pairs with no per-entry
     index allocation. *)
  let idx = Array.make rk 0 in
  let src = ref 0 in
  for off = 0 to n - 1 do
    data.(2 * off) <- t.data.(2 * !src);
    data.((2 * off) + 1) <- t.data.((2 * !src) + 1);
    let k = ref (rk - 1) in
    let carrying = ref (rk > 0) in
    while !carrying && !k >= 0 do
      idx.(!k) <- idx.(!k) + 1;
      src := !src + new_strides_in_old.(!k);
      if idx.(!k) < new_shape.(!k) then carrying := false
      else begin
        src := !src - (new_shape.(!k) * new_strides_in_old.(!k));
        idx.(!k) <- 0;
        decr k
      end
    done
  done;
  { shape = new_shape; labels = Array.copy order; data }

let to_vec t ~order =
  (* [permute] returns freshly allocated storage, so the vector can adopt
     it without copying. *)
  let flat = permute t order in
  Vec.of_buffer flat.data

let relabel t f =
  let labels = Array.map f t.labels in
  validate t.shape labels;
  { t with labels }

let shared_labels a b =
  Array.to_list a.labels |> List.filter (fun l -> Array.exists (( = ) l) b.labels)

let free_labels t other =
  Array.to_list t.labels |> List.filter (fun l -> not (Array.exists (( = ) l) other.labels))

let dims_of t ls = List.map (fun l -> t.shape.(axis_of_label t l)) ls

let contract a b =
  let shared = shared_labels a b in
  let free_a = free_labels a b and free_b = free_labels b a in
  (* Bring [a] to [free_a; shared] and [b] to [shared; free_b] and
     matrix-multiply over the raw float buffers. *)
  let a' = permute a (Array.of_list (free_a @ shared)) in
  let b' = permute b (Array.of_list (shared @ free_b)) in
  let dim l = List.fold_left ( * ) 1 l in
  let m = dim (dims_of a free_a) in
  let k = dim (dims_of a shared) in
  let n = dim (dims_of b free_b) in
  let out_shape = Array.of_list (dims_of a free_a @ dims_of b free_b) in
  let out_labels = Array.of_list (free_a @ free_b) in
  let data = Array.make (2 * m * n) 0.0 in
  let ad = a'.data and bd = b'.data in
  for row = 0 to m - 1 do
    let arow = 2 * row * k and orow = 2 * row * n in
    for kk = 0 to k - 1 do
      let ar = ad.(arow + (2 * kk)) and ai = ad.(arow + (2 * kk) + 1) in
      if ar <> 0.0 || ai <> 0.0 then begin
        let brow = 2 * kk * n in
        for col = 0 to n - 1 do
          let br = bd.(brow + (2 * col)) and bi = bd.(brow + (2 * col) + 1) in
          data.(orow + (2 * col)) <- data.(orow + (2 * col)) +. ((ar *. br) -. (ai *. bi));
          data.(orow + (2 * col) + 1) <-
            data.(orow + (2 * col) + 1) +. ((ar *. bi) +. (ai *. br))
        done
      end
    done
  done;
  { shape = out_shape; labels = out_labels; data }

let contract_cost a b =
  let shared = shared_labels a b in
  let free_a = free_labels a b and free_b = free_labels b a in
  let dim t l = List.fold_left ( * ) 1 (dims_of t l) in
  dim a free_a * dim a shared * dim b free_b

let fix t ~label ~value =
  let axis = axis_of_label t label in
  if value < 0 || value >= t.shape.(axis) then invalid_arg "Tensor.fix: value out of range";
  let new_shape =
    Array.of_list (List.filteri (fun k _ -> k <> axis) (Array.to_list t.shape))
  in
  let new_labels =
    Array.of_list (List.filteri (fun k _ -> k <> axis) (Array.to_list t.labels))
  in
  let old_strides = strides t.shape in
  let n = total new_shape in
  let data = Array.make (2 * n) 0.0 in
  let full = Array.make (rank t) 0 in
  for off = 0 to n - 1 do
    let idx = index_of_offset new_shape off in
    (* splice [value] back at [axis] *)
    let j = ref 0 in
    for k = 0 to rank t - 1 do
      if k = axis then full.(k) <- value
      else begin
        full.(k) <- idx.(!j);
        incr j
      end
    done;
    let src = 2 * offset_of old_strides full in
    data.(2 * off) <- t.data.(src);
    data.((2 * off) + 1) <- t.data.(src + 1)
  done;
  { shape = new_shape; labels = new_labels; data }

let approx_equal ?(eps = Cx.default_eps) a b =
  a.shape = b.shape && a.labels = b.labels
  && (let ok = ref true in
      for i = 0 to Array.length a.data - 1 do
        if Float.abs (a.data.(i) -. b.data.(i)) > eps then ok := false
      done;
      !ok)

let memory_bytes t = 8 * Array.length t.data

let pp ppf t =
  Format.fprintf ppf "tensor(shape=[%s], labels=[%s])"
    (String.concat ";" (Array.to_list (Array.map string_of_int t.shape)))
    (String.concat ";" (Array.to_list (Array.map string_of_int t.labels)))
