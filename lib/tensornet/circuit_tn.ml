open Qdt_linalg
open Qdt_circuit

type builder = {
  mutable fresh : int;
  mutable wires : int array;
  mutable rev_tensors : Tensor.t list;
}

let new_label b =
  let l = b.fresh in
  b.fresh <- l + 1;
  l

let start n =
  let b = { fresh = 0; wires = [||]; rev_tensors = [] } in
  b.wires <- Array.init n (fun _ -> new_label b);
  let ket0 = Vec.basis ~dim:2 0 in
  Array.iter
    (fun w -> b.rev_tensors <- Tensor.of_vec ~labels:[| w |] ket0 :: b.rev_tensors)
    b.wires;
  b

(* Like [start] but with open input wires instead of |0⟩ bubbles. *)
let start_open n =
  let b = { fresh = 0; wires = [||]; rev_tensors = [] } in
  b.wires <- Array.init n (fun _ -> new_label b);
  b

(* Local matrix of an instruction on its touched qubits only: remap the
   touched qubits (ascending) onto 0..m-1 and reuse the array builder. *)
let local_matrix instr =
  let qs = List.sort_uniq compare (Circuit.qubits_of_instruction instr) in
  let position q =
    let rec find k = function
      | [] -> invalid_arg "Circuit_tn: qubit not found"
      | x :: rest -> if x = q then k else find (k + 1) rest
    in
    find 0 qs
  in
  let remapped =
    match instr with
    | Circuit.Apply { gate; controls; target } ->
        Circuit.Apply
          { gate; controls = List.map position controls; target = position target }
    | Circuit.Swap { controls; a; b } ->
        Circuit.Swap { controls = List.map position controls; a = position a; b = position b }
    | Circuit.Measure _ | Circuit.Reset _ | Circuit.Barrier _ | Circuit.If _ ->
        invalid_arg "Circuit_tn: non-unitary instruction"
  in
  let m = List.length qs in
  (qs, Qdt_arraysim.Unitary_builder.instruction_matrix ~num_qubits:m remapped)

let append_instruction b instr =
  match instr with
  | Circuit.Barrier _ -> ()
  | Circuit.Measure _ | Circuit.Reset _ | Circuit.If _ ->
      invalid_arg "Circuit_tn: circuit measures or resets"
  | Circuit.Apply _ | Circuit.Swap _ ->
      let qs, u = local_matrix instr in
      let qs_arr = Array.of_list qs in
      let m = Array.length qs_arr in
      let in_wires = Array.map (fun q -> b.wires.(q)) qs_arr in
      let out_wires = Array.map (fun _ -> new_label b) qs_arr in
      Array.iteri (fun k q -> b.wires.(q) <- out_wires.(k)) qs_arr;
      (* Matrix row/col bit j corresponds to qs_arr.(j); of_mat expects the
         most significant axis first. *)
      let msb_first arr = Array.init m (fun k -> arr.(m - 1 - k)) in
      let tensor =
        Tensor.of_mat ~row_labels:(msb_first out_wires) ~col_labels:(msb_first in_wires) u
      in
      b.rev_tensors <- tensor :: b.rev_tensors

type t = { n : int; net : Network.t; outputs : int array }

let of_circuit c =
  if not (Circuit.is_unitary_only c) then
    invalid_arg "Circuit_tn.of_circuit: circuit measures or resets";
  let b = start (Circuit.num_qubits c) in
  List.iter (append_instruction b) (Circuit.instructions c);
  {
    n = Circuit.num_qubits c;
    net = Network.of_list (List.rev b.rev_tensors);
    outputs = Array.copy b.wires;
  }

let network tn = tn.net
let output_wires tn = Array.copy tn.outputs
let memory_bytes tn = Network.memory_bytes tn.net

let amplitude ?plan tn k =
  let bubbles =
    List.init tn.n (fun q ->
        let bit = (k lsr q) land 1 in
        Tensor.of_vec ~labels:[| tn.outputs.(q) |] (Vec.basis ~dim:2 bit))
  in
  let net = Network.of_list (Network.tensors tn.net @ bubbles) in
  let result, stats = Network.contract_all ?plan net in
  (Tensor.to_scalar result, stats)

let amplitude_sliced ?plan ~slices tn k =
  if slices < 0 then invalid_arg "Circuit_tn.amplitude_sliced: negative slice count";
  let bubbles =
    List.init tn.n (fun q ->
        let bit = (k lsr q) land 1 in
        Tensor.of_vec ~labels:[| tn.outputs.(q) |] (Vec.basis ~dim:2 bit))
  in
  let net = Network.of_list (Network.tensors tn.net @ bubbles) in
  let bonds = Array.of_list (Network.bond_labels net) in
  let count = min slices (Array.length bonds) in
  (* consecutive label ids around the median: labels created at about the
     same time on different qubits, i.e. a vertical cut through the
     circuit — the kind of cut that actually caps intermediate width *)
  let start = max 0 ((Array.length bonds - count) / 2) in
  let labels =
    List.init count (fun i -> bonds.(start + i)) |> List.sort_uniq compare
  in
  Network.contract_scalar_sliced ?plan ~labels net

let statevector ?plan tn =
  let result, stats = Network.contract_all ?plan tn.net in
  let order = Array.init tn.n (fun k -> tn.outputs.(tn.n - 1 - k)) in
  (Tensor.to_vec result ~order, stats)

let expectation_z ?plan circuit q =
  if not (Circuit.is_unitary_only circuit) then
    invalid_arg "Circuit_tn.expectation_z: circuit measures or resets";
  let n = Circuit.num_qubits circuit in
  if q < 0 || q >= n then invalid_arg "Circuit_tn.expectation_z: qubit out of range";
  let b = start n in
  List.iter (append_instruction b) (Circuit.instructions circuit);
  (* Z on qubit q, then the adjoint circuit, then ⟨0| bubbles: the scalar
     network for ⟨0|C† Z_q C|0⟩. *)
  append_instruction b (Circuit.Apply { gate = Gate.Z; controls = []; target = q });
  List.iter (append_instruction b) (Circuit.instructions (Circuit.adjoint circuit));
  let bra0 = Vec.basis ~dim:2 0 in
  Array.iter
    (fun w -> b.rev_tensors <- Tensor.of_vec ~labels:[| w |] bra0 :: b.rev_tensors)
    b.wires;
  let result, stats = Network.contract_all ?plan (Network.of_list (List.rev b.rev_tensors)) in
  ((Tensor.to_scalar result).Cx.re, stats)

let hilbert_schmidt_overlap ?plan c1 c2 =
  if Circuit.num_qubits c1 <> Circuit.num_qubits c2 then
    invalid_arg "Circuit_tn.hilbert_schmidt_overlap: arity mismatch";
  if not (Circuit.is_unitary_only c1 && Circuit.is_unitary_only c2) then
    invalid_arg "Circuit_tn.hilbert_schmidt_overlap: circuits measure or reset";
  let n = Circuit.num_qubits c1 in
  let b = start_open n in
  let input_labels = Array.copy b.wires in
  List.iter (append_instruction b) (Circuit.instructions c1);
  List.iter (append_instruction b) (Circuit.instructions (Circuit.adjoint c2));
  (* Close every wire into a trace loop with an identity connector; a wire
     no gate ever touched traces to a bare factor of 2. *)
  let id2 = Qdt_linalg.Gates.id2 in
  let bare_wires = ref 0 in
  Array.iteri
    (fun q out_label ->
      if out_label = input_labels.(q) then incr bare_wires
      else
        b.rev_tensors <-
          Tensor.of_mat ~row_labels:[| input_labels.(q) |] ~col_labels:[| out_label |] id2
          :: b.rev_tensors)
    b.wires;
  let tensors = List.rev b.rev_tensors in
  let tensors = if tensors = [] then [ Tensor.scalar Cx.one ] else tensors in
  let result, stats = Network.contract_all ?plan (Network.of_list tensors) in
  let factor = Float.of_int (1 lsl !bare_wires) in
  (Cx.scale factor (Tensor.to_scalar result), stats)
