open Qdt_linalg
open Qdt_circuit

type verdict = Equivalent | Not_equivalent | Inconclusive

let verdict_to_string = function
  | Equivalent -> "equivalent"
  | Not_equivalent -> "not equivalent"
  | Inconclusive -> "inconclusive"

let max_array_qubits = 12

let require_same_arity c1 c2 =
  if Circuit.num_qubits c1 <> Circuit.num_qubits c2 then
    invalid_arg "Equiv: circuits act on different numbers of qubits"

let arrays c1 c2 =
  Qdt_obs.Trace.with_span "verify.arrays" @@ fun () ->
  require_same_arity c1 c2;
  if Circuit.num_qubits c1 > max_array_qubits then
    invalid_arg "Equiv.arrays: too many qubits for the array method";
  let u1 = Qdt_arraysim.Unitary_builder.unitary c1 in
  let u2 = Qdt_arraysim.Unitary_builder.unitary c2 in
  if Mat.equal_up_to_global_phase ~eps:1e-7 u1 u2 then Equivalent else Not_equivalent

(* A matrix DD is the identity up to phase iff its node is the identity
   chain's node (hash-consing makes this a pointer comparison) and its
   weight has unit magnitude. *)
let dd_is_identity_up_to_phase mgr edge n =
  let id = Qdt_dd.Build.identity mgr n in
  let same_node =
    match (edge.Qdt_dd.Pkg.target, id.Qdt_dd.Pkg.target) with
    | Qdt_dd.Pkg.Node a, Qdt_dd.Pkg.Node b -> a.Qdt_dd.Pkg.id = b.Qdt_dd.Pkg.id
    | Qdt_dd.Pkg.Terminal, Qdt_dd.Pkg.Terminal -> true
    | _ -> false
  in
  same_node && Float.abs (Cx.norm edge.Qdt_dd.Pkg.w -. 1.0) < 1e-7

let dd c1 c2 =
  Qdt_obs.Trace.with_span "verify.dd" @@ fun () ->
  require_same_arity c1 c2;
  let n = Circuit.num_qubits c1 in
  let mgr = Qdt_dd.Pkg.create () in
  let u1 = Qdt_dd.Build.circuit_unitary mgr c1 in
  (* Pin U1: building U2 may garbage-collect at instruction boundaries. *)
  Qdt_dd.Pkg.ref_edge mgr u1;
  let u2 = Qdt_dd.Build.circuit_unitary mgr c2 in
  let prod = Qdt_dd.Pkg.mul_mm mgr (Qdt_dd.Pkg.adjoint mgr u2) u1 in
  Qdt_dd.Pkg.unref_edge mgr u1;
  if dd_is_identity_up_to_phase mgr prod n then Equivalent else Not_equivalent

let dd_alternating c1 c2 =
  Qdt_obs.Trace.with_span "verify.dd-alternating" @@ fun () ->
  require_same_arity c1 c2;
  let n = Circuit.num_qubits c1 in
  let mgr = Qdt_dd.Pkg.create () in
  let gates1 = Array.of_list (Circuit.unitary_instructions c1) in
  let gates2 = Array.of_list (Circuit.unitary_instructions c2) in
  let m = Array.length gates1 and k = Array.length gates2 in
  let e = ref (Qdt_dd.Build.identity mgr n) in
  Qdt_dd.Pkg.ref_edge mgr !e;
  let advance e' =
    Qdt_dd.Pkg.ref_edge mgr e';
    Qdt_dd.Pkg.unref_edge mgr !e;
    e := e';
    Qdt_dd.Pkg.maybe_gc mgr
  in
  let i = ref 0 and j = ref 0 in
  (* Keep i/m ≈ j/k so E stays close to the identity throughout. *)
  while !i < m || !j < k do
    let take_left =
      if !i >= m then false
      else if !j >= k then true
      else !i * k <= !j * m
    in
    if take_left then begin
      let g = Qdt_dd.Build.instruction mgr ~num_qubits:n gates1.(!i) in
      advance (Qdt_dd.Pkg.mul_mm mgr g !e);
      incr i
    end
    else begin
      let h = Qdt_dd.Build.instruction mgr ~num_qubits:n gates2.(!j) in
      advance (Qdt_dd.Pkg.mul_mm mgr !e (Qdt_dd.Pkg.adjoint mgr h));
      incr j
    end
  done;
  Qdt_dd.Pkg.unref_edge mgr !e;
  if dd_is_identity_up_to_phase mgr !e n then Equivalent else Not_equivalent

let zx c1 c2 =
  Qdt_obs.Trace.with_span "verify.zx" @@ fun () ->
  require_same_arity c1 c2;
  let d = Qdt_zx.Translate.equivalence_diagram c1 c2 in
  let _report = Qdt_zx.Simplify.full_reduce d in
  match Qdt_zx.Simplify.is_identity_up_to_permutation d with
  | Some perm ->
      let identity = ref true in
      Array.iteri (fun q p -> if q <> p then identity := false) perm;
      if !identity then Equivalent else Not_equivalent
  | None -> Inconclusive

let tn c1 c2 =
  Qdt_obs.Trace.with_span "verify.tn" @@ fun () ->
  require_same_arity c1 c2;
  let n = Circuit.num_qubits c1 in
  let overlap, _stats = Qdt_tensornet.Circuit_tn.hilbert_schmidt_overlap c1 c2 in
  let target = Float.of_int (1 lsl n) in
  if Float.abs (Cx.norm overlap -. target) < 1e-6 *. target then Equivalent
  else Not_equivalent

let random_product_state_prep rng n =
  let c = ref (Circuit.empty n) in
  for q = 0 to n - 1 do
    let angle () = Random.State.float rng (2.0 *. Float.pi) in
    c := Circuit.u3 ~theta:(angle ()) ~phi:(angle ()) ~lambda:(angle ()) q !c
  done;
  !c

let basis_state_prep rng n =
  let c = ref (Circuit.empty n) in
  for q = 0 to n - 1 do
    if Random.State.bool rng then c := Circuit.x q !c
  done;
  !c

let simulation ?(seed = 0) ?(trials = 8) c1 c2 =
  Qdt_obs.Trace.with_span "verify.simulation" @@ fun () ->
  require_same_arity c1 c2;
  let n = Circuit.num_qubits c1 in
  (* One classical register slot per declared clbit — a single shared slot
     would alias measurements beyond clbit 0. *)
  let num_clbits = max (Circuit.num_clbits c1) (Circuit.num_clbits c2) in
  let rng = Random.State.make [| seed |] in
  let mismatch = ref false in
  let trial t =
    let prep =
      if t = 0 then Circuit.empty n
      else if t mod 2 = 1 then basis_state_prep rng n
      else random_product_state_prep rng n
    in
    let mgr = Qdt_dd.Pkg.create () in
    let run c =
      let st = Qdt_dd.Sim.make mgr n in
      let rng' = Random.State.make [| 0 |] in
      let clbits = Array.make (max 1 num_clbits) 0 in
      List.iter
        (fun instr -> Qdt_dd.Sim.apply_instruction st instr ~rng:rng' ~clbits)
        (Circuit.instructions (Circuit.append prep c));
      st
    in
    let s1 = run c1 and s2 = run c2 in
    if Float.abs (Qdt_dd.Sim.fidelity s1 s2 -. 1.0) > 1e-7 then mismatch := true
  in
  let t = ref 0 in
  while (not !mismatch) && !t < trials do
    trial !t;
    incr t
  done;
  if !mismatch then Not_equivalent else Inconclusive
