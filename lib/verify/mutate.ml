open Qdt_circuit

type mutation = { description : string; circuit : Circuit.t }

let rebuild c instrs =
  List.fold_left
    (fun acc i -> Circuit.add i acc)
    (Circuit.empty ~clbits:(Circuit.num_clbits c) (Circuit.num_qubits c))
    instrs

let gate_positions c =
  List.filteri (fun _ instr ->
      match instr with
      | Circuit.Apply _ | Circuit.Swap _ -> true
      | Circuit.Measure _ | Circuit.Reset _ | Circuit.Barrier _ | Circuit.If _ -> false)
    (Circuit.instructions c)
  |> List.length

let nth_gate_index c k =
  (* absolute index of the k-th gate instruction *)
  let rec find idx remaining = function
    | [] -> invalid_arg "Mutate: gate index out of range"
    | instr :: rest -> (
        match instr with
        | Circuit.Apply _ | Circuit.Swap _ ->
            if remaining = 0 then idx else find (idx + 1) (remaining - 1) rest
        | _ -> find (idx + 1) remaining rest)
  in
  find 0 k (Circuit.instructions c)

let drop_gate ~seed c =
  let total = gate_positions c in
  if total = 0 then invalid_arg "Mutate.drop_gate: no gates to drop";
  let rng = Random.State.make [| seed; 1 |] in
  let victim = nth_gate_index c (Random.State.int rng total) in
  let instrs = List.filteri (fun idx _ -> idx <> victim) (Circuit.instructions c) in
  {
    description = Printf.sprintf "dropped instruction #%d" victim;
    circuit = rebuild c instrs;
  }

let add_gate ~seed c =
  let rng = Random.State.make [| seed; 2 |] in
  let q = Random.State.int rng (Circuit.num_qubits c) in
  let gate =
    match Random.State.int rng 4 with
    | 0 -> Gate.X
    | 1 -> Gate.Z
    | 2 -> Gate.H
    | _ -> Gate.S
  in
  let pos = Random.State.int rng (Circuit.length c + 1) in
  let instrs = Circuit.instructions c in
  let before = List.filteri (fun idx _ -> idx < pos) instrs in
  let after = List.filteri (fun idx _ -> idx >= pos) instrs in
  let extra = Circuit.Apply { gate; controls = []; target = q } in
  {
    description = Printf.sprintf "inserted %s on qubit %d at #%d" (Gate.name gate) q pos;
    circuit = rebuild c (before @ (extra :: after));
  }

let flip_operands ~seed c =
  let candidates =
    List.mapi (fun idx instr -> (idx, instr)) (Circuit.instructions c)
    |> List.filter_map (fun (idx, instr) ->
           match instr with
           | Circuit.Apply { gate; controls = [ ctl ]; target } ->
               Some (idx, Circuit.Apply { gate; controls = [ target ]; target = ctl })
           | _ -> None)
  in
  match candidates with
  | [] -> add_gate ~seed c
  | _ ->
      let rng = Random.State.make [| seed; 3 |] in
      let victim, replacement =
        List.nth candidates (Random.State.int rng (List.length candidates))
      in
      let instrs =
        List.mapi
          (fun idx instr -> if idx = victim then replacement else instr)
          (Circuit.instructions c)
      in
      {
        description = Printf.sprintf "flipped operands of instruction #%d" victim;
        circuit = rebuild c instrs;
      }

let perturb_angle ~seed ?(delta = 1e-4) c =
  let perturb gate =
    match gate with
    | Gate.Rx t -> Some (Gate.Rx (t +. delta))
    | Gate.Ry t -> Some (Gate.Ry (t +. delta))
    | Gate.Rz t -> Some (Gate.Rz (t +. delta))
    | Gate.Phase t -> Some (Gate.Phase (t +. delta))
    | Gate.U3 u -> Some (Gate.U3 { u with theta = u.theta +. delta })
    | _ -> None
  in
  let candidates =
    List.mapi (fun idx instr -> (idx, instr)) (Circuit.instructions c)
    |> List.filter_map (fun (idx, instr) ->
           match instr with
           | Circuit.Apply a -> (
               match perturb a.gate with
               | Some gate -> Some (idx, Circuit.Apply { a with gate })
               | None -> None)
           | _ -> None)
  in
  match candidates with
  | [] -> add_gate ~seed c
  | _ ->
      let rng = Random.State.make [| seed; 4 |] in
      let victim, replacement =
        List.nth candidates (Random.State.int rng (List.length candidates))
      in
      let instrs =
        List.mapi
          (fun idx instr -> if idx = victim then replacement else instr)
          (Circuit.instructions c)
      in
      {
        description =
          Printf.sprintf "perturbed angle of instruction #%d by %g" victim delta;
        circuit = rebuild c instrs;
      }

let random ~seed c =
  let rng = Random.State.make [| seed; 5 |] in
  match Random.State.int rng 4 with
  | 0 -> drop_gate ~seed c
  | 1 -> add_gate ~seed c
  | 2 -> flip_operands ~seed c
  | _ -> perturb_angle ~seed c
