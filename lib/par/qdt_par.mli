(** Multicore execution substrate: a lazily-started, reusable pool of
    OCaml 5 domains behind two fork-join primitives.

    {b Sizing.}  The worker count defaults to
    [Domain.recommended_domain_count ()], overridden by the [QDT_JOBS]
    environment variable, overridden in turn by {!set_jobs} (the CLI's
    [--jobs N]).  A setting of [1] disables parallel execution entirely:
    every primitive then runs its body inline on the calling domain, so
    the executed code path — and therefore every floating-point rounding
    and RNG draw — is bit-identical to a build without this module.

    {b Pool lifecycle.}  Nothing is spawned until the first parallel
    region actually runs with an effective job count above one.  The pool
    (of [jobs - 1] worker domains; the calling domain is the remaining
    participant) is then reused across regions, resized lazily when the
    setting changes, and can be torn down with {!shutdown} — the next
    parallel region restarts it.  The [qdt.par.domains] gauge tracks the
    participating domain count.

    {b Determinism.}  Work is split into fixed-size chunks whose
    boundaries depend only on the iteration range and [~chunk] — never on
    the domain count or on scheduling.  Callers that reduce should
    accumulate one partial per chunk (index [lo / chunk] when iterating
    from 0) and fold the partials in chunk order: the result is then
    identical at any job count [>= 2].

    {b Nesting.}  A parallel region entered while another region is
    already running (on any domain) executes serially on the caller — the
    pool never deadlocks on nested use, and inner kernels of an already
    parallel outer loop stay serial, which is the efficient choice anyway.

    {b Memory model.}  The join at the end of each region synchronises
    through a mutex, so all writes made by workers inside the region
    happen-before the caller's subsequent reads. *)

(** Default chunk granularity of {!parallel_for} (iteration indices per
    chunk): [2{^14}].  Ranges no longer than one chunk run serially, which
    gives the statevector kernels their "small states stay serial" cutoff
    for free. *)
val default_chunk : int

(** Effective job count: {!set_jobs} if called, else [QDT_JOBS], else
    [Domain.recommended_domain_count ()]; always [>= 1]. *)
val jobs : unit -> int

(** [set_jobs n] pins the job count (clamped to [1 .. ]{!max_jobs}).
    Takes effect at the next parallel region; an existing pool of a
    different size is drained and respawned there. *)
val set_jobs : int -> unit

(** Upper clamp of the job count (64) — also the bound on
    {!domain_slot}. *)
val max_jobs : int

(** Worker domains currently spawned (0 when the pool is down; the
    calling domain is not counted). *)
val spawned_domains : unit -> int

(** Pool slot of the calling domain: 0 for the caller of a parallel
    region (and any domain outside the pool), [1 .. jobs - 1] for pool
    workers.  Bounded by the job clamp, so it is safe as a metric-label
    value (the ["domain"] dimension on [qdt.par.chunks] and the
    shot-engine's per-domain counters). *)
val domain_slot : unit -> int

(** [parallel_for ?chunk lo hi body] — [body a b] is invoked for disjoint
    subranges [\[a, b)] covering [\[lo, hi)], each at most [chunk]
    (default {!default_chunk}) long, concurrently across the pool.
    Runs [body lo hi] inline when [jobs () = 1], when the range fits in
    one chunk, or when called from inside another parallel region.
    The first exception raised by any chunk is re-raised on the caller
    after all workers have stopped (remaining chunks are abandoned);
    side effects of chunks that already ran persist. *)
val parallel_for : ?chunk:int -> int -> int -> (int -> int -> unit) -> unit

(** [map ?chunk f arr] — deterministic fork-join map: [f] is applied to
    every element concurrently ([chunk] elements per task, default 1) and
    the results land at their input's index, so the output is identical
    to [Array.map f arr] whenever [f] is pure. *)
val map : ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array

(** Drain and join all worker domains.  Safe to call at any quiescent
    point (never from inside a parallel region); the next parallel region
    restarts the pool. *)
val shutdown : unit -> unit
