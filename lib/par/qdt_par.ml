(* Domain pool + fork-join primitives.  See the .mli for the contracts
   (sizing, determinism, nesting, memory model); the notes here are about
   the mechanics.

   The pool is generation-based: [run_job] publishes a job closure under
   the mutex, bumps the generation, and broadcasts; each worker runs the
   job once per generation and reports back through [pending].  The job
   closure must never raise — [parallel_for] wraps the user body and
   parks the first exception in an atomic instead.  Chunks are handed out
   by an atomic fetch-and-add, so the assignment of chunks to domains is
   scheduling-dependent but the chunk boundaries themselves are not. *)

let default_chunk = 1 lsl 14

(* ------------------------------------------------------------------ *)
(* Job-count resolution                                                *)
(* ------------------------------------------------------------------ *)

let max_jobs = 64
let clamp j = if j < 1 then 1 else if j > max_jobs then max_jobs else j

let env_jobs =
  lazy
    (match Sys.getenv_opt "QDT_JOBS" with
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some j when j >= 1 -> Some (clamp j)
        | _ -> None)
    | None -> None)

let requested : int option ref = ref None

(* [recommended_domain_count] goes through sysconf — cache it, [jobs] is
   on the per-gate hot path. *)
let recommended = lazy (clamp (Domain.recommended_domain_count ()))

let jobs () =
  match !requested with
  | Some j -> j
  | None -> (
      match Lazy.force env_jobs with
      | Some j -> j
      | None -> Lazy.force recommended)

let set_jobs n = requested := Some (clamp n)

(* ------------------------------------------------------------------ *)
(* The pool                                                            *)
(* ------------------------------------------------------------------ *)

type pool = {
  mutable workers : unit Domain.t array;
  mu : Mutex.t;
  work : Condition.t;  (* signalled when a new generation is published *)
  idle : Condition.t;  (* signalled when the last worker finishes one *)
  mutable gen : int;
  mutable job : (unit -> unit) option;
  mutable pending : int;
  mutable quit : bool;
}

let the_pool : pool option ref = ref None

let g_domains = Qdt_obs.Metrics.gauge "qdt.par.domains"

(* Which pool participant this domain is: 0 for the caller (and any
   domain outside the pool), [1 .. nworkers] for workers.  The slot is
   the "domain" label on per-domain metrics — a closed set bounded by
   [max_jobs], never a runtime domain id (those are unbounded). *)
let slot_key = Domain.DLS.new_key (fun () -> 0)
let domain_slot () = Domain.DLS.get slot_key

(* Chunks claimed per participant, as a labeled family (one series per
   slot).  Each series registers on the slot's first claimed chunk, so
   only slots that actually ran appear in snapshots — never all 65.
   A racing double-registration is benign: [counter_with] returns the
   same cell for the same key. *)
let chunk_counters = Array.make (max_jobs + 1) None

let chunk_counter slot =
  match chunk_counters.(slot) with
  | Some c -> c
  | None ->
      let c =
        Qdt_obs.Metrics.counter_with
          ~labels:[ ("domain", string_of_int slot) ]
          "qdt.par.chunks"
      in
      chunk_counters.(slot) <- Some c;
      c

let rec worker_loop pool last_gen =
  Mutex.lock pool.mu;
  while (not pool.quit) && pool.gen = last_gen do
    Condition.wait pool.work pool.mu
  done;
  if pool.quit then Mutex.unlock pool.mu
  else begin
    let gen = pool.gen in
    let job = match pool.job with Some j -> j | None -> ignore in
    Mutex.unlock pool.mu;
    job ();
    Mutex.lock pool.mu;
    pool.pending <- pool.pending - 1;
    if pool.pending = 0 then Condition.broadcast pool.idle;
    Mutex.unlock pool.mu;
    worker_loop pool gen
  end

let shutdown_pool pool =
  Mutex.lock pool.mu;
  pool.quit <- true;
  Condition.broadcast pool.work;
  Mutex.unlock pool.mu;
  Array.iter Domain.join pool.workers

let shutdown () =
  match !the_pool with
  | None -> ()
  | Some pool ->
      the_pool := None;
      shutdown_pool pool;
      (* 0, not 1: after teardown no pool exists, and the reset-semantics
         contract (test_obs) is that the gauge reads 0 post-shutdown. *)
      Qdt_obs.Metrics.set g_domains 0.0

let () = at_exit shutdown

let spawned_domains () =
  match !the_pool with None -> 0 | Some p -> Array.length p.workers

(* [ensure_pool nworkers] — reuse a matching pool, else (re)spawn. *)
let ensure_pool nworkers =
  match !the_pool with
  | Some p when Array.length p.workers = nworkers -> p
  | existing ->
      (match existing with
      | Some p ->
          the_pool := None;
          shutdown_pool p
      | None -> ());
      let pool =
        {
          workers = [||];
          mu = Mutex.create ();
          work = Condition.create ();
          idle = Condition.create ();
          gen = 0;
          job = None;
          pending = 0;
          quit = false;
        }
      in
      pool.workers <-
        Array.init nworkers (fun i ->
            Domain.spawn (fun () ->
                Domain.DLS.set slot_key (i + 1);
                worker_loop pool 0));
      the_pool := Some pool;
      Qdt_obs.Metrics.set g_domains (float_of_int (nworkers + 1));
      pool

(* [run_job pool job] — run [job] on every worker and on the caller, then
   wait until all workers have finished it.  [job] must not raise. *)
let run_job pool job =
  Mutex.lock pool.mu;
  pool.job <- Some job;
  pool.pending <- Array.length pool.workers;
  pool.gen <- pool.gen + 1;
  Condition.broadcast pool.work;
  Mutex.unlock pool.mu;
  job ();
  Mutex.lock pool.mu;
  while pool.pending > 0 do
    Condition.wait pool.idle pool.mu
  done;
  pool.job <- None;
  Mutex.unlock pool.mu

(* ------------------------------------------------------------------ *)
(* parallel_for / map                                                  *)
(* ------------------------------------------------------------------ *)

(* One region at a time, process-wide: a region entered while [active]
   runs serially on its caller (see "Nesting" in the .mli). *)
let active = Atomic.make false

let parallel_for ?(chunk = default_chunk) lo hi body =
  let n = hi - lo in
  if n <= 0 then ()
  else begin
    let chunk = max 1 chunk in
    let j = jobs () in
    if j <= 1 || n <= chunk then body lo hi
    else if not (Atomic.compare_and_set active false true) then body lo hi
    else
      Fun.protect
        ~finally:(fun () -> Atomic.set active false)
        (fun () ->
          let nchunks = (n + chunk - 1) / chunk in
          let pool = ensure_pool (j - 1) in
          let next = Atomic.make 0 in
          let err : exn option Atomic.t = Atomic.make None in
          let runner () =
            let m_chunks = chunk_counter (domain_slot ()) in
            let continue_ = ref true in
            while !continue_ do
              if Atomic.get err <> None then continue_ := false
              else begin
                let c = Atomic.fetch_and_add next 1 in
                if c >= nchunks then continue_ := false
                else begin
                  Qdt_obs.Metrics.incr m_chunks;
                  let a = lo + (c * chunk) in
                  let b = if a + chunk < hi then a + chunk else hi in
                  try body a b
                  with e -> ignore (Atomic.compare_and_set err None (Some e))
                end
              end
            done
          in
          Qdt_obs.Trace.emit_begin "par.chunk";
          run_job pool runner;
          Qdt_obs.Trace.emit_end "par.chunk";
          match Atomic.get err with Some e -> raise e | None -> ())
  end

let map ?(chunk = 1) f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    parallel_for ~chunk 0 n (fun a b ->
        for i = a to b - 1 do
          out.(i) <- Some (f arr.(i))
        done);
    Array.map (function Some v -> v | None -> assert false) out
  end
