open Qdt_circuit

(* Parities are bitmasks over the input wires (bit q = input x_q), so this
   module supports up to 62 qubits — far beyond anything the simulators
   reach. *)

type t = {
  n : int;
  term_list : (int * float) list; (* first-occurrence order, merged *)
  linear : int array;             (* linear.(q) = output parity of wire q *)
}

let two_pi = 2.0 *. Float.pi

let angle_is_trivial a =
  let m = Float.rem (Float.abs a) two_pi in
  m < 1e-12 || two_pi -. m < 1e-12

let of_circuit c =
  let n = Circuit.num_qubits c in
  if n > 62 then invalid_arg "Phase_poly: too many qubits for bitmask parities";
  let wires = Array.init n (fun q -> 1 lsl q) in
  let angles = Hashtbl.create 32 in
  let order = ref [] in
  let add_term mask theta =
    (match Hashtbl.find_opt angles mask with
    | None ->
        order := mask :: !order;
        Hashtbl.replace angles mask theta
    | Some prev -> Hashtbl.replace angles mask (prev +. theta))
  in
  List.iter
    (fun instr ->
      match instr with
      | Circuit.Apply { gate; controls = []; target } -> (
          match Optimize.diag_angle gate with
          | Some theta -> if theta <> 0.0 then add_term wires.(target) theta
          | None -> invalid_arg "Phase_poly.of_circuit: non-diagonal gate")
      | Circuit.Apply { gate = Gate.X; controls = [ ctl ]; target } ->
          wires.(target) <- wires.(target) lxor wires.(ctl)
      | Circuit.Apply _ | Circuit.Swap _ | Circuit.Measure _ | Circuit.Reset _
      | Circuit.If _ ->
          invalid_arg "Phase_poly.of_circuit: instruction outside {CNOT, diagonal}"
      | Circuit.Barrier _ -> ())
    (Circuit.instructions c);
  let term_list =
    List.rev !order
    |> List.filter_map (fun mask ->
           let theta = Hashtbl.find angles mask in
           if angle_is_trivial theta then None else Some (mask, theta))
  in
  { n; term_list; linear = wires }

let terms poly = poly.term_list

(* Solve Σ_{i ∈ support} rows(i) = target over GF(2); rows are linearly
   independent (they always span, being an invertible wire state). *)
let solve_combination rows target =
  let n = Array.length rows in
  (* Gaussian elimination tracking combinations *)
  let work = Array.mapi (fun i row -> (row, 1 lsl i)) rows in
  let target = ref target and combo = ref 0 in
  let used = Array.make n false in
  for col = 0 to n - 1 do
    (* find a pivot with bit col *)
    let pivot = ref (-1) in
    for i = n - 1 downto 0 do
      if (not used.(i)) && fst work.(i) land (1 lsl col) <> 0 then pivot := i
    done;
    if !pivot >= 0 then begin
      used.(!pivot) <- true;
      let prow, pcombo = work.(!pivot) in
      for i = 0 to n - 1 do
        if i <> !pivot && fst work.(i) land (1 lsl col) <> 0 then
          work.(i) <- (fst work.(i) lxor prow, snd work.(i) lxor pcombo)
      done;
      if !target land (1 lsl col) <> 0 then begin
        target := !target lxor prow;
        combo := !combo lxor pcombo
      end
    end
  done;
  if !target <> 0 then invalid_arg "Phase_poly: parity not in the row space";
  !combo

let synthesize poly =
  let n = poly.n in
  let wires = Array.init n (fun q -> 1 lsl q) in
  let c = ref (Circuit.empty n) in
  let emit_cx ctl tgt =
    c := Circuit.cx ctl tgt !c;
    wires.(tgt) <- wires.(tgt) lxor wires.(ctl)
  in
  (* One phase gate per surviving parity: build the parity on a host wire
     with CNOTs, then rotate. *)
  List.iter
    (fun (mask, theta) ->
      let combo = solve_combination wires mask in
      (* pick the host wire: lowest set bit of the combination *)
      let host = ref (-1) in
      for q = n - 1 downto 0 do
        if combo land (1 lsl q) <> 0 then host := q
      done;
      assert (!host >= 0);
      for q = 0 to n - 1 do
        if q <> !host && combo land (1 lsl q) <> 0 then emit_cx q !host
      done;
      c := Circuit.phase theta !host !c)
    poly.term_list;
  (* Restore the linear part: row-reduce the current wire state to the
     identity (emitting the ops), then replay the reduction of the target
     linear map backwards. *)
  let reduction_ops rows_init =
    let rows = Array.copy rows_init in
    let ops = ref [] in
    let do_op ctl tgt =
      rows.(tgt) <- rows.(tgt) lxor rows.(ctl);
      ops := (ctl, tgt) :: !ops
    in
    (* Gauss-Jordan with free pivot rows: a pivot must not have served an
       earlier column (so it carries no earlier pivot bits and cannot
       contaminate them), ending with a row permutation realised as
       CX-swap triples. *)
    let used = Array.make n false in
    let pivot_of = Array.make n (-1) in
    for col = 0 to n - 1 do
      let pivot = ref (-1) in
      for i = n - 1 downto 0 do
        if (not used.(i)) && rows.(i) land (1 lsl col) <> 0 then pivot := i
      done;
      if !pivot < 0 then invalid_arg "Phase_poly: singular linear map";
      used.(!pivot) <- true;
      pivot_of.(col) <- !pivot;
      for i = 0 to n - 1 do
        if i <> !pivot && rows.(i) land (1 lsl col) <> 0 then do_op !pivot i
      done
    done;
    (* rows.(pivot_of.(col)) = 1 lsl col; permute into place *)
    for col = 0 to n - 1 do
      let where = ref (-1) in
      Array.iteri (fun i row -> if row = 1 lsl col then where := i) rows;
      assert (!where >= 0);
      if !where <> col then begin
        do_op !where col;
        do_op col !where;
        do_op !where col
      end
    done;
    Array.iteri (fun i row -> assert (row = 1 lsl i)) rows;
    List.rev !ops (* in application order *)
  in
  List.iter (fun (ctl, tgt) -> emit_cx ctl tgt) (reduction_ops wires);
  (* wires is now the identity; applying the reverse of (linear → I)
     builds the target linear map. *)
  List.iter
    (fun (ctl, tgt) -> emit_cx ctl tgt)
    (List.rev (reduction_ops poly.linear));
  !c

let optimize c = synthesize (of_circuit c)

let is_block_instruction = function
  | Circuit.Apply { gate; controls = []; _ } -> Optimize.diag_angle gate <> None
  | Circuit.Apply { gate = Gate.X; controls = [ _ ]; _ } -> true
  | _ -> false

let optimize_blocks c =
  let n = Circuit.num_qubits c in
  let out = ref (Circuit.empty ~clbits:(Circuit.num_clbits c) n) in
  let block = ref [] in
  let flush () =
    match !block with
    | [] -> ()
    | instrs ->
        let sub =
          List.fold_left (fun acc i -> Circuit.add i acc) (Circuit.empty n)
            (List.rev instrs)
        in
        (* Only bother when the block can actually shrink. *)
        let optimized =
          if Circuit.count_total sub >= 2 then optimize sub else sub
        in
        List.iter (fun i -> out := Circuit.add i !out) (Circuit.instructions optimized);
        block := []
  in
  List.iter
    (fun instr ->
      if is_block_instruction instr then block := instr :: !block
      else begin
        flush ();
        out := Circuit.add instr !out
      end)
    (Circuit.instructions c);
  flush ();
  !out
