open Qdt_linalg
open Qdt_circuit

(* ------------------------------------------------------------------ *)
(* 2x2 unitary algebra                                                 *)
(* ------------------------------------------------------------------ *)

let check_2x2_unitary name u =
  if Mat.rows u <> 2 || Mat.cols u <> 2 || not (Mat.is_unitary ~eps:1e-8 u) then
    invalid_arg (name ^ ": need a 2x2 unitary")

let zyz u =
  check_2x2_unitary "Decompose.zyz" u;
  let u00 = Mat.get u 0 0 and u01 = Mat.get u 0 1 in
  let u10 = Mat.get u 1 0 and u11 = Mat.get u 1 1 in
  let c = Cx.norm u00 and s = Cx.norm u10 in
  let theta = 2.0 *. Float.atan2 s c in
  let tiny = 1e-9 in
  let phi, lambda =
    if s <= tiny then (Cx.phase u11 -. Cx.phase u00, 0.0)
    else if c <= tiny then (Cx.phase u10 -. Cx.phase u01 -. Float.pi, 0.0)
    else
      (* arg u10 − arg u00 = φ exactly; arg u01 − arg u00 = λ + π. *)
      (Cx.phase u10 -. Cx.phase u00, Cx.phase u01 -. Cx.phase u00 -. Float.pi)
  in
  let r = Mat.mul (Gates.rz phi) (Mat.mul (Gates.ry theta) (Gates.rz lambda)) in
  (* α from the largest-magnitude entry. *)
  let alpha = ref 0.0 and best = ref (-1.0) in
  for i = 0 to 1 do
    for j = 0 to 1 do
      let m = Cx.norm (Mat.get u i j) in
      if m > !best then begin
        best := m;
        alpha := Cx.phase (Mat.get u i j) -. Cx.phase (Mat.get r i j)
      end
    done
  done;
  let alpha = !alpha in
  let rebuilt = Mat.scale (Cx.exp_i alpha) r in
  if not (Mat.approx_equal ~eps:1e-7 u rebuilt) then
    invalid_arg "Decompose.zyz: decomposition failed to reconstruct";
  (alpha, theta, phi, lambda)

let sqrt_unitary u =
  check_2x2_unitary "Decompose.sqrt_unitary" u;
  let a = Mat.get u 0 0 and b = Mat.get u 0 1 in
  let c = Mat.get u 1 0 and d = Mat.get u 1 1 in
  let tr = Cx.add a d in
  let det = Cx.sub (Cx.mul a d) (Cx.mul b c) in
  let disc = Cx.sqrt (Cx.sub (Cx.mul tr tr) (Cx.scale 4.0 det)) in
  let l1 = Cx.scale 0.5 (Cx.add tr disc) in
  let l2 = Cx.scale 0.5 (Cx.sub tr disc) in
  if Cx.norm (Cx.sub l1 l2) < 1e-12 then
    (* U = λ·I *)
    Mat.scale (Cx.sqrt l1) (Mat.identity 2)
  else begin
    (* Eigenvector for l1: (b, l1 − a) or (l1 − d, c). *)
    let vx, vy =
      if Cx.norm b > 1e-12 || Cx.norm (Cx.sub l1 a) > 1e-12 then (b, Cx.sub l1 a)
      else (Cx.sub l1 d, c)
    in
    let n2 = Cx.norm2 vx +. Cx.norm2 vy in
    let p1 =
      Mat.of_rows
        [|
          [| Cx.scale (1.0 /. n2) (Cx.mul vx (Cx.conj vx));
             Cx.scale (1.0 /. n2) (Cx.mul vx (Cx.conj vy)) |];
          [| Cx.scale (1.0 /. n2) (Cx.mul vy (Cx.conj vx));
             Cx.scale (1.0 /. n2) (Cx.mul vy (Cx.conj vy)) |];
        |]
    in
    let p2 = Mat.sub (Mat.identity 2) p1 in
    Mat.add (Mat.scale (Cx.sqrt l1) p1) (Mat.scale (Cx.sqrt l2) p2)
  end

(* ------------------------------------------------------------------ *)
(* Instruction-level lowering                                          *)
(* ------------------------------------------------------------------ *)

type basis = Two_qubit | Zx_ready | Cx_rz_h

let apply1 gate target = Circuit.Apply { gate; controls = []; target }
let capply gate controls target = Circuit.Apply { gate; controls; target }

(* Global phase e^{ig} realised exactly on one qubit:
   Phase(2g)·Rz(−2g) = e^{ig}·I. *)
let global_phase g q =
  if Float.abs g < 1e-12 then []
  else [ apply1 (Gate.Rz (-2.0 *. g)) q; apply1 (Gate.Phase (2.0 *. g)) q ]

(* Single-qubit gate as an exact {Rz, Rx, Phase} sequence (in program
   order), using Ry(θ) = Rz(π/2)·Rx(θ)·Rz(−π/2). *)
let ry_as_rz_rx theta q =
  [ apply1 (Gate.Rz (-.Float.pi /. 2.0)) q;
    apply1 (Gate.Rx theta) q;
    apply1 (Gate.Rz (Float.pi /. 2.0)) q ]

(* Exact expansion of the gates the ZX basis does not accept. *)
let expand_for_zx gate q =
  match gate with
  | Gate.Y ->
      (* Y = e^{iπ/2}·X·Z *)
      (apply1 Gate.Z q :: apply1 Gate.X q :: global_phase (Float.pi /. 2.0) q)
  | Gate.Sx -> apply1 (Gate.Rx (Float.pi /. 2.0)) q :: global_phase (Float.pi /. 4.0) q
  | Gate.Sxdg ->
      apply1 (Gate.Rx (-.Float.pi /. 2.0)) q :: global_phase (-.Float.pi /. 4.0) q
  | Gate.Ry theta -> ry_as_rz_rx theta q
  | Gate.U3 { theta; phi; lambda } ->
      (apply1 (Gate.Rz lambda) q :: ry_as_rz_rx theta q)
      @ (apply1 (Gate.Rz phi) q :: global_phase ((phi +. lambda) /. 2.0) q)
  | Gate.I -> []
  | Gate.X | Gate.Z | Gate.H | Gate.S | Gate.Sdg | Gate.T | Gate.Tdg
  | Gate.Rx _ | Gate.Rz _ | Gate.Phase _ ->
      [ apply1 gate q ]

(* ABC decomposition of a singly-controlled arbitrary 2x2 unitary. *)
let controlled_unitary u ctl tgt =
  let alpha, theta, phi, lambda = zyz u in
  [ apply1 (Gate.Rz ((lambda -. phi) /. 2.0)) tgt;
    capply Gate.X [ ctl ] tgt;
    apply1 (Gate.Rz (-.(phi +. lambda) /. 2.0)) tgt;
    apply1 (Gate.Ry (-.theta /. 2.0)) tgt;
    capply Gate.X [ ctl ] tgt;
    apply1 (Gate.Ry (theta /. 2.0)) tgt;
    apply1 (Gate.Rz phi) tgt;
    apply1 (Gate.Phase alpha) ctl ]

(* A 2x2 unitary as a controlled gate instruction pair: V = e^{ig}·U3, so
   C(V) = C(U3) followed by Phase(g) on the control. *)
let as_controlled_gate v controls tgt =
  let alpha, theta, phi, lambda = zyz v in
  let g = alpha -. ((phi +. lambda) /. 2.0) in
  let phase_fix =
    if Float.abs g < 1e-12 then []
    else
      match controls with
      | [ c ] -> [ apply1 (Gate.Phase g) c ]
      | c :: rest -> [ capply (Gate.Phase g) rest c ]
      | [] -> global_phase g tgt
  in
  capply (Gate.U3 { theta; phi; lambda }) controls tgt :: phase_fix

(* Barenco recursion: C^k(U) with controls (c :: rest) becomes two
   C^{k-1}(X) and three singly/multi-controlled square roots. *)
let rec lower_multi_control u controls target =
  match controls with
  | [] -> as_controlled_gate u [] target
  | [ c ] ->
      (* exact single-controlled gate instruction; later passes may expand *)
      as_controlled_gate u [ c ] target
  | c :: rest ->
      let v = sqrt_unitary u in
      let vdag = Mat.dagger v in
      as_controlled_gate v [ c ] target
      @ lower_multi_control Gates.x rest c
      @ as_controlled_gate vdag [ c ] target
      @ lower_multi_control Gates.x rest c
      @ lower_multi_control v rest target

let swap_to_cx a b =
  [ capply Gate.X [ a ] b; capply Gate.X [ b ] a; capply Gate.X [ a ] b ]

let fredkin_to_ccx controls a b =
  [ capply Gate.X [ b ] a;
    Circuit.Apply { gate = Gate.X; controls = a :: controls; target = b };
    capply Gate.X [ b ] a ]

(* One lowering step; returns None when the instruction is already in the
   basis. *)
let rec step basis instr =
  match instr with
  | Circuit.Measure _ | Circuit.Reset _ | Circuit.Barrier _ -> None
  | Circuit.If { value; instr = inner } -> (
      (* Lower the guarded operation and re-guard each replacement: the
         guard value is untouched by a unitary expansion. *)
      match step basis inner with
      | None -> None
      | Some reps -> Some (List.map (fun i -> Circuit.If { value; instr = i }) reps))
  | Circuit.Swap { controls = []; a; b } -> (
      match basis with
      | Two_qubit | Zx_ready -> None
      | Cx_rz_h -> Some (swap_to_cx a b))
  | Circuit.Swap { controls; a; b } -> Some (fredkin_to_ccx controls a b)
  | Circuit.Apply { gate; controls = []; target } -> (
      match basis with
      | Two_qubit -> None
      | Zx_ready -> (
          match gate with
          | Gate.I -> Some []
          | Gate.X | Gate.Z | Gate.H | Gate.S | Gate.Sdg | Gate.T | Gate.Tdg
          | Gate.Rx _ | Gate.Rz _ | Gate.Phase _ ->
              None
          | Gate.Y | Gate.Sx | Gate.Sxdg | Gate.Ry _ | Gate.U3 _ ->
              Some (expand_for_zx gate target))
      | Cx_rz_h -> (
          match gate with
          | Gate.H | Gate.Rz _ -> None
          | Gate.I -> Some []
          | Gate.X -> Some [ apply1 Gate.H target; apply1 (Gate.Rz Float.pi) target; apply1 Gate.H target ]
          | Gate.Z -> Some [ apply1 (Gate.Rz Float.pi) target ]
          | Gate.S -> Some [ apply1 (Gate.Rz (Float.pi /. 2.0)) target ]
          | Gate.Sdg -> Some [ apply1 (Gate.Rz (-.Float.pi /. 2.0)) target ]
          | Gate.T -> Some [ apply1 (Gate.Rz (Float.pi /. 4.0)) target ]
          | Gate.Tdg -> Some [ apply1 (Gate.Rz (-.Float.pi /. 4.0)) target ]
          | Gate.Phase theta -> Some [ apply1 (Gate.Rz theta) target ]
          | Gate.Rx theta ->
              Some [ apply1 Gate.H target; apply1 (Gate.Rz theta) target; apply1 Gate.H target ]
          | Gate.Y | Gate.Sx | Gate.Sxdg | Gate.Ry _ | Gate.U3 _ ->
              Some (expand_for_zx gate target)))
  | Circuit.Apply { gate; controls = [ ctl ]; target } -> (
      match basis with
      | Two_qubit -> None
      | Zx_ready | Cx_rz_h -> (
          match gate with
          | Gate.X -> None
          | Gate.Z when basis = Zx_ready -> None
          | _ -> Some (controlled_unitary (Gate.matrix gate) ctl target)))
  | Circuit.Apply { gate; controls; target } ->
      Some (lower_multi_control (Gate.matrix gate) controls target)

let instruction_in_basis basis instr =
  match step basis instr with
  | None -> true
  | Some _ -> false

let lower ~basis c =
  let rec fix instr acc =
    match step basis instr with
    | None -> instr :: acc
    | Some replacements -> List.fold_left (fun acc i -> fix i acc) acc replacements
  in
  let lowered = List.fold_left (fun acc i -> fix i acc) [] (Circuit.instructions c) in
  List.fold_left
    (fun acc i -> Circuit.add i acc)
    (Circuit.empty ~clbits:(Circuit.num_clbits c) (Circuit.num_qubits c))
    (List.rev lowered)

let conforms ~basis c =
  List.for_all (instruction_in_basis basis) (Circuit.instructions c)
