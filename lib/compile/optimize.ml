open Qdt_circuit

type stats = { removed : int; merged : int }

let same_support controls1 controls2 =
  List.sort compare controls1 = List.sort compare controls2

let two_pi = 2.0 *. Float.pi

let angle_is_trivial a =
  let m = Float.rem (Float.abs a) two_pi in
  m < 1e-12 || two_pi -. m < 1e-12

(* Diagonal single-qubit phase family: gate -> phase angle of |1⟩ (Rz up to
   global phase). *)
let diag_angle = function
  | Gate.I -> Some 0.0
  | Gate.Z -> Some Float.pi
  | Gate.S -> Some (Float.pi /. 2.0)
  | Gate.Sdg -> Some (-.Float.pi /. 2.0)
  | Gate.T -> Some (Float.pi /. 4.0)
  | Gate.Tdg -> Some (-.Float.pi /. 4.0)
  | Gate.Phase theta -> Some theta
  | Gate.Rz theta -> Some theta
  | Gate.X | Gate.Y | Gate.H | Gate.Sx | Gate.Sxdg | Gate.Rx _ | Gate.Ry _
  | Gate.U3 _ ->
      None

let gates_inverse a b =
  match (a, b) with
  | Gate.X, Gate.X | Gate.Y, Gate.Y | Gate.Z, Gate.Z | Gate.H, Gate.H
  | Gate.S, Gate.Sdg | Gate.Sdg, Gate.S | Gate.T, Gate.Tdg | Gate.Tdg, Gate.T
  | Gate.Sx, Gate.Sxdg | Gate.Sxdg, Gate.Sx | Gate.I, Gate.I ->
      true
  | Gate.Rx x, Gate.Rx y | Gate.Ry x, Gate.Ry y | Gate.Rz x, Gate.Rz y
  | Gate.Phase x, Gate.Phase y ->
      angle_is_trivial (x +. y)
  | _ -> false

let instructions_inverse a b =
  match (a, b) with
  | Circuit.Apply x, Circuit.Apply y ->
      x.target = y.target && same_support x.controls y.controls
      && gates_inverse x.gate y.gate
  | Circuit.Swap x, Circuit.Swap y ->
      same_support x.controls y.controls
      && ((x.a = y.a && x.b = y.b) || (x.a = y.b && x.b = y.a))
  | _ -> false

type action = Keep | Cancel | Replace of Circuit.instruction

(* Single left-to-right pass with per-qubit stacks of live instruction
   indices; cancelling exposes earlier instructions, so cascades like
   [CX; H; H; CX] vanish in one pass. *)
let scan combine circuit =
  let instrs = Array.of_list (Circuit.instructions circuit) in
  let live = Array.map (fun i -> Some i) instrs in
  let n = Circuit.num_qubits circuit in
  let stacks = Array.make n [] in
  let removed = ref 0 and merged = ref 0 in
  let push idx qs = List.iter (fun q -> stacks.(q) <- idx :: stacks.(q)) qs in
  let pop qs =
    List.iter
      (fun q ->
        match stacks.(q) with [] -> assert false | _ :: rest -> stacks.(q) <- rest)
      qs
  in
  Array.iteri
    (fun idx instr ->
      match instr with
      | Circuit.Barrier _ ->
          for q = 0 to n - 1 do
            stacks.(q) <- []
          done
      | Circuit.Measure _ | Circuit.Reset _ | Circuit.If _ ->
          List.iter (fun q -> stacks.(q) <- []) (Circuit.qubits_of_instruction instr)
      | Circuit.Apply { gate = Gate.I; _ } ->
          live.(idx) <- None;
          incr removed
      | Circuit.Apply _ | Circuit.Swap _ -> (
          let qs = Circuit.qubits_of_instruction instr in
          let sorted = List.sort compare qs in
          let candidate =
            match sorted with
            | [] -> None
            | q0 :: rest -> (
                match stacks.(q0) with
                | [] -> None
                | j :: _ ->
                    if
                      List.for_all
                        (fun q ->
                          match stacks.(q) with j' :: _ -> j' = j | [] -> false)
                        rest
                    then
                      match live.(j) with
                      | Some p
                        when List.sort compare (Circuit.qubits_of_instruction p) = sorted ->
                          Some (j, p)
                      | _ -> None
                    else None)
          in
          match candidate with
          | Some (j, p) -> (
              match combine p instr with
              | Cancel ->
                  live.(j) <- None;
                  live.(idx) <- None;
                  removed := !removed + 2;
                  pop qs
              | Replace replacement ->
                  live.(j) <- Some replacement;
                  live.(idx) <- None;
                  incr merged
              | Keep -> push idx qs)
          | None -> push idx qs))
    instrs;
  let out = Array.to_list live |> List.filter_map (fun x -> x) in
  let rebuilt =
    List.fold_left
      (fun acc i -> Circuit.add i acc)
      (Circuit.empty ~clbits:(Circuit.num_clbits circuit) (Circuit.num_qubits circuit))
      out
  in
  (rebuilt, { removed = !removed; merged = !merged })

let cancel_inverses circuit =
  scan (fun prev cur -> if instructions_inverse prev cur then Cancel else Keep) circuit

let merge_rotations circuit =
  scan
    (fun prev cur ->
      match (prev, cur) with
      | Circuit.Apply p, Circuit.Apply c
        when p.target = c.target && same_support p.controls c.controls -> (
          match (diag_angle p.gate, diag_angle c.gate) with
          | Some a, Some b ->
              let total = a +. b in
              if angle_is_trivial total then Cancel
              else
                Replace
                  (Circuit.Apply
                     { gate = Gate.Phase total; controls = p.controls; target = p.target })
          | _ -> (
              match (p.gate, c.gate) with
              | Gate.Rx a, Gate.Rx b ->
                  if angle_is_trivial (a +. b) then Cancel
                  else
                    Replace
                      (Circuit.Apply
                         { gate = Gate.Rx (a +. b); controls = p.controls; target = p.target })
              | Gate.Ry a, Gate.Ry b ->
                  if angle_is_trivial (a +. b) then Cancel
                  else
                    Replace
                      (Circuit.Apply
                         { gate = Gate.Ry (a +. b); controls = p.controls; target = p.target })
              | _ -> Keep))
      | _ -> Keep)
    circuit

let m_removed = Qdt_obs.Metrics.counter "compile.gates_removed"
let m_merged = Qdt_obs.Metrics.counter "compile.gates_merged"

let optimize circuit =
  Qdt_obs.Trace.with_span "compile.peephole" @@ fun () ->
  let rec loop c acc_removed acc_merged rounds =
    if rounds = 0 then (c, { removed = acc_removed; merged = acc_merged })
    else
      let c1, s1 = cancel_inverses c in
      let c2, s2 = merge_rotations c1 in
      if s1.removed + s1.merged + s2.removed + s2.merged = 0 then
        (c2, { removed = acc_removed; merged = acc_merged })
      else
        loop c2
          (acc_removed + s1.removed + s2.removed)
          (acc_merged + s1.merged + s2.merged)
          (rounds - 1)
  in
  let optimized, stats = loop circuit 0 0 20 in
  Qdt_obs.Metrics.add m_removed stats.removed;
  Qdt_obs.Metrics.add m_merged stats.merged;
  (optimized, stats)
