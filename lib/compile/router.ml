open Qdt_circuit

type result = {
  routed : Circuit.t;
  initial_layout : int array;
  final_layout : int array;
  added_swaps : int;
}

let respects circuit coupling =
  List.for_all
    (fun instr ->
      match Circuit.qubits_of_instruction instr with
      | [] | [ _ ] -> true
      | [ a; b ] -> Coupling.connected coupling a b
      | _ -> false)
    (Circuit.unitary_instructions circuit)

let apply_layout_permutation ~layout c = Circuit.remap (fun q -> layout.(q)) c

let m_swaps = Qdt_obs.Metrics.counter "compile.swaps_added"

let route ?initial_layout circuit coupling =
  Qdt_obs.Trace.with_span "compile.route" @@ fun () ->
  let n = Circuit.num_qubits circuit in
  if Coupling.num_qubits coupling < n then
    invalid_arg "Router.route: coupling map too small";
  let phys_n = Coupling.num_qubits coupling in
  let lowered = Decompose.lower ~basis:Decompose.Two_qubit circuit in
  let layout =
    match initial_layout with
    | Some l ->
        if Array.length l <> n then invalid_arg "Router.route: bad layout length";
        Array.copy l
    | None -> Array.init n (fun q -> q)
  in
  let initial_layout = Array.copy layout in
  (* physical → logical inverse (-1 = free) *)
  let occupant = Array.make phys_n (-1) in
  Array.iteri (fun l p -> occupant.(p) <- l) layout;
  let out = ref (Circuit.empty ~clbits:(Circuit.num_clbits circuit) phys_n) in
  let added_swaps = ref 0 in
  let emit instr = out := Circuit.add instr !out in
  let swap_physical a b =
    emit (Circuit.Swap { controls = []; a; b });
    incr added_swaps;
    let la = occupant.(a) and lb = occupant.(b) in
    occupant.(a) <- lb;
    occupant.(b) <- la;
    if lb >= 0 then layout.(lb) <- a;
    if la >= 0 then layout.(la) <- b
  in
  let bring_adjacent a b =
    (* Move logical a's physical position along the shortest path towards
       logical b until adjacent. *)
    let rec loop () =
      let pa = layout.(a) and pb = layout.(b) in
      if not (Coupling.connected coupling pa pb) then begin
        match Coupling.shortest_path coupling pa pb with
        | _ :: next :: _ ->
            swap_physical pa next;
            loop ()
        | _ -> invalid_arg "Router.route: disconnected coupling map"
      end
    in
    loop ()
  in
  let remap_1q q = layout.(q) in
  (* [wrap] re-attaches a classical guard to the routed operation; the
     layout-fixing swaps inserted by [bring_adjacent] stay unconditional. *)
  let rec route_instr wrap instr =
    match instr with
    | Circuit.Barrier _ -> ()
    | Circuit.Measure { qubit; clbit } ->
        emit (wrap (Circuit.Measure { qubit = remap_1q qubit; clbit }))
    | Circuit.Reset q -> emit (wrap (Circuit.Reset (remap_1q q)))
    | Circuit.Apply { gate; controls = []; target } ->
        emit (wrap (Circuit.Apply { gate; controls = []; target = remap_1q target }))
    | Circuit.Apply { gate; controls = [ ctl ]; target } ->
        bring_adjacent ctl target;
        emit
          (wrap
             (Circuit.Apply
                { gate; controls = [ layout.(ctl) ]; target = layout.(target) }))
    | Circuit.Swap { controls = []; a; b } ->
        bring_adjacent a b;
        emit (wrap (Circuit.Swap { controls = []; a = layout.(a); b = layout.(b) }))
    | Circuit.If { value; instr } ->
        route_instr (fun i -> Circuit.If { value; instr = i }) instr
    | Circuit.Apply _ | Circuit.Swap _ ->
        invalid_arg "Router.route: lowering left a >2-qubit instruction"
  in
  List.iter (route_instr (fun i -> i)) (Circuit.instructions lowered);
  Qdt_obs.Metrics.add m_swaps !added_swaps;
  {
    routed = !out;
    initial_layout;
    final_layout = layout;
    added_swaps = !added_swaps;
  }

let undo_final_permutation result =
  (* Restore the initial placement with explicit swaps (in physical space). *)
  let layout = Array.copy result.final_layout in
  let n = Array.length layout in
  let phys_n = Circuit.num_qubits result.routed in
  let occupant = Array.make phys_n (-1) in
  Array.iteri (fun l p -> occupant.(p) <- l) layout;
  let c = ref result.routed in
  for l = 0 to n - 1 do
    let want = result.initial_layout.(l) in
    let have = layout.(l) in
    if have <> want then begin
      c := Circuit.swap have want !c;
      let other = occupant.(want) in
      occupant.(want) <- l;
      occupant.(have) <- other;
      layout.(l) <- want;
      if other >= 0 then layout.(other) <- have
    end
  done;
  !c
