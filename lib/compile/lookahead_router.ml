open Qdt_circuit

(* Instruction scheduling: an instruction is ready when it sits at the head
   of the pending queue of every qubit it touches. *)

let route ?initial_layout ?(lookahead = 20) ?(decay = 0.1) circuit coupling =
  let n = Circuit.num_qubits circuit in
  if Coupling.num_qubits coupling < n then
    invalid_arg "Lookahead_router.route: coupling map too small";
  let phys_n = Coupling.num_qubits coupling in
  let lowered = Decompose.lower ~basis:Decompose.Two_qubit circuit in
  let instrs = Array.of_list (Circuit.instructions lowered) in
  let total = Array.length instrs in
  (* per-qubit queues of instruction indices *)
  let queues = Array.make n [] in
  for idx = total - 1 downto 0 do
    match instrs.(idx) with
    | Circuit.Barrier _ -> ()
    | instr ->
        List.iter
          (fun q -> queues.(q) <- idx :: queues.(q))
          (Circuit.qubits_of_instruction instr)
  done;
  let layout =
    match initial_layout with
    | Some l ->
        if Array.length l <> n then invalid_arg "Lookahead_router.route: bad layout";
        Array.copy l
    | None -> Array.init n (fun q -> q)
  in
  let initial_layout_copy = Array.copy layout in
  let occupant = Array.make phys_n (-1) in
  Array.iteri (fun l p -> occupant.(p) <- l) layout;
  let out = ref (Circuit.empty ~clbits:(Circuit.num_clbits circuit) phys_n) in
  let added_swaps = ref 0 in
  let emit instr = out := Circuit.add instr !out in
  let done_ = Array.make total false in
  let ready idx instr =
    List.for_all
      (fun q -> match queues.(q) with head :: _ -> head = idx | [] -> false)
      (Circuit.qubits_of_instruction instr)
  in
  let retire idx instr =
    done_.(idx) <- true;
    List.iter
      (fun q ->
        match queues.(q) with
        | head :: rest when head = idx -> queues.(q) <- rest
        | _ -> assert false)
      (Circuit.qubits_of_instruction instr)
  in
  let rec remap_instr instr =
    match instr with
    | Circuit.Apply { gate; controls; target } ->
        Circuit.Apply
          { gate; controls = List.map (fun q -> layout.(q)) controls;
            target = layout.(target) }
    | Circuit.Swap { controls; a; b } ->
        Circuit.Swap
          { controls = List.map (fun q -> layout.(q)) controls;
            a = layout.(a); b = layout.(b) }
    | Circuit.Measure { qubit; clbit } -> Circuit.Measure { qubit = layout.(qubit); clbit }
    | Circuit.Reset q -> Circuit.Reset layout.(q)
    | Circuit.Barrier qs -> Circuit.Barrier (List.map (fun q -> layout.(q)) qs)
    | Circuit.If { value; instr } -> Circuit.If { value; instr = remap_instr instr }
  in
  let executable instr =
    match Circuit.qubits_of_instruction instr with
    | [] | [ _ ] -> true
    | [ a; b ] -> Coupling.connected coupling layout.(a) layout.(b)
    | _ -> invalid_arg "Lookahead_router: lowering left a >2-qubit instruction"
  in
  let decay_factor = Array.make phys_n 1.0 in
  let decay_counter = ref 0 in
  let remaining = ref total in
  (* barriers don't enter queues; count them out *)
  Array.iter (function Circuit.Barrier _ -> decr remaining | _ -> ()) instrs;
  let swap_budget = 100 + (total * Coupling.num_qubits coupling) in
  while !remaining > 0 do
    if !added_swaps > swap_budget then
      invalid_arg "Lookahead_router: swap budget exceeded (routing diverged)";
    (* 1. flush every ready & executable instruction *)
    let progressed = ref true in
    while !progressed do
      progressed := false;
      for idx = 0 to total - 1 do
        match instrs.(idx) with
        | Circuit.Barrier _ -> ()
        | instr ->
            if ready idx instr && executable instr then begin
              emit (remap_instr instr);
              retire idx instr;
              decr remaining;
              progressed := true
            end
      done
    done;
    if !remaining > 0 then begin
      (* 2. front layer: ready two-qubit instructions that are blocked *)
      let front = ref [] in
      for idx = 0 to total - 1 do
        match instrs.(idx) with
        | Circuit.Barrier _ -> ()
        | instr ->
            if ready idx instr && not (executable instr) then
              (match Circuit.qubits_of_instruction instr with
              | [ a; b ] -> front := (a, b) :: !front
              | _ -> ())
      done;
      (* lookahead window: the next few blocked 2q interactions per queue *)
      let extended = ref [] in
      let count = ref 0 in
      (try
         for idx = 0 to total - 1 do
           if not done_.(idx) then
             match instrs.(idx) with
             | Circuit.Barrier _ -> ()
             | instr -> (
                 match Circuit.qubits_of_instruction instr with
                 | [ a; b ] ->
                     extended := (a, b) :: !extended;
                     incr count;
                     if !count >= lookahead then raise Exit
                 | _ -> ())
         done
       with Exit -> ());
      if !front = [] then
        invalid_arg "Lookahead_router: deadlock (disconnected coupling map?)";
      (* 3. candidate swaps: edges touching a front-layer qubit *)
      let dist a b = Float.of_int (Coupling.distance coupling a b) in
      let score_with swap_a swap_b =
        let map q =
          let p = layout.(q) in
          if p = swap_a then swap_b else if p = swap_b then swap_a else p
        in
        let front_cost =
          List.fold_left (fun acc (a, b) -> acc +. dist (map a) (map b)) 0.0 !front
        in
        let look_cost =
          List.fold_left (fun acc (a, b) -> acc +. dist (map a) (map b)) 0.0 !extended
        in
        (front_cost +. (0.5 *. look_cost /. Float.of_int (max 1 (List.length !extended))))
        *. Float.max decay_factor.(swap_a) decay_factor.(swap_b)
      in
      let candidates =
        List.concat_map
          (fun (a, b) ->
            let edges_of q =
              List.map (fun nb -> (layout.(q), nb)) (Coupling.neighbors coupling layout.(q))
            in
            edges_of a @ edges_of b)
          !front
      in
      let best = ref None in
      List.iter
        (fun (pa, pb) ->
          let s = score_with pa pb in
          match !best with
          | None -> best := Some (s, pa, pb)
          | Some (bs, _, _) -> if s < bs -. 1e-12 then best := Some (s, pa, pb))
        candidates;
      match !best with
      | None -> invalid_arg "Lookahead_router: no candidate swaps"
      | Some (_, pa, pb) ->
          emit (Circuit.Swap { controls = []; a = pa; b = pb });
          incr added_swaps;
          let la = occupant.(pa) and lb = occupant.(pb) in
          occupant.(pa) <- lb;
          occupant.(pb) <- la;
          if lb >= 0 then layout.(lb) <- pa;
          if la >= 0 then layout.(la) <- pb;
          incr decay_counter;
          if !decay_counter mod 5 = 0 then Array.fill decay_factor 0 phys_n 1.0
          else begin
            decay_factor.(pa) <- decay_factor.(pa) +. decay;
            decay_factor.(pb) <- decay_factor.(pb) +. decay
          end
    end
  done;
  {
    Router.routed = !out;
    initial_layout = initial_layout_copy;
    final_layout = layout;
    added_swaps = !added_swaps;
  }
