open Qdt_circuit

(* Aaronson & Gottesman, "Improved simulation of stabilizer circuits",
   PRA 70, 052328 (2004).  Rows 0..n-1 are destabilizers, n..2n-1 the
   stabilizers; one scratch row at index 2n is used by deterministic
   measurements.  Bools keep the code simple; a bit-packed variant would
   gain a constant factor only. *)

type t = {
  n : int;
  xs : bool array array; (* (2n+1) × n *)
  zs : bool array array;
  rs : bool array;       (* sign bit per row *)
}

let create n =
  if n < 1 then invalid_arg "Tableau.create: need n >= 1";
  let rows = (2 * n) + 1 in
  let t =
    {
      n;
      xs = Array.make_matrix rows n false;
      zs = Array.make_matrix rows n false;
      rs = Array.make rows false;
    }
  in
  for i = 0 to n - 1 do
    t.xs.(i).(i) <- true;       (* destabilizer X_i *)
    t.zs.(n + i).(i) <- true    (* stabilizer Z_i *)
  done;
  t

let num_qubits t = t.n

(* Return to the |0…0⟩ tableau in place, keeping the row allocations —
   the reuse path of a stabilizer backend session. *)
let reset t =
  let rows = (2 * t.n) + 1 in
  for i = 0 to rows - 1 do
    Array.fill t.xs.(i) 0 t.n false;
    Array.fill t.zs.(i) 0 t.n false
  done;
  Array.fill t.rs 0 rows false;
  for i = 0 to t.n - 1 do
    t.xs.(i).(i) <- true;
    t.zs.(t.n + i).(i) <- true
  done

let copy t =
  {
    n = t.n;
    xs = Array.map Array.copy t.xs;
    zs = Array.map Array.copy t.zs;
    rs = Array.copy t.rs;
  }

let check_qubit t q =
  if q < 0 || q >= t.n then invalid_arg "Tableau: qubit out of range"

let h t q =
  check_qubit t q;
  for i = 0 to (2 * t.n) - 1 do
    let x = t.xs.(i).(q) and z = t.zs.(i).(q) in
    if x && z then t.rs.(i) <- not t.rs.(i);
    t.xs.(i).(q) <- z;
    t.zs.(i).(q) <- x
  done

let s t q =
  check_qubit t q;
  for i = 0 to (2 * t.n) - 1 do
    let x = t.xs.(i).(q) and z = t.zs.(i).(q) in
    if x && z then t.rs.(i) <- not t.rs.(i);
    t.zs.(i).(q) <- z <> x
  done

let sdg t q =
  s t q;
  s t q;
  s t q

let z t q =
  s t q;
  s t q

let x t q =
  h t q;
  z t q;
  h t q

let y t q =
  (* Y = S·X·S† up to phase; global phase is invisible in the tableau *)
  z t q;
  x t q

let cx t a b =
  check_qubit t a;
  check_qubit t b;
  if a = b then invalid_arg "Tableau.cx: identical operands";
  for i = 0 to (2 * t.n) - 1 do
    let xa = t.xs.(i).(a) and za = t.zs.(i).(a) in
    let xb = t.xs.(i).(b) and zb = t.zs.(i).(b) in
    if xa && zb && xb = za then t.rs.(i) <- not t.rs.(i);
    t.xs.(i).(b) <- xb <> xa;
    t.zs.(i).(a) <- za <> zb
  done

let cz t a b =
  h t b;
  cx t a b;
  h t b

let swap t a b =
  cx t a b;
  cx t b a;
  cx t a b

(* Phase bookkeeping for multiplying Pauli rows: g is the exponent of i
   contributed by one qubit position when multiplying (x1,z1)·(x2,z2). *)
let g x1 z1 x2 z2 =
  match (x1, z1) with
  | false, false -> 0
  | true, true -> (if z2 then 1 else 0) - if x2 then 1 else 0
  | true, false -> if z2 then (if x2 then 1 else -1) else 0
  | false, true -> if x2 then (if z2 then -1 else 1) else 0

(* row h <- row h * row i *)
let rowsum t hrow irow =
  let phase = ref 0 in
  for q = 0 to t.n - 1 do
    phase := !phase + g t.xs.(irow).(q) t.zs.(irow).(q) t.xs.(hrow).(q) t.zs.(hrow).(q)
  done;
  let total =
    (2 * ((if t.rs.(hrow) then 1 else 0) + if t.rs.(irow) then 1 else 0)) + !phase
  in
  let total = ((total mod 4) + 4) mod 4 in
  assert (total = 0 || total = 2);
  t.rs.(hrow) <- total = 2;
  for q = 0 to t.n - 1 do
    t.xs.(hrow).(q) <- t.xs.(hrow).(q) <> t.xs.(irow).(q);
    t.zs.(hrow).(q) <- t.zs.(hrow).(q) <> t.zs.(irow).(q)
  done

let clear_row t row =
  Array.fill t.xs.(row) 0 t.n false;
  Array.fill t.zs.(row) 0 t.n false;
  t.rs.(row) <- false

let measure_with t ~random_bit q =
  check_qubit t q;
  let n = t.n in
  (* Is some stabilizer anticommuting with Z_q (i.e. has an X at q)? *)
  let p = ref (-1) in
  for i = n to (2 * n) - 1 do
    if !p < 0 && t.xs.(i).(q) then p := i
  done;
  if !p >= 0 then begin
    let p = !p in
    (* Row p−n is overwritten below and is the only row that may
       anticommute with row p, so it is skipped. *)
    for i = 0 to (2 * n) - 1 do
      if i <> p && i <> p - n && t.xs.(i).(q) then rowsum t i p
    done;
    (* destabilizer p-n becomes old stabilizer p; stabilizer p becomes ±Z_q *)
    Array.blit t.xs.(p) 0 t.xs.(p - n) 0 n;
    Array.blit t.zs.(p) 0 t.zs.(p - n) 0 n;
    t.rs.(p - n) <- t.rs.(p);
    clear_row t p;
    let outcome = random_bit () in
    t.zs.(p).(q) <- true;
    t.rs.(p) <- outcome = 1;
    outcome
  end
  else begin
    (* deterministic: accumulate into the scratch row *)
    let scratch = 2 * n in
    clear_row t scratch;
    for i = 0 to n - 1 do
      if t.xs.(i).(q) then rowsum t scratch (i + n)
    done;
    if t.rs.(scratch) then 1 else 0
  end

let measure t ~rng q = measure_with t ~random_bit:(fun () -> Random.State.int rng 2) q

let expectation_z t q =
  check_qubit t q;
  let probe = copy t in
  let deterministic = ref true in
  let outcome =
    measure_with probe
      ~random_bit:(fun () ->
        deterministic := false;
        0)
      q
  in
  if not !deterministic then 0 else if outcome = 1 then -1 else 1

let supported_gate = function
  | Gate.I | Gate.X | Gate.Y | Gate.Z | Gate.H | Gate.S | Gate.Sdg -> true
  | Gate.T | Gate.Tdg | Gate.Sx | Gate.Sxdg | Gate.Rx _ | Gate.Ry _ | Gate.Rz _
  | Gate.Phase _ | Gate.U3 _ ->
      false

let rec apply_instruction t instr ~rng ~clbits =
  match instr with
  | Circuit.If { value; instr } ->
      if Circuit.creg_value clbits = value then apply_instruction t instr ~rng ~clbits
  | Circuit.Barrier _ -> ()
  | Circuit.Measure { qubit; clbit } -> clbits.(clbit) <- measure t ~rng qubit
  | Circuit.Reset q -> if measure t ~rng q = 1 then x t q
  | Circuit.Swap { controls = []; a; b } -> swap t a b
  | Circuit.Swap { controls = _ :: _; _ } ->
      invalid_arg "Tableau: controlled swap is not Clifford"
  | Circuit.Apply { gate; controls = []; target } -> (
      match gate with
      | Gate.I -> ()
      | Gate.X -> x t target
      | Gate.Y -> y t target
      | Gate.Z -> z t target
      | Gate.H -> h t target
      | Gate.S -> s t target
      | Gate.Sdg -> sdg t target
      | _ -> invalid_arg "Tableau: non-Clifford gate")
  | Circuit.Apply { gate; controls = [ ctl ]; target } -> (
      match gate with
      | Gate.X -> cx t ctl target
      | Gate.Z -> cz t ctl target
      | Gate.Y ->
          (* CY = S_t · CX · S_t† *)
          sdg t target;
          cx t ctl target;
          s t target
      | _ -> invalid_arg "Tableau: non-Clifford controlled gate")
  | Circuit.Apply { controls = _ :: _ :: _; _ } ->
      invalid_arg "Tableau: multi-controlled gates are not Clifford"

let supports circuit =
  let rec instr_ok instr =
    match instr with
    | Circuit.Barrier _ | Circuit.Measure _ | Circuit.Reset _ -> true
    | Circuit.If { instr; _ } -> instr_ok instr
    | Circuit.Swap { controls = []; _ } -> true
    | Circuit.Swap _ -> false
    | Circuit.Apply { gate; controls = []; _ } -> supported_gate gate
    | Circuit.Apply { gate = Gate.X | Gate.Z | Gate.Y; controls = [ _ ]; _ } -> true
    | Circuit.Apply _ -> false
  in
  List.for_all instr_ok (Circuit.instructions circuit)

let run ?(seed = 0) circuit =
  let t = create (Circuit.num_qubits circuit) in
  let rng = Random.State.make [| seed |] in
  let clbits = Array.make (max 1 (Circuit.num_clbits circuit)) 0 in
  List.iter
    (fun instr -> apply_instruction t instr ~rng ~clbits)
    (Circuit.instructions circuit);
  (t, clbits)

let sample ?(seed = 0) t ~shots =
  let rng = Random.State.make [| seed |] in
  let counts = Hashtbl.create 64 in
  for _shot = 1 to shots do
    let probe = copy t in
    let k = ref 0 in
    for q = 0 to t.n - 1 do
      if measure probe ~rng q = 1 then k := !k lor (1 lsl q)
    done;
    Hashtbl.replace counts !k (1 + Option.value ~default:0 (Hashtbl.find_opt counts !k))
  done;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let pauli_char x zbit =
  match (x, zbit) with
  | false, false -> '.'
  | true, false -> 'X'
  | false, true -> 'Z'
  | true, true -> 'Y'

let stabilizer_strings t =
  List.init t.n (fun i ->
      let row = t.n + i in
      let sign = if t.rs.(row) then "-" else "+" in
      sign
      ^ String.init t.n (fun q -> pauli_char t.xs.(row).(q) t.zs.(row).(q)))

let memory_bytes t = ((2 * t.n) + 1) * ((2 * t.n) + 1) / 8

let pp ppf t =
  Format.fprintf ppf "@[<v 0>stabilizers:";
  List.iter (fun s -> Format.fprintf ppf "@,  %s" s) (stabilizer_strings t);
  Format.fprintf ppf "@]"
