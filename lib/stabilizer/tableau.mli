(** Stabilizer-tableau simulation (Aaronson–Gottesman CHP).

    The specialised data structure behind the paper's ref [11] (improved
    classical simulation of Clifford-dominated circuits): a stabilizer
    state on [n] qubits is [2n] Pauli strings (destabilizers +
    stabilizers) plus sign bits — [O(n²)] bits total, so thousands of
    qubits are easy where arrays stop below 50.  Only Clifford gates
    (H, S, S†, X, Y, Z, CX, CZ, SWAP) and measurements are supported. *)

type t

(** [create n] is [|0…0⟩] (stabilizers [Z₁ … Zₙ]). *)
val create : int -> t

val num_qubits : t -> int

(** [reset t] returns the tableau to [|0…0⟩] in place, keeping the row
    allocations — the reuse path of a stabilizer backend session. *)
val reset : t -> unit

(** {1 Gates} *)

val h : t -> int -> unit
val s : t -> int -> unit
val sdg : t -> int -> unit
val x : t -> int -> unit
val y : t -> int -> unit
val z : t -> int -> unit
val cx : t -> int -> int -> unit
val cz : t -> int -> int -> unit
val swap : t -> int -> int -> unit

(** [apply_instruction tab instr ~rng ~clbits] — Clifford instructions and
    measurements/reset.
    @raise Invalid_argument on non-Clifford gates. *)
val apply_instruction :
  t -> Qdt_circuit.Circuit.instruction -> rng:Random.State.t -> clbits:int array -> unit

(** [run ?seed circuit] — simulate a Clifford circuit from [|0…0⟩]. *)
val run : ?seed:int -> Qdt_circuit.Circuit.t -> t * int array

(** [supports circuit] — true when every instruction is simulable. *)
val supports : Qdt_circuit.Circuit.t -> bool

(** {1 Measurement and observables} *)

(** [measure tab ~rng q] — projective Z measurement of qubit [q]. *)
val measure : t -> rng:Random.State.t -> int -> int

(** [expectation_z tab q] — [⟨Z_q⟩ ∈ {-1, 0, +1}] (0 means the outcome is
    uniformly random). *)
val expectation_z : t -> int -> int

(** [sample ?seed tab ~shots] — measurement counts over all qubits
    (each shot measures a fresh copy). *)
val sample : ?seed:int -> t -> shots:int -> (int * int) list

(** {1 Inspection} *)

(** [stabilizer_strings tab] — the [n] stabilizer generators, e.g.
    ["+XXZ"] (qubit 0 leftmost). *)
val stabilizer_strings : t -> string list

val copy : t -> t
val memory_bytes : t -> int
val pp : Format.formatter -> t -> unit
