type decomposition = { u : Mat.t; sigma : float array; vdag : Mat.t }

(* One-sided Jacobi: right-multiply [a] by unitary plane rotations until its
   columns are pairwise orthogonal.  The rotations are accumulated into [v];
   on convergence the column norms of [a] are the singular values, the
   normalised columns form [u], and [vdag = v†].

   All column operations run directly on the flat interleaved float buffer
   of the work matrices (see mat.mli, "Storage"), so a full sweep performs
   no complex boxing; this is the inner loop of every MPS bond
   truncation. *)

let column_dot_re buf ~rows ~cols p q =
  (* Re⟨a_p | a_q⟩ with conjugation on the first argument. *)
  let acc = ref 0.0 in
  for r = 0 to rows - 1 do
    let op = 2 * ((r * cols) + p) and oq = 2 * ((r * cols) + q) in
    acc := !acc +. ((buf.(op) *. buf.(oq)) +. (buf.(op + 1) *. buf.(oq + 1)))
  done;
  !acc

let column_dot buf ~rows ~cols p q =
  let accr = ref 0.0 and acci = ref 0.0 in
  for r = 0 to rows - 1 do
    let op = 2 * ((r * cols) + p) and oq = 2 * ((r * cols) + q) in
    let ar = buf.(op) and ai = buf.(op + 1) in
    let br = buf.(oq) and bi = buf.(oq + 1) in
    accr := !accr +. ((ar *. br) +. (ai *. bi));
    acci := !acci +. ((ar *. bi) -. (ai *. br))
  done;
  { Cx.re = !accr; im = !acci }

let rotate_columns buf ~rows ~cols p q ~cs ~sn_pq ~sn_qp =
  (* col_p ← cs·col_p + sn_pq·col_q ; col_q ← sn_qp·col_p + cs·col_q *)
  let pqr = sn_pq.Cx.re and pqi = sn_pq.Cx.im in
  let qpr = sn_qp.Cx.re and qpi = sn_qp.Cx.im in
  for r = 0 to rows - 1 do
    let op = 2 * ((r * cols) + p) and oq = 2 * ((r * cols) + q) in
    let vpr = buf.(op) and vpi = buf.(op + 1) in
    let vqr = buf.(oq) and vqi = buf.(oq + 1) in
    buf.(op) <- (cs *. vpr) +. ((pqr *. vqr) -. (pqi *. vqi));
    buf.(op + 1) <- (cs *. vpi) +. ((pqr *. vqi) +. (pqi *. vqr));
    buf.(oq) <- ((qpr *. vpr) -. (qpi *. vpi)) +. (cs *. vqr);
    buf.(oq + 1) <- ((qpr *. vpi) +. (qpi *. vpr)) +. (cs *. vqi)
  done

let jacobi_sweeps a v =
  let n = Mat.cols a in
  let rows_a = Mat.rows a in
  let abuf = Mat.buffer a and vbuf = Mat.buffer v in
  let tol = 1e-14 in
  let max_sweeps = 60 in
  let converged = ref false in
  let sweep = ref 0 in
  while (not !converged) && !sweep < max_sweeps do
    incr sweep;
    converged := true;
    for p = 0 to n - 2 do
      for q = p + 1 to n - 1 do
        let alpha = column_dot_re abuf ~rows:rows_a ~cols:n p p in
        let beta = column_dot_re abuf ~rows:rows_a ~cols:n q q in
        let gamma = column_dot abuf ~rows:rows_a ~cols:n p q in
        let g = Cx.norm gamma in
        if g > tol *. Float.sqrt (alpha *. beta) && g > 1e-300 then begin
          converged := false;
          (* Phase that makes the off-diagonal real positive. *)
          let phi = Cx.phase gamma in
          let tau = (alpha -. beta) /. (2.0 *. g) in
          let t =
            let s = if tau >= 0.0 then 1.0 else -1.0 in
            s /. (Float.abs tau +. Float.sqrt (1.0 +. (tau *. tau)))
          in
          let cs = 1.0 /. Float.sqrt (1.0 +. (t *. t)) in
          let sn = t *. cs in
          (* J = [[cs, -e^{iφ}·sn], [e^{-iφ}·sn, cs]] applied on the right:
             col_p ← cs·col_p + e^{-iφ}·sn·col_q
             col_q ← -e^{iφ}·sn·col_p + cs·col_q *)
          let e_m = Cx.exp_i (-.phi) and e_p = Cx.exp_i phi in
          let sn_pq = Cx.scale sn e_m in
          let sn_qp = Cx.scale (-.sn) e_p in
          rotate_columns abuf ~rows:rows_a ~cols:n p q ~cs ~sn_pq ~sn_qp;
          rotate_columns vbuf ~rows:n ~cols:n p q ~cs ~sn_pq ~sn_qp
        end
      done
    done
  done

let decompose_tall a =
  let m = Mat.rows a and n = Mat.cols a in
  let work = Mat.copy a in
  let v = Mat.identity n in
  jacobi_sweeps work v;
  let wbuf = Mat.buffer work in
  let norms =
    Array.init n (fun j -> Float.sqrt (column_dot_re wbuf ~rows:m ~cols:n j j))
  in
  let order = Array.init n (fun j -> j) in
  Array.sort (fun i j -> Float.compare norms.(j) norms.(i)) order;
  let sigma = Array.map (fun j -> norms.(j)) order in
  let u = Mat.create m n in
  let ubuf = Mat.buffer u in
  for c = 0 to n - 1 do
    let j = order.(c) in
    if norms.(j) > 1e-300 then begin
      let inv = 1.0 /. norms.(j) in
      for r = 0 to m - 1 do
        let src = 2 * ((r * n) + j) and dst = 2 * ((r * n) + c) in
        ubuf.(dst) <- inv *. wbuf.(src);
        ubuf.(dst + 1) <- inv *. wbuf.(src + 1)
      done
    end
  done;
  let vdag = Mat.create n n in
  let vbuf = Mat.buffer v and vdbuf = Mat.buffer vdag in
  for r = 0 to n - 1 do
    let j = order.(r) in
    for c = 0 to n - 1 do
      (* vdag[r, c] = conj (v[c, order r]) *)
      let src = 2 * ((c * n) + j) and dst = 2 * ((r * n) + c) in
      vdbuf.(dst) <- vbuf.(src);
      vdbuf.(dst + 1) <- -.vbuf.(src + 1)
    done
  done;
  { u; sigma; vdag }

let decompose a =
  if Mat.rows a >= Mat.cols a then decompose_tall a
  else
    (* SVD of A† and swap the factors: A = (V Σ U†)† = U Σ V†. *)
    let d = decompose_tall (Mat.dagger a) in
    { u = Mat.dagger d.vdag; sigma = d.sigma; vdag = Mat.dagger d.u }

let truncate ~max_rank ~cutoff d =
  let r = Array.length d.sigma in
  let total = Array.fold_left (fun acc s -> acc +. (s *. s)) 0.0 d.sigma in
  let threshold = cutoff *. Float.sqrt (Float.max total 1e-300) in
  let keep = ref 0 in
  while
    !keep < r && !keep < max_rank && d.sigma.(!keep) > threshold
  do
    incr keep
  done;
  let k = max 1 !keep in
  let k = min k r in
  let dropped = ref 0.0 in
  for j = k to r - 1 do
    dropped := !dropped +. (d.sigma.(j) *. d.sigma.(j))
  done;
  (* Column/row submatrices by raw blits over the flat buffers. *)
  let um = Mat.rows d.u in
  let u = Mat.create um k in
  let usrc = Mat.buffer d.u and udst = Mat.buffer u in
  let ucols = Mat.cols d.u in
  for row = 0 to um - 1 do
    Array.blit usrc (2 * row * ucols) udst (2 * row * k) (2 * k)
  done;
  let vn = Mat.cols d.vdag in
  let vdag = Mat.create k vn in
  Array.blit (Mat.buffer d.vdag) 0 (Mat.buffer vdag) 0 (2 * k * vn);
  ({ u; sigma = Array.sub d.sigma 0 k; vdag }, !dropped)

let reconstruct d =
  let k = Array.length d.sigma in
  let scaled =
    Mat.init (Mat.rows d.u) k (fun r c -> Cx.scale d.sigma.(c) (Mat.get d.u r c))
  in
  Mat.mul scaled d.vdag
