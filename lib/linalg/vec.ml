(* Unboxed storage: a length-[n] complex vector is a flat [float array] of
   [2n] raw floats, interleaved [re0; im0; re1; im1; ...].  OCaml stores
   float arrays as unboxed blocks, so this representation holds the whole
   vector in one heap object instead of one box per amplitude, and the
   kernels below run without allocating intermediates.  [Cx.t] appears
   only at API boundaries ([get] / [set] / [init] / [of_array] / ...). *)

type t = float array

let length (v : t) = Array.length v / 2
let create len = Array.make (2 * len) 0.0

let get (v : t) k = { Cx.re = v.(2 * k); im = v.((2 * k) + 1) }

let set (v : t) k (z : Cx.t) =
  v.(2 * k) <- z.Cx.re;
  v.((2 * k) + 1) <- z.Cx.im

let init len f =
  let v = create len in
  for k = 0 to len - 1 do
    set v k (f k)
  done;
  v

let of_array a = init (Array.length a) (Array.get a)
let to_array (v : t) = Array.init (length v) (get v)

let buffer (v : t) : float array = v

let of_buffer (b : float array) : t =
  if Array.length b land 1 <> 0 then invalid_arg "Vec.of_buffer: odd length";
  b

let basis ~dim k =
  if k < 0 || k >= dim then invalid_arg "Vec.basis: index out of range";
  let v = create dim in
  v.(2 * k) <- 1.0;
  v

let copy = Array.copy

let blit src dst =
  if Array.length src <> Array.length dst then invalid_arg "Vec.blit: length mismatch";
  Array.blit src 0 dst 0 (Array.length src)

let fill_zero (v : t) = Array.fill v 0 (Array.length v) 0.0
let map f v = init (length v) (fun k -> f (get v k))

let iteri f v =
  for k = 0 to length v - 1 do
    f k (get v k)
  done

let binop name op (a : t) (b : t) : t =
  let len = Array.length a in
  if len <> Array.length b then invalid_arg name;
  let out = Array.make len 0.0 in
  for i = 0 to len - 1 do
    out.(i) <- op a.(i) b.(i)
  done;
  out

(* Complex add/sub act componentwise, so they are plain float-array maps. *)
let add = binop "Vec: length mismatch" ( +. )
let sub = binop "Vec: length mismatch" ( -. )

let scale (s : Cx.t) (v : t) : t =
  let sr = s.Cx.re and si = s.Cx.im in
  let out = Array.make (Array.length v) 0.0 in
  for k = 0 to length v - 1 do
    let o = 2 * k in
    let re = v.(o) and im = v.(o + 1) in
    out.(o) <- (sr *. re) -. (si *. im);
    out.(o + 1) <- (sr *. im) +. (si *. re)
  done;
  out

let scale_inplace (s : Cx.t) (v : t) =
  let sr = s.Cx.re and si = s.Cx.im in
  for k = 0 to length v - 1 do
    let o = 2 * k in
    let re = v.(o) and im = v.(o + 1) in
    v.(o) <- (sr *. re) -. (si *. im);
    v.(o + 1) <- (sr *. im) +. (si *. re)
  done

let rescale_inplace s (v : t) =
  for i = 0 to Array.length v - 1 do
    v.(i) <- s *. v.(i)
  done

let axpy ~alpha (x : t) (y : t) =
  if Array.length x <> Array.length y then invalid_arg "Vec.axpy: length mismatch";
  let ar = alpha.Cx.re and ai = alpha.Cx.im in
  for k = 0 to length x - 1 do
    let o = 2 * k in
    let xr = x.(o) and xi = x.(o + 1) in
    y.(o) <- y.(o) +. ((ar *. xr) -. (ai *. xi));
    y.(o + 1) <- y.(o + 1) +. ((ar *. xi) +. (ai *. xr))
  done

let dot (a : t) (b : t) =
  if Array.length a <> Array.length b then invalid_arg "Vec.dot: length mismatch";
  let accr = ref 0.0 and acci = ref 0.0 in
  for k = 0 to length a - 1 do
    let o = 2 * k in
    let ar = a.(o) and ai = a.(o + 1) in
    let br = b.(o) and bi = b.(o + 1) in
    (* conj(a) · b *)
    accr := !accr +. ((ar *. br) +. (ai *. bi));
    acci := !acci +. ((ar *. bi) -. (ai *. br))
  done;
  { Cx.re = !accr; im = !acci }

let norm2 (v : t) =
  let acc = ref 0.0 in
  for i = 0 to Array.length v - 1 do
    acc := !acc +. (v.(i) *. v.(i))
  done;
  !acc

let norm v = Float.sqrt (norm2 v)

let normalize v =
  let n = norm v in
  if n < 1e-14 then invalid_arg "Vec.normalize: zero vector";
  let out = copy v in
  rescale_inplace (1.0 /. n) out;
  out

let kron (a : t) (b : t) : t =
  let la = length a and lb = length b in
  let out = create (la * lb) in
  for i = 0 to la - 1 do
    let ar = a.(2 * i) and ai = a.((2 * i) + 1) in
    let base = 2 * i * lb in
    for j = 0 to lb - 1 do
      let br = b.(2 * j) and bi = b.((2 * j) + 1) in
      out.(base + (2 * j)) <- (ar *. br) -. (ai *. bi);
      out.(base + (2 * j) + 1) <- (ar *. bi) +. (ai *. br)
    done
  done;
  out

let probabilities (v : t) =
  Array.init (length v) (fun k ->
      let re = v.(2 * k) and im = v.((2 * k) + 1) in
      (re *. re) +. (im *. im))

let approx_equal ?(eps = Cx.default_eps) (a : t) (b : t) =
  Array.length a = Array.length b
  && (let ok = ref true in
      for i = 0 to Array.length a - 1 do
        if Float.abs (a.(i) -. b.(i)) > eps then ok := false
      done;
      !ok)

let equal_up_to_global_phase ?(eps = 1e-8) a b =
  Array.length a = Array.length b
  &&
  (* Align on the largest-magnitude entry of [a] to avoid dividing by a
     numerically tiny amplitude. *)
  let pivot = ref (-1) and best = ref 0.0 in
  for k = 0 to length a - 1 do
    let re = a.(2 * k) and im = a.((2 * k) + 1) in
    let m = (re *. re) +. (im *. im) in
    if m > !best then begin
      best := m;
      pivot := k
    end
  done;
  if !pivot < 0 then norm b <= eps
  else if Cx.norm2 (get b !pivot) < 1e-20 then false
  else
    let factor = Cx.div (get a !pivot) (get b !pivot) in
    approx_equal ~eps a (scale factor b)

let fidelity a b =
  let d = dot a b in
  Cx.norm2 d

let memory_bytes (v : t) = 8 * Array.length v

let pp ppf v =
  Format.fprintf ppf "@[<hov 1>[";
  iteri
    (fun k z ->
      if k > 0 then Format.fprintf ppf ";@ ";
      Cx.pp ppf z)
    v;
  Format.fprintf ppf "]@]"
