(* Unboxed storage: a [rows × cols] complex matrix is one flat
   [float array] of [2·rows·cols] raw floats, row-major, entry (r, c)
   interleaved at offsets [2(r·cols + c)] (re) and [2(r·cols + c) + 1]
   (im).  See vec.ml for the rationale; [Cx.t] appears only at API
   boundaries. *)

type t = { rows : int; cols : int; data : float array }

let create rows cols = { rows; cols; data = Array.make (2 * rows * cols) 0.0 }

let get m r c =
  let o = 2 * ((r * m.cols) + c) in
  { Cx.re = m.data.(o); im = m.data.(o + 1) }

let set m r c (z : Cx.t) =
  let o = 2 * ((r * m.cols) + c) in
  m.data.(o) <- z.Cx.re;
  m.data.(o + 1) <- z.Cx.im

let init rows cols f =
  let m = create rows cols in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      set m r c (f r c)
    done
  done;
  m

let identity n =
  let m = create n n in
  for k = 0 to n - 1 do
    m.data.(2 * ((k * n) + k)) <- 1.0
  done;
  m

let of_rows rows_arr =
  let rows = Array.length rows_arr in
  if rows = 0 then invalid_arg "Mat.of_rows: empty";
  let cols = Array.length rows_arr.(0) in
  Array.iter
    (fun row -> if Array.length row <> cols then invalid_arg "Mat.of_rows: ragged rows")
    rows_arr;
  init rows cols (fun r c -> rows_arr.(r).(c))

let rows m = m.rows
let cols m = m.cols
let buffer m = m.data

let of_buffer ~rows ~cols data =
  if Array.length data <> 2 * rows * cols then invalid_arg "Mat.of_buffer: wrong length";
  { rows; cols; data }

let to_rows m = Array.init m.rows (fun r -> Array.init m.cols (fun c -> get m r c))
let copy m = { m with data = Array.copy m.data }

let binop name op a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg name;
  let len = Array.length a.data in
  let data = Array.make len 0.0 in
  for i = 0 to len - 1 do
    data.(i) <- op a.data.(i) b.data.(i)
  done;
  { a with data }

let add = binop "Mat: shape mismatch" ( +. )
let sub = binop "Mat: shape mismatch" ( -. )

let scale (s : Cx.t) m =
  let sr = s.Cx.re and si = s.Cx.im in
  let data = Array.make (Array.length m.data) 0.0 in
  for k = 0 to (m.rows * m.cols) - 1 do
    let o = 2 * k in
    let re = m.data.(o) and im = m.data.(o + 1) in
    data.(o) <- (sr *. re) -. (si *. im);
    data.(o + 1) <- (sr *. im) +. (si *. re)
  done;
  { m with data }

(* Shared in-place product kernel: [out ← a·b] over the raw float
   buffers, skipping exact-zero left entries (gate matrices are sparse). *)
let mul_kernel ~out a b =
  let ad = a.data and bd = b.data and od = out.data in
  Array.fill od 0 (Array.length od) 0.0;
  let n = b.cols in
  for r = 0 to a.rows - 1 do
    let arow = 2 * r * a.cols and orow = 2 * r * n in
    for k = 0 to a.cols - 1 do
      let ar = ad.(arow + (2 * k)) and ai = ad.(arow + (2 * k) + 1) in
      if ar <> 0.0 || ai <> 0.0 then begin
        let brow = 2 * k * n in
        for c = 0 to n - 1 do
          let br = bd.(brow + (2 * c)) and bi = bd.(brow + (2 * c) + 1) in
          od.(orow + (2 * c)) <- od.(orow + (2 * c)) +. ((ar *. br) -. (ai *. bi));
          od.(orow + (2 * c) + 1) <-
            od.(orow + (2 * c) + 1) +. ((ar *. bi) +. (ai *. br))
        done
      end
    done
  done

let mul a b =
  if a.cols <> b.rows then invalid_arg "Mat.mul: shape mismatch";
  let out = create a.rows b.cols in
  mul_kernel ~out a b;
  out

let mul_into ~out a b =
  if a.cols <> b.rows then invalid_arg "Mat.mul_into: shape mismatch";
  if out.rows <> a.rows || out.cols <> b.cols then
    invalid_arg "Mat.mul_into: output shape mismatch";
  if out.data == a.data || out.data == b.data then
    invalid_arg "Mat.mul_into: output aliases an input";
  mul_kernel ~out a b

let mul_vec m v =
  if m.cols <> Vec.length v then invalid_arg "Mat.mul_vec: shape mismatch";
  let out = Vec.create m.rows in
  let ob = Vec.buffer out and vb = Vec.buffer v in
  let md = m.data in
  for r = 0 to m.rows - 1 do
    let row = 2 * r * m.cols in
    let accr = ref 0.0 and acci = ref 0.0 in
    for c = 0 to m.cols - 1 do
      let mr = md.(row + (2 * c)) and mi = md.(row + (2 * c) + 1) in
      let xr = vb.(2 * c) and xi = vb.((2 * c) + 1) in
      accr := !accr +. ((mr *. xr) -. (mi *. xi));
      acci := !acci +. ((mr *. xi) +. (mi *. xr))
    done;
    ob.(2 * r) <- !accr;
    ob.((2 * r) + 1) <- !acci
  done;
  out

let transpose m =
  let out = create m.cols m.rows in
  for r = 0 to m.rows - 1 do
    for c = 0 to m.cols - 1 do
      let src = 2 * ((r * m.cols) + c) and dst = 2 * ((c * m.rows) + r) in
      out.data.(dst) <- m.data.(src);
      out.data.(dst + 1) <- m.data.(src + 1)
    done
  done;
  out

let dagger m =
  let out = create m.cols m.rows in
  for r = 0 to m.rows - 1 do
    for c = 0 to m.cols - 1 do
      let src = 2 * ((r * m.cols) + c) and dst = 2 * ((c * m.rows) + r) in
      out.data.(dst) <- m.data.(src);
      out.data.(dst + 1) <- -.m.data.(src + 1)
    done
  done;
  out

let kron a b =
  let out = create (a.rows * b.rows) (a.cols * b.cols) in
  let oc = out.cols in
  for ra = 0 to a.rows - 1 do
    for ca = 0 to a.cols - 1 do
      let oa = 2 * ((ra * a.cols) + ca) in
      let ar = a.data.(oa) and ai = a.data.(oa + 1) in
      if ar <> 0.0 || ai <> 0.0 then
        for rb = 0 to b.rows - 1 do
          for cb = 0 to b.cols - 1 do
            let ob = 2 * ((rb * b.cols) + cb) in
            let br = b.data.(ob) and bi = b.data.(ob + 1) in
            let dst = 2 * ((((ra * b.rows) + rb) * oc) + (ca * b.cols) + cb) in
            out.data.(dst) <- (ar *. br) -. (ai *. bi);
            out.data.(dst + 1) <- (ar *. bi) +. (ai *. br)
          done
        done
    done
  done;
  out

let trace m =
  let n = min m.rows m.cols in
  let accr = ref 0.0 and acci = ref 0.0 in
  for k = 0 to n - 1 do
    let o = 2 * ((k * m.cols) + k) in
    accr := !accr +. m.data.(o);
    acci := !acci +. m.data.(o + 1)
  done;
  { Cx.re = !accr; im = !acci }

let approx_equal ?(eps = Cx.default_eps) a b =
  a.rows = b.rows && a.cols = b.cols
  && (let ok = ref true in
      for i = 0 to Array.length a.data - 1 do
        if Float.abs (a.data.(i) -. b.data.(i)) > eps then ok := false
      done;
      !ok)

let is_unitary ?(eps = 1e-9) m =
  m.rows = m.cols && approx_equal ~eps (mul (dagger m) m) (identity m.rows)

let hilbert_schmidt a b = trace (mul (dagger a) b)

let equal_up_to_global_phase ?(eps = 1e-8) a b =
  a.rows = b.rows && a.cols = b.cols
  &&
  let pivot = ref (-1) and best = ref 0.0 in
  for k = 0 to (a.rows * a.cols) - 1 do
    let re = a.data.(2 * k) and im = a.data.((2 * k) + 1) in
    let m2 = (re *. re) +. (im *. im) in
    if m2 > !best then begin
      best := m2;
      pivot := k
    end
  done;
  let entry m k = { Cx.re = m.data.(2 * k); im = m.data.((2 * k) + 1) } in
  if !pivot < 0 then
    let all_zero = ref true in
    for k = 0 to (b.rows * b.cols) - 1 do
      if not (Cx.is_zero ~eps (entry b k)) then all_zero := false
    done;
    !all_zero
  else if Cx.norm2 (entry b !pivot) < 1e-20 then false
  else
    let factor = Cx.div (entry a !pivot) (entry b !pivot) in
    approx_equal ~eps a (scale factor b)

let frobenius_distance a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg "Mat: shape mismatch";
  let acc = ref 0.0 in
  for i = 0 to Array.length a.data - 1 do
    let d = a.data.(i) -. b.data.(i) in
    acc := !acc +. (d *. d)
  done;
  Float.sqrt !acc

let memory_bytes m = 8 * Array.length m.data

let pp ppf m =
  Format.fprintf ppf "@[<v 0>";
  for r = 0 to m.rows - 1 do
    if r > 0 then Format.fprintf ppf "@,";
    Format.fprintf ppf "@[<hov 1>[";
    for c = 0 to m.cols - 1 do
      if c > 0 then Format.fprintf ppf ";@ ";
      Cx.pp ppf (get m r c)
    done;
    Format.fprintf ppf "]@]"
  done;
  Format.fprintf ppf "@]"
