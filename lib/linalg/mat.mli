(** Dense complex matrices (row-major).

    The array representation of quantum operations from Section II of the
    paper: an [n]-qubit operation is a [2^n × 2^n] unitary matrix applied
    by matrix-vector multiplication.

    {b Storage (unboxed substrate).}  A matrix is one flat [float array]
    of [2·rows·cols] raw floats, row-major, entry [(r, c)] interleaved at
    offsets [2(r·cols + c)] and [2(r·cols + c) + 1].  [Cx.t] appears only
    at the API boundary; the product kernels run box-free.

    {b Ownership and aliasing.}  Functions returning [t] allocate fresh
    storage unless documented otherwise; {!buffer} borrows and
    {!of_buffer} adopts storage without copying.  {!mul_into} writes its
    result in place and rejects aliased outputs. *)

type t

val create : int -> int -> t
val init : int -> int -> (int -> int -> Cx.t) -> t
val identity : int -> t

(** [of_rows rows] builds a matrix from a row-major array of arrays.
    @raise Invalid_argument on ragged input. *)
val of_rows : Cx.t array array -> t

val to_rows : t -> Cx.t array array
val rows : t -> int
val cols : t -> int

(** [buffer m] {e borrows} the flat float storage of [m] (layout above).
    No copy: writes through the buffer mutate [m]. *)
val buffer : t -> float array

(** [of_buffer ~rows ~cols data] {e adopts} [data] (length
    [2·rows·cols]) as a matrix without copying — the inverse of
    {!buffer}.  The caller gives up ownership of [data]. *)
val of_buffer : rows:int -> cols:int -> float array -> t

val get : t -> int -> int -> Cx.t
val set : t -> int -> int -> Cx.t -> unit
val copy : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val scale : Cx.t -> t -> t

(** [mul a b] is the matrix product [a·b]. *)
val mul : t -> t -> t

(** [mul_into ~out a b] computes [a·b] into the preallocated [out]
    (overwriting it) without allocating — the scratch-reuse variant of
    {!mul} for per-gate hot loops.  [out] must not alias [a] or [b]. *)
val mul_into : out:t -> t -> t -> unit

(** [mul_vec m v] is the matrix-vector product [m·v]. *)
val mul_vec : t -> Vec.t -> Vec.t

val transpose : t -> t

(** [dagger m] is the conjugate transpose [m†]. *)
val dagger : t -> t

(** [kron a b] is the Kronecker product [a ⊗ b]. *)
val kron : t -> t -> t

val trace : t -> Cx.t

(** [is_unitary ?eps m] checks [m†·m ≈ I]. *)
val is_unitary : ?eps:float -> t -> bool

val approx_equal : ?eps:float -> t -> t -> bool

(** [equal_up_to_global_phase ?eps a b] holds when [a = e^{iφ}·b]; this is
    the equivalence notion used by circuit equivalence checking. *)
val equal_up_to_global_phase : ?eps:float -> t -> t -> bool

(** [frobenius_distance a b] is [‖a − b‖_F]. *)
val frobenius_distance : t -> t -> float

(** [hilbert_schmidt a b] is [Tr(a†·b)], the fidelity-style overlap used by
    equivalence checkers: for [d×d] unitaries, [|Tr(a†b)| = d] iff the two
    agree up to global phase. *)
val hilbert_schmidt : t -> t -> Cx.t

val memory_bytes : t -> int
val pp : Format.formatter -> t -> unit
