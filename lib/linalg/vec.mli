(** Dense complex vectors.

    The array representation of quantum states from Section II of the
    paper: an [n]-qubit register is a vector of [2^n] amplitudes.

    {b Storage (unboxed substrate).}  A vector is one flat [float array]
    of [2n] raw floats, interleaved [re0; im0; re1; im1; ...] — OCaml
    stores float arrays as unboxed blocks, so the whole vector is a
    single heap object and the arithmetic kernels below never allocate a
    box per amplitude.  [Cx.t] values appear only at the API boundary.

    {b Ownership and aliasing.}  Functions returning [t] return freshly
    allocated storage unless documented otherwise.  {!buffer} and
    {!of_buffer} {e borrow}/{e adopt} storage without copying: a caller
    holding the underlying buffer of a vector may observe (and cause)
    in-place mutation.  The in-place kernels ([*_inplace], {!axpy},
    {!blit}, {!fill_zero}) mutate their last argument and must not be
    given aliased arguments unless stated. *)

type t

(** [create len] is the zero vector of length [len]. *)
val create : int -> t

(** [init len f] is the vector whose [i]-th entry is [f i]. *)
val init : int -> (int -> Cx.t) -> t

(** [of_array a] copies [a] into a fresh vector. *)
val of_array : Cx.t array -> t

(** [to_array v] is a copy of the entries of [v]. *)
val to_array : t -> Cx.t array

(** [buffer v] {e borrows} the underlying flat float storage of [v]
    (length [2 · length v], interleaved re/im, entry [k] at offsets
    [2k, 2k+1]).  No copy: writes through the buffer mutate [v].  Do not
    resize or retain it past the lifetime of [v]'s logical value. *)
val buffer : t -> float array

(** [of_buffer b] {e adopts} [b] (even length required) as a vector of
    length [Array.length b / 2] without copying — the inverse of
    {!buffer}.  The caller must not mutate [b] afterwards unless it
    intends to mutate the vector. *)
val of_buffer : float array -> t

(** [basis ~dim k] is the computational basis vector [|k⟩]. *)
val basis : dim:int -> int -> t

val length : t -> int
val get : t -> int -> Cx.t
val set : t -> int -> Cx.t -> unit
val copy : t -> t

(** [blit src dst] copies [src] over [dst] in place (equal lengths). *)
val blit : t -> t -> unit

(** [fill_zero v] zeroes [v] in place. *)
val fill_zero : t -> unit

val map : (Cx.t -> Cx.t) -> t -> t
val iteri : (int -> Cx.t -> unit) -> t -> unit
val add : t -> t -> t
val sub : t -> t -> t
val scale : Cx.t -> t -> t

(** [scale_inplace s v] — [v ← s·v] without allocating. *)
val scale_inplace : Cx.t -> t -> unit

(** [rescale_inplace s v] — [v ← s·v] for a real scalar [s]. *)
val rescale_inplace : float -> t -> unit

(** [axpy ~alpha x y] — [y ← y + alpha·x] without allocating.
    [x] and [y] must not alias. *)
val axpy : alpha:Cx.t -> t -> t -> unit

(** [dot a b] is the Hermitian inner product [⟨a|b⟩] (conjugating [a]).
    Runs box-free over the flat buffers. *)
val dot : t -> t -> Cx.t

(** [norm2 v] is [⟨v|v⟩] (a real number), computed without intermediates. *)
val norm2 : t -> float

(** [norm v] is the Euclidean norm [√⟨v|v⟩]. *)
val norm : t -> float

(** [normalize v] rescales [v] to unit norm.
    @raise Invalid_argument on (numerically) zero vectors. *)
val normalize : t -> t

(** [kron a b] is the Kronecker (tensor) product [a ⊗ b]. *)
val kron : t -> t -> t

(** [probabilities v] is the measurement distribution [|v_i|²]. *)
val probabilities : t -> float array

(** [approx_equal ?eps a b] compares entrywise within [eps]. *)
val approx_equal : ?eps:float -> t -> t -> bool

(** [equal_up_to_global_phase ?eps a b] holds when [a = e^{iφ}·b] for some
    phase [φ]; this is physical equality of pure states. *)
val equal_up_to_global_phase : ?eps:float -> t -> t -> bool

(** [fidelity a b] is [|⟨a|b⟩|²]. *)
val fidelity : t -> t -> float

(** [memory_bytes v] is the heap footprint of the amplitude payload,
    used by the E5 memory-scaling experiment. *)
val memory_bytes : t -> int

val pp : Format.formatter -> t -> unit
