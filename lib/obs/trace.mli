(** Nested-span tracing into a pre-allocated ring buffer.

    Spans record where time goes inside a run: every instrumented layer
    wraps its phases in {!with_span}, and the resulting begin/end event
    stream exports to Chrome trace-event JSON (open in Perfetto or
    chrome://tracing) or to JSONL for ad-hoc processing.

    Overhead contract: while tracing is disabled, {!with_span} is a single
    flag check before calling the thunk; no event storage is touched and
    nothing is allocated by this module.  While enabled, each event writes
    into a slot of a pre-allocated ring — when the ring wraps, the oldest
    events are overwritten and counted in {!dropped_events}. *)

(** {1 Global switch and configuration} *)

val set_enabled : bool -> unit
val enabled : unit -> bool

(** [configure ?capacity ()] — (re)allocate the ring with room for
    [capacity] events (default 131072, two per span) and clear it. *)
val configure : ?capacity:int -> unit -> unit

(** Drop recorded events (capacity and enabled flag survive). *)
val clear : unit -> unit

(** {1 Recording} *)

(** [with_span name f] runs [f ()] bracketed by begin/end events.  The end
    event is emitted even when [f] raises.  [attrs] become the span's
    [args] in the exported trace; pass only cheap, already-built lists on
    hot paths. *)
val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a

(** Manual bracket for call sites where a closure is unaffordable; the
    caller must guarantee the matching [emit_end].  Unbalanced brackets
    only distort the exported nesting — they cannot corrupt state. *)
val emit_begin : ?attrs:(string * string) list -> string -> unit

val emit_end : string -> unit

(** {1 Inspection and export} *)

type phase = Begin | End

type event = { name : string; ts_ns : int; phase : phase; attrs : (string * string) list }

(** Recorded events, oldest first. *)
val events : unit -> event list

(** Events overwritten by ring wrap-around since the last {!configure} /
    {!clear}. *)
val dropped_events : unit -> int

(** Current nesting depth of live (begun, unfinished) spans. *)
val depth : unit -> int

(** [export_chrome path] — write the Chrome trace-event JSON object
    ([{"traceEvents": [...]}], timestamps in microseconds).  The
    top-level ["metadata"] object records [dropped_events] and
    [recorded_events], so consumers can detect a wrapped (truncated)
    ring without trusting the caller to have checked. *)
val export_chrome : string -> unit

(** [export_jsonl path] — one JSON object per event per line, preceded by
    a metadata line [{"metadata": {"dropped_events": ..,
    "recorded_events": ..}}] carrying the same truncation accounting as
    the Chrome exporter. *)
val export_jsonl : string -> unit
