(* Prometheus text exposition parser — the inverse of
   [Metrics.render_prometheus], strict enough that CI can fail a scrape
   that a real Prometheus server would reject.

   The format (version 0.0.4) is line-oriented: [# HELP]/[# TYPE]
   comments, then sample lines of the form [name], optional brace-
   enclosed quoted labels, a value, and an optional timestamp.  We
   enforce the pieces a scraper cares about: names match the exposition
   grammar, label values are quoted with the three escapes (backslash,
   quote, newline), values parse as Prometheus floats (including NaN
   and signed Inf), and every sample belongs to the family declared by
   the preceding TYPE line — where histogram families also own their
   [_bucket], [_sum] and [_count] series. *)

type sample = {
  metric : string;
  labels : (string * string) list;
  value : float;
}

type family = { name : string; kind : string; samples : sample list }

exception Bad of int * string

let fail ln fmt = Printf.ksprintf (fun s -> raise (Bad (ln, s))) fmt

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c = is_name_start c || (c >= '0' && c <= '9')

let is_label_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_label_char c = is_label_start c || (c >= '0' && c <= '9')

(* A cursor over one line; [ln] only for error messages. *)
type cur = { s : string; ln : int; mutable i : int }

let peek c = if c.i < String.length c.s then Some c.s.[c.i] else None
let advance c = c.i <- c.i + 1

let skip_spaces c =
  while c.i < String.length c.s && (c.s.[c.i] = ' ' || c.s.[c.i] = '\t') do
    advance c
  done

let name_token c ~what ~start ~cont =
  let i0 = c.i in
  (match peek c with
  | Some ch when start ch -> advance c
  | _ -> fail c.ln "expected %s at column %d" what (c.i + 1));
  let rec go () =
    match peek c with
    | Some ch when cont ch ->
        advance c;
        go ()
    | _ -> ()
  in
  go ();
  String.sub c.s i0 (c.i - i0)

let quoted_value c =
  (match peek c with
  | Some '"' -> advance c
  | _ -> fail c.ln "expected '\"' to open a label value");
  let b = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c.ln "unterminated label value"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some '\\' -> advance c; Buffer.add_char b '\\'; go ()
        | Some '"' -> advance c; Buffer.add_char b '"'; go ()
        | Some 'n' -> advance c; Buffer.add_char b '\n'; go ()
        | _ -> fail c.ln "bad escape in label value (expected \\\\, \\\" or \\n)")
    | Some ch ->
        advance c;
        Buffer.add_char b ch;
        go ()
  in
  go ();
  Buffer.contents b

let labels c =
  match peek c with
  | Some '{' ->
      advance c;
      let rec go acc =
        skip_spaces c;
        match peek c with
        | Some '}' ->
            advance c;
            List.rev acc
        | _ ->
            let k =
              name_token c ~what:"a label name" ~start:is_label_start
                ~cont:is_label_char
            in
            skip_spaces c;
            (match peek c with
            | Some '=' -> advance c
            | _ -> fail c.ln "expected '=' after label name %S" k);
            skip_spaces c;
            let v = quoted_value c in
            if List.mem_assoc k acc then fail c.ln "duplicate label %S" k;
            skip_spaces c;
            (match peek c with
            | Some ',' ->
                advance c;
                go ((k, v) :: acc)
            | Some '}' ->
                advance c;
                List.rev ((k, v) :: acc)
            | _ -> fail c.ln "expected ',' or '}' after label %S" k)
      in
      go []
  | _ -> []

let prom_value ln s =
  match s with
  | "NaN" -> Float.nan
  | "+Inf" | "Inf" -> Float.infinity
  | "-Inf" -> Float.neg_infinity
  | _ -> (
      match float_of_string_opt s with
      | Some v -> v
      | None -> fail ln "bad sample value %S" s)

let sample_of_line ln line =
  let c = { s = line; ln; i = 0 } in
  let metric =
    name_token c ~what:"a metric name" ~start:is_name_start ~cont:is_name_char
  in
  let labels = labels c in
  skip_spaces c;
  let rest = String.sub c.s c.i (String.length c.s - c.i) in
  (match String.split_on_char ' ' rest |> List.filter (fun t -> t <> "") with
  | [ v ] -> Some v
  | [ v; ts ] ->
      (* Optional timestamp: integer milliseconds. *)
      (match int_of_string_opt ts with
      | Some _ -> ()
      | None -> fail ln "bad timestamp %S" ts);
      Some v
  | [] -> fail ln "missing sample value"
  | _ -> fail ln "trailing garbage after sample value")
  |> function
  | Some v -> { metric; labels; value = prom_value ln v }
  | None -> assert false

(* Does [metric] belong to the family [fam] of kind [kind]?  Histograms
   own the three derived series; everything else must match exactly. *)
let belongs ~kind ~fam metric =
  metric = fam
  || (kind = "histogram"
     && (metric = fam ^ "_bucket"
        || metric = fam ^ "_sum"
        || metric = fam ^ "_count"))

let parse text =
  let lines = String.split_on_char '\n' text in
  let families = ref [] in
  (* (name, kind, rev samples) of the family being filled. *)
  let current = ref None in
  let flush () =
    match !current with
    | None -> ()
    | Some (name, kind, rev) ->
        families := { name; kind; samples = List.rev rev } :: !families;
        current := None
  in
  try
    List.iteri
      (fun idx raw ->
        let ln = idx + 1 in
        let line =
          (* Tolerate \r\n transport. *)
          let n = String.length raw in
          if n > 0 && raw.[n - 1] = '\r' then String.sub raw 0 (n - 1) else raw
        in
        if String.trim line = "" then ()
        else if String.length line > 0 && line.[0] = '#' then begin
          match
            String.split_on_char ' ' line |> List.filter (fun t -> t <> "")
          with
          | "#" :: "TYPE" :: name :: kind :: _ ->
              if not (String.for_all is_name_char name && name <> ""
                     && is_name_start name.[0])
              then fail ln "bad metric name %S in TYPE line" name;
              (match kind with
              | "counter" | "gauge" | "histogram" | "summary" | "untyped" -> ()
              | _ -> fail ln "bad metric kind %S in TYPE line" kind);
              flush ();
              current := Some (name, kind, [])
          | "#" :: ("HELP" | "EOF") :: _ | [ "#" ] -> ()
          | "#" :: _ -> ()  (* other comments are legal and ignored *)
          | _ -> assert false
        end
        else begin
          let s = sample_of_line ln line in
          match !current with
          | Some (fam, kind, rev) when belongs ~kind ~fam s.metric ->
              current := Some (fam, kind, s :: rev)
          | Some (fam, _, _) ->
              fail ln "sample %S outside its family (current family %S)"
                s.metric fam
          | None -> fail ln "sample %S before any TYPE line" s.metric
        end)
      lines;
    flush ();
    Ok (List.rev !families)
  with Bad (ln, msg) -> Error (Printf.sprintf "line %d: %s" ln msg)

let find name fams = List.find_opt (fun f -> f.name = name) fams

let total f =
  let keep (s : sample) =
    match f.kind with
    | "histogram" -> s.metric = f.name ^ "_count"
    | _ -> s.metric = f.name
  in
  List.fold_left
    (fun acc s -> if keep s then acc +. s.value else acc)
    0.0 f.samples
