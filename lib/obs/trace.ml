(* Ring buffer of begin/end events.  Slots are mutable records allocated
   once by [configure]; recording an event mutates a slot in place, so the
   steady-state cost of an enabled span is two clock reads and a handful
   of stores.  Disabled cost is one flag check.

   The ring is single-owner: slots, head and depth are plain mutable state
   with no synchronisation, so only the domain that enabled tracing may
   record.  [emit_begin]/[emit_end]/[with_span] silently drop events from
   any other domain (worker domains of the parallel substrate) — parallel
   regions instead show up as [par.chunk] spans emitted by the calling
   domain around the whole region. *)

let on = ref false
let enabled () = !on

(* Domain id that called [set_enabled true]; -1 while disabled. *)
let owner = ref (-1)
let owned () = (Domain.self () :> int) = !owner

type phase = Begin | End

type event = { name : string; ts_ns : int; phase : phase; attrs : (string * string) list }

type slot = {
  mutable s_name : string;
  mutable s_ts : int;
  mutable s_phase : phase;
  mutable s_attrs : (string * string) list;
}

let default_capacity = 131072
let slots = ref [||]
let head = ref 0 (* next write position *)
let written = ref 0 (* events recorded since last clear (not wrapped) *)
let cur_depth = ref 0

let configure ?(capacity = default_capacity) () =
  let capacity = max 2 capacity in
  slots :=
    Array.init capacity (fun _ ->
        { s_name = ""; s_ts = 0; s_phase = Begin; s_attrs = [] });
  head := 0;
  written := 0;
  cur_depth := 0

let clear () =
  head := 0;
  written := 0;
  cur_depth := 0

let set_enabled b =
  if b && Array.length !slots = 0 then configure ();
  owner := (if b then (Domain.self () :> int) else -1);
  on := b

let capacity () = Array.length !slots

let dropped_events () = max 0 (!written - capacity ())
let depth () = !cur_depth

let record phase name attrs =
  let cap = capacity () in
  if cap > 0 then begin
    let s = !slots.(!head) in
    s.s_name <- name;
    s.s_ts <- Clock.now_ns ();
    s.s_phase <- phase;
    s.s_attrs <- attrs;
    head := (!head + 1) mod cap;
    written := !written + 1
  end

let emit_begin ?(attrs = []) name =
  if !on && owned () then begin
    record Begin name attrs;
    cur_depth := !cur_depth + 1
  end

let emit_end name =
  if !on && owned () then begin
    record End name [];
    cur_depth := max 0 (!cur_depth - 1)
  end

let with_span ?attrs name f =
  if not (!on && owned ()) then f ()
  else begin
    emit_begin ?attrs name;
    Fun.protect ~finally:(fun () -> emit_end name) f
  end

let events () =
  let cap = capacity () in
  let n = min !written cap in
  let start = if !written <= cap then 0 else !head in
  List.init n (fun k ->
      let s = !slots.((start + k) mod cap) in
      { name = s.s_name; ts_ns = s.s_ts; phase = s.s_phase; attrs = s.s_attrs })

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

let phase_letter = function Begin -> "B" | End -> "E"

let args_json attrs =
  match attrs with
  | [] -> ""
  | attrs ->
      let fields =
        List.map (fun (k, v) -> Json.string k ^ ": " ^ Json.string v) attrs
      in
      Printf.sprintf ", \"args\": {%s}" (String.concat ", " fields)

let event_json e =
  Printf.sprintf "{\"name\": %s, \"ph\": \"%s\", \"ts\": %.3f, \"pid\": 1, \"tid\": 1%s}"
    (Json.string e.name) (phase_letter e.phase) (Clock.ns_to_us e.ts_ns)
    (args_json e.attrs)

let export_chrome path =
  let evs = events () in
  let oc = open_out path in
  (* The metadata block carries the ring's drop count so a truncated
     profile is never silently trusted: viewers ignore unknown top-level
     fields, tooling can check dropped_events = 0 before drawing
     conclusions. *)
  Printf.fprintf oc
    "{\"displayTimeUnit\": \"ns\", \"metadata\": {\"dropped_events\": %d, \
     \"recorded_events\": %d}, \"traceEvents\": [\n"
    (dropped_events ()) (List.length evs);
  List.iteri
    (fun i e ->
      if i > 0 then output_string oc ",\n";
      output_string oc ("  " ^ event_json e))
    evs;
  output_string oc "\n]}\n";
  close_out oc

let export_jsonl path =
  let evs = events () in
  let oc = open_out path in
  (* Same drop-count metadata as the Chrome exporter, as a leading line:
     consumers that stream the file see the truncation warning before any
     event, and line-oriented tooling can skip it by its "metadata" key. *)
  Printf.fprintf oc
    "{\"metadata\": {\"dropped_events\": %d, \"recorded_events\": %d}}\n"
    (dropped_events ()) (List.length evs);
  List.iter (fun e -> output_string oc (event_json e ^ "\n")) evs;
  close_out oc
