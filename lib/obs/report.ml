(* One run, one self-contained JSON artifact.

   [start] brackets a simulation: it turns metrics and watermarks on
   (remembering the previous switch state), zeroes the watermarks, and
   snapshots the metric registry so the final artifact carries a diff
   scoped to this run — not process-lifetime totals.  [finish] assembles
   the artifact, restores the switches, and zeroes the watermarks again
   so nothing leaks into the next run (the reset-semantics contract the
   tests pin down).

   The report layer knows nothing about circuits or backends: callers
   attach those as named raw-JSON sections ([add_section]), keeping the
   dependency arrow pointing from core to obs. *)

let schema = "qdt-report/1"

type t = {
  mutable sections : (string * string) list;  (* reverse insertion order *)
  before_metrics : Metrics.snapshot;
  g0 : Gc.stat;
  t0 : int;
  prev_metrics : bool;
  prev_watermarks : bool;
  mutable finished : string option;
}

let start () =
  let prev_metrics = Metrics.enabled () in
  let prev_watermarks = Watermark.enabled () in
  Metrics.set_enabled true;
  Watermark.set_enabled true;
  Watermark.reset ();
  {
    sections = [];
    before_metrics = Metrics.snapshot ();
    g0 = Gc.quick_stat ();
    t0 = Clock.now_ns ();
    prev_metrics;
    prev_watermarks;
    finished = None;
  }

(* [json] must be a complete JSON value; it is embedded verbatim. *)
let add_section t ~name ~json = t.sections <- (name, json) :: t.sections

let w_heap = Watermark.watermark "heap.peak_heap_words"

let watermarks_json () =
  let peaks = List.filter (fun (_, v) -> v > 0.0) (Watermark.snapshot ()) in
  let b = Buffer.create 128 in
  Buffer.add_string b "{";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b (Json.string name);
      Buffer.add_string b ": ";
      Buffer.add_string b (Json.float v))
    peaks;
  Buffer.add_string b "}";
  Buffer.contents b

let hotspots_json () =
  match Trace.events () with
  | [] -> None
  | events ->
      let p = Profile.of_events events in
      let rows = Profile.hotspots ~top:5 p in
      let row (r : Profile.row) =
        Printf.sprintf
          "{\"name\": %s, \"count\": %d, \"total_ns\": %d, \"self_ns\": %d}"
          (Json.string r.Profile.name) r.Profile.count r.Profile.total_ns
          r.Profile.self_ns
      in
      Some
        (Printf.sprintf "{\"total_ns\": %d, \"spans\": [%s]}"
           (Profile.total_ns p)
           (String.concat ", " (List.map row rows)))

let trace_tail_json ~limit =
  let events = Trace.events () in
  let n = List.length events in
  let tail =
    if n <= limit then events
    else List.filteri (fun i _ -> i >= n - limit) events
  in
  let event_json (e : Trace.event) =
    Printf.sprintf "{\"name\": %s, \"ts_ns\": %d, \"phase\": %s}"
      (Json.string e.Trace.name) e.Trace.ts_ns
      (Json.string (match e.Trace.phase with Trace.Begin -> "B" | Trace.End -> "E"))
  in
  Printf.sprintf "[%s]" (String.concat ", " (List.map event_json tail))

(* Build the artifact from the bracket's current state.  Pure with
   respect to the bracket: callable repeatedly ([snapshot]) without
   sealing it — only [finalize] records the result and restores the
   switches. *)
let assemble ?error t =
  let elapsed = Clock.elapsed_ns t.t0 in
  let g1 = Gc.quick_stat () in
  Watermark.observe_int w_heap g1.Gc.heap_words;
  let metrics_diff =
    Metrics.diff ~before:t.before_metrics ~after:(Metrics.snapshot ())
  in
  let b = Buffer.create 1024 in
  let field name json =
    Buffer.add_string b ", ";
    Buffer.add_string b (Json.string name);
    Buffer.add_string b ": ";
    Buffer.add_string b json
  in
  Buffer.add_string b (Printf.sprintf "{\"schema\": %s" (Json.string schema));
  field "created_unix_ns" (Json.int (Clock.epoch_ns + t.t0 + elapsed));
  field "wall_s" (Json.float (Clock.ns_to_s elapsed));
  field "heap"
    (Printf.sprintf
       "{\"minor_words\": %s, \"major_words\": %s, \"heap_words\": %d, \
        \"top_heap_words\": %d}"
       (Json.float (g1.Gc.minor_words -. t.g0.Gc.minor_words))
       (Json.float (g1.Gc.major_words -. t.g0.Gc.major_words))
       g1.Gc.heap_words g1.Gc.top_heap_words);
  List.iter (fun (name, json) -> field name json) (List.rev t.sections);
  field "metrics" (Metrics.to_json metrics_diff);
  field "watermarks" (watermarks_json ());
  (match hotspots_json () with
  | Some json -> field "hotspots" json
  | None -> ());
  (match error with
  | Some (msg, backtrace) ->
      field "error"
        (Printf.sprintf "{\"message\": %s, \"backtrace\": %s}"
           (Json.string msg) (Json.string backtrace));
      field "trace_tail" (trace_tail_json ~limit:50)
  | None -> ());
  Buffer.add_string b "}";
  Buffer.contents b

let finalize ?error t =
  match t.finished with
  | Some json -> json
  | None ->
      let json = assemble ?error t in
      t.finished <- Some json;
      Metrics.set_enabled t.prev_metrics;
      Watermark.set_enabled t.prev_watermarks;
      Watermark.reset ();
      json

let snapshot t = match t.finished with Some json -> json | None -> assemble t
let finish t = finalize t
let crash t ~error ~backtrace = finalize ~error:(error, backtrace) t

(* Write-to-temp-then-rename: rename(2) is atomic within a filesystem,
   so a concurrent reader of [path] sees a complete document — the old
   one or the new one, never a torn write. *)
let write_file path json =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (try
     output_string oc json;
     output_char oc '\n';
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

(* ------------------------------------------------------------------ *)
(* Pretty-printing (the [qdt report] subcommand)                       *)
(* ------------------------------------------------------------------ *)

let pp_number v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

(* Raises [Failure] when [json] does not parse. *)
let render json =
  let root =
    match Json.parse json with
    | Ok v -> v
    | Error e -> failwith ("report: not valid JSON: " ^ e)
  in
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  let str m name = Option.bind (Json.member name m) Json.to_string in
  let num m name = Option.bind (Json.member name m) Json.to_number in
  (match str root "schema" with
  | Some s -> line "run report (%s)" s
  | None -> line "run report");
  (match num root "wall_s" with
  | Some w -> line "  wall          %.6f s" w
  | None -> ());
  (match Json.member "heap" root with
  | Some h ->
      let f name = Option.value ~default:0.0 (num h name) in
      line "  heap          minor=%.3fMw major=%.3fMw top=%.3fMw"
        (f "minor_words" /. 1e6) (f "major_words" /. 1e6)
        (f "top_heap_words" /. 1e6)
  | None -> ());
  (match Json.member "circuit" root with
  | Some c ->
      let f name = Option.value ~default:0.0 (num c name) in
      line "  circuit       qubits=%s depth=%s gates=%s two-qubit=%s t-count=%s"
        (pp_number (f "qubits")) (pp_number (f "depth")) (pp_number (f "gates"))
        (pp_number (f "two_qubit")) (pp_number (f "t_count"));
      (match Json.member "dynamic" c with
      | Some (Json.Bool d) -> line "                dynamic=%b" d
      | _ -> ())
  | None -> ());
  (match Json.member "backend" root with
  | Some bk ->
      (match str bk "name" with
      | Some n -> line "  backend       %s" n
      | None -> ());
      (match str bk "reason" with
      | Some r -> line "                %s" r
      | None -> ())
  | None -> ());
  (match Json.member "watermarks" root with
  | Some (Json.Object fields) when fields <> [] ->
      line "  watermarks";
      List.iter
        (fun (name, v) ->
          match v with
          | Json.Number x -> line "    %-34s %s" name (pp_number x)
          | _ -> ())
        fields
  | _ -> ());
  (match Json.member "metrics" root with
  | Some (Json.Object fields) when fields <> [] ->
      line "  metrics (run delta)";
      List.iter
        (fun (name, v) ->
          match v with
          | Json.Number x -> if x <> 0.0 then line "    %-34s %s" name (pp_number x)
          | Json.Object _ as h -> (
              match (Json.member "count" h, Json.member "max" h) with
              | Some (Json.Number c), Some (Json.Number m) when c <> 0.0 ->
                  line "    %-34s count=%s max=%s" name (pp_number c) (pp_number m)
              | _ -> ())
          | _ -> ())
        fields
  | _ -> ());
  (match Json.member "hotspots" root with
  | Some h -> (
      match Json.member "spans" h with
      | Some (Json.Array spans) when spans <> [] ->
          line "  hotspots (self time)";
          List.iter
            (fun s ->
              match (str s "name", num s "self_ns", num s "count") with
              | Some n, Some self, Some count ->
                  line "    %-34s %8.3f ms  x%s" n (self /. 1e6) (pp_number count)
              | _ -> ())
            spans
      | _ -> ())
  | None -> ());
  (match Json.member "error" root with
  | Some e ->
      (match str e "message" with
      | Some m -> line "  ERROR         %s" m
      | None -> ());
      (match str e "backtrace" with
      | Some bt when String.trim bt <> "" ->
          line "  backtrace:";
          String.split_on_char '\n' (String.trim bt)
          |> List.iter (fun l -> line "    %s" l)
      | _ -> ())
  | None -> ());
  Buffer.contents b
