(* Process-global running-max cells — "how high did resource X get this
   run?".  Same shape as Metrics: instruments are created once and held
   in a binding, recording starts with one load of the enabled flag and
   allocates nothing while disabled.

   Domain safety: each watermark is a [float Atomic.t] raised by a
   CAS-max loop, so concurrent observations from worker domains never
   lose a peak.  The compare-and-set on a boxed float is sound here
   because the expected value is the physically-identical box returned
   by the preceding [Atomic.get]. *)

let on = Atomic.make false
let set_enabled b = Atomic.set on b
let enabled () = Atomic.get on

(* Guards the registry table only — observations never take it. *)
let mu = Mutex.create ()

let locked f =
  Mutex.lock mu;
  match f () with
  | v ->
      Mutex.unlock mu;
      v
  | exception e ->
      Mutex.unlock mu;
      raise e

type t = { w_name : string; cell : float Atomic.t }

let registry : (string, t) Hashtbl.t = Hashtbl.create 32

let watermark name =
  locked @@ fun () ->
  match Hashtbl.find_opt registry name with
  | Some w -> w
  | None ->
      let w = { w_name = name; cell = Atomic.make 0.0 } in
      Hashtbl.replace registry name w;
      w

let name w = w.w_name

let rec raise_to cell v =
  let cur = Atomic.get cell in
  if v > cur && not (Atomic.compare_and_set cell cur v) then raise_to cell v

let observe w v = if Atomic.get on then raise_to w.cell v
let observe_int w v = if Atomic.get on then raise_to w.cell (float_of_int v)
let peak w = Atomic.get w.cell

let snapshot () =
  locked (fun () ->
      Hashtbl.fold (fun name w acc -> (name, Atomic.get w.cell) :: acc) registry [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset () =
  locked @@ fun () -> Hashtbl.iter (fun _ w -> Atomic.set w.cell 0.0) registry

(* Peak resident set size.  Linux reports it as "VmHWM: <n> kB" in
   /proc/self/status; elsewhere the file is absent and the watermark
   simply stays at zero (callers treat 0 as "not measured", the same
   convention Report uses to drop empty watermarks). *)
let w_rss = watermark "proc.peak_rss_bytes"

let observe_rss () =
  if Atomic.get on then
    match open_in "/proc/self/status" with
    | exception Sys_error _ -> ()
    | ic ->
        let prefix = "VmHWM:" in
        let rec scan () =
          match input_line ic with
          | exception End_of_file -> ()
          | line ->
              if
                String.length line > String.length prefix
                && String.sub line 0 (String.length prefix) = prefix
              then
                let digits =
                  String.to_seq line
                  |> Seq.filter (fun c -> c >= '0' && c <= '9')
                  |> String.of_seq
                in
                match int_of_string_opt digits with
                | Some kb -> raise_to w_rss.cell (float_of_int kb *. 1024.0)
                | None -> ()
              else scan ()
        in
        scan ();
        close_in ic
