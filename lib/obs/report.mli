(** Run reports: bracket one simulation, emit one self-contained JSON
    artifact.

    {!start} enables metrics and watermarks (remembering the previous
    switch state), zeroes the watermarks, and snapshots the metric
    registry; {!finish} assembles the artifact — wall clock, heap deltas,
    a metrics diff scoped to the run, nonzero watermark peaks, a span-tree
    hotspot summary when the trace ring holds events, plus any caller
    sections — then restores the switches and zeroes the watermarks again
    so nothing leaks into the next run.

    This module knows nothing about circuits or backends; callers attach
    those as named raw-JSON sections (e.g. [Features.to_json]). *)

type t

(** Report schema identifier embedded in every artifact. *)
val schema : string

val start : unit -> t

(** [add_section t ~name ~json] — attach a section under key [name];
    [json] must be one complete JSON value and is embedded verbatim.
    Sections appear in insertion order. *)
val add_section : t -> name:string -> json:string -> unit

(** Assemble the artifact and close the bracket (idempotent — later calls
    return the same JSON). *)
val finish : t -> string

(** [snapshot t] — assemble the artifact-so-far WITHOUT closing the
    bracket: the switches stay on, the watermarks keep accumulating, and
    a later {!snapshot} or {!finish} sees everything recorded since
    {!start}.  This is what a long-running server returns from
    [GET /report] — each scrape is a complete, valid artifact of the
    process lifetime to date.  After {!finish}, returns the sealed
    artifact. *)
val snapshot : t -> string

(** [crash t ~error ~backtrace] — the [--dump-on-error] path: like
    {!finish} but with an ["error"] section and the tail of the trace
    ring, so a failed run still leaves a valid, inspectable artifact. *)
val crash : t -> error:string -> backtrace:string -> string

(** [write_file path json] — atomic write: the document goes to
    [<path>.tmp] first and is renamed into place, so a reader polling
    [path] (a scraper, a dashboard tailing report files) sees either the
    previous complete document or the new complete document — never a
    partial one. *)
val write_file : string -> string -> unit

(** Human-readable rendering of a report artifact (the [qdt report]
    subcommand).  Raises [Failure] when the input is not valid JSON. *)
val render : string -> string
