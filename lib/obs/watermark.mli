(** Resource watermarks: process-global running maxima, reset per run.

    Each backend instruments its natural resource axis (peak live DD
    nodes, peak MPS bond dimension and truncation error, peak TN
    intermediate tensor size/rank, statevector + scratch bytes, ZX
    spiders/edges per simplify round) so a {!Report} can say what a run
    actually peaked at, per representation.

    Same discipline as {!Metrics}: instruments are created once and held
    in a binding; a disabled observation costs one load and one branch
    and allocates nothing.  Observations are domain-safe (CAS-max on an
    atomic cell) and never take a lock. *)

type t

(** {1 Global switch} *)

val set_enabled : bool -> unit
val enabled : unit -> bool

(** {1 Instruments (get-or-create by name)} *)

val watermark : string -> t
val name : t -> string

(** {1 Recording (no-ops while disabled)} *)

(** [observe w v] — raise the watermark to [v] if [v] exceeds the
    current peak. *)
val observe : t -> float -> unit

val observe_int : t -> int -> unit

(** [observe_rss ()] — sample the process's peak resident set size into
    the ["proc.peak_rss_bytes"] watermark (Linux: [VmHWM] from
    [/proc/self/status]; a no-op on platforms without procfs, leaving
    the watermark at zero).  A server calls this on every [/metrics]
    scrape so capacity headroom is visible without an external agent. *)
val observe_rss : unit -> unit

(** {1 Reading} *)

(** Current peak (0.0 after {!reset} or before any observation). *)
val peak : t -> float

(** Current peaks of every registered watermark, sorted by name. *)
val snapshot : unit -> (string * float) list

(** Zero every watermark (registrations survive).  Called by
    [Report.start] so peaks are scoped to one run. *)
val reset : unit -> unit
