(* Robust sample statistics for repeated timing measurements.  Median and
   MAD are used instead of mean/stddev because timing samples are
   heavy-tailed (scheduler preemption, GC pauses): one outlier moves the
   mean arbitrarily but shifts the median by at most one rank. *)

let sorted a =
  let b = Array.copy a in
  Array.sort compare b;
  b

let percentile ~p samples =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Qdt_obs.Stats.percentile: empty sample array";
  if not (Float.is_finite p) || p < 0.0 || p > 100.0 then
    invalid_arg "Qdt_obs.Stats.percentile: p outside [0, 100]";
  let s = sorted samples in
  if n = 1 then s.(0)
  else begin
    (* linear interpolation between closest ranks *)
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (n - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    s.(lo) +. (frac *. (s.(hi) -. s.(lo)))
  end

let median samples = percentile ~p:50.0 samples

let mad samples =
  let m = median samples in
  median (Array.map (fun x -> Float.abs (x -. m)) samples)

type summary = { median : float; mad : float; min : float; max : float; reps : int }

let summary samples =
  if Array.length samples = 0 then invalid_arg "Qdt_obs.Stats.summary: empty sample array";
  {
    median = median samples;
    mad = mad samples;
    min = Array.fold_left Float.min samples.(0) samples;
    max = Array.fold_left Float.max samples.(0) samples;
    reps = Array.length samples;
  }

let summary_to_json s =
  Printf.sprintf "{\"median\": %s, \"mad\": %s, \"min\": %s, \"max\": %s, \"reps\": %d}"
    (Json.float s.median) (Json.float s.mad) (Json.float s.min) (Json.float s.max)
    s.reps

let summary_of_json j =
  let num field =
    match Json.member field j with
    | Some v -> (
        match Json.to_number v with
        | Some f -> Ok f
        | None -> Error (Printf.sprintf "field %S is not a number" field))
    | None -> Error (Printf.sprintf "missing field %S" field)
  in
  match (num "median", num "mad", num "min", num "max", num "reps") with
  | Ok median, Ok mad, Ok min, Ok max, Ok reps ->
      Ok { median; mad; min; max; reps = int_of_float reps }
  | Error e, _, _, _, _
  | _, Error e, _, _, _
  | _, _, Error e, _, _
  | _, _, _, Error e, _
  | _, _, _, _, Error e ->
      Error e
