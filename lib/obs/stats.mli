(** Robust statistics over repeated samples (timings in particular).

    Timing samples are heavy-tailed — scheduler preemption and GC pauses
    inflate individual runs but never deflate them — so the centre and
    spread reported here are the median and the median absolute deviation
    (MAD), which ignore outliers, rather than mean and standard
    deviation, which don't.  The bench harness records a {!summary} per
    timing and the baseline comparison thresholds regressions at
    [median + k·MAD] (see [Baseline]). *)

(** [percentile ~p samples] — the [p]-th percentile ([0 <= p <= 100]) by
    linear interpolation between closest ranks.  Raises [Invalid_argument]
    on an empty array or [p] outside the range. *)
val percentile : p:float -> float array -> float

(** Median ([percentile ~p:50]). *)
val median : float array -> float

(** Median absolute deviation: [median (|x_i - median samples|)]. *)
val mad : float array -> float

type summary = { median : float; mad : float; min : float; max : float; reps : int }

(** Raises [Invalid_argument] on an empty array. *)
val summary : float array -> summary

(** JSON object [{"median": m, "mad": d, "min": lo, "max": hi, "reps": n}]
    — the per-timing record stored in BENCH_<id>.json and baselines. *)
val summary_to_json : summary -> string

(** Parse the object written by {!summary_to_json} (already decoded with
    [Json.parse]). *)
val summary_of_json : Json.t -> (summary, string) result
