(* All state is process-global: the registry maps names to mutable
   instruments, and the hot path touches only the instrument record it was
   handed plus the [on] flag.  Nothing here allocates while disabled.

   Domain safety (the parallel substrate records from worker domains):
   counter and gauge cells are [Atomic.t], so concurrent increments from
   any number of domains never lose updates and cost one atomic op when
   enabled (one load + branch when disabled, preserving the e17 bound).
   Histograms mutate several fields per observation, so [observe] — and
   every registry mutation / whole-registry read — serialises on one
   process-wide mutex instead; histogram call sites (GC pauses, SVD bond
   dims) are orders of magnitude colder than counter increments. *)

let on = Atomic.make false
let set_enabled b = Atomic.set on b
let enabled () = Atomic.get on

(* Guards the registry table and every histogram's mutable fields. *)
let mu = Mutex.create ()

let locked f =
  Mutex.lock mu;
  match f () with
  | v ->
      Mutex.unlock mu;
      v
  | exception e ->
      Mutex.unlock mu;
      raise e

(* 48 buckets cover durations up to 2^46 ns (~20 h) before overflowing —
   ample for anything a single run observes. *)
let num_buckets = 48

(* ------------------------------------------------------------------ *)
(* Labels                                                              *)
(* ------------------------------------------------------------------ *)

(* A labeled instrument is an ordinary instrument registered under a
   canonical encoded key [name{k="v",k2="v2"}] (labels sorted by key,
   values escaped) — so snapshots, diffs, flatten and to_json treat the
   whole series as one named cell and need no label awareness.  The
   [series_index] keeps the structured (base, labels) pair per encoded
   key for the Prometheus renderer.

   Cardinality is the caller's contract (DESIGN.md, "label cardinality
   rules"): label values must come from small closed sets (backend names,
   domain slots, operations) — never per-shot or per-gate values.  A hard
   cap per family backstops mistakes. *)

let valid_label_key k =
  k <> ""
  && (match k.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       k

(* Prometheus label-value escaping; also what the encoded key embeds. *)
let escape_label_value v =
  let b = Buffer.create (String.length v + 4) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let label_pairs labels =
  String.concat ","
    (List.map (fun (k, v) -> k ^ "=\"" ^ escape_label_value v ^ "\"") labels)

(* Validate, sort and dup-check a label set.  Raises Invalid_argument on
   malformed or duplicate label keys. *)
let canonical_labels base labels =
  List.iter
    (fun (k, _) ->
      if not (valid_label_key k) then
        invalid_arg
          (Printf.sprintf "Qdt_obs.Metrics: invalid label name %S on %S" k base))
    labels;
  let sorted = List.sort (fun (a, _) (b, _) -> String.compare a b) labels in
  let rec dup = function
    | (a, _) :: ((b, _) :: _ as rest) -> if a = b then Some a else dup rest
    | _ -> None
  in
  (match dup sorted with
  | Some k ->
      invalid_arg
        (Printf.sprintf "Qdt_obs.Metrics: duplicate label %S on %S" k base)
  | None -> ());
  sorted

(* [encode_series base labels] — the canonical registry/snapshot key of a
   labeled series. *)
let encode_series base labels =
  match canonical_labels base labels with
  | [] -> base
  | sorted -> base ^ "{" ^ label_pairs sorted ^ "}"

(* encoded key -> (base name, sorted labels); guarded by [mu]. *)
let series_index : (string, string * (string * string) list) Hashtbl.t =
  Hashtbl.create 64

(* base name -> number of registered series; guarded by [mu]. *)
let family_size : (string, int) Hashtbl.t = Hashtbl.create 64
let max_series_per_family = 1000

type counter = { c_name : string; count : int Atomic.t }
type gauge = { g_name : string; level : float Atomic.t }

type histogram = {
  h_name : string;
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_max : int;
  buckets : int array;
}

type instrument = C of counter | G of gauge | H of histogram

let registry : (string, instrument) Hashtbl.t = Hashtbl.create 64

(* Called under [mu] when [key] is fresh: enforce the per-family series
   cap and record the structured labels for the Prometheus renderer. *)
let admit_series ~base ~labels key =
  (match Hashtbl.find_opt family_size base with
  | Some n when n >= max_series_per_family ->
      invalid_arg
        (Printf.sprintf
           "Qdt_obs.Metrics: label cardinality cap (%d series) exceeded for %S"
           max_series_per_family base)
  | Some n -> Hashtbl.replace family_size base (n + 1)
  | None -> Hashtbl.add family_size base 1);
  if labels <> [] then Hashtbl.replace series_index key (base, labels)

let get_or_register ~base ~labels make classify describe =
  let labels = canonical_labels base labels in
  let key =
    match labels with [] -> base | _ -> base ^ "{" ^ label_pairs labels ^ "}"
  in
  locked @@ fun () ->
  match Hashtbl.find_opt registry key with
  | Some i -> (
      match classify i with
      | Some v -> v
      | None ->
          invalid_arg
            (Printf.sprintf "Qdt_obs.Metrics: %S already registered as a %s" key
               (describe i)))
  | None ->
      admit_series ~base ~labels key;
      make key

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let counter_with ~labels name =
  get_or_register ~base:name ~labels
    (fun key ->
      let c = { c_name = key; count = Atomic.make 0 } in
      Hashtbl.replace registry key (C c);
      c)
    (function C c -> Some c | _ -> None)
    kind_name

let gauge_with ~labels name =
  get_or_register ~base:name ~labels
    (fun key ->
      let g = { g_name = key; level = Atomic.make 0.0 } in
      Hashtbl.replace registry key (G g);
      g)
    (function G g -> Some g | _ -> None)
    kind_name

let histogram_with ~labels name =
  get_or_register ~base:name ~labels
    (fun key ->
      let h =
        { h_name = key; h_count = 0; h_sum = 0; h_max = 0;
          buckets = Array.make num_buckets 0 }
      in
      Hashtbl.replace registry key (H h);
      h)
    (function H h -> Some h | _ -> None)
    kind_name

let counter name = counter_with ~labels:[] name
let gauge name = gauge_with ~labels:[] name
let histogram name = histogram_with ~labels:[] name

(* ------------------------------------------------------------------ *)
(* Recording                                                           *)
(* ------------------------------------------------------------------ *)

let incr c = if Atomic.get on then Atomic.incr c.count
let add c n = if Atomic.get on then ignore (Atomic.fetch_and_add c.count n)
let set g v = if Atomic.get on then Atomic.set g.level v

(* Bucket index = number of significant bits of v (so bucket i holds
   [2^(i-1), 2^i)), clamped into the overflow bucket. *)
let bucket_of v =
  if v <= 0 then 0
  else begin
    let bits = ref 0 and x = ref v in
    while !x > 0 do
      bits := !bits + 1;
      x := !x lsr 1
    done;
    min !bits (num_buckets - 1)
  end

let remove name =
  locked @@ fun () ->
  if Hashtbl.mem registry name then begin
    Hashtbl.remove registry name;
    let base =
      match Hashtbl.find_opt series_index name with
      | Some (b, _) -> b
      | None -> name
    in
    Hashtbl.remove series_index name;
    match Hashtbl.find_opt family_size base with
    | Some n when n > 1 -> Hashtbl.replace family_size base (n - 1)
    | Some _ -> Hashtbl.remove family_size base
    | None -> ()
  end

let observe h v =
  if Atomic.get on then
    locked @@ fun () ->
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum + v;
    if v > h.h_max then h.h_max <- v;
    let b = bucket_of v in
    h.buckets.(b) <- h.buckets.(b) + 1

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of { count : int; sum : int; max_value : int; buckets : int array }

type snapshot = (string * value) list

let snapshot () =
  locked (fun () ->
      Hashtbl.fold
        (fun name i acc ->
          let v =
            match i with
            | C c -> Counter_v (Atomic.get c.count)
            | G g -> Gauge_v (Atomic.get g.level)
            | H h ->
                Histogram_v
                  { count = h.h_count; sum = h.h_sum; max_value = h.h_max;
                    buckets = Array.copy h.buckets }
          in
          (name, v) :: acc)
        registry [])
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let diff ~before ~after =
  List.filter_map
    (fun (name, v_after) ->
      match (List.assoc_opt name before, v_after) with
      | None, v -> Some (name, v)
      | Some (Counter_v b), Counter_v a -> Some (name, Counter_v (a - b))
      | Some (Gauge_v _), (Gauge_v _ as v) -> Some (name, v)
      | Some (Histogram_v b), Histogram_v a ->
          Some
            ( name,
              Histogram_v
                {
                  count = a.count - b.count;
                  sum = a.sum - b.sum;
                  max_value = a.max_value;
                  buckets = Array.mapi (fun k n -> n - b.buckets.(k)) a.buckets;
                } )
      | Some _, v ->
          (* A name that changed kind between snapshots: report as-is. *)
          Some (name, v))
    after

let reset () =
  locked @@ fun () ->
  Hashtbl.iter
    (fun _ i ->
      match i with
      | C c -> Atomic.set c.count 0
      | G g -> Atomic.set g.level 0.0
      | H h ->
          h.h_count <- 0;
          h.h_sum <- 0;
          h.h_max <- 0;
          Array.fill h.buckets 0 num_buckets 0)
    registry

(* Percentile estimation from the log2 buckets: nearest rank, then
   linear interpolation between the selected bucket's edges.  Bucket
   [i >= 1] holds integer observations in [2^(i-1), 2^i - 1]; its upper
   edge is clamped to the tracked maximum (for the overflow bucket the
   maximum IS the upper edge), so the estimate stays inside the observed
   range.  Worst-case error is the bucket width — a factor of 2 — which
   is the price of never keeping raw samples. *)
let estimate_percentile v p =
  match v with
  | Counter_v _ | Gauge_v _ ->
      invalid_arg "Qdt_obs.Metrics.estimate_percentile: not a histogram"
  | Histogram_v { count; max_value; buckets; _ } ->
      if Float.is_nan p || p < 0.0 || p > 100.0 then
        invalid_arg "Qdt_obs.Metrics.estimate_percentile: p outside [0, 100]";
      if count <= 0 then
        invalid_arg "Qdt_obs.Metrics.estimate_percentile: empty histogram";
      let rank = max 1 (int_of_float (ceil (p /. 100.0 *. float_of_int count))) in
      let nb = Array.length buckets in
      let rec find i cum =
        if i >= nb then max_value
        else if buckets.(i) > 0 && cum + buckets.(i) >= rank then begin
          if i = 0 then 0
          else begin
            let lo = 1 lsl (i - 1) in
            let hi =
              if i = nb - 1 then max max_value lo
              else min ((1 lsl i) - 1) max_value
            in
            let frac = float_of_int (rank - cum) /. float_of_int buckets.(i) in
            lo + int_of_float (Float.round (frac *. float_of_int (hi - lo)))
          end
        end
        else find (i + 1) (cum + buckets.(i))
      in
      find 0 0

(* [snapshot] already sorts, but [flatten]/[to_json] also accept
   hand-assembled or [diff]-produced lists — sort here too so every
   rendering (BENCH_*.json, baselines) is deterministic by construction. *)
let by_name s = List.sort (fun (a, _) (b, _) -> String.compare a b) s

let flatten s =
  let s = by_name s in
  List.concat_map
    (fun (name, v) ->
      match v with
      | Counter_v n -> [ (name, float_of_int n) ]
      | Gauge_v g -> [ (name, g) ]
      | Histogram_v h ->
          [
            (name ^ ".count", float_of_int h.count);
            (name ^ ".sum", float_of_int h.sum);
            (name ^ ".max", float_of_int h.max_value);
          ])
    s

let to_json s =
  let s = by_name s in
  let b = Buffer.create 512 in
  Buffer.add_string b "{";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b (Json.string name);
      Buffer.add_string b ": ";
      match v with
      | Counter_v n -> Buffer.add_string b (Json.int n)
      | Gauge_v g -> Buffer.add_string b (Json.float g)
      | Histogram_v h ->
          Buffer.add_string b
            (Printf.sprintf "{\"count\": %d, \"sum\": %d, \"max\": %d, \"buckets\": [%s]}"
               h.count h.sum h.max_value
               (String.concat ", " (Array.to_list (Array.map string_of_int h.buckets)))))
    s;
  Buffer.add_string b "}";
  Buffer.contents b

let render s =
  let b = Buffer.create 512 in
  List.iter
    (fun (name, v) ->
      match v with
      | Counter_v n -> Buffer.add_string b (Printf.sprintf "  %-36s %d\n" name n)
      | Gauge_v g -> Buffer.add_string b (Printf.sprintf "  %-36s %g\n" name g)
      | Histogram_v h ->
          let mean = if h.count = 0 then 0.0 else float_of_int h.sum /. float_of_int h.count in
          Buffer.add_string b
            (Printf.sprintf "  %-36s count=%d mean=%.1f max=%d\n" name h.count mean
               h.max_value))
    s;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition                                          *)
(* ------------------------------------------------------------------ *)

(* Metric names here use '.' and '-' which the exposition grammar
   forbids (names must match "[a-zA-Z_:][a-zA-Z0-9_:]" repeated) — map
   everything else to '_'. *)
let sanitize_metric_name s =
  let mapped =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
        | _ -> '_')
      s
  in
  if mapped = "" then "_"
  else match mapped.[0] with '0' .. '9' -> "_" ^ mapped | _ -> mapped

(* Decompose a snapshot key into (base name, rendered label pairs).
   Registered series resolve through [series_index]; for hand-assembled
   keys fall back to splitting at the first '{' — the encoded form is
   already valid exposition syntax, so re-emitting it verbatim is safe. *)
let split_series key =
  match locked (fun () -> Hashtbl.find_opt series_index key) with
  | Some (base, labels) -> (base, label_pairs labels)
  | None -> (
      let n = String.length key in
      match String.index_opt key '{' with
      | Some i when n > i + 1 && key.[n - 1] = '}' ->
          (String.sub key 0 i, String.sub key (i + 1) (n - i - 2))
      | _ -> (key, ""))

let prom_float v =
  if Float.is_nan v then "NaN"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let render_prometheus s =
  let s = by_name s in
  let b = Buffer.create 1024 in
  (* Group series into families so each family's samples are contiguous
     with a single TYPE line (the grammar requires grouping even though
     the sorted snapshot mostly provides it already). *)
  let order = ref [] in
  let families : (string, (string * value) list ref) Hashtbl.t =
    Hashtbl.create 32
  in
  List.iter
    (fun (key, v) ->
      let base, lbl = split_series key in
      match Hashtbl.find_opt families base with
      | Some r -> r := (lbl, v) :: !r
      | None ->
          Hashtbl.add families base (ref [ (lbl, v) ]);
          order := base :: !order)
    s;
  let line metric lbl value =
    if lbl = "" then Buffer.add_string b (Printf.sprintf "%s %s\n" metric value)
    else Buffer.add_string b (Printf.sprintf "%s{%s} %s\n" metric lbl value)
  in
  List.iter
    (fun base ->
      let entries = List.rev !(Hashtbl.find families base) in
      let name = sanitize_metric_name base in
      let kind =
        match entries with
        | (_, Counter_v _) :: _ -> "counter"
        | (_, Gauge_v _) :: _ -> "gauge"
        | (_, Histogram_v _) :: _ -> "histogram"
        | [] -> "untyped"
      in
      Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name kind);
      List.iter
        (fun (lbl, v) ->
          match v with
          | Counter_v n -> line name lbl (string_of_int n)
          | Gauge_v g -> line name lbl (prom_float g)
          | Histogram_v h ->
              (* Bucket i holds values in [2^(i-1), 2^i), i.e. integer
                 observations <= 2^i - 1 — so le = 2^i - 1 (le = 0 for
                 bucket 0).  The overflow bucket folds into +Inf. *)
              let last = ref 0 in
              Array.iteri (fun i n -> if n > 0 then last := i) h.buckets;
              let last = min !last (num_buckets - 2) in
              let cum = ref 0 in
              for i = 0 to last do
                cum := !cum + h.buckets.(i);
                let le = if i = 0 then "0" else string_of_int ((1 lsl i) - 1) in
                let ll =
                  if lbl = "" then Printf.sprintf "le=\"%s\"" le
                  else Printf.sprintf "%s,le=\"%s\"" lbl le
                in
                Buffer.add_string b
                  (Printf.sprintf "%s_bucket{%s} %d\n" name ll !cum)
              done;
              let ll = if lbl = "" then "le=\"+Inf\"" else lbl ^ ",le=\"+Inf\"" in
              Buffer.add_string b
                (Printf.sprintf "%s_bucket{%s} %d\n" name ll h.count);
              line (name ^ "_sum") lbl (string_of_int h.sum);
              line (name ^ "_count") lbl (string_of_int h.count))
        entries)
    (List.rev !order);
  Buffer.contents b
