(* All state is process-global: the registry maps names to mutable
   instruments, and the hot path touches only the instrument record it was
   handed plus the [on] flag.  Nothing here allocates while disabled.

   Domain safety (the parallel substrate records from worker domains):
   counter and gauge cells are [Atomic.t], so concurrent increments from
   any number of domains never lose updates and cost one atomic op when
   enabled (one load + branch when disabled, preserving the e17 bound).
   Histograms mutate several fields per observation, so [observe] — and
   every registry mutation / whole-registry read — serialises on one
   process-wide mutex instead; histogram call sites (GC pauses, SVD bond
   dims) are orders of magnitude colder than counter increments. *)

let on = Atomic.make false
let set_enabled b = Atomic.set on b
let enabled () = Atomic.get on

(* Guards the registry table and every histogram's mutable fields. *)
let mu = Mutex.create ()

let locked f =
  Mutex.lock mu;
  match f () with
  | v ->
      Mutex.unlock mu;
      v
  | exception e ->
      Mutex.unlock mu;
      raise e

(* 48 buckets cover durations up to 2^46 ns (~20 h) before overflowing —
   ample for anything a single run observes. *)
let num_buckets = 48

type counter = { c_name : string; count : int Atomic.t }
type gauge = { g_name : string; level : float Atomic.t }

type histogram = {
  h_name : string;
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_max : int;
  buckets : int array;
}

type instrument = C of counter | G of gauge | H of histogram

let registry : (string, instrument) Hashtbl.t = Hashtbl.create 64

let get_or_register name make classify describe =
  locked @@ fun () ->
  match Hashtbl.find_opt registry name with
  | Some i -> (
      match classify i with
      | Some v -> v
      | None ->
          invalid_arg
            (Printf.sprintf "Qdt_obs.Metrics: %S already registered as a %s" name
               (describe i)))
  | None ->
      let v = make () in
      v

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let counter name =
  get_or_register name
    (fun () ->
      let c = { c_name = name; count = Atomic.make 0 } in
      Hashtbl.replace registry name (C c);
      c)
    (function C c -> Some c | _ -> None)
    kind_name

let gauge name =
  get_or_register name
    (fun () ->
      let g = { g_name = name; level = Atomic.make 0.0 } in
      Hashtbl.replace registry name (G g);
      g)
    (function G g -> Some g | _ -> None)
    kind_name

let histogram name =
  get_or_register name
    (fun () ->
      let h =
        { h_name = name; h_count = 0; h_sum = 0; h_max = 0;
          buckets = Array.make num_buckets 0 }
      in
      Hashtbl.replace registry name (H h);
      h)
    (function H h -> Some h | _ -> None)
    kind_name

(* ------------------------------------------------------------------ *)
(* Recording                                                           *)
(* ------------------------------------------------------------------ *)

let incr c = if Atomic.get on then Atomic.incr c.count
let add c n = if Atomic.get on then ignore (Atomic.fetch_and_add c.count n)
let set g v = if Atomic.get on then Atomic.set g.level v

(* Bucket index = number of significant bits of v (so bucket i holds
   [2^(i-1), 2^i)), clamped into the overflow bucket. *)
let bucket_of v =
  if v <= 0 then 0
  else begin
    let bits = ref 0 and x = ref v in
    while !x > 0 do
      bits := !bits + 1;
      x := !x lsr 1
    done;
    min !bits (num_buckets - 1)
  end

let remove name = locked (fun () -> Hashtbl.remove registry name)

let observe h v =
  if Atomic.get on then
    locked @@ fun () ->
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum + v;
    if v > h.h_max then h.h_max <- v;
    let b = bucket_of v in
    h.buckets.(b) <- h.buckets.(b) + 1

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of { count : int; sum : int; max_value : int; buckets : int array }

type snapshot = (string * value) list

let snapshot () =
  locked (fun () ->
      Hashtbl.fold
        (fun name i acc ->
          let v =
            match i with
            | C c -> Counter_v (Atomic.get c.count)
            | G g -> Gauge_v (Atomic.get g.level)
            | H h ->
                Histogram_v
                  { count = h.h_count; sum = h.h_sum; max_value = h.h_max;
                    buckets = Array.copy h.buckets }
          in
          (name, v) :: acc)
        registry [])
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let diff ~before ~after =
  List.filter_map
    (fun (name, v_after) ->
      match (List.assoc_opt name before, v_after) with
      | None, v -> Some (name, v)
      | Some (Counter_v b), Counter_v a -> Some (name, Counter_v (a - b))
      | Some (Gauge_v _), (Gauge_v _ as v) -> Some (name, v)
      | Some (Histogram_v b), Histogram_v a ->
          Some
            ( name,
              Histogram_v
                {
                  count = a.count - b.count;
                  sum = a.sum - b.sum;
                  max_value = a.max_value;
                  buckets = Array.mapi (fun k n -> n - b.buckets.(k)) a.buckets;
                } )
      | Some _, v ->
          (* A name that changed kind between snapshots: report as-is. *)
          Some (name, v))
    after

let reset () =
  locked @@ fun () ->
  Hashtbl.iter
    (fun _ i ->
      match i with
      | C c -> Atomic.set c.count 0
      | G g -> Atomic.set g.level 0.0
      | H h ->
          h.h_count <- 0;
          h.h_sum <- 0;
          h.h_max <- 0;
          Array.fill h.buckets 0 num_buckets 0)
    registry

(* [snapshot] already sorts, but [flatten]/[to_json] also accept
   hand-assembled or [diff]-produced lists — sort here too so every
   rendering (BENCH_*.json, baselines) is deterministic by construction. *)
let by_name s = List.sort (fun (a, _) (b, _) -> String.compare a b) s

let flatten s =
  let s = by_name s in
  List.concat_map
    (fun (name, v) ->
      match v with
      | Counter_v n -> [ (name, float_of_int n) ]
      | Gauge_v g -> [ (name, g) ]
      | Histogram_v h ->
          [
            (name ^ ".count", float_of_int h.count);
            (name ^ ".sum", float_of_int h.sum);
            (name ^ ".max", float_of_int h.max_value);
          ])
    s

let to_json s =
  let s = by_name s in
  let b = Buffer.create 512 in
  Buffer.add_string b "{";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b (Json.string name);
      Buffer.add_string b ": ";
      match v with
      | Counter_v n -> Buffer.add_string b (Json.int n)
      | Gauge_v g -> Buffer.add_string b (Json.float g)
      | Histogram_v h ->
          Buffer.add_string b
            (Printf.sprintf "{\"count\": %d, \"sum\": %d, \"max\": %d, \"buckets\": [%s]}"
               h.count h.sum h.max_value
               (String.concat ", " (Array.to_list (Array.map string_of_int h.buckets)))))
    s;
  Buffer.add_string b "}";
  Buffer.contents b

let render s =
  let b = Buffer.create 512 in
  List.iter
    (fun (name, v) ->
      match v with
      | Counter_v n -> Buffer.add_string b (Printf.sprintf "  %-36s %d\n" name n)
      | Gauge_v g -> Buffer.add_string b (Printf.sprintf "  %-36s %g\n" name g)
      | Histogram_v h ->
          let mean = if h.count = 0 then 0.0 else float_of_int h.sum /. float_of_int h.count in
          Buffer.add_string b
            (Printf.sprintf "  %-36s count=%d mean=%.1f max=%d\n" name h.count mean
               h.max_value))
    s;
  Buffer.contents b
