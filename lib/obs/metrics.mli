(** Process-global metrics registry: named counters, gauges, and
    log₂-bucketed histograms.

    Design constraints (see DESIGN.md, "Observability"):
    - instruments are created once (usually at module initialisation) and
      held in a binding, so the hot path never performs a name lookup;
    - every recording operation starts with a single check of the global
      enabled flag and allocates nothing — when metrics are disabled the
      cost is one load and one branch.

    Instruments are identified by name: [counter "x"] called twice returns
    the same instrument.  Values survive {!set_enabled}; {!reset} zeroes
    every instrument but keeps registrations. *)

type counter
type gauge
type histogram

(** {1 Global switch} *)

val set_enabled : bool -> unit
val enabled : unit -> bool

(** {1 Instruments (get-or-create by name)} *)

val counter : string -> counter
val gauge : string -> gauge
val histogram : string -> histogram

(** {1 Labeled instruments}

    A labeled instrument is an ordinary instrument registered under the
    canonical series key [name{k="v",...}] (labels sorted by key, values
    escaped) — {!snapshot}, {!diff}, {!flatten} and {!to_json} treat it
    as one named cell.  Recording costs are identical to the unlabeled
    forms (the label join happens once, at registration).

    Label names must match [[a-zA-Z_][a-zA-Z0-9_]*]; label values may be
    any string.  Values must come from small closed sets (backend names,
    domain slots, operations) — never per-shot or per-gate data; a hard
    cap of 1000 series per base name backstops cardinality mistakes.
    Raises [Invalid_argument] on malformed/duplicate label names or when
    the cap is hit. *)

val counter_with : labels:(string * string) list -> string -> counter
val gauge_with : labels:(string * string) list -> string -> gauge
val histogram_with : labels:(string * string) list -> string -> histogram

(** [encode_series name labels] — the canonical snapshot key the labeled
    instrument is registered under (labels sorted and escaped).  Useful
    for looking a series up in a snapshot or report. *)
val encode_series : string -> (string * string) list -> string

(** [remove name] — unregister the instrument, so it no longer appears in
    snapshots (and hence in BENCH_*.json / stats embeddings).  Holders of
    the old handle keep recording into a detached record, harmlessly; a
    later [counter name] etc. registers a fresh instrument.  Meant for
    probe instruments a measurement creates and must not ship in its
    results. *)
val remove : string -> unit

(** {1 Recording (no-ops while disabled)} *)

val incr : counter -> unit
val add : counter -> int -> unit
val set : gauge -> float -> unit
val observe : histogram -> int -> unit

(** {1 Histogram geometry}

    Bucket [0] counts observations [v <= 0]; bucket [i >= 1] counts
    [2{^i-1} <= v < 2{^i}]; the last bucket ({!num_buckets}[- 1]) is the
    overflow bucket and also absorbs everything at or above
    [2{^num_buckets - 2}]. *)

val num_buckets : int

(** [bucket_of v] — the bucket index [observe] files [v] under. *)
val bucket_of : int -> int

(** {1 Snapshots} *)

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of { count : int; sum : int; max_value : int; buckets : int array }

type snapshot = (string * value) list

(** Current values of every registered instrument, sorted by name. *)
val snapshot : unit -> snapshot

(** [diff ~before ~after] — per-instrument change: counters and histograms
    subtract, gauges keep the [after] reading.  Instruments absent from
    [before] are reported as-is. *)
val diff : before:snapshot -> after:snapshot -> snapshot

(** Zero every instrument (registrations survive). *)
val reset : unit -> unit

(** [estimate_percentile v p] — approximate [p]-th percentile
    ([0 <= p <= 100]) of a [Histogram_v] snapshot value, by nearest rank
    with linear interpolation inside the selected log₂ bucket.  The
    bucket's upper edge is clamped to the tracked maximum, so the
    estimate never exceeds an observed value; precision is bounded by
    the bucket width (a factor of 2), which is what lets a server report
    p50/p99 latencies straight from the registry without keeping raw
    samples.  Raises [Invalid_argument] on a non-histogram value, an
    empty histogram, or [p] outside the range. *)
val estimate_percentile : value -> float -> int

(** [flatten s] — scalar view for embedding into records: a counter or
    gauge becomes one entry; a histogram becomes [name.count], [name.sum]
    and [name.max].  Output is sorted by name regardless of the input
    order, so embedded renderings diff stably across runs. *)
val flatten : snapshot -> (string * float) list

(** JSON object [{ "name": value, ... }]; histograms carry their buckets.
    Keys are sorted by name regardless of the input order. *)
val to_json : snapshot -> string

(** Human-readable multi-line rendering (one instrument per line). *)
val render : snapshot -> string

(** [render_prometheus s] — Prometheus text exposition (version 0.0.4) of
    a snapshot: one [# TYPE] line per metric family, series grouped by
    family, names sanitised to the grammar ([.] and [-] map to [_]).
    Histograms render as cumulative [_bucket{le="2^i - 1"}] samples plus
    [_sum] and [_count] taken directly from the tracked sum/count. *)
val render_prometheus : snapshot -> string
