(** The process-wide clock every reported duration shares.

    All timing in the repository — [Backend.timed], trace spans, the bench
    harness — goes through [now_ns] so durations from different layers are
    directly comparable.  The clock is monotonised: successive reads never
    go backwards even if the underlying wall clock is stepped. *)

(** Nanoseconds since {!epoch_ns} (process start), as an immediate [int]
    (63 bits hold ~146 years of nanoseconds — no boxing on the fast path). *)
val now_ns : unit -> int

(** The wall-clock origin of the [now_ns] timeline, in nanoseconds since
    the Unix epoch, captured once at module initialisation. *)
val epoch_ns : int

(** [elapsed_ns t0] — nanoseconds since the earlier reading [t0]. *)
val elapsed_ns : int -> int

(** Unit conversions for reporting. *)
val ns_to_s : int -> float

val ns_to_us : int -> float
