(* Baseline store and comparison for bench timings.

   A baseline file (bench/baselines/<id>.json, committed) records the
   per-timing {median, mad, min, max, reps} summaries of a blessed run.
   [compare] diffs a current run against it with a MAD-scaled threshold:

     regression  <=>  current.min > max(base.median * min_ratio,
                                        base.median + mad_k * base.mad)

   Two deliberate asymmetries make the gate robust on shared/noisy
   machines (measured here: back-to-back medians of a microsecond-scale
   timing vary by up to ~1.8x under load):

   - the *current* statistic is the min, not the median: a genuine
     regression is in the code and slows every repetition, while
     scheduler/load noise rarely inflates all reps at once — so gating on
     the best rep rejects noise without missing real slowdowns;
   - the threshold scales with the baseline's own measured noise
     (mad_k * mad) but never drops below a min_ratio multiple of the
     median, so near-deterministic timings (mad ~ 0) don't flag on
     jitter.

   Defaults (mad_k = 5, min_ratio = 2.0) pass same-machine reruns under
   load and still catch anything >= 2x slower — the CI gate's target is
   order-of-magnitude regressions (a lost fast path, an accidental
   O(n^2)), not percent-level drift. *)

type entry = { label : string; timing : Stats.summary }
type t = { experiment : string; smoke : bool; timings : entry list }

let default_mad_k = 5.0
let default_min_ratio = 2.0

let to_json t =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "  \"experiment\": %s,\n" (Json.string t.experiment));
  Buffer.add_string b (Printf.sprintf "  \"smoke\": %b,\n" t.smoke);
  Buffer.add_string b "  \"timings_ns\": {\n";
  let sorted =
    List.sort (fun a b -> String.compare a.label b.label) t.timings
  in
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b
        (Printf.sprintf "    %s: %s" (Json.string e.label)
           (Stats.summary_to_json e.timing)))
    sorted;
  Buffer.add_string b "\n  }\n}\n";
  Buffer.contents b

let write ~path t =
  let oc = open_out path in
  output_string oc (to_json t);
  close_out oc

let of_json j =
  let ( let* ) r f = Result.bind r f in
  let* experiment =
    match Option.bind (Json.member "experiment" j) Json.to_string with
    | Some s -> Ok s
    | None -> Error "missing or non-string \"experiment\""
  in
  let* smoke =
    match Option.bind (Json.member "smoke" j) Json.to_bool with
    | Some b -> Ok b
    | None -> Error "missing or non-boolean \"smoke\""
  in
  let* fields =
    match Json.member "timings_ns" j with
    | Some (Json.Object fields) -> Ok fields
    | _ -> Error "missing or non-object \"timings_ns\""
  in
  let* timings =
    List.fold_left
      (fun acc (label, v) ->
        let* acc = acc in
        match Stats.summary_of_json v with
        | Ok timing -> Ok ({ label; timing } :: acc)
        | Error e -> Error (Printf.sprintf "timing %S: %s" label e))
      (Ok []) fields
  in
  Ok { experiment; smoke; timings = List.rev timings }

let read ~path =
  match
    let ic = open_in path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    s
  with
  | exception Sys_error msg -> Error msg
  | src -> (
      match Json.parse src with
      | Error e -> Error (Printf.sprintf "%s: %s" path e)
      | Ok j -> (
          match of_json j with
          | Ok t -> Ok t
          | Error e -> Error (Printf.sprintf "%s: %s" path e)))

(* ------------------------------------------------------------------ *)
(* Comparison                                                          *)
(* ------------------------------------------------------------------ *)

type verdict = {
  v_label : string;
  baseline : Stats.summary;
  current : Stats.summary;
  threshold_ns : float;
  ratio : float;
  regressed : bool;
}

type comparison = {
  verdicts : verdict list;
  only_in_baseline : string list;
  only_in_current : string list;
  any_regressed : bool;
}

let threshold ?(mad_k = default_mad_k) ?(min_ratio = default_min_ratio)
    (b : Stats.summary) =
  Float.max (b.Stats.median *. min_ratio) (b.Stats.median +. (mad_k *. b.Stats.mad))

let compare ?mad_k ?min_ratio ~baseline ~current () =
  let verdicts =
    List.filter_map
      (fun (e : entry) ->
        match
          List.find_opt (fun (b : entry) -> b.label = e.label) baseline.timings
        with
        | None -> None
        | Some b ->
            let limit = threshold ?mad_k ?min_ratio b.timing in
            let ratio =
              if b.timing.Stats.median <= 0.0 then Float.infinity
              else e.timing.Stats.median /. b.timing.Stats.median
            in
            Some
              {
                v_label = e.label;
                baseline = b.timing;
                current = e.timing;
                threshold_ns = limit;
                ratio;
                (* Gate on the best rep: see the threshold note above. *)
                regressed = e.timing.Stats.min > limit;
              })
      current.timings
  in
  let labels entries = List.map (fun (e : entry) -> e.label) entries in
  let diff a b = List.filter (fun l -> not (List.mem l b)) a in
  {
    verdicts;
    only_in_baseline = diff (labels baseline.timings) (labels current.timings);
    only_in_current = diff (labels current.timings) (labels baseline.timings);
    any_regressed = List.exists (fun v -> v.regressed) verdicts;
  }

let pretty_ns ns =
  if ns > 1e9 then Printf.sprintf "%.3f s" (ns /. 1e9)
  else if ns > 1e6 then Printf.sprintf "%.3f ms" (ns /. 1e6)
  else if ns > 1e3 then Printf.sprintf "%.3f us" (ns /. 1e3)
  else Printf.sprintf "%.1f ns" ns

let render c =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "  %-44s %12s %12s %12s %7s %12s  %s\n" "timing" "baseline"
       "current" "best" "ratio" "threshold" "status");
  List.iter
    (fun v ->
      Buffer.add_string b
        (Printf.sprintf "  %-44s %12s %12s %12s %6.2fx %12s  %s\n" v.v_label
           (pretty_ns v.baseline.Stats.median)
           (pretty_ns v.current.Stats.median)
           (pretty_ns v.current.Stats.min)
           v.ratio
           (pretty_ns v.threshold_ns)
           (if v.regressed then "REGRESSED" else "ok")))
    c.verdicts;
  List.iter
    (fun l -> Buffer.add_string b (Printf.sprintf "  %-44s (missing from current run)\n" l))
    c.only_in_baseline;
  List.iter
    (fun l ->
      Buffer.add_string b
        (Printf.sprintf "  %-44s (new timing, no baseline — not gated)\n" l))
    c.only_in_current;
  Buffer.contents b
