(** Parser/validator for the Prometheus text exposition format
    (version 0.0.4) — the inverse of {!Metrics.render_prometheus}, so a
    scrape of [qdt serve]'s [GET /metrics] can be validated in-tree (CI,
    tests) without a Python dependency.

    The grammar enforced here is the subset the renderer emits plus what
    a standard scraper requires: every sample line must parse
    ([name{labels} value [timestamp]]), every sample must belong to the
    family declared by the preceding [# TYPE] line (histogram families
    own their [_bucket]/[_sum]/[_count] series), metric and label names
    must match the exposition grammar, and label values must be properly
    quoted.  Anything else is an error naming the offending line. *)

type sample = {
  metric : string;  (** full sample name, e.g. [qdt_serve_latency_ns_bucket] *)
  labels : (string * string) list;
  value : float;
}

type family = {
  name : string;  (** family (base) name from the [# TYPE] line *)
  kind : string;  (** [counter], [gauge], [histogram] or [untyped] *)
  samples : sample list;  (** in exposition order *)
}

(** [parse text] — families in exposition order, or [Error] naming the
    first offending line (1-based). *)
val parse : string -> (family list, string) result

(** [find name families] — the family registered under [name], if any. *)
val find : string -> family list -> family option

(** Sum of the family's plain sample values (for histogram families:
    the [_count] samples) — "is this counter nonzero" in one call. *)
val total : family -> float
