(* Aggregate the trace ring into a profile: walk the begin/end event
   stream with an explicit frame stack, attributing to every span
   instance an inclusive duration (end − begin) and an exclusive "self"
   duration (inclusive − time spent in child spans).  Two views are
   built in one pass:
     - per span name: count / total / self / min / max,
     - per stack path ("root;child;leaf"): summed self time, the folded
       form flamegraph.pl and speedscope consume directly.

   The stream may be truncated on either side by ring wrap-around, so the
   walk is defensive: an End with no open frame is counted in
   [orphan_ends] and skipped (its Begin was overwritten); frames still
   open when the stream ends are closed at the last seen timestamp and
   counted in [unclosed] (their Ends were never recorded — e.g. the
   export happened mid-run). *)

type row = {
  name : string;
  count : int;
  total_ns : int;
  self_ns : int;
  min_ns : int;
  max_ns : int;
}

type t = {
  rows : row list;
  folded : (string * int) list;
  total_ns : int;
  span_count : int;
  orphan_ends : int;
  unclosed : int;
}

type frame = { f_name : string; f_begin : int; mutable f_child : int }

type acc = {
  mutable a_count : int;
  mutable a_total : int;
  mutable a_self : int;
  mutable a_min : int;
  mutable a_max : int;
}

let of_events events =
  let per_name : (string, acc) Hashtbl.t = Hashtbl.create 32 in
  let per_stack : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let stack = ref [] in
  let root_ns = ref 0 in
  let span_count = ref 0 in
  let orphan_ends = ref 0 in
  let last_ts = ref 0 in
  let record_name name ~dur ~self =
    match Hashtbl.find_opt per_name name with
    | Some a ->
        a.a_count <- a.a_count + 1;
        a.a_total <- a.a_total + dur;
        a.a_self <- a.a_self + self;
        if dur < a.a_min then a.a_min <- dur;
        if dur > a.a_max then a.a_max <- dur
    | None ->
        Hashtbl.replace per_name name
          { a_count = 1; a_total = dur; a_self = self; a_min = dur; a_max = dur }
  in
  (* Close [frame] at [end_ts]; [parents] is the stack below it. *)
  let close frame ~end_ts ~parents =
    let dur = max 0 (end_ts - frame.f_begin) in
    let self = max 0 (dur - frame.f_child) in
    incr span_count;
    record_name frame.f_name ~dur ~self;
    let path =
      String.concat ";"
        (List.rev_map (fun f -> f.f_name) (frame :: parents))
    in
    Hashtbl.replace per_stack path
      (self + Option.value ~default:0 (Hashtbl.find_opt per_stack path));
    match parents with
    | parent :: _ -> parent.f_child <- parent.f_child + dur
    | [] -> root_ns := !root_ns + dur
  in
  List.iter
    (fun (e : Trace.event) ->
      last_ts := max !last_ts e.Trace.ts_ns;
      match e.Trace.phase with
      | Trace.Begin ->
          stack := { f_name = e.Trace.name; f_begin = e.Trace.ts_ns; f_child = 0 } :: !stack
      | Trace.End -> (
          match !stack with
          | top :: rest ->
              stack := rest;
              close top ~end_ts:e.Trace.ts_ns ~parents:rest
          | [] -> incr orphan_ends))
    events;
  let unclosed = List.length !stack in
  let rec drain = function
    | [] -> ()
    | top :: rest ->
        close top ~end_ts:!last_ts ~parents:rest;
        drain rest
  in
  drain !stack;
  let rows =
    Hashtbl.fold
      (fun name a acc ->
        {
          name;
          count = a.a_count;
          total_ns = a.a_total;
          self_ns = a.a_self;
          min_ns = a.a_min;
          max_ns = a.a_max;
        }
        :: acc)
      per_name []
    |> List.sort (fun a b ->
           match compare b.self_ns a.self_ns with
           | 0 -> String.compare a.name b.name
           | c -> c)
  in
  let folded =
    Hashtbl.fold (fun path self acc -> (path, self) :: acc) per_stack []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  {
    rows;
    folded;
    total_ns = !root_ns;
    span_count = !span_count;
    orphan_ends = !orphan_ends;
    unclosed;
  }

let rows t = t.rows
let hotspots ?(top = 10) t = List.filteri (fun i _ -> i < top) t.rows
let folded t = t.folded
let total_ns t = t.total_ns
let span_count t = t.span_count
let orphan_ends t = t.orphan_ends
let unclosed t = t.unclosed

let ms ns = float_of_int ns /. 1e6

let render ?(top = 10) t =
  let b = Buffer.create 1024 in
  let shown = hotspots ~top t in
  Buffer.add_string b
    (Printf.sprintf "hotspots (top %d of %d span names, by self time):\n"
       (List.length shown) (List.length t.rows));
  Buffer.add_string b
    (Printf.sprintf "  %-28s %9s %12s %7s %12s %12s %12s\n" "span" "count"
       "self (ms)" "self%" "total (ms)" "min (us)" "max (us)");
  List.iter
    (fun r ->
      let pct =
        if t.total_ns = 0 then 0.0
        else 100.0 *. float_of_int r.self_ns /. float_of_int t.total_ns
      in
      Buffer.add_string b
        (Printf.sprintf "  %-28s %9d %12.3f %6.1f%% %12.3f %12.2f %12.2f\n" r.name
           r.count (ms r.self_ns) pct (ms r.total_ns)
           (float_of_int r.min_ns /. 1e3)
           (float_of_int r.max_ns /. 1e3)))
    shown;
  Buffer.add_string b
    (Printf.sprintf "  total profiled: %.3f ms over %d spans\n" (ms t.total_ns)
       t.span_count);
  if t.orphan_ends > 0 || t.unclosed > 0 then
    Buffer.add_string b
      (Printf.sprintf
         "  (truncated stream: %d orphan end events, %d spans closed at stream end)\n"
         t.orphan_ends t.unclosed);
  Buffer.contents b

let folded_stacks t =
  let b = Buffer.create 1024 in
  List.iter
    (fun (path, self) ->
      if self > 0 then Buffer.add_string b (Printf.sprintf "%s %d\n" path self))
    t.folded;
  Buffer.contents b
