(** Span-tree profile aggregated from the trace ring.

    [of_events (Trace.events ())] turns the raw begin/end stream into the
    two views a performance investigation needs:

    - {b per span name} ({!rows}, {!hotspots}, {!render}): how many times
      each instrumented phase ran, its inclusive ("total") and exclusive
      ("self") time, and its per-instance min/max.  Self times partition
      the profiled wall clock — summed over all rows they equal
      {!total_ns} — so the rendered table's percentages answer "which
      span dominates?" directly.
    - {b per stack path} ({!folded}, {!folded_stacks}): self time keyed
      by the semicolon-joined ancestry ("dd.gate;dd.gc"), the folded
      format consumed by flamegraph.pl and speedscope.

    Truncated streams are handled, not rejected: when the ring wrapped,
    End events whose Begin was overwritten are counted in {!orphan_ends}
    and skipped; spans still open when the stream ends are closed at the
    last recorded timestamp and counted in {!unclosed}.  A profile with
    either counter nonzero under-reports the spans it lost — callers
    should surface [Trace.dropped_events] next to it. *)

type row = {
  name : string;
  count : int;  (** completed span instances with this name *)
  total_ns : int;
      (** summed inclusive durations; nested recursion double-counts here
          (each instance counts its full extent) — use [self_ns] for
          additive accounting *)
  self_ns : int;  (** summed exclusive durations; additive across rows *)
  min_ns : int;  (** smallest inclusive duration of one instance *)
  max_ns : int;  (** largest inclusive duration of one instance *)
}

type t

val of_events : Trace.event list -> t

(** All rows, largest self time first (ties broken by name). *)
val rows : t -> row list

(** First [top] (default 10) rows of {!rows}. *)
val hotspots : ?top:int -> t -> row list

(** Self time per stack path ("a;b;c"), sorted by path. *)
val folded : t -> (string * int) list

(** Sum of root-span inclusive durations — the profiled wall clock. *)
val total_ns : t -> int

val span_count : t -> int

(** End events with no matching Begin in the stream (ring wrapped). *)
val orphan_ends : t -> int

(** Spans closed at stream end because their End was never recorded. *)
val unclosed : t -> int

(** Hotspot table: header, top rows with self/total/min/max and self%%
    of {!total_ns}, a totals line, and a truncation note when
    {!orphan_ends} or {!unclosed} is nonzero. *)
val render : ?top:int -> t -> string

(** One line per stack path, ["a;b;c <self_ns>\n"], zero-self paths
    omitted — pipe into flamegraph.pl or load in speedscope. *)
val folded_stacks : t -> string
