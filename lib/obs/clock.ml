(* One clock for the whole process.  OCaml's stdlib has no monotonic
   clock, so we monotonise gettimeofday: readings are clamped to never run
   backwards (NTP steps, leap adjustments).  Readings are ints relative to
   process start, which keeps them immediate (unboxed) and makes trace
   timestamps start near zero. *)

let base_ns = int_of_float (Unix.gettimeofday () *. 1e9)
let epoch_ns = base_ns
let last = ref 0

let now_ns () =
  let t = int_of_float (Unix.gettimeofday () *. 1e9) - base_ns in
  if t > !last then begin
    last := t;
    t
  end
  else !last

let elapsed_ns t0 = now_ns () - t0
let ns_to_s ns = float_of_int ns *. 1e-9
let ns_to_us ns = float_of_int ns *. 1e-3
