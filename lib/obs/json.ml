(* Minimal JSON emission shared by the metrics and trace exporters.
   Emission only — the library has no parser and no dependency. *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let string s = "\"" ^ escape s ^ "\""

(* JSON has no NaN/inf; clamp to null so emitted documents always parse. *)
let float f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then "null"
  else Printf.sprintf "%.6g" f

let int = string_of_int
