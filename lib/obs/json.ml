(* Minimal JSON support shared by the metrics and trace exporters and the
   baseline store: string/float/int emission plus a small recursive-descent
   parser (the baseline comparison has to read files back, and the repo
   deliberately carries no JSON dependency). *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let string s = "\"" ^ escape s ^ "\""

(* JSON has no NaN/inf; clamp to null so emitted documents always parse. *)
let float f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then "null"
  else Printf.sprintf "%.6g" f

let int = string_of_int

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | Array of t list
  | Object of (string * t) list

exception Parse_failure of int * string

let parse src =
  let n = String.length src in
  let pos = ref 0 in
  let fail msg = raise (Parse_failure (!pos, msg)) in
  let peek () = if !pos < n then Some src.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match src.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let keyword k v =
    if !pos + String.length k <= n && String.sub src !pos (String.length k) = k then begin
      pos := !pos + String.length k;
      v
    end
    else fail (Printf.sprintf "expected %s" k)
  in
  let number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while !pos < n && (match src.[!pos] with '0' .. '9' -> true | _ -> false) do
        advance ()
      done;
      if !pos = d0 then fail "expected digits"
    in
    digits ();
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    match float_of_string_opt (String.sub src start (!pos - start)) with
    | Some f -> Number f
    | None -> fail "malformed number"
  in
  let string_lit () =
    expect '"';
    let b = Buffer.create 16 in
    let closed = ref false in
    while not !closed do
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' ->
          advance ();
          closed := true
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> advance (); Buffer.add_char b '"'
          | Some '\\' -> advance (); Buffer.add_char b '\\'
          | Some '/' -> advance (); Buffer.add_char b '/'
          | Some 'b' -> advance (); Buffer.add_char b '\b'
          | Some 'f' -> advance (); Buffer.add_char b '\012'
          | Some 'n' -> advance (); Buffer.add_char b '\n'
          | Some 'r' -> advance (); Buffer.add_char b '\r'
          | Some 't' -> advance (); Buffer.add_char b '\t'
          | Some 'u' ->
              advance ();
              let code = ref 0 in
              for _ = 1 to 4 do
                (match peek () with
                | Some ('0' .. '9' as c) -> code := (!code * 16) + (Char.code c - Char.code '0')
                | Some ('a' .. 'f' as c) -> code := (!code * 16) + (Char.code c - Char.code 'a' + 10)
                | Some ('A' .. 'F' as c) -> code := (!code * 16) + (Char.code c - Char.code 'A' + 10)
                | _ -> fail "bad \\u escape");
                advance ()
              done;
              (* Only BMP escapes are produced by this library's emitters;
                 decode the common ASCII range, keep the rest as '?'. *)
              if !code < 0x80 then Buffer.add_char b (Char.chr !code)
              else Buffer.add_char b '?'
          | _ -> fail "bad escape")
      | Some c when Char.code c < 0x20 -> fail "control character in string"
      | Some c ->
          advance ();
          Buffer.add_char b c
    done;
    Buffer.contents b
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> String (string_lit ())
    | Some 't' -> keyword "true" (Bool true)
    | Some 'f' -> keyword "false" (Bool false)
    | Some 'n' -> keyword "null" Null
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> fail "expected a value"
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then begin
      advance ();
      Object []
    end
    else begin
      let fields = ref [] in
      let continue_ = ref true in
      while !continue_ do
        skip_ws ();
        let k = string_lit () in
        skip_ws ();
        expect ':';
        let v = value () in
        fields := (k, v) :: !fields;
        skip_ws ();
        match peek () with
        | Some ',' -> advance ()
        | Some '}' ->
            advance ();
            continue_ := false
        | _ -> fail "expected , or }"
      done;
      Object (List.rev !fields)
    end
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then begin
      advance ();
      Array []
    end
    else begin
      let items = ref [] in
      let continue_ = ref true in
      while !continue_ do
        items := value () :: !items;
        skip_ws ();
        match peek () with
        | Some ',' -> advance ()
        | Some ']' ->
            advance ();
            continue_ := false
        | _ -> fail "expected , or ]"
      done;
      Array (List.rev !items)
    end
  in
  match value () with
  | v ->
      skip_ws ();
      if !pos <> n then Error (Printf.sprintf "offset %d: trailing garbage" !pos)
      else Ok v
  | exception Parse_failure (at, msg) -> Error (Printf.sprintf "offset %d: %s" at msg)

let member key = function
  | Object fields -> List.assoc_opt key fields
  | _ -> None

let to_number = function Number f -> Some f | _ -> None
let to_string = function String s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
