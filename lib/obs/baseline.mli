(** Baseline store and perf-regression comparison for bench timings.

    A baseline is a committed JSON file recording the per-timing
    {!Stats.summary} of a blessed run:

    {v
    { "experiment": "e18",
      "smoke": true,
      "timings_ns": {
        "e18/sv-unboxed": {"median": 1.1e6, "mad": 2e4,
                           "min": 1.0e6, "max": 1.3e6, "reps": 3},
        ... } }
    v}

    {!compare} diffs a current run against it label by label.  A timing
    regresses when the current run's {e best} repetition (its [min] —
    noise inflates some reps, a code regression inflates all of them)
    exceeds the MAD-scaled threshold

    {v max(base.median * min_ratio, base.median + mad_k * base.mad) v}

    — the [mad_k·mad] term scales the allowance with the baseline's own
    measured noise, and the [min_ratio] floor keeps near-deterministic
    timings (MAD ≈ 0) from flagging on scheduler jitter.  Timings present
    on only one side are reported but never gate.  Baselines are
    machine-specific: compare against files produced on the same class of
    machine (CI compares smoke baselines recorded by
    [--update-baselines]). *)

type entry = { label : string; timing : Stats.summary }
type t = { experiment : string; smoke : bool; timings : entry list }

val default_mad_k : float
(** 5.0 *)

val default_min_ratio : float
(** 2.0 *)

(** Serialise (timings sorted by label, so diffs are stable). *)
val to_json : t -> string

val write : path:string -> t -> unit

(** Read a file written by {!write}. *)
val read : path:string -> (t, string) result

(** Parse an already-decoded document. *)
val of_json : Json.t -> (t, string) result

(** [threshold summary] — the maximum non-regressed median, in the same
    unit as the summary. *)
val threshold : ?mad_k:float -> ?min_ratio:float -> Stats.summary -> float

type verdict = {
  v_label : string;
  baseline : Stats.summary;
  current : Stats.summary;
  threshold_ns : float;
  ratio : float;  (** current.median / baseline.median *)
  regressed : bool;
}

type comparison = {
  verdicts : verdict list;  (** labels present in both runs *)
  only_in_baseline : string list;
  only_in_current : string list;
  any_regressed : bool;
}

val compare :
  ?mad_k:float -> ?min_ratio:float -> baseline:t -> current:t -> unit -> comparison

(** Human-readable comparison table (one line per verdict, then the
    one-sided labels). *)
val render : comparison -> string
