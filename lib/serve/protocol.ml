(* JSON encode/decode for the serve job protocol.  Parsing leans on
   Qdt_obs.Json (the same parser the report reader uses); encoding is
   hand-assembled strings like report.ml, so the whole protocol stays
   dependency-free. *)

module Json = Qdt_obs.Json

type job_request = {
  qasm : string;
  backend : string;
  job : Qdt.Job.t;
  session : string option;
  timeout_ms : int option;
  delay_ms : int;
}

let ( let* ) = Result.bind

let str_field ?default obj name =
  match Option.bind (Json.member name obj) Json.to_string with
  | Some s -> Ok s
  | None -> (
      match (Json.member name obj, default) with
      | None, Some d -> Ok d
      | _ -> Error (Printf.sprintf "field %S: expected a string" name))

let int_field ?default obj name =
  match Json.member name obj with
  | None -> (
      match default with
      | Some d -> Ok d
      | None -> Error (Printf.sprintf "field %S: required" name))
  | Some v -> (
      match Json.to_number v with
      | Some f when Float.is_integer f -> Ok (int_of_float f)
      | _ -> Error (Printf.sprintf "field %S: expected an integer" name))

let job_of_json v =
  let* kind = str_field v "kind" in
  match kind with
  | "full_state" -> Ok Qdt.Job.Full_state
  | "amplitude" ->
      let* index = int_field v "index" in
      Ok (Qdt.Job.Amplitude index)
  | "sample" ->
      let* seed = int_field ~default:0 v "seed" in
      let* shots = int_field v "shots" in
      if shots <= 0 then Error "field \"shots\": must be positive"
      else Ok (Qdt.Job.Sample { seed; shots })
  | "expectation_z" ->
      let* seed = int_field ~default:0 v "seed" in
      let* qubit = int_field v "qubit" in
      Ok (Qdt.Job.Expectation_z { seed; qubit })
  | k ->
      Error
        (Printf.sprintf
           "job kind %S: expected full_state, amplitude, sample or \
            expectation_z"
           k)

let job_request_of_string body =
  match Json.parse body with
  | Error e -> Error ("invalid JSON: " ^ e)
  | Ok (Json.Object _ as obj) ->
      let* qasm =
        match Option.bind (Json.member "qasm" obj) Json.to_string with
        | Some s when String.trim s <> "" -> Ok s
        | _ -> Error "field \"qasm\": required (OpenQASM 2.0 source)"
      in
      let* backend = str_field ~default:"auto" obj "backend" in
      let* job =
        match Json.member "job" obj with
        | None -> Ok Qdt.Job.Full_state
        | Some jv -> job_of_json jv
      in
      let* session =
        match Json.member "session" obj with
        | None | Some Json.Null -> Ok None
        | Some v -> (
            match Json.to_string v with
            | Some s when s <> "" -> Ok (Some s)
            | _ -> Error "field \"session\": expected a non-empty string")
      in
      let* timeout_ms =
        match Json.member "timeout_ms" obj with
        | None -> Ok None
        | Some _ ->
            let* t = int_field obj "timeout_ms" in
            if t <= 0 then Error "field \"timeout_ms\": must be positive"
            else Ok (Some t)
      in
      let* delay_ms = int_field ~default:0 obj "delay_ms" in
      Ok { qasm; backend; job; session; timeout_ms; delay_ms }
  | Ok _ -> Error "expected a JSON object"

let circuit_of req =
  match Qdt_circuit.Qasm.of_string req.qasm with
  | c -> Ok c
  | exception Qdt_circuit.Qasm.Parse_error msg -> Error ("qasm: " ^ msg)

let close_request_of_string body =
  match Json.parse body with
  | Error e -> Error ("invalid JSON: " ^ e)
  | Ok obj -> (
      match Option.bind (Json.member "session" obj) Json.to_string with
      | Some s when s <> "" -> Ok s
      | _ -> Error "field \"session\": required")

(* ------------------------------------------------------------------ *)
(* Response bodies                                                     *)
(* ------------------------------------------------------------------ *)

let obj fields =
  let b = Buffer.create 256 in
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b (Json.string k);
      Buffer.add_string b ": ";
      Buffer.add_string b v)
    fields;
  Buffer.add_char b '}';
  Buffer.contents b

(* Dense states render sparsely: index/re/im triples for entries with
   probability above 1e-12, capped so a response stays bounded no
   matter the qubit count. *)
let max_state_entries = 4096

let result_json (payload : Qdt.Job.result) =
  match payload with
  | Qdt.Job.State v ->
      let dim = Qdt.Linalg.Vec.length v in
      let entries = ref [] in
      let n = ref 0 in
      Qdt.Linalg.Vec.iteri
        (fun k amp ->
          if Qdt.Linalg.Cx.norm2 amp > 1e-12 && !n < max_state_entries then begin
            incr n;
            entries :=
              Printf.sprintf "[%d, %s, %s]" k
                (Json.float amp.Qdt.Linalg.Cx.re)
                (Json.float amp.Qdt.Linalg.Cx.im)
              :: !entries
          end)
        v;
      obj
        [
          ("kind", Json.string "state");
          ("dim", Json.int dim);
          ("amplitudes",
           Printf.sprintf "[%s]" (String.concat ", " (List.rev !entries)));
        ]
  | Qdt.Job.Amplitude_of a ->
      obj
        [
          ("kind", Json.string "amplitude");
          ("re", Json.float a.Qdt.Linalg.Cx.re);
          ("im", Json.float a.Qdt.Linalg.Cx.im);
        ]
  | Qdt.Job.Counts counts ->
      obj
        [
          ("kind", Json.string "counts");
          ("counts",
           Printf.sprintf "[%s]"
             (String.concat ", "
                (List.map (fun (k, c) -> Printf.sprintf "[%d, %d]" k c) counts)));
        ]
  | Qdt.Job.Expectation e ->
      obj [ ("kind", Json.string "expectation"); ("value", Json.float e) ]

let stats_json (s : Qdt.Backend.stats) =
  let fields = ref [] in
  let add k v = fields := (k, v) :: !fields in
  (match s.Qdt.Backend.note with Some n -> add "note" (Json.string n) | None -> ());
  (match s.Qdt.Backend.tableau_bytes with
  | Some n -> add "tableau_bytes" (Json.int n)
  | None -> ());
  (match s.Qdt.Backend.mps with
  | Some m ->
      add "mps"
        (obj
           [
             ("max_bond_dim", Json.int m.Qdt.Backend.max_bond_dim);
             ("truncation_error", Json.float m.Qdt.Backend.truncation_error);
           ])
  | None -> ());
  (match s.Qdt.Backend.dd with
  | Some d ->
      add "dd"
        (obj
           [
             ("peak_nodes", Json.int d.Qdt.Backend.peak_nodes);
             ("final_nodes", Json.int d.Qdt.Backend.final_nodes);
             ("peak_live_nodes", Json.int d.Qdt.Backend.peak_live_nodes);
             ("unique_hit_rate", Json.float d.Qdt.Backend.unique_hit_rate);
             ("compute_hit_rate", Json.float d.Qdt.Backend.compute_hit_rate);
           ])
  | None -> ());
  add "wall_s" (Json.float s.Qdt.Backend.wall_s);
  add "backend" (Json.string s.Qdt.Backend.backend);
  obj !fields

let ok_body ~job ~payload ~(stats : Qdt.Backend.stats) ~queue_wait_ns ~run_ns =
  obj
    [
      ("ok", "true");
      ("job", Json.string (Qdt.Job.describe job));
      ("backend", Json.string stats.Qdt.Backend.backend);
      ("result", result_json payload);
      ("stats", stats_json stats);
      ("queue_wait_ns", Json.int queue_wait_ns);
      ("run_ns", Json.int run_ns);
    ]

let error_body ~typ ~message extra =
  obj
    [
      ("ok", "false");
      ( "error",
        obj
          (("type", Json.string typ)
          :: ("message", Json.string message)
          :: extra) );
    ]
