(* Concurrent load generation.  Client threads are I/O-bound (the
   compute happens server-side on its worker domains), so systhreads on
   one domain are exactly right here. *)

module Metrics = Qdt_obs.Metrics
module Clock = Qdt_obs.Clock
module Json = Qdt_obs.Json

type kind = [ `Sample | `Expectation | `Amplitude | `Full_state ]

type summary = {
  clients : int;
  jobs : int;
  ok : int;
  failed : int;
  retried_429 : int;
  wall_s : float;
  jobs_per_s : float;
  p50_ns : int;
  p99_ns : int;
  max_ns : int;
}

let pp_summary s =
  Printf.sprintf
    "%d clients x %d jobs: %d ok, %d failed, %d retried (429) in %.3f s — \
     %.1f jobs/s, p50 %.3f ms, p99 %.3f ms, max %.3f ms"
    s.clients
    (if s.clients = 0 then 0 else s.jobs / s.clients)
    s.ok s.failed s.retried_429 s.wall_s s.jobs_per_s
    (float_of_int s.p50_ns /. 1e6)
    (float_of_int s.p99_ns /. 1e6)
    (float_of_int s.max_ns /. 1e6)

let default_qasm n =
  let b = Buffer.create 256 in
  Buffer.add_string b "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n";
  Buffer.add_string b (Printf.sprintf "qreg q[%d];\n" n);
  Buffer.add_string b "h q[0];\n";
  for i = 0 to n - 2 do
    Buffer.add_string b (Printf.sprintf "cx q[%d],q[%d];\n" i (i + 1))
  done;
  Buffer.contents b

let job_json kind ~seed =
  match kind with
  | `Sample -> Printf.sprintf "{\"kind\": \"sample\", \"seed\": %d, \"shots\": 64}" seed
  | `Expectation ->
      Printf.sprintf "{\"kind\": \"expectation_z\", \"seed\": %d, \"qubit\": 0}" seed
  | `Amplitude -> "{\"kind\": \"amplitude\", \"index\": 0}"
  | `Full_state -> "{\"kind\": \"full_state\"}"

let request_body ~qasm ~backend ~session ~kind ~seed =
  Printf.sprintf "{\"qasm\": %s, \"backend\": %s%s, \"job\": %s}"
    (Json.string qasm) (Json.string backend)
    (match session with
    | Some s -> Printf.sprintf ", \"session\": %s" (Json.string s)
    | None -> "")
    (job_json kind ~seed)

let h_latency = Metrics.histogram "qdt.loadgen.latency_ns"

type tally = {
  mutable t_ok : int;
  mutable t_failed : int;
  mutable t_retried : int;
  mutable t_max_ns : int;
}

let client_thread ~host ~port ~backend ~use_sessions ~mix ~qasm ~seed
    ~jobs_per_client i (tally : tally) =
  let session = if use_sessions then Some ("lg" ^ string_of_int i) else None in
  let conn = ref None in
  let get_conn () =
    match !conn with
    | Some c -> Some c
    | None -> (
        match Client.connect ~host ~port with
        | c ->
            conn := Some c;
            Some c
        | exception Unix.Unix_error _ -> None)
  in
  let drop_conn () =
    Option.iter Client.close !conn;
    conn := None
  in
  let nmix = List.length mix in
  for j = 0 to jobs_per_client - 1 do
    let kind = List.nth mix ((i + j) mod nmix) in
    let body = request_body ~qasm ~backend ~session ~kind ~seed:(seed + j) in
    let rec attempt tries =
      if tries > 100 then tally.t_failed <- tally.t_failed + 1
      else
        match get_conn () with
        | None ->
            if tries < 3 then (Unix.sleepf 0.05; attempt (tries + 1))
            else tally.t_failed <- tally.t_failed + 1
        | Some c -> (
            let t0 = Clock.now_ns () in
            match Client.request c ~meth:"POST" ~path:"/v1/jobs" ~body () with
            | Ok (200, _, _) ->
                let latency = Clock.now_ns () - t0 in
                Metrics.observe h_latency latency;
                if latency > tally.t_max_ns then tally.t_max_ns <- latency;
                tally.t_ok <- tally.t_ok + 1
            | Ok (429, headers, _) ->
                tally.t_retried <- tally.t_retried + 1;
                let wait =
                  match
                    Option.bind
                      (List.assoc_opt "retry-after" headers)
                      int_of_string_opt
                  with
                  | Some s when s > 0 -> min (float_of_int s) 1.0
                  | _ -> 0.05
                in
                Unix.sleepf wait;
                attempt (tries + 1)
            | Ok (_, _, _) -> tally.t_failed <- tally.t_failed + 1
            | Error _ ->
                drop_conn ();
                if tries < 3 then attempt (tries + 1)
                else tally.t_failed <- tally.t_failed + 1)
    in
    attempt 0
  done;
  drop_conn ()

let run ?(host = "127.0.0.1") ?(port = 8177) ?(backend = "decision-diagrams")
    ?(use_sessions = true) ?(mix = [ `Sample; `Expectation; `Amplitude ])
    ?qasm ?(seed = 0) ~clients ~jobs_per_client () =
  let qasm = match qasm with Some q -> q | None -> default_qasm 8 in
  let mix = if mix = [] then [ `Sample ] else mix in
  let prev = Metrics.enabled () in
  Metrics.set_enabled true;
  let before = Metrics.snapshot () in
  let tallies =
    Array.init clients (fun _ ->
        { t_ok = 0; t_failed = 0; t_retried = 0; t_max_ns = 0 })
  in
  let t0 = Clock.now_ns () in
  let threads =
    List.init clients (fun i ->
        Thread.create
          (fun () ->
            client_thread ~host ~port ~backend ~use_sessions ~mix ~qasm ~seed
              ~jobs_per_client i tallies.(i))
          ())
  in
  List.iter Thread.join threads;
  let wall_s = Qdt_obs.Clock.ns_to_s (Clock.now_ns () - t0) in
  let diff = Metrics.diff ~before ~after:(Metrics.snapshot ()) in
  Metrics.set_enabled prev;
  let p50, p99 =
    match List.assoc_opt "qdt.loadgen.latency_ns" diff with
    | Some (Metrics.Histogram_v h as v) when h.count > 0 ->
        (Metrics.estimate_percentile v 50.0, Metrics.estimate_percentile v 99.0)
    | _ -> (0, 0)
  in
  let fold f = Array.fold_left (fun acc x -> acc + f x) 0 tallies in
  let ok = fold (fun x -> x.t_ok) in
  {
    clients;
    jobs = clients * jobs_per_client;
    ok;
    failed = fold (fun x -> x.t_failed);
    retried_429 = fold (fun x -> x.t_retried);
    wall_s;
    jobs_per_s = (if wall_s > 0.0 then float_of_int ok /. wall_s else 0.0);
    p50_ns = p50;
    p99_ns = p99;
    max_ns = Array.fold_left (fun m x -> max m x.t_max_ns) 0 tallies;
  }
