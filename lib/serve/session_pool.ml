(* Named warm sessions.  The existential packing pairs a SESSION module
   with a value of its abstract state type, so one table can hold
   engines of all six backends.

   Locking: [mu] guards the table and the LRU clock only and is never
   held across an engine call; each entry's [emu] serialises submits on
   that engine (engines are not domain-safe).  Eviction and close
   remove the entry from the table under [mu] first, then take [emu] to
   close — so an in-flight submit finishes before its engine dies, and
   a submit that raced past removal lands on a closed engine and gets
   the typed session-closed error (exactly the PR 9 contract). *)

type packed =
  | Packed : (module Qdt.Backend.SESSION with type t = 's) * 's -> packed

type entry = {
  backend : string;
  packed : packed;
  emu : Mutex.t;
  mutable last_used : int;
}

type t = {
  mu : Mutex.t;
  table : (string, entry) Hashtbl.t;
  max_sessions : int;
  mutable clock : int;
}

type error =
  | Unknown_backend of { requested : string; suggestion : string option }
  | Backend_mismatch of { session : string; existing : string; requested : string }

let error_message = function
  | Unknown_backend { requested; suggestion } -> (
      Printf.sprintf "unknown backend %S%s" requested
        (match suggestion with
        | Some s -> Printf.sprintf " (did you mean %S?)" s
        | None -> ""))
  | Backend_mismatch { session; existing; requested } ->
      Printf.sprintf "session %S is open on backend %S, not %S" session
        existing requested

let locked t f =
  Mutex.lock t.mu;
  match f () with
  | v ->
      Mutex.unlock t.mu;
      v
  | exception e ->
      Mutex.unlock t.mu;
      raise e

let create ~max_sessions =
  {
    mu = Mutex.create ();
    table = Hashtbl.create 16;
    max_sessions = max 1 max_sessions;
    clock = 0;
  }

let size t = locked t (fun () -> Hashtbl.length t.table)

let active_sessions = Qdt_obs.Metrics.gauge "qdt.serve.active_sessions"

let set_gauge t =
  Qdt_obs.Metrics.set active_sessions (float_of_int (Hashtbl.length t.table))

let close_entry e =
  Mutex.lock e.emu;
  (let (Packed ((module S), s)) = e.packed in
   try S.close s with _ -> ());
  Mutex.unlock e.emu

(* Least-recently-used victim; caller holds [t.mu]. *)
let lru_victim t =
  Hashtbl.fold
    (fun name e acc ->
      match acc with
      | Some (_, best) when best.last_used <= e.last_used -> acc
      | _ -> Some (name, e))
    t.table None

let fresh_engine backend =
  match Qdt.Registry.find_session backend with
  | None ->
      Error
        (Unknown_backend
           { requested = backend; suggestion = Qdt.Registry.suggest backend })
  | Some (module S : Qdt.Backend.SESSION) ->
      let s = S.create ~label:(Qdt.Backend.fresh_session_label ()) () in
      Ok (Packed ((module S), s))

(* Find-or-create the entry; returns the evicted entry (to close outside
   the pool lock) alongside it. *)
let entry_for t ~session ~backend =
  locked t @@ fun () ->
  t.clock <- t.clock + 1;
  match Hashtbl.find_opt t.table session with
  | Some e when e.backend = backend ->
      e.last_used <- t.clock;
      Ok (e, None)
  | Some e ->
      Error
        (Backend_mismatch
           { session; existing = e.backend; requested = backend })
  | None -> (
      match fresh_engine backend with
      | Error e -> Error e
      | Ok packed ->
          let e =
            { backend; packed; emu = Mutex.create (); last_used = t.clock }
          in
          let evicted =
            if Hashtbl.length t.table >= t.max_sessions then
              match lru_victim t with
              | Some (vname, ve) ->
                  Hashtbl.remove t.table vname;
                  Some ve
              | None -> None
            else None
          in
          Hashtbl.replace t.table session e;
          set_gauge t;
          Ok (e, evicted))

let submit t ~session ~backend c job =
  match entry_for t ~session ~backend with
  | Error e -> Error e
  | Ok (e, evicted) ->
      Option.iter close_entry evicted;
      Mutex.lock e.emu;
      let outcome =
        let (Packed ((module S), s)) = e.packed in
        try S.submit s c job
        with exn ->
          Mutex.unlock e.emu;
          raise exn
      in
      Mutex.unlock e.emu;
      Ok outcome

let submit_once ~backend c job =
  match Qdt.Registry.find_session backend with
  | None ->
      Error
        (Unknown_backend
           { requested = backend; suggestion = Qdt.Registry.suggest backend })
  | Some (module S : Qdt.Backend.SESSION) ->
      let s = S.create () in
      let outcome =
        try S.submit s c job
        with exn ->
          S.close s;
          raise exn
      in
      S.close s;
      Ok outcome

let close t ~session =
  let removed =
    locked t @@ fun () ->
    match Hashtbl.find_opt t.table session with
    | None -> None
    | Some e ->
        Hashtbl.remove t.table session;
        set_gauge t;
        Some e
  in
  match removed with
  | None -> false
  | Some e ->
      close_entry e;
      true

let close_all t =
  let entries =
    locked t @@ fun () ->
    let es = Hashtbl.fold (fun _ e acc -> e :: acc) t.table [] in
    Hashtbl.reset t.table;
    set_gauge t;
    es
  in
  List.iter close_entry entries
