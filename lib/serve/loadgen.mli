(** Concurrent load generator for [qdt serve] — [qdt loadgen] and bench
    e23 drive the server through this.

    [clients] threads each open one keep-alive connection and push
    [jobs_per_client] jobs drawn round-robin from [mix].  Per-job
    latencies go into the [qdt.loadgen.latency_ns] histogram; the
    summary's p50/p99 come straight from the registry via
    {!Qdt_obs.Metrics.estimate_percentile} on the run-scoped diff, so
    the numbers are the same ones a scraper would compute.  A 429 is
    backpressure, not failure: the client honours [Retry-After] and
    retries (counted in [retried_429]). *)

type kind = [ `Sample | `Expectation | `Amplitude | `Full_state ]

type summary = {
  clients : int;
  jobs : int;  (** jobs attempted ([clients * jobs_per_client]) *)
  ok : int;
  failed : int;
  retried_429 : int;
  wall_s : float;
  jobs_per_s : float;  (** successful jobs per wall second *)
  p50_ns : int;
  p99_ns : int;
  max_ns : int;
}

val pp_summary : summary -> string

(** GHZ state preparation on [n] qubits — the default workload. *)
val default_qasm : int -> string

(** Blocks until every client finishes.  [use_sessions] gives client
    [i] the warm session ["lg<i>"]; without it every job pays a cold
    engine create/close on the server. *)
val run :
  ?host:string ->
  ?port:int ->
  ?backend:string ->
  ?use_sessions:bool ->
  ?mix:kind list ->
  ?qasm:string ->
  ?seed:int ->
  clients:int ->
  jobs_per_client:int ->
  unit ->
  summary
