(* The serve engine.  Threading model:

   - one accept thread (systhread) selects on the listening socket plus
     a self-pipe so [stop] can wake it portably;
   - one handler thread per connection, also on the accepting domain —
     handlers only parse, enqueue, and block on sockets/pipes, and
     blocking syscalls release the runtime lock;
   - [cfg.workers] worker *domains* executing jobs from one bounded
     queue — compute runs genuinely in parallel.

   Per-job timeouts without preemption: each queued job (a "ticket")
   carries a pipe.  The worker writes one byte when the job starts
   running ('S') and one when it finishes ('D'); the handler selects on
   the pipe with the job's deadline.  On expiry the handler marks the
   ticket Abandoned (re-checking, under the ticket mutex, that the
   worker didn't just finish) and answers with the typed timeout error;
   the worker discards the result of an abandoned ticket and moves on —
   a slow job costs one worker at most its own runtime, never the
   server.  All pipe writes and the close happen under the ticket
   mutex, so the worker never writes into a closed descriptor. *)

module Metrics = Qdt_obs.Metrics
module Trace = Qdt_obs.Trace
module Clock = Qdt_obs.Clock
module Watermark = Qdt_obs.Watermark
module Report = Qdt_obs.Report
module Json = Qdt_obs.Json

type config = {
  host : string;
  port : int;
  workers : int;
  queue_depth : int;
  default_timeout_ms : int;
  max_sessions : int;
  max_body_bytes : int;
  access_log : string option;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 8177;
    workers = 2;
    queue_depth = 64;
    default_timeout_ms = 30_000;
    max_sessions = 32;
    max_body_bytes = 4 * 1024 * 1024;
    access_log = None;
  }

(* ------------------------------------------------------------------ *)
(* Instruments (created once; label sets are small and closed)         *)
(* ------------------------------------------------------------------ *)

let endpoints =
  [ "healthz"; "metrics"; "report"; "jobs"; "batch"; "sessions_close"; "other" ]

let req_counters =
  List.map
    (fun ep ->
      (ep, Metrics.counter_with ~labels:[ ("endpoint", ep) ] "qdt.serve.requests"))
    endpoints

let latency_histograms =
  List.map
    (fun ep ->
      ( ep,
        Metrics.histogram_with ~labels:[ ("endpoint", ep) ]
          "qdt.serve.latency_ns" ))
    endpoints

let outcomes = [ "ok"; "error"; "timeout"; "rejected" ]

let job_counters =
  List.map
    (fun o ->
      (o, Metrics.counter_with ~labels:[ ("outcome", o) ] "qdt.serve.jobs"))
    outcomes

let count_job outcome =
  match List.assoc_opt outcome job_counters with
  | Some c -> Metrics.incr c
  | None -> ()

let g_queue_depth = Metrics.gauge "qdt.serve.queue_depth"
let g_inflight = Metrics.gauge "qdt.serve.inflight"
let g_uptime = Metrics.gauge "qdt.serve.uptime_s"
let h_queue_wait = Metrics.histogram "qdt.serve.queue_wait_ns"
let h_run = Metrics.histogram "qdt.serve.run_ns"

(* ------------------------------------------------------------------ *)
(* Tickets                                                             *)
(* ------------------------------------------------------------------ *)

type tstate = Queued | Running | Done | Abandoned

type ticket = {
  t_req : Protocol.job_request;
  t_circuit : Qdt_circuit.Circuit.t;
  enqueue_ns : int;
  tmu : Mutex.t;
  mutable state : tstate;
  mutable outcome :
    (Qdt.Job.result Qdt.Backend.outcome, Session_pool.error) result option;
  mutable queue_wait_ns : int;
  mutable run_ns : int;
  pipe_r : Unix.file_descr;
  pipe_w : Unix.file_descr;
  mutable pipe_open : bool;
}

(* Caller holds [k.tmu]. *)
let signal k c =
  if k.pipe_open then
    try ignore (Unix.write k.pipe_w (Bytes.make 1 c) 0 1)
    with Unix.Unix_error _ -> ()

type t = {
  cfg : config;
  lsock : Unix.file_descr;
  actual_port : int;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  queue : ticket option Queue.t;
  qmu : Mutex.t;
  qcond : Condition.t;
  pool : Session_pool.t;
  mutable worker_domains : unit Domain.t list;
  mutable accept_thread : Thread.t option;
  stopping : bool Atomic.t;
  stopped : bool Atomic.t;
  conns : (int, Unix.file_descr) Hashtbl.t;
  cmu : Mutex.t;
  hcond : Condition.t;
  mutable handler_count : int;
  report : Report.t;
  started_ns : int;
  access : out_channel option;
  amu : Mutex.t;
  inflight : int Atomic.t;
}

let port t = t.actual_port
let set_queue_depth n = Metrics.set g_queue_depth (float_of_int n)

(* ------------------------------------------------------------------ *)
(* Workers                                                             *)
(* ------------------------------------------------------------------ *)

let run_job t (k : ticket) =
  let req = k.t_req in
  try
    match req.Protocol.session with
    | Some name ->
        Session_pool.submit t.pool ~session:name ~backend:req.Protocol.backend
          k.t_circuit req.Protocol.job
    | None ->
        Session_pool.submit_once ~backend:req.Protocol.backend k.t_circuit
          req.Protocol.job
  with exn ->
    (* A raising engine is a bug, but it must cost this job only. *)
    Ok
      (Error
         {
           Qdt.Backend.backend = req.Protocol.backend;
           operation = "submit";
           reason = "internal error: " ^ Printexc.to_string exn;
         })

let execute t (k : ticket) =
  let proceed =
    Mutex.lock k.tmu;
    let p = k.state = Queued in
    if p then begin
      k.state <- Running;
      k.queue_wait_ns <- Clock.now_ns () - k.enqueue_ns;
      signal k 'S'
    end;
    Mutex.unlock k.tmu;
    p
  in
  if proceed then begin
    Metrics.observe h_queue_wait k.queue_wait_ns;
    Atomic.incr t.inflight;
    Metrics.set g_inflight (float_of_int (Atomic.get t.inflight));
    if k.t_req.Protocol.delay_ms > 0 then
      Unix.sleepf (float_of_int k.t_req.Protocol.delay_ms /. 1000.0);
    (* The deliberate delay is where timeout tests park a job; skip the
       actual run when the handler has already given up. *)
    let abandoned_during_delay =
      Mutex.lock k.tmu;
      let a = k.state <> Running in
      Mutex.unlock k.tmu;
      a
    in
    let t0 = Clock.now_ns () in
    let outcome = if abandoned_during_delay then None else Some (run_job t k) in
    let run_ns = Clock.now_ns () - t0 in
    Atomic.decr t.inflight;
    Metrics.set g_inflight (float_of_int (Atomic.get t.inflight));
    match outcome with
    | None -> ()
    | Some oc ->
        Metrics.observe h_run run_ns;
        Mutex.lock k.tmu;
        k.run_ns <- run_ns;
        k.outcome <- Some oc;
        if k.state = Running then begin
          k.state <- Done;
          signal k 'D'
        end;
        Mutex.unlock k.tmu
  end

let rec worker_loop t =
  Mutex.lock t.qmu;
  while Queue.is_empty t.queue do
    Condition.wait t.qcond t.qmu
  done;
  let item = Queue.pop t.queue in
  set_queue_depth (Queue.length t.queue);
  Mutex.unlock t.qmu;
  match item with
  | None -> ()
  | Some k ->
      execute t k;
      worker_loop t

(* ------------------------------------------------------------------ *)
(* Handler-side job submission                                         *)
(* ------------------------------------------------------------------ *)

type reply = {
  status : int;
  body : string;
  outcome_label : string;
  r_queue_wait_ns : int;
  r_run_ns : int;
  retry_after : bool;
}

let reply ?(retry_after = false) ?(queue_wait_ns = 0) ?(run_ns = 0) status
    outcome_label body =
  {
    status;
    body;
    outcome_label;
    r_queue_wait_ns = queue_wait_ns;
    r_run_ns = run_ns;
    retry_after;
  }

let wait_byte k ~deadline =
  let buf = Bytes.create 1 in
  let rec go () =
    let remaining = float_of_int (deadline - Clock.now_ns ()) /. 1e9 in
    if remaining <= 0.0 then `Timeout
    else
      match Unix.select [ k.pipe_r ] [] [] remaining with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | [], _, _ -> `Timeout
      | _ :: _, _, _ ->
          if Unix.read k.pipe_r buf 0 1 = 0 then `Timeout
          else `Byte (Bytes.get buf 0)
  in
  go ()

let reply_of_outcome k = function
  | Error pool_err ->
      let status, typ =
        match pool_err with
        | Session_pool.Unknown_backend _ -> (400, "unknown_backend")
        | Session_pool.Backend_mismatch _ -> (409, "session_backend_mismatch")
      in
      reply status "error" ~queue_wait_ns:k.queue_wait_ns ~run_ns:k.run_ns
        (Protocol.error_body ~typ
           ~message:(Session_pool.error_message pool_err)
           [])
  | Ok (Error (be : Qdt.Backend.error)) ->
      reply 422 "error" ~queue_wait_ns:k.queue_wait_ns ~run_ns:k.run_ns
        (Protocol.error_body ~typ:"backend_error"
           ~message:(Qdt.Backend.error_to_string be)
           [
             ("backend", Json.string be.Qdt.Backend.backend);
             ("operation", Json.string be.Qdt.Backend.operation);
             ("reason", Json.string be.Qdt.Backend.reason);
           ])
  | Ok (Ok (payload, stats)) ->
      reply 200 "ok" ~queue_wait_ns:k.queue_wait_ns ~run_ns:k.run_ns
        (Protocol.ok_body ~job:k.t_req.Protocol.job ~payload ~stats
           ~queue_wait_ns:k.queue_wait_ns ~run_ns:k.run_ns)

let submit_and_await t (req : Protocol.job_request) circuit =
  (* Cheap rejections stay out of the queue: an unknown backend answers
     immediately instead of wasting a worker dequeue. *)
  match Qdt.Registry.find_session req.Protocol.backend with
  | None ->
      let r =
        reply 400 "error"
          (Protocol.error_body ~typ:"unknown_backend"
             ~message:
               (Session_pool.error_message
                  (Session_pool.Unknown_backend
                     {
                       requested = req.Protocol.backend;
                       suggestion = Qdt.Registry.suggest req.Protocol.backend;
                     }))
             [])
      in
      count_job "error";
      r
  | Some _ -> (
      let pipe_r, pipe_w = Unix.pipe () in
      let k =
        {
          t_req = req;
          t_circuit = circuit;
          enqueue_ns = Clock.now_ns ();
          tmu = Mutex.create ();
          state = Queued;
          outcome = None;
          queue_wait_ns = 0;
          run_ns = 0;
          pipe_r;
          pipe_w;
          pipe_open = true;
        }
      in
      let close_pipe () =
        Mutex.lock k.tmu;
        k.pipe_open <- false;
        Mutex.unlock k.tmu;
        (try Unix.close pipe_r with Unix.Unix_error _ -> ());
        try Unix.close pipe_w with Unix.Unix_error _ -> ()
      in
      let accepted =
        Mutex.lock t.qmu;
        let ok = Queue.length t.queue < t.cfg.queue_depth in
        if ok then begin
          Queue.push (Some k) t.queue;
          set_queue_depth (Queue.length t.queue);
          Condition.signal t.qcond
        end;
        Mutex.unlock t.qmu;
        ok
      in
      if not accepted then begin
        close_pipe ();
        count_job "rejected";
        reply 429 "rejected" ~retry_after:true
          (Protocol.error_body ~typ:"overloaded"
             ~message:
               (Printf.sprintf "job queue is full (depth %d); retry later"
                  t.cfg.queue_depth)
             [ ("queue_depth", Json.int t.cfg.queue_depth) ])
      end
      else begin
        let timeout_ms =
          Option.value req.Protocol.timeout_ms
            ~default:t.cfg.default_timeout_ms
        in
        let deadline = Clock.now_ns () + (timeout_ms * 1_000_000) in
        let first =
          Trace.with_span "serve.queue_wait" (fun () -> wait_byte k ~deadline)
        in
        let finished =
          match first with
          | `Timeout -> `Timeout
          | `Byte 'D' -> `Done
          | `Byte _ ->
              (* 'S': the job left the queue; now it is running. *)
              Trace.with_span "serve.run" (fun () ->
                  match wait_byte k ~deadline with
                  | `Timeout -> `Timeout
                  | `Byte _ -> `Done)
        in
        Mutex.lock k.tmu;
        let resolution =
          match k.outcome with
          | Some oc when k.state = Done -> `Result oc
          | _ ->
              ignore finished;
              k.state <- Abandoned;
              `Timeout
        in
        Mutex.unlock k.tmu;
        close_pipe ();
        match resolution with
        | `Result oc ->
            let r = reply_of_outcome k oc in
            count_job r.outcome_label;
            r
        | `Timeout ->
            count_job "timeout";
            reply 504 "timeout" ~queue_wait_ns:k.queue_wait_ns
              (Protocol.error_body ~typ:"timeout"
                 ~message:
                   (Printf.sprintf "job exceeded its %d ms budget" timeout_ms)
                 [ ("timeout_ms", Json.int timeout_ms) ])
      end)

(* ------------------------------------------------------------------ *)
(* Endpoints                                                           *)
(* ------------------------------------------------------------------ *)

let uptime_s t = float_of_int (Clock.now_ns () - t.started_ns) /. 1e9

let healthz_body t =
  Printf.sprintf
    "{\"ok\": true, \"uptime_s\": %s, \"queue_depth\": %d, \"inflight\": %d, \
     \"sessions\": %d}"
    (Json.float (uptime_s t))
    (Mutex.lock t.qmu;
     let n = Queue.length t.queue in
     Mutex.unlock t.qmu;
     n)
    (Atomic.get t.inflight) (Session_pool.size t.pool)

let metrics_body t =
  (* Fold the capacity signals in right before rendering: uptime, peak
     RSS, and every nonzero watermark as a [qdt.watermark.*] gauge. *)
  Metrics.set g_uptime (uptime_s t);
  Watermark.observe_rss ();
  List.iter
    (fun (name, v) ->
      if v > 0.0 then Metrics.set (Metrics.gauge ("qdt.watermark." ^ name)) v)
    (Watermark.snapshot ());
  Metrics.render_prometheus (Metrics.snapshot ())

(* One job request -> one reply, shared by /v1/jobs and /v1/batch. *)
let handle_job t body =
  match Protocol.job_request_of_string body with
  | Error msg ->
      reply 400 "bad_request" (Protocol.error_body ~typ:"bad_request" ~message:msg [])
  | Ok preq -> (
      match Protocol.circuit_of preq with
      | Error msg ->
          reply 400 "bad_request"
            (Protocol.error_body ~typ:"bad_request" ~message:msg [])
      | Ok circuit -> submit_and_await t preq circuit)

let job_log_fields (r : reply) (body : string) =
  let base =
    [
      ("outcome", Json.string r.outcome_label);
      ("queue_wait_ns", Json.int r.r_queue_wait_ns);
      ("run_ns", Json.int r.r_run_ns);
    ]
  in
  match Protocol.job_request_of_string body with
  | Error _ -> base
  | Ok preq ->
      ("backend", Json.string preq.Protocol.backend)
      :: ("job", Json.string (Qdt.Job.describe preq.Protocol.job))
      :: (match preq.Protocol.session with
         | Some s -> [ ("session", Json.string s) ]
         | None -> [])
      @ base

let response_of_reply (r : reply) =
  Http.response ~status:r.status
    ~extra_headers:(if r.retry_after then [ ("Retry-After", "1") ] else [])
    r.body

(* Dispatch one parsed request.  Returns the endpoint label, the
   response, and extra JSONL fields for the access log. *)
let dispatch t (req : Http.request) =
  match (req.Http.meth, req.Http.path) with
  | "GET", "/healthz" ->
      ("healthz", Http.response ~status:200 (healthz_body t), [])
  | "GET", "/metrics" ->
      ( "metrics",
        Http.response ~status:200
          ~content_type:"text/plain; version=0.0.4; charset=utf-8"
          (metrics_body t),
        [] )
  | "GET", "/report" ->
      ("report", Http.response ~status:200 (Report.snapshot t.report), [])
  | "POST", "/v1/jobs" ->
      let r = handle_job t req.Http.body in
      ("jobs", response_of_reply r, job_log_fields r req.Http.body)
  | "POST", "/v1/batch" ->
      (* JSONL in, JSONL out, same order; a bad line yields an error
         object on its line and the batch continues. *)
      let lines =
        String.split_on_char '\n' req.Http.body
        |> List.filter (fun l -> String.trim l <> "")
      in
      let replies = List.map (fun line -> handle_job t line) lines in
      let body =
        String.concat "" (List.map (fun r -> r.body ^ "\n") replies)
      in
      let jobs = List.length replies in
      let failed =
        List.length (List.filter (fun r -> r.outcome_label <> "ok") replies)
      in
      ( "batch",
        Http.response ~status:200 ~content_type:"application/x-ndjson" body,
        [ ("jobs", Json.int jobs); ("failed", Json.int failed) ] )
  | "POST", "/v1/sessions/close" -> (
      match Protocol.close_request_of_string req.Http.body with
      | Error msg ->
          ( "sessions_close",
            Http.response ~status:400
              (Protocol.error_body ~typ:"bad_request" ~message:msg []),
            [] )
      | Ok session ->
          let closed = Session_pool.close t.pool ~session in
          ( "sessions_close",
            Http.response ~status:200
              (Printf.sprintf "{\"ok\": true, \"closed\": %b}" closed),
            [ ("session", Json.string session) ] ))
  | _, ("/healthz" | "/metrics" | "/report" | "/v1/jobs" | "/v1/batch"
       | "/v1/sessions/close") ->
      ( "other",
        Http.response ~status:405
          (Protocol.error_body ~typ:"method_not_allowed"
             ~message:(req.Http.meth ^ " not supported here") []),
        [] )
  | _ ->
      ( "other",
        Http.response ~status:404
          (Protocol.error_body ~typ:"not_found"
             ~message:("no such endpoint: " ^ req.Http.path) []),
        [] )

(* ------------------------------------------------------------------ *)
(* Access log                                                          *)
(* ------------------------------------------------------------------ *)

let log_access t ~peer ~(req : Http.request) ~status ~latency_ns ~extra =
  match t.access with
  | None -> ()
  | Some oc ->
      let fields =
        [
          ("ts_unix_ns", Json.int (Clock.epoch_ns + Clock.now_ns ()));
          ("client", Json.string peer);
          ("method", Json.string req.Http.meth);
          ("path", Json.string req.Http.path);
          ("status", Json.int status);
          ("latency_ns", Json.int latency_ns);
        ]
        @ extra
      in
      let b = Buffer.create 256 in
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string b ", ";
          Buffer.add_string b (Json.string k);
          Buffer.add_string b ": ";
          Buffer.add_string b v)
        fields;
      Buffer.add_string b "}\n";
      Mutex.lock t.amu;
      (try
         output_string oc (Buffer.contents b);
         flush oc
       with Sys_error _ -> ());
      Mutex.unlock t.amu

(* ------------------------------------------------------------------ *)
(* Connections                                                         *)
(* ------------------------------------------------------------------ *)

let peer_string = function
  | Unix.ADDR_INET (addr, port) ->
      Printf.sprintf "%s:%d" (Unix.string_of_inet_addr addr) port
  | Unix.ADDR_UNIX path -> "unix:" ^ path

let handle_request t ~peer oc req =
  let t0 = Clock.now_ns () in
  let endpoint, resp, extra =
    Trace.with_span "serve.request" (fun () -> dispatch t req)
  in
  let latency_ns = Clock.now_ns () - t0 in
  (match List.assoc_opt endpoint req_counters with
  | Some c -> Metrics.incr c
  | None -> ());
  (match List.assoc_opt endpoint latency_histograms with
  | Some h -> Metrics.observe h latency_ns
  | None -> ());
  log_access t ~peer ~req ~status:resp.Http.status ~latency_ns ~extra;
  Http.write_response oc resp

let handle_connection t fd peer =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let rec loop () =
    if Atomic.get t.stopping then ()
    else
      match Http.read_request ~max_body_bytes:t.cfg.max_body_bytes ic with
      | Ok None -> ()
      | Error msg ->
          (* Best-effort error response, then drop the connection: after
             a torn request the stream offset is unknowable. *)
          (try
             Http.write_response oc
               (Http.response ~status:400
                  (Protocol.error_body ~typ:"bad_request" ~message:msg []))
           with _ -> ())
      | Ok (Some req) ->
          handle_request t ~peer oc req;
          loop ()
  in
  (try loop () with _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let conn_ids = Atomic.make 0

let spawn_handler t fd peer =
  let key = Atomic.fetch_and_add conn_ids 1 in
  Mutex.lock t.cmu;
  t.handler_count <- t.handler_count + 1;
  Hashtbl.replace t.conns key fd;
  Mutex.unlock t.cmu;
  ignore
    (Thread.create
       (fun () ->
         handle_connection t fd (peer_string peer);
         Mutex.lock t.cmu;
         t.handler_count <- t.handler_count - 1;
         Hashtbl.remove t.conns key;
         Condition.broadcast t.hcond;
         Mutex.unlock t.cmu)
       ())

let rec accept_loop t =
  if not (Atomic.get t.stopping) then begin
    (match Unix.select [ t.lsock; t.wake_r ] [] [] (-1.0) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | ready, _, _ ->
        if (not (List.mem t.wake_r ready)) && List.mem t.lsock ready then begin
          match Unix.accept t.lsock with
          | exception Unix.Unix_error _ -> ()
          | fd, peer -> spawn_handler t fd peer
        end);
    accept_loop t
  end

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let resolve_host host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found -> Unix.inet_addr_loopback)

let start cfg =
  if Sys.os_type = "Unix" then
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let lsock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lsock Unix.SO_REUSEADDR true;
  (try Unix.bind lsock (Unix.ADDR_INET (resolve_host cfg.host, cfg.port))
   with e ->
     Unix.close lsock;
     raise e);
  Unix.listen lsock 64;
  let actual_port =
    match Unix.getsockname lsock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> cfg.port
  in
  let wake_r, wake_w = Unix.pipe () in
  let access =
    Option.map (fun path -> open_out_gen [ Open_creat; Open_append ] 0o644 path)
      cfg.access_log
  in
  let t =
    {
      cfg;
      lsock;
      actual_port;
      wake_r;
      wake_w;
      queue = Queue.create ();
      qmu = Mutex.create ();
      qcond = Condition.create ();
      pool = Session_pool.create ~max_sessions:cfg.max_sessions;
      worker_domains = [];
      accept_thread = None;
      stopping = Atomic.make false;
      stopped = Atomic.make false;
      conns = Hashtbl.create 32;
      cmu = Mutex.create ();
      hcond = Condition.create ();
      handler_count = 0;
      (* One report bracket for the server's lifetime: this is what
         turns metrics and watermarks on, and what GET /report
         snapshots. *)
      report = Report.start ();
      started_ns = Clock.now_ns ();
      access;
      amu = Mutex.create ();
      inflight = Atomic.make 0;
    }
  in
  set_queue_depth 0;
  Metrics.set g_inflight 0.0;
  Metrics.set g_uptime 0.0;
  t.worker_domains <-
    List.init (max 1 cfg.workers) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  t

let stop t =
  if Atomic.compare_and_set t.stopped false true then begin
    Atomic.set t.stopping true;
    (try ignore (Unix.write t.wake_w (Bytes.make 1 'x') 0 1)
     with Unix.Unix_error _ -> ());
    Option.iter Thread.join t.accept_thread;
    (try Unix.close t.lsock with Unix.Unix_error _ -> ());
    (* Shut open connections down (never close here — the handler owns
       its fd) so blocked reads wake with EOF, then wait them out. *)
    Mutex.lock t.cmu;
    Hashtbl.iter
      (fun _ fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ())
      t.conns;
    while t.handler_count > 0 do
      Condition.wait t.hcond t.cmu
    done;
    Mutex.unlock t.cmu;
    (* Poison pills after the handlers drained, so every accepted job
       still executes before the workers exit. *)
    Mutex.lock t.qmu;
    List.iter (fun _ -> Queue.push None t.queue) t.worker_domains;
    Condition.broadcast t.qcond;
    Mutex.unlock t.qmu;
    List.iter Domain.join t.worker_domains;
    Session_pool.close_all t.pool;
    (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
    (try Unix.close t.wake_w with Unix.Unix_error _ -> ());
    Option.iter close_out_noerr t.access;
    ignore (Report.finish t.report)
  end

let run cfg =
  let t = start cfg in
  Printf.printf "qdt serve: listening on %s:%d (workers=%d queue=%d)\n%!"
    cfg.host t.actual_port (max 1 cfg.workers) cfg.queue_depth;
  let stop_requested = Atomic.make false in
  let request_stop _ = Atomic.set stop_requested true in
  let prev_int = Sys.signal Sys.sigint (Sys.Signal_handle request_stop) in
  let prev_term = Sys.signal Sys.sigterm (Sys.Signal_handle request_stop) in
  while not (Atomic.get stop_requested) do
    try Unix.sleepf 0.2 with Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  prerr_endline "qdt serve: shutting down";
  stop t;
  Sys.set_signal Sys.sigint prev_int;
  Sys.set_signal Sys.sigterm prev_term
