(** Blocking keep-alive HTTP client for [qdt serve] — used by the load
    generator, bench e23, and the serve tests.  One [t] is one
    connection; it is not thread-safe (give each client thread its
    own). *)

type t

(** Raises [Unix.Unix_error] when the server cannot be reached. *)
val connect : host:string -> port:int -> t

val close : t -> unit

(** [request c ~meth ~path ~body] — one exchange; returns status,
    headers (names lowercased) and body, or [Error] when the connection
    broke (the caller should {!close} and {!connect} again). *)
val request :
  t ->
  meth:string ->
  path:string ->
  ?body:string ->
  unit ->
  (int * (string * string) list * string, string) result

(** [get c path] / [post c ~path ~body] — status and body only. *)
val get : t -> string -> (int * string, string) result

val post : t -> path:string -> body:string -> (int * string, string) result
