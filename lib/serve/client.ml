(* Minimal blocking HTTP/1.1 client over one keep-alive connection. *)

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
}

let connect ~host ~port =
  let addr =
    try Unix.inet_addr_of_string host
    with Failure _ -> (
      try (Unix.gethostbyname host).Unix.h_addr_list.(0)
      with Not_found -> Unix.inet_addr_loopback)
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (addr, port))
   with e ->
     Unix.close fd;
     raise e);
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let ( let* ) = Result.bind

let read_line ic =
  match input_line ic with
  | exception (End_of_file | Sys_error _) -> Error "connection closed"
  | line ->
      let n = String.length line in
      if n > 0 && line.[n - 1] = '\r' then Ok (String.sub line 0 (n - 1))
      else Ok line

let read_status ic =
  let* line = read_line ic in
  match String.split_on_char ' ' line with
  | _http :: code :: _ -> (
      match int_of_string_opt code with
      | Some status -> Ok status
      | None -> Error ("bad status line: " ^ line))
  | _ -> Error ("bad status line: " ^ line)

let rec read_headers ic acc =
  let* line = read_line ic in
  if line = "" then Ok (List.rev acc)
  else
    match String.index_opt line ':' with
    | None -> read_headers ic acc
    | Some i ->
        let name = String.lowercase_ascii (String.trim (String.sub line 0 i)) in
        let value =
          String.trim (String.sub line (i + 1) (String.length line - i - 1))
        in
        read_headers ic ((name, value) :: acc)

let read_body ic headers =
  let* n =
    match List.assoc_opt "content-length" headers with
    | None -> Ok 0
    | Some v -> (
        match int_of_string_opt (String.trim v) with
        | Some n when n >= 0 -> Ok n
        | _ -> Error ("bad content-length: " ^ v))
  in
  match really_input_string ic n with
  | body -> Ok body
  | exception (End_of_file | Sys_error _) -> Error "connection closed in body"

let request c ~meth ~path ?(body = "") () =
  let* () =
    match
      output_string c.oc
        (Printf.sprintf
           "%s %s HTTP/1.1\r\nHost: qdt\r\nContent-Length: %d\r\n\r\n%s" meth
           path (String.length body) body);
      flush c.oc
    with
    | () -> Ok ()
    | exception (Sys_error _ | Unix.Unix_error _) -> Error "write failed"
  in
  let* status = read_status c.ic in
  let* headers = read_headers c.ic [] in
  let* resp_body = read_body c.ic headers in
  Ok (status, headers, resp_body)

let get c path =
  Result.map (fun (s, _, b) -> (s, b)) (request c ~meth:"GET" ~path ())

let post c ~path ~body =
  Result.map (fun (s, _, b) -> (s, b)) (request c ~meth:"POST" ~path ~body ())
