(** The [qdt serve] engine: a long-running HTTP/1.1 + JSONL simulation
    server with a first-class telemetry plane.

    Architecture (see DESIGN.md, "Serving and the telemetry plane"):
    connection handlers are lightweight threads on the accepting domain
    (they block on sockets, releasing the runtime lock), compute runs
    on a pool of worker domains fed by one bounded job queue.  A full
    queue rejects with 429 + [Retry-After] (backpressure, not
    buffering); each job carries a wall-clock deadline enforced by the
    handler — on expiry the client gets a typed timeout error and the
    worker's eventual result is discarded, so one slow job never wedges
    a worker visible-side.  Jobs naming a session run on warm
    {!Session_pool} engines; jobs without one pay cold create/close per
    request.

    Telemetry: [GET /metrics] (Prometheus exposition incl. queue-depth /
    inflight / active-sessions / uptime gauges, per-endpoint latency
    histograms, watermark peaks), [GET /healthz], [GET /report] (a
    {!Qdt_obs.Report} snapshot of the process so far), a JSONL access
    log, and [serve.*] trace spans nesting queue-wait and run inside
    request handling. *)

type config = {
  host : string;
  port : int;  (** 0 picks an ephemeral port; read it back with {!port} *)
  workers : int;  (** worker domains executing jobs *)
  queue_depth : int;  (** queued jobs beyond which submits get 429 *)
  default_timeout_ms : int;  (** per-job wall-clock budget *)
  max_sessions : int;  (** warm-session cap (LRU eviction past it) *)
  max_body_bytes : int;
  access_log : string option;  (** JSONL access log path *)
}

val default_config : config

type t

(** Bind, spawn the worker domains and the accept loop, and return.
    Raises [Unix.Unix_error] when the address cannot be bound. *)
val start : config -> t

(** The bound port (useful with [port = 0]). *)
val port : t -> int

(** Stop accepting, drop open connections, drain the workers, close the
    warm sessions and the access log.  Idempotent. *)
val stop : t -> unit

(** [run cfg] — {!start}, print a "listening on HOST:PORT" line, then
    serve until SIGINT/SIGTERM; used by the CLI. *)
val run : config -> unit
