(* Minimal HTTP/1.1 — request parsing and response writing over stdlib
   channels.  See http.mli for the (deliberately narrow) scope. *)

type request = {
  meth : string;
  path : string;
  query : string;
  headers : (string * string) list;
  body : string;
}

let header name req = List.assoc_opt name req.headers

(* input_line-alike that requires CRLF-or-LF termination and
   distinguishes "peer closed before any byte" (None) from a torn line.
   SO_RCVTIMEO on the socket surfaces as EAGAIN/EWOULDBLOCK from the
   underlying read — treated as a clean close for the between-requests
   case by the caller. *)
let read_line ic =
  match input_line ic with
  | exception End_of_file -> None
  | line ->
      let n = String.length line in
      if n > 0 && line.[n - 1] = '\r' then Some (String.sub line 0 (n - 1))
      else Some line

let split_target target =
  match String.index_opt target '?' with
  | None -> (target, "")
  | Some i ->
      ( String.sub target 0 i,
        String.sub target (i + 1) (String.length target - i - 1) )

let read_headers ic =
  let rec go acc n =
    if n > 128 then Error "too many headers"
    else
      match read_line ic with
      | None -> Error "connection closed inside headers"
      | Some "" -> Ok (List.rev acc)
      | Some line -> (
          match String.index_opt line ':' with
          | None -> Error (Printf.sprintf "malformed header line %S" line)
          | Some i ->
              let name =
                String.lowercase_ascii (String.trim (String.sub line 0 i))
              in
              let value =
                String.trim
                  (String.sub line (i + 1) (String.length line - i - 1))
              in
              go ((name, value) :: acc) (n + 1))
  in
  go [] 0

let read_request ~max_body_bytes ic =
  match read_line ic with
  | None -> Ok None
  | exception
      Sys_error _
  (* closed under us *)
  ->
      Ok None
  | Some request_line -> (
      match
        String.split_on_char ' ' request_line |> List.filter (fun t -> t <> "")
      with
      | [ meth; target; version ]
        when version = "HTTP/1.1" || version = "HTTP/1.0" -> (
          match read_headers ic with
          | Error e -> Error e
          | Ok headers -> (
              let path, query = split_target target in
              let content_length =
                match List.assoc_opt "content-length" headers with
                | None -> Ok 0
                | Some v -> (
                    match int_of_string_opt (String.trim v) with
                    | Some n when n >= 0 -> Ok n
                    | _ -> Error (Printf.sprintf "bad content-length %S" v))
              in
              match content_length with
              | Error e -> Error e
              | Ok n when n > max_body_bytes ->
                  Error (Printf.sprintf "body of %d bytes exceeds limit %d" n
                           max_body_bytes)
              | Ok n -> (
                  match really_input_string ic n with
                  | body ->
                      Ok
                        (Some
                           {
                             meth = String.uppercase_ascii meth;
                             path;
                             query;
                             headers;
                             body;
                           })
                  | exception End_of_file ->
                      Error "connection closed inside body")))
      | _ -> Error (Printf.sprintf "malformed request line %S" request_line))

type response = {
  status : int;
  content_type : string;
  extra_headers : (string * string) list;
  resp_body : string;
}

let response ?(content_type = "application/json") ?(extra_headers = []) ~status
    body =
  { status; content_type; extra_headers; resp_body = body }

let reason = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 409 -> "Conflict"
  | 413 -> "Payload Too Large"
  | 422 -> "Unprocessable Entity"
  | 429 -> "Too Many Requests"
  | 500 -> "Internal Server Error"
  | 504 -> "Gateway Timeout"
  | _ -> "Unknown"

let write_response oc r =
  let b = Buffer.create (String.length r.resp_body + 256) in
  Buffer.add_string b
    (Printf.sprintf "HTTP/1.1 %d %s\r\n" r.status (reason r.status));
  Buffer.add_string b (Printf.sprintf "Content-Type: %s\r\n" r.content_type);
  Buffer.add_string b
    (Printf.sprintf "Content-Length: %d\r\n" (String.length r.resp_body));
  Buffer.add_string b "Connection: keep-alive\r\n";
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s: %s\r\n" k v))
    r.extra_headers;
  Buffer.add_string b "\r\n";
  Buffer.add_string b r.resp_body;
  output_string oc (Buffer.contents b);
  flush oc
