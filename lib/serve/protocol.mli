(** The JSON job protocol [qdt serve] speaks.

    A job request is one JSON object:
    {v
    { "qasm":       "<OpenQASM 2.0 source>",          // required
      "backend":    "dd",                             // default "auto"
      "job":        { "kind": "sample",               // default full_state
                      "seed": 0, "shots": 100 },
      "session":    "alice",                          // optional warm session
      "timeout_ms": 2000,                             // per-job override
      "delay_ms":   0 }                               // test knob: worker
                                                      // sleeps before running
    v}
    Job kinds mirror {!Qdt.Job.t}: [full_state], [amplitude] (field
    [index]), [sample] (fields [seed], [shots]), [expectation_z] (fields
    [seed], [qubit]).  [delay_ms] exists so tests and the load generator
    can provoke queueing, backpressure, and timeouts deterministically.

    Responses are one JSON object per job: [{"ok": true, ...}] with the
    result payload, per-job stats, and queue-wait/run timings — or
    [{"ok": false, "error": {"type": ..., "message": ...}}]. *)

type job_request = {
  qasm : string;
  backend : string;
  job : Qdt.Job.t;
  session : string option;
  timeout_ms : int option;
  delay_ms : int;
}

(** Parse a request body.  The error string is user-facing (it goes into
    the 400 response). *)
val job_request_of_string : string -> (job_request, string) result

(** Parse the QASM source of an already-parsed request. *)
val circuit_of : job_request -> (Qdt_circuit.Circuit.t, string) result

(** Success response body.  Dense states render sparsely (entries with
    probability above 1e-12, capped at 4096) so a 20-qubit state does
    not produce a multi-megabyte response. *)
val ok_body :
  job:Qdt.Job.t ->
  payload:Qdt.Job.result ->
  stats:Qdt.Backend.stats ->
  queue_wait_ns:int ->
  run_ns:int ->
  string

(** [error_body ~typ ~message extra] — failure response body; [extra]
    fields are appended inside the ["error"] object and must be
    pre-rendered JSON values. *)
val error_body : typ:string -> message:string -> (string * string) list -> string

(** Body of the [POST /v1/sessions/close] request: the session name. *)
val close_request_of_string : string -> (string, string) result
