(** Named warm sessions behind the server: maps a client-chosen session
    name to a persistent {!Qdt.Backend.SESSION} engine, so repeat
    submissions from one client hit the warm unique tables, compute
    caches, and buffers of PR 9's session layer.

    Engines are not domain-safe, so the pool serialises submits per
    entry with a mutex — two server workers submitting to the same
    session run one after the other, while submits to different
    sessions proceed in parallel.  The pool holds at most
    [max_sessions] entries; creating one past the cap evicts the least
    recently used (closing its engine).  All operations are safe to
    call from any domain or thread. *)

type t

type error =
  | Unknown_backend of { requested : string; suggestion : string option }
  | Backend_mismatch of { session : string; existing : string; requested : string }
      (** the named session is already open on a different backend *)

val error_message : error -> string

val create : max_sessions:int -> t

(** Open sessions right now. *)
val size : t -> int

(** [submit t ~session ~backend c job] — run [job] on the named warm
    session, creating the session (on [backend]) on first use.  The
    inner result is the engine's own outcome — including the typed
    session-closed error when a concurrent {!close} won the race. *)
val submit :
  t ->
  session:string ->
  backend:string ->
  Qdt_circuit.Circuit.t ->
  Qdt.Job.t ->
  (Qdt.Job.result Qdt.Backend.outcome, error) result

(** One-shot submit: a fresh engine per call (create → submit → close) —
    the cold path a request without a session takes. *)
val submit_once :
  backend:string ->
  Qdt_circuit.Circuit.t ->
  Qdt.Job.t ->
  (Qdt.Job.result Qdt.Backend.outcome, error) result

(** [close t ~session] — close and drop the named session; [false] when
    it was not open.  Waits for an in-flight submit on the entry. *)
val close : t -> session:string -> bool

(** Close every session (server shutdown). *)
val close_all : t -> unit
