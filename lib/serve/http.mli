(** Minimal HTTP/1.1 on stdlib channels — just enough protocol for
    [qdt serve] and its client: one request/response exchange over a
    keep-alive connection, [Content-Length] bodies, no chunked encoding,
    no TLS.  The point is zero new dependencies, not generality. *)

type request = {
  meth : string;  (** uppercase, e.g. ["GET"] *)
  path : string;  (** path without the query string *)
  query : string;  (** raw query string ([""] when absent) *)
  headers : (string * string) list;  (** names lowercased *)
  body : string;
}

(** [header name req] — first header named [name] (give it lowercased). *)
val header : string -> request -> string option

(** [read_request ~max_body_bytes ic] — the next request on a keep-alive
    connection.  [Ok None] when the peer closed (or went idle past the
    socket timeout) between requests — the clean end of a connection;
    [Error] on a malformed or oversized request (the connection should
    be dropped after one best-effort error response). *)
val read_request :
  max_body_bytes:int -> in_channel -> (request option, string) result

type response = {
  status : int;
  content_type : string;
  extra_headers : (string * string) list;
  resp_body : string;
}

val response :
  ?content_type:string ->
  ?extra_headers:(string * string) list ->
  status:int ->
  string ->
  response

(** Standard reason phrase for the status codes this server emits. *)
val reason : int -> string

(** [write_response oc resp] — serialise with [Content-Length] and
    [Connection: keep-alive], and flush. *)
val write_response : out_channel -> response -> unit
