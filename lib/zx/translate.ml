open Qdt_circuit

type wire = { mutable vertex : int; mutable pending_h : bool }

(* Append a fresh spider of [kind] on qubit [q]'s wire, consuming the
   pending Hadamard, and make it the wire's new end. *)
let append_spider d wires q kind phase =
  let v = Diagram.add_vertex d kind phase in
  let w = wires.(q) in
  Diagram.connect d w.vertex v (if w.pending_h then Diagram.Had else Diagram.Simple);
  w.vertex <- v;
  w.pending_h <- false;
  v

let gate_phase gate =
  match gate with
  | Gate.Z | Gate.X -> Phase.pi
  | Gate.S -> Phase.half_pi
  | Gate.Sdg -> Phase.of_rational (-1) 2
  | Gate.T -> Phase.quarter_pi
  | Gate.Tdg -> Phase.of_rational (-1) 4
  | Gate.Rz theta | Gate.Rx theta | Gate.Phase theta -> Phase.of_radians theta
  | Gate.I -> Phase.zero
  | _ -> invalid_arg "Translate: gate outside the ZX basis"

let sqrt2 = Qdt_linalg.Cx.of_float (Float.sqrt 2.0)

let translate_instruction d wires instr =
  match instr with
  | Circuit.Barrier _ -> ()
  | Circuit.Measure _ | Circuit.Reset _ | Circuit.If _ ->
      invalid_arg "Translate.of_circuit: circuit measures or resets"
  | Circuit.Swap { controls = []; a; b } ->
      (* only connectivity matters: cross the wires *)
      let wa = wires.(a) in
      wires.(a) <- wires.(b);
      wires.(b) <- wa
  | Circuit.Apply { gate = Gate.H; controls = []; target } ->
      wires.(target).pending_h <- not wires.(target).pending_h
  | Circuit.Apply { gate = Gate.I; controls = []; _ } -> ()
  | Circuit.Apply
      { gate = (Gate.Z | Gate.S | Gate.Sdg | Gate.T | Gate.Tdg | Gate.Rz _ | Gate.Phase _) as gate;
        controls = [];
        target } ->
      (* a phase-θ Z spider is diag(1, e^{iθ}) = Phase(θ); Rz(θ) carries an
         extra global e^{−iθ/2} *)
      (match gate with
      | Gate.Rz theta -> Diagram.scale_scalar d (Qdt_linalg.Cx.exp_i (-.theta /. 2.0))
      | _ -> ());
      ignore (append_spider d wires target Diagram.Z (gate_phase gate))
  | Circuit.Apply { gate = (Gate.X | Gate.Rx _) as gate; controls = []; target } ->
      (match gate with
      | Gate.Rx theta -> Diagram.scale_scalar d (Qdt_linalg.Cx.exp_i (-.theta /. 2.0))
      | _ -> ());
      ignore (append_spider d wires target Diagram.X (gate_phase gate))
  | Circuit.Apply { gate = Gate.Z; controls = [ ctl ]; target } ->
      (* CZ: two Z spiders joined by a Hadamard edge; the graph tensor is
         CZ/√2, so compensate *)
      Diagram.scale_scalar d sqrt2;
      let vc = append_spider d wires ctl Diagram.Z Phase.zero in
      let vt = append_spider d wires target Diagram.Z Phase.zero in
      Diagram.connect d vc vt Diagram.Had
  | Circuit.Apply { gate = Gate.X; controls = [ ctl ]; target } ->
      (* CX: Z spider on the control, X spider on the target; graph tensor
         is CX/√2 *)
      Diagram.scale_scalar d sqrt2;
      let vc = append_spider d wires ctl Diagram.Z Phase.zero in
      let vt = append_spider d wires target Diagram.X Phase.zero in
      Diagram.connect d vc vt Diagram.Simple
  | Circuit.Apply _ | Circuit.Swap _ ->
      invalid_arg "Translate: instruction outside the ZX basis (lower first)"

let of_lowered c =
  let n = Circuit.num_qubits c in
  let d = Diagram.create () in
  let wires =
    Array.init n (fun _ -> { vertex = Diagram.add_input d; pending_h = false })
  in
  List.iter (translate_instruction d wires) (Circuit.instructions c);
  Array.iter
    (fun w ->
      let out = Diagram.add_output d in
      Diagram.connect d w.vertex out (if w.pending_h then Diagram.Had else Diagram.Simple))
    wires;
  d

let of_circuit c =
  if not (Circuit.is_unitary_only c) then
    invalid_arg "Translate.of_circuit: circuit measures or resets";
  of_lowered (Qdt_compile.Decompose.lower ~basis:Qdt_compile.Decompose.Zx_ready c)

let equivalence_diagram c1 c2 =
  Diagram.compose (of_circuit c1) (Diagram.adjoint (of_circuit c2))
