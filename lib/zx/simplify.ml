type report = {
  fusions : int;
  identities : int;
  local_complementations : int;
  pivots : int;
  rounds : int;
}

(* Observability: per-rule rewrite counters plus a span per fixpoint
   round, so a trace shows which rule family dominated each round. *)
let m_identities = Qdt_obs.Metrics.counter "zx.identities_removed"
let m_lcomps = Qdt_obs.Metrics.counter "zx.local_complementations"
let m_fusions = Qdt_obs.Metrics.counter "zx.fusions"
let m_pivots = Qdt_obs.Metrics.counter "zx.pivots"
let m_rounds = Qdt_obs.Metrics.counter "zx.rounds"
let w_spiders = Qdt_obs.Watermark.watermark "zx.peak_spiders"
let w_edges = Qdt_obs.Watermark.watermark "zx.peak_edges"

let interior_clifford_simp d =
  Qdt_obs.Trace.with_span "zx.simplify" @@ fun () ->
  Rules.to_graph_like d;
  let fusions = ref 0
  and identities = ref 0
  and lcomps = ref 0
  and pivs = ref 0
  and rounds = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    incr rounds;
    Qdt_obs.Metrics.incr m_rounds;
    Qdt_obs.Watermark.observe_int w_spiders (Diagram.num_vertices d);
    Qdt_obs.Watermark.observe_int w_edges (Diagram.num_edges d);
    Qdt_obs.Trace.emit_begin "zx.round";
    let i = Qdt_obs.Trace.with_span "zx.identities" (fun () -> Rules.remove_identities d) in
    let l = Qdt_obs.Trace.with_span "zx.local-comp" (fun () -> Rules.local_complementations d) in
    let f1 = Qdt_obs.Trace.with_span "zx.fuse" (fun () -> Rules.fuse_spiders d) in
    let p = Qdt_obs.Trace.with_span "zx.pivot" (fun () -> Rules.pivots d) in
    let f2 = Qdt_obs.Trace.with_span "zx.fuse" (fun () -> Rules.fuse_spiders d) in
    Rules.to_graph_like d;
    Qdt_obs.Trace.emit_end "zx.round";
    Qdt_obs.Metrics.add m_identities i;
    Qdt_obs.Metrics.add m_lcomps l;
    Qdt_obs.Metrics.add m_fusions (f1 + f2);
    Qdt_obs.Metrics.add m_pivots p;
    identities := !identities + i;
    lcomps := !lcomps + l;
    pivs := !pivs + p;
    fusions := !fusions + f1 + f2;
    continue_ := i + l + p > 0
  done;
  {
    fusions = !fusions;
    identities = !identities;
    local_complementations = !lcomps;
    pivots = !pivs;
    rounds = !rounds;
  }

let full_reduce = interior_clifford_simp

let t_count d =
  List.length
    (List.filter (fun v -> not (Phase.is_clifford (Diagram.phase d v))) (Diagram.spiders d))

let clifford_spider_count d =
  List.length
    (List.filter (fun v -> Phase.is_clifford (Diagram.phase d v)) (Diagram.spiders d))

let wire_targets d =
  (* For each input: the vertex at the other end of its wire and whether
     the edge is plain. *)
  let ins = Diagram.inputs d in
  Array.map
    (fun i ->
      match Diagram.neighbors d i with
      | [ (w, (1, 0)) ] -> Some (w, true)
      | [ (w, (0, 1)) ] -> Some (w, false)
      | _ -> None)
    ins

let is_identity_up_to_permutation d =
  if Diagram.spiders d <> [] then None
  else begin
    let outs = Diagram.outputs d in
    let out_port = Hashtbl.create 8 in
    Array.iteri (fun q v -> Hashtbl.replace out_port v q) outs;
    let targets = wire_targets d in
    let n = Array.length targets in
    if Array.length outs <> n then None
    else begin
      let perm = Array.make n (-1) in
      let ok = ref true in
      Array.iteri
        (fun q target ->
          match target with
          | Some (w, true) -> (
              match Hashtbl.find_opt out_port w with
              | Some p -> perm.(q) <- p
              | None -> ok := false)
          | Some (_, false) | None -> ok := false)
        targets;
      if !ok && Array.for_all (fun p -> p >= 0) perm then Some perm else None
    end
  end

let is_identity d =
  match is_identity_up_to_permutation d with
  | Some perm ->
      let ok = ref true in
      Array.iteri (fun q p -> if q <> p then ok := false) perm;
      !ok
  | None -> false
