(* Job descriptors: the unit of work a session engine executes.  Plain
   data by design — the future `qdt serve` queue holds exactly these. *)

type t =
  | Full_state
  | Amplitude of int
  | Sample of { seed : int; shots : int }
  | Expectation_z of { seed : int; qubit : int }

type result =
  | State of Qdt_linalg.Vec.t
  | Amplitude_of of Qdt_linalg.Cx.t
  | Counts of (int * int) list
  | Expectation of float

let describe = function
  | Full_state -> "full-state"
  | Amplitude k -> Printf.sprintf "amplitude{k=%d}" k
  | Sample { seed; shots } -> Printf.sprintf "sample{seed=%d; shots=%d}" seed shots
  | Expectation_z { seed; qubit } ->
      Printf.sprintf "expectation-z{seed=%d; qubit=%d}" seed qubit
