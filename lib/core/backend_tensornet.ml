(* Backend adapter: full tensor-network contraction (Section IV).  Computes
   single quantities by contraction; no sampling, no measurements.  The
   session wrapper is stateless: a network is built and contracted per
   job, the session carries only the label and liveness. *)

module Circuit = Qdt_circuit.Circuit
module Tn = Qdt_tensornet.Circuit_tn

let ( let* ) r f = Result.bind r f

module Session = struct
  let name = "tensor-network"

  (* Full-state contraction materialises 2^n outputs; keep the dense limit. *)
  let capabilities =
    {
      Backend.full_state = true;
      amplitude = true;
      sample = false;
      expectation_z = true;
      supports_nonunitary = false;
      clifford_only = false;
      max_qubits = Some 24;
      dynamic = false;
    }

  type t = { label : string option; mutable closed : bool }

  let create ?label () = { label; closed = false }
  let close t = t.closed <- true
  let admit operation c = Backend.admit ~name ~caps:capabilities ~operation c
  let stats m = Backend.base_stats name m

  let submit t c job =
    if t.closed then Backend.session_closed ~backend:name job
    else
      let session = t.label in
      match job with
      | Job.Full_state ->
          let* () = admit Backend.Full_state c in
          let (state, _contraction), m =
            Backend.timed ~span:"tn.simulate" ?session (fun () ->
                Tn.statevector (Tn.of_circuit c))
          in
          Ok (Job.State state, stats m)
      | Job.Amplitude k ->
          let* () = admit Backend.Amplitude c in
          let (amp, _contraction), m =
            Backend.timed ~span:"tn.amplitude" ?session (fun () ->
                Tn.amplitude (Tn.of_circuit c) k)
          in
          Ok (Job.Amplitude_of amp, stats m)
      | Job.Sample _ ->
          Backend.unsupported ~backend:name ~operation:Backend.Sample
            (Printf.sprintf
               "tensor-network contraction yields single quantities, not samples \
                (circuit on %d qubits)"
               (Circuit.num_qubits c))
      | Job.Expectation_z { seed = _; qubit } ->
          let* () = admit Backend.Expectation_z c in
          let (v, _contraction), m =
            Backend.timed ~span:"tn.expectation-z" ?session (fun () ->
                Tn.expectation_z c qubit)
          in
          Ok (Job.Expectation v, stats m)
end

include Backend.Of_session (Session)
