(* Backend adapter: full tensor-network contraction (Section IV).  Computes
   single quantities by contraction; no sampling, no measurements. *)

module Circuit = Qdt_circuit.Circuit
module Tn = Qdt_tensornet.Circuit_tn

let name = "tensor-network"

(* Full-state contraction materialises 2^n outputs; keep the dense limit. *)
let capabilities =
  {
    Backend.full_state = true;
    amplitude = true;
    sample = false;
    expectation_z = true;
    supports_nonunitary = false;
    clifford_only = false;
    max_qubits = Some 24;
    dynamic = false;
  }

let admit operation c = Backend.admit ~name ~caps:capabilities ~operation c

let ( let* ) r f = Result.bind r f

let stats m = Backend.base_stats name m

let simulate c =
  let* () = admit Backend.Full_state c in
  let (state, _contraction), m =
    Backend.timed ~span:"tn.simulate" (fun () -> Tn.statevector (Tn.of_circuit c))
  in
  Ok (state, stats m)

let amplitude c k =
  let* () = admit Backend.Amplitude c in
  let (amp, _contraction), m =
    Backend.timed ~span:"tn.amplitude" (fun () -> Tn.amplitude (Tn.of_circuit c) k)
  in
  Ok (amp, stats m)

let sample ?seed ~shots c =
  ignore seed;
  ignore shots;
  Backend.unsupported ~backend:name ~operation:Backend.Sample
    (Printf.sprintf
       "tensor-network contraction yields single quantities, not samples \
        (circuit on %d qubits)"
       (Circuit.num_qubits c))

let expectation_z ?seed c q =
  ignore seed;
  let* () = admit Backend.Expectation_z c in
  let (v, _contraction), m =
    Backend.timed ~span:"tn.expectation-z" (fun () -> Tn.expectation_z c q)
  in
  Ok (v, stats m)
