(** Quantum Design Tools — umbrella API.

    One entry point over the four data structures the paper surveys
    (arrays, decision diagrams, tensor networks, ZX-calculus) and the
    three design tasks built on them (simulation, compilation,
    verification).  The sub-libraries remain directly usable; this module
    adds uniform front doors and re-exports.

    {[
      let bell = Qdt.Circuit.Generators.bell in
      let state = Qdt.simulate ~backend:Qdt.Decision_diagrams bell in
      ...
    ]} *)

(** {1 Re-exports} *)

module Linalg = Qdt_linalg
module Circuit = Qdt_circuit
module Arrays = Qdt_arraysim
module Dd = Qdt_dd
module Tensornet = Qdt_tensornet
module Zx = Qdt_zx
module Compile = Qdt_compile
module Verify = Qdt_verify
module Stabilizer = Qdt_stabilizer

(** Observability: {!Qdt_obs.Metrics} (counters / gauges / histograms),
    {!Qdt_obs.Trace} (nested spans, Chrome-trace and JSONL exporters) and
    {!Qdt_obs.Clock} (the shared monotonic clock).  Both subsystems are
    off by default and cost one flag check per instrumentation site until
    enabled. *)
module Obs = Qdt_obs

(** Multicore execution substrate: the reusable domain pool behind the
    chunked statevector kernels, parallel shot/trajectory loops, and
    task-parallel tensor-network slicing.  [Par.set_jobs 1] (or
    [QDT_JOBS=1]) disables it — output is then bit-identical to a serial
    build. *)
module Par = Qdt_par

(** {1 The backend layer}

    {!Backend} defines the [BACKEND] module type (capability record,
    unified stats record, typed unsupported-operation errors);
    {!Registry} holds the registered adapters (["arrays"],
    ["decision-diagrams"], ["tensor-network"], ["mps"], ["stabilizer"],
    ["auto"]); {!Auto} is the portfolio dispatcher that picks a backend
    per circuit and logs its choice in the stats record.

    {[
      let (module B : Qdt.Backend.BACKEND) =
        Option.get (Qdt.Registry.find "auto")
      in
      match B.sample ~shots:100 circuit with
      | Ok (counts, stats) -> (* stats.backend says what actually ran *)
      | Error e -> prerr_endline (Qdt.Backend.error_to_string e)
    ]} *)

module Backend = Backend

(** First-class job descriptors for the session layer: one value names a
    simulation request ([Full_state], [Amplitude], [Sample],
    [Expectation_z]) plus its per-job knobs.  A {!Backend.SESSION}
    engine executes jobs against persistent per-session state — the DD
    engine keeps one package (unique table, compute caches) across jobs,
    arrays/stabilizer reuse their buffers when qubit counts match.

    {[
      let (module S : Qdt.Backend.SESSION) =
        Option.get (Qdt.Registry.find_session "decision-diagrams")
      in
      let s = S.create ~label:(Qdt.Backend.fresh_session_label ()) () in
      let r1 = S.submit s circuit Qdt.Job.Full_state in
      let r2 = S.submit s circuit (Qdt.Job.Sample { seed = 0; shots = 100 }) in
      S.close s
    ]} *)
module Job = Job

module Registry = Registry
module Auto = Backend_auto

(** Static/dynamic shot-execution split shared by the backend adapters:
    static circuits keep the simulate-once-then-sample fast path, dynamic
    circuits (mid-circuit measurement, reset, classical control)
    re-execute per shot with a live classical register. *)
module Shot_engine = Shot_engine

(** Cheap circuit-feature analysis (qubits, depth, T-count, arity
    histogram, ...) shared by the [auto] router and run reports. *)
module Features = Features

(** {1 Simulation}

    The historical closed-variant front door, kept as a shim over the
    registry: unsupported combinations raise [Invalid_argument] as they
    always did (the registry API returns typed errors instead). *)

type backend =
  | Arrays_backend          (** dense state vector (Section II) *)
  | Decision_diagrams       (** QMDD simulation (Section III) *)
  | Tensor_network          (** full-state TN contraction (Section IV) *)
  | Mps                     (** matrix-product-state simulation (Section IV) *)
  | Stabilizer_backend
      (** tableau simulation — Clifford circuits only; supports
          {!sample} and {!expectation_z} but not amplitudes *)
  | Auto_backend
      (** portfolio: routes each call to the backend the selection
          heuristics favour (see {!Auto}) *)

val backend_name : backend -> string
val all_backends : backend list

(** [backend_module b] — the registered adapter behind variant [b]. *)
val backend_module : backend -> Backend.t

(** [simulate ~backend c] — final state of the unitary circuit [c] from
    [|0…0⟩]; all backends agree up to numerical noise. *)
val simulate : backend:backend -> Qdt_circuit.Circuit.t -> Qdt_linalg.Vec.t

(** [amplitude ~backend c k] — ⟨k|C|0…0⟩ without necessarily building the
    whole state (TN and MPS compute just the one amplitude). *)
val amplitude : backend:backend -> Qdt_circuit.Circuit.t -> int -> Qdt_linalg.Cx.t

(** [sample ~backend ?seed ~shots c] — measurement counts (array, DD, MPS
    and stabilizer backends). *)
val sample :
  backend:backend -> ?seed:int -> shots:int -> Qdt_circuit.Circuit.t -> (int * int) list

(** [expectation_z ~backend ?seed c q] — [⟨Z_q⟩] of the final state;
    [seed] drives mid-circuit measurement collapse where supported. *)
val expectation_z : backend:backend -> ?seed:int -> Qdt_circuit.Circuit.t -> int -> float

(** {1 Compilation} *)

type compiled = {
  circuit : Qdt_circuit.Circuit.t;
  added_swaps : int;
  removed_gates : int;
  initial_layout : int array;
  final_layout : int array;
}

(** [compile ?optimize ~coupling c] — lower, route onto [coupling], and
    (by default) peephole-optimize. *)
val compile : ?optimize:bool -> coupling:Qdt_compile.Coupling.t -> Qdt_circuit.Circuit.t -> compiled

(** {1 Verification} *)

type checker =
  | Check_arrays
  | Check_dd
  | Check_dd_alternating
  | Check_zx
  | Check_tn
  | Check_simulation

val checker_name : checker -> string
val all_checkers : checker list

(** [equivalent ~checker c1 c2]. *)
val equivalent :
  checker:checker -> Qdt_circuit.Circuit.t -> Qdt_circuit.Circuit.t -> Qdt_verify.Equiv.verdict
