(* Backend adapter: Aaronson–Gottesman stabilizer tableau (ref [11]).
   Clifford circuits only; no amplitude access, but thousands of qubits.
   A session keeps the last tableau and reuses its row allocations via
   [Tableau.reset] when the next job has the same qubit count. *)

module Circuit = Qdt_circuit.Circuit
module Tableau = Qdt_stabilizer.Tableau

let ( let* ) r f = Result.bind r f
let w_tableau = Qdt_obs.Watermark.watermark "stabilizer.peak_tableau_bytes"

module Session = struct
  let name = "stabilizer"

  let capabilities =
    {
      Backend.full_state = false;
      amplitude = false;
      sample = true;
      expectation_z = true;
      supports_nonunitary = true;
      clifford_only = true;
      max_qubits = None;
      dynamic = true;
    }

  type t = {
    label : string option;
    mutable closed : bool;
    mutable tab : Tableau.t option;  (** reused when the qubit count matches *)
  }

  let create ?label () = { label; closed = false; tab = None }
  let close t = t.closed <- true

  let admit operation c =
    let* () = Backend.admit ~name ~caps:capabilities ~operation c in
    if Tableau.supports c then Ok ()
    else
      Backend.unsupported ~backend:name ~operation
        "circuit contains non-Clifford gates"

  let acquire t n =
    match t.tab with
    | Some tab when Tableau.num_qubits tab = n ->
        Tableau.reset tab;
        tab
    | _ ->
        let tab = Tableau.create n in
        t.tab <- Some tab;
        tab

  (* Identical to [Tableau.run] except the tableau comes from [acquire],
     so warm and cold sessions see the same RNG stream and outcomes. *)
  let run_in t ~seed c =
    let tab = acquire t (Circuit.num_qubits c) in
    let rng = Random.State.make [| seed |] in
    let clbits = Array.make (max 1 (Circuit.num_clbits c)) 0 in
    List.iter
      (fun instr -> Tableau.apply_instruction tab instr ~rng ~clbits)
      (Circuit.instructions c);
    (tab, clbits)

  let stats_of m tab =
    Qdt_obs.Watermark.observe_int w_tableau (Tableau.memory_bytes tab);
    {
      (Backend.base_stats name m) with
      Backend.tableau_bytes = Some (Tableau.memory_bytes tab);
    }

  (* One shot of a dynamic circuit on a fresh tableau. *)
  let run_shot c ~rng =
    let tab = Tableau.create (Circuit.num_qubits c) in
    let clbits = Array.make (max 1 (Circuit.num_clbits c)) 0 in
    List.iter
      (fun instr -> Tableau.apply_instruction tab instr ~rng ~clbits)
      (Circuit.instructions c);
    let key =
      if Circuit.has_measure c then Circuit.creg_value clbits
      else begin
        let key = ref 0 in
        for q = 0 to Circuit.num_qubits c - 1 do
          key := !key lor (Tableau.measure tab ~rng q lsl q)
        done;
        !key
      end
    in
    (tab, key)

  let submit t c job =
    if t.closed then Backend.session_closed ~backend:name job
    else
      let session = t.label in
      match job with
      | Job.Full_state ->
          ignore (Circuit.num_qubits c);
          Backend.unsupported ~backend:name ~operation:Backend.Full_state
            "stabilizer tableaus have no amplitude access"
      | Job.Amplitude _ ->
          ignore (Circuit.num_qubits c);
          Backend.unsupported ~backend:name ~operation:Backend.Amplitude
            "stabilizer tableaus have no amplitude access"
      | Job.Sample { seed; shots } ->
          let* () = admit Backend.Sample c in
          let (tab, counts), m =
            Backend.timed ~span:"stabilizer.sample" ?session (fun () ->
                match Shot_engine.plan c with
                | Shot_engine.Static_unitary ->
                    let tab, _clbits = run_in t ~seed c in
                    (tab, Tableau.sample ~seed:(seed + 1) tab ~shots)
                | Shot_engine.Static_final { unitary; map } ->
                    let tab, _clbits = run_in t ~seed unitary in
                    ( tab,
                      Shot_engine.remap_counts ~map
                        (Tableau.sample ~seed:(seed + 1) tab ~shots) )
                | Shot_engine.Dynamic ->
                    (* [run_shot] builds a fresh tableau per shot — reentrant,
                       so the shots parallelise across domains.  Stats only
                       need the tableau footprint, which depends on the qubit
                       count alone, so an [acquire]d tableau stands in for
                       "the last shot's" (a cross-domain [last] ref would
                       race). *)
                    let counts =
                      Shot_engine.sample_per_shot_parallel ~seed ~shots
                        ~run_shot:(fun ~rng -> snd (run_shot c ~rng))
                    in
                    (acquire t (Circuit.num_qubits c), counts))
          in
          Ok (Job.Counts counts, stats_of m tab)
      | Job.Expectation_z { seed; qubit } ->
          let* () = admit Backend.Expectation_z c in
          let (tab, v), m =
            Backend.timed ~span:"stabilizer.expectation-z" ?session (fun () ->
                let tab, _clbits = run_in t ~seed c in
                (tab, Float.of_int (Tableau.expectation_z tab qubit)))
          in
          Ok (Job.Expectation v, stats_of m tab)
end

include Backend.Of_session (Session)
