(* Backend adapter: Aaronson–Gottesman stabilizer tableau (ref [11]).
   Clifford circuits only; no amplitude access, but thousands of qubits. *)

module Circuit = Qdt_circuit.Circuit
module Tableau = Qdt_stabilizer.Tableau

let name = "stabilizer"

let capabilities =
  {
    Backend.full_state = false;
    amplitude = false;
    sample = true;
    expectation_z = true;
    supports_nonunitary = true;
    clifford_only = true;
    max_qubits = None;
    dynamic = true;
  }

let ( let* ) r f = Result.bind r f

let admit operation c =
  let* () = Backend.admit ~name ~caps:capabilities ~operation c in
  if Tableau.supports c then Ok ()
  else
    Backend.unsupported ~backend:name ~operation
      "circuit contains non-Clifford gates"

let w_tableau = Qdt_obs.Watermark.watermark "stabilizer.peak_tableau_bytes"

let stats_of m tab =
  Qdt_obs.Watermark.observe_int w_tableau (Tableau.memory_bytes tab);
  {
    (Backend.base_stats name m) with
    Backend.tableau_bytes = Some (Tableau.memory_bytes tab);
  }

let simulate c =
  ignore (Circuit.num_qubits c);
  Backend.unsupported ~backend:name ~operation:Backend.Full_state
    "stabilizer tableaus have no amplitude access"

let amplitude c k =
  ignore (Circuit.num_qubits c);
  ignore k;
  Backend.unsupported ~backend:name ~operation:Backend.Amplitude
    "stabilizer tableaus have no amplitude access"

(* One shot of a dynamic circuit on a fresh tableau. *)
let run_shot c ~rng =
  let tab = Tableau.create (Circuit.num_qubits c) in
  let clbits = Array.make (max 1 (Circuit.num_clbits c)) 0 in
  List.iter
    (fun instr -> Tableau.apply_instruction tab instr ~rng ~clbits)
    (Circuit.instructions c);
  let key =
    if Circuit.has_measure c then Circuit.creg_value clbits
    else begin
      let key = ref 0 in
      for q = 0 to Circuit.num_qubits c - 1 do
        key := !key lor (Tableau.measure tab ~rng q lsl q)
      done;
      !key
    end
  in
  (tab, key)

let sample ?(seed = 0) ~shots c =
  let* () = admit Backend.Sample c in
  let (tab, counts), m =
    Backend.timed ~span:"stabilizer.sample" (fun () ->
        match Shot_engine.plan c with
        | Shot_engine.Static_unitary ->
            let tab, _clbits = Tableau.run ~seed c in
            (tab, Tableau.sample ~seed:(seed + 1) tab ~shots)
        | Shot_engine.Static_final { unitary; map } ->
            let tab, _clbits = Tableau.run ~seed unitary in
            (tab, Shot_engine.remap_counts ~map (Tableau.sample ~seed:(seed + 1) tab ~shots))
        | Shot_engine.Dynamic ->
            (* [run_shot] builds a fresh tableau per shot — reentrant, so
               the shots parallelise across domains.  Stats only need the
               tableau footprint, which depends on the qubit count alone,
               so a fresh tableau stands in for "the last shot's" (a
               cross-domain [last] ref would race). *)
            let counts =
              Shot_engine.sample_per_shot_parallel ~seed ~shots
                ~run_shot:(fun ~rng -> snd (run_shot c ~rng))
            in
            (Tableau.create (Circuit.num_qubits c), counts))
  in
  Ok (counts, stats_of m tab)

let expectation_z ?(seed = 0) c q =
  let* () = admit Backend.Expectation_z c in
  let (tab, v), m =
    Backend.timed ~span:"stabilizer.expectation-z" (fun () ->
        let tab, _clbits = Tableau.run ~seed c in
        (tab, Float.of_int (Tableau.expectation_z tab q)))
  in
  Ok (v, stats_of m tab)
