(** Cheap circuit-feature analysis: the per-circuit predictors from
    Burgholzer/Ploier/Wille, "Tensor Networks or Decision Diagrams?
    Guidelines ..." (2023), shared by the [auto] portfolio router and
    {!Qdt_obs.Report} artifacts. *)

type t = {
  qubits : int;
  clbits : int;
  gates : int;
  depth : int;
  two_qubit : int;
  t_count : int;
  clifford : bool;  (** every gate is Clifford *)
  nn_fraction : float;
      (** fraction of two-qubit gates acting on adjacent qubits (1.0 when
          there are none) *)
  dynamic : bool;
  measurements : int;
  resets : int;
  conditionals : int;
  arity_hist : int array;
      (** slot [a] counts instructions touching [a] qubits; the last slot
          ({!max_arity}) absorbs higher arities *)
}

val max_arity : int

(** One walk over the instruction list; cost linear in circuit size. *)
val analyze : Qdt_circuit.Circuit.t -> t

(** T-count substantial in absolute terms or relative to gate count —
    the regime where decision diagrams shine. *)
val t_heavy : t -> bool

(** Self-contained JSON object (the report's "circuit" section). *)
val to_json : t -> string
