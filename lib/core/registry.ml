(* The backend registry: the single place the CLI, bench harness, examples
   and tests discover simulation backends.  Built-in backends are
   registered at module initialisation; [register] lets future backends
   plug in without touching any consumer. *)

let table : (string, Backend.t) Hashtbl.t = Hashtbl.create 8
let order : string list ref = ref []

let register (module B : Backend.BACKEND) =
  if not (Hashtbl.mem table B.name) then order := B.name :: !order;
  Hashtbl.replace table B.name (module B : Backend.BACKEND)

let find name : Backend.t option = Hashtbl.find_opt table name

let names () = List.rev !order

let all () =
  List.filter_map (fun name -> Hashtbl.find_opt table name) (names ())

let capabilities_of name =
  Option.map (fun (module B : Backend.BACKEND) -> B.capabilities) (find name)

let () =
  List.iter register
    [
      (module Backend_arrays : Backend.BACKEND);
      (module Backend_dd : Backend.BACKEND);
      (module Backend_tensornet : Backend.BACKEND);
      (module Backend_mps : Backend.BACKEND);
      (module Backend_stabilizer : Backend.BACKEND);
      (module Backend_auto : Backend.BACKEND);
    ]
