(* The backend registry: the single place the CLI, bench harness, examples
   and tests discover simulation backends.  Built-in backends are
   registered at module initialisation; [register] lets future backends
   plug in without touching any consumer.  Each backend registers twice:
   its one-shot [BACKEND] face and its [SESSION] engine, under the same
   name. *)

let table : (string, Backend.t) Hashtbl.t = Hashtbl.create 8
let session_table : (string, Backend.engine) Hashtbl.t = Hashtbl.create 8
let order : string list ref = ref []

let register (module B : Backend.BACKEND) =
  if not (Hashtbl.mem table B.name) then order := B.name :: !order;
  Hashtbl.replace table B.name (module B : Backend.BACKEND)

let register_session (module S : Backend.SESSION) =
  Hashtbl.replace session_table S.name (module S : Backend.SESSION)

let find name : Backend.t option = Hashtbl.find_opt table name
let find_session name : Backend.engine option = Hashtbl.find_opt session_table name
let names () = List.rev !order

let all () =
  List.filter_map (fun name -> Hashtbl.find_opt table name) (names ())

let capabilities_of name =
  Option.map (fun (module B : Backend.BACKEND) -> B.capabilities) (find name)

(* Edit distance for "did you mean …?" on unknown backend names. *)
let levenshtein a b =
  let la = String.length a and lb = String.length b in
  let prev = Array.init (lb + 1) Fun.id and cur = Array.make (lb + 1) 0 in
  for i = 1 to la do
    cur.(0) <- i;
    for j = 1 to lb do
      let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      cur.(j) <- min (min (cur.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
    done;
    Array.blit cur 0 prev 0 (lb + 1)
  done;
  prev.(lb)

(* [suggest name] — the registered backend closest to [name], if any is
   close enough to be a plausible typo (distance <= max(2, |cand|/3)). *)
let suggest name =
  let lowered = String.lowercase_ascii name in
  List.fold_left
    (fun best cand ->
      let d = levenshtein lowered (String.lowercase_ascii cand) in
      if d > max 2 (String.length cand / 3) then best
      else
        match best with
        | Some (_, best_d) when best_d <= d -> best
        | _ -> Some (cand, d))
    None (names ())
  |> Option.map fst

let () =
  List.iter register
    [
      (module Backend_arrays : Backend.BACKEND);
      (module Backend_dd : Backend.BACKEND);
      (module Backend_tensornet : Backend.BACKEND);
      (module Backend_mps : Backend.BACKEND);
      (module Backend_stabilizer : Backend.BACKEND);
      (module Backend_auto : Backend.BACKEND);
    ];
  List.iter register_session
    [
      (module Backend_arrays.Session : Backend.SESSION);
      (module Backend_dd.Session : Backend.SESSION);
      (module Backend_tensornet.Session : Backend.SESSION);
      (module Backend_mps.Session : Backend.SESSION);
      (module Backend_stabilizer.Session : Backend.SESSION);
      (module Backend_auto.Session : Backend.SESSION);
    ]
