(* The portfolio backend: inspects the circuit and routes each operation to
   the backend the selection heuristics of Burgholzer/Ploier/Wille,
   "Tensor Networks or Decision Diagrams? Guidelines for Classical Quantum
   Circuit Simulation" (2023) favour:

     1. pure Clifford                  -> stabilizer tableau (O(n^2))
     2. nearest-neighbour interactions -> MPS (bond dimension stays small)
     3. T-heavy                        -> decision diagrams
     4. small generic                  -> dense arrays
     5. anything else                  -> decision diagrams

   Each rule only fires when the target backend admits the requested
   operation on the given circuit, so e.g. a full-state request on a
   Clifford circuit falls through to a state-producing backend.  The chosen
   backend and the reason are logged in the [note] field of the returned
   stats record.

   An auto session routes per job and opens the chosen backend's session
   lazily the first time a job lands on it, then keeps it for the rest of
   the session — so a job mix that settles on decision diagrams still
   warm-starts the DD unique table and compute caches. *)

module Circuit = Qdt_circuit.Circuit

let name = "auto"

let capabilities =
  {
    Backend.full_state = true;
    amplitude = true;
    sample = true;
    expectation_z = true;
    supports_nonunitary = true;
    clifford_only = false;
    max_qubits = None;
    dynamic = true;
  }

(* The feature pass lives in [Features] (shared with run reports); the
   router consumes it unchanged. *)
let features = Features.analyze
let t_heavy = Features.t_heavy

(* Both faces of one backend: the one-shot module for [choose], the
   session engine for routing inside an auto session. *)
type target = {
  backend : (module Backend.BACKEND);
  session : (module Backend.SESSION);
}

let stabilizer_t =
  { backend = (module Backend_stabilizer); session = (module Backend_stabilizer.Session) }

let mps_t = { backend = (module Backend_mps); session = (module Backend_mps.Session) }
let dd_t = { backend = (module Backend_dd); session = (module Backend_dd.Session) }

let arrays_t =
  { backend = (module Backend_arrays); session = (module Backend_arrays.Session) }

let admits { backend = (module B : Backend.BACKEND); _ } ~op c =
  match Backend.admit ~name:B.name ~caps:B.capabilities ~operation:op c with
  | Ok () -> true
  | Error _ -> false

let choose_target ~op c =
  let f = features c in
  let rules =
    [
      ( f.Features.clifford,
        stabilizer_t,
        Printf.sprintf
          "pure Clifford circuit on %d qubits: stabilizer tableau is O(n^2)"
          f.qubits );
      ( f.qubits >= 12 && f.two_qubit > 0
        && f.nn_fraction >= 0.95
        && not (op = Backend.Full_state && f.qubits > Backend_mps.max_dense_qubits),
        mps_t,
        Printf.sprintf
          "%.0f%% of two-qubit gates are nearest-neighbour: low entanglement \
           growth, MPS bond dimension stays small"
          (100.0 *. f.nn_fraction) );
      ( t_heavy f,
        dd_t,
        Printf.sprintf
          "T-heavy circuit (t-count %d of %d gates): decision diagrams \
           exploit Clifford+T structure"
          f.t_count f.gates );
      ( f.qubits <= 20,
        arrays_t,
        Printf.sprintf
          "generic circuit on %d <= 20 qubits: dense state vector is \
           simplest and fastest"
          f.qubits );
    ]
  in
  let fallback =
    ( dd_t,
      Printf.sprintf
        "generic circuit on %d qubits: decision diagrams exploit redundancy \
         without the 2^n array"
        f.qubits )
  in
  let rec pick = function
    | [] -> fallback
    | (cond, t, reason) :: rest -> if cond && admits t ~op c then (t, reason) else pick rest
  in
  pick rules

let choose ~op c =
  let target, reason = choose_target ~op c in
  (target.backend, reason)

let annotate reason = function
  | Ok (v, stats) -> Ok (v, { stats with Backend.note = Some reason })
  | Error e -> Error e

module Session = struct
  let name = name
  let capabilities = capabilities

  (* A sub-session packed with the module that knows its state type. *)
  type opened = Opened : (module Backend.SESSION with type t = 's) * 's -> opened

  type t = {
    label : string option;
    mutable closed : bool;
    subs : (string, opened) Hashtbl.t;  (** one engine per routed backend *)
  }

  let create ?label () = { label; closed = false; subs = Hashtbl.create 7 }

  let close t =
    if not t.closed then begin
      t.closed <- true;
      Hashtbl.iter (fun _ (Opened ((module S), s)) -> S.close s) t.subs
    end

  let sub_session t (module S : Backend.SESSION) =
    match Hashtbl.find_opt t.subs S.name with
    | Some o -> o
    | None ->
        let o = Opened ((module S), S.create ?label:t.label ()) in
        Hashtbl.add t.subs S.name o;
        o

  let submit t c job =
    if t.closed then Backend.session_closed ~backend:name job
    else
      let op = Backend.operation_of_job job in
      let target, reason = choose_target ~op c in
      let (Opened ((module S), s)) = sub_session t target.session in
      annotate reason (S.submit s c job)
end

include Backend.Of_session (Session)
