(* The portfolio backend: inspects the circuit and routes each operation to
   the backend the selection heuristics of Burgholzer/Ploier/Wille,
   "Tensor Networks or Decision Diagrams? Guidelines for Classical Quantum
   Circuit Simulation" (2023) favour:

     1. pure Clifford                  -> stabilizer tableau (O(n^2))
     2. nearest-neighbour interactions -> MPS (bond dimension stays small)
     3. T-heavy                        -> decision diagrams
     4. small generic                  -> dense arrays
     5. anything else                  -> decision diagrams

   Each rule only fires when the target backend admits the requested
   operation on the given circuit, so e.g. a full-state request on a
   Clifford circuit falls through to a state-producing backend.  The chosen
   backend and the reason are logged in the [note] field of the returned
   stats record. *)

module Circuit = Qdt_circuit.Circuit

let name = "auto"

let capabilities =
  {
    Backend.full_state = true;
    amplitude = true;
    sample = true;
    expectation_z = true;
    supports_nonunitary = true;
    clifford_only = false;
    max_qubits = None;
    dynamic = true;
  }

(* The feature pass lives in [Features] (shared with run reports); the
   router consumes it unchanged. *)
let features = Features.analyze
let t_heavy = Features.t_heavy

let admits (module B : Backend.BACKEND) ~op c =
  match Backend.admit ~name:B.name ~caps:B.capabilities ~operation:op c with
  | Ok () -> true
  | Error _ -> false

let choose ~op c =
  let f = features c in
  let rules =
    [
      ( f.clifford,
        (module Backend_stabilizer : Backend.BACKEND),
        Printf.sprintf
          "pure Clifford circuit on %d qubits: stabilizer tableau is O(n^2)"
          f.qubits );
      ( f.qubits >= 12 && f.two_qubit > 0
        && f.nn_fraction >= 0.95
        && not (op = Backend.Full_state && f.qubits > Backend_mps.max_dense_qubits),
        (module Backend_mps : Backend.BACKEND),
        Printf.sprintf
          "%.0f%% of two-qubit gates are nearest-neighbour: low entanglement \
           growth, MPS bond dimension stays small"
          (100.0 *. f.nn_fraction) );
      ( t_heavy f,
        (module Backend_dd : Backend.BACKEND),
        Printf.sprintf
          "T-heavy circuit (t-count %d of %d gates): decision diagrams \
           exploit Clifford+T structure"
          f.t_count f.gates );
      ( f.qubits <= 20,
        (module Backend_arrays : Backend.BACKEND),
        Printf.sprintf
          "generic circuit on %d <= 20 qubits: dense state vector is \
           simplest and fastest"
          f.qubits );
    ]
  in
  let fallback =
    ( (module Backend_dd : Backend.BACKEND),
      Printf.sprintf
        "generic circuit on %d qubits: decision diagrams exploit redundancy \
         without the 2^n array"
        f.qubits )
  in
  let rec pick = function
    | [] -> fallback
    | (cond, m, reason) :: rest -> if cond && admits m ~op c then (m, reason) else pick rest
  in
  pick rules

let annotate reason = function
  | Ok (v, stats) -> Ok (v, { stats with Backend.note = Some reason })
  | Error e -> Error e

let simulate c =
  let (module B : Backend.BACKEND), reason = choose ~op:Backend.Full_state c in
  annotate reason (B.simulate c)

let amplitude c k =
  let (module B : Backend.BACKEND), reason = choose ~op:Backend.Amplitude c in
  annotate reason (B.amplitude c k)

let sample ?seed ~shots c =
  let (module B : Backend.BACKEND), reason = choose ~op:Backend.Sample c in
  annotate reason (B.sample ?seed ~shots c)

let expectation_z ?seed c q =
  let (module B : Backend.BACKEND), reason = choose ~op:Backend.Expectation_z c in
  annotate reason (B.expectation_z ?seed c q)
