(* Backend adapter: dense state-vector simulation (Section II).  A
   session keeps the last statevector (state buffer + grown scratch) and
   reuses it via [Sv.reset] when the next job has the same qubit count,
   so repeated jobs stop paying the 2^n allocation. *)

module Circuit = Qdt_circuit.Circuit
module Sv = Qdt_arraysim.Statevector

let ( let* ) r f = Result.bind r f

module Session = struct
  let name = "arrays"

  let capabilities =
    {
      Backend.full_state = true;
      amplitude = true;
      sample = true;
      expectation_z = true;
      supports_nonunitary = true;
      clifford_only = false;
      max_qubits = Some 24;
      dynamic = true;
    }

  type t = {
    label : string option;
    mutable closed : bool;
    mutable sv : Sv.t option;  (** reused when the qubit count matches *)
  }

  let create ?label () = { label; closed = false; sv = None }
  let close t = t.closed <- true
  let admit operation c = Backend.admit ~name ~caps:capabilities ~operation c

  let acquire t n =
    match t.sv with
    | Some sv when Sv.num_qubits sv = n ->
        Sv.reset sv;
        sv
    | _ ->
        let sv = Sv.create n in
        t.sv <- Some sv;
        sv

  (* The per-job run: identical to [Sv.run] except the statevector comes
     from [acquire], so warm and cold sessions see the same RNG stream,
     the same instruction walk, and bit-identical amplitudes. *)
  let run_in t ~seed c =
    let sv = acquire t (Circuit.num_qubits c) in
    let rng = Random.State.make [| seed |] in
    let clbits = Array.make (max 1 (Circuit.num_clbits c)) 0 in
    List.iter
      (fun instr -> Sv.apply_instruction sv instr ~rng ~clbits)
      (Circuit.instructions c);
    (sv, clbits)

  (* One shot of a dynamic circuit: fresh state, live classical register.
     Deliberately not on the session buffer — shots parallelise across
     domains, so each builds its own statevector.  The counts key is the
     creg when the circuit measures, else a terminal measurement of
     every qubit. *)
  let run_shot c ~rng =
    let sv = Sv.create (Circuit.num_qubits c) in
    let clbits = Array.make (max 1 (Circuit.num_clbits c)) 0 in
    List.iter
      (fun instr -> Sv.apply_instruction sv instr ~rng ~clbits)
      (Circuit.instructions c);
    if Circuit.has_measure c then Circuit.creg_value clbits
    else begin
      let key = ref 0 in
      for q = 0 to Circuit.num_qubits c - 1 do
        key := !key lor (Sv.measure_qubit sv ~rng q lsl q)
      done;
      !key
    end

  let stats m = Backend.base_stats name m

  let submit t c job =
    if t.closed then Backend.session_closed ~backend:name job
    else
      let operation = Backend.operation_of_job job in
      let* () = admit operation c in
      let session = t.label in
      match job with
      | Job.Full_state ->
          let (state, _clbits), m =
            Backend.timed ~span:"arrays.simulate" ?session (fun () -> run_in t ~seed:0 c)
          in
          Ok (Job.State (Sv.to_vec state), stats m)
      | Job.Amplitude k ->
          let amp, m =
            Backend.timed ~span:"arrays.amplitude" ?session (fun () ->
                Sv.amplitude (fst (run_in t ~seed:0 c)) k)
          in
          Ok (Job.Amplitude_of amp, stats m)
      | Job.Sample { seed; shots } ->
          let counts, m =
            Backend.timed ~span:"arrays.sample" ?session (fun () ->
                match Shot_engine.plan c with
                | Shot_engine.Static_unitary ->
                    let state, _clbits = run_in t ~seed c in
                    Sv.sample ~seed:(seed + 1) state ~shots
                | Shot_engine.Static_final { unitary; map } ->
                    let state, _clbits = run_in t ~seed unitary in
                    Shot_engine.remap_counts ~map (Sv.sample ~seed:(seed + 1) state ~shots)
                | Shot_engine.Dynamic ->
                    (* [run_shot] builds a fresh statevector per shot, so it
                       is reentrant and the shots parallelise across domains. *)
                    Shot_engine.sample_per_shot_parallel ~seed ~shots
                      ~run_shot:(run_shot c))
          in
          Ok (Job.Counts counts, stats m)
      | Job.Expectation_z { seed; qubit } ->
          let v, m =
            Backend.timed ~span:"arrays.expectation-z" ?session (fun () ->
                let state, _clbits = run_in t ~seed c in
                Sv.expectation_z state qubit)
          in
          Ok (Job.Expectation v, stats m)
end

include Backend.Of_session (Session)
