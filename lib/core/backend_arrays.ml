(* Backend adapter: dense state-vector simulation (Section II). *)

module Circuit = Qdt_circuit.Circuit
module Sv = Qdt_arraysim.Statevector

let name = "arrays"

let capabilities =
  {
    Backend.full_state = true;
    amplitude = true;
    sample = true;
    expectation_z = true;
    supports_nonunitary = true;
    clifford_only = false;
    max_qubits = Some 24;
  }

let admit operation c = Backend.admit ~name ~caps:capabilities ~operation c

let ( let* ) r f = Result.bind r f

let stats m = Backend.base_stats name m

let simulate c =
  let* () = admit Backend.Full_state c in
  let state, m = Backend.timed ~span:"arrays.simulate" (fun () -> Sv.run_unitary c) in
  Ok (Sv.to_vec state, stats m)

let amplitude c k =
  let* () = admit Backend.Amplitude c in
  let amp, m =
    Backend.timed ~span:"arrays.amplitude" (fun () -> Sv.amplitude (Sv.run_unitary c) k)
  in
  Ok (amp, stats m)

let sample ?(seed = 0) ~shots c =
  let* () = admit Backend.Sample c in
  let counts, m =
    Backend.timed ~span:"arrays.sample" (fun () ->
        let state, _clbits = Sv.run ~seed c in
        Sv.sample ~seed:(seed + 1) state ~shots)
  in
  Ok (counts, stats m)

let expectation_z ?(seed = 0) c q =
  let* () = admit Backend.Expectation_z c in
  let v, m =
    Backend.timed ~span:"arrays.expectation-z" (fun () ->
        let state, _clbits = Sv.run ~seed c in
        Sv.expectation_z state q)
  in
  Ok (v, stats m)
