(* Backend adapter: dense state-vector simulation (Section II). *)

module Circuit = Qdt_circuit.Circuit
module Sv = Qdt_arraysim.Statevector

let name = "arrays"

let capabilities =
  {
    Backend.full_state = true;
    amplitude = true;
    sample = true;
    expectation_z = true;
    supports_nonunitary = true;
    clifford_only = false;
    max_qubits = Some 24;
    dynamic = true;
  }

let admit operation c = Backend.admit ~name ~caps:capabilities ~operation c

let ( let* ) r f = Result.bind r f

let stats m = Backend.base_stats name m

let simulate c =
  let* () = admit Backend.Full_state c in
  let state, m = Backend.timed ~span:"arrays.simulate" (fun () -> Sv.run_unitary c) in
  Ok (Sv.to_vec state, stats m)

let amplitude c k =
  let* () = admit Backend.Amplitude c in
  let amp, m =
    Backend.timed ~span:"arrays.amplitude" (fun () -> Sv.amplitude (Sv.run_unitary c) k)
  in
  Ok (amp, stats m)

(* One shot of a dynamic circuit: fresh state, live classical register.
   The counts key is the creg when the circuit measures, else a terminal
   measurement of every qubit. *)
let run_shot c ~rng =
  let sv = Sv.create (Circuit.num_qubits c) in
  let clbits = Array.make (max 1 (Circuit.num_clbits c)) 0 in
  List.iter
    (fun instr -> Sv.apply_instruction sv instr ~rng ~clbits)
    (Circuit.instructions c);
  if Circuit.has_measure c then Circuit.creg_value clbits
  else begin
    let key = ref 0 in
    for q = 0 to Circuit.num_qubits c - 1 do
      key := !key lor (Sv.measure_qubit sv ~rng q lsl q)
    done;
    !key
  end

let sample ?(seed = 0) ~shots c =
  let* () = admit Backend.Sample c in
  let counts, m =
    Backend.timed ~span:"arrays.sample" (fun () ->
        match Shot_engine.plan c with
        | Shot_engine.Static_unitary ->
            let state, _clbits = Sv.run ~seed c in
            Sv.sample ~seed:(seed + 1) state ~shots
        | Shot_engine.Static_final { unitary; map } ->
            let state, _clbits = Sv.run ~seed unitary in
            Shot_engine.remap_counts ~map (Sv.sample ~seed:(seed + 1) state ~shots)
        | Shot_engine.Dynamic ->
            (* [run_shot] builds a fresh statevector per shot, so it is
               reentrant and the shots parallelise across domains. *)
            Shot_engine.sample_per_shot_parallel ~seed ~shots ~run_shot:(run_shot c))
  in
  Ok (counts, stats m)

let expectation_z ?(seed = 0) c q =
  let* () = admit Backend.Expectation_z c in
  let v, m =
    Backend.timed ~span:"arrays.expectation-z" (fun () ->
        let state, _clbits = Sv.run ~seed c in
        Sv.expectation_z state q)
  in
  Ok (v, stats m)
