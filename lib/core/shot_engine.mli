(** Static/dynamic shot-execution split (mqt-core's sampling strategy).

    Classifies a circuit once; backend [sample] adapters branch on the
    result.  Static circuits keep the simulate-once-then-sample fast path
    (bit-identical RNG streams to the pre-dynamic code); dynamic circuits
    re-execute per shot with a live classical register. *)

type plan =
  | Static_unitary  (** no measure/reset/conditional: historical fast path *)
  | Static_final of { unitary : Qdt_circuit.Circuit.t; map : (int * int) list }
      (** terminal measurements only: run [unitary] once, sample, remap
          each sampled basis state through the [(qubit, clbit)] wiring *)
  | Dynamic  (** re-execute per shot ({!sample_per_shot}) *)

val plan : Qdt_circuit.Circuit.t -> plan

(** [remap_counts ~map counts] rewires full-basis sampled counts onto the
    classical register: for each [(qubit, clbit)] in program order, bit
    [qubit] of the sampled key becomes bit [clbit] of the result key
    (later writes to the same clbit win).  Collisions are aggregated. *)
val remap_counts : map:(int * int) list -> (int * int) list -> (int * int) list

(** [sample_per_shot ~seed ~shots ~run_shot] — the dynamic path: one
    seeded RNG stream shared across shots, [run_shot] executes one shot
    and returns its counts key.  Returns counts sorted by key, matching
    the backends' static sampling output. *)
val sample_per_shot :
  seed:int -> shots:int -> run_shot:(rng:Random.State.t -> int) -> (int * int) list

(** [sample_per_shot_parallel ~seed ~shots ~run_shot] — the dynamic path
    across the {!Qdt_par} domain pool.  At jobs = 1 this is exactly
    {!sample_per_shot}.  At jobs >= 2, shot [i] draws from its own RNG
    stream seeded by [(seed, i)] — outcomes depend only on the seed and
    shot index, so counts are identical at any job count >= 2 (but differ
    from the jobs = 1 single-stream output).  [run_shot] must be
    reentrant: it is invoked concurrently and must build per-shot state
    fresh rather than reuse shared scratch. *)
val sample_per_shot_parallel :
  seed:int -> shots:int -> run_shot:(rng:Random.State.t -> int) -> (int * int) list
