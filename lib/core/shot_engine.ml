(* The static/dynamic shot-execution split (mqt-core's sampling strategy,
   SNIPPETS 1-2).  A circuit is classified once; backends branch on the
   plan inside their [sample] adapters:

   - [Static_unitary]: no measure/reset/conditional at all.  The backend
     keeps its historical simulate-once-then-sample path untouched, which
     keeps the RNG streams bit-identical to the pre-dynamic code.
   - [Static_final]: measurements only, and every measured qubit is dead
     afterwards.  The measurements commute to the end of the circuit, so
     the backend runs the unitary prefix once, samples the final state,
     and remaps each sampled basis state through the qubit→clbit wiring.
   - [Dynamic]: a conditional, a reset, or a measured qubit that is used
     again.  The only faithful execution is one full run per shot with a
     live classical register. *)

module Circuit = Qdt_circuit.Circuit

type plan =
  | Static_unitary
  | Static_final of { unitary : Circuit.t; map : (int * int) list }
  | Dynamic

let plan c =
  if Circuit.is_unitary_only c then Static_unitary
  else if Circuit.is_dynamic c then Dynamic
  else begin
    (* Terminal measurements only: strip them, record the wiring in
       program order (a later measure into the same clbit wins). *)
    let unitary =
      List.fold_left
        (fun acc instr -> Circuit.add instr acc)
        (Circuit.empty ~clbits:(Circuit.num_clbits c) (Circuit.num_qubits c))
        (Circuit.unitary_instructions c)
    in
    let map =
      List.filter_map
        (function
          | Circuit.Measure { qubit; clbit } -> Some (qubit, clbit)
          | _ -> None)
        (Circuit.instructions c)
    in
    Static_final { unitary; map }
  end

let remap_key ~map k =
  List.fold_left
    (fun key (qubit, clbit) ->
      let bit = (k lsr qubit) land 1 in
      (key land lnot (1 lsl clbit)) lor (bit lsl clbit))
    0 map

let sorted_counts tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let remap_counts ~map counts =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (k, n) ->
      let key = remap_key ~map k in
      Hashtbl.replace tbl key (n + Option.value ~default:0 (Hashtbl.find_opt tbl key)))
    counts;
  sorted_counts tbl

(* Shots executed, labeled by execution mode — so a report's metrics diff
   says whether the dynamic path ran serial or fanned out. *)
let m_shots_serial =
  Qdt_obs.Metrics.counter_with ~labels:[ ("mode", "serial") ] "qdt.shots.completed"

let m_shots_parallel =
  Qdt_obs.Metrics.counter_with
    ~labels:[ ("mode", "parallel") ]
    "qdt.shots.completed"

(* Shot blocks (chunks of the per-shot loop) per executing pool slot:
   the per-domain load-balance picture of a sampling run.  Series
   register on a slot's first block so only slots that actually ran
   appear in snapshots; a racing double-registration returns the same
   cell. *)
let block_counters = Array.make (Qdt_par.max_jobs + 1) None

let block_counter slot =
  match block_counters.(slot) with
  | Some c -> c
  | None ->
      let c =
        Qdt_obs.Metrics.counter_with
          ~labels:[ ("domain", string_of_int slot) ]
          "qdt.shots.blocks"
      in
      block_counters.(slot) <- Some c;
      c

let sample_per_shot ~seed ~shots ~run_shot =
  let rng = Random.State.make [| seed |] in
  let tbl = Hashtbl.create 64 in
  for _shot = 1 to shots do
    let key = run_shot ~rng in
    Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))
  done;
  Qdt_obs.Metrics.add m_shots_serial shots;
  sorted_counts tbl

(* Parallel dynamic path.  At jobs = 1 this is exactly [sample_per_shot]
   (one sequential stream — bit-identical to the pre-parallel engine).
   At jobs >= 2 every shot draws from its own stream seeded by
   [(seed, shot index)], so each shot's outcome depends only on the seed
   and its index, never on which domain ran it or in what order: the
   counts are identical at any job count >= 2.  [run_shot] must be
   reentrant — it is called concurrently with distinct [rng] states and
   must build any per-shot state (statevector, tableau, scratch) fresh. *)
let sample_per_shot_parallel ~seed ~shots ~run_shot =
  if Qdt_par.jobs () <= 1 then sample_per_shot ~seed ~shots ~run_shot
  else begin
    let keys = Array.make (max shots 0) 0 in
    Qdt_par.parallel_for ~chunk:16 0 shots (fun lo hi ->
        Qdt_obs.Metrics.incr (block_counter (Qdt_par.domain_slot ()));
        for shot = lo to hi - 1 do
          let rng = Random.State.make [| seed; shot |] in
          keys.(shot) <- run_shot ~rng
        done);
    Qdt_obs.Metrics.add m_shots_parallel shots;
    let tbl = Hashtbl.create 64 in
    Array.iter
      (fun key ->
        Hashtbl.replace tbl key
          (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key)))
      keys;
    sorted_counts tbl
  end
