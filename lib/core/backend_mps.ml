(* Backend adapter: matrix-product-state simulation (Section IV).  Gates
   beyond two qubits are lowered first (as the seed's MPS arm did); the
   telemetry reports the run's maximal bond dimension and accumulated
   truncation error. *)

module Circuit = Qdt_circuit.Circuit
module Decompose = Qdt_compile.Decompose
module Mps = Qdt_tensornet.Mps

let name = "mps"

let capabilities =
  {
    Backend.full_state = true;
    amplitude = true;
    sample = true;
    expectation_z = true;
    supports_nonunitary = false;
    clifford_only = false;
    max_qubits = None;
    dynamic = false;
  }

let admit operation c = Backend.admit ~name ~caps:capabilities ~operation c

let ( let* ) r f = Result.bind r f

(* Densifying the full state is exponential regardless of bond dimension. *)
let max_dense_qubits = 22

let run c = Mps.run (Decompose.lower ~basis:Decompose.Two_qubit c)

let stats_of m mps =
  {
    (Backend.base_stats name m) with
    Backend.mps =
      Some
        {
          Backend.max_bond_dim = Mps.max_bond_dim mps;
          truncation_error = Mps.truncation_error mps;
        };
  }

let simulate c =
  let* () = admit Backend.Full_state c in
  if Circuit.num_qubits c > max_dense_qubits then
    Backend.unsupported ~backend:name ~operation:Backend.Full_state
      (Printf.sprintf "densifying %d qubits exceeds the %d-qubit dense limit"
         (Circuit.num_qubits c) max_dense_qubits)
  else
    let (mps, state), m =
      Backend.timed ~span:"mps.simulate" (fun () ->
          let mps = run c in
          (mps, Mps.to_vec mps))
    in
    Ok (state, stats_of m mps)

let amplitude c k =
  let* () = admit Backend.Amplitude c in
  let (mps, amp), m =
    Backend.timed ~span:"mps.amplitude" (fun () ->
        let mps = run c in
        (mps, Mps.amplitude mps k))
  in
  Ok (amp, stats_of m mps)

let sample ?(seed = 0) ~shots c =
  let* () = admit Backend.Sample c in
  let (mps, counts), m =
    Backend.timed ~span:"mps.sample" (fun () ->
        let mps = run c in
        (mps, Mps.sample ~seed:(seed + 1) mps ~shots))
  in
  Ok (counts, stats_of m mps)

let expectation_z ?seed c q =
  ignore seed;
  let* () = admit Backend.Expectation_z c in
  let (mps, v), m =
    Backend.timed ~span:"mps.expectation-z" (fun () ->
        let mps = run c in
        (mps, Mps.expectation_z mps q))
  in
  Ok (v, stats_of m mps)
