(* Backend adapter: matrix-product-state simulation (Section IV).  Gates
   beyond two qubits are lowered first (as the seed's MPS arm did); the
   telemetry reports the run's maximal bond dimension and accumulated
   truncation error. *)

module Circuit = Qdt_circuit.Circuit
module Decompose = Qdt_compile.Decompose
module Mps = Qdt_tensornet.Mps

let name = "mps"

let capabilities =
  {
    Backend.full_state = true;
    amplitude = true;
    sample = true;
    expectation_z = true;
    supports_nonunitary = false;
    clifford_only = false;
    max_qubits = None;
  }

let admit operation c = Backend.admit ~name ~caps:capabilities ~operation c

let ( let* ) r f = Result.bind r f

(* Densifying the full state is exponential regardless of bond dimension. *)
let max_dense_qubits = 22

let run c = Mps.run (Decompose.lower ~basis:Decompose.Two_qubit c)

let stats_of wall mps =
  {
    (Backend.base_stats name wall) with
    Backend.mps =
      Some
        {
          Backend.max_bond_dim = Mps.max_bond_dim mps;
          truncation_error = Mps.truncation_error mps;
        };
  }

let simulate c =
  let* () = admit Backend.Full_state c in
  if Circuit.num_qubits c > max_dense_qubits then
    Backend.unsupported ~backend:name ~operation:Backend.Full_state
      (Printf.sprintf "densifying %d qubits exceeds the %d-qubit dense limit"
         (Circuit.num_qubits c) max_dense_qubits)
  else
    let (mps, state), wall =
      Backend.timed (fun () ->
          let mps = run c in
          (mps, Mps.to_vec mps))
    in
    Ok (state, stats_of wall mps)

let amplitude c k =
  let* () = admit Backend.Amplitude c in
  let (mps, amp), wall =
    Backend.timed (fun () ->
        let mps = run c in
        (mps, Mps.amplitude mps k))
  in
  Ok (amp, stats_of wall mps)

let sample ?(seed = 0) ~shots c =
  let* () = admit Backend.Sample c in
  let (mps, counts), wall =
    Backend.timed (fun () ->
        let mps = run c in
        (mps, Mps.sample ~seed:(seed + 1) mps ~shots))
  in
  Ok (counts, stats_of wall mps)

let expectation_z ?seed c q =
  ignore seed;
  let* () = admit Backend.Expectation_z c in
  let (mps, v), wall =
    Backend.timed (fun () ->
        let mps = run c in
        (mps, Mps.expectation_z mps q))
  in
  Ok (v, stats_of wall mps)
