(* Backend adapter: matrix-product-state simulation (Section IV).  Gates
   beyond two qubits are lowered first (as the seed's MPS arm did); the
   telemetry reports the run's maximal bond dimension and accumulated
   truncation error.  The session wrapper is stateless: an MPS is built
   per job (bond dimensions are circuit-shaped, so there is no buffer
   worth caching), the session carries only the label and liveness. *)

module Circuit = Qdt_circuit.Circuit
module Decompose = Qdt_compile.Decompose
module Mps = Qdt_tensornet.Mps

let ( let* ) r f = Result.bind r f

(* Densifying the full state is exponential regardless of bond dimension. *)
let max_dense_qubits = 22

module Session = struct
  let name = "mps"

  let capabilities =
    {
      Backend.full_state = true;
      amplitude = true;
      sample = true;
      expectation_z = true;
      supports_nonunitary = false;
      clifford_only = false;
      max_qubits = None;
      dynamic = false;
    }

  type t = { label : string option; mutable closed : bool }

  let create ?label () = { label; closed = false }
  let close t = t.closed <- true
  let admit operation c = Backend.admit ~name ~caps:capabilities ~operation c
  let run c = Mps.run (Decompose.lower ~basis:Decompose.Two_qubit c)

  let stats_of m mps =
    {
      (Backend.base_stats name m) with
      Backend.mps =
        Some
          {
            Backend.max_bond_dim = Mps.max_bond_dim mps;
            truncation_error = Mps.truncation_error mps;
          };
    }

  let submit t c job =
    if t.closed then Backend.session_closed ~backend:name job
    else
      let session = t.label in
      match job with
      | Job.Full_state ->
          let* () = admit Backend.Full_state c in
          if Circuit.num_qubits c > max_dense_qubits then
            Backend.unsupported ~backend:name ~operation:Backend.Full_state
              (Printf.sprintf
                 "densifying %d qubits exceeds the %d-qubit dense limit"
                 (Circuit.num_qubits c) max_dense_qubits)
          else
            let (mps, state), m =
              Backend.timed ~span:"mps.simulate" ?session (fun () ->
                  let mps = run c in
                  (mps, Mps.to_vec mps))
            in
            Ok (Job.State state, stats_of m mps)
      | Job.Amplitude k ->
          let* () = admit Backend.Amplitude c in
          let (mps, amp), m =
            Backend.timed ~span:"mps.amplitude" ?session (fun () ->
                let mps = run c in
                (mps, Mps.amplitude mps k))
          in
          Ok (Job.Amplitude_of amp, stats_of m mps)
      | Job.Sample { seed; shots } ->
          let* () = admit Backend.Sample c in
          let (mps, counts), m =
            Backend.timed ~span:"mps.sample" ?session (fun () ->
                let mps = run c in
                (mps, Mps.sample ~seed:(seed + 1) mps ~shots))
          in
          Ok (Job.Counts counts, stats_of m mps)
      | Job.Expectation_z { seed = _; qubit } ->
          let* () = admit Backend.Expectation_z c in
          let (mps, v), m =
            Backend.timed ~span:"mps.expectation-z" ?session (fun () ->
                let mps = run c in
                (mps, Mps.expectation_z mps qubit))
          in
          Ok (Job.Expectation v, stats_of m mps)
end

include Backend.Of_session (Session)
