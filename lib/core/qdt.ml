module Linalg = Qdt_linalg
module Circuit = Qdt_circuit
module Arrays = Qdt_arraysim
module Dd = Qdt_dd
module Tensornet = Qdt_tensornet
module Zx = Qdt_zx
module Compile = Qdt_compile
module Verify = Qdt_verify
module Stabilizer = Qdt_stabilizer
module Obs = Qdt_obs
module Par = Qdt_par

(* The backend layer: module type + capabilities + stats, the registry of
   adapters, and the portfolio dispatcher. *)
module Backend = Backend
module Job = Job
module Registry = Registry
module Auto = Backend_auto
module Shot_engine = Shot_engine
module Features = Features

type backend =
  | Arrays_backend
  | Decision_diagrams
  | Tensor_network
  | Mps
  | Stabilizer_backend
  | Auto_backend

let backend_name = function
  | Arrays_backend -> "arrays"
  | Decision_diagrams -> "decision-diagrams"
  | Tensor_network -> "tensor-network"
  | Mps -> "mps"
  | Stabilizer_backend -> "stabilizer"
  | Auto_backend -> "auto"

let all_backends = [ Arrays_backend; Decision_diagrams; Tensor_network; Mps ]

(* Every variant is registered at startup by {!Registry}. *)
let backend_module b : Backend.t =
  match Registry.find (backend_name b) with
  | Some m -> m
  | None -> invalid_arg (Printf.sprintf "Qdt: backend %s not registered" (backend_name b))

(* Compatibility shim: the historical API raised [Invalid_argument] on
   unsupported combinations; the registry returns typed errors. *)
let lift op = function
  | Ok (v, _stats) -> v
  | Error e -> invalid_arg (Printf.sprintf "Qdt.%s: %s" op (Backend.error_to_string e))

let simulate ~backend c =
  let (module B : Backend.BACKEND) = backend_module backend in
  lift "simulate" (B.simulate c)

let amplitude ~backend c k =
  let (module B : Backend.BACKEND) = backend_module backend in
  lift "amplitude" (B.amplitude c k)

let sample ~backend ?(seed = 0) ~shots c =
  let (module B : Backend.BACKEND) = backend_module backend in
  lift "sample" (B.sample ~seed ~shots c)

let expectation_z ~backend ?(seed = 0) c q =
  let (module B : Backend.BACKEND) = backend_module backend in
  lift "expectation_z" (B.expectation_z ~seed c q)

type compiled = {
  circuit : Qdt_circuit.Circuit.t;
  added_swaps : int;
  removed_gates : int;
  initial_layout : int array;
  final_layout : int array;
}

let compile ?(optimize = true) ~coupling c =
  let result = Qdt_compile.Router.route c coupling in
  let routed = result.Qdt_compile.Router.routed in
  let final_circuit, removed =
    if optimize then
      let optimized, stats = Qdt_compile.Optimize.optimize routed in
      (optimized, stats.Qdt_compile.Optimize.removed)
    else (routed, 0)
  in
  {
    circuit = final_circuit;
    added_swaps = result.Qdt_compile.Router.added_swaps;
    removed_gates = removed;
    initial_layout = result.Qdt_compile.Router.initial_layout;
    final_layout = result.Qdt_compile.Router.final_layout;
  }

type checker =
  | Check_arrays
  | Check_dd
  | Check_dd_alternating
  | Check_zx
  | Check_tn
  | Check_simulation

let checker_name = function
  | Check_arrays -> "arrays"
  | Check_dd -> "dd"
  | Check_dd_alternating -> "dd-alternating"
  | Check_zx -> "zx"
  | Check_tn -> "tn"
  | Check_simulation -> "simulation"

let all_checkers =
  [ Check_arrays; Check_dd; Check_dd_alternating; Check_zx; Check_tn; Check_simulation ]

let equivalent ~checker c1 c2 =
  match checker with
  | Check_arrays -> Qdt_verify.Equiv.arrays c1 c2
  | Check_dd -> Qdt_verify.Equiv.dd c1 c2
  | Check_dd_alternating -> Qdt_verify.Equiv.dd_alternating c1 c2
  | Check_zx -> Qdt_verify.Equiv.zx c1 c2
  | Check_tn -> Qdt_verify.Equiv.tn c1 c2
  | Check_simulation -> Qdt_verify.Equiv.simulation c1 c2
