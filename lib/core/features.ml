(* Cheap circuit-feature analysis pass: one walk over the instruction
   list plus the Circuit accessors.  Two consumers share it: the [auto]
   portfolio backend routes on these features (the Burgholzer/Ploier/
   Wille "Guidelines" predictors), and [Qdt_obs.Report] embeds them in
   every run report so a report says what kind of circuit it describes. *)

module Circuit = Qdt_circuit.Circuit

(* Arities above this are folded into the last histogram slot. *)
let max_arity = 8

type t = {
  qubits : int;
  clbits : int;
  gates : int;
  depth : int;
  two_qubit : int;
  t_count : int;
  clifford : bool;
  nn_fraction : float;
  dynamic : bool;
  measurements : int;
  resets : int;
  conditionals : int;
  arity_hist : int array;  (* slot a = instructions touching a qubits, clamped *)
}

let analyze c =
  let two_qubit = ref 0
  and nn = ref 0
  and measurements = ref 0
  and resets = ref 0
  and conditionals = ref 0 in
  let arity_hist = Array.make (max_arity + 1) 0 in
  List.iter
    (fun instr ->
      let rec classify = function
        | Circuit.Measure _ -> incr measurements
        | Circuit.Reset _ -> incr resets
        | Circuit.If { instr; _ } ->
            incr conditionals;
            classify instr
        | Circuit.Apply _ | Circuit.Swap _ | Circuit.Barrier _ -> ()
      in
      classify instr;
      let qs = Circuit.qubits_of_instruction instr in
      let a = List.length qs in
      arity_hist.(min a max_arity) <- arity_hist.(min a max_arity) + 1;
      match qs with
      | [ a; b ] ->
          incr two_qubit;
          if abs (a - b) = 1 then incr nn
      | _ -> ())
    (Circuit.instructions c);
  {
    qubits = Circuit.num_qubits c;
    clbits = Circuit.num_clbits c;
    gates = Circuit.count_total c;
    depth = Circuit.depth c;
    two_qubit = !two_qubit;
    t_count = Circuit.t_count c;
    clifford = Qdt_stabilizer.Tableau.supports c;
    nn_fraction =
      (if !two_qubit = 0 then 1.0
       else float_of_int !nn /. float_of_int !two_qubit);
    dynamic = Circuit.is_dynamic c;
    measurements = !measurements;
    resets = !resets;
    conditionals = !conditionals;
    arity_hist;
  }

(* A circuit is "T-heavy" when its T-count is substantial in absolute terms
   or as a fraction of the gate count — the regime where stabilizer-based
   methods are out and decision diagrams are the method of choice. *)
let t_heavy f = f.t_count >= 8 || (f.t_count > 0 && f.t_count * 5 >= f.gates)

let to_json f =
  let module J = Qdt_obs.Json in
  Printf.sprintf
    "{\"qubits\": %d, \"clbits\": %d, \"gates\": %d, \"depth\": %d, \
     \"two_qubit\": %d, \"t_count\": %d, \"clifford\": %b, \
     \"nn_fraction\": %s, \"dynamic\": %b, \"measurements\": %d, \
     \"resets\": %d, \"conditionals\": %d, \"arity_hist\": [%s]}"
    f.qubits f.clbits f.gates f.depth f.two_qubit f.t_count f.clifford
    (J.float f.nn_fraction) f.dynamic f.measurements f.resets f.conditionals
    (String.concat ", " (Array.to_list (Array.map string_of_int f.arity_hist)))
