(* Backend adapter: QMDD simulation (Section III).  A session owns one
   DD manager, so the unique table, complex-number table and compute
   caches — the amortizable structures of DD simulation — persist across
   jobs; roots are released between jobs and the refcounted GC keeps the
   tables bounded.  Runs instruction by instruction so it can record the
   peak state-DD size, and reports per-job cache-counter deltas. *)

module Circuit = Qdt_circuit.Circuit
module Pkg = Qdt_dd.Pkg
module Sim = Qdt_dd.Sim

let ( let* ) r f = Result.bind r f
let w_peak_nodes = Qdt_obs.Watermark.watermark "dd.peak_live_nodes"
let rate hits lookups = if lookups = 0 then 0.0 else float_of_int hits /. float_of_int lookups

module Session = struct
  let name = "decision-diagrams"

  let capabilities =
    {
      Backend.full_state = true;
      amplitude = true;
      sample = true;
      expectation_z = true;
      supports_nonunitary = true;
      clifford_only = false;
      max_qubits = None;
      dynamic = true;
    }

  type t = {
    mgr : Pkg.t;  (** shared across every job of the session *)
    label : string option;
    mutable closed : bool;
    mutable mark : Pkg.cache_stats;  (** counter snapshot at the last job boundary *)
  }

  let create ?label () =
    let mgr = Pkg.create () in
    { mgr; label; closed = false; mark = Pkg.cache_stats mgr }

  let close t = t.closed <- true
  let admit operation c = Backend.admit ~name ~caps:capabilities ~operation c

  (* Step the simulation manually, tracking the largest intermediate DD. *)
  let run_tracked mgr ~seed c =
    let st = Sim.make mgr (Circuit.num_qubits c) in
    let rng = Random.State.make [| seed |] in
    let clbits = Array.make (max 1 (Circuit.num_clbits c)) 0 in
    let peak = ref 0 in
    List.iter
      (fun instr ->
        Sim.apply_instruction st instr ~rng ~clbits;
        peak := max !peak (Sim.node_count st))
      (Circuit.instructions c);
    Qdt_obs.Watermark.observe_int w_peak_nodes !peak;
    (st, !peak)

  (* Per-shot loop over the session manager: the previous shot's root is
     unpinned before the next shot starts, so dead nodes stay collectable;
     the last state is kept pinned for the telemetry record and released
     by [submit] once stats are read. *)
  (* Stays on the sequential [sample_per_shot]: every shot shares one DD
     manager (unique/compute tables, refcounts), which is not domain-safe —
     and sharing it is the point, since node reuse across shots is where the
     DD backend's compression comes from. *)
  let run_dynamic mgr ~seed ~shots c =
    let n = Circuit.num_qubits c in
    let peak = ref 0 in
    let last = ref None in
    let counts =
      Shot_engine.sample_per_shot ~seed ~shots ~run_shot:(fun ~rng ->
          (match !last with Some prev -> Sim.release prev | None -> ());
          let st = Sim.make mgr n in
          last := Some st;
          let clbits = Array.make (max 1 (Circuit.num_clbits c)) 0 in
          List.iter
            (fun instr ->
              Sim.apply_instruction st instr ~rng ~clbits;
              peak := max !peak (Sim.node_count st))
            (Circuit.instructions c);
          if Circuit.has_measure c then Circuit.creg_value clbits
          else begin
            let key = ref 0 in
            for q = 0 to n - 1 do
              key := !key lor (Sim.measure_qubit st ~rng q lsl q)
            done;
            !key
          end)
    in
    let st = match !last with Some st -> st | None -> Sim.make mgr n in
    (st, !peak, counts)

  let stats_of ~m ~peak ~cs st =
    let mgr = Sim.manager st in
    let slots = List.fold_left (fun acc t -> acc + t.Pkg.slots) 0 cs.Pkg.caches in
    let fill = List.fold_left (fun acc t -> acc + t.Pkg.fill) 0 cs.Pkg.caches in
    {
      (Backend.base_stats name m) with
      Backend.dd =
        Some
          {
            Backend.peak_nodes = peak;
            final_nodes = Sim.node_count st;
            unique_table_size = Pkg.unique_table_size mgr;
            cnum_table_size = Pkg.cnum_live_entries mgr;
            unique_hit_rate = rate cs.Pkg.unique_hits cs.Pkg.unique_lookups;
            compute_hit_rate = rate cs.Pkg.compute_hits cs.Pkg.compute_lookups;
            gc_runs = cs.Pkg.gc_runs;
            nodes_collected = cs.Pkg.nodes_collected;
            peak_live_nodes = cs.Pkg.peak_nodes;
            compute_cache_fill = rate fill slots;
          };
    }

  (* The spans match the pre-session adapter exactly, so the derived
     qdt.backend.runs{backend,operation} series are unchanged. *)
  let span_of_job = function
    | Job.Full_state -> "dd.simulate"
    | Job.Amplitude _ -> "dd.amplitude"
    | Job.Sample _ -> "dd.sample"
    | Job.Expectation_z _ -> "dd.expectation-z"

  let submit t c job =
    if t.closed then Backend.session_closed ~backend:name job
    else
      let operation = Backend.operation_of_job job in
      let* () = admit operation c in
      let (st, peak, payload), m =
        Backend.timed ~span:(span_of_job job) ?session:t.label (fun () ->
            match job with
            | Job.Full_state | Job.Amplitude _ ->
                let st, peak = run_tracked t.mgr ~seed:0 c in
                (st, peak, None)
            | Job.Sample { seed; shots } -> (
                match Shot_engine.plan c with
                | Shot_engine.Static_unitary ->
                    let st, peak = run_tracked t.mgr ~seed c in
                    (st, peak, Some (Job.Counts (Sim.sample ~seed:(seed + 1) st ~shots)))
                | Shot_engine.Static_final { unitary; map } ->
                    let st, peak = run_tracked t.mgr ~seed unitary in
                    ( st,
                      peak,
                      Some
                        (Job.Counts
                           (Shot_engine.remap_counts ~map
                              (Sim.sample ~seed:(seed + 1) st ~shots))) )
                | Shot_engine.Dynamic ->
                    let st, peak, counts = run_dynamic t.mgr ~seed ~shots c in
                    (st, peak, Some (Job.Counts counts)))
            | Job.Expectation_z { seed; qubit } ->
                let st, peak = run_tracked t.mgr ~seed c in
                (st, peak, Some (Job.Expectation (Sim.expectation_z st qubit))))
      in
      (* Per-job deltas against the last job boundary; stats are read
         before the dense payload, matching the pre-session evaluation
         order exactly. *)
      let stats =
        stats_of ~m ~peak
          ~cs:(Pkg.diff_cache_stats ~before:t.mark ~after:(Pkg.cache_stats t.mgr))
          st
      in
      let payload =
        match (payload, job) with
        | Some p, _ -> p
        | None, Job.Full_state -> Job.State (Sim.to_vec st)
        | None, Job.Amplitude k -> Job.Amplitude_of (Sim.amplitude st k)
        | None, (Job.Sample _ | Job.Expectation_z _) -> assert false
      in
      (* Release the job's pinned root — including the final per-shot
         state of a dynamic run — so the session's unique table is not
         permanently inflated by finished jobs. *)
      Sim.release st;
      t.mark <- Pkg.cache_stats t.mgr;
      Ok (payload, stats)
end

include Backend.Of_session (Session)
