(* Backend adapter: QMDD simulation (Section III).  Runs instruction by
   instruction so it can record the peak state-DD size, and reports the
   manager's unique-table / compute-cache hit rates. *)

module Circuit = Qdt_circuit.Circuit
module Pkg = Qdt_dd.Pkg
module Sim = Qdt_dd.Sim

let name = "decision-diagrams"

let capabilities =
  {
    Backend.full_state = true;
    amplitude = true;
    sample = true;
    expectation_z = true;
    supports_nonunitary = true;
    clifford_only = false;
    max_qubits = None;
    dynamic = true;
  }

let admit operation c = Backend.admit ~name ~caps:capabilities ~operation c

let ( let* ) r f = Result.bind r f

let w_peak_nodes = Qdt_obs.Watermark.watermark "dd.peak_live_nodes"

(* Step the simulation manually, tracking the largest intermediate DD. *)
let run_tracked ~seed c =
  let mgr = Pkg.create () in
  let st = Sim.make mgr (Circuit.num_qubits c) in
  let rng = Random.State.make [| seed |] in
  let clbits = Array.make (max 1 (Circuit.num_clbits c)) 0 in
  let peak = ref 0 in
  List.iter
    (fun instr ->
      Sim.apply_instruction st instr ~rng ~clbits;
      peak := max !peak (Sim.node_count st))
    (Circuit.instructions c);
  Qdt_obs.Watermark.observe_int w_peak_nodes !peak;
  (st, !peak)

let rate hits lookups = if lookups = 0 then 0.0 else float_of_int hits /. float_of_int lookups

let stats_of ~m ~peak st =
  let mgr = Sim.manager st in
  let c = Pkg.cache_stats mgr in
  let slots = List.fold_left (fun acc t -> acc + t.Pkg.slots) 0 c.Pkg.caches in
  let fill = List.fold_left (fun acc t -> acc + t.Pkg.fill) 0 c.Pkg.caches in
  {
    (Backend.base_stats name m) with
    Backend.dd =
      Some
        {
          Backend.peak_nodes = peak;
          final_nodes = Sim.node_count st;
          unique_table_size = Pkg.unique_table_size mgr;
          cnum_table_size = Pkg.cnum_live_entries mgr;
          unique_hit_rate = rate c.Pkg.unique_hits c.Pkg.unique_lookups;
          compute_hit_rate = rate c.Pkg.compute_hits c.Pkg.compute_lookups;
          gc_runs = c.Pkg.gc_runs;
          nodes_collected = c.Pkg.nodes_collected;
          peak_live_nodes = c.Pkg.peak_nodes;
          compute_cache_fill = rate fill slots;
        };
  }

let simulate c =
  let* () = admit Backend.Full_state c in
  let (st, peak), m = Backend.timed ~span:"dd.simulate" (fun () -> run_tracked ~seed:0 c) in
  Ok (Sim.to_vec st, stats_of ~m ~peak st)

let amplitude c k =
  let* () = admit Backend.Amplitude c in
  let (st, peak), m = Backend.timed ~span:"dd.amplitude" (fun () -> run_tracked ~seed:0 c) in
  Ok (Sim.amplitude st k, stats_of ~m ~peak st)

(* Per-shot loop over one shared manager: the previous shot's root is
   unpinned before the next shot starts, so dead nodes stay collectable;
   the last state is kept pinned for the telemetry record. *)
(* Stays on the sequential [sample_per_shot]: every shot shares one DD
   manager (unique/compute tables, refcounts), which is not domain-safe —
   and sharing it is the point, since node reuse across shots is where the
   DD backend's compression comes from. *)
let run_dynamic ~seed ~shots c =
  let mgr = Pkg.create () in
  let n = Circuit.num_qubits c in
  let peak = ref 0 in
  let last = ref None in
  let counts =
    Shot_engine.sample_per_shot ~seed ~shots ~run_shot:(fun ~rng ->
        (match !last with Some prev -> Sim.release prev | None -> ());
        let st = Sim.make mgr n in
        last := Some st;
        let clbits = Array.make (max 1 (Circuit.num_clbits c)) 0 in
        List.iter
          (fun instr ->
            Sim.apply_instruction st instr ~rng ~clbits;
            peak := max !peak (Sim.node_count st))
          (Circuit.instructions c);
        if Circuit.has_measure c then Circuit.creg_value clbits
        else begin
          let key = ref 0 in
          for q = 0 to n - 1 do
            key := !key lor (Sim.measure_qubit st ~rng q lsl q)
          done;
          !key
        end)
  in
  let st = match !last with Some st -> st | None -> Sim.make mgr n in
  (st, !peak, counts)

let sample ?(seed = 0) ~shots c =
  let* () = admit Backend.Sample c in
  let ((st, peak), counts), m =
    Backend.timed ~span:"dd.sample" (fun () ->
        match Shot_engine.plan c with
        | Shot_engine.Static_unitary ->
            let st, peak = run_tracked ~seed c in
            ((st, peak), Sim.sample ~seed:(seed + 1) st ~shots)
        | Shot_engine.Static_final { unitary; map } ->
            let st, peak = run_tracked ~seed unitary in
            ( (st, peak),
              Shot_engine.remap_counts ~map (Sim.sample ~seed:(seed + 1) st ~shots) )
        | Shot_engine.Dynamic ->
            let st, peak, counts = run_dynamic ~seed ~shots c in
            ((st, peak), counts))
  in
  Ok (counts, stats_of ~m ~peak st)

let expectation_z ?(seed = 0) c q =
  let* () = admit Backend.Expectation_z c in
  let ((st, peak), v), m =
    Backend.timed ~span:"dd.expectation-z" (fun () ->
        let st, peak = run_tracked ~seed c in
        ((st, peak), Sim.expectation_z st q))
  in
  Ok (v, stats_of ~m ~peak st)
