(** First-class job descriptors for the session-oriented backend layer.

    A job names one simulation request — the four operations the backend
    layer has always offered — together with its per-job knobs (seed,
    shot count, target index/qubit).  Jobs are plain data: a server can
    queue them, a batch front end can replay them, and a session engine
    ({!Backend.SESSION}) executes them one after another against
    persistent per-session state. *)

type t =
  | Full_state  (** dense final state of a unitary circuit from [|0…0⟩] *)
  | Amplitude of int  (** one amplitude [⟨k|C|0…0⟩] *)
  | Sample of { seed : int; shots : int }
      (** measurement counts; [seed] drives collapse and sampling *)
  | Expectation_z of { seed : int; qubit : int }
      (** [⟨Z_qubit⟩] of the final state; [seed] drives mid-circuit
          collapse where the backend supports it *)

(** The payload a job produces.  Which constructor comes back is
    determined by the job: [Full_state → State], [Amplitude →
    Amplitude_of], [Sample → Counts], [Expectation_z → Expectation]. *)
type result =
  | State of Qdt_linalg.Vec.t
  | Amplitude_of of Qdt_linalg.Cx.t
  | Counts of (int * int) list
  | Expectation of float

(** Human-readable one-liner ("sample{seed=0; shots=100}"), for logs and
    batch-mode output. *)
val describe : t -> string
