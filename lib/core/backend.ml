(* First-class backend abstraction: the module type every simulation
   backend implements, the capability record the portfolio dispatcher
   queries, and the unified run-telemetry (stats) record every operation
   returns.  See DESIGN.md, "Backend layer". *)

type capabilities = {
  full_state : bool;
  amplitude : bool;
  sample : bool;
  expectation_z : bool;
  supports_nonunitary : bool;
  clifford_only : bool;
  max_qubits : int option;
  dynamic : bool;
}

type dd_stats = {
  peak_nodes : int;
  final_nodes : int;
  unique_table_size : int;
  cnum_table_size : int;
  unique_hit_rate : float;
  compute_hit_rate : float;
  (* Memory-management telemetry (PR 2): collections run, unique-table
     entries reclaimed, and the peak unique-table population (live + dead
     between collections) — the bounded-memory signal. *)
  gc_runs : int;
  nodes_collected : int;
  peak_live_nodes : int;
  compute_cache_fill : float;  (* occupied fraction across bounded caches *)
}

type mps_stats = { max_bond_dim : int; truncation_error : float }

(* OCaml-heap telemetry captured around each run (Gc.quick_stat deltas),
   so memory claims are measured rather than inferred from data-structure
   byte counts. *)
type heap_stats = {
  minor_words : float;
  major_words : float;
  top_heap_words : int;
}

type stats = {
  backend : string;
  wall_s : float;
  dd : dd_stats option;
  mps : mps_stats option;
  tableau_bytes : int option;
  heap : heap_stats option;
  metrics : (string * float) list;
  note : string option;
}

type error = { backend : string; operation : string; reason : string }
type 'a outcome = ('a * stats, error) result

type operation = Full_state | Amplitude | Sample | Expectation_z

let operation_name = function
  | Full_state -> "simulate"
  | Amplitude -> "amplitude"
  | Sample -> "sample"
  | Expectation_z -> "expectation-z"

let supports caps = function
  | Full_state -> caps.full_state
  | Amplitude -> caps.amplitude
  | Sample -> caps.sample
  | Expectation_z -> caps.expectation_z

let operation_of_job : Job.t -> operation = function
  | Job.Full_state -> Full_state
  | Job.Amplitude _ -> Amplitude
  | Job.Sample _ -> Sample
  | Job.Expectation_z _ -> Expectation_z

let unsupported ~backend ~operation reason =
  Error { backend; operation = operation_name operation; reason }

let error_to_string e =
  Printf.sprintf "backend %s does not support %s: %s" e.backend e.operation e.reason

(* Everything [timed] observed about one run: wall clock (via the shared
   monotonic clock), heap activity, and — when metrics are enabled — the
   change in every registered instrument over the run. *)
type measure = {
  wall_s : float;
  heap : heap_stats;
  metrics : (string * float) list;
}

let base_stats ?note name (m : measure) =
  {
    backend = name;
    wall_s = m.wall_s;
    dd = None;
    mps = None;
    tableau_bytes = None;
    heap = Some m.heap;
    metrics = m.metrics;
    note;
  }

let w_heap = Qdt_obs.Watermark.watermark "heap.peak_heap_words"

(* Session labels for the per-session dimension on [qdt.backend.runs].
   Labels must stay low-cardinality (the metrics registry hard-caps series
   per base name), so only the first [max_labeled_sessions] sessions of a
   process get their own value; the rest share "overflow".  One-shot shim
   calls carry no session label at all, keeping their series identical to
   the pre-session layer. *)
let session_seq = Atomic.make 0
let max_labeled_sessions = 32

let fresh_session_label () =
  let k = 1 + Atomic.fetch_and_add session_seq 1 in
  if k <= max_labeled_sessions then Printf.sprintf "s%d" k else "overflow"

(* Every adapter's span is "<backend>.<operation>" — reuse it as the label
   pair of a run counter, so runs per backend and operation are queryable
   dimensions.  The label set is closed (5 backends × 4 operations, plus a
   bounded session dimension), well under the registry's cardinality cap;
   registration happens once per distinct label set thanks to the
   registry's get-or-create semantics. *)
let run_counter ?session span =
  let session_label =
    match session with None -> [] | Some s -> [ ("session", s) ]
  in
  match String.index_opt span '.' with
  | Some i ->
      let backend = String.sub span 0 i
      and operation = String.sub span (i + 1) (String.length span - i - 1) in
      Qdt_obs.Metrics.counter_with
        ~labels:([ ("backend", backend); ("operation", operation) ] @ session_label)
        "qdt.backend.runs"
  | None ->
      Qdt_obs.Metrics.counter_with
        ~labels:(("span", span) :: session_label)
        "qdt.backend.runs"

let timed ?span ?session f =
  let run () =
    let g0 = Gc.quick_stat () in
    let t0 = Qdt_obs.Clock.now_ns () in
    let result = f () in
    let elapsed = Qdt_obs.Clock.elapsed_ns t0 in
    let g1 = Gc.quick_stat () in
    (result, elapsed, g0, g1)
  in
  let before =
    if Qdt_obs.Metrics.enabled () then Some (Qdt_obs.Metrics.snapshot ()) else None
  in
  (match span with
  | Some name when Qdt_obs.Metrics.enabled () ->
      Qdt_obs.Metrics.incr (run_counter ?session name)
  | _ -> ());
  let result, elapsed, g0, g1 =
    match span with
    | Some name -> Qdt_obs.Trace.with_span name run
    | None -> run ()
  in
  Qdt_obs.Watermark.observe_int w_heap g1.Gc.heap_words;
  let metrics =
    match before with
    | None -> []
    | Some before ->
        Qdt_obs.Metrics.flatten
          (Qdt_obs.Metrics.diff ~before ~after:(Qdt_obs.Metrics.snapshot ()))
  in
  ( result,
    {
      wall_s = Qdt_obs.Clock.ns_to_s elapsed;
      heap =
        {
          minor_words = g1.Gc.minor_words -. g0.Gc.minor_words;
          major_words = g1.Gc.major_words -. g0.Gc.major_words;
          top_heap_words = g1.Gc.top_heap_words;
        };
      metrics;
    } )

let stats_to_string (s : stats) =
  let b = Buffer.create 128 in
  Buffer.add_string b (Printf.sprintf "backend=%s wall=%.6fs" s.backend s.wall_s);
  (match s.dd with
  | Some d ->
      Buffer.add_string b
        (Printf.sprintf
           " dd{peak-nodes=%d final-nodes=%d unique-table=%d cnum-table=%d \
            unique-hit=%.1f%% cache-hit=%.1f%% cache-fill=%.1f%% gc-runs=%d \
            collected=%d peak-live=%d}"
           d.peak_nodes d.final_nodes d.unique_table_size d.cnum_table_size
           (100.0 *. d.unique_hit_rate)
           (100.0 *. d.compute_hit_rate)
           (100.0 *. d.compute_cache_fill)
           d.gc_runs d.nodes_collected d.peak_live_nodes)
  | None -> ());
  (match s.mps with
  | Some m ->
      Buffer.add_string b
        (Printf.sprintf " mps{max-bond=%d trunc-err=%.3e}" m.max_bond_dim
           m.truncation_error)
  | None -> ());
  (match s.tableau_bytes with
  | Some bytes -> Buffer.add_string b (Printf.sprintf " tableau{bytes=%d}" bytes)
  | None -> ());
  (match s.heap with
  | Some h ->
      Buffer.add_string b
        (Printf.sprintf " heap{minor-mw=%.3f major-mw=%.3f top-heap-mw=%.3f}"
           (h.minor_words /. 1e6) (h.major_words /. 1e6)
           (float_of_int h.top_heap_words /. 1e6))
  | None -> ());
  (match s.metrics with
  | [] -> ()
  | metrics ->
      Buffer.add_string b "\nmetrics:";
      List.iter
        (fun (k, v) -> Buffer.add_string b (Printf.sprintf " %s=%g" k v))
        metrics);
  (match s.note with
  | Some note -> Buffer.add_string b (Printf.sprintf "\nchoice: %s" note)
  | None -> ());
  Buffer.contents b

let pp_stats ppf s = Format.pp_print_string ppf (stats_to_string s)

module type BACKEND = sig
  val name : string
  val capabilities : capabilities

  (** Final state of a unitary circuit from [|0…0⟩]. *)
  val simulate : Qdt_circuit.Circuit.t -> Qdt_linalg.Vec.t outcome

  (** [amplitude c k] — ⟨k|C|0…0⟩. *)
  val amplitude : Qdt_circuit.Circuit.t -> int -> Qdt_linalg.Cx.t outcome

  (** [sample ?seed ~shots c] — measurement counts over all qubits. *)
  val sample : ?seed:int -> shots:int -> Qdt_circuit.Circuit.t -> (int * int) list outcome

  (** [expectation_z ?seed c q] — [⟨Z_q⟩] of the final state ([seed] drives
      mid-circuit measurement collapse where the backend supports it). *)
  val expectation_z : ?seed:int -> Qdt_circuit.Circuit.t -> int -> float outcome
end

type t = (module BACKEND)

(* Shared admission guard used by the adapters: operation capability,
   qubit-count limit, and measurement/reset handling.  [Full_state] and
   [Amplitude] always require a unitary circuit (a collapsed state is not
   "the" final state); [Sample]/[Expectation_z] admit measurements exactly
   when the backend executes them ([supports_nonunitary]). *)
let admit ~name ~caps ~operation c =
  if not (supports caps operation) then
    unsupported ~backend:name ~operation "operation not provided by this backend"
  else
    let num_qubits = Qdt_circuit.Circuit.num_qubits c in
    match caps.max_qubits with
    | Some m when num_qubits > m ->
        unsupported ~backend:name ~operation
          (Printf.sprintf "circuit has %d qubits, backend limit is %d" num_qubits m)
    | _ ->
        if Qdt_circuit.Circuit.has_conditionals c && not caps.dynamic then
          unsupported ~backend:name ~operation
            "circuit contains classically-controlled operations"
        else if Qdt_circuit.Circuit.is_unitary_only c then Ok ()
        else if
          caps.supports_nonunitary
          && (operation = Sample || operation = Expectation_z)
        then Ok ()
        else
          unsupported ~backend:name ~operation
            "circuit contains measurements or resets"

(* ------------------------------------------------------------------ *)
(* Sessions                                                            *)
(* ------------------------------------------------------------------ *)

(* The engine interface behind the session layer: [create] allocates the
   backend's expensive shared state once, [submit] executes jobs against
   it (unique tables, compute caches, statevector buffers and tableau
   allocations persist between jobs), [close] retires it.  See DESIGN.md,
   "Sessions and jobs". *)
module type SESSION = sig
  val name : string
  val capabilities : capabilities

  type t
  (** One persistent engine.  Not domain-safe: submit from one domain at
      a time (a server serialises jobs per session). *)

  (** [create ?label ()] opens a session.  [label] (see
      {!fresh_session_label}) tags the session's runs on the
      [qdt.backend.runs] metric; omit it for untagged one-shot use. *)
  val create : ?label:string -> unit -> t

  (** [submit session c job] executes [job] on circuit [c].  The stats
      record covers this job only (per-job deltas, not session
      cumulative totals).  Submitting to a closed session returns a
      typed error. *)
  val submit : t -> Qdt_circuit.Circuit.t -> Job.t -> Job.result outcome

  (** [close session] releases the engine; idempotent. *)
  val close : t -> unit
end

type engine = (module SESSION)

(* The typed error every engine returns for a submit after close. *)
let session_closed ~backend job =
  Error
    {
      backend;
      operation = operation_name (operation_of_job job);
      reason = "session is closed";
    }

(* [Of_session] derives the historical one-shot [BACKEND] functions from
   a session engine: open a session, submit one job, close.  A fresh
   session starts from the exact state the pre-session adapters built per
   call, so these shims are bit-identical to the old code paths — the
   registry, auto, CLI, bench and every differential test ride on them
   unchanged. *)
module Of_session (S : SESSION) = struct
  let name = S.name
  let capabilities = S.capabilities

  let one_shot c job =
    let s = S.create () in
    Fun.protect ~finally:(fun () -> S.close s) (fun () -> S.submit s c job)

  let payload_mismatch operation =
    Error
      {
        backend = S.name;
        operation = operation_name operation;
        reason = "internal error: session returned a mismatched job payload";
      }

  let simulate c =
    match one_shot c Job.Full_state with
    | Ok (Job.State v, stats) -> Ok (v, stats)
    | Ok _ -> payload_mismatch Full_state
    | Error e -> Error e

  let amplitude c k =
    match one_shot c (Job.Amplitude k) with
    | Ok (Job.Amplitude_of a, stats) -> Ok (a, stats)
    | Ok _ -> payload_mismatch Amplitude
    | Error e -> Error e

  let sample ?(seed = 0) ~shots c =
    match one_shot c (Job.Sample { seed; shots }) with
    | Ok (Job.Counts counts, stats) -> Ok (counts, stats)
    | Ok _ -> payload_mismatch Sample
    | Error e -> Error e

  let expectation_z ?(seed = 0) c q =
    match one_shot c (Job.Expectation_z { seed; qubit = q }) with
    | Ok (Job.Expectation v, stats) -> Ok (v, stats)
    | Ok _ -> payload_mismatch Expectation_z
    | Error e -> Error e
end
