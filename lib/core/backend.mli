(** First-class simulation backends (the architecture the paper's
    complementarity argument asks for): a common module type over the four
    data structures plus the stabilizer formalism, a machine-readable
    capability record, and a unified telemetry record so callers — CLI,
    bench harness, portfolio dispatcher — can discover what a backend can
    do and what a run cost. *)

(** What a backend can do.  The portfolio dispatcher ({!Backend_auto})
    filters on this before applying its heuristics. *)
type capabilities = {
  full_state : bool;  (** can produce the dense final state *)
  amplitude : bool;  (** can produce a single amplitude *)
  sample : bool;  (** can draw measurement counts *)
  expectation_z : bool;  (** can compute [⟨Z_q⟩] *)
  supports_nonunitary : bool;  (** executes measurements / resets *)
  clifford_only : bool;  (** restricted to the Clifford group *)
  max_qubits : int option;  (** hard qubit limit, [None] = unbounded *)
  dynamic : bool;
      (** executes dynamic circuits (mid-circuit measurement, reset,
          classical control) via the per-shot loop of {!Shot_engine} *)
}

(** Decision-diagram telemetry ({!Qdt_dd.Pkg}). *)
type dd_stats = {
  peak_nodes : int;  (** largest state DD during the run *)
  final_nodes : int;
  unique_table_size : int;
  cnum_table_size : int;
  unique_hit_rate : float;  (** share of node constructions answered by hash-consing *)
  compute_hit_rate : float;  (** share of operation-cache lookups that hit *)
  gc_runs : int;  (** mark-and-sweep collections during the run *)
  nodes_collected : int;  (** unique-table entries reclaimed by GC *)
  peak_live_nodes : int;  (** peak unique-table population (the bounded-memory signal) *)
  compute_cache_fill : float;  (** occupied fraction across the bounded compute caches *)
}

(** Matrix-product-state telemetry ({!Qdt_tensornet.Mps}). *)
type mps_stats = { max_bond_dim : int; truncation_error : float }

(** OCaml-heap telemetry: [Gc.quick_stat] deltas captured around the run
    by {!timed}, so memory claims are measured rather than inferred. *)
type heap_stats = {
  minor_words : float;  (** words allocated in the minor heap during the run *)
  major_words : float;  (** words allocated in the major heap during the run *)
  top_heap_words : int;  (** process-lifetime peak major-heap size *)
}

(** The unified run record: every backend operation returns one. *)
type stats = {
  backend : string;  (** backend that actually ran (Auto reports its pick) *)
  wall_s : float;  (** wall-clock seconds (shared clock: {!Qdt_obs.Clock}) *)
  dd : dd_stats option;
  mps : mps_stats option;
  tableau_bytes : int option;  (** stabilizer tableau footprint *)
  heap : heap_stats option;
  metrics : (string * float) list;
      (** change in every {!Qdt_obs.Metrics} instrument over the run;
          empty unless metrics were enabled *)
  note : string option;  (** Auto: why this backend was chosen *)
}

(** Typed unsupported-operation report (replaces the seed's
    [invalid_arg]-raising dispatcher arms). *)
type error = { backend : string; operation : string; reason : string }

type 'a outcome = ('a * stats, error) result

type operation = Full_state | Amplitude | Sample | Expectation_z

val operation_name : operation -> string

(** [supports caps op] — capability query for one operation. *)
val supports : capabilities -> operation -> bool

val unsupported : backend:string -> operation:operation -> string -> ('a, error) result
val error_to_string : error -> string

(** Everything {!timed} observed about one run. *)
type measure = {
  wall_s : float;
  heap : heap_stats;
  metrics : (string * float) list;
}

val base_stats : ?note:string -> string -> measure -> stats

(** [operation_of_job job] — the capability bucket a job falls in. *)
val operation_of_job : Job.t -> operation

(** [fresh_session_label ()] — a short process-unique label ("s1", "s2",
    …) for tagging a session's runs on the [qdt.backend.runs] metric.
    After 32 sessions the label clamps to ["overflow"] so metric
    cardinality stays bounded. *)
val fresh_session_label : unit -> string

(** [timed ?span ?session f] — run [f] and return its result with the
    run's measure: wall time on the shared monotonic clock, heap
    activity, and (when metrics are enabled) the per-instrument change.
    With [?span] the run is additionally bracketed in a
    {!Qdt_obs.Trace} span and counted on [qdt.backend.runs];
    [?session] adds a [session] label to that counter. *)
val timed : ?span:string -> ?session:string -> (unit -> 'a) -> 'a * measure

val stats_to_string : stats -> string
val pp_stats : Format.formatter -> stats -> unit

(** The signature every backend adapter implements. *)
module type BACKEND = sig
  val name : string
  val capabilities : capabilities

  (** Final state of a unitary circuit from [|0…0⟩]. *)
  val simulate : Qdt_circuit.Circuit.t -> Qdt_linalg.Vec.t outcome

  (** [amplitude c k] — ⟨k|C|0…0⟩. *)
  val amplitude : Qdt_circuit.Circuit.t -> int -> Qdt_linalg.Cx.t outcome

  (** [sample ?seed ~shots c] — measurement counts over all qubits. *)
  val sample : ?seed:int -> shots:int -> Qdt_circuit.Circuit.t -> (int * int) list outcome

  (** [expectation_z ?seed c q] — [⟨Z_q⟩] of the final state ([seed] drives
      mid-circuit measurement collapse where the backend supports it). *)
  val expectation_z : ?seed:int -> Qdt_circuit.Circuit.t -> int -> float outcome
end

type t = (module BACKEND)

(** [admit ~name ~caps ~operation c] — the shared admission guard:
    capability, qubit limit, and measurement/reset handling. *)
val admit :
  name:string ->
  caps:capabilities ->
  operation:operation ->
  Qdt_circuit.Circuit.t ->
  (unit, error) result

(** The engine interface behind the session layer: [create] allocates
    the backend's expensive shared state once, [submit] executes
    {!Job.t}s against it (unique tables, compute caches, statevector
    buffers and tableau allocations persist between jobs of one
    session), [close] retires it.  Stats on each submit are per-job
    deltas, not session cumulative totals.  See DESIGN.md, "Sessions
    and jobs". *)
module type SESSION = sig
  val name : string
  val capabilities : capabilities

  type t
  (** One persistent engine.  Not domain-safe: submit from one domain
      at a time (a server serialises jobs per session). *)

  (** [create ?label ()] opens a session.  [label] (see
      {!fresh_session_label}) tags the session's runs on the
      [qdt.backend.runs] metric; omit it for untagged one-shot use. *)
  val create : ?label:string -> unit -> t

  (** [submit session c job] executes [job] on circuit [c].  Submitting
      to a closed session returns a typed error. *)
  val submit : t -> Qdt_circuit.Circuit.t -> Job.t -> Job.result outcome

  (** [close session] releases the engine; idempotent. *)
  val close : t -> unit
end

type engine = (module SESSION)

(** The typed error every engine returns for a submit after close. *)
val session_closed : backend:string -> Job.t -> ('a, error) result

(** [Of_session (S)] — the historical one-shot [BACKEND] functions as
    thin shims over a session engine: open a session, submit one job,
    close.  A fresh session starts from the exact state the pre-session
    adapters built per call, so these shims are bit-identical to the
    old code paths. *)
module Of_session (S : SESSION) : BACKEND
