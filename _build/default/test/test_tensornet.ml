open Qdt_linalg
open Qdt_circuit
open Qdt_tensornet

let s2 = Cx.of_float Cx.sqrt1_2

let check_vec msg expect got =
  if not (Vec.approx_equal ~eps:1e-8 expect got) then
    Alcotest.failf "%s:@.expected %a@.got %a" msg Vec.pp expect Vec.pp got

let check_cx msg expect got =
  if not (Cx.approx_equal ~eps:1e-8 expect got) then
    Alcotest.failf "%s: expected %a got %a" msg Cx.pp expect Cx.pp got

(* ------------------------------------------------------------------ *)
(* Tensor                                                              *)
(* ------------------------------------------------------------------ *)

let test_tensor_basics () =
  let t = Tensor.create ~shape:[| 2; 3 |] ~labels:[| 10; 20 |] in
  Alcotest.(check int) "rank" 2 (Tensor.rank t);
  Alcotest.(check int) "size" 6 (Tensor.size t);
  Tensor.set t [| 1; 2 |] Cx.i;
  check_cx "get/set" Cx.i (Tensor.get t [| 1; 2 |]);
  check_cx "other zero" Cx.zero (Tensor.get t [| 0; 2 |]);
  Alcotest.check_raises "repeated label" (Invalid_argument "Tensor: repeated label")
    (fun () -> ignore (Tensor.create ~shape:[| 2; 2 |] ~labels:[| 1; 1 |]))

let test_tensor_of_mat_vec () =
  let v = Vec.of_array [| Cx.one; Cx.zero; Cx.i; Cx.zero |] in
  let t = Tensor.of_vec ~labels:[| 5; 6 |] v in
  (* first axis = msb *)
  check_cx "v[10]" Cx.i (Tensor.get t [| 1; 0 |]);
  check_cx "v[00]" Cx.one (Tensor.get t [| 0; 0 |]);
  let m = Gates.cx in
  let tm = Tensor.of_mat ~row_labels:[| 1; 2 |] ~col_labels:[| 3; 4 |] m in
  (* CX: |10> -> |11>: row 3, col 2: entry (1,1),(1,0) *)
  check_cx "cx entry" Cx.one (Tensor.get tm [| 1; 1; 1; 0 |]);
  check_cx "cx zero entry" Cx.zero (Tensor.get tm [| 1; 0; 1; 0 |])

let test_matrix_product_example3 () =
  (* Example 3 of the paper: C = AB as contraction over the shared index. *)
  let a = Mat.of_rows [| [| Cx.one; Cx.i |]; [| Cx.zero; Cx.of_float 2.0 |] |] in
  let b = Mat.of_rows [| [| Cx.of_float 3.0; Cx.zero |]; [| Cx.one; Cx.i |] |] in
  let ta = Tensor.of_mat ~row_labels:[| 1 |] ~col_labels:[| 2 |] a in
  let tb = Tensor.of_mat ~row_labels:[| 2 |] ~col_labels:[| 3 |] b in
  let tc = Tensor.contract ta tb in
  let expect = Mat.mul a b in
  for i = 0 to 1 do
    for j = 0 to 1 do
      check_cx
        (Printf.sprintf "C[%d][%d]" i j)
        (Mat.get expect i j)
        (Tensor.get tc [| i; j |])
    done
  done;
  Alcotest.(check int) "cost 2*2*2" 8 (Tensor.contract_cost ta tb)

let test_tensor_permute () =
  let t = Tensor.init ~shape:[| 2; 2 |] ~labels:[| 1; 2 |] (fun idx ->
      Cx.of_float (Float.of_int ((10 * idx.(0)) + idx.(1)))) in
  let p = Tensor.permute t [| 2; 1 |] in
  check_cx "transposed" (Cx.of_float 10.0) (Tensor.get p [| 0; 1 |]);
  check_cx "diag" (Cx.of_float 11.0) (Tensor.get p [| 1; 1 |])

let test_tensor_outer_product () =
  let a = Tensor.of_vec ~labels:[| 1 |] (Vec.of_array [| Cx.one; Cx.i |]) in
  let b = Tensor.of_vec ~labels:[| 2 |] (Vec.of_array [| Cx.of_float 2.0; Cx.zero |]) in
  let prod = Tensor.contract a b in
  Alcotest.(check int) "rank 2" 2 (Tensor.rank prod);
  check_cx "entry" (Cx.make 0.0 2.0) (Tensor.get prod [| 1; 0 |])

let test_tensor_fix () =
  let v = Vec.of_array [| Cx.one; Cx.zero; Cx.i; Cx.of_float 3.0 |] in
  let t = Tensor.of_vec ~labels:[| 9; 8 |] v in
  let fixed = Tensor.fix t ~label:9 ~value:1 in
  Alcotest.(check int) "rank drops" 1 (Tensor.rank fixed);
  check_cx "slice 0" Cx.i (Tensor.get fixed [| 0 |]);
  check_cx "slice 1" (Cx.of_float 3.0) (Tensor.get fixed [| 1 |])

let test_tensor_inner_to_scalar () =
  let a = Tensor.of_vec ~labels:[| 1 |] (Vec.of_array [| s2; s2 |]) in
  let b = Tensor.of_vec ~labels:[| 1 |] (Vec.of_array [| s2; s2 |]) in
  let sc = Tensor.contract a b in
  check_cx "scalar" Cx.one (Tensor.to_scalar sc)

(* ------------------------------------------------------------------ *)
(* Network                                                             *)
(* ------------------------------------------------------------------ *)

let test_network_open_labels () =
  let a = Tensor.of_mat ~row_labels:[| 1 |] ~col_labels:[| 2 |] Gates.h in
  let b = Tensor.of_mat ~row_labels:[| 2 |] ~col_labels:[| 3 |] Gates.h in
  let net = Network.of_list [ a; b ] in
  Alcotest.(check (list int)) "open" [ 1; 3 ] (Network.open_labels net);
  Alcotest.(check int) "count" 2 (Network.tensor_count net)

let test_network_plans_agree () =
  (* H·H = I via both planners. *)
  let mk l1 l2 = Tensor.of_mat ~row_labels:[| l1 |] ~col_labels:[| l2 |] Gates.h in
  let net = Network.of_list [ mk 1 2; mk 2 3 ] in
  let seq, _ = Network.contract_all ~plan:Network.Sequential net in
  let greedy, _ = Network.contract_all ~plan:Network.Greedy net in
  Alcotest.(check bool) "equal results" true
    (Tensor.approx_equal ~eps:1e-10 (Tensor.permute seq [| 1; 3 |]) (Tensor.permute greedy [| 1; 3 |]));
  check_cx "identity" Cx.one (Tensor.get seq [| 0; 0 |]);
  check_cx "off diag" Cx.zero (Tensor.get seq [| 0; 1 |])

let test_greedy_cheaper_on_chain () =
  (* A long matrix chain contracted greedily should never beat-lose badly;
     here both orders are fine, so just sanity check stats populated. *)
  let chain =
    List.init 6 (fun k ->
        Tensor.of_mat ~row_labels:[| k |] ~col_labels:[| k + 1 |] Gates.h)
  in
  let _, stats = Network.contract_all ~plan:Network.Greedy (Network.of_list chain) in
  Alcotest.(check int) "contractions" 5 stats.Network.contractions;
  Alcotest.(check bool) "mults counted" true (stats.Network.multiplications > 0)

(* ------------------------------------------------------------------ *)
(* Circuit -> TN (Fig. 2, Example 4)                                   *)
(* ------------------------------------------------------------------ *)

let test_bell_tn_fig2 () =
  let tn = Circuit_tn.of_circuit Generators.bell in
  (* 2 input bubbles + 2 gate tensors, as drawn in Fig. 2. *)
  Alcotest.(check int) "tensor count" 4 (Network.tensor_count (Circuit_tn.network tn));
  let amp00, _ = Circuit_tn.amplitude tn 0 in
  let amp11, _ = Circuit_tn.amplitude tn 3 in
  let amp01, _ = Circuit_tn.amplitude tn 1 in
  check_cx "amp 00" s2 amp00;
  check_cx "amp 11" s2 amp11;
  check_cx "amp 01" Cx.zero amp01;
  let state, _ = Circuit_tn.statevector tn in
  check_vec "full state" (Vec.of_array [| s2; Cx.zero; Cx.zero; s2 |]) state

let test_tn_matches_arrays () =
  List.iter
    (fun (name, c) ->
      let tn = Circuit_tn.of_circuit c in
      let state, _ = Circuit_tn.statevector tn in
      let sv = Qdt_arraysim.Statevector.run_unitary c in
      check_vec name (Qdt_arraysim.Statevector.to_vec sv) state)
    [
      ("ghz4", Generators.ghz 4);
      ("w3", Generators.w_state 3);
      ("qft3", Generators.qft 3);
      ("grover2", Generators.grover_iterations ~marked:2 ~iterations:1 2);
      ("random", Generators.random_circuit ~seed:21 ~depth:3 4);
      ("toffoli-heavy", Generators.cuccaro_adder 1);
    ]

let test_tn_amplitudes_match_arrays () =
  let c = Generators.random_circuit ~seed:33 ~depth:4 5 in
  let tn = Circuit_tn.of_circuit c in
  let sv = Qdt_arraysim.Statevector.run_unitary c in
  List.iter
    (fun k ->
      let amp, _ = Circuit_tn.amplitude tn k in
      check_cx (Printf.sprintf "amp %d" k) (Qdt_arraysim.Statevector.amplitude sv k) amp)
    [ 0; 1; 7; 13; 31 ]

let test_tn_memory_linear () =
  (* Example 4: the network representation grows linearly in gates. *)
  let memory n = Circuit_tn.memory_bytes (Circuit_tn.of_circuit (Generators.ghz n)) in
  let m8 = memory 8 and m16 = memory 16 in
  Alcotest.(check bool) "roughly linear" true (m16 < 3 * m8);
  (* while the state vector doubles per qubit *)
  Alcotest.(check bool) "much smaller than 2^16 amplitudes" true (m16 < 16 * 65536)

let test_tn_expectation () =
  let ez q = fst (Circuit_tn.expectation_z (Generators.w_state 4) q) in
  Alcotest.(check (float 1e-8)) "W <Z_0>" 0.5 (ez 0);
  Alcotest.(check (float 1e-8)) "W <Z_3>" 0.5 (ez 3);
  let sv = Qdt_arraysim.Statevector.run_unitary (Generators.w_state 4) in
  Alcotest.(check (float 1e-8)) "matches arrays"
    (Qdt_arraysim.Statevector.expectation_z sv 2) (ez 2)

let test_amplitude_slicing () =
  (* slicing must reproduce the exact amplitude with a smaller peak *)
  let c = Generators.random_circuit ~seed:14 ~depth:4 6 in
  let tn = Circuit_tn.of_circuit c in
  let exact, full_stats = Circuit_tn.amplitude tn 13 in
  List.iter
    (fun slices ->
      let sliced, stats = Circuit_tn.amplitude_sliced ~slices tn 13 in
      check_cx (Printf.sprintf "%d slices" slices) exact sliced;
      Alcotest.(check bool)
        (Printf.sprintf "peak %d <= full %d" stats.Network.peak_tensor_size
           full_stats.Network.peak_tensor_size)
        true
        (stats.Network.peak_tensor_size <= full_stats.Network.peak_tensor_size))
    [ 0; 1; 2; 4 ];
  (* sliced work grows with the number of cuts *)
  let _, s2 = Circuit_tn.amplitude_sliced ~slices:2 tn 13 in
  let _, s4 = Circuit_tn.amplitude_sliced ~slices:4 tn 13 in
  Alcotest.(check bool) "more slices, more contractions" true
    (s4.Network.contractions > s2.Network.contractions)

let test_network_sliced_scalar () =
  (* sum over slices of a closed network = direct contraction *)
  let c = Generators.qft 4 in
  let tn = Circuit_tn.of_circuit c in
  let exact, _ = Circuit_tn.amplitude tn 5 in
  let sliced, _ = Circuit_tn.amplitude_sliced ~slices:3 tn 5 in
  check_cx "qft amplitude" exact sliced

let test_hilbert_schmidt_overlap () =
  (* Tr(U†U) = 2^n for any unitary *)
  let c = Generators.qft 4 in
  let tr, _ = Circuit_tn.hilbert_schmidt_overlap c c in
  check_cx "self trace" (Cx.of_float 16.0) tr;
  (* Tr(I) on bare wires *)
  let e = Circuit.empty 3 in
  let tr_id, _ = Circuit_tn.hilbert_schmidt_overlap e e in
  check_cx "identity trace" (Cx.of_float 8.0) tr_id;
  (* against a genuinely different circuit the magnitude drops *)
  let c2 = Circuit.(Generators.qft 4 |> z 0) in
  let tr2, _ = Circuit_tn.hilbert_schmidt_overlap c c2 in
  Alcotest.(check bool) "smaller magnitude" true (Cx.norm tr2 < 15.9);
  (* matches the dense trace *)
  let a = Generators.random_circuit ~seed:6 ~depth:3 3 in
  let b = Generators.random_circuit ~seed:7 ~depth:3 3 in
  let dense =
    Mat.hilbert_schmidt (Qdt_arraysim.Unitary_builder.unitary b)
      (Qdt_arraysim.Unitary_builder.unitary a)
  in
  let via_tn, _ = Circuit_tn.hilbert_schmidt_overlap a b in
  check_cx "matches dense Tr(U2† U1)" dense via_tn

(* ------------------------------------------------------------------ *)
(* MPS                                                                 *)
(* ------------------------------------------------------------------ *)

let test_mps_initial () =
  let mps = Mps.create 4 in
  check_cx "amp |0000>" Cx.one (Mps.amplitude mps 0);
  check_cx "amp |0001>" Cx.zero (Mps.amplitude mps 1);
  Alcotest.(check (float 1e-12)) "norm" 1.0 (Mps.norm mps);
  Alcotest.(check int) "bond 1" 1 (Mps.max_bond_dim mps)

let test_mps_bell () =
  let mps = Mps.run Generators.bell in
  check_vec "bell" (Vec.of_array [| s2; Cx.zero; Cx.zero; s2 |]) (Mps.to_vec mps);
  Alcotest.(check int) "bond 2" 2 (Mps.max_bond_dim mps)

let test_mps_matches_arrays () =
  List.iter
    (fun (name, c) ->
      let mps = Mps.run c in
      let sv = Qdt_arraysim.Statevector.run_unitary c in
      check_vec name (Qdt_arraysim.Statevector.to_vec sv) (Mps.to_vec mps))
    [
      ("ghz5", Generators.ghz 5);
      ("w4", Generators.w_state 4);
      ("qft4 (non-adjacent gates)", Generators.qft 4);
      ("random", Generators.random_circuit ~seed:8 ~depth:3 4);
      ("clifford", Generators.random_clifford ~seed:2 ~gates:40 4);
    ]

let test_mps_ghz_bond_is_2 () =
  (* GHZ is maximally structured: bond dimension stays 2 at any size. *)
  let mps = Mps.run (Generators.ghz 12) in
  Alcotest.(check int) "bond 2" 2 (Mps.max_bond_dim mps);
  check_cx "amp all-ones" s2 (Mps.amplitude mps ((1 lsl 12) - 1));
  Alcotest.(check (float 1e-9)) "norm" 1.0 (Mps.norm mps)

let test_mps_random_bond_grows () =
  let mps = Mps.run (Generators.random_circuit ~seed:3 ~depth:6 8) in
  Alcotest.(check bool) "bond grew" true (Mps.max_bond_dim mps > 4)

let test_mps_truncation () =
  let c = Generators.random_circuit ~seed:5 ~depth:6 6 in
  let exact = Mps.run c in
  let truncated = Mps.run ~max_bond:2 c in
  Alcotest.(check bool) "exact keeps norm" true (Float.abs (Mps.norm exact -. 1.0) < 1e-8);
  Alcotest.(check bool) "truncation recorded" true (Mps.truncation_error truncated > 0.0);
  Alcotest.(check bool) "bond capped" true (Mps.max_bond_dim truncated <= 2);
  Alcotest.(check bool) "memory smaller" true
    (Mps.memory_bytes truncated < Mps.memory_bytes exact)

let test_mps_expectation_z () =
  let mps = Mps.run (Generators.w_state 4) in
  Alcotest.(check (float 1e-8)) "W <Z_2>" 0.5 (Mps.expectation_z mps 2);
  let sv = Qdt_arraysim.Statevector.run_unitary (Generators.random_circuit ~seed:12 ~depth:3 4) in
  let mps2 = Mps.run (Generators.random_circuit ~seed:12 ~depth:3 4) in
  for q = 0 to 3 do
    Alcotest.(check (float 1e-7))
      (Printf.sprintf "random <Z_%d>" q)
      (Qdt_arraysim.Statevector.expectation_z sv q)
      (Mps.expectation_z mps2 q)
  done

let test_mps_sampling () =
  let mps = Mps.run (Generators.ghz 8) in
  let counts = Mps.sample ~seed:11 mps ~shots:600 in
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 counts in
  Alcotest.(check int) "all shots" 600 total;
  List.iter
    (fun (k, c) ->
      Alcotest.(check bool) "extremes only" true (k = 0 || k = 255);
      Alcotest.(check bool) "balanced" true (c > 200 && c < 400))
    counts;
  (* W state: one-hot outcomes only *)
  let w = Mps.run (Generators.w_state 5) in
  let wc = Mps.sample ~seed:3 w ~shots:500 in
  List.iter
    (fun (k, _) ->
      Alcotest.(check bool) "one-hot" true (List.mem k [ 1; 2; 4; 8; 16 ]))
    wc

let test_mps_rejects_three_qubit () =
  let mps = Mps.create 3 in
  Alcotest.check_raises "ccx rejected"
    (Invalid_argument "Mps.apply_instruction: gates on 3+ qubits not supported")
    (fun () ->
      Mps.apply_instruction mps
        (Circuit.Apply { gate = Gate.X; controls = [ 1; 2 ]; target = 0 }))

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_tn_matches_arrays =
  QCheck.Test.make ~name:"TN statevector = array sim" ~count:15
    (QCheck.make QCheck.Gen.(pair (int_range 1 4) (int_range 0 1000)))
    (fun (n, seed) ->
      let c = Generators.random_circuit ~seed ~depth:2 n in
      let state, _ = Circuit_tn.statevector (Circuit_tn.of_circuit c) in
      let sv = Qdt_arraysim.Statevector.run_unitary c in
      Vec.approx_equal ~eps:1e-7 (Qdt_arraysim.Statevector.to_vec sv) state)

let prop_plans_agree =
  QCheck.Test.make ~name:"greedy = sequential plan results" ~count:15
    (QCheck.make QCheck.Gen.(int_range 0 1000))
    (fun seed ->
      let c = Generators.random_circuit ~seed ~depth:2 3 in
      let tn = Circuit_tn.of_circuit c in
      let a, _ = Circuit_tn.statevector ~plan:Network.Sequential tn in
      let b, _ = Circuit_tn.statevector ~plan:Network.Greedy tn in
      Vec.approx_equal ~eps:1e-8 a b)

let prop_mps_matches_arrays =
  QCheck.Test.make ~name:"MPS = array sim" ~count:15
    (QCheck.make QCheck.Gen.(pair (int_range 2 5) (int_range 0 1000)))
    (fun (n, seed) ->
      let c = Generators.random_circuit ~seed ~depth:3 n in
      let mps = Mps.run c in
      let sv = Qdt_arraysim.Statevector.run_unitary c in
      Vec.approx_equal ~eps:1e-7 (Qdt_arraysim.Statevector.to_vec sv) (Mps.to_vec mps))

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_tn_matches_arrays; prop_plans_agree; prop_mps_matches_arrays ]

let () =
  Alcotest.run "qdt_tensornet"
    [
      ( "tensor",
        [
          Alcotest.test_case "basics" `Quick test_tensor_basics;
          Alcotest.test_case "of mat/vec" `Quick test_tensor_of_mat_vec;
          Alcotest.test_case "paper example 3" `Quick test_matrix_product_example3;
          Alcotest.test_case "permute" `Quick test_tensor_permute;
          Alcotest.test_case "outer product" `Quick test_tensor_outer_product;
          Alcotest.test_case "fix" `Quick test_tensor_fix;
          Alcotest.test_case "scalar" `Quick test_tensor_inner_to_scalar;
        ] );
      ( "network",
        [
          Alcotest.test_case "open labels" `Quick test_network_open_labels;
          Alcotest.test_case "plans agree" `Quick test_network_plans_agree;
          Alcotest.test_case "greedy chain" `Quick test_greedy_cheaper_on_chain;
        ] );
      ( "circuit_tn",
        [
          Alcotest.test_case "paper fig 2" `Quick test_bell_tn_fig2;
          Alcotest.test_case "matches arrays" `Quick test_tn_matches_arrays;
          Alcotest.test_case "amplitudes" `Quick test_tn_amplitudes_match_arrays;
          Alcotest.test_case "linear memory" `Quick test_tn_memory_linear;
          Alcotest.test_case "expectation" `Quick test_tn_expectation;
          Alcotest.test_case "hilbert-schmidt" `Quick test_hilbert_schmidt_overlap;
          Alcotest.test_case "amplitude slicing" `Quick test_amplitude_slicing;
          Alcotest.test_case "sliced qft" `Quick test_network_sliced_scalar;
        ] );
      ( "mps",
        [
          Alcotest.test_case "initial" `Quick test_mps_initial;
          Alcotest.test_case "bell" `Quick test_mps_bell;
          Alcotest.test_case "matches arrays" `Quick test_mps_matches_arrays;
          Alcotest.test_case "ghz bond 2" `Quick test_mps_ghz_bond_is_2;
          Alcotest.test_case "random bond grows" `Quick test_mps_random_bond_grows;
          Alcotest.test_case "truncation" `Quick test_mps_truncation;
          Alcotest.test_case "expectation" `Quick test_mps_expectation_z;
          Alcotest.test_case "sampling" `Quick test_mps_sampling;
          Alcotest.test_case "rejects 3q" `Quick test_mps_rejects_three_qubit;
        ] );
      ("properties", props);
    ]
