open Qdt_circuit
module Mat = Qdt_linalg.Mat

(* ------------------------------------------------------------------ *)
(* Gate                                                                *)
(* ------------------------------------------------------------------ *)

let all_gates =
  [
    Gate.I; Gate.X; Gate.Y; Gate.Z; Gate.H; Gate.S; Gate.Sdg; Gate.T; Gate.Tdg;
    Gate.Sx; Gate.Sxdg; Gate.Rx 0.3; Gate.Ry 1.2; Gate.Rz (-0.5); Gate.Phase 0.8;
    Gate.U3 { theta = 0.4; phi = 1.5; lambda = -0.2 };
  ]

let test_gate_adjoint () =
  List.iter
    (fun g ->
      let m = Gate.matrix g and madj = Gate.matrix (Gate.adjoint g) in
      if not (Mat.approx_equal ~eps:1e-10 (Mat.dagger m) madj) then
        Alcotest.failf "adjoint mismatch for %s" (Gate.to_string g))
    all_gates

let test_gate_unitary () =
  List.iter
    (fun g ->
      Alcotest.(check bool) (Gate.to_string g ^ " unitary") true
        (Mat.is_unitary (Gate.matrix g)))
    all_gates

let test_gate_names () =
  Alcotest.(check string) "h" "h" (Gate.name Gate.H);
  Alcotest.(check string) "sdg" "sdg" (Gate.name Gate.Sdg);
  Alcotest.(check string) "rz" "rz" (Gate.name (Gate.Rz 0.1));
  Alcotest.(check (list (float 1e-12))) "u3 params" [ 1.0; 2.0; 3.0 ]
    (Gate.params (Gate.U3 { theta = 1.0; phi = 2.0; lambda = 3.0 }))

let test_gate_predicates () =
  Alcotest.(check bool) "h clifford" true (Gate.is_clifford Gate.H);
  Alcotest.(check bool) "t not clifford" false (Gate.is_clifford Gate.T);
  Alcotest.(check bool) "rz diagonal" true (Gate.is_diagonal (Gate.Rz 0.3));
  Alcotest.(check bool) "h not diagonal" false (Gate.is_diagonal Gate.H);
  Alcotest.(check bool) "gate equal" true (Gate.equal (Gate.Rz 0.3) (Gate.Rz 0.3));
  Alcotest.(check bool) "gate not equal" false (Gate.equal (Gate.Rz 0.3) (Gate.Rz 0.4))

(* ------------------------------------------------------------------ *)
(* Circuit                                                             *)
(* ------------------------------------------------------------------ *)

let test_builder () =
  let c = Generators.bell in
  Alcotest.(check int) "qubits" 2 (Circuit.num_qubits c);
  Alcotest.(check int) "length" 2 (Circuit.length c);
  match Circuit.instructions c with
  | [ Circuit.Apply { gate = Gate.H; controls = []; target = 1 };
      Circuit.Apply { gate = Gate.X; controls = [ 1 ]; target = 0 } ] ->
      ()
  | _ -> Alcotest.fail "unexpected bell instructions"

let test_validation () =
  Alcotest.check_raises "out of range"
    (Invalid_argument "Circuit.add: qubit 2 out of range [0,2)") (fun () ->
      ignore Circuit.(empty 2 |> h 2));
  Alcotest.check_raises "overlap"
    (Invalid_argument "Circuit.add: repeated qubit operands") (fun () ->
      ignore Circuit.(empty 2 |> cx 1 1));
  Alcotest.check_raises "no qubits"
    (Invalid_argument "Circuit.empty: need at least one qubit") (fun () ->
      ignore (Circuit.empty 0))

let test_append_adjoint () =
  let c = Generators.bell in
  let cc = Circuit.append c (Circuit.adjoint c) in
  Alcotest.(check int) "appended length" 4 (Circuit.length cc);
  (match Circuit.instructions (Circuit.adjoint Circuit.(empty 1 |> t 0 |> s 0)) with
  | [ Circuit.Apply { gate = Gate.Sdg; _ }; Circuit.Apply { gate = Gate.Tdg; _ } ] -> ()
  | _ -> Alcotest.fail "adjoint should reverse and invert");
  Alcotest.check_raises "adjoint of measurement"
    (Invalid_argument "Circuit.adjoint: circuit contains measurements or resets")
    (fun () -> ignore (Circuit.adjoint Circuit.(measure_all (empty 1))))

let test_stats () =
  let c = Circuit.(empty 3 |> h 0 |> t 1 |> tdg 2 |> cx 0 1 |> ccx 0 1 2 |> swap 1 2) in
  Alcotest.(check int) "total" 6 (Circuit.count_total c);
  Alcotest.(check int) "two qubit" 2 (Circuit.count_two_qubit c);
  Alcotest.(check int) "t count" 2 (Circuit.t_count c);
  let counts = Circuit.gate_counts c in
  Alcotest.(check (option int)) "ccx" (Some 1) (List.assoc_opt "ccx" counts);
  Alcotest.(check (option int)) "cx" (Some 1) (List.assoc_opt "cx" counts);
  Alcotest.(check (option int)) "swap" (Some 1) (List.assoc_opt "swap" counts)

let test_depth () =
  (* h0 and h1 are parallel; cx serialises them. *)
  let c = Circuit.(empty 2 |> h 0 |> h 1 |> cx 0 1) in
  Alcotest.(check int) "depth 2" 2 (Circuit.depth c);
  let c2 = Circuit.(empty 2 |> h 0 |> h 0 |> h 0) in
  Alcotest.(check int) "sequential" 3 (Circuit.depth c2);
  Alcotest.(check int) "empty" 0 (Circuit.depth (Circuit.empty 3))

let test_remap () =
  let c = Circuit.(empty 3 |> cx 0 1) in
  let swapped = Circuit.remap (fun q -> 2 - q) c in
  (match Circuit.instructions swapped with
  | [ Circuit.Apply { controls = [ 2 ]; target = 1; _ } ] -> ()
  | _ -> Alcotest.fail "remap failed");
  Alcotest.(check bool) "equal self" true (Circuit.equal c c);
  Alcotest.(check bool) "not equal" false (Circuit.equal c swapped)

(* ------------------------------------------------------------------ *)
(* Generators (structure-level; semantics tested in test_arraysim)     *)
(* ------------------------------------------------------------------ *)

let test_generators_shape () =
  Alcotest.(check int) "ghz qubits" 5 (Circuit.num_qubits (Generators.ghz 5));
  Alcotest.(check int) "ghz gates" 5 (Circuit.count_total (Generators.ghz 5));
  Alcotest.(check int) "w qubits" 4 (Circuit.num_qubits (Generators.w_state 4));
  Alcotest.(check int) "qft gates" 6 (Circuit.count_total (Generators.qft ~swaps:false 3));
  Alcotest.(check int) "qft+swaps" 7 (Circuit.count_total (Generators.qft 3));
  Alcotest.(check int) "adder qubits" 8 (Circuit.num_qubits (Generators.cuccaro_adder 3));
  Alcotest.(check int) "bv qubits" 5 (Circuit.num_qubits (Generators.bernstein_vazirani ~secret:5 4));
  Alcotest.(check bool) "random deterministic" true
    (Circuit.equal
       (Generators.random_circuit ~seed:3 ~depth:4 5)
       (Generators.random_circuit ~seed:3 ~depth:4 5));
  Alcotest.(check bool) "random seeds differ" false
    (Circuit.equal
       (Generators.random_circuit ~seed:3 ~depth:4 5)
       (Generators.random_circuit ~seed:4 ~depth:4 5))

let test_clifford_t_generator () =
  let c = Generators.random_clifford_t ~seed:11 ~gates:200 ~t_fraction:0.3 5 in
  Alcotest.(check int) "gate count" 200 (Circuit.count_total c);
  let tc = Circuit.t_count c in
  Alcotest.(check bool) "t gates present" true (tc > 20 && tc < 120);
  let cliff = Generators.random_clifford ~seed:11 ~gates:100 4 in
  Alcotest.(check int) "clifford count" 100 (Circuit.count_total cliff);
  Alcotest.(check int) "clifford t-free" 0 (Circuit.t_count cliff)

(* ------------------------------------------------------------------ *)
(* QASM round trip                                                     *)
(* ------------------------------------------------------------------ *)

let roundtrip c =
  let text = Qasm.to_string c in
  let parsed = Qasm.of_string text in
  if not (Circuit.equal c parsed) then
    Alcotest.failf "roundtrip failed:@.%s@.parsed:@.%a" text Circuit.pp parsed

let test_qasm_roundtrip () =
  roundtrip Generators.bell;
  roundtrip (Generators.ghz 4);
  roundtrip (Generators.qft 4);
  roundtrip (Generators.w_state 3);
  roundtrip (Generators.grover ~marked:3 3);
  roundtrip (Generators.random_circuit ~seed:5 ~depth:3 4);
  roundtrip (Circuit.measure_all (Generators.bell));
  roundtrip Circuit.(empty 3 |> cswap 0 1 2 |> swap 0 2 |> ccx 0 1 2)

let test_qasm_parse () =
  let src =
    {|OPENQASM 2.0;
include "qelib1.inc";
// a comment
qreg q[3];
creg c[3];
h q[0];
cx q[0],q[1];
rz(pi/4) q[2];
rx(-pi) q[1];
u3(0.1,0.2,0.3) q[0];
barrier q[0],q[1];
measure q[0] -> c[0];
|}
  in
  let c = Qasm.of_string src in
  Alcotest.(check int) "qubits" 3 (Circuit.num_qubits c);
  Alcotest.(check int) "instructions" 7 (Circuit.length c);
  match List.nth (Circuit.instructions c) 2 with
  | Circuit.Apply { gate = Gate.Rz theta; _ } ->
      Alcotest.(check (float 1e-12)) "pi/4" (Float.pi /. 4.0) theta
  | _ -> Alcotest.fail "expected rz"

let test_qasm_angle_expressions () =
  let c = Qasm.of_string "qreg q[1]; rz(2*pi/3) q[0]; rz(1.5e-2) q[0]; rz(-(pi+1)/2) q[0];" in
  match Circuit.instructions c with
  | [ Circuit.Apply { gate = Gate.Rz a; _ };
      Circuit.Apply { gate = Gate.Rz b; _ };
      Circuit.Apply { gate = Gate.Rz d; _ } ] ->
      Alcotest.(check (float 1e-12)) "2pi/3" (2.0 *. Float.pi /. 3.0) a;
      Alcotest.(check (float 1e-12)) "1.5e-2" 0.015 b;
      Alcotest.(check (float 1e-12)) "-(pi+1)/2" (-.(Float.pi +. 1.0) /. 2.0) d
  | _ -> Alcotest.fail "expected three rz"

let test_qasm_gate_definitions () =
  let src =
    {|qreg q[3];
gate mybell a, b { h a; cx a, b; }
gate rot(theta) a { rz(theta/2) a; rz(theta/2) a; }
gate wrapper(x) a, b { mybell a, b; rot(x) b; }
mybell q[2], q[1];
rot(pi) q[0];
wrapper(pi/2) q[0], q[2];
|}
  in
  let c = Qasm.of_string src in
  (* mybell = 2 instrs; rot = 2; wrapper = 2 + 2 *)
  Alcotest.(check int) "expanded length" 8 (Circuit.length c);
  (match Circuit.instructions c with
  | Circuit.Apply { gate = Gate.H; target = 2; _ }
    :: Circuit.Apply { gate = Gate.X; controls = [ 2 ]; target = 1 }
    :: Circuit.Apply { gate = Gate.Rz a1; target = 0; _ }
    :: Circuit.Apply { gate = Gate.Rz a2; target = 0; _ }
    :: Circuit.Apply { gate = Gate.H; target = 0; _ }
    :: Circuit.Apply { gate = Gate.X; controls = [ 0 ]; target = 2 }
    :: Circuit.Apply { gate = Gate.Rz b1; target = 2; _ }
    :: _ ->
      Alcotest.(check (float 1e-12)) "pi/2" (Float.pi /. 2.0) a1;
      Alcotest.(check (float 1e-12)) "pi/2" (Float.pi /. 2.0) a2;
      Alcotest.(check (float 1e-12)) "pi/4" (Float.pi /. 4.0) b1
  | _ -> Alcotest.fail "unexpected expansion");
  (* semantics: user-defined bell equals the builtin construction *)
  let via_def = Qasm.of_string "qreg q[2]; gate b a, c { h a; cx a, c; } b q[1], q[0];" in
  Alcotest.(check bool) "equals generator" true (Circuit.equal via_def Generators.bell)

let test_qasm_gate_definition_errors () =
  let expect_error src =
    match Qasm.of_string src with
    | exception Qasm.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %S" src
  in
  expect_error "qreg q[2]; gate g a { h a; } g q[0], q[1];";
  expect_error "qreg q[2]; gate g(t) a { rz(t) a; } g q[0];";
  expect_error "qreg q[1]; gate g a { rz(zzz) a; } g(0.3) q[0];";
  expect_error "qreg q[1]; gate g a { h b; } g q[0];";
  expect_error "qreg q[1]; gate g a { h a; } gate g a { x a; } g q[0];";
  expect_error "qreg q[1]; gate g a { h a; "

let test_qasm_errors () =
  let expect_error src =
    match Qasm.of_string src with
    | exception Qasm.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %S" src
  in
  expect_error "qreg q[2]; zz q[0];";
  expect_error "h q[0];";
  expect_error "qreg q[2]; h q[5];";
  expect_error "qreg q[2]; h q[0]";
  expect_error "qreg q[2]; rz() q[0];";
  expect_error "qreg q[2]; cx q[0];"

(* ------------------------------------------------------------------ *)
(* Draw                                                                *)
(* ------------------------------------------------------------------ *)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec loop k = k + nl <= hl && (String.sub haystack k nl = needle || loop (k + 1)) in
  loop 0

let test_draw_bell () =
  let text = Draw.render Generators.bell in
  Alcotest.(check bool) "has [h]" true (contains ~needle:"[h]" text);
  Alcotest.(check bool) "has control dot" true (contains ~needle:"●" text);
  Alcotest.(check bool) "has q1 label" true (contains ~needle:"q1" text);
  Alcotest.(check bool) "two wire rows + gap" true
    (List.length (String.split_on_char '\n' (String.trim text)) = 3)

let test_draw_packing () =
  (* parallel single-qubit gates share one column *)
  let c = Circuit.(empty 3 |> h 0 |> h 1 |> h 2) in
  let lines = String.split_on_char '\n' (String.trim (Draw.render c)) in
  let widths = List.map String.length lines in
  (* all rows equally short: one packed column *)
  Alcotest.(check bool) "single column" true
    (List.for_all (fun w -> w < 16) widths);
  (* overlapping spans force separate columns: cx(0,2) then h 1 must not
     merge into the crossing region *)
  let c2 = Circuit.(empty 3 |> cx 0 2 |> h 1) in
  let r = Draw.render c2 in
  Alcotest.(check bool) "renders" true (String.length r > 0)

let test_draw_swap_measure () =
  let c = Circuit.(measure_all (empty 2 |> swap 0 1)) in
  let text = Draw.render c in
  Alcotest.(check bool) "swap glyph" true (contains ~needle:"✕" text);
  Alcotest.(check bool) "measure glyph" true (contains ~needle:"[M]" text)

let () =
  Alcotest.run "qdt_circuit"
    [
      ( "gate",
        [
          Alcotest.test_case "adjoint" `Quick test_gate_adjoint;
          Alcotest.test_case "unitary" `Quick test_gate_unitary;
          Alcotest.test_case "names" `Quick test_gate_names;
          Alcotest.test_case "predicates" `Quick test_gate_predicates;
        ] );
      ( "circuit",
        [
          Alcotest.test_case "builder" `Quick test_builder;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "append/adjoint" `Quick test_append_adjoint;
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "depth" `Quick test_depth;
          Alcotest.test_case "remap" `Quick test_remap;
        ] );
      ( "generators",
        [
          Alcotest.test_case "shapes" `Quick test_generators_shape;
          Alcotest.test_case "clifford+t" `Quick test_clifford_t_generator;
        ] );
      ( "qasm",
        [
          Alcotest.test_case "roundtrip" `Quick test_qasm_roundtrip;
          Alcotest.test_case "parse" `Quick test_qasm_parse;
          Alcotest.test_case "angles" `Quick test_qasm_angle_expressions;
          Alcotest.test_case "errors" `Quick test_qasm_errors;
          Alcotest.test_case "gate definitions" `Quick test_qasm_gate_definitions;
          Alcotest.test_case "gate definition errors" `Quick test_qasm_gate_definition_errors;
        ] );
      ( "draw",
        [
          Alcotest.test_case "bell" `Quick test_draw_bell;
          Alcotest.test_case "swap+measure" `Quick test_draw_swap_measure;
          Alcotest.test_case "column packing" `Quick test_draw_packing;
        ] );
    ]
