(* Focused edge-case tests across all libraries: boundary conditions,
   degenerate inputs, and cross-module consistency that the main suites
   don't exercise. *)

open Qdt_linalg
open Qdt_circuit

(* ------------------------------------------------------------------ *)
(* Linalg corner cases                                                 *)
(* ------------------------------------------------------------------ *)

let test_cx_div_by_small () =
  let tiny = Cx.make 1e-30 0.0 in
  let z = Cx.div Cx.one tiny in
  Alcotest.(check bool) "huge but finite" true (Float.is_finite z.Cx.re)

let test_vec_empty_ops () =
  let v = Vec.create 1 in
  Alcotest.(check (float 1e-12)) "zero norm" 0.0 (Vec.norm v);
  Alcotest.(check bool) "zero equals itself" true (Vec.approx_equal v v)

let test_mat_1x1 () =
  let m = Mat.of_rows [| [| Cx.i |] |] in
  Alcotest.(check bool) "1x1 unitary" true (Mat.is_unitary m);
  Alcotest.(check bool) "trace" true (Cx.approx_equal Cx.i (Mat.trace m));
  let d = Mat.dagger m in
  Alcotest.(check bool) "dagger" true (Cx.approx_equal (Cx.neg Cx.i) (Mat.get d 0 0))

let test_mat_nonsquare_kron () =
  let a = Mat.init 1 2 (fun _ c -> Cx.of_float (Float.of_int (c + 1))) in
  let b = Mat.init 2 1 (fun r _ -> Cx.of_float (Float.of_int (r + 3))) in
  let k = Mat.kron a b in
  Alcotest.(check int) "rows" 2 (Mat.rows k);
  Alcotest.(check int) "cols" 2 (Mat.cols k);
  Alcotest.(check bool) "entry" true
    (Cx.approx_equal (Cx.of_float 8.0) (Mat.get k 1 1))

let test_svd_degenerate () =
  (* all-zero matrix *)
  let z = Mat.create 3 3 in
  let d = Svd.decompose z in
  Array.iter (fun s -> Alcotest.(check (float 1e-12)) "zero sv" 0.0 s) d.Svd.sigma;
  (* rank-1 outer product *)
  let one = Mat.init 3 3 (fun _ _ -> Cx.of_float 1.0) in
  let d1 = Svd.decompose one in
  Alcotest.(check (float 1e-9)) "dominant" 3.0 d1.Svd.sigma.(0);
  Alcotest.(check (float 1e-9)) "rest zero" 0.0 d1.Svd.sigma.(1)

(* ------------------------------------------------------------------ *)
(* Circuit / QASM corner cases                                         *)
(* ------------------------------------------------------------------ *)

let test_single_qubit_circuit () =
  let c = Circuit.(empty 1 |> h 0 |> t 0 |> h 0) in
  Alcotest.(check int) "depth" 3 (Circuit.depth c);
  Alcotest.(check int) "two-qubit count" 0 (Circuit.count_two_qubit c);
  let sv = Qdt_arraysim.Statevector.run_unitary c in
  Alcotest.(check (float 1e-12)) "norm" 1.0 (Qdt_arraysim.Statevector.norm sv)

let test_qasm_empty_program () =
  let c = Qasm.of_string "qreg q[2];" in
  Alcotest.(check int) "no instructions" 0 (Circuit.length c);
  Alcotest.(check int) "qubits" 2 (Circuit.num_qubits c)

let test_qasm_whitespace_and_comments () =
  let c = Qasm.of_string "  // leading comment\n\nqreg q[1];\n\n  h q[0]; // trailing\n" in
  Alcotest.(check int) "one gate" 1 (Circuit.length c)

let test_qasm_roundtrip_extreme_angles () =
  let c =
    Circuit.(
      empty 1
      |> rz 1e-17 0
      |> rz (2.0 *. Float.pi *. 1000.0) 0
      |> rz (-0.1234567890123456) 0)
  in
  let parsed = Qasm.of_string (Qasm.to_string c) in
  Alcotest.(check bool) "lossless" true (Circuit.equal c parsed)

let test_qasm_u_alias () =
  let c = Qasm.of_string "qreg q[1]; u(0.1,0.2,0.3) q[0]; u1(0.5) q[0];" in
  match Circuit.instructions c with
  | [ Circuit.Apply { gate = Gate.U3 _; _ }; Circuit.Apply { gate = Gate.Phase _; _ } ] -> ()
  | _ -> Alcotest.fail "aliases u/u1 should parse"

let test_measure_grows_clbits () =
  let c = Qasm.of_string "qreg q[2]; measure q[0] -> c[5];" in
  Alcotest.(check bool) "clbits at least 6" true (Circuit.num_clbits c >= 6)

let test_adjoint_involution () =
  let c = Generators.random_circuit ~seed:44 ~depth:3 3 in
  Alcotest.(check bool) "c†† = c" true (Circuit.equal c (Circuit.adjoint (Circuit.adjoint c)))

let test_gate_counts_controlled_names () =
  let c = Circuit.(empty 4 |> cgate Gate.Z ~controls:[ 1; 2; 3 ] ~target:0) in
  Alcotest.(check (option int)) "cccz" (Some 1)
    (List.assoc_opt "cccz" (Circuit.gate_counts c))

(* ------------------------------------------------------------------ *)
(* DD internals                                                        *)
(* ------------------------------------------------------------------ *)

let test_dd_zero_edge_arithmetic () =
  let mgr = Qdt_dd.Pkg.create () in
  let zero = Qdt_dd.Pkg.zero_edge mgr in
  let bell =
    Qdt_dd.Build.from_vec mgr
      (Vec.of_array
         [| Cx.of_float Cx.sqrt1_2; Cx.zero; Cx.zero; Cx.of_float Cx.sqrt1_2 |])
  in
  Alcotest.(check bool) "0 + x = x" true
    (Qdt_dd.Pkg.edge_equal bell (Qdt_dd.Pkg.add mgr zero bell));
  Alcotest.(check bool) "x + 0 = x" true
    (Qdt_dd.Pkg.edge_equal bell (Qdt_dd.Pkg.add mgr bell zero));
  Alcotest.(check bool) "scale by 0" true
    (Qdt_dd.Pkg.is_zero (Qdt_dd.Pkg.scale mgr Cx.zero bell))

let test_dd_cache_consistency () =
  (* the same multiplication twice gives physically identical results *)
  let mgr = Qdt_dd.Pkg.create () in
  let u = Qdt_dd.Build.circuit_unitary mgr (Generators.qft 3) in
  let s = Qdt_dd.Build.zero_state mgr 3 in
  let r1 = Qdt_dd.Pkg.mul_mv mgr u s in
  let r2 = Qdt_dd.Pkg.mul_mv mgr u s in
  Alcotest.(check bool) "cached result identical" true (Qdt_dd.Pkg.edge_equal r1 r2)

let test_dd_associativity () =
  let mgr = Qdt_dd.Pkg.create () in
  let a = Qdt_dd.Build.circuit_unitary mgr Circuit.(empty 2 |> h 0 |> t 1) in
  let b = Qdt_dd.Build.circuit_unitary mgr Circuit.(empty 2 |> cx 1 0) in
  let c = Qdt_dd.Build.circuit_unitary mgr Circuit.(empty 2 |> s 0) in
  let left = Qdt_dd.Pkg.mul_mm mgr (Qdt_dd.Pkg.mul_mm mgr a b) c in
  let right = Qdt_dd.Pkg.mul_mm mgr a (Qdt_dd.Pkg.mul_mm mgr b c) in
  Alcotest.(check bool) "(ab)c = a(bc)" true (Qdt_dd.Pkg.edge_equal left right)

let test_dd_adjoint_involution () =
  let mgr = Qdt_dd.Pkg.create () in
  let u = Qdt_dd.Build.circuit_unitary mgr (Generators.random_circuit ~seed:9 ~depth:2 3) in
  let udd = Qdt_dd.Pkg.adjoint mgr (Qdt_dd.Pkg.adjoint mgr u) in
  Alcotest.(check bool) "u†† = u" true (Qdt_dd.Pkg.edge_equal u udd)

let test_dd_pauli_expectation () =
  let st = Qdt_dd.Sim.run_unitary Generators.bell in
  Alcotest.(check (float 1e-9)) "<ZZ> = 1" 1.0 (Qdt_dd.Sim.expectation_pauli st "ZZ");
  Alcotest.(check (float 1e-9)) "<XX> = 1" 1.0 (Qdt_dd.Sim.expectation_pauli st "XX");
  Alcotest.(check (float 1e-9)) "<YY> = -1" (-1.0) (Qdt_dd.Sim.expectation_pauli st "YY");
  Alcotest.(check (float 1e-9)) "<ZI> = 0" 0.0 (Qdt_dd.Sim.expectation_pauli st "ZI");
  Alcotest.(check (float 1e-9)) "<II> = 1" 1.0 (Qdt_dd.Sim.expectation_pauli st "II");
  Alcotest.check_raises "bad length"
    (Invalid_argument "Sim.expectation_pauli: string length must equal qubit count")
    (fun () -> ignore (Qdt_dd.Sim.expectation_pauli st "Z"));
  (* cross-check against arrays on a random state *)
  let c = Generators.random_circuit ~seed:5 ~depth:3 3 in
  let dd = Qdt_dd.Sim.run_unitary c in
  let sv = Qdt_arraysim.Statevector.run_unitary c in
  let expect_z q = Qdt_arraysim.Statevector.expectation_z sv q in
  Alcotest.(check (float 1e-8)) "IIZ = Z_0" (expect_z 0) (Qdt_dd.Sim.expectation_pauli dd "IIZ");
  Alcotest.(check (float 1e-8)) "ZII = Z_2" (expect_z 2) (Qdt_dd.Sim.expectation_pauli dd "ZII")

(* ------------------------------------------------------------------ *)
(* ZX phases and rewriting edge cases                                  *)
(* ------------------------------------------------------------------ *)

let test_phase_normalisation () =
  let open Qdt_zx.Phase in
  Alcotest.(check bool) "5pi = pi" true (equal pi (of_rational 5 1));
  Alcotest.(check bool) "-pi/2 = 3pi/2" true (equal (of_rational 3 2) (of_rational (-1) 2));
  Alcotest.(check bool) "4/8 reduces" true (equal half_pi (of_rational 4 8));
  Alcotest.(check bool) "negative denominator" true (equal half_pi (of_rational (-1) (-2)))

let test_zx_single_wire_identity () =
  let c = Circuit.empty 3 in
  let d = Qdt_zx.Translate.of_circuit c in
  let _ = Qdt_zx.Simplify.full_reduce d in
  Alcotest.(check bool) "bare wires are identity" true (Qdt_zx.Simplify.is_identity d)

let test_zx_global_phase_circuit () =
  (* Rz ∘ Phase pairs realise a pure global phase: reduces to identity *)
  let c = Circuit.(empty 1 |> rz (-0.8) 0 |> phase 0.8 0) in
  let d = Qdt_zx.Translate.equivalence_diagram c (Circuit.empty 1) in
  let _ = Qdt_zx.Simplify.full_reduce d in
  Alcotest.(check bool) "global phase is identity" true (Qdt_zx.Simplify.is_identity d)

let test_extract_empty_and_single () =
  let e = Qdt_zx.Extract.optimize_circuit (Circuit.empty 2) in
  Alcotest.(check int) "empty stays empty" 0 (Circuit.count_total e);
  let one = Qdt_zx.Extract.optimize_circuit Circuit.(empty 1 |> t 0) in
  let u1 = Qdt_arraysim.Unitary_builder.unitary Circuit.(empty 1 |> t 0) in
  let u2 = Qdt_arraysim.Unitary_builder.unitary one in
  Alcotest.(check bool) "single T preserved" true
    (Mat.equal_up_to_global_phase ~eps:1e-8 u1 u2)

(* ------------------------------------------------------------------ *)
(* Coupling / routing edge cases                                       *)
(* ------------------------------------------------------------------ *)

let test_coupling_single_qubit () =
  let c = Qdt_compile.Coupling.line 1 in
  Alcotest.(check int) "one qubit" 1 (Qdt_compile.Coupling.num_qubits c);
  Alcotest.(check (list (pair int int))) "no edges" [] (Qdt_compile.Coupling.edges c)

let test_coupling_disconnected_distance () =
  let c = Qdt_compile.Coupling.of_edges 4 [ (0, 1); (2, 3) ] in
  Alcotest.(check int) "infinite" max_int (Qdt_compile.Coupling.distance c 0 3);
  Alcotest.check_raises "no path" Not_found (fun () ->
      ignore (Qdt_compile.Coupling.shortest_path c 0 3))

let test_router_on_larger_device () =
  (* 3-qubit circuit on a 5-qubit device *)
  let c = Generators.ghz 3 in
  let result = Qdt_compile.Router.route c (Qdt_compile.Coupling.line 5) in
  Alcotest.(check int) "device width" 5
    (Circuit.num_qubits result.Qdt_compile.Router.routed);
  Alcotest.(check bool) "respects" true
    (Qdt_compile.Router.respects result.Qdt_compile.Router.routed
       (Qdt_compile.Coupling.line 5))

let test_router_rejects_small_device () =
  Alcotest.check_raises "too small"
    (Invalid_argument "Router.route: coupling map too small") (fun () ->
      ignore (Qdt_compile.Router.route (Generators.ghz 4) (Qdt_compile.Coupling.line 3)))

(* ------------------------------------------------------------------ *)
(* Stabilizer edge cases                                               *)
(* ------------------------------------------------------------------ *)

let test_tableau_single_qubit_cycle () =
  let t = Qdt_stabilizer.Tableau.create 1 in
  (* HSHSHS is a 1-qubit Clifford of order dividing 24; apply its inverse
     pattern and land back on |0> stabilizer Z *)
  for _ = 1 to 4 do
    Qdt_stabilizer.Tableau.h t 0;
    Qdt_stabilizer.Tableau.s t 0;
    Qdt_stabilizer.Tableau.s t 0;
    Qdt_stabilizer.Tableau.h t 0
  done;
  Alcotest.(check (list string)) "back to Z" [ "+Z" ]
    (Qdt_stabilizer.Tableau.stabilizer_strings t)

let test_tableau_swap_consistency () =
  let t = Qdt_stabilizer.Tableau.create 2 in
  Qdt_stabilizer.Tableau.x t 0;
  Qdt_stabilizer.Tableau.swap t 0 1;
  Alcotest.(check int) "moved" (-1) (Qdt_stabilizer.Tableau.expectation_z t 1);
  Alcotest.(check int) "cleared" 1 (Qdt_stabilizer.Tableau.expectation_z t 0)

(* ------------------------------------------------------------------ *)
(* Cross-backend agreement on the new generators                       *)
(* ------------------------------------------------------------------ *)

let test_backends_agree_on_new_generators () =
  List.iter
    (fun (name, c) ->
      let reference = Qdt.simulate ~backend:Qdt.Arrays_backend c in
      List.iter
        (fun backend ->
          let state = Qdt.simulate ~backend c in
          if not (Vec.approx_equal ~eps:1e-7 reference state) then
            Alcotest.failf "%s: %s disagrees" name (Qdt.backend_name backend))
        [ Qdt.Decision_diagrams; Qdt.Tensor_network; Qdt.Mps ])
    [
      ("qaoa", Generators.qaoa_maxcut ~seed:2 ~layers:1 4);
      ("hidden shift", Generators.hidden_shift ~shift:9 4);
      ("quantum volume", Generators.quantum_volume ~seed:1 ~depth:2 4);
    ]

let test_expectation_z_uniform_api () =
  let c = Generators.w_state 4 in
  List.iter
    (fun backend ->
      Alcotest.(check (float 1e-7))
        (Qdt.backend_name backend)
        0.5
        (Qdt.expectation_z ~backend c 1))
    [ Qdt.Arrays_backend; Qdt.Decision_diagrams; Qdt.Tensor_network; Qdt.Mps ]

let () =
  Alcotest.run "qdt_edge_cases"
    [
      ( "linalg",
        [
          Alcotest.test_case "div small" `Quick test_cx_div_by_small;
          Alcotest.test_case "vec empty" `Quick test_vec_empty_ops;
          Alcotest.test_case "mat 1x1" `Quick test_mat_1x1;
          Alcotest.test_case "kron nonsquare" `Quick test_mat_nonsquare_kron;
          Alcotest.test_case "svd degenerate" `Quick test_svd_degenerate;
        ] );
      ( "circuit/qasm",
        [
          Alcotest.test_case "single qubit" `Quick test_single_qubit_circuit;
          Alcotest.test_case "empty program" `Quick test_qasm_empty_program;
          Alcotest.test_case "whitespace" `Quick test_qasm_whitespace_and_comments;
          Alcotest.test_case "extreme angles" `Quick test_qasm_roundtrip_extreme_angles;
          Alcotest.test_case "u aliases" `Quick test_qasm_u_alias;
          Alcotest.test_case "clbit growth" `Quick test_measure_grows_clbits;
          Alcotest.test_case "adjoint involution" `Quick test_adjoint_involution;
          Alcotest.test_case "controlled names" `Quick test_gate_counts_controlled_names;
        ] );
      ( "dd",
        [
          Alcotest.test_case "zero edges" `Quick test_dd_zero_edge_arithmetic;
          Alcotest.test_case "cache consistency" `Quick test_dd_cache_consistency;
          Alcotest.test_case "associativity" `Quick test_dd_associativity;
          Alcotest.test_case "adjoint involution" `Quick test_dd_adjoint_involution;
          Alcotest.test_case "pauli expectation" `Quick test_dd_pauli_expectation;
        ] );
      ( "zx",
        [
          Alcotest.test_case "phase normalisation" `Quick test_phase_normalisation;
          Alcotest.test_case "bare wires" `Quick test_zx_single_wire_identity;
          Alcotest.test_case "global phase" `Quick test_zx_global_phase_circuit;
          Alcotest.test_case "extract degenerate" `Quick test_extract_empty_and_single;
        ] );
      ( "compile",
        [
          Alcotest.test_case "single-qubit map" `Quick test_coupling_single_qubit;
          Alcotest.test_case "disconnected" `Quick test_coupling_disconnected_distance;
          Alcotest.test_case "larger device" `Quick test_router_on_larger_device;
          Alcotest.test_case "small device" `Quick test_router_rejects_small_device;
        ] );
      ( "stabilizer",
        [
          Alcotest.test_case "1q cycle" `Quick test_tableau_single_qubit_cycle;
          Alcotest.test_case "swap" `Quick test_tableau_swap_consistency;
        ] );
      ( "cross-backend",
        [
          Alcotest.test_case "new generators" `Quick test_backends_agree_on_new_generators;
          Alcotest.test_case "expectation api" `Quick test_expectation_z_uniform_api;
        ] );
    ]
