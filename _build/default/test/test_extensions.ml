(* Tests for the extension modules: noise trajectories, DD approximation,
   phase-polynomial optimization, lookahead routing, and the extra
   workload generators. *)

open Qdt_linalg
open Qdt_circuit
open Qdt_arraysim
module UB = Unitary_builder

let check_equiv_phase msg a b =
  if not (Mat.equal_up_to_global_phase ~eps:1e-7 (UB.unitary a) (UB.unitary b)) then
    Alcotest.failf "%s: circuits differ" msg

(* ------------------------------------------------------------------ *)
(* Trajectories                                                        *)
(* ------------------------------------------------------------------ *)

let test_trajectories_noiseless_limit () =
  (* depolarizing(0) must reproduce the ideal state exactly *)
  let c = Generators.ghz 4 in
  let sv = Trajectories.run_single ~noise:(Trajectories.depolarizing 0.0) c in
  let ideal = Statevector.run_unitary c in
  Alcotest.(check (float 1e-10)) "fidelity 1" 1.0 (Statevector.fidelity ideal sv)

let test_trajectories_match_density () =
  (* averaged trajectories converge to the density-matrix diagonal *)
  let c = Generators.bell in
  let noise = Trajectories.depolarizing 0.1 in
  let avg = Trajectories.average_probabilities ~seed:3 ~noise ~trajectories:800 c in
  let dm = Density.run ~noise:(fun () -> Density.depolarizing 0.1) c in
  let exact = Density.probabilities dm in
  Array.iteri
    (fun k p ->
      if Float.abs (p -. exact.(k)) > 0.05 then
        Alcotest.failf "p(%d): trajectories %.3f vs density %.3f" k p exact.(k))
    avg

let test_trajectories_amplitude_damping () =
  (* full damping returns |1> to |0> on every trajectory *)
  let c = Circuit.(empty 1 |> x 0) in
  let sv = Trajectories.run_single ~noise:(Trajectories.amplitude_damping 1.0) c in
  Alcotest.(check (float 1e-10)) "ground state" 1.0 (Statevector.probability sv 0)

let test_trajectories_fidelity_decays () =
  let c = Generators.ghz 3 in
  let f01 =
    Trajectories.average_fidelity ~seed:1 ~noise:(Trajectories.depolarizing 0.02)
      ~trajectories:60 c
  in
  let f10 =
    Trajectories.average_fidelity ~seed:1 ~noise:(Trajectories.depolarizing 0.2)
      ~trajectories:60 c
  in
  Alcotest.(check bool)
    (Printf.sprintf "more noise, less fidelity (%.3f vs %.3f)" f01 f10)
    true (f10 < f01);
  Alcotest.(check bool) "light noise keeps most fidelity" true (f01 > 0.8)

(* ------------------------------------------------------------------ *)
(* DD approximation                                                    *)
(* ------------------------------------------------------------------ *)

let test_approx_zero_threshold_is_identity () =
  let st = Qdt_dd.Sim.run_unitary (Generators.random_circuit ~seed:5 ~depth:3 5) in
  let before = Qdt_dd.Sim.root st in
  let fidelity = Qdt_dd.Approx.prune_state st ~threshold:0.0 in
  Alcotest.(check (float 1e-10)) "fidelity 1" 1.0 fidelity;
  Alcotest.(check bool) "same edge" true (Qdt_dd.Pkg.edge_equal before (Qdt_dd.Sim.root st))

let test_approx_shrinks_with_fidelity_bound () =
  (* a random state plus a tiny perturbation branch: pruning removes it *)
  let st = Qdt_dd.Sim.run_unitary (Generators.random_circuit ~seed:9 ~depth:4 8) in
  let nodes_before = Qdt_dd.Sim.node_count st in
  let fidelity = Qdt_dd.Approx.prune_state st ~threshold:1e-4 in
  let nodes_after = Qdt_dd.Sim.node_count st in
  Alcotest.(check bool)
    (Printf.sprintf "nodes %d -> %d" nodes_before nodes_after)
    true
    (nodes_after <= nodes_before);
  Alcotest.(check bool)
    (Printf.sprintf "fidelity %.6f stays high" fidelity)
    true (fidelity > 0.98);
  (* state renormalised *)
  let mgr = Qdt_dd.Sim.manager st in
  let n2 = (Qdt_dd.Pkg.inner mgr (Qdt_dd.Sim.root st) (Qdt_dd.Sim.root st)).Cx.re in
  Alcotest.(check (float 1e-9)) "norm 1" 1.0 n2

let test_approx_aggressive_threshold_prunes_more () =
  let run threshold =
    let st = Qdt_dd.Sim.run_unitary (Generators.random_circuit ~seed:2 ~depth:4 8) in
    let f = Qdt_dd.Approx.prune_state st ~threshold in
    (Qdt_dd.Sim.node_count st, f)
  in
  let nodes_light, f_light = run 1e-6 in
  let nodes_heavy, f_heavy = run 1e-2 in
  Alcotest.(check bool) "heavier pruning, fewer nodes" true (nodes_heavy <= nodes_light);
  Alcotest.(check bool) "heavier pruning, lower fidelity" true (f_heavy <= f_light +. 1e-12)

let test_approx_ghz_robust () =
  (* GHZ has two equal branches: moderate thresholds must keep both *)
  let st = Qdt_dd.Sim.run_unitary (Generators.ghz 8) in
  let f = Qdt_dd.Approx.prune_state st ~threshold:0.01 in
  Alcotest.(check (float 1e-9)) "nothing pruned" 1.0 f;
  Alcotest.(check (float 1e-9)) "p(1...1) intact" 0.5
    (Qdt_dd.Sim.probability st 255)

(* ------------------------------------------------------------------ *)
(* DD density matrices (noise-aware DD simulation, ref [13])           *)
(* ------------------------------------------------------------------ *)

module NS = Qdt_dd.Noise_sim

let test_noise_sim_pure () =
  let st = NS.run Generators.bell in
  Alcotest.(check (float 1e-9)) "trace" 1.0 (NS.trace st);
  Alcotest.(check (float 1e-9)) "purity" 1.0 (NS.purity st);
  Alcotest.(check (float 1e-9)) "p(00)" 0.5 (NS.probability st 0);
  Alcotest.(check (float 1e-9)) "p(11)" 0.5 (NS.probability st 3);
  Alcotest.(check (float 1e-9)) "p(01)" 0.0 (NS.probability st 1)

let test_noise_sim_matches_dense_density () =
  List.iter
    (fun p ->
      let noise_dd () = [ Gates.x |> Mat.scale (Qdt_linalg.Cx.of_float (Float.sqrt p));
                          Gates.id2 |> Mat.scale (Qdt_linalg.Cx.of_float (Float.sqrt (1.0 -. p))) ] in
      let dd = NS.run ~noise:noise_dd (Generators.ghz 3) in
      let dense = Density.run ~noise:(fun () -> Density.bit_flip p) (Generators.ghz 3) in
      (* same Kraus set up to ordering: compare matrices *)
      let m_dd = NS.to_mat dd in
      let m_dense = Density.matrix dense in
      if not (Mat.approx_equal ~eps:1e-8 m_dense m_dd) then
        Alcotest.failf "p=%f: DD density disagrees with dense density" p)
    [ 0.0; 0.05; 0.25 ]

let test_noise_sim_channels () =
  let st = NS.run ~noise:(fun () -> Density.depolarizing 0.2) Generators.bell in
  Alcotest.(check (float 1e-8)) "trace preserved" 1.0 (NS.trace st);
  Alcotest.(check bool) "purity dropped" true (NS.purity st < 0.99);
  let ideal = Qdt_arraysim.Statevector.to_vec (Qdt_arraysim.Statevector.run_unitary Generators.bell) in
  let f = NS.fidelity_to_pure st ideal in
  let dense = Density.run ~noise:(fun () -> Density.depolarizing 0.2) Generators.bell in
  let f_dense = Density.fidelity_to_pure dense (Qdt_arraysim.Statevector.run_unitary Generators.bell) in
  Alcotest.(check (float 1e-8)) "fidelity matches dense" f_dense f

let test_noise_sim_structured_stays_small () =
  (* a GHZ density matrix under phase damping keeps a compact DD while the
     dense representation is 4^n *)
  let n = 8 in
  let st = NS.run ~noise:(fun () -> Density.phase_damping 0.1) (Generators.ghz n) in
  Alcotest.(check (float 1e-7)) "trace" 1.0 (NS.trace st);
  Alcotest.(check bool)
    (Printf.sprintf "DD nodes %d << %d dense entries" (NS.node_count st) (1 lsl (2 * n)))
    true
    (NS.node_count st * 50 < 1 lsl (2 * n))

(* ------------------------------------------------------------------ *)
(* Phase polynomial                                                    *)
(* ------------------------------------------------------------------ *)

module PP = Qdt_compile.Phase_poly

let test_phase_poly_merges_parities () =
  (* T(x0); CX; T(x0⊕x1); CX; T(x0): merges to S(x0) + T(x0⊕x1) *)
  let c = Circuit.(empty 2 |> t 0 |> cx 1 0 |> t 0 |> cx 1 0 |> t 0) in
  let poly = PP.of_circuit c in
  let ts = PP.terms poly in
  Alcotest.(check int) "two parities" 2 (List.length ts);
  Alcotest.(check bool) "x0 has angle pi/2" true
    (List.exists
       (fun (mask, theta) -> mask = 1 && Float.abs (theta -. (Float.pi /. 2.0)) < 1e-12)
       ts);
  Alcotest.(check bool) "x0^x1 has angle pi/4" true
    (List.exists
       (fun (mask, theta) -> mask = 3 && Float.abs (theta -. (Float.pi /. 4.0)) < 1e-12)
       ts)

let test_phase_poly_roundtrip () =
  List.iter
    (fun (name, c) ->
      let optimized = PP.optimize c in
      check_equiv_phase name c optimized)
    [
      ("t-cx ladder", Circuit.(empty 2 |> t 0 |> cx 1 0 |> t 0 |> cx 1 0 |> t 0));
      ("cx only", Circuit.(empty 3 |> cx 0 1 |> cx 1 2 |> cx 2 0));
      ("diagonal only", Circuit.(empty 2 |> t 0 |> s 1 |> rz 0.3 0));
      ( "dense block",
        Circuit.(
          empty 3 |> cx 2 1 |> t 1 |> cx 1 0 |> rz 0.7 0 |> cx 2 0 |> tdg 0 |> cx 1 0
          |> s 2 |> cx 2 1) );
      ("empty", Circuit.empty 2);
    ]

let test_phase_poly_reduces_t_count () =
  let c = Circuit.(empty 2 |> t 0 |> cx 1 0 |> t 0 |> cx 1 0 |> t 0) in
  Alcotest.(check int) "before" 3 (Circuit.t_count c);
  let optimized = PP.optimize c in
  (* surviving non-Clifford rotations *)
  let non_clifford =
    List.length
      (List.filter
         (function
           | Circuit.Apply { gate = Gate.Phase theta; _ } ->
               not (Qdt_zx.Phase.is_clifford (Qdt_zx.Phase.of_radians theta))
           | _ -> false)
         (Circuit.instructions optimized))
  in
  Alcotest.(check int) "one T-like phase left" 1 non_clifford

let test_phase_poly_rejects_foreign () =
  Alcotest.(check bool) "h not block" false
    (PP.is_block_instruction (Circuit.Apply { gate = Gate.H; controls = []; target = 0 }));
  match PP.of_circuit Circuit.(empty 1 |> h 0) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection"

let test_phase_poly_blocks () =
  (* H gates split the circuit into two optimizable blocks *)
  let c =
    Circuit.(
      empty 2 |> t 0 |> cx 1 0 |> t 0 |> cx 1 0 |> t 0 |> h 0 |> t 0 |> t 0)
  in
  let optimized = PP.optimize_blocks c in
  check_equiv_phase "blocks preserved" c optimized;
  Alcotest.(check bool) "shrunk" true
    (Circuit.count_total optimized < Circuit.count_total c)

let prop_phase_poly_preserves =
  QCheck.Test.make ~name:"phase-poly optimize preserves semantics" ~count:25
    (QCheck.make QCheck.Gen.(pair (int_range 2 4) (int_range 0 5000)))
    (fun (n, seed) ->
      (* random CNOT+diagonal circuit *)
      let st = Random.State.make [| seed; n |] in
      let c = ref (Circuit.empty n) in
      for _ = 1 to 25 do
        match Random.State.int st 4 with
        | 0 -> c := Circuit.t (Random.State.int st n) !c
        | 1 -> c := Circuit.rz (Random.State.float st 6.28) (Random.State.int st n) !c
        | 2 -> c := Circuit.s (Random.State.int st n) !c
        | _ ->
            let a = Random.State.int st n in
            let b = (a + 1 + Random.State.int st (n - 1)) mod n in
            c := Circuit.cx a b !c
      done;
      let optimized = PP.optimize !c in
      Mat.equal_up_to_global_phase ~eps:1e-7 (UB.unitary !c) (UB.unitary optimized))

(* ------------------------------------------------------------------ *)
(* Lookahead router                                                    *)
(* ------------------------------------------------------------------ *)

module LR = Qdt_compile.Lookahead_router
module Router = Qdt_compile.Router
module Coupling = Qdt_compile.Coupling

let test_lookahead_respects_coupling () =
  List.iter
    (fun (name, c, coupling) ->
      let result = LR.route c coupling in
      Alcotest.(check bool) (name ^ " respects") true
        (Router.respects result.Router.routed coupling))
    [
      ("qft5/line", Generators.qft 5, Coupling.line 5);
      ("qft6/grid", Generators.qft 6, Coupling.grid ~rows:2 ~cols:3);
      ("random/ring", Generators.random_circuit ~seed:4 ~depth:4 6, Coupling.ring 6);
      ("adder/line", Generators.cuccaro_adder 2, Coupling.line 6);
    ]

let test_lookahead_preserves_functionality () =
  List.iter
    (fun (name, c, coupling) ->
      let result = LR.route c coupling in
      let restored = Router.undo_final_permutation result in
      check_equiv_phase name c restored)
    [
      ("qft4/line", Generators.qft 4, Coupling.line 4);
      ("qft5/ring", Generators.qft 5, Coupling.ring 5);
      ("random/line", Generators.random_circuit ~seed:8 ~depth:3 5, Coupling.line 5);
    ]

let test_lookahead_vs_greedy_overhead () =
  (* the lookahead router should not be dramatically worse, and is usually
     better on interleaved long-range circuits *)
  let wins = ref 0 and total = ref 0 in
  List.iter
    (fun seed ->
      let c = Generators.random_circuit ~seed ~depth:5 8 in
      let coupling = Coupling.line 8 in
      let greedy = (Router.route c coupling).Router.added_swaps in
      let look = (LR.route c coupling).Router.added_swaps in
      incr total;
      if look <= greedy then incr wins)
    [ 0; 1; 2; 3; 4; 5; 6; 7 ];
  Alcotest.(check bool)
    (Printf.sprintf "lookahead wins or ties %d/%d" !wins !total)
    true
    (!wins >= !total / 2)

let prop_lookahead_preserves =
  QCheck.Test.make ~name:"lookahead routing preserves unitary" ~count:10
    (QCheck.make QCheck.Gen.(int_range 0 1000))
    (fun seed ->
      let c = Generators.random_circuit ~seed ~depth:3 4 in
      let result = LR.route c (Coupling.line 4) in
      let restored = Router.undo_final_permutation result in
      Mat.equal_up_to_global_phase ~eps:1e-6 (UB.unitary c) (UB.unitary restored))

(* ------------------------------------------------------------------ *)
(* New generators                                                      *)
(* ------------------------------------------------------------------ *)

let test_qaoa_shape () =
  let c = Generators.qaoa_maxcut ~seed:7 ~layers:2 6 in
  Alcotest.(check int) "qubits" 6 (Circuit.num_qubits c);
  Alcotest.(check bool) "has rz and rx" true
    (List.exists (fun (name, _) -> name = "rz") (Circuit.gate_counts c)
     && List.exists (fun (name, _) -> name = "rx") (Circuit.gate_counts c));
  Alcotest.(check bool) "deterministic" true
    (Circuit.equal c (Generators.qaoa_maxcut ~seed:7 ~layers:2 6));
  (* unit norm sanity *)
  let sv = Statevector.run_unitary c in
  Alcotest.(check (float 1e-9)) "norm" 1.0 (Statevector.norm sv)

let test_hidden_shift_recovers_shift () =
  List.iter
    (fun (n, shift) ->
      let c = Generators.hidden_shift ~shift n in
      let sv = Statevector.run_unitary c in
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "n=%d shift=%d" n shift)
        1.0
        (Statevector.probability sv shift))
    [ (2, 0); (2, 3); (4, 5); (4, 10); (6, 37); (8, 200) ]

let test_hidden_shift_is_clifford () =
  let c = Generators.hidden_shift ~shift:11 6 in
  Alcotest.(check bool) "stabilizer-simulable" true (Qdt_stabilizer.Tableau.supports c);
  (* and the tableau agrees with the dense simulator *)
  let t, _ = Qdt_stabilizer.Tableau.run c in
  for q = 0 to 5 do
    let expected = if 11 land (1 lsl q) <> 0 then -1 else 1 in
    Alcotest.(check int) (Printf.sprintf "qubit %d" q) expected
      (Qdt_stabilizer.Tableau.expectation_z t q)
  done

let test_quantum_volume_shape () =
  let c = Generators.quantum_volume ~seed:3 ~depth:3 6 in
  Alcotest.(check int) "qubits" 6 (Circuit.num_qubits c);
  Alcotest.(check bool) "cx present" true
    (List.mem_assoc "cx" (Circuit.gate_counts c));
  let sv = Statevector.run_unitary c in
  Alcotest.(check (float 1e-9)) "norm" 1.0 (Statevector.norm sv)

let props =
  List.map QCheck_alcotest.to_alcotest [ prop_phase_poly_preserves; prop_lookahead_preserves ]

let () =
  Alcotest.run "qdt_extensions"
    [
      ( "trajectories",
        [
          Alcotest.test_case "noiseless limit" `Quick test_trajectories_noiseless_limit;
          Alcotest.test_case "matches density" `Slow test_trajectories_match_density;
          Alcotest.test_case "amplitude damping" `Quick test_trajectories_amplitude_damping;
          Alcotest.test_case "fidelity decay" `Quick test_trajectories_fidelity_decays;
        ] );
      ( "dd-approximation",
        [
          Alcotest.test_case "zero threshold" `Quick test_approx_zero_threshold_is_identity;
          Alcotest.test_case "shrink with fidelity" `Quick test_approx_shrinks_with_fidelity_bound;
          Alcotest.test_case "threshold monotone" `Quick test_approx_aggressive_threshold_prunes_more;
          Alcotest.test_case "ghz robust" `Quick test_approx_ghz_robust;
        ] );
      ( "dd-noise",
        [
          Alcotest.test_case "pure" `Quick test_noise_sim_pure;
          Alcotest.test_case "matches dense" `Quick test_noise_sim_matches_dense_density;
          Alcotest.test_case "channels" `Quick test_noise_sim_channels;
          Alcotest.test_case "structured compact" `Quick test_noise_sim_structured_stays_small;
        ] );
      ( "phase-polynomial",
        [
          Alcotest.test_case "merges parities" `Quick test_phase_poly_merges_parities;
          Alcotest.test_case "roundtrip" `Quick test_phase_poly_roundtrip;
          Alcotest.test_case "t-count" `Quick test_phase_poly_reduces_t_count;
          Alcotest.test_case "rejects foreign" `Quick test_phase_poly_rejects_foreign;
          Alcotest.test_case "blocks" `Quick test_phase_poly_blocks;
        ] );
      ( "lookahead-router",
        [
          Alcotest.test_case "respects coupling" `Quick test_lookahead_respects_coupling;
          Alcotest.test_case "preserves functionality" `Quick test_lookahead_preserves_functionality;
          Alcotest.test_case "overhead vs greedy" `Quick test_lookahead_vs_greedy_overhead;
        ] );
      ( "generators",
        [
          Alcotest.test_case "qaoa" `Quick test_qaoa_shape;
          Alcotest.test_case "hidden shift" `Quick test_hidden_shift_recovers_shift;
          Alcotest.test_case "hidden shift clifford" `Quick test_hidden_shift_is_clifford;
          Alcotest.test_case "quantum volume" `Quick test_quantum_volume_shape;
        ] );
      ("properties", props);
    ]
