test/test_verify.ml: Alcotest Circuit Coupling Decompose Equiv Generators List Mutate Optimize Printf QCheck QCheck_alcotest Qdt_circuit Qdt_compile Qdt_verify Router
