test/test_stabilizer_rank.ml: Alcotest Ch_form Circuit Float Gate Generators List Printf QCheck QCheck_alcotest Qdt_arraysim Qdt_circuit Qdt_linalg Qdt_stabilizer Stabilizer_rank
