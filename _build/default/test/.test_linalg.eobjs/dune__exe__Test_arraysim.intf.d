test/test_arraysim.mli:
