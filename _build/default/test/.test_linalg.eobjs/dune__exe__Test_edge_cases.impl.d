test/test_edge_cases.ml: Alcotest Array Circuit Cx Float Gate Generators List Mat Qasm Qdt Qdt_arraysim Qdt_circuit Qdt_compile Qdt_dd Qdt_linalg Qdt_stabilizer Qdt_zx Svd Vec
