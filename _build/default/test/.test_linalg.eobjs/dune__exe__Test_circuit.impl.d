test/test_circuit.ml: Alcotest Circuit Draw Float Gate Generators List Qasm Qdt_circuit Qdt_linalg String
