test/test_zx_extract.mli:
