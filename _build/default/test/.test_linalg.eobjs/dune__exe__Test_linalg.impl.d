test/test_linalg.ml: Alcotest Array Cx Float Gates List Mat Printf QCheck QCheck_alcotest Qdt_linalg Random Svd Vec
