test/test_zx.mli:
