test/test_stabilizer_rank.mli:
