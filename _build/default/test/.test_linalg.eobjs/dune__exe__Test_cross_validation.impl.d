test/test_cross_validation.ml: Alcotest Circuit Float Generators List Option Qdt Qdt_circuit Qdt_linalg
