test/test_tensornet.mli:
