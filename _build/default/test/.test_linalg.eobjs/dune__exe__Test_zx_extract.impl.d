test/test_zx_extract.ml: Alcotest Circuit Eval Extract Gate Generators List Mat Phase Printf QCheck QCheck_alcotest Qdt_arraysim Qdt_circuit Qdt_linalg Qdt_zx Rules Simplify Translate
