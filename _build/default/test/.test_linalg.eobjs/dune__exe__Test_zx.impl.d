test/test_zx.ml: Alcotest Array Circuit Cx Diagram Eval Float Generators List Mat Phase Printf QCheck QCheck_alcotest Qdt_arraysim Qdt_circuit Qdt_linalg Qdt_zx Rules Simplify String Translate Vec
