test/test_cross_validation.mli:
