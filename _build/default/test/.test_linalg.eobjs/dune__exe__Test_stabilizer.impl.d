test/test_stabilizer.ml: Alcotest Circuit Float Generators Hashtbl List Printf QCheck QCheck_alcotest Qdt_arraysim Qdt_circuit Qdt_stabilizer Random Tableau
