test/test_compile.ml: Alcotest Circuit Coupling Cx Decompose Gate Gates Generators List Mat Optimize Printf QCheck QCheck_alcotest Qdt_arraysim Qdt_circuit Qdt_compile Qdt_linalg Router
