open Qdt_circuit
open Qdt_stabilizer

(* ------------------------------------------------------------------ *)
(* Basic states                                                        *)
(* ------------------------------------------------------------------ *)

let test_initial () =
  let t = Tableau.create 3 in
  Alcotest.(check (list string)) "stabilizers" [ "+Z.."; "+.Z."; "+..Z" ]
    (Tableau.stabilizer_strings t);
  Alcotest.(check int) "<Z0>" 1 (Tableau.expectation_z t 0)

let test_x_flips () =
  let t = Tableau.create 2 in
  Tableau.x t 0;
  Alcotest.(check (list string)) "stabilizers" [ "-Z."; "+.Z" ]
    (Tableau.stabilizer_strings t);
  Alcotest.(check int) "<Z0> = -1" (-1) (Tableau.expectation_z t 0);
  Alcotest.(check int) "<Z1> = +1" 1 (Tableau.expectation_z t 1)

let test_plus_state () =
  let t = Tableau.create 1 in
  Tableau.h t 0;
  Alcotest.(check (list string)) "X stabilizer" [ "+X" ] (Tableau.stabilizer_strings t);
  Alcotest.(check int) "<Z> = 0" 0 (Tableau.expectation_z t 0)

let test_bell_stabilizers () =
  let t, _ = Tableau.run Generators.bell in
  let strings = List.sort compare (Tableau.stabilizer_strings t) in
  Alcotest.(check (list string)) "XX and ZZ" [ "+XX"; "+ZZ" ] strings

let test_s_gate () =
  (* S|+> has stabilizer Y *)
  let t = Tableau.create 1 in
  Tableau.h t 0;
  Tableau.s t 0;
  Alcotest.(check (list string)) "Y" [ "+Y" ] (Tableau.stabilizer_strings t);
  Tableau.sdg t 0;
  Alcotest.(check (list string)) "back to X" [ "+X" ] (Tableau.stabilizer_strings t)

(* ------------------------------------------------------------------ *)
(* Measurement                                                         *)
(* ------------------------------------------------------------------ *)

let test_bell_measurement_correlated () =
  let seen = Hashtbl.create 4 in
  for seed = 0 to 63 do
    let t, _ = Tableau.run ~seed Generators.bell in
    let rng = Random.State.make [| seed |] in
    let b0 = Tableau.measure t ~rng 0 in
    let b1 = Tableau.measure t ~rng 1 in
    Alcotest.(check int) "correlated" b0 b1;
    Hashtbl.replace seen b0 ()
  done;
  Alcotest.(check int) "both outcomes" 2 (Hashtbl.length seen)

let test_repeated_measurement_stable () =
  let t = Tableau.create 1 in
  Tableau.h t 0;
  let rng = Random.State.make [| 5 |] in
  let first = Tableau.measure t ~rng 0 in
  for _ = 1 to 5 do
    Alcotest.(check int) "repeatable" first (Tableau.measure t ~rng 0)
  done

let test_ghz_sampling () =
  let t, _ = Tableau.run (Generators.ghz 6) in
  let counts = Tableau.sample ~seed:3 t ~shots:500 in
  List.iter
    (fun (k, _) -> Alcotest.(check bool) "extremes only" true (k = 0 || k = 63))
    counts;
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 counts in
  Alcotest.(check int) "all shots" 500 total

let test_reset () =
  let c = Circuit.(empty 2 |> h 0 |> cx 0 1 |> reset 0) in
  let t, _ = Tableau.run ~seed:1 c in
  Alcotest.(check int) "reset qubit reads 0" 1 (Tableau.expectation_z t 0)

(* ------------------------------------------------------------------ *)
(* Cross-validation against the dense simulator                        *)
(* ------------------------------------------------------------------ *)

let test_matches_statevector () =
  List.iter
    (fun seed ->
      let c = Generators.random_clifford ~seed ~gates:60 5 in
      let t, _ = Tableau.run c in
      let sv = Qdt_arraysim.Statevector.run_unitary c in
      for q = 0 to 4 do
        let exact = Qdt_arraysim.Statevector.expectation_z sv q in
        let stab = Tableau.expectation_z t q in
        let expected_class =
          if exact > 0.5 then 1 else if exact < -0.5 then -1 else 0
        in
        if Float.abs exact > 0.5 && Float.abs (Float.abs exact -. 1.0) > 1e-9 then
          Alcotest.failf "statevector <Z> of a stabilizer state must be -1/0/1, got %f"
            exact;
        Alcotest.(check int)
          (Printf.sprintf "seed %d qubit %d" seed q)
          expected_class stab
      done)
    [ 0; 1; 2; 3; 4; 5; 6; 7 ]

let test_supports () =
  Alcotest.(check bool) "clifford ok" true
    (Tableau.supports (Generators.random_clifford ~seed:1 ~gates:30 4));
  Alcotest.(check bool) "bell ok" true (Tableau.supports Generators.bell);
  Alcotest.(check bool) "t rejected" false
    (Tableau.supports Circuit.(empty 1 |> t 0));
  Alcotest.(check bool) "toffoli rejected" false
    (Tableau.supports Circuit.(empty 3 |> ccx 0 1 2));
  Alcotest.check_raises "t raises" (Invalid_argument "Tableau: non-Clifford gate")
    (fun () -> ignore (Tableau.run Circuit.(empty 1 |> t 0)))

(* ------------------------------------------------------------------ *)
(* Scale: hundreds of qubits are instant                               *)
(* ------------------------------------------------------------------ *)

let test_large_ghz () =
  let n = 200 in
  let t, _ = Tableau.run (Generators.ghz n) in
  Alcotest.(check int) "<Z0> undetermined" 0 (Tableau.expectation_z t 0);
  let rng = Random.State.make [| 9 |] in
  let first = Tableau.measure t ~rng 0 in
  (* after one measurement the whole register is pinned *)
  Alcotest.(check int) "<Z199> pinned" (if first = 1 then -1 else 1)
    (Tableau.expectation_z t (n - 1));
  Alcotest.(check bool) "quadratic memory only" true (Tableau.memory_bytes t < 1_000_000)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_matches_statevector =
  QCheck.Test.make ~name:"stabilizer <Z> matches dense <Z>" ~count:25
    (QCheck.make QCheck.Gen.(pair (int_range 1 5) (int_range 0 5000)))
    (fun (n, seed) ->
      let c = Generators.random_clifford ~seed ~gates:40 n in
      let t, _ = Tableau.run c in
      let sv = Qdt_arraysim.Statevector.run_unitary c in
      let ok = ref true in
      for q = 0 to n - 1 do
        let exact = Qdt_arraysim.Statevector.expectation_z sv q in
        let expected = if exact > 0.5 then 1 else if exact < -0.5 then -1 else 0 in
        if expected <> Tableau.expectation_z t q then ok := false
      done;
      !ok)

let prop_measurement_agrees_with_collapse =
  QCheck.Test.make ~name:"measured tableau stays consistent" ~count:20
    (QCheck.make QCheck.Gen.(pair (int_range 2 5) (int_range 0 5000)))
    (fun (n, seed) ->
      let c = Generators.random_clifford ~seed ~gates:30 n in
      let t, _ = Tableau.run c in
      let rng = Random.State.make [| seed |] in
      (* measuring twice gives the same answer; expectation becomes ±1 *)
      let q = seed mod n in
      let b = Tableau.measure t ~rng q in
      Tableau.measure t ~rng q = b
      && Tableau.expectation_z t q = (if b = 1 then -1 else 1))

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_matches_statevector; prop_measurement_agrees_with_collapse ]

let () =
  Alcotest.run "qdt_stabilizer"
    [
      ( "states",
        [
          Alcotest.test_case "initial" `Quick test_initial;
          Alcotest.test_case "x" `Quick test_x_flips;
          Alcotest.test_case "plus" `Quick test_plus_state;
          Alcotest.test_case "bell" `Quick test_bell_stabilizers;
          Alcotest.test_case "s gate" `Quick test_s_gate;
        ] );
      ( "measurement",
        [
          Alcotest.test_case "bell correlation" `Quick test_bell_measurement_correlated;
          Alcotest.test_case "repeatable" `Quick test_repeated_measurement_stable;
          Alcotest.test_case "ghz sampling" `Quick test_ghz_sampling;
          Alcotest.test_case "reset" `Quick test_reset;
        ] );
      ( "cross-validation",
        [
          Alcotest.test_case "matches statevector" `Quick test_matches_statevector;
          Alcotest.test_case "supports" `Quick test_supports;
          Alcotest.test_case "200 qubits" `Quick test_large_ghz;
        ] );
      ("properties", props);
    ]
