open Qdt_linalg
open Qdt_circuit
open Qdt_zx
module UB = Qdt_arraysim.Unitary_builder

let check_proportional msg expect got =
  if not (Eval.proportional ~eps:1e-6 expect got) then
    Alcotest.failf "%s:@.expected (up to scalar)@.%a@.got@.%a" msg Mat.pp expect Mat.pp got

(* Extraction correctness: translate, reduce, extract; the extracted
   circuit must implement the same unitary (up to global phase/scalar). *)
let roundtrip ?(reduce = true) name c =
  let d = Translate.of_circuit c in
  if reduce then ignore (Simplify.full_reduce d) else Rules.to_graph_like d;
  let extracted =
    try Extract.extract d
    with Extract.Extraction_failed msg -> Alcotest.failf "%s: extraction failed: %s" name msg
  in
  check_proportional name (UB.unitary c) (UB.unitary extracted);
  extracted

let test_extract_wire_cases () =
  ignore (roundtrip "identity wire" (Circuit.empty 1));
  ignore (roundtrip "identity 3 wires" (Circuit.empty 3));
  ignore (roundtrip "h" Circuit.(empty 1 |> h 0));
  ignore (roundtrip "hh" Circuit.(empty 1 |> h 0 |> h 0));
  ignore (roundtrip "swap" Circuit.(empty 2 |> swap 0 1));
  ignore (roundtrip "three-cycle" Circuit.(empty 3 |> swap 0 1 |> swap 1 2))

let test_extract_phase_gates () =
  ignore (roundtrip "s" Circuit.(empty 1 |> s 0));
  ignore (roundtrip "t" Circuit.(empty 1 |> t 0));
  ignore (roundtrip "rz" Circuit.(empty 1 |> rz 0.77 0));
  ignore (roundtrip "hsh" Circuit.(empty 1 |> h 0 |> s 0 |> h 0));
  ignore (roundtrip "hth" Circuit.(empty 1 |> h 0 |> t 0 |> h 0));
  ignore (roundtrip "x" Circuit.(empty 1 |> x 0));
  ignore (roundtrip "rx" Circuit.(empty 1 |> rx 1.3 0))

let test_extract_two_qubit () =
  ignore (roundtrip "cz" Circuit.(empty 2 |> cz 0 1));
  ignore (roundtrip "cx" Circuit.(empty 2 |> cx 1 0));
  ignore (roundtrip "cx other way" Circuit.(empty 2 |> cx 0 1));
  ignore (roundtrip "bell" Generators.bell);
  ignore (roundtrip "cx chain" Circuit.(empty 3 |> cx 2 1 |> cx 1 0));
  ignore (roundtrip "ghz3" (Generators.ghz 3))

let test_extract_structured () =
  ignore (roundtrip "qft2" (Generators.qft 2));
  ignore (roundtrip "qft3" (Generators.qft 3));
  ignore (roundtrip "toffoli" Circuit.(empty 3 |> ccx 2 1 0));
  ignore (roundtrip "w3" (Generators.w_state 3))

let test_extract_random_clifford () =
  List.iter
    (fun seed ->
      ignore
        (roundtrip
           (Printf.sprintf "clifford seed %d" seed)
           (Generators.random_clifford ~seed ~gates:30 3)))
    [ 0; 1; 2; 3; 4 ]

let test_extract_random_clifford_t () =
  List.iter
    (fun seed ->
      ignore
        (roundtrip
           (Printf.sprintf "clifford+t seed %d" seed)
           (Generators.random_clifford_t ~seed ~gates:25 ~t_fraction:0.3 3)))
    [ 0; 1; 2; 3; 4 ]

let test_extract_without_reduction () =
  (* extraction straight after graph-like conversion (no lcomp/pivot) *)
  List.iter
    (fun (name, c) -> ignore (roundtrip ~reduce:false name c))
    [
      ("bell raw", Generators.bell);
      ("qft2 raw", Generators.qft 2);
      ("clifford raw", Generators.random_clifford ~seed:9 ~gates:20 3);
    ]

let test_optimize_circuit_preserves () =
  List.iter
    (fun (name, c) ->
      let optimized = Extract.optimize_circuit c in
      if
        not
          (Mat.equal_up_to_global_phase ~eps:1e-6 (UB.unitary c) (UB.unitary optimized))
      then Alcotest.failf "%s: optimize_circuit changed the unitary" name)
    [
      ("bell", Generators.bell);
      ("qft3", Generators.qft 3);
      ("toffoli", Circuit.(empty 3 |> ccx 2 1 0));
      ("clifford+t", Generators.random_clifford_t ~seed:2 ~gates:40 ~t_fraction:0.3 3);
    ]

let test_optimize_reduces_t_count () =
  (* On redundant Clifford+T circuits the pipeline should not increase the
     T-count, and usually decrease it. *)
  let total_before = ref 0 and total_after = ref 0 in
  List.iter
    (fun seed ->
      let c = Generators.random_clifford_t ~seed ~gates:60 ~t_fraction:0.3 4 in
      let optimized = Extract.optimize_circuit c in
      (* count non-Clifford phase gates in both *)
      let t_of c =
        List.fold_left
          (fun acc instr ->
            match instr with
            | Circuit.Apply { gate = Gate.T | Gate.Tdg; _ } -> acc + 1
            | Circuit.Apply { gate = Gate.Phase theta | Gate.Rz theta; _ } ->
                let p = Phase.of_radians theta in
                if Phase.is_clifford p then acc else acc + 1
            | _ -> acc)
          0
          (Circuit.instructions c)
      in
      total_before := !total_before + t_of c;
      total_after := !total_after + t_of optimized;
      if
        not
          (Mat.equal_up_to_global_phase ~eps:1e-6 (UB.unitary c) (UB.unitary optimized))
      then Alcotest.failf "seed %d: semantics broken" seed)
    [ 1; 2; 3 ];
  Alcotest.(check bool)
    (Printf.sprintf "t-count %d -> %d" !total_before !total_after)
    true
    (!total_after <= !total_before)

let prop_extract_roundtrip =
  QCheck.Test.make ~name:"extract(reduce(translate(c))) ~ c" ~count:20
    (QCheck.make QCheck.Gen.(pair (int_range 1 3) (int_range 0 2000)))
    (fun (n, seed) ->
      let c = Generators.random_clifford_t ~seed ~gates:20 ~t_fraction:0.25 n in
      let d = Translate.of_circuit c in
      ignore (Simplify.full_reduce d);
      match Extract.extract d with
      | extracted ->
          Mat.equal_up_to_global_phase ~eps:1e-6 (UB.unitary c) (UB.unitary extracted)
      | exception Extract.Extraction_failed _ -> false)

let props = List.map QCheck_alcotest.to_alcotest [ prop_extract_roundtrip ]

let () =
  Alcotest.run "qdt_zx_extract"
    [
      ( "extract",
        [
          Alcotest.test_case "wires" `Quick test_extract_wire_cases;
          Alcotest.test_case "phase gates" `Quick test_extract_phase_gates;
          Alcotest.test_case "two qubit" `Quick test_extract_two_qubit;
          Alcotest.test_case "structured" `Quick test_extract_structured;
          Alcotest.test_case "random clifford" `Quick test_extract_random_clifford;
          Alcotest.test_case "random clifford+t" `Quick test_extract_random_clifford_t;
          Alcotest.test_case "without reduction" `Quick test_extract_without_reduction;
        ] );
      ( "optimize",
        [
          Alcotest.test_case "preserves semantics" `Quick test_optimize_circuit_preserves;
          Alcotest.test_case "reduces t-count" `Quick test_optimize_reduces_t_count;
        ] );
      ("properties", props);
    ]
