open Qdt_linalg
open Qdt_circuit
open Qdt_zx
module UB = Qdt_arraysim.Unitary_builder

let check_proportional msg expect got =
  if not (Eval.proportional ~eps:1e-6 expect got) then
    Alcotest.failf "%s:@.expected (up to scalar)@.%a@.got@.%a" msg Mat.pp expect Mat.pp got

let circuit_matrix c = UB.unitary c

(* ------------------------------------------------------------------ *)
(* Phase                                                               *)
(* ------------------------------------------------------------------ *)

let test_phase_arith () =
  let open Phase in
  Alcotest.(check bool) "pi+pi=0" true (is_zero (add pi pi));
  Alcotest.(check bool) "pi/2+pi/2=pi" true (is_pi (add half_pi half_pi));
  Alcotest.(check bool) "t+t=s" true (equal half_pi (add quarter_pi quarter_pi));
  Alcotest.(check bool) "neg" true (equal (of_rational 3 2) (neg half_pi));
  Alcotest.(check bool) "sub" true (is_zero (sub pi pi));
  Alcotest.(check (float 1e-12)) "radians" (Float.pi /. 4.0) (to_radians quarter_pi)

let test_phase_classes () =
  let open Phase in
  Alcotest.(check bool) "0 pauli" true (is_pauli zero);
  Alcotest.(check bool) "pi pauli" true (is_pauli pi);
  Alcotest.(check bool) "pi/2 not pauli" false (is_pauli half_pi);
  Alcotest.(check bool) "pi/2 proper clifford" true (is_proper_clifford half_pi);
  Alcotest.(check bool) "-pi/2 proper clifford" true (is_proper_clifford (neg half_pi));
  Alcotest.(check bool) "pi not proper" false (is_proper_clifford pi);
  Alcotest.(check bool) "pi/4 t-like" true (is_t_like quarter_pi);
  Alcotest.(check bool) "3pi/4 t-like" true (is_t_like (of_rational 3 4));
  Alcotest.(check bool) "pi/2 not t-like" false (is_t_like half_pi);
  Alcotest.(check bool) "pi/4 not clifford" false (is_clifford quarter_pi)

let test_phase_of_radians () =
  let open Phase in
  Alcotest.(check bool) "snap pi/4" true (equal quarter_pi (of_radians (Float.pi /. 4.0)));
  Alcotest.(check bool) "snap -pi/2" true
    (equal (of_rational 3 2) (of_radians (-.Float.pi /. 2.0)));
  let irr = of_radians 0.12345 in
  Alcotest.(check bool) "irrational kept" false (is_clifford irr);
  Alcotest.(check (float 1e-9)) "irrational value" 0.12345 (to_radians irr);
  (* addition still works across representations *)
  Alcotest.(check (float 1e-9)) "mixed add"
    (0.12345 +. (Float.pi /. 2.0))
    (to_radians (add irr half_pi))

(* ------------------------------------------------------------------ *)
(* Diagram basics                                                      *)
(* ------------------------------------------------------------------ *)

let test_diagram_basics () =
  let d = Diagram.create () in
  let i = Diagram.add_input d in
  let o = Diagram.add_output d in
  let v = Diagram.add_vertex d Diagram.Z Phase.half_pi in
  Diagram.connect d i v Diagram.Simple;
  Diagram.connect d v o Diagram.Had;
  Diagram.validate d;
  Alcotest.(check int) "vertices" 3 (Diagram.num_vertices d);
  Alcotest.(check int) "edges" 2 (Diagram.num_edges d);
  Alcotest.(check int) "degree" 2 (Diagram.degree d v);
  Alcotest.(check int) "spiders" 1 (List.length (Diagram.spiders d));
  Alcotest.(check bool) "phase" true (Phase.equal Phase.half_pi (Diagram.phase d v));
  Diagram.add_phase d v Phase.half_pi;
  Alcotest.(check bool) "added phase" true (Phase.is_pi (Diagram.phase d v))

let test_diagram_multi_edges () =
  let d = Diagram.create () in
  let a = Diagram.add_vertex d Diagram.Z Phase.zero in
  let b = Diagram.add_vertex d Diagram.Z Phase.zero in
  Diagram.connect d a b Diagram.Simple;
  Diagram.connect d a b Diagram.Simple;
  Diagram.connect d a b Diagram.Had;
  Alcotest.(check (pair int int)) "counts" (2, 1) (Diagram.edge_counts d a b);
  Diagram.disconnect_one d a b Diagram.Simple;
  Alcotest.(check (pair int int)) "after remove" (1, 1) (Diagram.edge_counts d a b);
  Alcotest.(check int) "degree with multi" 2 (Diagram.degree d a)

let test_diagram_adjoint_eval () =
  let c = Circuit.(empty 2 |> t 0 |> cx 1 0 |> s 1) in
  let d = Translate.of_circuit c in
  let m = Eval.to_matrix d in
  let mdag = Eval.to_matrix (Diagram.adjoint d) in
  check_proportional "adjoint = dagger" (Mat.dagger m) mdag

(* ------------------------------------------------------------------ *)
(* Translation and evaluation                                          *)
(* ------------------------------------------------------------------ *)

let translation_cases =
  [
    ("h", Circuit.(empty 1 |> h 0));
    ("t", Circuit.(empty 1 |> t 0));
    ("x", Circuit.(empty 1 |> x 0));
    ("rx", Circuit.(empty 1 |> rx 0.7 0));
    ("rz", Circuit.(empty 1 |> rz (-1.2) 0));
    ("hsh", Circuit.(empty 1 |> h 0 |> s 0 |> h 0));
    ("cx", Circuit.(empty 2 |> cx 1 0));
    ("cx rev", Circuit.(empty 2 |> cx 0 1));
    ("cz", Circuit.(empty 2 |> cz 0 1));
    ("swap", Circuit.(empty 2 |> x 0 |> swap 0 1));
    ("bell", Generators.bell);
    ("ghz3", Generators.ghz 3);
    ("w3 (needs lowering)", Generators.w_state 3);
    ("qft2", Generators.qft 2);
    ("toffoli", Circuit.(empty 3 |> ccx 2 1 0));
    ("clifford_t", Generators.random_clifford_t ~seed:3 ~gates:25 ~t_fraction:0.3 3);
    ("random u3", Generators.random_circuit ~seed:4 ~depth:2 2);
  ]

let test_translate_eval () =
  List.iter
    (fun (name, c) ->
      let d = Translate.of_circuit c in
      Diagram.validate d;
      check_proportional name (circuit_matrix c) (Eval.to_matrix d))
    translation_cases

let test_bell_state_example5 () =
  (* Example 5: plug |0⟩ states into the Bell circuit diagram and simplify:
     the Bell state comes out.  |0⟩ ∝ a phase-0 X spider of arity 1. *)
  let zero_states n =
    let d = Diagram.create () in
    for _q = 1 to n do
      let o = Diagram.add_output d in
      let x = Diagram.add_vertex d Diagram.X Phase.zero in
      Diagram.connect d x o Diagram.Simple
    done;
    d
  in
  let plugged = Diagram.compose (zero_states 2) (Translate.of_circuit Generators.bell) in
  Diagram.validate plugged;
  let bell =
    Vec.of_array [| Cx.of_float Cx.sqrt1_2; Cx.zero; Cx.zero; Cx.of_float Cx.sqrt1_2 |]
  in
  let check_state msg =
    let v = Vec.normalize (Eval.to_vector plugged) in
    Alcotest.(check bool) msg true (Vec.equal_up_to_global_phase ~eps:1e-6 bell v)
  in
  check_state "bell state before simplification";
  let _ = Simplify.full_reduce plugged in
  check_state "bell state after simplification"

(* ------------------------------------------------------------------ *)
(* Rewrite soundness (each pass preserves semantics up to scalar)      *)
(* ------------------------------------------------------------------ *)

let test_graph_like_sound () =
  List.iter
    (fun (name, c) ->
      let d = Translate.of_circuit c in
      let before = Eval.to_matrix d in
      Rules.to_graph_like d;
      Diagram.validate d;
      Alcotest.(check bool) (name ^ " graph-like") true (Rules.is_graph_like d);
      check_proportional (name ^ " preserved") before (Eval.to_matrix d))
    translation_cases

let test_full_reduce_sound () =
  List.iter
    (fun (name, c) ->
      let d = Translate.of_circuit c in
      let before = Eval.to_matrix d in
      let _report = Simplify.full_reduce d in
      Diagram.validate d;
      check_proportional (name ^ " reduced") before (Eval.to_matrix d))
    translation_cases

let test_clifford_reduces_small () =
  (* Interior Clifford spiders must be gone after full reduction. *)
  let c = Generators.random_clifford ~seed:11 ~gates:60 4 in
  let d = Translate.of_circuit c in
  let _ = Simplify.full_reduce d in
  List.iter
    (fun v ->
      let interior =
        List.for_all
          (fun (w, _) -> Diagram.kind d w <> Diagram.Boundary)
          (Diagram.neighbors d v)
      in
      if interior then
        Alcotest.(check bool) "interior spider is non-Clifford" false
          (Phase.is_clifford (Diagram.phase d v)))
    (Diagram.spiders d);
  Alcotest.(check bool)
    (Printf.sprintf "few spiders remain (%d)" (List.length (Diagram.spiders d)))
    true
    (List.length (Diagram.spiders d) <= 8)

let test_t_count_reduction () =
  (* E8: ZX reduction lowers T-count on redundant Clifford+T circuits. *)
  let c = Generators.random_clifford_t ~seed:17 ~gates:120 ~t_fraction:0.35 4 in
  let d = Translate.of_circuit c in
  let before = Simplify.t_count d in
  let _ = Simplify.full_reduce d in
  let after = Simplify.t_count d in
  Alcotest.(check bool)
    (Printf.sprintf "t-count %d -> %d" before after)
    true (after <= before);
  (* semantics preserved *)
  check_proportional "still the same unitary" (circuit_matrix c) (Eval.to_matrix d)

let test_tt_fuses () =
  (* T;T on one wire must fuse to a single S spider. *)
  let c = Circuit.(empty 1 |> t 0 |> t 0) in
  let d = Translate.of_circuit c in
  let before = Simplify.t_count d in
  Alcotest.(check int) "two T spiders" 2 before;
  let _ = Simplify.full_reduce d in
  Alcotest.(check int) "t-count 0 after fuse" 0 (Simplify.t_count d)

(* ------------------------------------------------------------------ *)
(* Exact scalar tracking                                               *)
(* ------------------------------------------------------------------ *)

let check_exact msg expect got =
  if not (Mat.approx_equal ~eps:1e-6 expect got) then
    Alcotest.failf "%s:@.expected@.%a@.got@.%a" msg Mat.pp expect Mat.pp got

let test_translate_exact_scalar () =
  List.iter
    (fun (name, c) ->
      let d = Translate.of_circuit c in
      check_exact name (circuit_matrix c) (Eval.to_matrix_exact d))
    translation_cases

let test_reduce_exact_scalar () =
  List.iter
    (fun (name, c) ->
      let d = Translate.of_circuit c in
      ignore (Simplify.full_reduce d);
      check_exact (name ^ " reduced") (circuit_matrix c) (Eval.to_matrix_exact d))
    translation_cases

let test_identity_scalar_is_one () =
  (* C;C† reduces to bare wires with scalar exactly 1: a complete
     diagrammatic equality proof, global phase included *)
  List.iter
    (fun seed ->
      let c = Generators.random_clifford ~seed ~gates:30 3 in
      let d = Translate.equivalence_diagram c c in
      ignore (Simplify.full_reduce d);
      Alcotest.(check bool) "identity" true (Simplify.is_identity d);
      Alcotest.(check bool)
        (Printf.sprintf "scalar %s = 1" (Cx.to_string (Diagram.scalar d)))
        true
        (Cx.approx_equal ~eps:1e-7 Cx.one (Diagram.scalar d)))
    [ 1; 2; 3; 4; 5 ]

let prop_reduce_exact =
  QCheck.Test.make ~name:"full_reduce preserves the exact unitary" ~count:25
    (QCheck.make QCheck.Gen.(pair (int_range 1 4) (int_range 0 5000)))
    (fun (n, seed) ->
      let c = Generators.random_clifford_t ~seed ~gates:25 ~t_fraction:0.2 n in
      let d = Translate.of_circuit c in
      ignore (Simplify.full_reduce d);
      Mat.approx_equal ~eps:1e-6 (circuit_matrix c) (Eval.to_matrix_exact d))

(* ------------------------------------------------------------------ *)
(* Equivalence checking via reduction to identity                      *)
(* ------------------------------------------------------------------ *)

let test_equivalence_identity () =
  List.iter
    (fun (name, c) ->
      let d = Translate.equivalence_diagram c c in
      let before = Eval.to_matrix d in
      check_proportional (name ^ " C;C† = I") (Mat.identity (Mat.rows before)) before;
      let _ = Simplify.full_reduce d in
      Alcotest.(check bool) (name ^ " reduces to identity") true (Simplify.is_identity d))
    [
      ("h", Circuit.(empty 1 |> h 0));
      ("s", Circuit.(empty 1 |> s 0));
      ("hsh", Circuit.(empty 1 |> h 0 |> s 0 |> h 0));
      ("cx", Circuit.(empty 2 |> cx 1 0));
      ("bell", Generators.bell);
      ("ghz3", Generators.ghz 3);
      ("clifford", Generators.random_clifford ~seed:5 ~gates:40 3);
      ("clifford_t", Generators.random_clifford_t ~seed:6 ~gates:30 ~t_fraction:0.2 3);
    ]

let test_inequivalence_not_identity () =
  let c1 = Generators.bell in
  let c2 = Circuit.(empty 2 |> h 1 |> cx 1 0 |> z 0) in
  let d = Translate.equivalence_diagram c1 c2 in
  let _ = Simplify.full_reduce d in
  Alcotest.(check bool) "different circuits do not reduce to identity" false
    (Simplify.is_identity d)

let test_swap_is_permutation () =
  let c = Circuit.(empty 2 |> swap 0 1) in
  let d = Translate.of_circuit c in
  let _ = Simplify.full_reduce d in
  match Simplify.is_identity_up_to_permutation d with
  | Some perm ->
      Alcotest.(check int) "0 -> 1" 1 perm.(0);
      Alcotest.(check int) "1 -> 0" 0 perm.(1)
  | None -> Alcotest.fail "swap should be a bare permutation"

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec loop k = k + nl <= hl && (String.sub haystack k nl = needle || loop (k + 1)) in
  loop 0

let test_dot () =
  let d = Translate.of_circuit Generators.bell in
  let dot = Diagram.to_dot d in
  Alcotest.(check bool) "graph" true (contains ~needle:"graph zx" dot);
  Alcotest.(check bool) "green spider" true (contains ~needle:"palegreen" dot);
  Alcotest.(check bool) "red spider" true (contains ~needle:"salmon" dot)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_translate_sound =
  QCheck.Test.make ~name:"translation preserves semantics (up to scalar)" ~count:15
    (QCheck.make QCheck.Gen.(pair (int_range 1 3) (int_range 0 1000)))
    (fun (n, seed) ->
      let c = Generators.random_clifford_t ~seed ~gates:20 ~t_fraction:0.3 n in
      let d = Translate.of_circuit c in
      Eval.proportional ~eps:1e-6 (circuit_matrix c) (Eval.to_matrix d))

let prop_reduce_sound =
  QCheck.Test.make ~name:"full_reduce preserves semantics (up to scalar)" ~count:15
    (QCheck.make QCheck.Gen.(pair (int_range 1 3) (int_range 0 1000)))
    (fun (n, seed) ->
      let c = Generators.random_clifford_t ~seed ~gates:25 ~t_fraction:0.25 n in
      let d = Translate.of_circuit c in
      let before = Eval.to_matrix d in
      let _ = Simplify.full_reduce d in
      Eval.proportional ~eps:1e-6 before (Eval.to_matrix d))

let prop_self_equivalence_reduces =
  QCheck.Test.make ~name:"C;C† reduces to the identity diagram" ~count:15
    (QCheck.make QCheck.Gen.(pair (int_range 1 3) (int_range 0 1000)))
    (fun (n, seed) ->
      let c = Generators.random_clifford ~seed ~gates:25 n in
      let d = Translate.equivalence_diagram c c in
      let _ = Simplify.full_reduce d in
      Simplify.is_identity d)

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_translate_sound; prop_reduce_sound; prop_self_equivalence_reduces;
      prop_reduce_exact ]

let () =
  Alcotest.run "qdt_zx"
    [
      ( "phase",
        [
          Alcotest.test_case "arithmetic" `Quick test_phase_arith;
          Alcotest.test_case "classes" `Quick test_phase_classes;
          Alcotest.test_case "of_radians" `Quick test_phase_of_radians;
        ] );
      ( "diagram",
        [
          Alcotest.test_case "basics" `Quick test_diagram_basics;
          Alcotest.test_case "multi edges" `Quick test_diagram_multi_edges;
          Alcotest.test_case "adjoint" `Quick test_diagram_adjoint_eval;
        ] );
      ( "translate",
        [
          Alcotest.test_case "eval matches circuits" `Quick test_translate_eval;
          Alcotest.test_case "paper example 5" `Quick test_bell_state_example5;
        ] );
      ( "rewriting",
        [
          Alcotest.test_case "graph-like sound" `Quick test_graph_like_sound;
          Alcotest.test_case "full reduce sound" `Quick test_full_reduce_sound;
          Alcotest.test_case "clifford reduces" `Quick test_clifford_reduces_small;
          Alcotest.test_case "t-count reduction" `Quick test_t_count_reduction;
          Alcotest.test_case "T·T fuses" `Quick test_tt_fuses;
        ] );
      ( "exact-scalars",
        [
          Alcotest.test_case "translation" `Quick test_translate_exact_scalar;
          Alcotest.test_case "full reduce" `Quick test_reduce_exact_scalar;
          Alcotest.test_case "identity scalar" `Quick test_identity_scalar_is_one;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "C;C† = identity" `Quick test_equivalence_identity;
          Alcotest.test_case "inequivalent detected" `Quick test_inequivalence_not_identity;
          Alcotest.test_case "swap permutation" `Quick test_swap_is_permutation;
        ] );
      ("export", [ Alcotest.test_case "dot" `Quick test_dot ]);
      ("properties", props);
    ]
