open Qdt_circuit
open Qdt_stabilizer
module Vec = Qdt_linalg.Vec
module Cx = Qdt_linalg.Cx

let check_vec msg expect got =
  if not (Vec.approx_equal ~eps:1e-7 expect got) then
    Alcotest.failf "%s:@.expected %a@.got %a" msg Vec.pp expect Vec.pp got

(* ------------------------------------------------------------------ *)
(* CH form: exact (phase-true) Clifford states                         *)
(* ------------------------------------------------------------------ *)

let test_ch_initial () =
  let st = Ch_form.create 3 in
  check_vec "|000>" (Vec.basis ~dim:8 0) (Ch_form.to_vec st);
  Alcotest.(check bool) "omega = 1" true (Cx.approx_equal Cx.one (Ch_form.global_scalar st))

let test_ch_named_states () =
  (* plus state *)
  let st = Ch_form.create 1 in
  Ch_form.h st 0;
  check_vec "|+>"
    (Vec.of_array [| Cx.of_float Cx.sqrt1_2; Cx.of_float Cx.sqrt1_2 |])
    (Ch_form.to_vec st);
  (* bell with exact phases *)
  let bell = Ch_form.run Generators.bell in
  check_vec "bell"
    (Vec.of_array [| Cx.of_float Cx.sqrt1_2; Cx.zero; Cx.zero; Cx.of_float Cx.sqrt1_2 |])
    (Ch_form.to_vec bell);
  (* S|+> = (|0> + i|1>)/√2 — the phase matters *)
  let sp = Ch_form.create 1 in
  Ch_form.h sp 0;
  Ch_form.s sp 0;
  check_vec "S|+>"
    (Vec.of_array [| Cx.of_float Cx.sqrt1_2; Cx.scale Cx.sqrt1_2 Cx.i |])
    (Ch_form.to_vec sp)

let test_ch_global_phase_tracked () =
  (* Y = iXZ: applying Y to |0> gives i|1>, not just |1> *)
  let st = Ch_form.create 1 in
  Ch_form.y st 0;
  check_vec "Y|0> = i|1>" (Vec.of_array [| Cx.zero; Cx.i |]) (Ch_form.to_vec st);
  (* Z·X vs X·Z differ by a sign *)
  let zx = Ch_form.create 1 in
  Ch_form.x zx 0;
  Ch_form.z zx 0;
  check_vec "ZX|0> = -|1>... is Z after X" (Vec.of_array [| Cx.zero; Cx.minus_one |])
    (Ch_form.to_vec zx)

let test_ch_matches_statevector_exactly () =
  List.iter
    (fun seed ->
      let c = Generators.random_clifford ~seed ~gates:60 4 in
      let ch = Ch_form.run c in
      let sv = Qdt_arraysim.Statevector.run_unitary c in
      check_vec (Printf.sprintf "seed %d" seed)
        (Qdt_arraysim.Statevector.to_vec sv)
        (Ch_form.to_vec ch))
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]

let test_ch_hidden_shift () =
  let c = Generators.hidden_shift ~shift:13 6 in
  let ch = Ch_form.run c in
  Alcotest.(check (float 1e-9)) "deterministic shift" 1.0
    (Cx.norm2 (Ch_form.amplitude ch 13))

let test_ch_rejects_non_clifford () =
  let st = Ch_form.create 1 in
  Alcotest.check_raises "t" (Invalid_argument "Ch_form: non-Clifford gate") (fun () ->
      Ch_form.apply_instruction st (Circuit.Apply { gate = Gate.T; controls = []; target = 0 }))

(* ------------------------------------------------------------------ *)
(* Stabilizer-rank Clifford+T amplitudes                               *)
(* ------------------------------------------------------------------ *)

let test_rank_pure_clifford_is_one_branch () =
  let p = Stabilizer_rank.prepare (Generators.random_clifford ~seed:4 ~gates:40 4) in
  Alcotest.(check int) "t = 0" 0 (Stabilizer_rank.t_count p);
  Alcotest.(check int) "1 branch" 1 (Stabilizer_rank.num_branches p)

let test_rank_t_gate_decomposition () =
  (* T|+> = (|0> + e^{iπ/4}|1>)/√2 through a 2-term decomposition *)
  let c = Circuit.(empty 1 |> h 0 |> t 0) in
  let p = Stabilizer_rank.prepare c in
  Alcotest.(check int) "one branch point" 1 (Stabilizer_rank.t_count p);
  check_vec "T|+>"
    (Vec.of_array
       [| Cx.of_float Cx.sqrt1_2; Cx.scale Cx.sqrt1_2 (Cx.exp_i (Float.pi /. 4.0)) |])
    (Stabilizer_rank.statevector p)

let test_rank_matches_arrays_exactly () =
  List.iter
    (fun seed ->
      let c = Generators.random_clifford_t ~seed ~gates:30 ~t_fraction:0.2 3 in
      let p = Stabilizer_rank.prepare c in
      if Stabilizer_rank.t_count p <= 10 then
        check_vec (Printf.sprintf "seed %d" seed)
          (Qdt_arraysim.Statevector.to_vec (Qdt_arraysim.Statevector.run_unitary c))
          (Stabilizer_rank.statevector p))
    [ 0; 1; 2; 3; 4; 5; 6; 7 ]

let test_rank_arbitrary_rotations () =
  (* arbitrary Rz angles branch too *)
  let c = Circuit.(empty 2 |> h 0 |> rz 0.7 0 |> cx 0 1 |> rz (-1.3) 1 |> h 1) in
  let p = Stabilizer_rank.prepare c in
  Alcotest.(check int) "two branch points" 2 (Stabilizer_rank.t_count p);
  check_vec "rotations"
    (Qdt_arraysim.Statevector.to_vec (Qdt_arraysim.Statevector.run_unitary c))
    (Stabilizer_rank.statevector p)

let test_rank_toffoli () =
  (* Toffoli lowers to 7 T-like rotations; amplitudes must be exact *)
  let c = Circuit.(empty 3 |> x 1 |> x 2 |> ccx 2 1 0) in
  let p = Stabilizer_rank.prepare c in
  Alcotest.(check bool)
    (Printf.sprintf "t-count %d reasonable" (Stabilizer_rank.t_count p))
    true
    (Stabilizer_rank.t_count p <= 12);
  Alcotest.(check (float 1e-9)) "|111> amplitude" 1.0 (Stabilizer_rank.probability p 7)

let test_rank_oracle_probability () =
  (* end-to-end: a CCZ oracle between Hadamard layers, the core of a
     Grover iteration, via stabilizer-rank *)
  let h_all c = Circuit.(c |> h 0 |> h 1 |> h 2) in
  let c = Circuit.empty 3 |> h_all |> Circuit.ccz 2 1 0 |> h_all in
  let p = Stabilizer_rank.prepare c in
  let sv = Qdt_arraysim.Statevector.run_unitary c in
  for k = 0 to 7 do
    Alcotest.(check (float 1e-7))
      (Printf.sprintf "p(%d)" k)
      (Qdt_arraysim.Statevector.probability sv k)
      (Stabilizer_rank.probability p k)
  done

let test_rank_cost_guard () =
  let c = Generators.random_clifford_t ~seed:1 ~gates:300 ~t_fraction:0.5 4 in
  match Stabilizer_rank.prepare c with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected branch-point guard to trip"

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_ch_exact =
  QCheck.Test.make ~name:"CH form = dense statevector (with phase)" ~count:30
    (QCheck.make QCheck.Gen.(pair (int_range 1 5) (int_range 0 10000)))
    (fun (n, seed) ->
      let c = Generators.random_clifford ~seed ~gates:40 n in
      let ch = Ch_form.run c in
      Vec.approx_equal ~eps:1e-8
        (Qdt_arraysim.Statevector.to_vec (Qdt_arraysim.Statevector.run_unitary c))
        (Ch_form.to_vec ch))

let prop_rank_exact =
  QCheck.Test.make ~name:"stabilizer-rank amplitude = dense amplitude" ~count:20
    (QCheck.make QCheck.Gen.(triple (int_range 1 3) (int_range 0 5000) (int_range 0 7)))
    (fun (n, seed, k) ->
      let c = Generators.random_clifford_t ~seed ~gates:20 ~t_fraction:0.25 n in
      let p = Stabilizer_rank.prepare c in
      let k = k land ((1 lsl n) - 1) in
      Cx.approx_equal ~eps:1e-7
        (Qdt_arraysim.Statevector.amplitude (Qdt_arraysim.Statevector.run_unitary c) k)
        (Stabilizer_rank.amplitude p k))

let props = List.map QCheck_alcotest.to_alcotest [ prop_ch_exact; prop_rank_exact ]

let () =
  Alcotest.run "qdt_stabilizer_rank"
    [
      ( "ch-form",
        [
          Alcotest.test_case "initial" `Quick test_ch_initial;
          Alcotest.test_case "named states" `Quick test_ch_named_states;
          Alcotest.test_case "global phase" `Quick test_ch_global_phase_tracked;
          Alcotest.test_case "matches statevector" `Quick test_ch_matches_statevector_exactly;
          Alcotest.test_case "hidden shift" `Quick test_ch_hidden_shift;
          Alcotest.test_case "rejects T" `Quick test_ch_rejects_non_clifford;
        ] );
      ( "stabilizer-rank",
        [
          Alcotest.test_case "clifford = 1 branch" `Quick test_rank_pure_clifford_is_one_branch;
          Alcotest.test_case "T decomposition" `Quick test_rank_t_gate_decomposition;
          Alcotest.test_case "matches arrays" `Quick test_rank_matches_arrays_exactly;
          Alcotest.test_case "arbitrary rotations" `Quick test_rank_arbitrary_rotations;
          Alcotest.test_case "toffoli" `Quick test_rank_toffoli;
          Alcotest.test_case "oracle sandwich" `Quick test_rank_oracle_probability;
          Alcotest.test_case "cost guard" `Quick test_rank_cost_guard;
        ] );
      ("properties", props);
    ]
