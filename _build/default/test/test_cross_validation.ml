(* The grand consistency matrix: every simulation backend against the
   dense reference on every workload family, plus the equivalence
   checkers against each other on compiled variants.  One parameterised
   runner — each (backend × workload) pair is a distinct check. *)

open Qdt_circuit
module Vec = Qdt_linalg.Vec
module Cx = Qdt_linalg.Cx

(* Workloads kept small enough for the dense reference. *)
let workloads =
  [
    ("bell", Generators.bell);
    ("ghz6", Generators.ghz 6);
    ("w5", Generators.w_state 5);
    ("qft5", Generators.qft 5);
    ("qft4-noswap", Generators.qft ~swaps:false 4);
    ("grover3", Generators.grover ~marked:6 3);
    ("bv5", Generators.bernstein_vazirani ~secret:21 5);
    ("dj4", Generators.deutsch_jozsa ~balanced:true 4);
    ("adder2", Generators.cuccaro_adder 2);
    ("phase-est", Generators.phase_estimation ~phase:0.4375 4);
    ("qaoa5", Generators.qaoa_maxcut ~seed:3 ~layers:2 5);
    ("hidden-shift6", Generators.hidden_shift ~shift:45 6);
    ("qv5", Generators.quantum_volume ~seed:9 ~depth:3 5);
    ("clifford6", Generators.random_clifford ~seed:8 ~gates:80 6);
    ("clifford+t5", Generators.random_clifford_t ~seed:8 ~gates:60 ~t_fraction:0.25 5);
    ("random6", Generators.random_circuit ~seed:8 ~depth:4 6);
  ]

let reference c =
  Qdt.Arrays.Statevector.to_vec (Qdt.Arrays.Statevector.run_unitary c)

let test_backend backend () =
  List.iter
    (fun (name, c) ->
      let expect = reference c in
      let got = Qdt.simulate ~backend c in
      if not (Vec.approx_equal ~eps:1e-6 expect got) then
        Alcotest.failf "%s disagrees on %s" (Qdt.backend_name backend) name)
    workloads

let test_ch_form_on_clifford () =
  List.iter
    (fun (name, c) ->
      if Qdt.Stabilizer.Tableau.supports c then begin
        let got = Qdt.Stabilizer.Ch_form.to_vec (Qdt.Stabilizer.Ch_form.run c) in
        if not (Vec.approx_equal ~eps:1e-7 (reference c) got) then
          Alcotest.failf "ch-form disagrees on %s" name
      end)
    workloads

let test_stabilizer_rank_spot_amplitudes () =
  List.iter
    (fun (name, c) ->
      match Qdt.Stabilizer.Stabilizer_rank.prepare c with
      | exception Invalid_argument _ -> () (* too many branch points: skip *)
      | p ->
          if Qdt.Stabilizer.Stabilizer_rank.t_count p <= 10 then begin
            let expect = reference c in
            List.iter
              (fun k ->
                let k = k land ((1 lsl Circuit.num_qubits c) - 1) in
                let got = Qdt.Stabilizer.Stabilizer_rank.amplitude p k in
                if not (Cx.approx_equal ~eps:1e-6 (Vec.get expect k) got) then
                  Alcotest.failf "stabilizer-rank disagrees on %s at %d" name k)
              [ 0; 1; 5 ]
          end)
    workloads

let test_sampling_backends_agree () =
  (* frequency agreement between array, DD and (where Clifford) tableau
     sampling on GHZ *)
  let c = Generators.ghz 5 in
  let shots = 4000 in
  let freq counts k =
    Float.of_int (Option.value ~default:0 (List.assoc_opt k counts)) /. Float.of_int shots
  in
  let arr = Qdt.sample ~backend:Qdt.Arrays_backend ~seed:1 ~shots c in
  let dd = Qdt.sample ~backend:Qdt.Decision_diagrams ~seed:2 ~shots c in
  let stab = Qdt.sample ~backend:Qdt.Stabilizer_backend ~seed:3 ~shots c in
  List.iter
    (fun k ->
      List.iter
        (fun (name, counts) ->
          let f = freq counts k in
          if Float.abs (f -. 0.5) > 0.05 then
            Alcotest.failf "%s: freq(%d) = %.3f far from 0.5" name k f)
        [ ("arrays", arr); ("dd", dd); ("stabilizer", stab) ])
    [ 0; 31 ]

let test_equivalence_checkers_on_pipeline () =
  (* compile each workload (when it fits the device) three different ways
     and demand every exact checker agrees it is still the same circuit *)
  List.iter
    (fun (name, c) ->
      if Circuit.num_qubits c <= 6 && Circuit.is_unitary_only c then begin
        let coupling = Qdt.Compile.Coupling.line (Circuit.num_qubits c) in
        let via_greedy =
          Qdt.Compile.Router.undo_final_permutation (Qdt.Compile.Router.route c coupling)
        in
        let via_lookahead =
          Qdt.Compile.Router.undo_final_permutation
            (Qdt.Compile.Lookahead_router.route c coupling)
        in
        let optimized, _ = Qdt.Compile.Optimize.optimize c in
        List.iter
          (fun (variant_name, variant) ->
            List.iter
              (fun checker ->
                match Qdt.equivalent ~checker c variant with
                | Qdt.Verify.Equiv.Equivalent -> ()
                | v ->
                    Alcotest.failf "%s/%s: %s says %s" name variant_name
                      (Qdt.checker_name checker)
                      (Qdt.Verify.Equiv.verdict_to_string v))
              [ Qdt.Check_dd; Qdt.Check_dd_alternating; Qdt.Check_tn ])
          [ ("greedy", via_greedy); ("lookahead", via_lookahead); ("peephole", optimized) ]
      end)
    workloads

let test_zx_pipeline_on_workloads () =
  (* translate → reduce → extract on every workload small enough, and
     verify with the DD checker *)
  List.iter
    (fun (name, c) ->
      if Circuit.num_qubits c <= 5 && Circuit.is_unitary_only c then begin
        let optimized = Qdt.Zx.Extract.optimize_circuit c in
        match Qdt.Verify.Equiv.dd c optimized with
        | Qdt.Verify.Equiv.Equivalent -> ()
        | v ->
            Alcotest.failf "zx pipeline broke %s (%s)" name
              (Qdt.Verify.Equiv.verdict_to_string v)
      end)
    workloads

let () =
  Alcotest.run "qdt_cross_validation"
    [
      ( "simulators",
        [
          Alcotest.test_case "decision diagrams" `Quick (test_backend Qdt.Decision_diagrams);
          Alcotest.test_case "tensor network" `Slow (test_backend Qdt.Tensor_network);
          Alcotest.test_case "mps" `Slow (test_backend Qdt.Mps);
          Alcotest.test_case "ch form (clifford)" `Quick test_ch_form_on_clifford;
          Alcotest.test_case "stabilizer rank" `Quick test_stabilizer_rank_spot_amplitudes;
          Alcotest.test_case "sampling" `Quick test_sampling_backends_agree;
        ] );
      ( "pipelines",
        [
          Alcotest.test_case "compile + verify" `Slow test_equivalence_checkers_on_pipeline;
          Alcotest.test_case "zx optimize + verify" `Slow test_zx_pipeline_on_workloads;
        ] );
    ]
