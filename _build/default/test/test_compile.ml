open Qdt_linalg
open Qdt_circuit
open Qdt_compile
module UB = Qdt_arraysim.Unitary_builder

let check_equiv_phase msg a b =
  let ua = UB.unitary a and ub = UB.unitary b in
  if not (Mat.equal_up_to_global_phase ~eps:1e-7 ua ub) then
    Alcotest.failf "%s: circuits differ:@.%a@.vs@.%a" msg Mat.pp ua Mat.pp ub

let check_equiv_exact msg a b =
  let ua = UB.unitary a and ub = UB.unitary b in
  if not (Mat.approx_equal ~eps:1e-7 ua ub) then
    Alcotest.failf "%s: circuits differ exactly:@.%a@.vs@.%a" msg Mat.pp ua Mat.pp ub

(* ------------------------------------------------------------------ *)
(* ZYZ / sqrt                                                          *)
(* ------------------------------------------------------------------ *)

let interesting_unitaries =
  [
    ("h", Gates.h); ("x", Gates.x); ("y", Gates.y); ("z", Gates.z);
    ("s", Gates.s); ("t", Gates.t); ("sx", Gates.sx);
    ("rx", Gates.rx 0.7); ("ry", Gates.ry (-1.3)); ("rz", Gates.rz 2.1);
    ("phase", Gates.phase 0.4);
    ("u3", Gates.u3 ~theta:1.1 ~phi:0.2 ~lambda:(-2.0));
    ("u3b", Gates.u3 ~theta:3.0 ~phi:(-0.4) ~lambda:1.9);
    ("id", Gates.id2);
  ]

let test_zyz () =
  List.iter
    (fun (name, u) ->
      let alpha, theta, phi, lambda = Decompose.zyz u in
      let rebuilt =
        Mat.scale (Cx.exp_i alpha)
          (Mat.mul (Gates.rz phi) (Mat.mul (Gates.ry theta) (Gates.rz lambda)))
      in
      if not (Mat.approx_equal ~eps:1e-7 u rebuilt) then
        Alcotest.failf "zyz %s does not reconstruct" name)
    interesting_unitaries

let test_sqrt_unitary () =
  List.iter
    (fun (name, u) ->
      let v = Decompose.sqrt_unitary u in
      Alcotest.(check bool) (name ^ " sqrt unitary") true (Mat.is_unitary ~eps:1e-8 v);
      if not (Mat.approx_equal ~eps:1e-8 u (Mat.mul v v)) then
        Alcotest.failf "sqrt %s: v*v <> u" name)
    interesting_unitaries

(* ------------------------------------------------------------------ *)
(* Lowering                                                            *)
(* ------------------------------------------------------------------ *)

let lowering_cases =
  [
    ("toffoli", Circuit.(empty 3 |> ccx 2 1 0));
    ("toffoli rev", Circuit.(empty 3 |> ccx 0 1 2));
    ("cccx", Circuit.(empty 4 |> cgate Gate.X ~controls:[ 1; 2; 3 ] ~target:0));
    ("ccz", Circuit.(empty 3 |> ccz 0 1 2));
    ("fredkin", Circuit.(empty 3 |> cswap 2 0 1));
    ("swap", Circuit.(empty 2 |> swap 0 1));
    ("controlled-h", Circuit.(empty 2 |> ch 1 0));
    ("controlled-t", Circuit.(empty 2 |> cgate Gate.T ~controls:[ 0 ] ~target:1));
    ("controlled-ry", Circuit.(empty 2 |> cry 0.8 0 1));
    ("cphase", Circuit.(empty 2 |> cphase 1.1 0 1));
    ("y/sx/u3 mix",
     Circuit.(empty 2 |> y 0 |> sx 1 |> u3 ~theta:0.3 ~phi:1.0 ~lambda:(-0.2) 0 |> ry 0.9 1));
    ("grover", Generators.grover_iterations ~marked:2 ~iterations:1 3);
    ("adder", Generators.cuccaro_adder 2);
  ]

let test_lower_two_qubit () =
  List.iter
    (fun (name, c) ->
      let lowered = Decompose.lower ~basis:Decompose.Two_qubit c in
      Alcotest.(check bool) (name ^ " conforms") true
        (Decompose.conforms ~basis:Decompose.Two_qubit lowered);
      List.iter
        (fun instr ->
          Alcotest.(check bool) "≤2 qubits" true
            (List.length (Circuit.qubits_of_instruction instr) <= 2))
        (Circuit.unitary_instructions lowered);
      check_equiv_phase (name ^ " preserved") c lowered)
    lowering_cases

let test_lower_two_qubit_exact () =
  (* The Two_qubit lowering is built from exact constructions; spot-check
     exactness (not just up-to-phase) on multi-controlled gates. *)
  List.iter
    (fun (name, c) ->
      let lowered = Decompose.lower ~basis:Decompose.Two_qubit c in
      check_equiv_exact name c lowered)
    [
      ("toffoli", Circuit.(empty 3 |> ccx 2 1 0));
      ("fredkin", Circuit.(empty 3 |> cswap 2 0 1));
      ("cccz", Circuit.(empty 4 |> cgate Gate.Z ~controls:[ 1; 2; 3 ] ~target:0));
    ]

let test_lower_zx_ready () =
  List.iter
    (fun (name, c) ->
      let lowered = Decompose.lower ~basis:Decompose.Zx_ready c in
      Alcotest.(check bool) (name ^ " conforms") true
        (Decompose.conforms ~basis:Decompose.Zx_ready lowered);
      check_equiv_phase (name ^ " preserved") c lowered)
    lowering_cases

let test_lower_cx_rz_h () =
  List.iter
    (fun (name, c) ->
      let lowered = Decompose.lower ~basis:Decompose.Cx_rz_h c in
      Alcotest.(check bool) (name ^ " conforms") true
        (Decompose.conforms ~basis:Decompose.Cx_rz_h lowered);
      (* only CX, Rz, H remain *)
      List.iter
        (fun instr ->
          match instr with
          | Circuit.Apply { gate = Gate.Rz _ | Gate.H; controls = []; _ } -> ()
          | Circuit.Apply { gate = Gate.X; controls = [ _ ]; _ } -> ()
          | _ -> Alcotest.failf "%s: foreign instruction survived" name)
        (Circuit.unitary_instructions lowered);
      check_equiv_phase (name ^ " preserved") c lowered)
    lowering_cases

(* ------------------------------------------------------------------ *)
(* Coupling                                                            *)
(* ------------------------------------------------------------------ *)

let test_coupling_topologies () =
  let l = Coupling.line 5 in
  Alcotest.(check bool) "line adj" true (Coupling.connected l 2 3);
  Alcotest.(check bool) "line non-adj" false (Coupling.connected l 0 4);
  Alcotest.(check int) "line distance" 4 (Coupling.distance l 0 4);
  let r = Coupling.ring 6 in
  Alcotest.(check int) "ring wraps" 1 (Coupling.distance r 0 5);
  Alcotest.(check int) "ring across" 3 (Coupling.distance r 0 3);
  let g = Coupling.grid ~rows:3 ~cols:3 in
  Alcotest.(check int) "grid manhattan" 4 (Coupling.distance g 0 8);
  let s = Coupling.star 5 in
  Alcotest.(check int) "star through hub" 2 (Coupling.distance s 1 4);
  Alcotest.(check int) "qx5 qubits" 16 (Coupling.num_qubits Coupling.ibm_qx5);
  let f = Coupling.fully_connected 4 in
  Alcotest.(check int) "full edges" 6 (List.length (Coupling.edges f))

let test_shortest_path () =
  let g = Coupling.grid ~rows:2 ~cols:3 in
  let path = Coupling.shortest_path g 0 5 in
  Alcotest.(check int) "path length" 4 (List.length path);
  Alcotest.(check int) "starts" 0 (List.hd path);
  Alcotest.(check int) "ends" 5 (List.nth path 3);
  (* consecutive vertices adjacent *)
  let rec pairs = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "adjacent" true (Coupling.connected g a b);
        pairs rest
    | _ -> ()
  in
  pairs path

(* ------------------------------------------------------------------ *)
(* Router                                                              *)
(* ------------------------------------------------------------------ *)

let routing_cases =
  [
    ("qft4/line", Generators.qft 4, Coupling.line 4);
    ("qft4/ring", Generators.qft 4, Coupling.ring 4);
    ("ghz5/line", Generators.ghz 5, Coupling.line 5);
    ("random/grid", Generators.random_circuit ~seed:7 ~depth:4 6, Coupling.grid ~rows:2 ~cols:3);
    ("adder/line", Generators.cuccaro_adder 1, Coupling.line 4);
    ("grover/line", Generators.grover_iterations ~marked:3 ~iterations:1 3, Coupling.line 3);
  ]

let test_router_respects_coupling () =
  List.iter
    (fun (name, c, coupling) ->
      let result = Router.route c coupling in
      Alcotest.(check bool) (name ^ " respects") true
        (Router.respects result.Router.routed coupling))
    routing_cases

let test_router_preserves_functionality () =
  List.iter
    (fun (name, c, coupling) ->
      let result = Router.route c coupling in
      let restored = Router.undo_final_permutation result in
      (* With the identity initial layout, restored must equal the original
         (padded to the device size) up to global phase. *)
      let padded =
        List.fold_left
          (fun acc i -> Circuit.add i acc)
          (Circuit.empty (Coupling.num_qubits coupling))
          (Circuit.instructions c)
      in
      check_equiv_phase (name ^ " functional") padded restored)
    (List.filter (fun (_, c, k) -> Circuit.num_qubits c = Coupling.num_qubits k) routing_cases)

let test_router_line_overhead () =
  (* A CX between the ends of a line must insert swaps. *)
  let c = Circuit.(empty 5 |> cx 0 4) in
  let result = Router.route c (Coupling.line 5) in
  Alcotest.(check bool) "swaps added" true (result.Router.added_swaps >= 3);
  let free = Router.route c (Coupling.fully_connected 5) in
  Alcotest.(check int) "no swaps on full graph" 0 free.Router.added_swaps

let test_router_measurements () =
  let c = Circuit.measure_all (Generators.ghz 4) in
  let result = Router.route c (Coupling.line 4) in
  let measures =
    List.filter
      (function Circuit.Measure _ -> true | _ -> false)
      (Circuit.instructions result.Router.routed)
  in
  Alcotest.(check int) "measurements kept" 4 (List.length measures)

(* ------------------------------------------------------------------ *)
(* Optimize                                                            *)
(* ------------------------------------------------------------------ *)

let test_cancel_inverses () =
  let c = Circuit.(empty 2 |> h 0 |> h 0 |> cx 0 1 |> cx 0 1 |> t 1 |> tdg 1) in
  let optimized, stats = Optimize.cancel_inverses c in
  Alcotest.(check int) "all cancelled" 0 (Circuit.count_total optimized);
  Alcotest.(check int) "six removed" 6 stats.Optimize.removed

let test_cancel_nested () =
  let c = Circuit.(empty 2 |> cx 0 1 |> h 0 |> h 0 |> cx 0 1) in
  let optimized, _ = Optimize.cancel_inverses c in
  Alcotest.(check int) "nested cascade" 0 (Circuit.count_total optimized)

let test_cancel_blocked () =
  (* An intervening gate on a shared qubit blocks cancellation. *)
  let c = Circuit.(empty 2 |> h 0 |> cx 0 1 |> h 0) in
  let optimized, _ = Optimize.cancel_inverses c in
  Alcotest.(check int) "nothing cancelled" 3 (Circuit.count_total optimized)

let test_merge_rotations () =
  let c = Circuit.(empty 1 |> t 0 |> t 0 |> s 0 |> rz 0.5 0) in
  let optimized, stats = Optimize.merge_rotations c in
  Alcotest.(check int) "merged to one" 1 (Circuit.count_total optimized);
  Alcotest.(check bool) "merges counted" true (stats.Optimize.merged >= 3);
  check_equiv_phase "merge preserves" c optimized

let test_merge_to_identity () =
  let c = Circuit.(empty 1 |> s 0 |> s 0 |> z 0) in
  let optimized, _ = Optimize.optimize c in
  Alcotest.(check int) "S·S·Z = I dropped" 0 (Circuit.count_total optimized)

let test_optimize_preserves_semantics () =
  List.iter
    (fun seed ->
      let c = Generators.random_clifford_t ~seed ~gates:80 ~t_fraction:0.3 4 in
      let optimized, _ = Optimize.optimize c in
      Alcotest.(check bool) "not longer" true
        (Circuit.count_total optimized <= Circuit.count_total c);
      check_equiv_phase "optimize preserves" c optimized)
    [ 1; 2; 3; 4; 5 ]

let test_optimize_reduces_redundant () =
  (* C · C† optimizes down substantially. *)
  let c = Generators.random_clifford ~seed:3 ~gates:30 3 in
  let cc = Circuit.append c (Circuit.adjoint c) in
  let optimized, _ = Optimize.optimize cc in
  Alcotest.(check bool)
    (Printf.sprintf "reduced %d -> %d" (Circuit.count_total cc) (Circuit.count_total optimized))
    true
    (Circuit.count_total optimized < Circuit.count_total cc / 2)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_lowering_preserves =
  QCheck.Test.make ~name:"lowering preserves unitary (up to phase)" ~count:20
    (QCheck.make QCheck.Gen.(pair (int_range 2 4) (int_range 0 1000)))
    (fun (n, seed) ->
      let c = Generators.random_circuit ~seed ~depth:2 n in
      let lowered = Decompose.lower ~basis:Decompose.Cx_rz_h c in
      Mat.equal_up_to_global_phase ~eps:1e-6 (UB.unitary c) (UB.unitary lowered))

let prop_routing_preserves =
  QCheck.Test.make ~name:"routing preserves unitary (up to phase)" ~count:15
    (QCheck.make QCheck.Gen.(int_range 0 1000))
    (fun seed ->
      let c = Generators.random_circuit ~seed ~depth:3 4 in
      let result = Router.route c (Coupling.line 4) in
      let restored = Router.undo_final_permutation result in
      Mat.equal_up_to_global_phase ~eps:1e-6 (UB.unitary c) (UB.unitary restored))

let prop_optimize_preserves =
  QCheck.Test.make ~name:"optimize preserves unitary (up to phase)" ~count:15
    (QCheck.make QCheck.Gen.(pair (int_range 1 4) (int_range 0 1000)))
    (fun (n, seed) ->
      let c = Generators.random_clifford_t ~seed ~gates:40 ~t_fraction:0.3 n in
      let optimized, _ = Optimize.optimize c in
      Mat.equal_up_to_global_phase ~eps:1e-6 (UB.unitary c) (UB.unitary optimized))

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_lowering_preserves; prop_routing_preserves; prop_optimize_preserves ]

let () =
  Alcotest.run "qdt_compile"
    [
      ( "decompose",
        [
          Alcotest.test_case "zyz" `Quick test_zyz;
          Alcotest.test_case "sqrt" `Quick test_sqrt_unitary;
          Alcotest.test_case "two-qubit basis" `Quick test_lower_two_qubit;
          Alcotest.test_case "two-qubit exact" `Quick test_lower_two_qubit_exact;
          Alcotest.test_case "zx basis" `Quick test_lower_zx_ready;
          Alcotest.test_case "cx+rz+h basis" `Quick test_lower_cx_rz_h;
        ] );
      ( "coupling",
        [
          Alcotest.test_case "topologies" `Quick test_coupling_topologies;
          Alcotest.test_case "shortest path" `Quick test_shortest_path;
        ] );
      ( "router",
        [
          Alcotest.test_case "respects coupling" `Quick test_router_respects_coupling;
          Alcotest.test_case "preserves functionality" `Quick test_router_preserves_functionality;
          Alcotest.test_case "line overhead" `Quick test_router_line_overhead;
          Alcotest.test_case "measurements" `Quick test_router_measurements;
        ] );
      ( "optimize",
        [
          Alcotest.test_case "cancel" `Quick test_cancel_inverses;
          Alcotest.test_case "nested cascade" `Quick test_cancel_nested;
          Alcotest.test_case "blocked" `Quick test_cancel_blocked;
          Alcotest.test_case "merge" `Quick test_merge_rotations;
          Alcotest.test_case "merge to identity" `Quick test_merge_to_identity;
          Alcotest.test_case "random preserved" `Quick test_optimize_preserves_semantics;
          Alcotest.test_case "reduces C·C†" `Quick test_optimize_reduces_redundant;
        ] );
      ("properties", props);
    ]
