open Qdt_linalg

let cx = Alcotest.testable Cx.pp (fun a b -> Cx.approx_equal a b)

let check_mat msg a b =
  if not (Mat.approx_equal ~eps:1e-9 a b) then
    Alcotest.failf "%s:@.%a@.vs@.%a" msg Mat.pp a Mat.pp b

let check_vec msg a b =
  if not (Vec.approx_equal ~eps:1e-9 a b) then
    Alcotest.failf "%s:@.%a@.vs@.%a" msg Vec.pp a Vec.pp b

(* ------------------------------------------------------------------ *)
(* Cx                                                                  *)
(* ------------------------------------------------------------------ *)

let test_cx_basic () =
  Alcotest.check cx "add" (Cx.make 3.0 4.0) (Cx.add (Cx.make 1.0 1.0) (Cx.make 2.0 3.0));
  Alcotest.check cx "mul i*i" Cx.minus_one (Cx.mul Cx.i Cx.i);
  Alcotest.check cx "conj" (Cx.make 1.0 (-2.0)) (Cx.conj (Cx.make 1.0 2.0));
  Alcotest.check cx "inv" (Cx.make 0.5 0.0) (Cx.inv (Cx.make 2.0 0.0));
  Alcotest.(check (float 1e-12)) "norm2" 25.0 (Cx.norm2 (Cx.make 3.0 4.0));
  Alcotest.(check (float 1e-12)) "norm" 5.0 (Cx.norm (Cx.make 3.0 4.0))

let test_cx_polar () =
  let z = Cx.of_polar ~mag:2.0 ~phase:(Float.pi /. 2.0) in
  Alcotest.check cx "polar" (Cx.make 0.0 2.0) z;
  Alcotest.(check (float 1e-12)) "phase" (Float.pi /. 4.0) (Cx.phase (Cx.make 1.0 1.0));
  Alcotest.check cx "exp_i pi" Cx.minus_one (Cx.exp_i Float.pi)

let test_cx_predicates () =
  Alcotest.(check bool) "is_zero" true (Cx.is_zero (Cx.make 1e-12 (-1e-12)));
  Alcotest.(check bool) "not zero" false (Cx.is_zero (Cx.make 1e-3 0.0));
  Alcotest.(check bool) "is_one" true (Cx.is_one (Cx.make 1.0 0.0));
  Alcotest.(check bool) "approx" true (Cx.approx_equal (Cx.make 1.0 0.0) (Cx.make (1.0 +. 1e-12) 0.0));
  Alcotest.(check bool) "compare eq" true (Cx.compare Cx.one Cx.one = 0);
  Alcotest.(check bool) "compare lt" true (Cx.compare Cx.zero Cx.one < 0)

let test_cx_hash_key () =
  let a = Cx.make 0.70710678118 0.0 and b = Cx.make 0.70710678119 0.0 in
  Alcotest.(check bool) "quantised equal" true (Cx.hash_key ~eps:1e-9 a = Cx.hash_key ~eps:1e-9 b)

(* ------------------------------------------------------------------ *)
(* Vec                                                                 *)
(* ------------------------------------------------------------------ *)

let test_vec_basis () =
  let v = Vec.basis ~dim:4 2 in
  Alcotest.check cx "entry 2" Cx.one (Vec.get v 2);
  Alcotest.check cx "entry 0" Cx.zero (Vec.get v 0);
  Alcotest.(check (float 1e-12)) "norm" 1.0 (Vec.norm v)

let test_vec_ops () =
  let a = Vec.of_array [| Cx.one; Cx.i |] in
  let b = Vec.of_array [| Cx.i; Cx.one |] in
  check_vec "add" (Vec.of_array [| Cx.make 1.0 1.0; Cx.make 1.0 1.0 |]) (Vec.add a b);
  check_vec "sub" (Vec.of_array [| Cx.make 1.0 (-1.0); Cx.make (-1.0) 1.0 |]) (Vec.sub a b);
  (* ⟨a|b⟩ = conj(1)·i + conj(i)·1 = i + (−i)·1 = 0 *)
  Alcotest.check cx "dot" Cx.zero (Vec.dot a b);
  Alcotest.check cx "dot self" (Cx.of_float 2.0) (Vec.dot a a)

let test_vec_kron () =
  let v0 = Vec.basis ~dim:2 0 and v1 = Vec.basis ~dim:2 1 in
  let v01 = Vec.kron v0 v1 in
  check_vec "|01>" (Vec.basis ~dim:4 1) v01;
  let plus = Vec.of_array [| Cx.of_float Cx.sqrt1_2; Cx.of_float Cx.sqrt1_2 |] in
  let pp = Vec.kron plus plus in
  Alcotest.(check (float 1e-12)) "uniform" 0.25 (Vec.probabilities pp).(3)

let test_vec_global_phase () =
  let a = Vec.of_array [| Cx.of_float Cx.sqrt1_2; Cx.zero; Cx.zero; Cx.of_float Cx.sqrt1_2 |] in
  let b = Vec.scale (Cx.exp_i 0.7) a in
  Alcotest.(check bool) "phase equal" true (Vec.equal_up_to_global_phase a b);
  let c = Vec.of_array [| Cx.of_float Cx.sqrt1_2; Cx.zero; Cx.zero; Cx.scale (-1.0) (Cx.of_float Cx.sqrt1_2) |] in
  Alcotest.(check bool) "not equal" false (Vec.equal_up_to_global_phase a c);
  Alcotest.(check bool) "not plain equal" false (Vec.approx_equal a b)

let test_vec_normalize () =
  let v = Vec.of_array [| Cx.of_float 3.0; Cx.of_float 4.0 |] in
  Alcotest.(check (float 1e-12)) "normalised" 1.0 (Vec.norm (Vec.normalize v));
  Alcotest.check_raises "zero vector" (Invalid_argument "Vec.normalize: zero vector")
    (fun () -> ignore (Vec.normalize (Vec.create 4)))

let test_vec_fidelity () =
  let a = Vec.basis ~dim:4 0 and b = Vec.basis ~dim:4 1 in
  Alcotest.(check (float 1e-12)) "orthogonal" 0.0 (Vec.fidelity a b);
  Alcotest.(check (float 1e-12)) "self" 1.0 (Vec.fidelity a a)

(* ------------------------------------------------------------------ *)
(* Mat                                                                 *)
(* ------------------------------------------------------------------ *)

let test_mat_identity () =
  let id = Mat.identity 4 in
  check_mat "I·I" id (Mat.mul id id);
  let v = Vec.of_array [| Cx.one; Cx.i; Cx.zero; Cx.minus_one |] in
  check_vec "I·v" v (Mat.mul_vec id v)

let test_mat_mul () =
  let a = Mat.of_rows [| [| Cx.one; Cx.i |]; [| Cx.zero; Cx.one |] |] in
  let b = Mat.of_rows [| [| Cx.one; Cx.zero |]; [| Cx.i; Cx.one |] |] in
  let expect = Mat.of_rows [| [| Cx.zero; Cx.i |]; [| Cx.i; Cx.one |] |] in
  check_mat "a·b" expect (Mat.mul a b)

let test_mat_dagger () =
  let a = Mat.of_rows [| [| Cx.make 1.0 2.0; Cx.make 3.0 4.0 |]; [| Cx.zero; Cx.i |] |] in
  let d = Mat.dagger a in
  Alcotest.check cx "transposed conj" (Cx.make 3.0 (-4.0)) (Mat.get d 1 0);
  check_mat "dagger involutive" a (Mat.dagger d)

let test_mat_kron () =
  (* CNOT = |0><0| ⊗ I + |1><1| ⊗ X, and CX matches Gates.cx. *)
  let p0 = Mat.of_rows [| [| Cx.one; Cx.zero |]; [| Cx.zero; Cx.zero |] |] in
  let p1 = Mat.of_rows [| [| Cx.zero; Cx.zero |]; [| Cx.zero; Cx.one |] |] in
  let cnot = Mat.add (Mat.kron p0 Gates.id2) (Mat.kron p1 Gates.x) in
  check_mat "cnot" Gates.cx cnot

let test_mat_unitarity () =
  List.iter
    (fun (name, m) ->
      Alcotest.(check bool) (name ^ " unitary") true (Mat.is_unitary m))
    [
      ("x", Gates.x); ("y", Gates.y); ("z", Gates.z); ("h", Gates.h);
      ("s", Gates.s); ("t", Gates.t); ("sx", Gates.sx);
      ("rx", Gates.rx 0.3); ("ry", Gates.ry 1.1); ("rz", Gates.rz (-0.7));
      ("u3", Gates.u3 ~theta:0.4 ~phi:1.2 ~lambda:(-0.5));
      ("cx", Gates.cx); ("cz", Gates.cz); ("swap", Gates.swap);
      ("iswap", Gates.iswap); ("ccx", Gates.ccx); ("cswap", Gates.cswap);
      ("cphase", Gates.cphase 0.9);
    ];
  let not_unitary = Mat.of_rows [| [| Cx.one; Cx.one |]; [| Cx.zero; Cx.one |] |] in
  Alcotest.(check bool) "shear not unitary" false (Mat.is_unitary not_unitary)

let test_mat_trace_hs () =
  Alcotest.check cx "trace I4" (Cx.of_float 4.0) (Mat.trace (Mat.identity 4));
  Alcotest.check cx "hs self" (Cx.of_float 4.0) (Mat.hilbert_schmidt Gates.cx Gates.cx);
  Alcotest.(check bool) "global phase"
    true
    (Mat.equal_up_to_global_phase Gates.z (Mat.scale (Cx.exp_i 1.3) Gates.z));
  Alcotest.(check bool) "x vs z" false (Mat.equal_up_to_global_phase Gates.x Gates.z)

let test_gate_identities () =
  check_mat "H·H = I" Gates.id2 (Mat.mul Gates.h Gates.h);
  check_mat "S·S = Z" Gates.z (Mat.mul Gates.s Gates.s);
  check_mat "T·T = S" Gates.s (Mat.mul Gates.t Gates.t);
  check_mat "S·Sdg = I" Gates.id2 (Mat.mul Gates.s Gates.sdg);
  check_mat "T·Tdg = I" Gates.id2 (Mat.mul Gates.t Gates.tdg);
  check_mat "SX·SX = X" Gates.x (Mat.mul Gates.sx Gates.sx);
  check_mat "HZH = X" Gates.x (Mat.mul Gates.h (Mat.mul Gates.z Gates.h));
  check_mat "HXH = Z" Gates.z (Mat.mul Gates.h (Mat.mul Gates.x Gates.h));
  check_mat "swap² = I" (Mat.identity 4) (Mat.mul Gates.swap Gates.swap);
  Alcotest.(check bool) "rz(pi) ~ Z" true
    (Mat.equal_up_to_global_phase Gates.z (Gates.rz Float.pi));
  Alcotest.(check bool) "u3 = rz.ry.rz phases" true
    (Mat.equal_up_to_global_phase
       (Gates.u3 ~theta:0.7 ~phi:0.3 ~lambda:0.9)
       (Mat.mul (Gates.rz 0.3) (Mat.mul (Gates.ry 0.7) (Gates.rz 0.9))))

let test_controlled () =
  check_mat "controlled x = cx" Gates.cx (Gates.controlled Gates.x);
  check_mat "controlled cx = ccx" Gates.ccx (Gates.controlled Gates.cx);
  Alcotest.(check bool) "ctrl unitary" true (Mat.is_unitary (Gates.controlled Gates.h))

let test_bell_example1 () =
  (* Example 1 of the paper: CNOT applied to 1/√2·[1 0 1 0]^T gives the
     Bell state 1/√2·[1 0 0 1]^T. *)
  let s = Cx.of_float Cx.sqrt1_2 in
  let input = Vec.of_array [| s; Cx.zero; s; Cx.zero |] in
  let bell = Mat.mul_vec Gates.cx input in
  check_vec "bell" (Vec.of_array [| s; Cx.zero; Cx.zero; s |]) bell;
  let probs = Vec.probabilities bell in
  Alcotest.(check (float 1e-12)) "p(00)" 0.5 probs.(0);
  Alcotest.(check (float 1e-12)) "p(11)" 0.5 probs.(3)

(* ------------------------------------------------------------------ *)
(* Svd                                                                 *)
(* ------------------------------------------------------------------ *)

let random_mat st rows cols =
  Mat.init rows cols (fun _ _ ->
      Cx.make (QCheck.Gen.float_range (-1.0) 1.0 st) (QCheck.Gen.float_range (-1.0) 1.0 st))

let test_svd_reconstruct () =
  let st = Random.State.make [| 42 |] in
  List.iter
    (fun (rows, cols) ->
      let a = random_mat st rows cols in
      let d = Svd.decompose a in
      let b = Svd.reconstruct d in
      if not (Mat.approx_equal ~eps:1e-8 a b) then
        Alcotest.failf "svd reconstruct %dx%d failed" rows cols;
      (* descending singular values *)
      Array.iteri
        (fun k s -> if k > 0 then Alcotest.(check bool) "descending" true (s <= d.Svd.sigma.(k - 1)))
        d.Svd.sigma)
    [ (2, 2); (4, 4); (4, 2); (2, 4); (8, 3); (3, 8); (1, 5); (5, 1) ]

let test_svd_orthonormal () =
  let st = Random.State.make [| 7 |] in
  let a = random_mat st 6 4 in
  let d = Svd.decompose a in
  check_mat "u†u = I" (Mat.identity 4) (Mat.mul (Mat.dagger d.Svd.u) d.Svd.u);
  check_mat "v v† = I" (Mat.identity 4) (Mat.mul d.Svd.vdag (Mat.dagger d.Svd.vdag))

let test_svd_rank_one () =
  (* |00⟩+|11⟩ reshaped is rank 2 with equal singular values (Schmidt). *)
  let s = Cx.of_float Cx.sqrt1_2 in
  let bell = Mat.of_rows [| [| s; Cx.zero |]; [| Cx.zero; s |] |] in
  let d = Svd.decompose bell in
  Alcotest.(check (float 1e-10)) "schmidt 1" Cx.sqrt1_2 d.Svd.sigma.(0);
  Alcotest.(check (float 1e-10)) "schmidt 2" Cx.sqrt1_2 d.Svd.sigma.(1);
  (* product state |00⟩ has Schmidt rank 1 *)
  let prod = Mat.of_rows [| [| Cx.one; Cx.zero |]; [| Cx.zero; Cx.zero |] |] in
  let d2 = Svd.decompose prod in
  Alcotest.(check (float 1e-10)) "rank-1 top" 1.0 d2.Svd.sigma.(0);
  Alcotest.(check (float 1e-10)) "rank-1 rest" 0.0 d2.Svd.sigma.(1)

let test_svd_truncate () =
  let st = Random.State.make [| 9 |] in
  let a = random_mat st 6 6 in
  let d = Svd.decompose a in
  let t, dropped = Svd.truncate ~max_rank:3 ~cutoff:0.0 d in
  Alcotest.(check int) "rank" 3 (Array.length t.Svd.sigma);
  Alcotest.(check bool) "dropped weight" true (dropped >= 0.0);
  Alcotest.(check int) "u cols" 3 (Mat.cols t.Svd.u);
  Alcotest.(check int) "vdag rows" 3 (Mat.rows t.Svd.vdag)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let gen_cx =
  QCheck.make
    ~print:Cx.to_string
    QCheck.Gen.(map2 Cx.make (float_range (-10.) 10.) (float_range (-10.) 10.))

let prop_conj_involutive =
  QCheck.Test.make ~name:"conj involutive" ~count:200 gen_cx (fun z ->
      Cx.equal (Cx.conj (Cx.conj z)) z)

let prop_mul_norm =
  QCheck.Test.make ~name:"|ab| = |a||b|" ~count:200 (QCheck.pair gen_cx gen_cx)
    (fun (a, b) ->
      Float.abs (Cx.norm (Cx.mul a b) -. (Cx.norm a *. Cx.norm b)) < 1e-6)

let gen_unitary2 =
  (* u3 over random angles is a uniform-enough family of 2×2 unitaries. *)
  QCheck.make
    ~print:(fun (a, b, c) -> Printf.sprintf "(%f,%f,%f)" a b c)
    QCheck.Gen.(
      triple (float_range 0.0 Float.pi)
        (float_range 0.0 (2.0 *. Float.pi))
        (float_range 0.0 (2.0 *. Float.pi)))

let prop_u3_unitary =
  QCheck.Test.make ~name:"u3 always unitary" ~count:100 gen_unitary2
    (fun (theta, phi, lambda) -> Mat.is_unitary (Gates.u3 ~theta ~phi ~lambda))

let prop_kron_mixed_product =
  QCheck.Test.make ~name:"(A⊗B)(C⊗D) = AC⊗BD" ~count:50
    (QCheck.quad gen_unitary2 gen_unitary2 gen_unitary2 gen_unitary2)
    (fun (p, q, r, s) ->
      let u (a, b, c) = Gates.u3 ~theta:a ~phi:b ~lambda:c in
      let a = u p and b = u q and c = u r and d = u s in
      Mat.approx_equal ~eps:1e-9
        (Mat.mul (Mat.kron a b) (Mat.kron c d))
        (Mat.kron (Mat.mul a c) (Mat.mul b d)))

let prop_svd_roundtrip =
  QCheck.Test.make ~name:"svd roundtrip" ~count:30
    (QCheck.make QCheck.Gen.(pair (int_range 1 6) (int_range 1 6)))
    (fun (rows, cols) ->
      let st = Random.State.make [| rows; cols; 5 |] in
      let a = random_mat st rows cols in
      Mat.approx_equal ~eps:1e-7 a (Svd.reconstruct (Svd.decompose a)))

let props = List.map QCheck_alcotest.to_alcotest
  [ prop_conj_involutive; prop_mul_norm; prop_u3_unitary;
    prop_kron_mixed_product; prop_svd_roundtrip ]

let () =
  Alcotest.run "qdt_linalg"
    [
      ( "cx",
        [
          Alcotest.test_case "basic ops" `Quick test_cx_basic;
          Alcotest.test_case "polar" `Quick test_cx_polar;
          Alcotest.test_case "predicates" `Quick test_cx_predicates;
          Alcotest.test_case "hash key" `Quick test_cx_hash_key;
        ] );
      ( "vec",
        [
          Alcotest.test_case "basis" `Quick test_vec_basis;
          Alcotest.test_case "ops" `Quick test_vec_ops;
          Alcotest.test_case "kron" `Quick test_vec_kron;
          Alcotest.test_case "global phase" `Quick test_vec_global_phase;
          Alcotest.test_case "normalize" `Quick test_vec_normalize;
          Alcotest.test_case "fidelity" `Quick test_vec_fidelity;
        ] );
      ( "mat",
        [
          Alcotest.test_case "identity" `Quick test_mat_identity;
          Alcotest.test_case "mul" `Quick test_mat_mul;
          Alcotest.test_case "dagger" `Quick test_mat_dagger;
          Alcotest.test_case "kron" `Quick test_mat_kron;
          Alcotest.test_case "unitarity" `Quick test_mat_unitarity;
          Alcotest.test_case "trace/hs" `Quick test_mat_trace_hs;
          Alcotest.test_case "gate identities" `Quick test_gate_identities;
          Alcotest.test_case "controlled" `Quick test_controlled;
          Alcotest.test_case "paper example 1" `Quick test_bell_example1;
        ] );
      ( "svd",
        [
          Alcotest.test_case "reconstruct" `Quick test_svd_reconstruct;
          Alcotest.test_case "orthonormal" `Quick test_svd_orthonormal;
          Alcotest.test_case "schmidt" `Quick test_svd_rank_one;
          Alcotest.test_case "truncate" `Quick test_svd_truncate;
        ] );
      ("properties", props);
    ]
