open Qdt_circuit
open Qdt_verify
open Qdt_compile

let check_verdict msg expect got =
  Alcotest.(check string) msg (Equiv.verdict_to_string expect) (Equiv.verdict_to_string got)

(* Equivalent pairs: a circuit and a nontrivially different realisation. *)
let equivalent_pairs =
  [
    ("hh vs id", Circuit.(empty 1 |> h 0 |> h 0), Circuit.empty 1);
    ("hxh vs z", Circuit.(empty 1 |> h 0 |> x 0 |> h 0), Circuit.(empty 1 |> z 0));
    ( "cx via cz",
      Circuit.(empty 2 |> cx 1 0),
      Circuit.(empty 2 |> h 0 |> cz 1 0 |> h 0) );
    ( "swap via cx",
      Circuit.(empty 2 |> swap 0 1),
      Circuit.(empty 2 |> cx 0 1 |> cx 1 0 |> cx 0 1) );
    ( "bell vs optimized bell",
      Circuit.append Generators.bell Circuit.(empty 2 |> t 0 |> tdg 0),
      Generators.bell );
  ]

let inequivalent_pairs =
  [
    ("x vs z", Circuit.(empty 1 |> x 0), Circuit.(empty 1 |> z 0));
    ("bell vs flipped", Generators.bell, Circuit.(empty 2 |> h 0 |> cx 0 1));
    ("ghz vs ghz+z", Generators.ghz 3, Circuit.(Generators.ghz 3 |> z 0));
    ("cx direction", Circuit.(empty 2 |> cx 1 0), Circuit.(empty 2 |> cx 0 1));
  ]

let test_arrays () =
  List.iter
    (fun (name, a, b) -> check_verdict name Equiv.Equivalent (Equiv.arrays a b))
    equivalent_pairs;
  List.iter
    (fun (name, a, b) -> check_verdict name Equiv.Not_equivalent (Equiv.arrays a b))
    inequivalent_pairs

let test_dd () =
  List.iter
    (fun (name, a, b) -> check_verdict name Equiv.Equivalent (Equiv.dd a b))
    equivalent_pairs;
  List.iter
    (fun (name, a, b) -> check_verdict name Equiv.Not_equivalent (Equiv.dd a b))
    inequivalent_pairs

let test_dd_alternating () =
  List.iter
    (fun (name, a, b) -> check_verdict name Equiv.Equivalent (Equiv.dd_alternating a b))
    equivalent_pairs;
  List.iter
    (fun (name, a, b) ->
      check_verdict name Equiv.Not_equivalent (Equiv.dd_alternating a b))
    inequivalent_pairs

let test_tn () =
  List.iter
    (fun (name, a, b) -> check_verdict name Equiv.Equivalent (Equiv.tn a b))
    equivalent_pairs;
  List.iter
    (fun (name, a, b) -> check_verdict name Equiv.Not_equivalent (Equiv.tn a b))
    inequivalent_pairs

let test_zx () =
  (* ZX is sound but incomplete: Equivalent answers must be correct, and on
     these Clifford-flavoured pairs it should actually conclude. *)
  List.iter
    (fun (name, a, b) ->
      match Equiv.zx a b with
      | Equiv.Equivalent -> ()
      | v -> Alcotest.failf "%s: zx says %s" name (Equiv.verdict_to_string v))
    equivalent_pairs;
  List.iter
    (fun (name, a, b) ->
      match Equiv.zx a b with
      | Equiv.Equivalent -> Alcotest.failf "%s: zx wrongly certified equivalence" name
      | Equiv.Not_equivalent | Equiv.Inconclusive -> ())
    inequivalent_pairs

let test_simulation () =
  List.iter
    (fun (name, a, b) ->
      match Equiv.simulation ~trials:6 a b with
      | Equiv.Not_equivalent -> Alcotest.failf "%s: simulation found a mismatch" name
      | Equiv.Equivalent | Equiv.Inconclusive -> ())
    equivalent_pairs;
  List.iter
    (fun (name, a, b) ->
      check_verdict name Equiv.Not_equivalent (Equiv.simulation ~trials:8 a b))
    inequivalent_pairs

let test_methods_agree_on_compiled () =
  (* E9/E10: compiling (routing + optimizing) preserves equivalence and all
     exact methods agree on it. *)
  let original = Generators.qft 4 in
  let result = Router.route original (Coupling.line 4) in
  let restored = Router.undo_final_permutation result in
  let optimized, _ = Optimize.optimize restored in
  check_verdict "arrays" Equiv.Equivalent (Equiv.arrays original optimized);
  check_verdict "dd" Equiv.Equivalent (Equiv.dd original optimized);
  check_verdict "dd alt" Equiv.Equivalent (Equiv.dd_alternating original optimized);
  check_verdict "tn" Equiv.Equivalent (Equiv.tn original optimized);
  match Equiv.simulation original optimized with
  | Equiv.Not_equivalent -> Alcotest.fail "simulation disagrees"
  | _ -> ()

let test_mutations_detected () =
  (* Some mutations are accidentally harmless (flipping a symmetric cphase,
     say), so the ground truth is the array method; DD must agree with it,
     and a decent share of mutations must actually be caught. *)
  let base = Generators.qft 3 in
  let caught = ref 0 in
  List.iter
    (fun seed ->
      let m = Mutate.random ~seed base in
      let truth = Equiv.arrays base m.Mutate.circuit in
      let via_dd = Equiv.dd base m.Mutate.circuit in
      if truth <> via_dd then
        Alcotest.failf "dd disagrees with arrays on %S" m.Mutate.description;
      if truth = Equiv.Not_equivalent then incr caught)
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11 ];
  Alcotest.(check bool)
    (Printf.sprintf "%d/12 mutations caught" !caught)
    true (!caught >= 8)

let test_mutation_kinds () =
  let base = Generators.ghz 3 in
  let m1 = Mutate.drop_gate ~seed:1 base in
  Alcotest.(check int) "drop removes one" (Circuit.length base - 1)
    (Circuit.length m1.Mutate.circuit);
  let m2 = Mutate.add_gate ~seed:1 base in
  Alcotest.(check int) "add inserts one" (Circuit.length base + 1)
    (Circuit.length m2.Mutate.circuit);
  let m3 = Mutate.flip_operands ~seed:1 base in
  Alcotest.(check int) "flip keeps length" (Circuit.length base)
    (Circuit.length m3.Mutate.circuit);
  (* perturbation on a rotation-free circuit falls back to add_gate *)
  let m4 = Mutate.perturb_angle ~seed:1 base in
  Alcotest.(check bool) "fallback works" true
    (Circuit.length m4.Mutate.circuit >= Circuit.length base)

let test_small_angle_perturbation_caught_by_arrays () =
  let base = Circuit.(empty 1 |> rz 0.7 0) in
  let m = Mutate.perturb_angle ~seed:0 ~delta:1e-4 base in
  check_verdict "arrays catch 1e-4" Equiv.Not_equivalent
    (Equiv.arrays base m.Mutate.circuit)

let test_arity_mismatch () =
  Alcotest.check_raises "different arity"
    (Invalid_argument "Equiv: circuits act on different numbers of qubits") (fun () ->
      ignore (Equiv.dd (Circuit.empty 2) (Circuit.empty 3)))

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_methods_agree =
  QCheck.Test.make ~name:"arrays/dd/dd_alt/tn agree on random pairs" ~count:20
    (QCheck.make QCheck.Gen.(triple (int_range 1 4) (int_range 0 500) bool))
    (fun (n, seed, mutate) ->
      let c1 = Generators.random_clifford_t ~seed ~gates:25 ~t_fraction:0.25 n in
      let c2 =
        if mutate then (Mutate.random ~seed:(seed + 1) c1).Mutate.circuit
        else
          (* a genuinely different-but-equivalent realisation *)
          fst (Optimize.optimize (Decompose.lower ~basis:Decompose.Cx_rz_h c1))
      in
      let a = Equiv.arrays c1 c2 in
      let b = Equiv.dd c1 c2 in
      let c = Equiv.dd_alternating c1 c2 in
      let d = Equiv.tn c1 c2 in
      a = b && b = c && c = d)

let prop_zx_sound =
  QCheck.Test.make ~name:"zx never certifies a mutated circuit" ~count:20
    (QCheck.make QCheck.Gen.(pair (int_range 1 3) (int_range 0 500)))
    (fun (n, seed) ->
      let c1 = Generators.random_clifford_t ~seed ~gates:20 ~t_fraction:0.2 n in
      let c2 = (Mutate.random ~seed:(seed + 7) c1).Mutate.circuit in
      match (Equiv.arrays c1 c2, Equiv.zx c1 c2) with
      | Equiv.Not_equivalent, Equiv.Equivalent -> false
      | Equiv.Equivalent, Equiv.Not_equivalent -> false
      | _ -> true)

let props = List.map QCheck_alcotest.to_alcotest [ prop_methods_agree; prop_zx_sound ]

let () =
  Alcotest.run "qdt_verify"
    [
      ( "methods",
        [
          Alcotest.test_case "arrays" `Quick test_arrays;
          Alcotest.test_case "dd" `Quick test_dd;
          Alcotest.test_case "dd alternating" `Quick test_dd_alternating;
          Alcotest.test_case "zx" `Quick test_zx;
          Alcotest.test_case "tn" `Quick test_tn;
          Alcotest.test_case "simulation" `Quick test_simulation;
          Alcotest.test_case "compiled circuits" `Quick test_methods_agree_on_compiled;
          Alcotest.test_case "arity mismatch" `Quick test_arity_mismatch;
        ] );
      ( "mutations",
        [
          Alcotest.test_case "detected" `Quick test_mutations_detected;
          Alcotest.test_case "kinds" `Quick test_mutation_kinds;
          Alcotest.test_case "small angles" `Quick test_small_angle_perturbation_caught_by_arrays;
        ] );
      ("properties", props);
    ]
