(** OpenQASM 2.0 subset: printing and parsing.

    The supported subset is what the rest of the toolkit produces and
    consumes: one quantum register, one classical register, the standard
    gate set of {!Gate} with any number of controls (spelled with leading
    [c]s, e.g. [ccx]), [swap]/[cswap], [measure], [reset] and [barrier].
    Angle expressions may use [pi], numeric literals, [+ - * /], unary
    minus and parentheses. *)

exception Parse_error of string
(** Raised with a human-readable message (including line number). *)

(** [to_string c] prints [c] as an OpenQASM 2.0 program. *)
val to_string : Circuit.t -> string

(** [of_string src] parses a program.
    @raise Parse_error on malformed input or constructs outside the
    subset. *)
val of_string : string -> Circuit.t

(** [pp] prints like {!to_string}. *)
val pp : Format.formatter -> Circuit.t -> unit
