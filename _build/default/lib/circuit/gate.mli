(** Base gates of the circuit IR.

    A gate here is always a single-qubit unitary; multi-qubit operations are
    expressed as controlled applications of these bases (plus SWAP) at the
    instruction level, which is how both QMDD packages and ZX translations
    like to consume circuits.

    Qubit-ordering convention (same as the paper, Section III): qubit
    [n-1] is the most significant, so basis index [k] has qubit [i] equal
    to bit [i] of [k]. *)

type t =
  | I
  | X
  | Y
  | Z
  | H
  | S
  | Sdg
  | T
  | Tdg
  | Sx
  | Sxdg
  | Rx of float
  | Ry of float
  | Rz of float
  | Phase of float  (** [diag(1, e^{iθ})] *)
  | U3 of { theta : float; phi : float; lambda : float }

(** [matrix g] is the 2×2 unitary of [g] (numerics from {!Qdt_linalg.Gates}). *)
val matrix : t -> Qdt_linalg.Mat.t

(** [adjoint g] is a gate realising [g†]. *)
val adjoint : t -> t

(** [name g] is the lower-case OpenQASM-style mnemonic. *)
val name : t -> string

(** [params g] are the angle parameters, in printing order. *)
val params : t -> float list

(** [is_clifford g] holds for exactly-Clifford gates (angle-free members of
    the Clifford group; rotation gates are never reported Clifford even at
    Clifford angles). *)
val is_clifford : t -> bool

(** [is_diagonal g] holds when the matrix of [g] is diagonal. *)
val is_diagonal : t -> bool

(** [equal ?eps a b] compares gates structurally, angles within [eps]. *)
val equal : ?eps:float -> t -> t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
