lib/circuit/draw.ml: Array Buffer Char Circuit Format Gate List Printf String
