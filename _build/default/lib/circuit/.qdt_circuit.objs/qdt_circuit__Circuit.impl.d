lib/circuit/circuit.ml: Array Format Gate Hashtbl List Option Printf String
