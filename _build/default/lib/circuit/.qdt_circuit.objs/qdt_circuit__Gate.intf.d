lib/circuit/gate.mli: Format Qdt_linalg
