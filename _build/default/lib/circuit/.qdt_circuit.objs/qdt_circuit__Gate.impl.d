lib/circuit/gate.ml: Float Format Gates List Printf Qdt_linalg String
