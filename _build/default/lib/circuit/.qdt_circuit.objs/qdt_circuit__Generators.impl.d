lib/circuit/generators.ml: Array Circuit Float Gate List Random
