lib/circuit/qasm.ml: Circuit Float Format Gate Hashtbl List Printf String
