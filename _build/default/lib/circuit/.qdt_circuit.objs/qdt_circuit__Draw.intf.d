lib/circuit/draw.mli: Circuit Format
