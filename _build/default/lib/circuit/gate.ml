open Qdt_linalg

type t =
  | I
  | X
  | Y
  | Z
  | H
  | S
  | Sdg
  | T
  | Tdg
  | Sx
  | Sxdg
  | Rx of float
  | Ry of float
  | Rz of float
  | Phase of float
  | U3 of { theta : float; phi : float; lambda : float }

let matrix = function
  | I -> Gates.id2
  | X -> Gates.x
  | Y -> Gates.y
  | Z -> Gates.z
  | H -> Gates.h
  | S -> Gates.s
  | Sdg -> Gates.sdg
  | T -> Gates.t
  | Tdg -> Gates.tdg
  | Sx -> Gates.sx
  | Sxdg -> Gates.sxdg
  | Rx theta -> Gates.rx theta
  | Ry theta -> Gates.ry theta
  | Rz theta -> Gates.rz theta
  | Phase theta -> Gates.phase theta
  | U3 { theta; phi; lambda } -> Gates.u3 ~theta ~phi ~lambda

let adjoint = function
  | I -> I
  | X -> X
  | Y -> Y
  | Z -> Z
  | H -> H
  | S -> Sdg
  | Sdg -> S
  | T -> Tdg
  | Tdg -> T
  | Sx -> Sxdg
  | Sxdg -> Sx
  | Rx theta -> Rx (-.theta)
  | Ry theta -> Ry (-.theta)
  | Rz theta -> Rz (-.theta)
  | Phase theta -> Phase (-.theta)
  | U3 { theta; phi; lambda } -> U3 { theta = -.theta; phi = -.lambda; lambda = -.phi }

let name = function
  | I -> "id"
  | X -> "x"
  | Y -> "y"
  | Z -> "z"
  | H -> "h"
  | S -> "s"
  | Sdg -> "sdg"
  | T -> "t"
  | Tdg -> "tdg"
  | Sx -> "sx"
  | Sxdg -> "sxdg"
  | Rx _ -> "rx"
  | Ry _ -> "ry"
  | Rz _ -> "rz"
  | Phase _ -> "p"
  | U3 _ -> "u3"

let params = function
  | I | X | Y | Z | H | S | Sdg | T | Tdg | Sx | Sxdg -> []
  | Rx theta | Ry theta | Rz theta | Phase theta -> [ theta ]
  | U3 { theta; phi; lambda } -> [ theta; phi; lambda ]

let is_clifford = function
  | I | X | Y | Z | H | S | Sdg | Sx | Sxdg -> true
  | T | Tdg | Rx _ | Ry _ | Rz _ | Phase _ | U3 _ -> false

let is_diagonal = function
  | I | Z | S | Sdg | T | Tdg | Rz _ | Phase _ -> true
  | X | Y | H | Sx | Sxdg | Rx _ | Ry _ | U3 _ -> false

let equal ?(eps = 1e-12) a b =
  let feq x y = Float.abs (x -. y) <= eps in
  match (a, b) with
  | I, I | X, X | Y, Y | Z, Z | H, H | S, S | Sdg, Sdg | T, T | Tdg, Tdg
  | Sx, Sx | Sxdg, Sxdg ->
      true
  | Rx x, Rx y | Ry x, Ry y | Rz x, Rz y | Phase x, Phase y -> feq x y
  | U3 u, U3 v -> feq u.theta v.theta && feq u.phi v.phi && feq u.lambda v.lambda
  | ( ( I | X | Y | Z | H | S | Sdg | T | Tdg | Sx | Sxdg | Rx _ | Ry _ | Rz _
      | Phase _ | U3 _ ),
      _ ) ->
      false

let pp ppf g =
  match params g with
  | [] -> Format.pp_print_string ppf (name g)
  | ps ->
      Format.fprintf ppf "%s(%s)" (name g)
        (String.concat "," (List.map (Printf.sprintf "%g") ps))

let to_string g = Format.asprintf "%a" pp g
