(** ASCII rendering of circuits, one column per instruction.

    Useful in the examples and the CLI's [show] command:

    {[
      q1: ─[h]──●──
                │
      q0: ──────⊕──
    ]} *)

(** [render c] is a multi-line drawing of [c]; the most significant qubit
    is printed on top, matching how the paper draws its decision
    diagrams. *)
val render : Circuit.t -> string

val pp : Format.formatter -> Circuit.t -> unit
