lib/linalg/svd.ml: Array Cx Float Mat
