lib/linalg/gates.ml: Cx Float Mat
