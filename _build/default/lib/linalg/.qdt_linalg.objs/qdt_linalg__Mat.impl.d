lib/linalg/mat.ml: Array Cx Float Format Vec
