lib/linalg/vec.mli: Cx Format
