lib/linalg/gates.mli: Mat
