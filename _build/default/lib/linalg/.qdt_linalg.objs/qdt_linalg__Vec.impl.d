lib/linalg/vec.ml: Array Cx Float Format
