let c = Cx.make
let r x = Cx.of_float x
let m2 a b cc d = Mat.of_rows [| [| a; b |]; [| cc; d |] |]

let x = m2 Cx.zero Cx.one Cx.one Cx.zero
let y = m2 Cx.zero (c 0.0 (-1.0)) (c 0.0 1.0) Cx.zero
let z = m2 Cx.one Cx.zero Cx.zero Cx.minus_one
let h =
  let s = r Cx.sqrt1_2 in
  m2 s s s (Cx.neg s)

let s = m2 Cx.one Cx.zero Cx.zero Cx.i
let sdg = m2 Cx.one Cx.zero Cx.zero (Cx.neg Cx.i)
let t = m2 Cx.one Cx.zero Cx.zero (Cx.exp_i (Float.pi /. 4.0))
let tdg = m2 Cx.one Cx.zero Cx.zero (Cx.exp_i (-.Float.pi /. 4.0))

let sx =
  let p = c 0.5 0.5 and q = c 0.5 (-0.5) in
  m2 p q q p

let sxdg =
  let p = c 0.5 (-0.5) and q = c 0.5 0.5 in
  m2 p q q p

let id2 = Mat.identity 2

let rx theta =
  let ct = r (cos (theta /. 2.0)) and st = c 0.0 (-.sin (theta /. 2.0)) in
  m2 ct st st ct

let ry theta =
  let ct = r (cos (theta /. 2.0)) and st = r (sin (theta /. 2.0)) in
  m2 ct (Cx.neg st) st ct

let rz theta =
  m2 (Cx.exp_i (-.theta /. 2.0)) Cx.zero Cx.zero (Cx.exp_i (theta /. 2.0))

let phase theta = m2 Cx.one Cx.zero Cx.zero (Cx.exp_i theta)

let u3 ~theta ~phi ~lambda =
  let ct = cos (theta /. 2.0) and st = sin (theta /. 2.0) in
  m2
    (r ct)
    (Cx.mul (Cx.exp_i lambda) (r (-.st)))
    (Cx.mul (Cx.exp_i phi) (r st))
    (Cx.mul (Cx.exp_i (phi +. lambda)) (r ct))

let controlled u =
  let n = Mat.rows u in
  Mat.init (2 * n) (2 * n) (fun row col ->
      if row < n && col < n then if row = col then Cx.one else Cx.zero
      else if row >= n && col >= n then Mat.get u (row - n) (col - n)
      else Cx.zero)

let cx = controlled x
let cz = controlled z
let cphase theta = controlled (phase theta)

let swap =
  Mat.init 4 4 (fun row col ->
      let swapped = ((row land 1) lsl 1) lor (row lsr 1) in
      if col = swapped then Cx.one else Cx.zero)

let iswap =
  Mat.of_rows
    [|
      [| Cx.one; Cx.zero; Cx.zero; Cx.zero |];
      [| Cx.zero; Cx.zero; Cx.i; Cx.zero |];
      [| Cx.zero; Cx.i; Cx.zero; Cx.zero |];
      [| Cx.zero; Cx.zero; Cx.zero; Cx.one |];
    |]

let ccx = controlled cx
let cswap = controlled swap
