(** Singular value decomposition of dense complex matrices.

    Implemented with one-sided Jacobi rotations — there is no LAPACK in this
    sealed environment (see DESIGN.md).  The decomposition is what the
    matrix-product-state simulator in [qdt_tensornet] uses to split two-site
    tensors and truncate bond dimensions. *)

type decomposition = {
  u : Mat.t;      (** [m × r] matrix with orthonormal columns *)
  sigma : float array;  (** [r] singular values, descending *)
  vdag : Mat.t;   (** [r × n] matrix with orthonormal rows *)
}

(** [decompose a] computes a thin SVD [a = u · diag(sigma) · vdag] with
    [r = min (rows a) (cols a)].  Singular values are returned in
    descending order. *)
val decompose : Mat.t -> decomposition

(** [truncate ~max_rank ~cutoff d] drops singular values beyond [max_rank]
    or (relatively) below [cutoff], returning the truncated factors and the
    discarded weight [Σ dropped σ²]. *)
val truncate : max_rank:int -> cutoff:float -> decomposition -> decomposition * float

(** [reconstruct d] multiplies the factors back together (testing aid). *)
val reconstruct : decomposition -> Mat.t
