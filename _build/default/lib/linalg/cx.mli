(** Complex scalars.

    A thin layer over [Stdlib.Complex] adding the approximate comparisons,
    formatting and hashing support the rest of the toolkit needs.  All
    backends (arrays, decision diagrams, tensor networks, ZX evaluation)
    share this one scalar type, so states computed by different data
    structures can be compared directly. *)

type t = Complex.t = { re : float; im : float }

val zero : t
val one : t
val i : t
val minus_one : t

(** [make re im] is the complex number [re + im·i]. *)
val make : float -> float -> t

(** [of_float re] is the real number [re] viewed as a complex scalar. *)
val of_float : float -> t

(** [of_polar ~mag ~phase] is [mag·e^{i·phase}]. *)
val of_polar : mag:float -> phase:float -> t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t
val conj : t -> t
val inv : t -> t
val scale : float -> t -> t

(** [mul_add acc a b] is [acc + a·b] (no FMA semantics implied). *)
val mul_add : t -> t -> t -> t

val norm : t -> float

(** [norm2 z] is [|z|²], cheaper than [norm]. *)
val norm2 : t -> float

val phase : t -> float

(** [sqrt z] is the principal square root. *)
val sqrt : t -> t

val exp_i : float -> t
(** [exp_i theta] is [e^{i·theta}]. *)

(** Default absolute tolerance used by the approximate comparisons
    ([1e-10]). *)
val default_eps : float

(** [approx_equal ?eps a b] holds when both components differ by at most
    [eps]. *)
val approx_equal : ?eps:float -> t -> t -> bool

(** [is_zero ?eps z] holds when [z] is within [eps] of zero. *)
val is_zero : ?eps:float -> t -> bool

(** [is_one ?eps z] holds when [z] is within [eps] of one. *)
val is_one : ?eps:float -> t -> bool

(** Total order on (re, im) pairs; exact, not tolerance-aware. *)
val compare : t -> t -> int

val equal : t -> t -> bool

(** [hash_key ?eps z] quantises [z] onto a grid of pitch [eps] suitable for
    hashing values that were first canonicalised with the same grid. *)
val hash_key : ?eps:float -> t -> int * int

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** 1/√2, the ubiquitous Hadamard factor. *)
val sqrt1_2 : float
