(** Dense complex vectors.

    The array representation of quantum states from Section II of the
    paper: an [n]-qubit register is a vector of [2^n] amplitudes. *)

type t

(** [create len] is the zero vector of length [len]. *)
val create : int -> t

(** [init len f] is the vector whose [i]-th entry is [f i]. *)
val init : int -> (int -> Cx.t) -> t

(** [of_array a] copies [a] into a fresh vector. *)
val of_array : Cx.t array -> t

(** [to_array v] is a copy of the entries of [v]. *)
val to_array : t -> Cx.t array

(** [basis ~dim k] is the computational basis vector [|k⟩]. *)
val basis : dim:int -> int -> t

val length : t -> int
val get : t -> int -> Cx.t
val set : t -> int -> Cx.t -> unit
val copy : t -> t
val map : (Cx.t -> Cx.t) -> t -> t
val iteri : (int -> Cx.t -> unit) -> t -> unit
val add : t -> t -> t
val sub : t -> t -> t
val scale : Cx.t -> t -> t

(** [dot a b] is the Hermitian inner product [⟨a|b⟩] (conjugating [a]). *)
val dot : t -> t -> Cx.t

(** [norm v] is the Euclidean norm [√⟨v|v⟩]. *)
val norm : t -> float

(** [normalize v] rescales [v] to unit norm.
    @raise Invalid_argument on (numerically) zero vectors. *)
val normalize : t -> t

(** [kron a b] is the Kronecker (tensor) product [a ⊗ b]. *)
val kron : t -> t -> t

(** [probabilities v] is the measurement distribution [|v_i|²]. *)
val probabilities : t -> float array

(** [approx_equal ?eps a b] compares entrywise within [eps]. *)
val approx_equal : ?eps:float -> t -> t -> bool

(** [equal_up_to_global_phase ?eps a b] holds when [a = e^{iφ}·b] for some
    phase [φ]; this is physical equality of pure states. *)
val equal_up_to_global_phase : ?eps:float -> t -> t -> bool

(** [fidelity a b] is [|⟨a|b⟩|²]. *)
val fidelity : t -> t -> float

(** [memory_bytes v] is the heap footprint of the amplitude payload,
    used by the E5 memory-scaling experiment. *)
val memory_bytes : t -> int

val pp : Format.formatter -> t -> unit
