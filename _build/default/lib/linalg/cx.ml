type t = Complex.t = { re : float; im : float }

let zero = Complex.zero
let one = Complex.one
let i = Complex.i
let minus_one = { re = -1.0; im = 0.0 }
let make re im = { re; im }
let of_float re = { re; im = 0.0 }
let of_polar ~mag ~phase = { re = mag *. cos phase; im = mag *. sin phase }
let add = Complex.add
let sub = Complex.sub
let mul = Complex.mul
let div = Complex.div
let neg = Complex.neg
let conj = Complex.conj
let inv = Complex.inv
let scale s z = { re = s *. z.re; im = s *. z.im }
let mul_add acc a b = add acc (mul a b)
let norm = Complex.norm
let norm2 z = (z.re *. z.re) +. (z.im *. z.im)
let phase = Complex.arg
let sqrt = Complex.sqrt
let exp_i theta = { re = cos theta; im = sin theta }
let default_eps = 1e-10

let approx_equal ?(eps = default_eps) a b =
  Float.abs (a.re -. b.re) <= eps && Float.abs (a.im -. b.im) <= eps

let is_zero ?(eps = default_eps) z =
  Float.abs z.re <= eps && Float.abs z.im <= eps

let is_one ?eps z = approx_equal ?eps z one

let compare a b =
  let c = Float.compare a.re b.re in
  if c <> 0 then c else Float.compare a.im b.im

let equal a b = Float.equal a.re b.re && Float.equal a.im b.im

let quantise eps x = int_of_float (Float.round (x /. eps))
let hash_key ?(eps = default_eps) z = (quantise eps z.re, quantise eps z.im)

let pp ppf z =
  if Float.abs z.im <= 1e-15 then Format.fprintf ppf "%g" z.re
  else if Float.abs z.re <= 1e-15 then Format.fprintf ppf "%gi" z.im
  else if z.im < 0.0 then Format.fprintf ppf "%g-%gi" z.re (Float.abs z.im)
  else Format.fprintf ppf "%g+%gi" z.re z.im

let to_string z = Format.asprintf "%a" pp z
let sqrt1_2 = 1.0 /. Float.sqrt 2.0
