(** Matrices of the standard gate set.

    These are the concrete unitaries behind the circuit IR's gate names;
    every backend (arrays, DDs, tensor networks, ZX evaluation) obtains its
    numerics from here, which keeps the backends mutually consistent. *)

(** {1 Single-qubit gates (2×2)} *)

val x : Mat.t
val y : Mat.t
val z : Mat.t
val h : Mat.t
val s : Mat.t
val sdg : Mat.t
val t : Mat.t
val tdg : Mat.t
val sx : Mat.t
val sxdg : Mat.t
val id2 : Mat.t

val rx : float -> Mat.t
val ry : float -> Mat.t
val rz : float -> Mat.t

(** [phase theta] is [diag(1, e^{iθ})]. *)
val phase : float -> Mat.t

(** [u3 ~theta ~phi ~lambda] is the generic single-qubit rotation
    (OpenQASM [U(θ,φ,λ)] convention). *)
val u3 : theta:float -> phi:float -> lambda:float -> Mat.t

(** {1 Two-qubit gates (4×4), control = most significant qubit} *)

val cx : Mat.t
val cz : Mat.t
val swap : Mat.t
val iswap : Mat.t
val cphase : float -> Mat.t

(** {1 Three-qubit gates (8×8)} *)

val ccx : Mat.t
val cswap : Mat.t

(** {1 Helpers} *)

(** [controlled u] extends the [2^k × 2^k] unitary [u] with one control
    qubit as the new most significant qubit. *)
val controlled : Mat.t -> Mat.t
