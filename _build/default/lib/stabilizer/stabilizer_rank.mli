(** Stabilizer-rank simulation of Clifford+T circuits (the approach of
    the paper's ref [40] and of Bravyi–Gosset, ref [11]).

    Any circuit is first lowered to {CX, Rz, H}; each non-Clifford
    diagonal rotation [P(θ) = diag(1, e^{iθ})] is expanded as
    [α·I + β·Z] with [α = (1+e^{iθ})/2], [β = (1−e^{iθ})/2], so the
    circuit becomes a sum of [2^t] Clifford circuits ([t] = number of
    non-Clifford rotations).  Each term is evolved exactly (with global
    phase) in the CH form ({!Ch_form}) and the amplitudes are summed:
    cost [O(2^t · poly(n))] — exponential in the T-count, not the qubit
    count. *)

type t

(** [prepare circuit] — lower and classify.
    @raise Invalid_argument if the circuit measures or resets. *)
val prepare : Qdt_circuit.Circuit.t -> t

(** [t_count p] — number of branch points [t] (non-Clifford rotations
    after lowering). *)
val t_count : t -> int

(** [num_branches p] is [2^t]. *)
val num_branches : t -> int

(** [amplitude p k] — the exact amplitude [⟨k|C|0…0⟩]. *)
val amplitude : t -> int -> Qdt_linalg.Cx.t

(** [probability p k] is [|amplitude p k|²]. *)
val probability : t -> int -> float

(** [statevector p] — all [2^n] amplitudes (small [n]; testing aid). *)
val statevector : t -> Qdt_linalg.Vec.t
