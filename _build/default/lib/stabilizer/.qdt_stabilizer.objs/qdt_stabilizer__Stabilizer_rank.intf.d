lib/stabilizer/stabilizer_rank.mli: Qdt_circuit Qdt_linalg
