lib/stabilizer/ch_form.ml: Array Circuit Cx Float Gate List Qdt_circuit Qdt_linalg Vec
