lib/stabilizer/ch_form.mli: Qdt_circuit Qdt_linalg
