lib/stabilizer/tableau.ml: Array Circuit Format Gate Hashtbl List Option Qdt_circuit Random String
