lib/stabilizer/tableau.mli: Format Qdt_circuit Random
