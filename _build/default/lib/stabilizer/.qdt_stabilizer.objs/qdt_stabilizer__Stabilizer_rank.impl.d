lib/stabilizer/stabilizer_rank.ml: Ch_form Circuit Cx Float Gate List Option Printf Qdt_circuit Qdt_compile Qdt_linalg Vec
