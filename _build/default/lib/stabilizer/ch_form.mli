(** CH-form stabilizer states (Bravyi, Browne, Calpin, Campbell & Howard,
    "Simulation of quantum circuits by low-rank stabilizer
    decompositions", Quantum 3, 181 (2019), §4).

    A stabilizer state is kept as [|φ⟩ = ω · U_C · U_H |s⟩] where [U_C]
    is a circuit of control-type gates {S, CZ, CX} represented by its
    Heisenberg action, [U_H] a layer of Hadamards and [s] a basis state.
    Unlike the plain tableau ({!Tableau}), the global scalar [ω] is
    tracked exactly, so *amplitudes with phases* are available — the
    ingredient stabilizer-rank simulation needs ({!Stabilizer_rank}).

    Supported gates: the full Clifford group (H, S, S†, X, Y, Z, CX, CZ,
    SWAP). *)

type t

(** [create n] is [|0…0⟩]. *)
val create : int -> t

val num_qubits : t -> int
val copy : t -> t

(** {1 Gates (in-place)} *)

val h : t -> int -> unit
val s : t -> int -> unit
val sdg : t -> int -> unit
val x : t -> int -> unit
val y : t -> int -> unit
val z : t -> int -> unit
val cx : t -> int -> int -> unit
val cz : t -> int -> int -> unit
val swap : t -> int -> int -> unit

(** [apply_instruction st instr] — any Clifford circuit instruction.
    @raise Invalid_argument on non-Clifford gates or measurements. *)
val apply_instruction : t -> Qdt_circuit.Circuit.instruction -> unit

(** [run circuit] — evolve [|0…0⟩] through a Clifford circuit. *)
val run : Qdt_circuit.Circuit.t -> t

(** {1 Read-out} *)

(** [amplitude st x] — the exact complex amplitude [⟨x|φ⟩]. *)
val amplitude : t -> int -> Qdt_linalg.Cx.t

(** [to_vec st] — densify (small [n] only; testing aid). *)
val to_vec : t -> Qdt_linalg.Vec.t

(** [global_scalar st] — the tracked [ω]. *)
val global_scalar : t -> Qdt_linalg.Cx.t
