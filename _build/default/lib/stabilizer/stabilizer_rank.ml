open Qdt_linalg
open Qdt_circuit

(* A prepared circuit: Clifford steps interleaved with diagonal branch
   points.  The lowering to {CX, Rz, H} guarantees every non-Clifford
   gate is a single-qubit diagonal. *)

type step =
  | Clifford of Circuit.instruction
  | Branch of { qubit : int; alpha : Cx.t; beta : Cx.t }
      (* diag(1, e^{iθ}) = alpha·I + beta·Z *)

type t = { n : int; steps : step list; prefactor : Cx.t; branches : int }

let half_pi = Float.pi /. 2.0

let classify_angle theta =
  (* Multiple of π/2 → exact Clifford gate; otherwise a branch point. *)
  let r = theta /. half_pi in
  let k = Float.round r in
  if Float.abs (r -. k) < 1e-12 then Some (((int_of_float k mod 4) + 4) mod 4)
  else None

let clifford_of_quarter_turns q qubit =
  match q with
  | 0 -> None
  | 1 -> Some (Circuit.Apply { gate = Gate.S; controls = []; target = qubit })
  | 2 -> Some (Circuit.Apply { gate = Gate.Z; controls = []; target = qubit })
  | _ -> Some (Circuit.Apply { gate = Gate.Sdg; controls = []; target = qubit })

let max_branch_points = 24

let prepare circuit =
  if not (Circuit.is_unitary_only circuit) then
    invalid_arg "Stabilizer_rank.prepare: circuit measures or resets";
  (* The Zx_ready lowering is exact (it realises global phases with
     Rz/Phase pairs), so amplitudes keep their true phase. *)
  let lowered =
    Qdt_compile.Decompose.lower ~basis:Qdt_compile.Decompose.Zx_ready circuit
  in
  let n = Circuit.num_qubits lowered in
  let prefactor = ref Cx.one in
  let branches = ref 0 in
  let diagonal ~rz theta target =
    (* diag(1, e^{iθ}) with an extra e^{−iθ/2} when the gate was Rz *)
    if rz then prefactor := Cx.mul !prefactor (Cx.exp_i (-.theta /. 2.0));
    match classify_angle theta with
    | Some q -> Option.map (fun i -> [ Clifford i ]) (clifford_of_quarter_turns q target)
                |> Option.value ~default:[]
    | None ->
        incr branches;
        let e = Cx.exp_i theta in
        [ Branch
            {
              qubit = target;
              alpha = Cx.scale 0.5 (Cx.add Cx.one e);
              beta = Cx.scale 0.5 (Cx.sub Cx.one e);
            } ]
  in
  let steps =
    List.concat_map
      (fun instr ->
        match instr with
        | Circuit.Barrier _ -> []
        | Circuit.Apply { gate = Gate.I; controls = []; _ } -> []
        | Circuit.Apply
            { gate = Gate.X | Gate.Z | Gate.H | Gate.S | Gate.Sdg; controls = []; _ }
        | Circuit.Apply { gate = Gate.X | Gate.Z; controls = [ _ ]; _ }
        | Circuit.Swap { controls = []; _ } ->
            [ Clifford instr ]
        | Circuit.Apply { gate = Gate.T; controls = []; target } ->
            diagonal ~rz:false (Float.pi /. 4.0) target
        | Circuit.Apply { gate = Gate.Tdg; controls = []; target } ->
            diagonal ~rz:false (-.Float.pi /. 4.0) target
        | Circuit.Apply { gate = Gate.Phase theta; controls = []; target } ->
            diagonal ~rz:false theta target
        | Circuit.Apply { gate = Gate.Rz theta; controls = []; target } ->
            diagonal ~rz:true theta target
        | Circuit.Apply { gate = Gate.Rx theta; controls = []; target } ->
            (* Rx(θ) = H·Rz(θ)·H exactly *)
            let h = Circuit.Apply { gate = Gate.H; controls = []; target } in
            (Clifford h :: diagonal ~rz:true theta target) @ [ Clifford h ]
        | _ ->
            invalid_arg
              "Stabilizer_rank.prepare: lowering left an unexpected instruction")
      (Circuit.instructions lowered)
  in
  if !branches > max_branch_points then
    invalid_arg
      (Printf.sprintf "Stabilizer_rank.prepare: %d branch points exceed the limit of %d"
         !branches max_branch_points);
  { n; steps; prefactor = !prefactor; branches = !branches }

let t_count p = p.branches
let num_branches p = 1 lsl p.branches

let amplitude p k =
  if k < 0 || k >= 1 lsl p.n then invalid_arg "Stabilizer_rank.amplitude: out of range";
  (* Depth-first over the branch tree, sharing the Clifford prefix. *)
  let rec go state coeff steps =
    if Cx.is_zero ~eps:0.0 coeff then Cx.zero
    else
      match steps with
      | [] -> Cx.mul coeff (Ch_form.amplitude state k)
      | Clifford instr :: rest ->
          Ch_form.apply_instruction state instr;
          go state coeff rest
      | Branch { qubit; alpha; beta } :: rest ->
          let z_branch = Ch_form.copy state in
          Ch_form.z z_branch qubit;
          let a = go state (Cx.mul coeff alpha) rest in
          let b = go z_branch (Cx.mul coeff beta) rest in
          Cx.add a b
  in
  go (Ch_form.create p.n) p.prefactor p.steps

let probability p k = Cx.norm2 (amplitude p k)

let statevector p = Vec.init (1 lsl p.n) (fun k -> amplitude p k)
