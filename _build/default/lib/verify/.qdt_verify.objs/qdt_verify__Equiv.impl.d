lib/verify/equiv.ml: Array Circuit Cx Float List Mat Qdt_arraysim Qdt_circuit Qdt_dd Qdt_linalg Qdt_tensornet Qdt_zx Random
