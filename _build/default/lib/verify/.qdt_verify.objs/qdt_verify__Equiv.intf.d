lib/verify/equiv.mli: Qdt_circuit
