lib/verify/mutate.mli: Qdt_circuit
