lib/verify/mutate.ml: Circuit Gate List Printf Qdt_circuit Random
