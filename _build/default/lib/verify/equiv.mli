(** Equivalence checking of quantum circuits (the paper's verification
    task, refs [19]–[25]): four complementary methods, one per data
    structure.

    All methods decide equality up to global phase. *)

type verdict =
  | Equivalent
  | Not_equivalent
  | Inconclusive
      (** the method could not certify either way (ZX reduction is
          incomplete; simulation is probabilistic evidence only) *)

val verdict_to_string : verdict -> string

(** [arrays c1 c2] — build both [2^n × 2^n] unitaries and compare
    (Section II; exact, exponential memory). *)
val arrays : Qdt_circuit.Circuit.t -> Qdt_circuit.Circuit.t -> verdict

(** [dd c1 c2] — build the DD of [U₂†·U₁] and compare with the identity
    DD (Section III; exact, compact when structure exists). *)
val dd : Qdt_circuit.Circuit.t -> Qdt_circuit.Circuit.t -> verdict

(** [dd_alternating c1 c2] — the G→G' scheme of Burgholzer & Wille
    (ref [20]): keep [E = gates-of-c1-so-far · (gates-of-c2-so-far)†]
    close to the identity by interleaving the two circuits
    proportionally, so intermediate DDs stay small. *)
val dd_alternating : Qdt_circuit.Circuit.t -> Qdt_circuit.Circuit.t -> verdict

(** [zx c1 c2] — reduce the diagram of [c1 ; c2†] with the ZX-calculus;
    [Equivalent] if it becomes bare identity wires, [Inconclusive]
    otherwise (the rewrite strategy is not complete). *)
val zx : Qdt_circuit.Circuit.t -> Qdt_circuit.Circuit.t -> verdict

(** [tn c1 c2] — contract the closed tensor network of [c1 ; c2†] to the
    scalar [Tr(U₂†U₁)] and compare its magnitude with [2^n] (Section IV's
    answer to verification, cf. ref [25]); exact up to numerics, memory
    bounded by the contraction width rather than [2^n] a priori. *)
val tn : Qdt_circuit.Circuit.t -> Qdt_circuit.Circuit.t -> verdict

(** [simulation ?seed ?trials c1 c2] — run both circuits on random
    stimuli (basis states and random product states) with the DD
    simulator and compare end states; [Not_equivalent] on any mismatch,
    [Inconclusive] (= probably equivalent) when all agree. *)
val simulation :
  ?seed:int -> ?trials:int -> Qdt_circuit.Circuit.t -> Qdt_circuit.Circuit.t -> verdict

(** Size guard used by [arrays] (default 12 qubits). *)
val max_array_qubits : int
