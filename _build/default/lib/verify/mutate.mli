(** Error injection for verification experiments (E10).

    Compilation-flow validation needs circuits that are *almost* right:
    these mutations mimic the classic compiler-bug classes — a dropped
    gate, an extra gate, flipped CNOT operands, an off-by-a-little
    rotation angle. *)

type mutation = {
  description : string;
  circuit : Qdt_circuit.Circuit.t;
}

(** [drop_gate ~seed c] removes one random gate instruction.
    @raise Invalid_argument on an empty circuit. *)
val drop_gate : seed:int -> Qdt_circuit.Circuit.t -> mutation

(** [add_gate ~seed c] inserts a random single-qubit Clifford gate at a
    random position. *)
val add_gate : seed:int -> Qdt_circuit.Circuit.t -> mutation

(** [flip_operands ~seed c] swaps control and target of one controlled
    instruction; falls back to [add_gate] if there is none. *)
val flip_operands : seed:int -> Qdt_circuit.Circuit.t -> mutation

(** [perturb_angle ~seed ?delta c] nudges one rotation angle (default
    [delta = 1e-4]); falls back to [add_gate] if there is no rotation. *)
val perturb_angle : seed:int -> ?delta:float -> Qdt_circuit.Circuit.t -> mutation

(** [random ~seed c] — one of the above, seed-chosen. *)
val random : seed:int -> Qdt_circuit.Circuit.t -> mutation
