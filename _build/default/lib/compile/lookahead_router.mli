(** Lookahead routing in the style of SABRE (Li, Ding & Xie — the
    approach behind the paper's ref [18]).

    Instead of walking each blocked gate's shortest path, consider every
    swap on an edge touching the current front layer and pick the one
    that most decreases the summed distance of the front layer plus a
    discounted lookahead window; a decay penalty on recently swapped
    qubits breaks oscillations.  Usually beats the greedy router on
    circuits with interleaved long-range interactions (bench E9). *)

(** [route ?initial_layout ?lookahead ?decay circuit coupling] — same
    contract as {!Router.route}.  [lookahead] is the window size
    (default 20), [decay] the oscillation penalty (default 0.1). *)
val route :
  ?initial_layout:int array ->
  ?lookahead:int ->
  ?decay:float ->
  Qdt_circuit.Circuit.t ->
  Coupling.t ->
  Router.result
