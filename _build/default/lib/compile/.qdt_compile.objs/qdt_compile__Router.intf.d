lib/compile/router.mli: Coupling Qdt_circuit
