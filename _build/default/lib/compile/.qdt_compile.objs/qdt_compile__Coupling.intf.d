lib/compile/coupling.mli:
