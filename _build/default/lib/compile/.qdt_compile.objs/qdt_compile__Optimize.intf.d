lib/compile/optimize.mli: Qdt_circuit
