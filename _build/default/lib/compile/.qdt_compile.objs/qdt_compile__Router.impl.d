lib/compile/router.ml: Array Circuit Coupling Decompose List Qdt_circuit
