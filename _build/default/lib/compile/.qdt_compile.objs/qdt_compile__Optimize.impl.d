lib/compile/optimize.ml: Array Circuit Float Gate List Qdt_circuit
