lib/compile/coupling.ml: Array Lazy List Queue
