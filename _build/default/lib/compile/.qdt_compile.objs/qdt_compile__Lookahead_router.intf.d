lib/compile/lookahead_router.mli: Coupling Qdt_circuit Router
