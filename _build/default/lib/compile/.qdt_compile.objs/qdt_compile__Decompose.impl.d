lib/compile/decompose.ml: Circuit Cx Float Gate Gates List Mat Qdt_circuit Qdt_linalg
