lib/compile/lookahead_router.ml: Array Circuit Coupling Decompose Float List Qdt_circuit Router
