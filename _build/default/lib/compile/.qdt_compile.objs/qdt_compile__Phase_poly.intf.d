lib/compile/phase_poly.mli: Qdt_circuit
