lib/compile/phase_poly.ml: Array Circuit Float Gate Hashtbl List Optimize Qdt_circuit
