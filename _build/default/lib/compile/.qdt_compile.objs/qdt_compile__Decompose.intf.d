lib/compile/decompose.mli: Qdt_circuit Qdt_linalg
