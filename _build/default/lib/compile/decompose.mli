(** Gate decomposition (the first half of the paper's compilation task:
    rewriting a circuit over a restricted gate set, refs [14]–[18]).

    Everything is pure gate algebra: ZYZ angles for arbitrary 2×2
    unitaries, the ABC construction for singly-controlled gates, the
    Barenco recursion for multiple controls.  Decompositions preserve the
    unitary up to global phase. *)

(** [zyz u] returns [(alpha, theta, phi, lambda)] with
    [u = e^{iα}·Rz(φ)·Ry(θ)·Rz(λ)].
    @raise Invalid_argument unless [u] is 2×2 unitary. *)
val zyz : Qdt_linalg.Mat.t -> float * float * float * float

(** [sqrt_unitary u] is a 2×2 unitary [v] with [v·v = u] (principal root
    via eigendecomposition). *)
val sqrt_unitary : Qdt_linalg.Mat.t -> Qdt_linalg.Mat.t

(** Target gate sets. *)
type basis =
  | Two_qubit
      (** any single-qubit gate; two-qubit interactions only (CX/CZ/SWAP
          with at most one control) *)
  | Zx_ready
      (** {H, Rz-like diagonal gates, X-like gates, CX, CZ, SWAP} — what
          the ZX translation consumes *)
  | Cx_rz_h  (** only CX, Rz and H — a minimal universal set *)

(** [lower ~basis c] rewrites every instruction into [basis].
    Measurements, resets and barriers pass through untouched. *)
val lower : basis:basis -> Qdt_circuit.Circuit.t -> Qdt_circuit.Circuit.t

(** [conforms ~basis c] checks that every instruction already lies in
    [basis]. *)
val conforms : basis:basis -> Qdt_circuit.Circuit.t -> bool
