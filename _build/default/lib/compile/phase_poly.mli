(** Phase-polynomial optimization of {CNOT, diagonal} circuits.

    A circuit of CNOTs and Z-diagonal rotations implements
    [|x⟩ ↦ e^{i·p(x)}|L·x⟩] where [p] is a sum of angles over parities of
    the input bits and [L] is linear over GF(2).  Collecting the
    polynomial merges all rotations on equal parities (the π/4
    parity-phase reduction of the paper's ref [41]), and resynthesis
    emits one rotation per surviving parity plus CNOTs rebuilding [L]. *)

type t
(** A parsed phase polynomial: parities with angles, plus the linear
    output function. *)

(** [of_circuit c] parses a circuit containing only CNOTs and diagonal
    single-qubit gates (I, Z, S, S†, T, T†, Rz, Phase).
    @raise Invalid_argument on any other instruction. *)
val of_circuit : Qdt_circuit.Circuit.t -> t

(** [terms poly] — the merged (parity-bitmask, angle) list, zero angles
    dropped, in first-occurrence order. *)
val terms : t -> (int * float) list

(** [synthesize poly] — a circuit realising the polynomial (up to global
    phase). *)
val synthesize : t -> Qdt_circuit.Circuit.t

(** [optimize c] = [synthesize (of_circuit c)]. *)
val optimize : Qdt_circuit.Circuit.t -> Qdt_circuit.Circuit.t

(** [optimize_blocks c] — run the optimization over every maximal
    {CNOT, diagonal} block of an arbitrary circuit, leaving other
    instructions in place. *)
val optimize_blocks : Qdt_circuit.Circuit.t -> Qdt_circuit.Circuit.t

(** [is_block_instruction i] — does [i] belong to a phase-polynomial
    block? *)
val is_block_instruction : Qdt_circuit.Circuit.instruction -> bool
