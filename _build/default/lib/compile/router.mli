(** Qubit routing: mapping circuits onto a coupling map by SWAP insertion
    (the "mapping" compilation task of refs [15], [18]).

    Greedy strategy: keep a logical→physical placement; when a two-qubit
    gate acts on non-adjacent physical qubits, walk the shortest path and
    swap the logical qubits together, then emit the gate.  The result is a
    circuit over *physical* qubits, plus the placement before and after —
    so functional equivalence is checkable (experiment E9). *)

type result = {
  routed : Qdt_circuit.Circuit.t;      (** physical-qubit circuit *)
  initial_layout : int array;          (** logical → physical at the start *)
  final_layout : int array;            (** logical → physical at the end *)
  added_swaps : int;
}

(** [route ?initial_layout circuit coupling] routes [circuit] (first
    lowered to ≤2-qubit instructions).  The default initial layout is the
    identity.
    @raise Invalid_argument if the coupling map has fewer qubits than the
    circuit or is disconnected where needed. *)
val route : ?initial_layout:int array -> Qdt_circuit.Circuit.t -> Coupling.t -> result

(** [respects circuit coupling] — every ≥2-qubit instruction touches only
    adjacent physical qubits. *)
val respects : Qdt_circuit.Circuit.t -> Coupling.t -> bool

(** [apply_layout_permutation ~layout c] prepends nothing but returns the
    circuit one gets by relabelling qubit [l] to [layout.(l)]; helper for
    checking routed circuits against originals. *)
val apply_layout_permutation : layout:int array -> Qdt_circuit.Circuit.t -> Qdt_circuit.Circuit.t

(** [undo_final_permutation result] appends SWAPs to [result.routed] so the
    overall circuit implements the original unitary under
    [initial_layout] alone (i.e. final placement is restored to the
    initial one). *)
val undo_final_permutation : result -> Qdt_circuit.Circuit.t
