type t = { n : int; adj : int list array; dist : int array array Lazy.t }

let compute_distances n adj =
  let dist = Array.make_matrix n n max_int in
  for src = 0 to n - 1 do
    dist.(src).(src) <- 0;
    let queue = Queue.create () in
    Queue.add src queue;
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      List.iter
        (fun w ->
          if dist.(src).(w) = max_int then begin
            dist.(src).(w) <- dist.(src).(v) + 1;
            Queue.add w queue
          end)
        adj.(v)
    done
  done;
  dist

let of_edges n edge_list =
  if n < 1 then invalid_arg "Coupling.of_edges: need n >= 1";
  let adj = Array.make n [] in
  List.iter
    (fun (a, b) ->
      if a < 0 || a >= n || b < 0 || b >= n then
        invalid_arg "Coupling.of_edges: qubit out of range";
      if a = b then invalid_arg "Coupling.of_edges: self loop";
      if not (List.mem b adj.(a)) then begin
        adj.(a) <- b :: adj.(a);
        adj.(b) <- a :: adj.(b)
      end)
    edge_list;
  { n; adj; dist = lazy (compute_distances n adj) }

let line n = of_edges n (List.init (n - 1) (fun k -> (k, k + 1)))

let ring n =
  if n < 3 then line n
  else of_edges n ((n - 1, 0) :: List.init (n - 1) (fun k -> (k, k + 1)))

let grid ~rows ~cols =
  let n = rows * cols in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let v = (r * cols) + c in
      if c + 1 < cols then edges := (v, v + 1) :: !edges;
      if r + 1 < rows then edges := (v, v + cols) :: !edges
    done
  done;
  of_edges n !edges

let star n = of_edges n (List.init (n - 1) (fun k -> (0, k + 1)))

let fully_connected n =
  let edges = ref [] in
  for a = 0 to n - 2 do
    for b = a + 1 to n - 1 do
      edges := (a, b) :: !edges
    done
  done;
  of_edges n !edges

let ibm_qx5 =
  (* 2x8 ladder: two rows of eight with rungs, as in the QX5 layout. *)
  let rungs = List.init 8 (fun k -> (k, 15 - k)) in
  let top = List.init 7 (fun k -> (k, k + 1)) in
  let bottom = List.init 7 (fun k -> (8 + k, 9 + k)) in
  of_edges 16 (rungs @ top @ bottom)

let num_qubits t = t.n
let connected t a b = List.mem b t.adj.(a)
let neighbors t v = t.adj.(v)

let edges t =
  let acc = ref [] in
  for a = 0 to t.n - 1 do
    List.iter (fun b -> if a < b then acc := (a, b) :: !acc) t.adj.(a)
  done;
  List.rev !acc

let distance t a b = (Lazy.force t.dist).(a).(b)

let shortest_path t a b =
  let dist = Lazy.force t.dist in
  if dist.(a).(b) = max_int then raise Not_found;
  (* Walk greedily downhill from [a] towards [b]. *)
  let rec walk v acc =
    if v = b then List.rev (v :: acc)
    else
      let next =
        List.find (fun w -> dist.(w).(b) = dist.(v).(b) - 1) t.adj.(v)
      in
      walk next (v :: acc)
  in
  walk a []
