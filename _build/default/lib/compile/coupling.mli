(** Device coupling maps.

    Compilation target constraints (Section I of the paper: "limited
    connectivity"): an undirected graph over physical qubits; two-qubit
    gates may only act on adjacent pairs. *)

type t

(** [of_edges n edges] builds a map on [n] qubits.
    @raise Invalid_argument on out-of-range or self-loop edges. *)
val of_edges : int -> (int * int) list -> t

(** Standard topologies. *)
val line : int -> t

val ring : int -> t

(** [grid ~rows ~cols] — 2D lattice, qubit [r*cols + c]. *)
val grid : rows:int -> cols:int -> t

val star : int -> t
val fully_connected : int -> t

(** A 16-qubit ladder in the style of IBM QX5 (ref [15] of the paper). *)
val ibm_qx5 : t

val num_qubits : t -> int
val connected : t -> int -> int -> bool
val neighbors : t -> int -> int list
val edges : t -> (int * int) list

(** [distance t a b] — shortest-path length (∞ = [max_int] if
    disconnected). *)
val distance : t -> int -> int -> int

(** [shortest_path t a b] — vertices from [a] to [b] inclusive.
    @raise Not_found if disconnected. *)
val shortest_path : t -> int -> int -> int list
