(** Peephole circuit optimization.

    Gate-level rewrites that need no global analysis: adjacent
    inverse-pair cancellation ([H·H], [CX·CX], [S·S†], …), merging of
    runs of diagonal rotations on the same wire into one phase gate, and
    removal of identity gates.  Rotation merging treats [Rz]/[Phase]/
    [Z]/[S]/[T] uniformly, so results are guaranteed only up to global
    phase — which is the equivalence the verification backends check. *)

type stats = {
  removed : int;   (** instructions deleted by cancellation *)
  merged : int;    (** instructions merged into another *)
}

(** [cancel_inverses c] removes adjacent gate/inverse pairs (adjacency on
    the gate's own qubits; unrelated gates in between are ignored).
    Iterates to a fixpoint. *)
val cancel_inverses : Qdt_circuit.Circuit.t -> Qdt_circuit.Circuit.t * stats

(** [merge_rotations c] fuses consecutive diagonal gates on a wire into a
    single [Phase] (or drops them if the total angle vanishes), and fuses
    consecutive [Rx] into one [Rx]. *)
val merge_rotations : Qdt_circuit.Circuit.t -> Qdt_circuit.Circuit.t * stats

(** [optimize c] — [cancel_inverses] and [merge_rotations] to fixpoint. *)
val optimize : Qdt_circuit.Circuit.t -> Qdt_circuit.Circuit.t * stats

(** [diag_angle g] — the |1⟩-phase of a diagonal single-qubit gate (Rz up
    to global phase), [None] for non-diagonal gates.  Shared with the
    phase-polynomial optimizer. *)
val diag_angle : Qdt_circuit.Gate.t -> float option
