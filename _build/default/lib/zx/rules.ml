(* Rewrites preserve semantics up to global scalar; see Diagram's doc. *)

let is_spider d v = Diagram.kind d v <> Diagram.Boundary

(* ------------------------------------------------------------------ *)
(* Colour change: make every spider green                              *)
(* ------------------------------------------------------------------ *)

let color_change_to_z d =
  let xs = List.filter (fun v -> Diagram.kind d v = Diagram.X) (Diagram.vertices d) in
  let x_set = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace x_set v ()) xs;
  (* An edge (v,w) toggles kind once per X endpoint; self-loops toggle
     twice, i.e. stay. *)
  let edges = ref [] in
  List.iter
    (fun v ->
      List.iter
        (fun (w, counts) -> if w >= v then edges := (v, w, counts) :: !edges)
        (Diagram.neighbors d v))
    (Diagram.vertices d);
  List.iter
    (fun (v, w, (s, h)) ->
      let flips =
        (if Hashtbl.mem x_set v then 1 else 0) + (if Hashtbl.mem x_set w then 1 else 0)
      in
      if v <> w && flips mod 2 = 1 then begin
        Diagram.remove_all_edges d v w;
        for _ = 1 to s do
          Diagram.connect d v w Diagram.Had
        done;
        for _ = 1 to h do
          Diagram.connect d v w Diagram.Simple
        done
      end)
    !edges;
  List.iter (fun v -> Diagram.set_kind d v Diagram.Z) xs

(* ------------------------------------------------------------------ *)
(* Fusion and normalisation                                            *)
(* ------------------------------------------------------------------ *)

(* Fuse w into v along one plain edge (both Z spiders). *)
let fuse_pair d v w =
  Diagram.add_phase d v (Diagram.phase d w);
  let s_vw, h_vw = Diagram.edge_counts d v w in
  assert (s_vw >= 1);
  (* The consumed edge disappears; remaining parallel edges between v and w
     become self-loops on v. *)
  let extra_simple = s_vw - 1 and extra_had = h_vw in
  Diagram.remove_all_edges d v w;
  List.iter
    (fun (u, (s, h)) ->
      if u <> v && u <> w then begin
        Diagram.remove_all_edges d w u;
        for _ = 1 to s do
          Diagram.connect d v u Diagram.Simple
        done;
        for _ = 1 to h do
          Diagram.connect d v u Diagram.Had
        done
      end)
    (Diagram.neighbors d w);
  (* self-loops of w migrate to v *)
  let s_ww, h_ww = Diagram.edge_counts d w w in
  for _ = 1 to s_ww + extra_simple do
    Diagram.connect d v v Diagram.Simple
  done;
  for _ = 1 to h_ww + extra_had do
    Diagram.connect d v v Diagram.Had
  done;
  Diagram.remove_vertex d w

let fuse_spiders d =
  let fired = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    continue_ := false;
    let candidate =
      List.find_opt
        (fun v ->
          is_spider d v
          && List.exists
               (fun (w, (s, _)) ->
                 w <> v && s > 0 && is_spider d w
                 && Diagram.kind d w = Diagram.kind d v)
               (Diagram.neighbors d v))
        (Diagram.vertices d)
    in
    match candidate with
    | None -> ()
    | Some v ->
        let w, _ =
          List.find
            (fun (w, (s, _)) ->
              w <> v && s > 0 && is_spider d w
              && Diagram.kind d w = Diagram.kind d v)
            (Diagram.neighbors d v)
        in
        fuse_pair d v w;
        incr fired;
        continue_ := true
  done;
  !fired

let sqrt1_2_c = Qdt_linalg.Cx.of_float (1.0 /. Float.sqrt 2.0)
let half_c = Qdt_linalg.Cx.of_float 0.5

(* Self-loops: plain loops vanish (factor 1); each Hadamard loop adds π at
   a 1/√2 tensor factor.  Parallel Hadamard edges between spiders cancel
   mod 2 (Hopf), each removed pair being a tensor factor of 1/2.  Isolated
   spiders evaluate to the scalar (1 + e^{iα}).  All factors are folded
   into the diagram's tracked scalar, keeping the represented map exact. *)
let resolve_loops_and_parallels d =
  let changed = ref 0 in
  List.iter
    (fun v ->
      if is_spider d v then begin
        let s, h = Diagram.edge_counts d v v in
        if s > 0 || h > 0 then begin
          Diagram.remove_all_edges d v v;
          if h mod 2 = 1 then Diagram.add_phase d v Phase.pi;
          for _ = 1 to h do
            Diagram.scale_scalar d sqrt1_2_c
          done;
          changed := !changed + s + h
        end;
        List.iter
          (fun (w, (s, h)) ->
            if w > v && is_spider d w && h > 1 then begin
              Diagram.remove_all_edges d v w;
              for _ = 1 to s do
                Diagram.connect d v w Diagram.Simple
              done;
              if h mod 2 = 1 then Diagram.connect d v w Diagram.Had;
              for _ = 1 to (h - (h mod 2)) / 2 do
                Diagram.scale_scalar d half_c
              done;
              changed := !changed + (h - (h mod 2))
            end)
          (Diagram.neighbors d v)
      end)
    (Diagram.vertices d);
  (* isolated spiders become scalars *)
  List.iter
    (fun v ->
      if is_spider d v && Diagram.degree d v = 0 then begin
        let alpha = Phase.to_radians (Diagram.phase d v) in
        Diagram.scale_scalar d
          (Qdt_linalg.Cx.add Qdt_linalg.Cx.one (Qdt_linalg.Cx.exp_i alpha));
        Diagram.remove_vertex d v;
        incr changed
      end)
    (Diagram.vertices d);
  !changed

let to_graph_like d =
  color_change_to_z d;
  let continue_ = ref true in
  while !continue_ do
    let a = fuse_spiders d in
    let b = resolve_loops_and_parallels d in
    continue_ := a + b > 0
  done

let is_graph_like d =
  List.for_all
    (fun v ->
      match Diagram.kind d v with
      | Diagram.X -> false
      | Diagram.Boundary -> true
      | Diagram.Z ->
          List.for_all
            (fun (w, (s, h)) ->
              if w = v then false
              else if is_spider d w then s = 0 && h <= 1
              else true)
            (Diagram.neighbors d v))
    (Diagram.vertices d)

(* ------------------------------------------------------------------ *)
(* Identity removal                                                    *)
(* ------------------------------------------------------------------ *)

let remove_identities d =
  let fired = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    continue_ := false;
    let candidate =
      List.find_opt
        (fun v ->
          is_spider d v
          && Phase.is_zero (Diagram.phase d v)
          && Diagram.degree d v = 2
          && (let s, h = Diagram.edge_counts d v v in
              s = 0 && h = 0))
        (Diagram.vertices d)
    in
    match candidate with
    | None -> ()
    | Some v -> (
        let incident =
          List.concat_map
            (fun (w, (s, h)) ->
              List.init s (fun _ -> (w, Diagram.Simple))
              @ List.init h (fun _ -> (w, Diagram.Had)))
            (Diagram.neighbors d v)
        in
        match incident with
        | [ (n1, k1); (n2, k2) ] ->
            let combined =
              if k1 = k2 then Diagram.Simple else Diagram.Had
            in
            Diagram.remove_vertex d v;
            if n1 = n2 then begin
              (* becomes a self-loop; resolve immediately *)
              if combined = Diagram.Had && is_spider d n1 then begin
                Diagram.add_phase d n1 Phase.pi;
                Diagram.scale_scalar d sqrt1_2_c
              end
              (* plain self-loop: nothing *)
            end
            else Diagram.connect d n1 n2 combined;
            ignore (resolve_loops_and_parallels d);
            ignore (fuse_spiders d);
            ignore (resolve_loops_and_parallels d);
            incr fired;
            continue_ := true
        | _ -> ())
  done;
  !fired

(* ------------------------------------------------------------------ *)
(* Local complementation                                               *)
(* ------------------------------------------------------------------ *)

let toggle_h_edge d a b =
  let _, h = Diagram.edge_counts d a b in
  if h > 0 then begin
    (* removing an existing H edge is "add parallel + Hopf": tensor ×2,
       so the tracked scalar halves *)
    Diagram.disconnect_one d a b Diagram.Had;
    Diagram.scale_scalar d half_c
  end
  else Diagram.connect d a b Diagram.Had

let interior_spider_neighbors d v =
  let ns = List.map fst (Diagram.neighbors d v) in
  if List.for_all (fun w -> w <> v && is_spider d w) ns then Some ns else None

let local_complementations d =
  let fired = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    continue_ := false;
    let candidate =
      List.find_opt
        (fun v ->
          is_spider d v
          && Phase.is_proper_clifford (Diagram.phase d v)
          && interior_spider_neighbors d v <> None)
        (Diagram.vertices d)
    in
    match candidate with
    | None -> ()
    | Some v ->
        let ns = Option.get (interior_spider_neighbors d v) in
        let minus_alpha = Phase.neg (Diagram.phase d v) in
        (* base scalar of local complementation: e^{±iπ/4}·√2^{(d−1)(d−2)/2}
           (edge removals add their own Hopf halves via toggle_h_edge) *)
        let deg = List.length ns in
        let eps = if Phase.equal (Diagram.phase d v) Phase.half_pi then 1.0 else -1.0 in
        Diagram.scale_scalar d
          (Qdt_linalg.Cx.mul
             (Qdt_linalg.Cx.exp_i (eps *. Float.pi /. 4.0))
             (Qdt_linalg.Cx.of_float
                (Float.pow (Float.sqrt 2.0) (Float.of_int ((deg - 1) * (deg - 2) / 2)))));
        let rec pairs = function
          | [] -> ()
          | a :: rest ->
              List.iter (fun b -> toggle_h_edge d a b) rest;
              pairs rest
        in
        pairs ns;
        List.iter (fun a -> Diagram.add_phase d a minus_alpha) ns;
        Diagram.remove_vertex d v;
        incr fired;
        continue_ := true
  done;
  !fired

(* ------------------------------------------------------------------ *)
(* Pivoting                                                            *)
(* ------------------------------------------------------------------ *)

(* Pivot about the H edge (u, v); both must be interior Z spiders with
   Pauli phase.  Exposed for the extraction routine, which uses it to
   eliminate phase gadgets blocking the frontier. *)
let pivot_about d u v =
  let nu = List.map fst (Diagram.neighbors d u) |> List.filter (( <> ) v) in
  let nv = List.map fst (Diagram.neighbors d v) |> List.filter (( <> ) u) in
  let mem x l = List.mem x l in
  let common = List.filter (fun x -> mem x nv) nu in
  let only_u = List.filter (fun x -> not (mem x nv)) nu in
  let only_v = List.filter (fun x -> not (mem x nu)) nv in
  (* base scalar of the pivot (edge removals add Hopf halves separately):
     (−1)^{[p_u=π]·[p_v=π]} · √2^{ab+ac+bc−a−b−2c+1} for a = |A\B|,
     b = |B\A|, c = |A∩B| — calibrated against exact tensor evaluation *)
  let a = List.length only_u and b = List.length only_v and c = List.length common in
  let e = (a * b) + (a * c) + (b * c) - a - b - (2 * c) + 1 in
  let sign =
    if Phase.is_pi (Diagram.phase d u) && Phase.is_pi (Diagram.phase d v) then -1.0
    else 1.0
  in
  Diagram.scale_scalar d
    (Qdt_linalg.Cx.of_float (sign *. Float.pow (Float.sqrt 2.0) (Float.of_int e)));
  List.iter (fun a -> List.iter (fun b -> toggle_h_edge d a b) only_v) only_u;
  List.iter (fun a -> List.iter (fun c -> toggle_h_edge d a c) common) only_u;
  List.iter (fun b -> List.iter (fun c -> toggle_h_edge d b c) common) only_v;
  let pu = Diagram.phase d u and pv = Diagram.phase d v in
  List.iter (fun a -> Diagram.add_phase d a pv) only_u;
  List.iter (fun b -> Diagram.add_phase d b pu) only_v;
  List.iter
    (fun c -> Diagram.add_phase d c (Phase.add (Phase.add pu pv) Phase.pi))
    common;
  Diagram.remove_vertex d u;
  Diagram.remove_vertex d v

let pivots d =
  let fired = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    continue_ := false;
    (* find an interior H-edge whose endpoints both carry Pauli phases *)
    let candidate =
      List.find_map
        (fun u ->
          if
            is_spider d u
            && Phase.is_pauli (Diagram.phase d u)
            && interior_spider_neighbors d u <> None
          then
            List.find_map
              (fun (v, (_, h)) ->
                if
                  h > 0 && v <> u && is_spider d v
                  && Phase.is_pauli (Diagram.phase d v)
                  && interior_spider_neighbors d v <> None
                then Some (u, v)
                else None)
              (Diagram.neighbors d u)
          else None)
        (Diagram.vertices d)
    in
    match candidate with
    | None -> ()
    | Some (u, v) ->
        pivot_about d u v;
        incr fired;
        continue_ := true
  done;
  !fired
