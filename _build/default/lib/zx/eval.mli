(** Evaluating ZX-diagrams to matrices, through the tensor-network
    backend — the cross-validation bridge between Sections IV and V.

    Every spider becomes a tensor ([Z(α)] has entries 1 at [0…0] and
    [e^{iα}] at [1…1]; an X spider is the same conjugated by Hadamards on
    every leg), every Hadamard edge an H matrix, and the diagram is
    contracted.  Feasible for small diagrams only.

    Scalars: the rewrite engine tracks the global scalar exactly
    ({!Diagram.scalar}), so {!to_matrix_exact} equals the represented
    unitary including its global phase; {!proportional} remains for
    comparisons of hand-built diagrams. *)

(** [to_matrix d] — the tensor of [d]'s graph, rows indexed by outputs
    (output port [q] = bit [q]), columns by inputs.  The tracked global
    scalar is {e not} applied; see {!to_matrix_exact}. *)
val to_matrix : Diagram.t -> Qdt_linalg.Mat.t

(** [to_matrix_exact d] — [scalar d · to_matrix d]: for diagrams produced
    by {!Translate.of_circuit} (and rewritten by {!Simplify}), this is
    the circuit's unitary {e exactly}, global phase included. *)
val to_matrix_exact : Diagram.t -> Qdt_linalg.Mat.t

(** [to_vector d] — for diagrams with no inputs (states): the output
    state vector. *)
val to_vector : Diagram.t -> Qdt_linalg.Vec.t

(** [proportional ?eps a b] — [a = c·b] for some [c ≠ 0]; equality of
    diagrams up to the untracked global scalar. *)
val proportional : ?eps:float -> Qdt_linalg.Mat.t -> Qdt_linalg.Mat.t -> bool
