lib/zx/extract.ml: Array Circuit Diagram Format Gate Hashtbl List Phase Printf Qdt_circuit Rules Simplify String Sys Translate
