lib/zx/translate.ml: Array Circuit Diagram Float Gate List Phase Qdt_circuit Qdt_compile Qdt_linalg
