lib/zx/diagram.mli: Format Phase Qdt_linalg
