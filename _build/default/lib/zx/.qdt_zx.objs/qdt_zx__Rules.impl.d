lib/zx/rules.ml: Diagram Float Hashtbl List Option Phase Qdt_linalg
