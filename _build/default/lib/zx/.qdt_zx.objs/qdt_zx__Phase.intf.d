lib/zx/phase.mli: Format
