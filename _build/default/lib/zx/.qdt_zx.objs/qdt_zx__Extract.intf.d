lib/zx/extract.mli: Diagram Qdt_circuit
