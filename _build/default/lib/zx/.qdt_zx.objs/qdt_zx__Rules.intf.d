lib/zx/rules.mli: Diagram
