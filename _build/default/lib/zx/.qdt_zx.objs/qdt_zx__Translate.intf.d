lib/zx/translate.mli: Diagram Qdt_circuit
