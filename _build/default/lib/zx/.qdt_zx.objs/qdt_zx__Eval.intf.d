lib/zx/eval.mli: Diagram Qdt_linalg
