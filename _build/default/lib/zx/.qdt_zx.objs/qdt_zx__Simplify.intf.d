lib/zx/simplify.mli: Diagram
