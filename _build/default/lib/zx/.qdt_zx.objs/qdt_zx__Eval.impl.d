lib/zx/eval.ml: Array Cx Diagram Gates Hashtbl List Mat Network Phase Qdt_linalg Qdt_tensornet Tensor Vec
