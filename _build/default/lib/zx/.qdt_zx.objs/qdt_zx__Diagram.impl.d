lib/zx/diagram.ml: Array Buffer Format Hashtbl List Option Phase Printf Qdt_linalg
