lib/zx/phase.ml: Float Format
