lib/zx/simplify.ml: Array Diagram Hashtbl List Phase Rules
