(** Simplification strategies (the "terminating rewriting procedure" of
    Section V, after Duncan et al., ref [38]).

    The driver normalises to graph-like form, then interleaves identity
    removal, local complementation and pivoting until no rule fires.
    Interior Clifford spiders are eliminated entirely, which is both the
    T-count optimization of ref [39] (non-Clifford spiders are what
    remains) and the equivalence-checking engine (an identity circuit
    reduces to bare wires). *)

type report = {
  fusions : int;
  identities : int;
  local_complementations : int;
  pivots : int;
  rounds : int;
}

(** [interior_clifford_simp d] — mutates [d] to a fixpoint of the rule
    set; returns what fired. *)
val interior_clifford_simp : Diagram.t -> report

(** [full_reduce d] — currently {!interior_clifford_simp} (the gadget
    rules of ref [39] are future work; see DESIGN.md). *)
val full_reduce : Diagram.t -> report

(** [t_count d] — spiders with non-Clifford phase. *)
val t_count : Diagram.t -> int

(** [clifford_spider_count d] — interior spiders with Clifford phase. *)
val clifford_spider_count : Diagram.t -> int

(** [is_identity d] — [d] consists only of bare wires connecting input
    [q] to output [q] with plain edges: the canonical witness of circuit
    equivalence (up to global scalar). *)
val is_identity : Diagram.t -> bool

(** [is_identity_up_to_permutation d] — bare plain wires input→output,
    but in any order; returns the permutation if so. *)
val is_identity_up_to_permutation : Diagram.t -> int array option
