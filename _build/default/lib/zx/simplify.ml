type report = {
  fusions : int;
  identities : int;
  local_complementations : int;
  pivots : int;
  rounds : int;
}

let interior_clifford_simp d =
  Rules.to_graph_like d;
  let fusions = ref 0
  and identities = ref 0
  and lcomps = ref 0
  and pivs = ref 0
  and rounds = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    incr rounds;
    let i = Rules.remove_identities d in
    let l = Rules.local_complementations d in
    let f1 = Rules.fuse_spiders d in
    let p = Rules.pivots d in
    let f2 = Rules.fuse_spiders d in
    Rules.to_graph_like d;
    identities := !identities + i;
    lcomps := !lcomps + l;
    pivs := !pivs + p;
    fusions := !fusions + f1 + f2;
    continue_ := i + l + p > 0
  done;
  {
    fusions = !fusions;
    identities = !identities;
    local_complementations = !lcomps;
    pivots = !pivs;
    rounds = !rounds;
  }

let full_reduce = interior_clifford_simp

let t_count d =
  List.length
    (List.filter (fun v -> not (Phase.is_clifford (Diagram.phase d v))) (Diagram.spiders d))

let clifford_spider_count d =
  List.length
    (List.filter (fun v -> Phase.is_clifford (Diagram.phase d v)) (Diagram.spiders d))

let wire_targets d =
  (* For each input: the vertex at the other end of its wire and whether
     the edge is plain. *)
  let ins = Diagram.inputs d in
  Array.map
    (fun i ->
      match Diagram.neighbors d i with
      | [ (w, (1, 0)) ] -> Some (w, true)
      | [ (w, (0, 1)) ] -> Some (w, false)
      | _ -> None)
    ins

let is_identity_up_to_permutation d =
  if Diagram.spiders d <> [] then None
  else begin
    let outs = Diagram.outputs d in
    let out_port = Hashtbl.create 8 in
    Array.iteri (fun q v -> Hashtbl.replace out_port v q) outs;
    let targets = wire_targets d in
    let n = Array.length targets in
    if Array.length outs <> n then None
    else begin
      let perm = Array.make n (-1) in
      let ok = ref true in
      Array.iteri
        (fun q target ->
          match target with
          | Some (w, true) -> (
              match Hashtbl.find_opt out_port w with
              | Some p -> perm.(q) <- p
              | None -> ok := false)
          | Some (_, false) | None -> ok := false)
        targets;
      if !ok && Array.for_all (fun p -> p >= 0) perm then Some perm else None
    end
  end

let is_identity d =
  match is_identity_up_to_permutation d with
  | Some perm ->
      let ok = ref true in
      Array.iteri (fun q p -> if q <> p then ok := false) perm;
      !ok
  | None -> false
