(** Circuit → ZX-diagram translation ("any quantum circuit can be
    interpreted as a ZX-diagram", Section V).

    Circuits are first lowered to the ZX-friendly basis of
    {!Qdt_compile.Decompose} ({H, diagonal Z-phases, X-phases, CX, CZ,
    SWAP}), then mapped: phase gates become spiders on the wire, H toggles
    the pending edge kind (only connectivity matters, so a Hadamard is
    just an edge decoration), CZ becomes a Hadamard edge between two Z
    spiders, CX a plain edge between a Z spider (control) and an X spider
    (target), SWAP a wire crossing. *)

(** [of_circuit c] — diagram with one input and one output per qubit;
    input/output port [q] is qubit [q].
    @raise Invalid_argument if [c] measures or resets. *)
val of_circuit : Qdt_circuit.Circuit.t -> Diagram.t

(** [equivalence_diagram c1 c2] — the diagram of [c1 ; c2†], which is the
    identity iff the circuits are equivalent (up to global phase). *)
val equivalence_diagram : Qdt_circuit.Circuit.t -> Qdt_circuit.Circuit.t -> Diagram.t
