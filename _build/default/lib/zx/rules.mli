(** ZX rewrite rules.

    The graph-like normal form and the rewrite set of Duncan, Kissinger,
    Perdrix & van de Wetering (ref [38] of the paper): spider fusion,
    colour change, identity removal, local complementation and pivoting.
    Every rule preserves the diagram's linear map {e exactly}: the tensor
    factor it introduces (Hopf halves, lcomp/pivot powers of √2 and
    eighth-root phases — calibrated against tensor evaluation) is folded
    into {!Diagram.scalar}.

    All functions mutate their argument; counters report how many rule
    instances fired. *)

(** [to_graph_like d] — turn every X spider green (toggling incident edge
    kinds), fuse along plain edges, and resolve self-loops and parallel
    edges.  Afterwards: only Z spiders, single Hadamard edges between
    distinct spiders, no self-loops. *)
val to_graph_like : Diagram.t -> unit

(** [is_graph_like d] checks the above invariant. *)
val is_graph_like : Diagram.t -> bool

(** [fuse_spiders d] — merge plain-edge-connected same-colour spiders. *)
val fuse_spiders : Diagram.t -> int

(** [remove_identities d] — drop phase-0 arity-2 Z spiders, composing
    their two edge kinds ([–H–H– = –]).  Requires graph-like [d]. *)
val remove_identities : Diagram.t -> int

(** [local_complementations d] — eliminate interior ±π/2 spiders by local
    complementation.  Requires graph-like [d]. *)
val local_complementations : Diagram.t -> int

(** [pivots d] — eliminate interior Pauli-phase (0/π) spider pairs by
    pivoting along their connecting edge.  Requires graph-like [d]. *)
val pivots : Diagram.t -> int

(** [pivot_about d u v] — pivot about the Hadamard edge (u,v); both must
    be interior Z spiders with Pauli (0/π) phases.  Used by circuit
    extraction to clear phase gadgets off the frontier. *)
val pivot_about : Diagram.t -> int -> int -> unit
