open Qdt_linalg
open Qdt_tensornet

let h_tensor l1 l2 = Tensor.of_mat ~row_labels:[| l1 |] ~col_labels:[| l2 |] Gates.h

let id_tensor l1 l2 =
  Tensor.of_mat ~row_labels:[| l1 |] ~col_labels:[| l2 |] Gates.id2

let z_spider_tensor ~legs ~phase =
  let d = Array.length legs in
  if d = 0 then Tensor.scalar (Cx.add Cx.one (Cx.exp_i (Phase.to_radians phase)))
  else
    Tensor.init ~shape:(Array.make d 2) ~labels:legs (fun idx ->
        if Array.for_all (( = ) 0) idx then Cx.one
        else if Array.for_all (( = ) 1) idx then Cx.exp_i (Phase.to_radians phase)
        else Cx.zero)

let to_network d =
  let fresh = ref 0 in
  let new_label () =
    let l = !fresh in
    incr fresh;
    l
  in
  let legs : (int, int list ref) Hashtbl.t = Hashtbl.create 64 in
  let leg_of v =
    match Hashtbl.find_opt legs v with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.replace legs v r;
        r
  in
  let connectors = ref [] in
  (* Assign labels per edge instance. *)
  let vertices = Diagram.vertices d in
  List.iter
    (fun v ->
      List.iter
        (fun (w, (s, h)) ->
          if w >= v then begin
            for _ = 1 to s do
              if v = w then begin
                (* simple self-loop: two legs tied by an identity *)
                let l1 = new_label () and l2 = new_label () in
                leg_of v := l2 :: l1 :: !(leg_of v);
                connectors := id_tensor l1 l2 :: !connectors
              end
              else if Diagram.kind d v = Diagram.Boundary && Diagram.kind d w = Diagram.Boundary
              then begin
                (* a bare boundary-boundary wire: no spider carries its
                   label, so materialise an identity tensor *)
                let l1 = new_label () and l2 = new_label () in
                leg_of v := l1 :: !(leg_of v);
                leg_of w := l2 :: !(leg_of w);
                connectors := id_tensor l1 l2 :: !connectors
              end
              else begin
                let l = new_label () in
                leg_of v := l :: !(leg_of v);
                leg_of w := l :: !(leg_of w)
              end
            done;
            for _ = 1 to h do
              let l1 = new_label () and l2 = new_label () in
              leg_of v := l1 :: !(leg_of v);
              leg_of w := l2 :: !(leg_of w);
              connectors := h_tensor l1 l2 :: !connectors
            done
          end)
        (Diagram.neighbors d v))
    vertices;
  let spider_tensors =
    List.filter_map
      (fun v ->
        match Diagram.kind d v with
        | Diagram.Boundary -> None
        | Diagram.Z ->
            Some
              (z_spider_tensor
                 ~legs:(Array.of_list !(leg_of v))
                 ~phase:(Diagram.phase d v))
        | Diagram.X ->
            (* conjugate every leg by H *)
            let leg_list = !(leg_of v) in
            let inner = List.map (fun _ -> new_label ()) leg_list in
            let z =
              z_spider_tensor ~legs:(Array.of_list inner) ~phase:(Diagram.phase d v)
            in
            let hs = List.map2 (fun outer i -> h_tensor outer i) leg_list inner in
            Some (List.fold_left Tensor.contract z hs))
      vertices
  in
  let port_label v =
    match !(leg_of v) with
    | [ l ] -> l
    | _ -> failwith "Eval: boundary vertex without exactly one leg"
  in
  let input_labels = Array.map port_label (Diagram.inputs d) in
  let output_labels = Array.map port_label (Diagram.outputs d) in
  (Network.of_list (spider_tensors @ !connectors), input_labels, output_labels)

let to_matrix d =
  let net, input_labels, output_labels = to_network d in
  let result, _stats = Network.contract_all ~plan:Network.Greedy net in
  let n_out = Array.length output_labels and n_in = Array.length input_labels in
  let order =
    Array.append
      (Array.init n_out (fun k -> output_labels.(n_out - 1 - k)))
      (Array.init n_in (fun k -> input_labels.(n_in - 1 - k)))
  in
  let flat = Tensor.to_vec result ~order in
  let rows = 1 lsl n_out and cols = 1 lsl n_in in
  Mat.init rows cols (fun r c -> Vec.get flat ((r * cols) + c))

let to_matrix_exact d = Mat.scale (Diagram.scalar d) (to_matrix d)

let to_vector d =
  if Array.length (Diagram.inputs d) <> 0 then
    invalid_arg "Eval.to_vector: diagram has inputs";
  let m = to_matrix d in
  Vec.init (Mat.rows m) (fun k -> Mat.get m k 0)

let proportional ?(eps = 1e-7) a b =
  Mat.rows a = Mat.rows b && Mat.cols a = Mat.cols b
  &&
  (* find the largest entry of a *)
  let pr = ref 0 and pc = ref 0 and best = ref 0.0 in
  for r = 0 to Mat.rows a - 1 do
    for c = 0 to Mat.cols a - 1 do
      let m = Cx.norm2 (Mat.get a r c) in
      if m > !best then begin
        best := m;
        pr := r;
        pc := c
      end
    done
  done;
  if !best < eps *. eps then
    (* a ≈ 0: proportional iff b ≈ 0 *)
    Mat.approx_equal ~eps b (Mat.create (Mat.rows b) (Mat.cols b))
  else if Cx.norm2 (Mat.get b !pr !pc) < 1e-20 then false
  else
    let factor = Cx.div (Mat.get a !pr !pc) (Mat.get b !pr !pc) in
    Mat.approx_equal ~eps a (Mat.scale factor b)
