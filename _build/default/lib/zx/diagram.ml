type kind = Z | X | Boundary
type edge_kind = Simple | Had

type vertex_data = { mutable vkind : kind; mutable vphase : Phase.t }

type t = {
  mutable next : int;
  verts : (int, vertex_data) Hashtbl.t;
  (* adj.(v).(w) = (simple multiplicity, hadamard multiplicity); symmetric;
     self-loops stored once under (v, v). *)
  adj : (int, (int, int * int) Hashtbl.t) Hashtbl.t;
  mutable ins : int list;  (* reversed *)
  mutable outs : int list; (* reversed *)
  mutable scal : Qdt_linalg.Cx.t;
      (* the diagram's map = scal · (tensor of the graph); rewrites that
         change the tensor by a known factor compensate here *)
}

let create () =
  {
    next = 0;
    verts = Hashtbl.create 64;
    adj = Hashtbl.create 64;
    ins = [];
    outs = [];
    scal = Qdt_linalg.Cx.one;
  }

let scalar d = d.scal
let scale_scalar d c = d.scal <- Qdt_linalg.Cx.mul d.scal c

let add_vertex d kind phase =
  let v = d.next in
  d.next <- v + 1;
  Hashtbl.replace d.verts v { vkind = kind; vphase = phase };
  Hashtbl.replace d.adj v (Hashtbl.create 4);
  v

let add_input d =
  let v = add_vertex d Boundary Phase.zero in
  d.ins <- v :: d.ins;
  v

let add_output d =
  let v = add_vertex d Boundary Phase.zero in
  d.outs <- v :: d.outs;
  v

let mem d v = Hashtbl.mem d.verts v

let check_vertex d v =
  if not (mem d v) then invalid_arg (Printf.sprintf "Diagram: no vertex %d" v)

let adj_of d v = Hashtbl.find d.adj v

let edge_counts d v w =
  check_vertex d v;
  check_vertex d w;
  Option.value ~default:(0, 0) (Hashtbl.find_opt (adj_of d v) w)

let set_counts d v w (s, h) =
  let set a b =
    if s = 0 && h = 0 then Hashtbl.remove (adj_of d a) b
    else Hashtbl.replace (adj_of d a) b (s, h)
  in
  set v w;
  if v <> w then set w v

let connect d v w ek =
  check_vertex d v;
  check_vertex d w;
  let s, h = edge_counts d v w in
  match ek with
  | Simple -> set_counts d v w (s + 1, h)
  | Had -> set_counts d v w (s, h + 1)

let disconnect_one d v w ek =
  let s, h = edge_counts d v w in
  match ek with
  | Simple ->
      if s = 0 then invalid_arg "Diagram.disconnect_one: no simple edge";
      set_counts d v w (s - 1, h)
  | Had ->
      if h = 0 then invalid_arg "Diagram.disconnect_one: no hadamard edge";
      set_counts d v w (s, h - 1)

let remove_all_edges d v w =
  check_vertex d v;
  check_vertex d w;
  set_counts d v w (0, 0)

let data d v =
  check_vertex d v;
  Hashtbl.find d.verts v

let kind d v = (data d v).vkind
let phase d v = (data d v).vphase
let set_phase d v p = (data d v).vphase <- p
let add_phase d v p = (data d v).vphase <- Phase.add (data d v).vphase p
let set_kind d v k = (data d v).vkind <- k

let neighbors d v =
  check_vertex d v;
  Hashtbl.fold (fun w counts acc -> (w, counts) :: acc) (adj_of d v) []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let degree d v =
  List.fold_left
    (fun acc (w, (s, h)) -> acc + ((s + h) * if w = v then 2 else 1))
    0 (neighbors d v)

let remove_vertex d v =
  check_vertex d v;
  if kind d v = Boundary then invalid_arg "Diagram.remove_vertex: boundary vertex";
  List.iter (fun (w, _) -> if w <> v then Hashtbl.remove (adj_of d w) v) (neighbors d v);
  Hashtbl.remove d.adj v;
  Hashtbl.remove d.verts v

let vertices d =
  Hashtbl.fold (fun v _ acc -> v :: acc) d.verts [] |> List.sort compare

let num_vertices d = Hashtbl.length d.verts

let num_edges d =
  let total = ref 0 in
  Hashtbl.iter
    (fun v table ->
      Hashtbl.iter (fun w (s, h) -> if w >= v then total := !total + s + h) table)
    d.adj;
  !total

let inputs d = Array.of_list (List.rev d.ins)
let outputs d = Array.of_list (List.rev d.outs)

let spiders d = List.filter (fun v -> kind d v <> Boundary) (vertices d)

let copy d =
  let c = create () in
  c.next <- d.next;
  c.scal <- d.scal;
  Hashtbl.iter
    (fun v vd -> Hashtbl.replace c.verts v { vkind = vd.vkind; vphase = vd.vphase })
    d.verts;
  Hashtbl.iter (fun v table -> Hashtbl.replace c.adj v (Hashtbl.copy table)) d.adj;
  c.ins <- d.ins;
  c.outs <- d.outs;
  c

let combine_edge_kinds k1 k2 =
  match (k1, k2) with
  | Simple, Simple | Had, Had -> Simple
  | Simple, Had | Had, Simple -> Had

(* The single wire incident to a boundary vertex: neighbour + edge kind. *)
let boundary_wire d v =
  match neighbors d v with
  | [ (w, (1, 0)) ] -> (w, Simple)
  | [ (w, (0, 1)) ] -> (w, Had)
  | _ -> failwith "Diagram: boundary vertex is not a degree-1 wire"

let compose a b =
  let a_outs = outputs a and b_ins = inputs b in
  if Array.length a_outs <> Array.length b_ins then
    invalid_arg "Diagram.compose: arity mismatch";
  let c = copy a in
  (* Import b with shifted ids. *)
  let shift = c.next in
  Hashtbl.iter
    (fun v vd ->
      Hashtbl.replace c.verts (v + shift) { vkind = vd.vkind; vphase = vd.vphase };
      Hashtbl.replace c.adj (v + shift) (Hashtbl.create 4))
    b.verts;
  c.next <- c.next + b.next;
  Hashtbl.iter
    (fun v table ->
      Hashtbl.iter
        (fun w (s, h) ->
          if w >= v then begin
            let sv = v + shift and sw = w + shift in
            let s0, h0 = edge_counts c sv sw in
            set_counts c sv sw (s0 + s, h0 + h)
          end)
        table)
    b.adj;
  (* Glue each a-output to the matching b-input. *)
  Array.iteri
    (fun q a_out ->
      let b_in = b_ins.(q) + shift in
      let w1, k1 = boundary_wire c a_out in
      (* a_out might be wired directly to b_in only after both removals;
         handle the general case by removing the two boundary vertices and
         reconnecting their neighbours. *)
      if w1 = b_in then begin
        (* direct identity wire a_out -- b_in: neighbour of b_in is a_out *)
        let w2, k2 = boundary_wire c b_in in
        ignore w2;
        ignore k2;
        (* degenerate: a whole qubit wire with no spiders; fuse the two
           boundary wires by looking through both. *)
        failwith "Diagram.compose: degenerate boundary-boundary wire"
      end
      else begin
        let w2, k2 = boundary_wire c b_in in
        remove_all_edges c a_out w1;
        remove_all_edges c b_in w2;
        (* force-remove boundary vertices *)
        Hashtbl.remove c.adj a_out;
        Hashtbl.remove c.verts a_out;
        Hashtbl.remove c.adj b_in;
        Hashtbl.remove c.verts b_in;
        if w1 = w2 then begin
          (* wire loops back onto the same spider: self-loop *)
          let s, h = edge_counts c w1 w1 in
          match combine_edge_kinds k1 k2 with
          | Simple -> set_counts c w1 w1 (s + 1, h)
          | Had -> set_counts c w1 w1 (s, h + 1)
        end
        else connect c w1 w2 (combine_edge_kinds k1 k2)
      end)
    a_outs;
  c.outs <- List.map (fun v -> v + shift) b.outs;
  c.scal <- Qdt_linalg.Cx.mul a.scal b.scal;
  c

let adjoint d =
  let c = copy d in
  c.scal <- Qdt_linalg.Cx.conj d.scal;
  List.iter
    (fun v ->
      let vd = Hashtbl.find c.verts v in
      if vd.vkind <> Boundary then vd.vphase <- Phase.neg vd.vphase)
    (vertices c);
  let ins = c.ins in
  c.ins <- c.outs;
  c.outs <- ins;
  c

let validate d =
  Array.iter
    (fun v ->
      if degree d v <> 1 then
        failwith (Printf.sprintf "Diagram.validate: boundary %d has degree %d" v (degree d v)))
    (Array.append (inputs d) (outputs d));
  Hashtbl.iter
    (fun v table ->
      if not (Hashtbl.mem d.verts v) then failwith "Diagram.validate: dangling adjacency";
      Hashtbl.iter
        (fun w _ ->
          if not (Hashtbl.mem d.verts w) then
            failwith (Printf.sprintf "Diagram.validate: edge %d-%d to dead vertex" v w))
        table)
    d.adj

let pp ppf d =
  Format.fprintf ppf "@[<v 0>zx-diagram: %d vertices, %d edges@," (num_vertices d)
    (num_edges d);
  List.iter
    (fun v ->
      let k = match kind d v with Z -> "Z" | X -> "X" | Boundary -> "B" in
      Format.fprintf ppf "  %s%d(%a):" k v Phase.pp (phase d v);
      List.iter
        (fun (w, (s, h)) ->
          for _ = 1 to s do
            Format.fprintf ppf " -%d" w
          done;
          for _ = 1 to h do
            Format.fprintf ppf " =%d" w
          done)
        (neighbors d v);
      Format.fprintf ppf "@,")
    (vertices d);
  Format.fprintf ppf "@]"

let to_dot d =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "graph zx {\n  rankdir=LR;\n";
  List.iter
    (fun v ->
      let style =
        match kind d v with
        | Z ->
            Printf.sprintf "shape=circle,style=filled,fillcolor=palegreen,label=\"%s\""
              (Phase.to_string (phase d v))
        | X ->
            Printf.sprintf "shape=circle,style=filled,fillcolor=salmon,label=\"%s\""
              (Phase.to_string (phase d v))
        | Boundary -> "shape=point"
      in
      Buffer.add_string buf (Printf.sprintf "  v%d [%s];\n" v style))
    (vertices d);
  List.iter
    (fun v ->
      List.iter
        (fun (w, (s, h)) ->
          if w >= v then begin
            for _ = 1 to s do
              Buffer.add_string buf (Printf.sprintf "  v%d -- v%d;\n" v w)
            done;
            for _ = 1 to h do
              Buffer.add_string buf
                (Printf.sprintf "  v%d -- v%d [style=dashed,color=blue];\n" v w)
            done
          end)
        (neighbors d v))
    (vertices d);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
