open Qdt_circuit

exception Extraction_failed of string

let fail msg = raise (Extraction_failed msg)

(* Gates are collected back-to-front: each newly peeled gate is *earlier*
   in the final circuit than everything collected so far, so we prepend. *)

let extract original =
  let d = Diagram.copy original in
  if not (Rules.is_graph_like d) then Rules.to_graph_like d;
  let outputs = Diagram.outputs d in
  let inputs = Diagram.inputs d in
  let n = Array.length outputs in
  if Array.length inputs <> n then fail "diagram is not a unitary (arity mismatch)";
  let input_port = Hashtbl.create 8 in
  Array.iteri (fun p v -> Hashtbl.replace input_port v p) inputs;
  let is_input v = Hashtbl.mem input_port v in
  let is_output v = Array.exists (( = ) v) outputs in
  let acc = ref [] in
  let emit instr = acc := instr :: !acc in
  (* frontier.(q): either the spider currently on wire q, or the input
     boundary vertex once the wire is fully extracted. *)
  let frontier = Array.make n (-1) in
  Array.iteri
    (fun q out ->
      match Diagram.neighbors d out with
      | [ (w, (1, 0)) ] -> frontier.(q) <- w
      | [ (w, (0, 1)) ] ->
          (* Hadamard on the output wire: emit H, make the edge plain. *)
          emit (Circuit.Apply { gate = Gate.H; controls = []; target = q });
          Diagram.disconnect_one d out w Diagram.Had;
          Diagram.connect d out w Diagram.Simple;
          frontier.(q) <- w
      | _ -> fail "output boundary is not a single wire")
    outputs;
  let qubit_of = Hashtbl.create 8 in
  let refresh_qubit_of () =
    Hashtbl.reset qubit_of;
    Array.iteri (fun q v -> Hashtbl.replace qubit_of v q) frontier
  in
  refresh_qubit_of ();

  let extract_phases_and_czs () =
    Array.iteri
      (fun q v ->
        if not (is_input v) then begin
          let p = Diagram.phase d v in
          if not (Phase.is_zero p) then begin
            emit
              (Circuit.Apply
                 { gate = Gate.Phase (Phase.to_radians p); controls = []; target = q });
            Diagram.set_phase d v Phase.zero
          end
        end)
      frontier;
    (* CZ for every H edge inside the frontier *)
    for qa = 0 to n - 1 do
      for qb = qa + 1 to n - 1 do
        let va = frontier.(qa) and vb = frontier.(qb) in
        if va <> vb && (not (is_input va)) && not (is_input vb) then begin
          let _, h = Diagram.edge_counts d va vb in
          if h > 0 then begin
            Diagram.disconnect_one d va vb Diagram.Had;
            emit (Circuit.Apply { gate = Gate.Z; controls = [ qa ]; target = qb })
          end
        end
      done
    done
  in

  let interior_neighbors v =
    List.filter_map
      (fun (w, _) ->
        if is_input w || is_output w || Hashtbl.mem qubit_of w then None else Some w)
      (Diagram.neighbors d v)
  in

  let debug = Sys.getenv_opt "QDT_EXTRACT_DEBUG" <> None in
  let progress = ref true in
  while
    !progress
    && Array.exists (fun v -> (not (is_input v)) && interior_neighbors v <> []) frontier
  do
    extract_phases_and_czs ();
    refresh_qubit_of ();
    if debug then begin
      Printf.eprintf "frontier:";
      Array.iteri (fun q v -> Printf.eprintf " q%d=%d(%s)" q v
        (if is_input v then "IN" else String.concat "," (List.map string_of_int (interior_neighbors v)))) frontier;
      prerr_newline ()
    end;
    (* Collect the interior neighbourhood and build the GF(2) biadjacency. *)
    let cols = Hashtbl.create 16 in
    let col_list = ref [] in
    Array.iter
      (fun v ->
        if not (is_input v) then
          List.iter
            (fun w ->
              if not (Hashtbl.mem cols w) then begin
                Hashtbl.replace cols w (List.length !col_list);
                col_list := !col_list @ [ w ]
              end)
            (interior_neighbors v))
      frontier;
    let cols_arr = Array.of_list !col_list in
    let ncols = Array.length cols_arr in
    if ncols = 0 then progress := false
    else begin
      let m = Array.make_matrix n ncols false in
      Array.iteri
        (fun q v ->
          if not (is_input v) then
            List.iter
              (fun w -> m.(q).(Hashtbl.find cols w) <- true)
              (interior_neighbors v))
        frontier;
      (* Gauss-Jordan elimination; each row operation row_t ^= row_s is a
         CNOT(control = qubit s, target = qubit t) pushed into the circuit
         and mirrored on the diagram. *)
      let row_ops = ref [] in
      let row_add src dst =
        for c = 0 to ncols - 1 do
          m.(dst).(c) <- m.(dst).(c) <> m.(src).(c)
        done;
        row_ops := (src, dst) :: !row_ops
      in
      (* Pivots stay where they are, and — crucially — a pivot row's
         frontier vertex must not hold an input edge: the CNOT realising a
         row operation also XORs the source's input connectivity, which
         the matrix does not model.  Columns whose only candidate rows are
         input-adjacent are left alone. *)
      let clean_row =
        Array.map
          (fun v ->
            (not (is_input v))
            && not (List.exists (fun (w, _) -> is_input w) (Diagram.neighbors d v)))
          frontier
      in
      let used = Array.make n false in
      for col = 0 to ncols - 1 do
        let pivot = ref (-1) in
        for r = n - 1 downto 0 do
          if (not used.(r)) && clean_row.(r) && m.(r).(col) then pivot := r
        done;
        if !pivot >= 0 then begin
          used.(!pivot) <- true;
          for r = 0 to n - 1 do
            if r <> !pivot && m.(r).(col) then row_add !pivot r
          done
        end
      done;
      (* Mirror the row operations on the diagram: row_t ^= row_s toggles
         the H edges between frontier t and the interior neighbours of
         frontier s — which is exactly what the matrix already records, so
         rewrite the frontier-interior edges wholesale from [m]. *)
      Array.iteri
        (fun q v ->
          if not (is_input v) then begin
            List.iter (fun w -> Diagram.remove_all_edges d v w) (interior_neighbors v);
            for c = 0 to ncols - 1 do
              if m.(q).(c) then Diagram.connect d v cols_arr.(c) Diagram.Had
            done
          end)
        frontier;
      (* Peeling happens in recording order: emit o1 first so that o1 ends
         up latest in the final circuit.  A CNOT with control a and target
         b pushed through the frontier adds row b into row a, so the row
         operation dst ^= src is CNOT(control = dst, target = src). *)
      List.iter
        (fun (src, dst) ->
          emit (Circuit.Apply { gate = Gate.X; controls = [ dst ]; target = src }))
        (List.rev !row_ops);
      (* Extract every frontier row with a single interior neighbour. *)
      let extracted_any = ref false in
      let replaceable v =
        (not (is_input v))
        && Phase.is_zero (Diagram.phase d v)
        && not (List.exists (fun (w, _) -> is_input w) (Diagram.neighbors d v))
      in
      let try_extract q =
        let v = frontier.(q) in
        if replaceable v then begin
          match interior_neighbors v with
          | [ w ] ->
              let other_frontier_edges =
                List.filter
                  (fun (u, _) -> Hashtbl.mem qubit_of u && u <> v)
                  (Diagram.neighbors d v)
              in
              if other_frontier_edges = [] then begin
                (* v sits between output wire q and w via an H edge: replace
                   v by w and emit the H. *)
                let out = outputs.(q) in
                Diagram.remove_all_edges d v w;
                Diagram.remove_all_edges d v out;
                Diagram.remove_vertex d v;
                Diagram.connect d out w Diagram.Simple;
                emit (Circuit.Apply { gate = Gate.H; controls = []; target = q });
                frontier.(q) <- w;
                Hashtbl.remove qubit_of v;
                Hashtbl.replace qubit_of w q;
                extracted_any := true
              end
          | _ -> ()
        end
      in
      for q = 0 to n - 1 do
        try_extract q
      done;
      if not !extracted_any then begin
        (* Unblocking pass: a wire whose frontier vertex still holds an
           input edge can never advance by replacement, but its row can be
           added into a replaceable wire's row whenever the XOR has weight
           one; extract there. *)
        let weight row = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 row in
        (try
           for dst = 0 to n - 1 do
             if replaceable frontier.(dst) then
               for src = 0 to n - 1 do
                 if src <> dst && clean_row.(src) && weight m.(src) > 0 then begin
                   let combined =
                     Array.init ncols (fun c -> m.(dst).(c) <> m.(src).(c))
                   in
                   if weight combined = 1 then begin
                     row_add src dst;
                     emit
                       (Circuit.Apply { gate = Gate.X; controls = [ dst ]; target = src });
                     (* re-sync dst's graph edges with its new row *)
                     let v = frontier.(dst) in
                     List.iter
                       (fun w -> Diagram.remove_all_edges d v w)
                       (interior_neighbors v);
                     for c = 0 to ncols - 1 do
                       if m.(dst).(c) then Diagram.connect d v cols_arr.(c) Diagram.Had
                     done;
                     try_extract dst;
                     if !extracted_any then raise Exit
                   end
                 end
               done
           done
         with Exit -> ())
      end;
      if not !extracted_any then begin
        (* Phase gadgets block the frontier (Toffoli-style diagrams): find a
           frontier vertex v and an interior Pauli-phase neighbour w whose
           neighbours are all spiders, split v's output wire so v becomes
           interior, and pivot the pair away. *)
        let gadget_pivot =
          let found = ref None in
          Array.iteri
            (fun q v ->
              if
                !found = None
                && (not (is_input v))
                && Phase.is_zero (Diagram.phase d v)
                && not (List.exists (fun (u, _) -> is_input u) (Diagram.neighbors d v))
              then
                List.iter
                  (fun w ->
                    if
                      !found = None
                      && Phase.is_pauli (Diagram.phase d w)
                      && List.for_all
                           (fun (u, _) -> Diagram.kind d u <> Diagram.Boundary)
                           (Diagram.neighbors d w)
                    then found := Some (q, v, w))
                  (interior_neighbors v))
            frontier;
          !found
        in
        match gadget_pivot with
        | Some (q, v, w) ->
            let out = outputs.(q) in
            (* out –– v   becomes   out –– a =H= b =H= v  (an identity) *)
            let a = Diagram.add_vertex d Diagram.Z Phase.zero in
            let b = Diagram.add_vertex d Diagram.Z Phase.zero in
            Diagram.remove_all_edges d out v;
            Diagram.connect d out a Diagram.Simple;
            Diagram.connect d a b Diagram.Had;
            Diagram.connect d b v Diagram.Had;
            Rules.pivot_about d v w;
            frontier.(q) <- a;
            refresh_qubit_of ()
        | None ->
            if debug then begin
              Printf.eprintf "STALL. diagram:\n%s\n" (Format.asprintf "%a" Diagram.pp d)
            end;
            progress := false
      end
    end
  done;
  if Array.exists (fun v -> (not (is_input v)) && interior_neighbors v <> []) frontier
  then fail "no extractable vertex found (diagram has no causal flow?)";
  (* Final frontier cleanup: remaining phases and CZs. *)
  extract_phases_and_czs ();
  (* Each wire now ends in either the input boundary itself (bare wire) or
     a spider connected to exactly one input. *)
  let inp_of_wire = Array.make n (-1) in
  Array.iteri
    (fun q v ->
      if is_input v then inp_of_wire.(q) <- Hashtbl.find input_port v
      else begin
        match
          List.filter (fun (w, _) -> is_input w) (Diagram.neighbors d v)
        with
        | [ (w, (s, h)) ] ->
            if s + h <> 1 then fail "input wire multiplicity";
            (* the spider itself is an identity once phase-free; the edge
               from spider to input may be plain or Hadamard, and the edge
               from spider to output is plain *)
            if h = 1 then emit (Circuit.Apply { gate = Gate.H; controls = []; target = q });
            (* check the spider has no other connections *)
            List.iter
              (fun (u, _) ->
                if u <> w && not (is_output u) then
                  fail "leftover connectivity at the input frontier")
              (Diagram.neighbors d v);
            inp_of_wire.(q) <- Hashtbl.find input_port w
        | [] -> fail "wire disconnected from the inputs"
        | _ -> fail "frontier vertex touches several inputs"
      end)
    frontier;
  (* Wire q carries input port inp_of_wire.(q): prepend the permutation as
     swaps (cycle decomposition). *)
  let perm = Array.copy inp_of_wire in
  Array.iteri
    (fun q p -> if p < 0 then fail (Printf.sprintf "wire %d unmatched" q) |> ignore)
    perm;
  (* realise: start from identity placement; swap until position q holds p=q *)
  let current = Array.copy perm in
  for q = 0 to n - 1 do
    if current.(q) <> q then begin
      (* find where q currently sits *)
      let j = ref (-1) in
      Array.iteri (fun k p -> if p = q then j := k) current;
      if !j < 0 then fail "invalid permutation";
      emit (Circuit.Swap { controls = []; a = q; b = !j });
      let tmp = current.(q) in
      current.(q) <- current.(!j);
      current.(!j) <- tmp
    end
  done;
  List.fold_left (fun c instr -> Circuit.add instr c) (Circuit.empty n) !acc

let optimize_circuit c =
  let d = Translate.of_circuit c in
  ignore (Simplify.full_reduce d);
  extract d
