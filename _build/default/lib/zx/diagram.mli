(** ZX-diagrams (Section V of the paper).

    An open multigraph: spiders are green (Z) or red (X) with a phase;
    boundary vertices mark the ordered inputs and outputs; wires are
    plain or carry a Hadamard box (the compressed [-□-] notation the
    paper introduces for graph-like diagrams).  "Only connectivity
    matters": the structure is exactly this graph, nothing more.

    Diagrams carry an explicit global scalar ({!scalar}): the denoted map
    is [scalar · tensor-of-the-graph].  {!Translate} sets it so circuit
    diagrams are exact, and every rewrite in {!Rules}/{!Simplify}
    compensates its tensor factor, so exactness — including global
    phase — survives full simplification ({!Eval.to_matrix_exact}). *)

type kind = Z | X | Boundary
type edge_kind = Simple | Had

type t

val create : unit -> t
val copy : t -> t

(** The tracked global scalar: the diagram's linear map equals
    [scalar d · (tensor of the graph)].  Translation and every rewrite
    keep this exact; hand-built diagrams start at 1. *)
val scalar : t -> Qdt_linalg.Cx.t

(** [scale_scalar d c] multiplies the tracked scalar. *)
val scale_scalar : t -> Qdt_linalg.Cx.t -> unit

(** [add_vertex d kind phase] returns the fresh vertex id. *)
val add_vertex : t -> kind -> Phase.t -> int

(** [add_input d] / [add_output d] append a boundary vertex and register
    it as the next input/output port. *)
val add_input : t -> int

val add_output : t -> int

(** [connect d v w ek] adds one edge (parallel edges accumulate). *)
val connect : t -> int -> int -> edge_kind -> unit

(** [disconnect_one d v w ek] removes one such edge.
    @raise Invalid_argument if absent. *)
val disconnect_one : t -> int -> int -> edge_kind -> unit

(** [remove_all_edges d v w] deletes every edge between [v] and [w]. *)
val remove_all_edges : t -> int -> int -> unit

(** [remove_vertex d v] removes [v] and its incident edges; boundary
    vertices cannot be removed. *)
val remove_vertex : t -> int -> unit

val kind : t -> int -> kind
val phase : t -> int -> Phase.t
val set_phase : t -> int -> Phase.t -> unit
val add_phase : t -> int -> Phase.t -> unit
val set_kind : t -> int -> kind -> unit

(** [edge_counts d v w] is [(simple, hadamard)] multiplicities. *)
val edge_counts : t -> int -> int -> int * int

(** [neighbors d v] — distinct neighbours with multiplicities. *)
val neighbors : t -> int -> (int * (int * int)) list

(** [degree d v] — incident edge count (multiplicities included;
    self-loops count twice). *)
val degree : t -> int -> int

val mem : t -> int -> bool
val vertices : t -> int list
val num_vertices : t -> int
val num_edges : t -> int
val inputs : t -> int array
val outputs : t -> int array

(** [spiders d] — non-boundary vertices. *)
val spiders : t -> int list

(** [compose a b] glues [a]'s outputs to [b]'s inputs ("first [a], then
    [b]").
    @raise Invalid_argument on arity mismatch. *)
val compose : t -> t -> t

(** [adjoint d] — dagger: inputs/outputs swapped, phases negated. *)
val adjoint : t -> t

(** [validate d] checks structural invariants (boundaries have degree 1,
    edges point at live vertices); raises [Failure] with a description
    otherwise. *)
val validate : t -> unit

val pp : Format.formatter -> t -> unit

(** Graphviz rendering (spiders coloured, Hadamard edges dashed blue). *)
val to_dot : t -> string
