(** Spider phases: multiples of π, exact where possible.

    The ZX rewrite rules dispatch on exact phase classes — local
    complementation needs ±π/2, pivoting needs 0/π, T-counting needs odd
    multiples of π/4 — so phases are kept as exact rationals whenever the
    angle is a rational multiple of π (denominator ≤ 96); arbitrary
    angles fall back to a float that still participates in addition. *)

type t

val zero : t
val pi : t
val half_pi : t
val quarter_pi : t

(** [of_rational num den] is [num·π/den] (normalised mod 2π, gcd-reduced).
    @raise Invalid_argument if [den = 0]. *)
val of_rational : int -> int -> t

(** [of_radians theta] snaps to a rational multiple of π when one with
    denominator ≤ 96 matches within [1e-9]; otherwise stores the float. *)
val of_radians : float -> t

val to_radians : t -> float
val add : t -> t -> t
val neg : t -> t
val sub : t -> t -> t
val equal : t -> t -> bool
val is_zero : t -> bool

(** [is_pi t] — exactly π. *)
val is_pi : t -> bool

(** [is_pauli t] — 0 or π (the pivot-rule precondition). *)
val is_pauli : t -> bool

(** [is_proper_clifford t] — ±π/2 (the local-complementation
    precondition). *)
val is_proper_clifford : t -> bool

(** [is_clifford t] — a multiple of π/2. *)
val is_clifford : t -> bool

(** [is_t_like t] — an odd multiple of π/4 (counts toward T-count). *)
val is_t_like : t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
