(* Rational phases are stored as num/den in units of π with
   0 ≤ num < 2·den and gcd(num, den) = 1. *)
type t =
  | Rat of int * int
  | Irr of float

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let normalise num den =
  if den = 0 then invalid_arg "Phase.of_rational: zero denominator";
  let num, den = if den < 0 then (-num, -den) else (num, den) in
  let modulus = 2 * den in
  let num = ((num mod modulus) + modulus) mod modulus in
  if num = 0 then Rat (0, 1)
  else
    let g = gcd num den in
    Rat (num / g, den / g)

let zero = Rat (0, 1)
let pi = Rat (1, 1)
let half_pi = Rat (1, 2)
let quarter_pi = Rat (1, 4)
let of_rational num den = normalise num den

let two_pi = 2.0 *. Float.pi

let of_radians theta =
  let r = theta /. Float.pi in
  let max_den = 96 in
  let rec try_den d =
    if d > max_den then
      let m = Float.rem theta two_pi in
      Irr (if m < 0.0 then m +. two_pi else m)
    else
      let scaled = r *. Float.of_int d in
      let rounded = Float.round scaled in
      if Float.abs (scaled -. rounded) < 1e-9 && Float.abs rounded < 1e9 then
        normalise (int_of_float rounded) d
      else try_den (d + 1)
  in
  try_den 1

let to_radians = function
  | Rat (num, den) -> Float.pi *. Float.of_int num /. Float.of_int den
  | Irr theta -> theta

let add a b =
  match (a, b) with
  | Rat (n1, d1), Rat (n2, d2) -> normalise ((n1 * d2) + (n2 * d1)) (d1 * d2)
  | _ -> of_radians (to_radians a +. to_radians b)

let neg = function
  | Rat (num, den) -> normalise (-num) den
  | Irr theta -> Irr (two_pi -. theta)

let sub a b = add a (neg b)

let equal a b =
  match (a, b) with
  | Rat (n1, d1), Rat (n2, d2) -> n1 = n2 && d1 = d2
  | _ ->
      let d = Float.abs (to_radians a -. to_radians b) in
      let d = Float.rem d two_pi in
      d < 1e-9 || two_pi -. d < 1e-9

let is_zero t = equal t zero
let is_pi = function Rat (1, 1) -> true | _ -> false
let is_pauli = function Rat (0, 1) | Rat (1, 1) -> true | _ -> false
let is_proper_clifford = function Rat (1, 2) | Rat (3, 2) -> true | _ -> false

let is_clifford = function
  | Rat (_, 1) | Rat (_, 2) -> true
  | Rat _ | Irr _ -> false

let is_t_like = function Rat (_, 4) -> true | _ -> false

let pp ppf = function
  | Rat (0, 1) -> Format.pp_print_string ppf "0"
  | Rat (1, 1) -> Format.pp_print_string ppf "π"
  | Rat (num, 1) -> Format.fprintf ppf "%dπ" num
  | Rat (1, den) -> Format.fprintf ppf "π/%d" den
  | Rat (num, den) -> Format.fprintf ppf "%dπ/%d" num den
  | Irr theta -> Format.fprintf ppf "%.6f" theta

let to_string t = Format.asprintf "%a" pp t
