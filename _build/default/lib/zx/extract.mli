(** Circuit extraction from graph-like ZX-diagrams.

    The back-to-front frontier algorithm of Duncan, Kissinger, Perdrix &
    van de Wetering (ref [38] of the paper): peel phases and CZs off the
    frontier, then use GF(2) Gaussian elimination on the
    frontier/neighbour biadjacency matrix — each row operation is a CNOT
    — until a neighbour can be pulled onto a wire.  Diagrams produced by
    reducing circuit translations have gflow, so extraction succeeds on
    them; arbitrary diagrams may not.

    The extracted circuit equals the diagram's map up to global scalar. *)

exception Extraction_failed of string

(** [extract d] — a circuit over {CZ, CX, H, phase gates, SWAP}.
    [d] must be graph-like (run {!Rules.to_graph_like} or a simplifier
    first); it is not modified (extraction works on a copy).
    @raise Extraction_failed when no gflow-compatible step exists. *)
val extract : Diagram.t -> Qdt_circuit.Circuit.t

(** [optimize_circuit c] — the full ZX optimization pipeline: translate,
    fully reduce, extract back.  The result realises the same unitary up
    to global phase, usually with fewer T gates. *)
val optimize_circuit : Qdt_circuit.Circuit.t -> Qdt_circuit.Circuit.t
