open Qdt_linalg

type t = { shape : int array; labels : int array; data : Cx.t array }

let validate shape labels =
  if Array.length shape <> Array.length labels then
    invalid_arg "Tensor: shape/labels length mismatch";
  Array.iter (fun d -> if d <= 0 then invalid_arg "Tensor: non-positive dimension") shape;
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun l ->
      if Hashtbl.mem seen l then invalid_arg "Tensor: repeated label";
      Hashtbl.replace seen l ())
    labels

let total shape = Array.fold_left ( * ) 1 shape

let create ~shape ~labels =
  validate shape labels;
  { shape = Array.copy shape; labels = Array.copy labels; data = Array.make (total shape) Cx.zero }

(* Row-major strides: last axis has stride 1. *)
let strides shape =
  let n = Array.length shape in
  let s = Array.make n 1 in
  for k = n - 2 downto 0 do
    s.(k) <- s.(k + 1) * shape.(k + 1)
  done;
  s

let offset_of strides idx =
  let acc = ref 0 in
  Array.iteri (fun k i -> acc := !acc + (strides.(k) * i)) idx;
  !acc

let index_of_offset shape off =
  let n = Array.length shape in
  let idx = Array.make n 0 in
  let rem = ref off in
  for k = n - 1 downto 0 do
    idx.(k) <- !rem mod shape.(k);
    rem := !rem / shape.(k)
  done;
  idx

let init ~shape ~labels f =
  validate shape labels;
  let data = Array.init (total shape) (fun off -> f (index_of_offset shape off)) in
  { shape = Array.copy shape; labels = Array.copy labels; data }

let scalar z = { shape = [||]; labels = [||]; data = [| z |] }

let log2_exact len =
  let rec go acc k = if k = 1 then acc else go (acc + 1) (k / 2) in
  let n = go 0 len in
  if 1 lsl n <> len then invalid_arg "Tensor: length must be a power of two";
  n

let of_vec ~labels v =
  let n = log2_exact (Vec.length v) in
  if Array.length labels <> n then invalid_arg "Tensor.of_vec: need one label per qubit";
  let shape = Array.make n 2 in
  validate shape labels;
  { shape; labels = Array.copy labels; data = Vec.to_array v }

let of_mat ~row_labels ~col_labels m =
  let r = log2_exact (Mat.rows m) and c = log2_exact (Mat.cols m) in
  if Array.length row_labels <> r || Array.length col_labels <> c then
    invalid_arg "Tensor.of_mat: label counts must match matrix shape";
  let shape = Array.make (r + c) 2 in
  let labels = Array.append row_labels col_labels in
  validate shape labels;
  let data =
    Array.init (total shape) (fun off -> Mat.get m (off / Mat.cols m) (off mod Mat.cols m))
  in
  { shape; labels; data }

let rank t = Array.length t.shape
let shape t = Array.copy t.shape
let labels t = Array.copy t.labels
let size t = Array.length t.data
let get t idx = t.data.(offset_of (strides t.shape) idx)
let set t idx z = t.data.(offset_of (strides t.shape) idx) <- z

let to_scalar t =
  if rank t <> 0 then invalid_arg "Tensor.to_scalar: rank is not 0";
  t.data.(0)

let axis_of_label t l =
  let found = ref (-1) in
  Array.iteri (fun k lab -> if lab = l then found := k) t.labels;
  if !found < 0 then invalid_arg "Tensor: unknown label";
  !found

let permute t order =
  if Array.length order <> rank t then invalid_arg "Tensor.permute: wrong order length";
  let axes = Array.map (axis_of_label t) order in
  let new_shape = Array.map (fun a -> t.shape.(a)) axes in
  let old_strides = strides t.shape in
  let new_strides_in_old = Array.map (fun a -> old_strides.(a)) axes in
  let data =
    Array.init (Array.length t.data) (fun off ->
        let idx = index_of_offset new_shape off in
        t.data.(offset_of new_strides_in_old idx))
  in
  { shape = new_shape; labels = Array.copy order; data }

let to_vec t ~order =
  let flat = permute t order in
  Vec.of_array flat.data

let relabel t f =
  let labels = Array.map f t.labels in
  validate t.shape labels;
  { t with labels }

let shared_labels a b =
  Array.to_list a.labels |> List.filter (fun l -> Array.exists (( = ) l) b.labels)

let free_labels t other =
  Array.to_list t.labels |> List.filter (fun l -> not (Array.exists (( = ) l) other.labels))

let dims_of t ls = List.map (fun l -> t.shape.(axis_of_label t l)) ls

let contract a b =
  let shared = shared_labels a b in
  let free_a = free_labels a b and free_b = free_labels b a in
  (* Bring [a] to [free_a; shared] and [b] to [shared; free_b] and
     matrix-multiply. *)
  let a' = permute a (Array.of_list (free_a @ shared)) in
  let b' = permute b (Array.of_list (shared @ free_b)) in
  let dim l = List.fold_left ( * ) 1 l in
  let m = dim (dims_of a free_a) in
  let k = dim (dims_of a shared) in
  let n = dim (dims_of b free_b) in
  let out_shape = Array.of_list (dims_of a free_a @ dims_of b free_b) in
  let out_labels = Array.of_list (free_a @ free_b) in
  let data = Array.make (m * n) Cx.zero in
  for row = 0 to m - 1 do
    for kk = 0 to k - 1 do
      let av = a'.data.((row * k) + kk) in
      if not (Cx.is_zero ~eps:0.0 av) then
        for col = 0 to n - 1 do
          data.((row * n) + col) <-
            Cx.mul_add data.((row * n) + col) av b'.data.((kk * n) + col)
        done
    done
  done;
  { shape = out_shape; labels = out_labels; data }

let contract_cost a b =
  let shared = shared_labels a b in
  let free_a = free_labels a b and free_b = free_labels b a in
  let dim t l = List.fold_left ( * ) 1 (dims_of t l) in
  dim a free_a * dim a shared * dim b free_b

let fix t ~label ~value =
  let axis = axis_of_label t label in
  if value < 0 || value >= t.shape.(axis) then invalid_arg "Tensor.fix: value out of range";
  let new_shape =
    Array.of_list (List.filteri (fun k _ -> k <> axis) (Array.to_list t.shape))
  in
  let new_labels =
    Array.of_list (List.filteri (fun k _ -> k <> axis) (Array.to_list t.labels))
  in
  let old_strides = strides t.shape in
  let data =
    Array.init (total new_shape) (fun off ->
        let idx = index_of_offset new_shape off in
        (* splice [value] back at [axis] *)
        let full = Array.make (rank t) 0 in
        let j = ref 0 in
        for k = 0 to rank t - 1 do
          if k = axis then full.(k) <- value
          else begin
            full.(k) <- idx.(!j);
            incr j
          end
        done;
        t.data.(offset_of old_strides full))
  in
  { shape = new_shape; labels = new_labels; data }

let approx_equal ?eps a b =
  a.shape = b.shape && a.labels = b.labels
  && (let ok = ref true in
      Array.iteri
        (fun k z -> if not (Cx.approx_equal ?eps z b.data.(k)) then ok := false)
        a.data;
      !ok)

let memory_bytes t = 16 * Array.length t.data

let pp ppf t =
  Format.fprintf ppf "tensor(shape=[%s], labels=[%s])"
    (String.concat ";" (Array.to_list (Array.map string_of_int t.shape)))
    (String.concat ";" (Array.to_list (Array.map string_of_int t.labels)))
