(** Matrix-product-state simulation.

    The structured tensor-network representation the paper points to in
    Section IV (refs [31], [35]): the state is a chain of rank-3 site
    tensors; memory is governed by the bond dimension, which grows only
    with the entanglement the circuit actually creates.  Two-qubit gates
    are applied by contracting the two sites, applying the 4×4 matrix,
    and splitting back with a truncated SVD ({!Qdt_linalg.Svd}).
    Non-adjacent two-qubit gates are routed with temporary swaps. *)

type t

(** [create n] is [|0…0⟩] with all bond dimensions 1; site [i] carries
    qubit [i]. *)
val create : int -> t

val num_qubits : t -> int

(** [bond_dims mps] — the [n-1] internal bond dimensions. *)
val bond_dims : t -> int array

val max_bond_dim : t -> int

(** [truncation_error mps] — accumulated discarded weight [Σ σ²]. *)
val truncation_error : t -> float

val memory_bytes : t -> int

(** [apply_gate1 mps u q] applies a 2×2 matrix to qubit [q]. *)
val apply_gate1 : t -> Qdt_linalg.Mat.t -> int -> unit

(** [apply_gate2 mps ?max_bond ?cutoff u q] applies a 4×4 matrix to the
    adjacent pair ([q], [q+1]); matrix bit 0 is qubit [q]. *)
val apply_gate2 : t -> ?max_bond:int -> ?cutoff:float -> Qdt_linalg.Mat.t -> int -> unit

(** [apply_instruction mps ?max_bond ?cutoff instr] — any 1- or 2-qubit
    unitary instruction, routing across the chain as needed.
    @raise Invalid_argument for instructions on three or more qubits. *)
val apply_instruction :
  t -> ?max_bond:int -> ?cutoff:float -> Qdt_circuit.Circuit.instruction -> unit

(** [run ?max_bond ?cutoff circuit] simulates a unitary circuit from
    [|0…0⟩]. Defaults: unbounded bond, [cutoff = 1e-12]. *)
val run : ?max_bond:int -> ?cutoff:float -> Qdt_circuit.Circuit.t -> t

(** [amplitude mps k] — [⟨k|ψ⟩] in O(n·D²) time. *)
val amplitude : t -> int -> Qdt_linalg.Cx.t

val norm : t -> float

(** [to_vec mps] — densify (small [n] only). *)
val to_vec : t -> Qdt_linalg.Vec.t

(** [expectation_z mps q] — [⟨ψ|Z_q|ψ⟩ / ⟨ψ|ψ⟩] in O(n·D³) time. *)
val expectation_z : t -> int -> float

(** [sample ?seed mps ~shots] — draw basis states from [|ψ|²] by
    sequential conditional sampling along the chain (cost O(n·D²) per
    shot after an O(n·D³) environment sweep). *)
val sample : ?seed:int -> t -> shots:int -> (int * int) list
