lib/tensornet/tensor.mli: Format Qdt_linalg
