lib/tensornet/mps.mli: Qdt_circuit Qdt_linalg
