lib/tensornet/circuit_tn.mli: Network Qdt_circuit Qdt_linalg
