lib/tensornet/tensor.ml: Array Cx Format Hashtbl List Mat Qdt_linalg String Vec
