lib/tensornet/network.mli: Qdt_linalg Tensor
