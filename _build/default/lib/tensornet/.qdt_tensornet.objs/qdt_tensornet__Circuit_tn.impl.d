lib/tensornet/circuit_tn.ml: Array Circuit Cx Float Gate List Network Qdt_arraysim Qdt_circuit Qdt_linalg Tensor Vec
