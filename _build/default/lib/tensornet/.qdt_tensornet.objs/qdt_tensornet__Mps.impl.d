lib/tensornet/mps.ml: Array Circuit Cx Float Gate Gates Hashtbl List Mat Option Qdt_arraysim Qdt_circuit Qdt_linalg Random Svd Vec
