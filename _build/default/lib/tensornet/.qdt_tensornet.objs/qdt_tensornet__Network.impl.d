lib/tensornet/network.ml: Array Hashtbl List Option Qdt_linalg Tensor
