(** Tensor networks and contraction planning.

    A network is a bag of tensors; labels shared between two tensors are
    bonds, labels appearing once are open indices.  Finding a good
    pairwise contraction order is NP-hard (ref [33] of the paper), so the
    planners here are heuristics: the input order, and a greedy minimiser
    of intermediate tensor size (in the spirit of ref [34]). *)

type t

type plan =
  | Sequential  (** contract tensors in insertion order *)
  | Greedy      (** repeatedly contract the pair whose result is smallest *)

type stats = {
  multiplications : int;  (** total scalar multiplications performed *)
  peak_tensor_size : int; (** entries of the largest intermediate *)
  contractions : int;
}

val empty : t
val add : Tensor.t -> t -> t
val of_list : Tensor.t list -> t
val tensors : t -> Tensor.t list
val tensor_count : t -> int

(** [open_labels net] — labels occurring exactly once. *)
val open_labels : t -> int list

(** [memory_bytes net] — total payload of all tensors; the "linear in gates
    and qubits" representation cost of Example 4. *)
val memory_bytes : t -> int

(** [contract_all ?plan net] contracts everything down to one tensor and
    reports cost statistics.
    @raise Invalid_argument on an empty network. *)
val contract_all : ?plan:plan -> t -> Tensor.t * stats

(** [bond_labels net] — labels shared by at least two tensors. *)
val bond_labels : t -> int list

(** [contract_scalar_sliced ?plan ~labels net] — index slicing (the
    memory-reduction device of hyper-optimized contraction, ref [34] of
    the paper): fix the [labels] to every assignment, contract each
    slice independently, and sum the resulting scalars.  Peak memory is
    that of a single slice; total multiplications multiply by [2^k].
    The network must contract to a scalar.
    @raise Invalid_argument if a label is open or unknown. *)
val contract_scalar_sliced :
  ?plan:plan -> labels:int list -> t -> Qdt_linalg.Cx.t * stats
