(** Translating quantum circuits to tensor networks (Fig. 2 of the paper).

    Each input qubit contributes a rank-1 [|0⟩] tensor, each gate a
    rank-[2m] tensor wired to the current wire of each qubit it touches;
    the network's open labels are the circuit's output wires.  Computing a
    single amplitude "adds bubbles at the end" — fixes the output indices
    — and contracts down to a scalar (Example 4). *)

type t

(** [of_circuit c] builds the network of a unitary circuit.
    @raise Invalid_argument on measurements/resets. *)
val of_circuit : Qdt_circuit.Circuit.t -> t

val network : t -> Network.t

(** [output_wires tn] — wire label of each qubit, index = qubit. *)
val output_wires : t -> int array

(** [memory_bytes tn] — linear-in-gates representation cost (Example 4). *)
val memory_bytes : t -> int

(** [amplitude ?plan tn k] contracts to the single amplitude [⟨k|C|0…0⟩],
    returning the value and contraction stats. *)
val amplitude : ?plan:Network.plan -> t -> int -> Qdt_linalg.Cx.t * Network.stats

(** [statevector ?plan tn] contracts with open outputs: the full [2^n]
    state (exponential, as the paper warns). *)
val statevector : ?plan:Network.plan -> t -> Qdt_linalg.Vec.t * Network.stats

(** [expectation_z ?plan tn q] computes [⟨ψ|Z_q|ψ⟩] by contracting the
    doubled network [⟨0|C† Z_q C|0⟩] — scalar output, no state vector. *)
val expectation_z : ?plan:Network.plan -> Qdt_circuit.Circuit.t -> int -> float * Network.stats

(** [amplitude_sliced ?plan ~slices tn k] — like {!amplitude} but slicing
    [slices] bond indices chosen evenly through the circuit, trading a
    [2^slices] work factor for a smaller peak intermediate (ref [34]'s
    slicing).  Results are identical to {!amplitude}. *)
val amplitude_sliced :
  ?plan:Network.plan -> slices:int -> t -> int -> Qdt_linalg.Cx.t * Network.stats

(** [hilbert_schmidt_overlap ?plan c1 c2] contracts the *closed* network
    of [c1 ; c2†] with each output looped back to its input: the scalar
    [Tr(U₂†·U₁)], whose magnitude is [2^n] exactly when the circuits
    agree up to global phase.  The network stays linear in the gate
    count — tensor-network equivalence checking (cf. ref [25] of the
    paper). *)
val hilbert_schmidt_overlap :
  ?plan:Network.plan ->
  Qdt_circuit.Circuit.t ->
  Qdt_circuit.Circuit.t ->
  Qdt_linalg.Cx.t * Network.stats
