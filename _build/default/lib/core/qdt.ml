module Linalg = Qdt_linalg
module Circuit = Qdt_circuit
module Arrays = Qdt_arraysim
module Dd = Qdt_dd
module Tensornet = Qdt_tensornet
module Zx = Qdt_zx
module Compile = Qdt_compile
module Verify = Qdt_verify
module Stabilizer = Qdt_stabilizer

type backend =
  | Arrays_backend
  | Decision_diagrams
  | Tensor_network
  | Mps
  | Stabilizer_backend

let backend_name = function
  | Arrays_backend -> "arrays"
  | Decision_diagrams -> "decision-diagrams"
  | Tensor_network -> "tensor-network"
  | Mps -> "mps"
  | Stabilizer_backend -> "stabilizer"

let all_backends = [ Arrays_backend; Decision_diagrams; Tensor_network; Mps ]

let simulate ~backend c =
  match backend with
  | Arrays_backend -> Qdt_arraysim.Statevector.to_vec (Qdt_arraysim.Statevector.run_unitary c)
  | Decision_diagrams -> Qdt_dd.Sim.to_vec (Qdt_dd.Sim.run_unitary c)
  | Tensor_network ->
      fst (Qdt_tensornet.Circuit_tn.statevector (Qdt_tensornet.Circuit_tn.of_circuit c))
  | Mps ->
      let lowered = Qdt_compile.Decompose.lower ~basis:Qdt_compile.Decompose.Two_qubit c in
      Qdt_tensornet.Mps.to_vec (Qdt_tensornet.Mps.run lowered)
  | Stabilizer_backend ->
      invalid_arg "Qdt.simulate: the stabilizer backend has no amplitude access"

let amplitude ~backend c k =
  match backend with
  | Arrays_backend ->
      Qdt_arraysim.Statevector.amplitude (Qdt_arraysim.Statevector.run_unitary c) k
  | Decision_diagrams -> Qdt_dd.Sim.amplitude (Qdt_dd.Sim.run_unitary c) k
  | Tensor_network ->
      fst (Qdt_tensornet.Circuit_tn.amplitude (Qdt_tensornet.Circuit_tn.of_circuit c) k)
  | Mps ->
      let lowered = Qdt_compile.Decompose.lower ~basis:Qdt_compile.Decompose.Two_qubit c in
      Qdt_tensornet.Mps.amplitude (Qdt_tensornet.Mps.run lowered) k
  | Stabilizer_backend ->
      invalid_arg "Qdt.amplitude: the stabilizer backend has no amplitude access"

let sample ~backend ?(seed = 0) ~shots c =
  match backend with
  | Arrays_backend ->
      Qdt_arraysim.Statevector.sample ~seed (Qdt_arraysim.Statevector.run_unitary c) ~shots
  | Decision_diagrams -> Qdt_dd.Sim.sample ~seed (Qdt_dd.Sim.run_unitary c) ~shots
  | Stabilizer_backend ->
      let t, _ = Qdt_stabilizer.Tableau.run ~seed c in
      Qdt_stabilizer.Tableau.sample ~seed:(seed + 1) t ~shots
  | Tensor_network | Mps ->
      invalid_arg "Qdt.sample: sampling is provided by the array, DD and stabilizer backends"

let expectation_z ~backend c q =
  match backend with
  | Arrays_backend ->
      Qdt_arraysim.Statevector.expectation_z (Qdt_arraysim.Statevector.run_unitary c) q
  | Decision_diagrams -> Qdt_dd.Sim.expectation_z (Qdt_dd.Sim.run_unitary c) q
  | Stabilizer_backend ->
      let t, _ = Qdt_stabilizer.Tableau.run c in
      Float.of_int (Qdt_stabilizer.Tableau.expectation_z t q)
  | Tensor_network -> fst (Qdt_tensornet.Circuit_tn.expectation_z c q)
  | Mps ->
      let lowered = Qdt_compile.Decompose.lower ~basis:Qdt_compile.Decompose.Two_qubit c in
      Qdt_tensornet.Mps.expectation_z (Qdt_tensornet.Mps.run lowered) q

type compiled = {
  circuit : Qdt_circuit.Circuit.t;
  added_swaps : int;
  removed_gates : int;
  initial_layout : int array;
  final_layout : int array;
}

let compile ?(optimize = true) ~coupling c =
  let result = Qdt_compile.Router.route c coupling in
  let routed = result.Qdt_compile.Router.routed in
  let final_circuit, removed =
    if optimize then
      let optimized, stats = Qdt_compile.Optimize.optimize routed in
      (optimized, stats.Qdt_compile.Optimize.removed)
    else (routed, 0)
  in
  {
    circuit = final_circuit;
    added_swaps = result.Qdt_compile.Router.added_swaps;
    removed_gates = removed;
    initial_layout = result.Qdt_compile.Router.initial_layout;
    final_layout = result.Qdt_compile.Router.final_layout;
  }

type checker =
  | Check_arrays
  | Check_dd
  | Check_dd_alternating
  | Check_zx
  | Check_tn
  | Check_simulation

let checker_name = function
  | Check_arrays -> "arrays"
  | Check_dd -> "dd"
  | Check_dd_alternating -> "dd-alternating"
  | Check_zx -> "zx"
  | Check_tn -> "tn"
  | Check_simulation -> "simulation"

let all_checkers =
  [ Check_arrays; Check_dd; Check_dd_alternating; Check_zx; Check_tn; Check_simulation ]

let equivalent ~checker c1 c2 =
  match checker with
  | Check_arrays -> Qdt_verify.Equiv.arrays c1 c2
  | Check_dd -> Qdt_verify.Equiv.dd c1 c2
  | Check_dd_alternating -> Qdt_verify.Equiv.dd_alternating c1 c2
  | Check_zx -> Qdt_verify.Equiv.zx c1 c2
  | Check_tn -> Qdt_verify.Equiv.tn c1 c2
  | Check_simulation -> Qdt_verify.Equiv.simulation c1 c2
