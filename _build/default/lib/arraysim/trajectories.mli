(** Noise-aware simulation by quantum trajectories.

    The stochastic counterpart of {!Density}: instead of evolving the
    [4^n]-sized density matrix, sample state-vector trajectories — after
    each gate, pick one Kraus operator of the channel with probability
    [‖K|ψ⟩‖²] and renormalise.  Averaging trajectories reproduces the
    density-matrix results (the approach of the paper's ref [13]) at
    state-vector cost per sample. *)

type noise_model = {
  channel : unit -> Density.channel;  (** channel applied per touched qubit *)
  label : string;
}

val depolarizing : float -> noise_model
val amplitude_damping : float -> noise_model
val phase_damping : float -> noise_model
val bit_flip : float -> noise_model

(** [apply_channel_stochastic sv ch q ~rng] — sample one Kraus branch. *)
val apply_channel_stochastic :
  Statevector.t -> Density.channel -> int -> rng:Random.State.t -> unit

(** [run_single ?seed ~noise circuit] — one noisy trajectory. *)
val run_single : ?seed:int -> noise:noise_model -> Qdt_circuit.Circuit.t -> Statevector.t

(** [average_probabilities ?seed ~noise ~trajectories circuit] — mean
    measurement distribution over that many trajectories; converges to
    the diagonal of the density matrix. *)
val average_probabilities :
  ?seed:int -> noise:noise_model -> trajectories:int -> Qdt_circuit.Circuit.t -> float array

(** [average_fidelity ?seed ~noise ~trajectories circuit] — mean fidelity
    of noisy trajectories against the ideal state. *)
val average_fidelity :
  ?seed:int -> noise:noise_model -> trajectories:int -> Qdt_circuit.Circuit.t -> float
