(** Density-matrix simulation with noise channels.

    The array story of Section II extended to mixed states, which is what
    the noise-aware simulation the paper cites ([13], Grurl et al.) needs:
    a state is a [2^n × 2^n] positive matrix ρ, gates act as [UρU†] and
    noise as Kraus channels [ρ ↦ Σ K ρ K†]. *)

type t

(** A single-qubit Kraus channel. *)
type channel = Qdt_linalg.Mat.t list

val create : int -> t
(** [create n] is the pure state [|0…0⟩⟨0…0|]. *)

val of_statevector : Statevector.t -> t
val num_qubits : t -> int
val matrix : t -> Qdt_linalg.Mat.t
val trace : t -> float

(** [purity rho] is [Tr ρ²] — 1 on pure states, < 1 on mixed ones. *)
val purity : t -> float

val apply_instruction : t -> Qdt_circuit.Circuit.instruction -> unit

(** [apply_channel rho ch q] applies the single-qubit channel on qubit [q]. *)
val apply_channel : t -> channel -> int -> unit

(** [run ?noise circuit] simulates [circuit]; when [noise] is given, the
    channel [noise gate_qubits] is applied to each touched qubit after each
    gate. *)
val run : ?noise:(unit -> channel) -> Qdt_circuit.Circuit.t -> t

(** [probabilities rho] is the diagonal of ρ. *)
val probabilities : t -> float array

(** [fidelity_to_pure rho sv] is [⟨ψ|ρ|ψ⟩]. *)
val fidelity_to_pure : t -> Statevector.t -> float

(** {1 Standard channels} *)

val depolarizing : float -> channel
val amplitude_damping : float -> channel
val phase_damping : float -> channel
val bit_flip : float -> channel
