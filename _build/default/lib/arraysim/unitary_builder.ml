open Qdt_linalg
open Qdt_circuit

let instruction_matrix ~num_qubits instr =
  let dim = 1 lsl num_qubits in
  match instr with
  | Circuit.Apply { gate; controls; target } ->
      let u = Gate.matrix gate in
      let cmask = List.fold_left (fun mask q -> mask lor (1 lsl q)) 0 controls in
      let tbit = 1 lsl target in
      Mat.init dim dim (fun row col ->
          if col land cmask <> cmask then
            (* controls not satisfied: identity column *)
            if row = col then Cx.one else Cx.zero
          else if row lor tbit <> col lor tbit || row land cmask <> cmask then
            (* rows must agree with col outside the target bit *)
            Cx.zero
          else
            Mat.get u (if row land tbit <> 0 then 1 else 0)
              (if col land tbit <> 0 then 1 else 0))
  | Circuit.Swap { controls; a; b } ->
      let cmask = List.fold_left (fun mask q -> mask lor (1 lsl q)) 0 controls in
      let ba = 1 lsl a and bb = 1 lsl b in
      Mat.init dim dim (fun row col ->
          let image =
            if col land cmask <> cmask then col
            else
              let bit_a = if col land ba <> 0 then 1 else 0 in
              let bit_b = if col land bb <> 0 then 1 else 0 in
              if bit_a = bit_b then col else col lxor ba lxor bb
          in
          if row = image then Cx.one else Cx.zero)
  | Circuit.Barrier _ -> Mat.identity dim
  | Circuit.Measure _ | Circuit.Reset _ ->
      invalid_arg "Unitary_builder: non-unitary instruction"

let unitary circuit =
  if not (Circuit.is_unitary_only circuit) then
    invalid_arg "Unitary_builder.unitary: circuit measures or resets";
  let n = Circuit.num_qubits circuit in
  List.fold_left
    (fun acc instr -> Mat.mul (instruction_matrix ~num_qubits:n instr) acc)
    (Mat.identity (1 lsl n))
    (Circuit.instructions circuit)

let unitary_by_columns circuit =
  if not (Circuit.is_unitary_only circuit) then
    invalid_arg "Unitary_builder.unitary_by_columns: circuit measures or resets";
  let n = Circuit.num_qubits circuit in
  let dim = 1 lsl n in
  let columns =
    Array.init dim (fun k ->
        let sv = Statevector.of_vec n (Vec.basis ~dim k) in
        let rng = Random.State.make [| 0 |] in
        let clbits = [| 0 |] in
        List.iter
          (fun instr -> Statevector.apply_instruction sv instr ~rng ~clbits)
          (Circuit.instructions circuit);
        Statevector.to_vec sv)
  in
  Mat.init dim dim (fun row col -> Vec.get columns.(col) row)
