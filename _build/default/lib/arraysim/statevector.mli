(** Array-based state-vector simulation (Section II of the paper).

    The state of [n] qubits is the dense array of its [2^n] amplitudes;
    gates are applied in place with stride-[2^target] kernels rather than
    by materialising the full [2^n × 2^n] operator.  This is the baseline
    the other backends are measured against: simple, cache-friendly, and
    exponential in memory. *)

type t

(** [create n] is [|0…0⟩] on [n] qubits. *)
val create : int -> t

(** [of_vec n v] wraps an explicit amplitude vector of length [2^n]. *)
val of_vec : int -> Qdt_linalg.Vec.t -> t

val to_vec : t -> Qdt_linalg.Vec.t

(** [overwrite sv v] replaces the amplitudes of [sv] in place.
    @raise Invalid_argument on length mismatch. *)
val overwrite : t -> Qdt_linalg.Vec.t -> unit

(** [copy sv] — independent deep copy. *)
val copy : t -> t
val num_qubits : t -> int

(** [amplitude sv k] is [⟨k|ψ⟩]. *)
val amplitude : t -> int -> Qdt_linalg.Cx.t

(** [probability sv k] is [|⟨k|ψ⟩|²]. *)
val probability : t -> int -> float
val probabilities : t -> float array
val norm : t -> float

(** [apply_gate sv gate ~controls ~target] applies a (multi-)controlled
    single-qubit gate in place. *)
val apply_gate : t -> Qdt_circuit.Gate.t -> controls:int list -> target:int -> unit

(** [apply_matrix sv m ~controls ~target] applies an arbitrary 2×2 unitary. *)
val apply_matrix : t -> Qdt_linalg.Mat.t -> controls:int list -> target:int -> unit

(** [apply_swap sv ~controls a b] swaps qubits [a] and [b]. *)
val apply_swap : t -> controls:int list -> int -> int -> unit

(** [apply_instruction sv instr ~rng ~clbits] executes one instruction;
    measurements collapse the state using [rng] and record into [clbits]. *)
val apply_instruction :
  t -> Qdt_circuit.Circuit.instruction -> rng:Random.State.t -> clbits:int array -> unit

(** [run ?seed circuit] simulates from [|0…0⟩]; returns the final state and
    the classical bits (all zero when the circuit never measures). *)
val run : ?seed:int -> Qdt_circuit.Circuit.t -> t * int array

(** [run_unitary circuit] simulates ignoring measurements/resets entirely.
    @raise Invalid_argument if the circuit contains any. *)
val run_unitary : Qdt_circuit.Circuit.t -> t

(** [measure_qubit sv ~rng q] projects qubit [q], renormalises, and returns
    the observed bit. *)
val measure_qubit : t -> rng:Random.State.t -> int -> int

(** [expectation_z sv q] is [⟨ψ|Z_q|ψ⟩] (a real number). *)
val expectation_z : t -> int -> float

(** [sample ?seed sv ~shots] draws basis states from [|ψ|²] and returns
    (basis index, count) pairs sorted by index. *)
val sample : ?seed:int -> t -> shots:int -> (int * int) list

(** [fidelity a b] is [|⟨a|b⟩|²]. *)
val fidelity : t -> t -> float

(** [memory_bytes sv] — amplitude payload size, for the E5 experiment. *)
val memory_bytes : t -> int

val pp : Format.formatter -> t -> unit
