open Qdt_linalg
open Qdt_circuit

type t = { n : int; mutable rho : Mat.t }
type channel = Mat.t list

let create n =
  if n < 1 || n > 12 then invalid_arg "Density.create: unsupported qubit count";
  let dim = 1 lsl n in
  let rho = Mat.create dim dim in
  Mat.set rho 0 0 Cx.one;
  { n; rho }

let of_statevector sv =
  let v = Statevector.to_vec sv in
  let dim = Vec.length v in
  let rho =
    Mat.init dim dim (fun r c -> Cx.mul (Vec.get v r) (Cx.conj (Vec.get v c)))
  in
  { n = Statevector.num_qubits sv; rho }

let num_qubits d = d.n
let matrix d = Mat.copy d.rho
let trace d = (Mat.trace d.rho).Cx.re
let purity d = (Mat.trace (Mat.mul d.rho d.rho)).Cx.re

let conjugate d u = d.rho <- Mat.mul u (Mat.mul d.rho (Mat.dagger u))

let apply_instruction d instr =
  match instr with
  | Circuit.Apply _ | Circuit.Swap _ ->
      conjugate d (Unitary_builder.instruction_matrix ~num_qubits:d.n instr)
  | Circuit.Barrier _ -> ()
  | Circuit.Measure _ | Circuit.Reset _ ->
      invalid_arg "Density.apply_instruction: measurement not supported"

let embed_kraus n k q =
  (* K on qubit q, identity elsewhere, by direct index arithmetic. *)
  let dim = 1 lsl n in
  let bit = 1 lsl q in
  Mat.init dim dim (fun row col ->
      if row lor bit <> col lor bit then Cx.zero
      else
        Mat.get k (if row land bit <> 0 then 1 else 0) (if col land bit <> 0 then 1 else 0))

let apply_channel d ch q =
  let terms =
    List.map
      (fun k ->
        let full = embed_kraus d.n k q in
        Mat.mul full (Mat.mul d.rho (Mat.dagger full)))
      ch
  in
  match terms with
  | [] -> invalid_arg "Density.apply_channel: empty channel"
  | first :: rest -> d.rho <- List.fold_left Mat.add first rest

let run ?noise circuit =
  let d = create (Circuit.num_qubits circuit) in
  List.iter
    (fun instr ->
      match instr with
      | Circuit.Barrier _ -> ()
      | _ ->
          apply_instruction d instr;
          (match noise with
          | None -> ()
          | Some mk ->
              List.iter
                (fun q -> apply_channel d (mk ()) q)
                (Circuit.qubits_of_instruction instr)))
    (Circuit.instructions circuit);
  d

let probabilities d =
  Array.init (1 lsl d.n) (fun k -> (Mat.get d.rho k k).Cx.re)

let fidelity_to_pure d sv =
  let v = Statevector.to_vec sv in
  let rho_v = Mat.mul_vec d.rho v in
  (Vec.dot v rho_v).Cx.re

let m2 a b c dd = Mat.of_rows [| [| a; b |]; [| c; dd |] |]
let r = Cx.of_float

let depolarizing p =
  if p < 0.0 || p > 1.0 then invalid_arg "Density.depolarizing: p out of [0,1]";
  let s0 = Float.sqrt (1.0 -. (3.0 *. p /. 4.0)) in
  let s = Float.sqrt (p /. 4.0) in
  [
    Mat.scale (r s0) Gates.id2;
    Mat.scale (r s) Gates.x;
    Mat.scale (r s) Gates.y;
    Mat.scale (r s) Gates.z;
  ]

let amplitude_damping gamma =
  if gamma < 0.0 || gamma > 1.0 then invalid_arg "Density.amplitude_damping: gamma out of [0,1]";
  [
    m2 Cx.one Cx.zero Cx.zero (r (Float.sqrt (1.0 -. gamma)));
    m2 Cx.zero (r (Float.sqrt gamma)) Cx.zero Cx.zero;
  ]

let phase_damping lambda =
  if lambda < 0.0 || lambda > 1.0 then invalid_arg "Density.phase_damping: lambda out of [0,1]";
  [
    m2 Cx.one Cx.zero Cx.zero (r (Float.sqrt (1.0 -. lambda)));
    m2 Cx.zero Cx.zero Cx.zero (r (Float.sqrt lambda));
  ]

let bit_flip p =
  if p < 0.0 || p > 1.0 then invalid_arg "Density.bit_flip: p out of [0,1]";
  [ Mat.scale (r (Float.sqrt (1.0 -. p))) Gates.id2; Mat.scale (r (Float.sqrt p)) Gates.x ]
