(** Building the full [2^n × 2^n] unitary of a circuit.

    This is the most literal reading of Section II: a circuit *is* a
    product of matrices.  It is also the array-based reference method for
    equivalence checking, feasible only for small [n]. *)

(** [instruction_matrix ~num_qubits instr] is the full operator of one
    instruction.
    @raise Invalid_argument on measurements/resets. *)
val instruction_matrix :
  num_qubits:int -> Qdt_circuit.Circuit.instruction -> Qdt_linalg.Mat.t

(** [unitary circuit] multiplies all instruction matrices in program
    order, i.e. returns [U_m · … · U_1].
    @raise Invalid_argument if the circuit measures or resets. *)
val unitary : Qdt_circuit.Circuit.t -> Qdt_linalg.Mat.t

(** [unitary_by_columns circuit] computes the same matrix one basis-state
    simulation per column; cheaper in practice because it never forms
    intermediate [2^n × 2^n] products. *)
val unitary_by_columns : Qdt_circuit.Circuit.t -> Qdt_linalg.Mat.t
