lib/arraysim/trajectories.ml: Array Circuit Cx Density Float List Qdt_circuit Qdt_linalg Random Statevector Vec
