lib/arraysim/statevector.mli: Format Qdt_circuit Qdt_linalg Random
