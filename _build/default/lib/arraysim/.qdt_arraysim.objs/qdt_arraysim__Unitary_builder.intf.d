lib/arraysim/unitary_builder.mli: Qdt_circuit Qdt_linalg
