lib/arraysim/statevector.ml: Array Circuit Cx Float Format Gate Hashtbl List Mat Option Qdt_circuit Qdt_linalg Random String Vec
