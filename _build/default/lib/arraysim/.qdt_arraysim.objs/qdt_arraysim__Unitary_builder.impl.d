lib/arraysim/unitary_builder.ml: Array Circuit Cx Gate List Mat Qdt_circuit Qdt_linalg Random Statevector Vec
