lib/arraysim/trajectories.mli: Density Qdt_circuit Random Statevector
