lib/arraysim/density.mli: Qdt_circuit Qdt_linalg Statevector
