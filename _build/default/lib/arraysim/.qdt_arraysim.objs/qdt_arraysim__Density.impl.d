lib/arraysim/density.ml: Array Circuit Cx Float Gates List Mat Qdt_circuit Qdt_linalg Statevector Unitary_builder Vec
