lib/dd/export.mli: Pkg
