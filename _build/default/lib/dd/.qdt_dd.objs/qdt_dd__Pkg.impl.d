lib/dd/pkg.ml: Array Cnum_table Cx Hashtbl Mat Qdt_linalg Vec
