lib/dd/build.mli: Pkg Qdt_circuit Qdt_linalg
