lib/dd/export.ml: Array Buffer Cx Fun Hashtbl Pkg Printf Qdt_linalg
