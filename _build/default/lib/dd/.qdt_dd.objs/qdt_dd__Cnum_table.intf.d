lib/dd/cnum_table.mli: Complex
