lib/dd/sim.mli: Pkg Qdt_circuit Qdt_linalg Random
