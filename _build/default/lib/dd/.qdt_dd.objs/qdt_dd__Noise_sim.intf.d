lib/dd/noise_sim.mli: Pkg Qdt_circuit Qdt_linalg
