lib/dd/noise_sim.ml: Build Circuit Cx List Pkg Qdt_circuit Qdt_linalg
