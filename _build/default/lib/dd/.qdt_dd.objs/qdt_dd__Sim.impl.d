lib/dd/sim.ml: Array Build Circuit Cx Float Gates Hashtbl List Mat Option Pkg Printf Qdt_circuit Qdt_linalg Random String
