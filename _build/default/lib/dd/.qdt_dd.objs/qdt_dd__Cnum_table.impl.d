lib/dd/cnum_table.ml: Cx Float Hashtbl List Qdt_linalg
