lib/dd/build.ml: Circuit Cx Gate Gates List Mat Pkg Qdt_circuit Qdt_linalg Vec
