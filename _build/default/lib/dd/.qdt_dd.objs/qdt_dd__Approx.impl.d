lib/dd/approx.ml: Array Cx Float Hashtbl Pkg Qdt_linalg Sim
