lib/dd/pkg.mli: Qdt_linalg
