lib/dd/approx.mli: Hashtbl Pkg Sim
