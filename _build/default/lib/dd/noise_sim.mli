(** Noise-aware simulation with decision diagrams (Grurl, Fuß & Wille —
    ref [13] of the paper).

    The density matrix ρ is itself a matrix DD: gates act as [U·ρ·U†]
    (two DD multiplications), single-qubit Kraus channels as
    [Σ_k K·ρ·K†] (DD additions).  Where ρ has structure — few coherences,
    repeated blocks — the DD stays small while the dense density matrix
    costs [4^n]. *)

type state

(** [init n] — the pure state [|0…0⟩⟨0…0|] with a fresh manager. *)
val init : int -> state

(** [make mgr n] — share an existing manager. *)
val make : Pkg.t -> int -> state

val num_qubits : state -> int
val manager : state -> Pkg.t
val root : state -> Pkg.edge

(** [apply_instruction st instr] — unitary instructions only.
    @raise Invalid_argument on measurements/resets. *)
val apply_instruction : state -> Qdt_circuit.Circuit.instruction -> unit

(** [apply_channel st kraus q] — a single-qubit channel given by its 2×2
    Kraus operators, applied to qubit [q]. *)
val apply_channel : state -> Qdt_linalg.Mat.t list -> int -> unit

(** [run ?noise circuit] — simulate; when [noise] is given, the channel
    [noise ()] hits every qubit an instruction touches, after it. *)
val run : ?noise:(unit -> Qdt_linalg.Mat.t list) -> Qdt_circuit.Circuit.t -> state

(** [trace st] — [Tr ρ] (1 for trace-preserving evolution). *)
val trace : state -> float

(** [purity st] — [Tr ρ²]. *)
val purity : state -> float

(** [probability st k] — the diagonal entry [⟨k|ρ|k⟩]. *)
val probability : state -> int -> float

(** [fidelity_to_pure st vec] — [⟨ψ|ρ|ψ⟩] against a dense pure state. *)
val fidelity_to_pure : state -> Qdt_linalg.Vec.t -> float

(** [node_count st] — size of the ρ DD. *)
val node_count : state -> int

(** [to_mat st] — densify (small [n]; testing aid). *)
val to_mat : state -> Qdt_linalg.Mat.t
