open Qdt_linalg

let weight_label w = if Cx.is_one w then "" else Cx.to_string w

let to_dot _mgr (root : Pkg.edge) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph dd {\n";
  Buffer.add_string buf "  rankdir=TB;\n  node [shape=circle];\n";
  Buffer.add_string buf "  root [shape=point];\n";
  let emitted = Hashtbl.create 64 in
  let rec emit_node (n : Pkg.node) =
    if not (Hashtbl.mem emitted n.Pkg.id) then begin
      Hashtbl.replace emitted n.Pkg.id ();
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"q%d\"];\n" n.Pkg.id n.Pkg.var);
      Array.iteri
        (fun k (child : Pkg.edge) ->
          if Pkg.is_zero child then
            (* 0-stub, drawn as a small square like the paper's figures. *)
            Buffer.add_string buf
              (Printf.sprintf
                 "  z%d_%d [shape=square,label=\"0\",width=0.2];\n  n%d -> z%d_%d [label=\"%d\"];\n"
                 n.Pkg.id k n.Pkg.id n.Pkg.id k k)
          else begin
            (match child.Pkg.target with
            | Pkg.Terminal ->
                Buffer.add_string buf
                  (Printf.sprintf
                     "  t%d_%d [shape=box,label=\"1\"];\n  n%d -> t%d_%d [label=\"%d %s\"];\n"
                     n.Pkg.id k n.Pkg.id n.Pkg.id k k (weight_label child.Pkg.w))
            | Pkg.Node m ->
                emit_node m;
                Buffer.add_string buf
                  (Printf.sprintf "  n%d -> n%d [label=\"%d %s\"];\n" n.Pkg.id
                     m.Pkg.id k (weight_label child.Pkg.w)))
          end)
        n.Pkg.edges
    end
  in
  (match root.Pkg.target with
  | Pkg.Terminal ->
      Buffer.add_string buf
        (Printf.sprintf "  t [shape=box,label=\"%s\"];\n  root -> t;\n"
           (Cx.to_string root.Pkg.w))
  | Pkg.Node n ->
      emit_node n;
      Buffer.add_string buf
        (Printf.sprintf "  root -> n%d [label=\"%s\"];\n" n.Pkg.id
           (weight_label root.Pkg.w)));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_dot mgr e path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_dot mgr e))
