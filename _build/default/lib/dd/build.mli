(** Constructing decision diagrams for states and operations.

    The builders keep everything quasi-reduced: a basis state on [n] qubits
    is a chain of [n] nodes, the identity a chain of [n] matrix nodes, and
    arbitrary (multi-)controlled single-qubit gates are built recursively
    level by level — never by densifying a [2^n] array first. *)

(** [zero_state mgr n] is [|0…0⟩]. *)
val zero_state : Pkg.t -> int -> Pkg.edge

(** [basis_state mgr n k] is [|k⟩]. *)
val basis_state : Pkg.t -> int -> int -> Pkg.edge

(** [from_vec mgr v] encodes a dense vector of length [2^n] (Fig. 1 of the
    paper: the recursive halving of the state vector). *)
val from_vec : Pkg.t -> Qdt_linalg.Vec.t -> Pkg.edge

(** [identity mgr n] is the identity operation on [n] qubits. *)
val identity : Pkg.t -> int -> Pkg.edge

(** [projector_ones mgr n qubits] projects onto the subspace where every
    qubit in [qubits] is |1⟩ (identity on the others). *)
val projector_ones : Pkg.t -> int -> int list -> Pkg.edge

(** [gate mgr ~num_qubits ~controls ~target u] is the matrix DD of the 2×2
    matrix [u] applied to [target] under [controls] (identity when any
    control is |0⟩).  [u] need not be unitary — projectors are used for
    measurement. *)
val gate :
  Pkg.t -> num_qubits:int -> controls:int list -> target:int -> Qdt_linalg.Mat.t ->
  Pkg.edge

(** [swap mgr ~num_qubits ~controls a b] is the (controlled) SWAP DD. *)
val swap : Pkg.t -> num_qubits:int -> controls:int list -> int -> int -> Pkg.edge

(** [instruction mgr ~num_qubits instr] is the matrix DD of a unitary
    circuit instruction.
    @raise Invalid_argument on measurements/resets. *)
val instruction :
  Pkg.t -> num_qubits:int -> Qdt_circuit.Circuit.instruction -> Pkg.edge

(** [circuit_unitary mgr c] multiplies all instruction DDs — the DD
    analogue of {!Qdt_arraysim.Unitary_builder.unitary}. *)
val circuit_unitary : Pkg.t -> Qdt_circuit.Circuit.t -> Pkg.edge
