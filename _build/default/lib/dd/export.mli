(** Graphviz export of decision diagrams.

    Produces DOT text in the style of the paper's Fig. 1b (the web
    visualisation tool of ref [30]): one oval per shared node labelled with
    its qubit, edges annotated with their weights, 0-stubs suppressed. *)

(** [to_dot mgr e] renders the diagram rooted at [e] (vector or matrix). *)
val to_dot : Pkg.t -> Pkg.edge -> string

(** [write_dot mgr e path] writes {!to_dot} output to [path]. *)
val write_dot : Pkg.t -> Pkg.edge -> string -> unit
