(** Approximation of decision-diagram states.

    The idea of Hillmich, Kueng, Markov & Wille (DATE 2020 — ref [12] of
    the paper): a state DD often spends most of its nodes on negligible
    amplitudes; cutting edges whose probability contribution is below a
    threshold shrinks the diagram at a quantifiable fidelity cost.

    The criterion here is per-node: a child edge is cut when
    [|w|² · s(child) < threshold], where [s] is the subtree's squared
    norm; the state is renormalised afterwards. *)

(** [subtree_norms edge] — squared norms of every shared subtree, keyed by
    node id ([s(terminal) = 1]). *)
val subtree_norms : Pkg.edge -> (int, float) Hashtbl.t

(** [prune mgr edge ~threshold] — rebuilt, renormalised edge.
    [threshold = 0.] reproduces the input exactly (hash-consing makes it
    physically equal). *)
val prune : Pkg.t -> Pkg.edge -> threshold:float -> Pkg.edge

(** [prune_state st ~threshold] — apply to a simulation state in place;
    returns the fidelity [|⟨ψ|ψ'⟩|²] between the old and new states. *)
val prune_state : Sim.state -> threshold:float -> float
