examples/zx_opt.mli:
