examples/noise_approx.ml: List Printf Qdt
