examples/scaling.mli:
