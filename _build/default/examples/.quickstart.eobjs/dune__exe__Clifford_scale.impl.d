examples/clifford_scale.ml: List Printf Qdt Random Unix
