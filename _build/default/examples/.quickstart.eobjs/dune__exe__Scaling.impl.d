examples/scaling.ml: List Printf Qdt
