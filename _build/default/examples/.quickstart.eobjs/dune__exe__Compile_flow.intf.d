examples/compile_flow.mli:
