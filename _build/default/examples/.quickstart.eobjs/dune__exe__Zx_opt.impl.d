examples/zx_opt.ml: Float List Printf Qdt
