examples/verify_flow.mli:
