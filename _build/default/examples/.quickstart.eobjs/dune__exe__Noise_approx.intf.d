examples/noise_approx.mli:
