examples/compile_flow.ml: List Printf Qdt
