examples/clifford_scale.mli:
