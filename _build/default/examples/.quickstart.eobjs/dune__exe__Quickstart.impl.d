examples/quickstart.ml: List Printf Qdt
