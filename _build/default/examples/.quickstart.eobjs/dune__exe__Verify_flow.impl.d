examples/verify_flow.ml: List Printf Qdt
