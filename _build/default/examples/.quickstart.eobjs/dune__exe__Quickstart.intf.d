examples/quickstart.mli:
