(* Clifford-dominated simulation (paper refs [11], [40]): the stabilizer
   family of data structures — plain tableaus for measurement statistics,
   CH-form states for phase-exact amplitudes, and stabilizer-rank sums
   for Clifford+T circuits whose cost is exponential in the T-count, not
   the qubit count.

   Run with: dune exec examples/clifford_scale.exe *)

module Circuit = Qdt.Circuit.Circuit
module Generators = Qdt.Circuit.Generators
module Tableau = Qdt.Stabilizer.Tableau
module Ch = Qdt.Stabilizer.Ch_form
module SR = Qdt.Stabilizer.Stabilizer_rank
module Cx = Qdt.Linalg.Cx

let () =
  print_endline "1. Tableaus: hundreds of qubits";
  List.iter
    (fun n ->
      let t0 = Unix.gettimeofday () in
      let t, _ = Tableau.run (Generators.ghz n) in
      let dt = 1000.0 *. (Unix.gettimeofday () -. t0) in
      Printf.printf "  GHZ(%-4d): %8d tableau bytes, %.2f ms\n" n
        (Tableau.memory_bytes t) dt)
    [ 50; 100; 200; 400 ];

  print_endline "";
  print_endline "2. The hidden-shift benchmark is pure Clifford: solved instantly";
  let n = 24 in
  let shift = 0xBEEF land ((1 lsl n) - 1) in
  let t, _ = Tableau.run (Generators.hidden_shift ~shift n) in
  let recovered = ref 0 in
  for q = 0 to n - 1 do
    if Tableau.expectation_z t q = -1 then recovered := !recovered lor (1 lsl q)
  done;
  Printf.printf "  n=%d: planted shift %d, recovered %d (match: %b)\n" n shift !recovered
    (shift = !recovered);

  print_endline "";
  print_endline "3. CH form: amplitudes *with phases* (the tableau only gives magnitudes)";
  let bell = Ch.run Generators.bell in
  Printf.printf "  <00|bell> = %s, <11|bell> = %s\n"
    (Cx.to_string (Ch.amplitude bell 0))
    (Cx.to_string (Ch.amplitude bell 3));
  let sp = Ch.create 1 in
  Ch.h sp 0;
  Ch.s sp 0;
  Printf.printf "  S|+> amplitudes: %s, %s  (note the exact i)\n"
    (Cx.to_string (Ch.amplitude sp 0))
    (Cx.to_string (Ch.amplitude sp 1));

  print_endline "";
  print_endline "4. Stabilizer-rank: Clifford+T at cost 2^t, not 2^n";
  Printf.printf "  %-4s %-10s %-12s %s\n" "t" "branches" "time" "matches arrays";
  List.iter
    (fun wanted_t ->
      let st = Random.State.make [| wanted_t; 7 |] in
      let c = ref (Generators.random_clifford ~seed:wanted_t ~gates:80 10) in
      for _ = 1 to wanted_t do
        c := Circuit.t (Random.State.int st 10) !c;
        c := Circuit.append !c (Generators.random_clifford ~seed:(Random.State.int st 999) ~gates:15 10)
      done;
      let p = SR.prepare !c in
      let t0 = Unix.gettimeofday () in
      let amp = SR.amplitude p 0 in
      let dt = 1000.0 *. (Unix.gettimeofday () -. t0) in
      let exact = Qdt.Arrays.Statevector.amplitude (Qdt.Arrays.Statevector.run_unitary !c) 0 in
      Printf.printf "  %-4d %-10d %8.2f ms   %b\n" (SR.t_count p) (SR.num_branches p) dt
        (Cx.approx_equal ~eps:1e-6 exact amp))
    [ 0; 4; 8; 12 ];
  print_endline "";
  print_endline "Doubling t doubles the work twice over; adding Clifford gates is free."
