(* Compilation flow (experiment E9): take a QFT, route it onto constrained
   coupling maps, optimize, and verify the result — the full design loop
   of the paper's introduction.

   Run with: dune exec examples/compile_flow.exe *)

module Circuit = Qdt.Circuit.Circuit
module Generators = Qdt.Circuit.Generators
module Coupling = Qdt.Compile.Coupling
module Router = Qdt.Compile.Router

let flow name circuit coupling =
  Printf.printf "\n--- %s ---\n" name;
  Printf.printf "original: %d gates, depth %d, %d two-qubit gates\n"
    (Circuit.count_total circuit) (Circuit.depth circuit)
    (Circuit.count_two_qubit circuit);
  let compiled = Qdt.compile ~coupling circuit in
  Printf.printf "compiled: %d gates, depth %d (+%d swaps, -%d gates by peephole)\n"
    (Circuit.count_total compiled.Qdt.circuit)
    (Circuit.depth compiled.Qdt.circuit)
    compiled.Qdt.added_swaps compiled.Qdt.removed_gates;
  Printf.printf "respects coupling: %b\n"
    (Router.respects compiled.Qdt.circuit coupling);
  (* verification (the compiled circuit ends in a permuted layout, so undo
     it before checking, exactly what Router.undo_final_permutation does
     inside route results) *)
  let result = Router.route circuit coupling in
  let restored = Router.undo_final_permutation result in
  if Circuit.num_qubits circuit = Coupling.num_qubits coupling then begin
    let verdicts =
      List.map
        (fun checker -> (Qdt.checker_name checker, Qdt.equivalent ~checker circuit restored))
        [ Qdt.Check_arrays; Qdt.Check_dd; Qdt.Check_dd_alternating; Qdt.Check_simulation ]
    in
    List.iter
      (fun (name, verdict) ->
        Printf.printf "  verify (%s): %s\n" name (Qdt.Verify.Equiv.verdict_to_string verdict))
      verdicts
  end

let () =
  print_endline "Routing the QFT onto constrained topologies";
  flow "QFT(5) on a line" (Generators.qft 5) (Coupling.line 5);
  flow "QFT(5) on a ring" (Generators.qft 5) (Coupling.ring 5);
  flow "QFT(6) on a 2x3 grid" (Generators.qft 6) (Coupling.grid ~rows:2 ~cols:3);
  flow "adder on a line" (Generators.cuccaro_adder 2) (Coupling.line 6);
  flow "GHZ(8) on a line (already linear)" (Generators.ghz 8) (Coupling.line 8);
  print_endline "";
  print_endline "Swap overhead grows with topological distance; the line pays the most.";
  (* overhead comparison table *)
  print_endline "";
  print_endline "QFT(n) swap overhead per topology:";
  print_endline "  n  |  line | ring | grid | full";
  List.iter
    (fun n ->
      let overhead coupling = (Router.route (Generators.qft n) coupling).Router.added_swaps in
      let rows = 2 and cols = (n + 1) / 2 in
      Printf.printf "  %d  | %5d | %4d | %4d | %4d\n" n
        (overhead (Coupling.line n))
        (overhead (Coupling.ring n))
        (overhead (Coupling.grid ~rows ~cols))
        (overhead (Coupling.fully_connected n)))
    [ 4; 6; 8 ]
