(* Noise-aware and approximate simulation (paper refs [12], [13]):
   quantum trajectories against exact density matrices, and fidelity-
   controlled decision-diagram pruning.

   Run with: dune exec examples/noise_approx.exe *)

module Generators = Qdt.Circuit.Generators
module Trajectories = Qdt.Arrays.Trajectories
module Density = Qdt.Arrays.Density

let () =
  print_endline "1. Quantum trajectories vs density matrices (GHZ(4), depolarizing)";
  print_endline "       p |  100 trajectories | exact (density matrix)";
  let c = Generators.ghz 4 in
  let ideal = Qdt.Arrays.Statevector.run_unitary c in
  List.iter
    (fun p ->
      let traj =
        Trajectories.average_fidelity ~seed:1 ~noise:(Trajectories.depolarizing p)
          ~trajectories:100 c
      in
      let dm = Density.run ~noise:(fun () -> Density.depolarizing p) c in
      Printf.printf "  %6.3f |            %6.4f | %6.4f\n" p traj
        (Density.fidelity_to_pure dm ideal))
    [ 0.0; 0.02; 0.05; 0.1; 0.2 ];
  print_endline "  (a trajectory is one state vector; the density matrix squares the cost)";

  print_endline "";
  print_endline "2. Different channels, different damage (p = 0.05 everywhere)";
  List.iter
    (fun (name, noise) ->
      let f = Trajectories.average_fidelity ~seed:2 ~noise ~trajectories:120 c in
      Printf.printf "  %-20s fidelity %.4f\n" name f)
    [
      ("bit flip", Trajectories.bit_flip 0.05);
      ("phase damping", Trajectories.phase_damping 0.05);
      ("amplitude damping", Trajectories.amplitude_damping 0.05);
      ("depolarizing", Trajectories.depolarizing 0.05);
    ];

  print_endline "";
  print_endline "3. Approximate DD simulation: cut the negligible branches";
  let grover = Generators.grover ~marked:345 10 in
  List.iter
    (fun threshold ->
      let st = Qdt.Dd.Sim.run_unitary grover in
      let before = Qdt.Dd.Sim.node_count st in
      let fidelity = Qdt.Dd.Approx.prune_state st ~threshold in
      Printf.printf "  threshold %.0e: %3d -> %3d nodes, fidelity %.6f, p(marked) %.4f\n"
        threshold before (Qdt.Dd.Sim.node_count st) fidelity
        (Qdt.Dd.Sim.probability st 345))
    [ 1e-6; 1e-4; 1e-3 ];
  print_endline "  Grover's tail amplitudes carry almost no probability: half the";
  print_endline "  nodes go at a 5e-4 fidelity cost (\"as accurate as needed\")."
