(* Verification flow (experiment E10): all equivalence-checking methods on
   correct compilations and on injected-error mutants.

   Run with: dune exec examples/verify_flow.exe *)

module Circuit = Qdt.Circuit.Circuit
module Generators = Qdt.Circuit.Generators
module Equiv = Qdt.Verify.Equiv
module Mutate = Qdt.Verify.Mutate

let check_all c1 c2 =
  List.map
    (fun checker -> (Qdt.checker_name checker, Qdt.equivalent ~checker c1 c2))
    Qdt.all_checkers

let print_verdicts label verdicts =
  Printf.printf "%-34s" label;
  List.iter
    (fun (name, verdict) ->
      Printf.printf " %s=%-14s" name (Equiv.verdict_to_string verdict))
    verdicts;
  print_newline ()

let () =
  let base = Generators.qft 4 in
  print_endline "Equivalence checking a compiled QFT(4) (correct compilation):";
  let compiled = Qdt.compile ~coupling:(Qdt.Compile.Coupling.line 4) base in
  let restored =
    Qdt.Compile.Router.undo_final_permutation
      (Qdt.Compile.Router.route base (Qdt.Compile.Coupling.line 4))
  in
  ignore compiled;
  print_verdicts "  compiled-and-restored vs original" (check_all base restored);

  print_endline "";
  print_endline "Mutation detection (one injected error each):";
  List.iter
    (fun seed ->
      let m = Mutate.random ~seed base in
      print_verdicts (Printf.sprintf "  %s" m.Mutate.description)
        (check_all base m.Mutate.circuit))
    [ 0; 1; 2; 3; 4; 5 ];

  print_endline "";
  print_endline "Notes:";
  print_endline "- arrays / dd / dd-alternating are exact deciders;";
  print_endline "- zx certifies equivalence but may answer 'inconclusive';";
  print_endline "- simulation gives counterexamples quickly but can only ever";
  print_endline "  report 'inconclusive' for equivalent circuits.";

  (* A tiny perturbation below simulation noise: only exact methods see it. *)
  print_endline "";
  print_endline "A 1e-4-radian angle perturbation is still caught by the exact methods:";
  let m = Mutate.perturb_angle ~seed:2 ~delta:1e-4 base in
  print_verdicts (Printf.sprintf "  %s" m.Mutate.description)
    (check_all base m.Mutate.circuit)
