(* ZX-calculus optimization (experiment E8): T-count reduction by full
   graph-like simplification, in the spirit of Kissinger & van de Wetering
   (ref [39] of the paper).

   Run with: dune exec examples/zx_opt.exe *)

module Circuit = Qdt.Circuit.Circuit
module Generators = Qdt.Circuit.Generators
module Translate = Qdt.Zx.Translate
module Simplify = Qdt.Zx.Simplify
module Diagram = Qdt.Zx.Diagram

let reduce name circuit =
  let d = Translate.of_circuit circuit in
  let spiders_before = List.length (Diagram.spiders d) in
  let t_before = Simplify.t_count d in
  let report = Simplify.full_reduce d in
  let spiders_after = List.length (Diagram.spiders d) in
  let t_after = Simplify.t_count d in
  Printf.printf "%-28s spiders %4d -> %-4d  T-count %3d -> %-3d  (lcomp %d, pivot %d, rounds %d)\n"
    name spiders_before spiders_after t_before t_after
    report.Simplify.local_complementations report.Simplify.pivots report.Simplify.rounds;
  (t_before, t_after)

let () =
  print_endline "ZX simplification: spider and T-count reduction";
  print_endline "";
  ignore (reduce "bell" Generators.bell);
  ignore (reduce "qft(4)" (Generators.qft 4));
  ignore (reduce "toffoli (7 T gates)" Circuit.(empty 3 |> ccx 2 1 0));
  ignore (reduce "toffoli;toffoli (= identity)" Circuit.(empty 3 |> ccx 2 1 0 |> ccx 2 1 0));
  print_endline "";
  print_endline "Random Clifford+T circuits (n=5, 150 gates):";
  let totals = ref (0, 0) in
  List.iter
    (fun seed ->
      let c = Generators.random_clifford_t ~seed ~gates:150 ~t_fraction:0.3 5 in
      let before, after = reduce (Printf.sprintf "  seed %d" seed) c in
      let b, a = !totals in
      totals := (b + before, a + after))
    [ 1; 2; 3; 4; 5 ];
  let before, after = !totals in
  Printf.printf "\ntotal T-count: %d -> %d (%.1f%% reduction)\n" before after
    (100.0 *. Float.of_int (before - after) /. Float.max 1.0 (Float.of_int before));
  print_endline "";
  print_endline "Equivalence of optimized-away diagrams is certified by reduction to";
  print_endline "bare wires; see examples/verify_flow.exe for the full comparison."
