(* Memory scaling (experiment E5): the Section II claim that array-based
   representations grow exponentially (practical limit < 50 qubits) while
   decision diagrams stay polynomial for structured states and tensor
   networks stay linear in the circuit.

   Run with: dune exec examples/scaling.exe *)

module Generators = Qdt.Circuit.Generators

let row n =
  let ghz = Generators.ghz n in
  let array_bytes = 16 * (1 lsl n) in
  let dd = Qdt.Dd.Sim.run_unitary ghz in
  let dd_nodes = Qdt.Dd.Sim.node_count dd in
  let dd_bytes = Qdt.Dd.Sim.memory_bytes dd in
  let tn_bytes = Qdt.Tensornet.Circuit_tn.memory_bytes (Qdt.Tensornet.Circuit_tn.of_circuit ghz) in
  let mps = Qdt.Tensornet.Mps.run ghz in
  let mps_bytes = Qdt.Tensornet.Mps.memory_bytes mps in
  Printf.printf "%4d | %14d | %8d %10d | %10d | %10d (chi=%d)\n" n array_bytes dd_nodes
    dd_bytes tn_bytes mps_bytes
    (Qdt.Tensornet.Mps.max_bond_dim mps)

let () =
  print_endline "GHZ(n): memory footprint of the four representations (bytes)";
  print_endline "   n |   array bytes | DD nodes   DD bytes |   TN bytes |  MPS bytes";
  print_endline "-----+---------------+---------------------+------------+-----------";
  List.iter row [ 2; 4; 6; 8; 10; 12; 14; 16; 18; 20 ];
  print_endline "";
  print_endline "The array column doubles per qubit; every other column is (sub)linear:";
  print_endline "exactly the redundancy-exploitation story of Sections II-IV.";

  (* W states: still structured, DD slightly bigger but polynomial. *)
  print_endline "";
  print_endline "W(n): DD nodes stay linear too";
  List.iter
    (fun n ->
      let dd = Qdt.Dd.Sim.run_unitary (Generators.w_state n) in
      Printf.printf "  n=%-3d nodes=%d\n" n (Qdt.Dd.Sim.node_count dd))
    [ 4; 8; 12; 16 ];

  (* Random states: no structure, DD falls back to exponential — the
     trade-off the paper's conclusion warns about. *)
  print_endline "";
  print_endline "random circuits: without redundancy the DD grows exponentially";
  List.iter
    (fun n ->
      let c = Generators.random_circuit ~seed:1 ~depth:4 n in
      let dd = Qdt.Dd.Sim.run_unitary c in
      Printf.printf "  n=%-3d nodes=%-6d (array amplitudes: %d)\n" n
        (Qdt.Dd.Sim.node_count dd) (1 lsl n))
    [ 4; 6; 8; 10; 12 ]
