(* Portfolio dispatch: the complementarity argument of the paper made
   executable.  The Auto backend inspects each circuit (Clifford-ness,
   two-qubit-gate locality, T-count, width) and routes it to the data
   structure the Guidelines-paper heuristics favour, reporting the choice
   and the unified telemetry record.

   Run with: dune exec examples/portfolio.exe *)

module Circuit = Qdt.Circuit.Circuit
module Generators = Qdt.Circuit.Generators

let nn_chain n =
  let c = ref (Circuit.empty n) in
  for q = 0 to n - 1 do
    c := Circuit.ry 0.3 q !c
  done;
  for q = 0 to n - 2 do
    c := Circuit.cx q (q + 1) !c
  done;
  !c

let workloads =
  [
    ("pure Clifford, 50 qubits", Generators.random_clifford ~seed:7 ~gates:250 50);
    ("nearest-neighbour chain, 16 qubits", nn_chain 16);
    ("Clifford+T (t-fraction 0.3), 5 qubits",
     Generators.random_clifford_t ~seed:7 ~gates:100 ~t_fraction:0.3 5);
    ("QFT, 10 qubits", Generators.qft 10);
    ("GHZ, 20 qubits", Generators.ghz 20);
  ]

let () =
  let (module Auto : Qdt.Backend.BACKEND) = Option.get (Qdt.Registry.find "auto") in
  print_endline "Auto-dispatch: 1000 shots per workload through the portfolio backend";
  List.iter
    (fun (name, c) ->
      Printf.printf "\n%s\n" name;
      match Auto.sample ~seed:1 ~shots:1000 c with
      | Ok (counts, stats) ->
          Printf.printf "  distinct outcomes: %d\n" (List.length counts);
          Printf.printf "  %s\n" (Qdt.Backend.stats_to_string stats)
      | Error e -> Printf.printf "  %s\n" (Qdt.Backend.error_to_string e))
    workloads;

  print_endline "\nCapability matrix (what the dispatcher filters on):";
  List.iter
    (fun (module B : Qdt.Backend.BACKEND) ->
      let c = B.capabilities in
      Printf.printf "  %-18s state=%b amp=%b sample=%b <Z>=%b measure=%b%s\n" B.name
        c.Qdt.Backend.full_state c.Qdt.Backend.amplitude c.Qdt.Backend.sample
        c.Qdt.Backend.expectation_z c.Qdt.Backend.supports_nonunitary
        (if c.Qdt.Backend.clifford_only then " (Clifford only)" else ""))
    (Qdt.Registry.all ())
