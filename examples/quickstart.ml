(* Quickstart: the paper's running example — the Bell state — carried
   through all four data structures (Figs. 1–3, Examples 1–5).

   Run with: dune exec examples/quickstart.exe *)

module Circuit = Qdt.Circuit.Circuit
module Generators = Qdt.Circuit.Generators
module Vec = Qdt.Linalg.Vec
module Cx = Qdt.Linalg.Cx

let section title =
  Printf.printf "\n=== %s ===\n" title

let () =
  let bell = Generators.bell in
  section "The Bell circuit (H on q1, then CNOT q1 -> q0)";
  print_string (Qdt.Circuit.Draw.render bell);

  (* -------------------------------------------------------------- *)
  section "1. Arrays (Section II, Example 1)";
  let sv = Qdt.Arrays.Statevector.run_unitary bell in
  Printf.printf "state vector (2^2 = 4 amplitudes, %d bytes):\n"
    (Qdt.Arrays.Statevector.memory_bytes sv);
  Vec.iteri
    (fun k amp -> Printf.printf "  alpha_%02d = %s\n" k (Cx.to_string amp))
    (Qdt.Arrays.Statevector.to_vec sv);
  Printf.printf "measuring returns |00> or |11>, each with probability %.2f\n"
    (Qdt.Arrays.Statevector.probability sv 0);

  (* -------------------------------------------------------------- *)
  section "2. Decision diagrams (Section III, Fig. 1)";
  let dd = Qdt.Dd.Sim.run_unitary bell in
  Printf.printf "the same state as a DD: %d nodes (vs %d amplitudes)\n"
    (Qdt.Dd.Sim.node_count dd) 4;
  Printf.printf "amplitude of |00> reconstructed from edge weights: %s\n"
    (Cx.to_string (Qdt.Dd.Sim.amplitude dd 0));
  Printf.printf "Graphviz DOT of the diagram (Fig. 1b):\n%s"
    (Qdt.Dd.Export.to_dot (Qdt.Dd.Sim.manager dd) (Qdt.Dd.Sim.root dd));

  (* -------------------------------------------------------------- *)
  section "3. Tensor networks (Section IV, Fig. 2, Examples 3-4)";
  let tn = Qdt.Tensornet.Circuit_tn.of_circuit bell in
  Printf.printf "network of %d tensors, %d bytes (linear in gates)\n"
    (Qdt.Tensornet.Network.tensor_count (Qdt.Tensornet.Circuit_tn.network tn))
    (Qdt.Tensornet.Circuit_tn.memory_bytes tn);
  let amp00, stats = Qdt.Tensornet.Circuit_tn.amplitude tn 0 in
  Printf.printf "single amplitude <00|C|00> by adding output 'bubbles': %s\n"
    (Cx.to_string amp00);
  Printf.printf "  (%d scalar multiplications, peak tensor size %d)\n"
    stats.Qdt.Tensornet.Network.multiplications stats.Qdt.Tensornet.Network.peak_tensor_size;

  (* -------------------------------------------------------------- *)
  section "4. ZX-calculus (Section V, Fig. 3, Example 5)";
  let d = Qdt.Zx.Translate.of_circuit bell in
  Printf.printf "Bell circuit as a ZX-diagram: %d spiders, %d edges\n"
    (List.length (Qdt.Zx.Diagram.spiders d))
    (Qdt.Zx.Diagram.num_edges d);
  let report = Qdt.Zx.Simplify.full_reduce d in
  Printf.printf "after graph-like conversion + simplification: %d spiders (%d fusions)\n"
    (List.length (Qdt.Zx.Diagram.spiders d))
    report.Qdt.Zx.Simplify.fusions;
  let equal = Qdt.Verify.Equiv.zx bell bell in
  Printf.printf "ZX equivalence check of the circuit against itself: %s\n"
    (Qdt.Verify.Equiv.verdict_to_string equal);

  (* -------------------------------------------------------------- *)
  section "Every registered backend that can build the state agrees";
  List.iter
    (fun (module B : Qdt.Backend.BACKEND) ->
      match B.simulate bell with
      | Ok (state, stats) ->
          Printf.printf "  %-18s alpha_00 = %-22s (%.1f us)\n" B.name
            (Cx.to_string (Vec.get state 0))
            (1e6 *. stats.Qdt.Backend.wall_s)
      | Error e -> Printf.printf "  %-18s %s\n" B.name (Qdt.Backend.error_to_string e))
    (Qdt.Registry.all ())
