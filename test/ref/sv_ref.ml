(* Boxed reference statevector (pre-unboxing), with the observability
   instrumentation stripped so baseline runs do not pollute the metric
   registry.  Gate matrices still arrive as (unboxed) Qdt_linalg.Mat.t;
   entries are read once per gate via Mat.get, which is the API boundary.
   See vec_ref.ml. *)
open Qdt_linalg
open Qdt_circuit

type t = { n : int; amps : Cx.t array }

let create n =
  if n < 1 || n > 26 then invalid_arg "Sv_ref.create: unsupported qubit count";
  let amps = Array.make (1 lsl n) Cx.zero in
  amps.(0) <- Cx.one;
  { n; amps }

let num_qubits sv = sv.n
let amplitude sv k = sv.amps.(k)
let probability sv k = Cx.norm2 sv.amps.(k)
let probabilities sv = Array.map Cx.norm2 sv.amps

let norm sv =
  let acc = ref 0.0 in
  Array.iter (fun z -> acc := !acc +. Cx.norm2 z) sv.amps;
  Float.sqrt !acc

let control_mask controls =
  List.fold_left (fun mask q -> mask lor (1 lsl q)) 0 controls

let apply_matrix sv m ~controls ~target =
  if Mat.rows m <> 2 || Mat.cols m <> 2 then
    invalid_arg "Sv_ref.apply_matrix: need a 2x2 matrix";
  let u00 = Mat.get m 0 0 and u01 = Mat.get m 0 1 in
  let u10 = Mat.get m 1 0 and u11 = Mat.get m 1 1 in
  let stride = 1 lsl target in
  let cmask = control_mask controls in
  let amps = sv.amps in
  let size = Array.length amps in
  let exact_zero (z : Cx.t) = z.Cx.re = 0.0 && z.Cx.im = 0.0 in
  if exact_zero u01 && exact_zero u10 then begin
    let one_like (z : Cx.t) = z.Cx.re = 1.0 && z.Cx.im = 0.0 in
    let skip00 = one_like u00 and skip11 = one_like u11 in
    for k = 0 to size - 1 do
      if k land cmask = cmask then
        if k land stride = 0 then begin
          if not skip00 then amps.(k) <- Cx.mul u00 amps.(k)
        end
        else if not skip11 then amps.(k) <- Cx.mul u11 amps.(k)
    done
  end
  else if exact_zero u00 && exact_zero u11 then begin
    let k = ref 0 in
    while !k < size do
      if !k land stride = 0 && !k land cmask = cmask then begin
        let a0 = amps.(!k) and a1 = amps.(!k + stride) in
        amps.(!k) <- Cx.mul u01 a1;
        amps.(!k + stride) <- Cx.mul u10 a0
      end;
      incr k
    done
  end
  else begin
    let k = ref 0 in
    while !k < size do
      if !k land stride = 0 && !k land cmask = cmask then begin
        let a0 = amps.(!k) and a1 = amps.(!k + stride) in
        amps.(!k) <- Cx.add (Cx.mul u00 a0) (Cx.mul u01 a1);
        amps.(!k + stride) <- Cx.add (Cx.mul u10 a0) (Cx.mul u11 a1)
      end;
      incr k
    done
  end

let apply_gate sv gate ~controls ~target =
  apply_matrix sv (Gate.matrix gate) ~controls ~target

let apply_swap sv ~controls a b =
  let cmask = control_mask controls in
  let ba = 1 lsl a and bb = 1 lsl b in
  let amps = sv.amps in
  for k = 0 to Array.length amps - 1 do
    if k land ba <> 0 && k land bb = 0 && k land cmask = cmask then begin
      let partner = k lxor ba lxor bb in
      let tmp = amps.(k) in
      amps.(k) <- amps.(partner);
      amps.(partner) <- tmp
    end
  done

let renormalise sv =
  let n = norm sv in
  if n < 1e-14 then invalid_arg "Sv_ref: state collapsed to zero norm";
  let inv = 1.0 /. n in
  Array.iteri (fun k z -> sv.amps.(k) <- Cx.scale inv z) sv.amps

let project sv q bit =
  let mask = 1 lsl q in
  Array.iteri
    (fun k _z ->
      let has = if k land mask <> 0 then 1 else 0 in
      if has <> bit then sv.amps.(k) <- Cx.zero)
    sv.amps

let prob_of_bit sv q bit =
  let mask = 1 lsl q in
  let acc = ref 0.0 in
  Array.iteri
    (fun k z ->
      let has = if k land mask <> 0 then 1 else 0 in
      if has = bit then acc := !acc +. Cx.norm2 z)
    sv.amps;
  !acc

let measure_qubit sv ~rng q =
  let p1 = prob_of_bit sv q 1 in
  let bit = if Random.State.float rng 1.0 < p1 then 1 else 0 in
  project sv q bit;
  renormalise sv;
  bit

let rec apply_instruction sv instr ~rng ~clbits =
  match instr with
  | Circuit.If { value; instr } ->
      if Circuit.creg_value clbits = value then apply_instruction sv instr ~rng ~clbits
  | Circuit.Apply { gate; controls; target } -> apply_gate sv gate ~controls ~target
  | Circuit.Swap { controls; a; b } -> apply_swap sv ~controls a b
  | Circuit.Measure { qubit; clbit } -> clbits.(clbit) <- measure_qubit sv ~rng qubit
  | Circuit.Reset q ->
      let bit = measure_qubit sv ~rng q in
      if bit = 1 then apply_gate sv Gate.X ~controls:[] ~target:q
  | Circuit.Barrier _ -> ()

let run ?(seed = 0) circuit =
  let sv = create (Circuit.num_qubits circuit) in
  let rng = Random.State.make [| seed |] in
  let clbits = Array.make (max 1 (Circuit.num_clbits circuit)) 0 in
  List.iter
    (fun instr -> apply_instruction sv instr ~rng ~clbits)
    (Circuit.instructions circuit);
  (sv, clbits)

let run_unitary circuit =
  if not (Circuit.is_unitary_only circuit) then
    invalid_arg "Sv_ref.run_unitary: circuit measures or resets";
  fst (run circuit)

let expectation_z sv q =
  let mask = 1 lsl q in
  let acc = ref 0.0 in
  Array.iteri
    (fun k z ->
      let sign = if k land mask = 0 then 1.0 else -1.0 in
      acc := !acc +. (sign *. Cx.norm2 z))
    sv.amps;
  !acc

let memory_bytes sv = 16 * Array.length sv.amps
