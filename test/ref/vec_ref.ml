(* Boxed reference implementation of Vec (pre-unboxing), retained for
   cross-validation tests and the e18 boxed baselines.  Do not use in
   production code. *)
open Qdt_linalg

type t = Cx.t array

let create len = Array.make len Cx.zero
let init = Array.init
let of_array = Array.copy
let to_array = Array.copy

let basis ~dim k =
  if k < 0 || k >= dim then invalid_arg "Vec.basis: index out of range";
  let v = create dim in
  v.(k) <- Cx.one;
  v

let length = Array.length
let get = Array.get
let set = Array.set
let copy = Array.copy
let map = Array.map
let iteri = Array.iteri

let binop op a b =
  if Array.length a <> Array.length b then
    invalid_arg "Vec: length mismatch";
  Array.init (Array.length a) (fun k -> op a.(k) b.(k))

let add = binop Cx.add
let sub = binop Cx.sub
let scale s = Array.map (Cx.mul s)

let dot a b =
  if Array.length a <> Array.length b then invalid_arg "Vec.dot: length mismatch";
  let acc = ref Cx.zero in
  for k = 0 to Array.length a - 1 do
    acc := Cx.mul_add !acc (Cx.conj a.(k)) b.(k)
  done;
  !acc

let norm v =
  let acc = ref 0.0 in
  Array.iter (fun z -> acc := !acc +. Cx.norm2 z) v;
  Float.sqrt !acc

let normalize v =
  let n = norm v in
  if n < 1e-14 then invalid_arg "Vec.normalize: zero vector";
  scale (Cx.of_float (1.0 /. n)) v

let kron a b =
  let la = Array.length a and lb = Array.length b in
  Array.init (la * lb) (fun k -> Cx.mul a.(k / lb) b.(k mod lb))

let probabilities = Array.map Cx.norm2

let approx_equal ?eps a b =
  Array.length a = Array.length b
  && (let ok = ref true in
      Array.iteri (fun k z -> if not (Cx.approx_equal ?eps z b.(k)) then ok := false) a;
      !ok)

let equal_up_to_global_phase ?(eps = 1e-8) a b =
  Array.length a = Array.length b
  &&
  (* Align on the largest-magnitude entry of [a] to avoid dividing by a
     numerically tiny amplitude. *)
  let pivot = ref (-1) and best = ref 0.0 in
  Array.iteri
    (fun k z ->
      let m = Cx.norm2 z in
      if m > !best then begin best := m; pivot := k end)
    a;
  if !pivot < 0 then norm b <= eps
  else if Cx.norm2 b.(!pivot) < 1e-20 then false
  else
    let factor = Cx.div a.(!pivot) b.(!pivot) in
    approx_equal ~eps a (scale factor b)

let fidelity a b =
  let d = dot a b in
  Cx.norm2 d

let memory_bytes v = 16 * Array.length v

let pp ppf v =
  Format.fprintf ppf "@[<hov 1>[";
  Array.iteri
    (fun k z ->
      if k > 0 then Format.fprintf ppf ";@ ";
      Cx.pp ppf z)
    v;
  Format.fprintf ppf "]@]"
