(* Boxed reference implementation of Mat (pre-unboxing); see vec_ref.ml. *)
open Qdt_linalg

type t = { rows : int; cols : int; data : Cx.t array }

let create rows cols = { rows; cols; data = Array.make (rows * cols) Cx.zero }

let init rows cols f =
  { rows; cols; data = Array.init (rows * cols) (fun k -> f (k / cols) (k mod cols)) }

let identity n = init n n (fun r c -> if r = c then Cx.one else Cx.zero)

let of_rows rows_arr =
  let rows = Array.length rows_arr in
  if rows = 0 then invalid_arg "Mat.of_rows: empty";
  let cols = Array.length rows_arr.(0) in
  Array.iter
    (fun row -> if Array.length row <> cols then invalid_arg "Mat.of_rows: ragged rows")
    rows_arr;
  init rows cols (fun r c -> rows_arr.(r).(c))

let rows m = m.rows
let cols m = m.cols
let get m r c = m.data.((r * m.cols) + c)
let set m r c z = m.data.((r * m.cols) + c) <- z
let to_rows m = Array.init m.rows (fun r -> Array.init m.cols (fun c -> get m r c))
let copy m = { m with data = Array.copy m.data }

let binop op a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg "Mat: shape mismatch";
  { a with data = Array.init (Array.length a.data) (fun k -> op a.data.(k) b.data.(k)) }

let add = binop Cx.add
let sub = binop Cx.sub
let scale s m = { m with data = Array.map (Cx.mul s) m.data }

let mul a b =
  if a.cols <> b.rows then invalid_arg "Mat.mul: shape mismatch";
  let out = create a.rows b.cols in
  for r = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = a.data.((r * a.cols) + k) in
      if not (Cx.is_zero aik) then
        for c = 0 to b.cols - 1 do
          out.data.((r * b.cols) + c) <-
            Cx.mul_add out.data.((r * b.cols) + c) aik b.data.((k * b.cols) + c)
        done
    done
  done;
  out

let mul_vec m v =
  if m.cols <> Vec_ref.length v then invalid_arg "Mat.mul_vec: shape mismatch";
  Vec_ref.init m.rows (fun r ->
      let acc = ref Cx.zero in
      for c = 0 to m.cols - 1 do
        acc := Cx.mul_add !acc m.data.((r * m.cols) + c) (Vec_ref.get v c)
      done;
      !acc)

let transpose m = init m.cols m.rows (fun r c -> get m c r)
let dagger m = init m.cols m.rows (fun r c -> Cx.conj (get m c r))

let kron a b =
  init (a.rows * b.rows) (a.cols * b.cols) (fun r c ->
      Cx.mul (get a (r / b.rows) (c / b.cols)) (get b (r mod b.rows) (c mod b.cols)))

let trace m =
  let n = min m.rows m.cols in
  let acc = ref Cx.zero in
  for k = 0 to n - 1 do
    acc := Cx.add !acc (get m k k)
  done;
  !acc

let approx_equal ?eps a b =
  a.rows = b.rows && a.cols = b.cols
  && (let ok = ref true in
      Array.iteri
        (fun k z -> if not (Cx.approx_equal ?eps z b.data.(k)) then ok := false)
        a.data;
      !ok)

let is_unitary ?(eps = 1e-9) m =
  m.rows = m.cols && approx_equal ~eps (mul (dagger m) m) (identity m.rows)

let hilbert_schmidt a b = trace (mul (dagger a) b)

let equal_up_to_global_phase ?(eps = 1e-8) a b =
  a.rows = b.rows && a.cols = b.cols
  &&
  let pivot = ref (-1) and best = ref 0.0 in
  Array.iteri
    (fun k z ->
      let m2 = Cx.norm2 z in
      if m2 > !best then begin best := m2; pivot := k end)
    a.data;
  if !pivot < 0 then
    Array.for_all (fun z -> Cx.is_zero ~eps z) b.data
  else if Cx.norm2 b.data.(!pivot) < 1e-20 then false
  else
    let factor = Cx.div a.data.(!pivot) b.data.(!pivot) in
    approx_equal ~eps a (scale factor b)

let frobenius_distance a b =
  let d = sub a b in
  let acc = ref 0.0 in
  Array.iter (fun z -> acc := !acc +. Cx.norm2 z) d.data;
  Float.sqrt !acc

let memory_bytes m = 16 * Array.length m.data

let pp ppf m =
  Format.fprintf ppf "@[<v 0>";
  for r = 0 to m.rows - 1 do
    if r > 0 then Format.fprintf ppf "@,";
    Format.fprintf ppf "@[<hov 1>[";
    for c = 0 to m.cols - 1 do
      if c > 0 then Format.fprintf ppf ";@ ";
      Cx.pp ppf (get m r c)
    done;
    Format.fprintf ppf "]@]"
  done;
  Format.fprintf ppf "@]"
