(* Boxed reference implementation of Svd (pre-unboxing); see vec_ref.ml. *)
open Qdt_linalg

type decomposition = { u : Mat_ref.t; sigma : float array; vdag : Mat_ref.t }

(* One-sided Jacobi: right-multiply [a] by unitary plane rotations until its
   columns are pairwise orthogonal.  The rotations are accumulated into [v];
   on convergence the column norms of [a] are the singular values, the
   normalised columns form [u], and [vdag = v†]. *)

let column_dot a p q =
  (* ⟨a_p | a_q⟩ with conjugation on the first argument. *)
  let acc = ref Cx.zero in
  for r = 0 to Mat_ref.rows a - 1 do
    acc := Cx.mul_add !acc (Cx.conj (Mat_ref.get a r p)) (Mat_ref.get a r q)
  done;
  !acc

let rotate_columns m p q ~cs ~sn_pq ~sn_qp =
  (* col_p ← cs·col_p + sn_pq·col_q ; col_q ← sn_qp·col_p + cs·col_q *)
  let ccs = Cx.of_float cs in
  for r = 0 to Mat_ref.rows m - 1 do
    let vp = Mat_ref.get m r p and vq = Mat_ref.get m r q in
    Mat_ref.set m r p (Cx.add (Cx.mul ccs vp) (Cx.mul sn_pq vq));
    Mat_ref.set m r q (Cx.add (Cx.mul sn_qp vp) (Cx.mul ccs vq))
  done

let jacobi_sweeps a v =
  let n = Mat_ref.cols a in
  let tol = 1e-14 in
  let max_sweeps = 60 in
  let converged = ref false in
  let sweep = ref 0 in
  while (not !converged) && !sweep < max_sweeps do
    incr sweep;
    converged := true;
    for p = 0 to n - 2 do
      for q = p + 1 to n - 1 do
        let alpha = (column_dot a p p).Cx.re in
        let beta = (column_dot a q q).Cx.re in
        let gamma = column_dot a p q in
        let g = Cx.norm gamma in
        if g > tol *. Float.sqrt (alpha *. beta) && g > 1e-300 then begin
          converged := false;
          (* Phase that makes the off-diagonal real positive. *)
          let phi = Cx.phase gamma in
          let tau = (alpha -. beta) /. (2.0 *. g) in
          let t =
            let s = if tau >= 0.0 then 1.0 else -1.0 in
            s /. (Float.abs tau +. Float.sqrt (1.0 +. (tau *. tau)))
          in
          let cs = 1.0 /. Float.sqrt (1.0 +. (t *. t)) in
          let sn = t *. cs in
          (* J = [[cs, -e^{iφ}·sn], [e^{-iφ}·sn, cs]] applied on the right:
             col_p ← cs·col_p + e^{-iφ}·sn·col_q
             col_q ← -e^{iφ}·sn·col_p + cs·col_q *)
          let e_m = Cx.exp_i (-.phi) and e_p = Cx.exp_i phi in
          let sn_pq = Cx.scale sn e_m in
          let sn_qp = Cx.scale (-.sn) e_p in
          rotate_columns a p q ~cs ~sn_pq ~sn_qp;
          rotate_columns v p q ~cs ~sn_pq ~sn_qp
        end
      done
    done
  done

let decompose_tall a =
  let m = Mat_ref.rows a and n = Mat_ref.cols a in
  let work = Mat_ref.copy a in
  let v = Mat_ref.identity n in
  jacobi_sweeps work v;
  let norms =
    Array.init n (fun j ->
        let acc = ref 0.0 in
        for r = 0 to m - 1 do
          acc := !acc +. Cx.norm2 (Mat_ref.get work r j)
        done;
        Float.sqrt !acc)
  in
  let order = Array.init n (fun j -> j) in
  Array.sort (fun i j -> Float.compare norms.(j) norms.(i)) order;
  let sigma = Array.map (fun j -> norms.(j)) order in
  let u =
    Mat_ref.init m n (fun r c ->
        let j = order.(c) in
        if norms.(j) > 1e-300 then Cx.scale (1.0 /. norms.(j)) (Mat_ref.get work r j)
        else Cx.zero)
  in
  let vdag = Mat_ref.init n n (fun r c -> Cx.conj (Mat_ref.get v c order.(r))) in
  { u; sigma; vdag }

let decompose a =
  if Mat_ref.rows a >= Mat_ref.cols a then decompose_tall a
  else
    (* SVD of A† and swap the factors: A = (V Σ U†)† = U Σ V†. *)
    let d = decompose_tall (Mat_ref.dagger a) in
    { u = Mat_ref.dagger d.vdag; sigma = d.sigma; vdag = Mat_ref.dagger d.u }

let truncate ~max_rank ~cutoff d =
  let r = Array.length d.sigma in
  let total = Array.fold_left (fun acc s -> acc +. (s *. s)) 0.0 d.sigma in
  let threshold = cutoff *. Float.sqrt (Float.max total 1e-300) in
  let keep = ref 0 in
  while
    !keep < r && !keep < max_rank && d.sigma.(!keep) > threshold
  do
    incr keep
  done;
  let k = max 1 !keep in
  let k = min k r in
  let dropped = ref 0.0 in
  for j = k to r - 1 do
    dropped := !dropped +. (d.sigma.(j) *. d.sigma.(j))
  done;
  let u = Mat_ref.init (Mat_ref.rows d.u) k (fun row col -> Mat_ref.get d.u row col) in
  let vdag = Mat_ref.init k (Mat_ref.cols d.vdag) (fun row col -> Mat_ref.get d.vdag row col) in
  ({ u; sigma = Array.sub d.sigma 0 k; vdag }, !dropped)

let reconstruct d =
  let k = Array.length d.sigma in
  let scaled =
    Mat_ref.init (Mat_ref.rows d.u) k (fun r c -> Cx.scale d.sigma.(c) (Mat_ref.get d.u r c))
  in
  Mat_ref.mul scaled d.vdag
