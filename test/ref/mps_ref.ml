(* Boxed reference MPS simulator (pre-unboxing), using the boxed
   Mat_ref/Svd_ref stack for its theta/SVD path so the e18 baseline
   measures the old allocation behaviour end to end.  Gate matrices
   arrive as (unboxed) Qdt_linalg.Mat.t and are read entrywise via
   Mat.get at the boundary.  Observability instrumentation stripped;
   see sv_ref.ml. *)
open Qdt_linalg
open Qdt_circuit

(* Site tensor A[l][p][r]: left bond, physical bit, right bond; stored
   row-major as data.((l*2 + p) * dr + r). *)
type site = { dl : int; dr : int; data : Cx.t array }

type t = {
  n : int;
  sites : site array;
  mutable dropped : float;
}

let site_get s l p r = s.data.((((l * 2) + p) * s.dr) + r)

let create n =
  if n < 1 then invalid_arg "Mps_ref.create: need n >= 1";
  let site0 =
    let data = Array.make 2 Cx.zero in
    data.(0) <- Cx.one;
    { dl = 1; dr = 1; data }
  in
  { n; sites = Array.init n (fun _ -> site0); dropped = 0.0 }

let num_qubits mps = mps.n

let max_bond_dim mps =
  Array.fold_left (fun acc s -> max acc (max s.dl s.dr)) 1 mps.sites

let truncation_error mps = mps.dropped

let memory_bytes mps =
  Array.fold_left (fun acc s -> acc + (16 * Array.length s.data)) 0 mps.sites

let apply_gate1 mps u q =
  if Mat.rows u <> 2 || Mat.cols u <> 2 then invalid_arg "Mps_ref.apply_gate1: need 2x2";
  if q < 0 || q >= mps.n then invalid_arg "Mps_ref.apply_gate1: qubit out of range";
  let s = mps.sites.(q) in
  let data = Array.make (Array.length s.data) Cx.zero in
  for l = 0 to s.dl - 1 do
    for r = 0 to s.dr - 1 do
      for p' = 0 to 1 do
        let acc = ref Cx.zero in
        for p = 0 to 1 do
          acc := Cx.mul_add !acc (Mat.get u p' p) (site_get s l p r)
        done;
        data.((((l * 2) + p') * s.dr) + r) <- !acc
      done
    done
  done;
  mps.sites.(q) <- { s with data }

let apply_gate2 mps ?(max_bond = max_int) ?(cutoff = 1e-12) u q =
  if Mat.rows u <> 4 || Mat.cols u <> 4 then invalid_arg "Mps_ref.apply_gate2: need 4x4";
  if q < 0 || q + 1 >= mps.n then invalid_arg "Mps_ref.apply_gate2: pair out of range";
  let a = mps.sites.(q) and b = mps.sites.(q + 1) in
  assert (a.dr = b.dl);
  let dl = a.dl and dm = a.dr and dr = b.dr in
  (* theta[l][p0][p1][r] = Σ_m A[l][p0][m] · B[m][p1][r], then the gate:
     matrix index is p1·2 + p0 (bit 0 = qubit q). *)
  let theta = Array.make (dl * 4 * dr) Cx.zero in
  let theta_idx l p0 p1 r = ((((l * 2) + p0) * 2 + p1) * dr) + r in
  for l = 0 to dl - 1 do
    for p0 = 0 to 1 do
      for m = 0 to dm - 1 do
        let av = site_get a l p0 m in
        if not (Cx.is_zero ~eps:0.0 av) then
          for p1 = 0 to 1 do
            for r = 0 to dr - 1 do
              theta.(theta_idx l p0 p1 r) <-
                Cx.mul_add (theta.(theta_idx l p0 p1 r)) av (site_get b m p1 r)
            done
          done
      done
    done
  done;
  let theta' = Array.make (dl * 4 * dr) Cx.zero in
  for l = 0 to dl - 1 do
    for r = 0 to dr - 1 do
      for p0' = 0 to 1 do
        for p1' = 0 to 1 do
          let acc = ref Cx.zero in
          for p0 = 0 to 1 do
            for p1 = 0 to 1 do
              acc :=
                Cx.mul_add !acc
                  (Mat.get u ((p1' * 2) + p0') ((p1 * 2) + p0))
                  theta.(theta_idx l p0 p1 r)
            done
          done;
          theta'.(theta_idx l p0' p1' r) <- !acc
        done
      done
    done
  done;
  (* Split with SVD: rows (l, p0), cols (p1, r). *)
  let m = Mat_ref.init (dl * 2) (2 * dr) (fun row col ->
      let l = row / 2 and p0 = row mod 2 in
      let p1 = col / dr and r = col mod dr in
      theta'.(theta_idx l p0 p1 r))
  in
  let d = Svd_ref.decompose m in
  let truncated, dropped = Svd_ref.truncate ~max_rank:max_bond ~cutoff d in
  mps.dropped <- mps.dropped +. dropped;
  let k = Array.length truncated.Svd_ref.sigma in
  let a_data = Array.make (dl * 2 * k) Cx.zero in
  for row = 0 to (dl * 2) - 1 do
    for c = 0 to k - 1 do
      a_data.((row * k) + c) <- Mat_ref.get truncated.Svd_ref.u row c
    done
  done;
  let b_data = Array.make (k * 2 * dr) Cx.zero in
  for rk = 0 to k - 1 do
    for col = 0 to (2 * dr) - 1 do
      (* fold the singular values into the right factor *)
      b_data.((rk * 2 * dr) + col) <-
        Cx.scale truncated.Svd_ref.sigma.(rk) (Mat_ref.get truncated.Svd_ref.vdag rk col)
    done
  done;
  mps.sites.(q) <- { dl; dr = k; data = a_data };
  mps.sites.(q + 1) <- { dl = k; dr; data = b_data }

let swap_matrix = Gates.swap

let rec apply_instruction mps ?max_bond ?cutoff instr =
  match instr with
  | Circuit.Barrier _ -> ()
  | Circuit.Measure _ | Circuit.Reset _ | Circuit.If _ ->
      invalid_arg "Mps_ref.apply_instruction: non-unitary instruction"
  | Circuit.Apply { gate; controls = []; target } ->
      apply_gate1 mps (Gate.matrix gate) target
  | Circuit.Apply { gate = _; controls = _ :: _ :: _; _ } ->
      invalid_arg "Mps_ref.apply_instruction: gates on 3+ qubits not supported"
  | Circuit.Swap { controls = _ :: _; _ } ->
      invalid_arg "Mps_ref.apply_instruction: gates on 3+ qubits not supported"
  | Circuit.Apply { gate; controls = [ ctl ]; target } ->
      let lo = min ctl target and hi = max ctl target in
      if hi - lo > 1 then route mps ?max_bond ?cutoff instr
      else begin
        (* 4×4 on (lo, lo+1); local bit 0 = lo. *)
        let local_ctl = if ctl = lo then 0 else 1 in
        let local_tgt = 1 - local_ctl in
        let u =
          Qdt_arraysim.Unitary_builder.instruction_matrix ~num_qubits:2
            (Circuit.Apply { gate; controls = [ local_ctl ]; target = local_tgt })
        in
        apply_gate2 mps ?max_bond ?cutoff u lo
      end
  | Circuit.Swap { controls = []; a; b } ->
      let lo = min a b and hi = max a b in
      if hi - lo > 1 then route mps ?max_bond ?cutoff instr
      else apply_gate2 mps ?max_bond ?cutoff swap_matrix lo

(* Bring the two operands adjacent with swaps, apply, and swap back. *)
and route mps ?max_bond ?cutoff instr =
  let lo, hi, rebuild =
    match instr with
    | Circuit.Apply { gate; controls = [ ctl ]; target } ->
        let lo = min ctl target and hi = max ctl target in
        ( lo,
          hi,
          fun hi' ->
            let ctl' = if ctl < target then lo else hi' in
            let tgt' = if ctl < target then hi' else lo in
            Circuit.Apply { gate; controls = [ ctl' ]; target = tgt' } )
    | Circuit.Swap { controls = []; a; b } ->
        let lo = min a b and hi = max a b in
        (lo, hi, fun hi' -> Circuit.Swap { controls = []; a = lo; b = hi' })
    | _ -> assert false
  in
  for k = hi - 1 downto lo + 1 do
    apply_gate2 mps ?max_bond ?cutoff swap_matrix k
  done;
  apply_instruction mps ?max_bond ?cutoff (rebuild (lo + 1));
  for k = lo + 1 to hi - 1 do
    apply_gate2 mps ?max_bond ?cutoff swap_matrix k
  done

let run ?max_bond ?cutoff circuit =
  if not (Circuit.is_unitary_only circuit) then
    invalid_arg "Mps_ref.run: circuit measures or resets";
  let mps = create (Circuit.num_qubits circuit) in
  List.iter (apply_instruction mps ?max_bond ?cutoff) (Circuit.instructions circuit);
  mps

let amplitude mps k =
  (* Left-to-right product of the selected 1×D slices. *)
  let vec = ref [| Cx.one |] in
  for q = 0 to mps.n - 1 do
    let s = mps.sites.(q) in
    let bit = (k lsr q) land 1 in
    let next = Array.make s.dr Cx.zero in
    for r = 0 to s.dr - 1 do
      let acc = ref Cx.zero in
      for l = 0 to s.dl - 1 do
        acc := Cx.mul_add !acc !vec.(l) (site_get s l bit r)
      done;
      next.(r) <- !acc
    done;
    vec := next
  done;
  (!vec).(0)

let to_vec mps = Vec_ref.init (1 lsl mps.n) (fun k -> amplitude mps k)
