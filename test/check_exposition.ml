(* CI helper: validate a Prometheus exposition scraped from a live
   [qdt serve] (stdin or a file argument) with the in-tree parser.
   Exits nonzero unless the text parses, the serve gauges are present,
   and the request counters are nonzero — the contract the CI smoke job
   enforces after driving load through the server. *)

module Prom = Qdt_obs.Prom

let read_all ic =
  let b = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel b ic 1
     done
   with End_of_file -> ());
  Buffer.contents b

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("FAIL: " ^ m); exit 1) fmt

let () =
  let text =
    if Array.length Sys.argv > 1 then (
      let ic = open_in_bin Sys.argv.(1) in
      let s = read_all ic in
      close_in ic;
      s)
    else read_all stdin
  in
  let fams =
    match Prom.parse text with
    | Ok fams -> fams
    | Error e -> fail "exposition does not parse: %s" e
  in
  let family name =
    match Prom.find name fams with
    | Some f -> f
    | None -> fail "family %s missing" name
  in
  let gauges = [ "qdt_serve_queue_depth"; "qdt_serve_inflight"; "qdt_serve_uptime_s" ] in
  List.iter
    (fun name ->
      let f = family name in
      if f.Prom.kind <> "gauge" then fail "%s is %s, expected gauge" name f.Prom.kind)
    gauges;
  let requests = family "qdt_serve_requests" in
  if Prom.total requests <= 0.0 then fail "qdt_serve_requests counters are all zero";
  let jobs = family "qdt_serve_jobs" in
  if
    not
      (List.exists
         (fun s -> s.Prom.labels = [ ("outcome", "ok") ] && s.Prom.value > 0.0)
         jobs.Prom.samples)
  then fail "no successful jobs counted";
  let lat = family "qdt_serve_latency_ns" in
  if lat.Prom.kind <> "histogram" then fail "qdt_serve_latency_ns is not a histogram";
  Printf.printf "ok: %d families, %.0f requests, %.0f jobs\n" (List.length fams)
    (Prom.total requests) (Prom.total jobs)
