(* End-to-end tests for the serve layer (ISSUE 10): protocol round
   trips over a real socket, warm sessions, the telemetry plane
   (/metrics exposition validated with the in-tree parser, /report
   snapshots, the JSONL access log, serve.* spans), per-job timeouts
   that leave the server healthy, 429 backpressure, and the concurrent
   session-pool paths the worker domains exercise (parallel submits on
   one warm session, submit-after-close races) across every registered
   backend. *)

module Server = Qdt_serve.Server
module Client = Qdt_serve.Client
module Session_pool = Qdt_serve.Session_pool
module Metrics = Qdt_obs.Metrics
module Trace = Qdt_obs.Trace
module Prom = Qdt_obs.Prom
module Json = Qdt_obs.Json

let ghz n = Qdt_serve.Loadgen.default_qasm n

(* Every server test runs on an ephemeral port and always stops the
   server, so tests neither collide nor leak worker domains. *)
let with_server ?(cfg = Server.default_config) f =
  let t = Server.start { cfg with Server.port = 0 } in
  Fun.protect ~finally:(fun () -> Server.stop t) (fun () -> f t)

let with_client t f =
  let c = Client.connect ~host:"127.0.0.1" ~port:(Server.port t) in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let ok_or_fail what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what e

let parse_ok ~what s =
  match Json.parse s with
  | Ok v -> v
  | Error e -> Alcotest.failf "%s is not valid JSON: %s" what e

let member_string name j = Option.bind (Json.member name j) Json.to_string

let job_body ?(backend = "decision-diagrams") ?session ?delay_ms ?timeout_ms
    ~qasm job =
  let field k v = Printf.sprintf ", %s: %s" (Json.string k) v in
  Printf.sprintf "{\"qasm\": %s, \"backend\": %s, \"job\": %s%s%s%s}"
    (Json.string qasm) (Json.string backend) job
    (match session with Some s -> field "session" (Json.string s) | None -> "")
    (match delay_ms with Some d -> field "delay_ms" (Json.int d) | None -> "")
    (match timeout_ms with Some t -> field "timeout_ms" (Json.int t) | None -> "")

let sample_job = "{\"kind\": \"sample\", \"seed\": 1, \"shots\": 50}"

(* ------------------------------------------------------------------ *)
(* Basic endpoints                                                     *)
(* ------------------------------------------------------------------ *)

let test_healthz () =
  with_server @@ fun t ->
  with_client t @@ fun c ->
  let status, body = ok_or_fail "healthz" (Client.get c "/healthz") in
  Alcotest.(check int) "status" 200 status;
  let j = parse_ok ~what:"healthz" body in
  (match Json.member "ok" j with
  | Some (Json.Bool true) -> ()
  | _ -> Alcotest.fail "healthz did not report ok");
  (* Keep-alive: the same connection serves a second request. *)
  let status, _ = ok_or_fail "healthz again" (Client.get c "/healthz") in
  Alcotest.(check int) "second request on one connection" 200 status

let test_job_and_warm_session () =
  with_server @@ fun t ->
  with_client t @@ fun c ->
  let body = job_body ~qasm:(ghz 4) ~session:"alice" sample_job in
  let submit () =
    let status, resp =
      ok_or_fail "job" (Client.post c ~path:"/v1/jobs" ~body)
    in
    Alcotest.(check int) "status" 200 status;
    parse_ok ~what:"job response" resp
  in
  ignore (submit ());
  let j = submit () in
  (* Second submission on the same session hits warm DD caches: every
     node construction is answered by the unique table. *)
  let hit_rate =
    match
      Option.bind (Json.member "stats" j) (fun s ->
          Option.bind (Json.member "dd" s) (Json.member "unique_hit_rate"))
    with
    | Some (Json.Number v) -> v
    | _ -> Alcotest.fail "response lacks stats.dd.unique_hit_rate"
  in
  Alcotest.(check (float 0.0)) "warm unique-table hit rate" 1.0 hit_rate;
  (* Counts come back for a sample job. *)
  match Option.bind (Json.member "result" j) (member_string "kind") with
  | Some "counts" -> ()
  | _ -> Alcotest.fail "sample job did not return counts"

let test_errors () =
  with_server @@ fun t ->
  with_client t @@ fun c ->
  let post body = ok_or_fail "post" (Client.post c ~path:"/v1/jobs" ~body) in
  let error_type body =
    Option.bind (Json.member "error" (parse_ok ~what:"error" body))
      (member_string "type")
  in
  let status, body = post "not json at all" in
  Alcotest.(check int) "bad JSON" 400 status;
  Alcotest.(check (option string)) "typed" (Some "bad_request") (error_type body);
  let status, body = post (job_body ~backend:"dd9" ~qasm:(ghz 2) sample_job) in
  Alcotest.(check int) "unknown backend" 400 status;
  Alcotest.(check (option string)) "typed" (Some "unknown_backend")
    (error_type body);
  let status, body = post (job_body ~qasm:"qreg q[1;" sample_job) in
  Alcotest.(check int) "bad qasm" 400 status;
  Alcotest.(check (option string)) "typed" (Some "bad_request") (error_type body);
  (* Unsupported operation surfaces the backend's own typed error. *)
  let status, body =
    post
      (job_body ~backend:"tensor-network" ~qasm:(ghz 2)
         "{\"kind\": \"sample\", \"shots\": 5}")
  in
  Alcotest.(check int) "unsupported op" 422 status;
  Alcotest.(check (option string)) "typed" (Some "backend_error")
    (error_type body);
  let status, _ = ok_or_fail "404" (Client.get c "/nope") in
  Alcotest.(check int) "unknown path" 404 status;
  let status, _ =
    ok_or_fail "405" (Client.post c ~path:"/metrics" ~body:"")
  in
  Alcotest.(check int) "method mismatch" 405 status

(* ------------------------------------------------------------------ *)
(* Telemetry plane                                                     *)
(* ------------------------------------------------------------------ *)

let test_metrics_exposition () =
  with_server @@ fun t ->
  with_client t @@ fun c ->
  let body = job_body ~qasm:(ghz 3) ~session:"m" sample_job in
  ignore (ok_or_fail "job" (Client.post c ~path:"/v1/jobs" ~body));
  let status, text = ok_or_fail "metrics" (Client.get c "/metrics") in
  Alcotest.(check int) "status" 200 status;
  let fams =
    match Prom.parse text with
    | Ok fams -> fams
    | Error e -> Alcotest.failf "/metrics is not valid exposition: %s" e
  in
  let family name =
    match Prom.find name fams with
    | Some f -> f
    | None -> Alcotest.failf "family %s missing from /metrics" name
  in
  Alcotest.(check string) "queue depth gauge present" "gauge"
    (family "qdt_serve_queue_depth").Prom.kind;
  Alcotest.(check string) "inflight gauge present" "gauge"
    (family "qdt_serve_inflight").Prom.kind;
  Alcotest.(check bool) "uptime gauge is positive" true
    (match (family "qdt_serve_uptime_s").Prom.samples with
    | [ s ] -> s.Prom.value > 0.0
    | _ -> false);
  Alcotest.(check bool) "request counters are nonzero" true
    (Prom.total (family "qdt_serve_requests") > 0.0);
  Alcotest.(check bool) "job ok counter is nonzero" true
    (List.exists
       (fun s ->
         s.Prom.labels = [ ("outcome", "ok") ] && s.Prom.value > 0.0)
       (family "qdt_serve_jobs").Prom.samples);
  let lat = family "qdt_serve_latency_ns" in
  Alcotest.(check string) "per-endpoint latency histogram" "histogram"
    lat.Prom.kind;
  Alcotest.(check bool) "latency histogram observed the jobs endpoint" true
    (List.exists
       (fun s ->
         s.Prom.metric = "qdt_serve_latency_ns_count"
         && List.mem ("endpoint", "jobs") s.Prom.labels
         && s.Prom.value > 0.0)
       lat.Prom.samples);
  (* Watermarks fold in as gauges (peak RSS via /proc where present). *)
  Alcotest.(check bool) "dd watermark exposed" true
    (Option.is_some (Prom.find "qdt_watermark_dd_peak_live_nodes" fams));
  if Sys.file_exists "/proc/self/status" then
    Alcotest.(check bool) "peak RSS exposed" true
      (match Prom.find "qdt_watermark_proc_peak_rss_bytes" fams with
      | Some f -> Prom.total f > 0.0
      | None -> false)

let test_report_endpoint () =
  with_server @@ fun t ->
  with_client t @@ fun c ->
  let body = job_body ~qasm:(ghz 3) sample_job in
  ignore (ok_or_fail "job" (Client.post c ~path:"/v1/jobs" ~body));
  let scrape what =
    let status, body = ok_or_fail what (Client.get c "/report") in
    Alcotest.(check int) (what ^ " status") 200 status;
    parse_ok ~what body
  in
  let r1 = scrape "first report" in
  (* A second scrape also succeeds: snapshots do not seal the bracket. *)
  let r2 = scrape "second report" in
  let schema j =
    match member_string "schema" j with
    | Some s -> s
    | None -> Alcotest.fail "report lacks schema"
  in
  Alcotest.(check string) "schema" (schema r1) (schema r2)

let test_access_log_and_spans () =
  let log = Filename.temp_file "qdt_access" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove log with Sys_error _ -> ())
    (fun () ->
      Trace.configure ();
      Trace.set_enabled true;
      Fun.protect
        ~finally:(fun () ->
          Trace.set_enabled false;
          Trace.clear ())
        (fun () ->
          with_server
            ~cfg:{ Server.default_config with Server.access_log = Some log }
            (fun t ->
              with_client t @@ fun c ->
              let body = job_body ~qasm:(ghz 3) ~session:"s" sample_job in
              ignore (ok_or_fail "job" (Client.post c ~path:"/v1/jobs" ~body));
              ignore (ok_or_fail "healthz" (Client.get c "/healthz")));
          (* Spans: handler threads run on the enabling domain, so the
             request/queue-wait nesting lands in the ring. *)
          let names =
            List.map (fun (e : Trace.event) -> e.Trace.name) (Trace.events ())
          in
          List.iter
            (fun expected ->
              if not (List.mem expected names) then
                Alcotest.failf "span %s missing from trace" expected)
            [ "serve.request"; "serve.queue_wait"; "serve.run" ]);
      let ic = open_in log in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let lines =
        List.rev !lines |> List.filter (fun l -> String.trim l <> "")
      in
      Alcotest.(check int) "one line per request" 2 (List.length lines);
      let job_line = parse_ok ~what:"access log line" (List.hd lines) in
      List.iter
        (fun field ->
          if Json.member field job_line = None then
            Alcotest.failf "access log line lacks %S" field)
        [ "ts_unix_ns"; "client"; "path"; "status"; "latency_ns"; "outcome";
          "backend"; "job"; "session"; "queue_wait_ns"; "run_ns" ])

(* ------------------------------------------------------------------ *)
(* Timeouts and backpressure                                           *)
(* ------------------------------------------------------------------ *)

let test_timeout_then_recovery () =
  with_server @@ fun t ->
  with_client t @@ fun c ->
  let slow =
    job_body ~qasm:(ghz 3) ~delay_ms:500 ~timeout_ms:60 sample_job
  in
  let status, body = ok_or_fail "slow job" (Client.post c ~path:"/v1/jobs" ~body:slow) in
  Alcotest.(check int) "timeout status" 504 status;
  (match
     Option.bind (Json.member "error" (parse_ok ~what:"timeout" body))
       (member_string "type")
   with
  | Some "timeout" -> ()
  | other ->
      Alcotest.failf "expected typed timeout, got %s"
        (Option.value ~default:"<none>" other));
  (* The worker survives the abandoned job: the same server answers the
     next request normally. *)
  let ok_job = job_body ~qasm:(ghz 3) sample_job in
  let status, _ = ok_or_fail "next job" (Client.post c ~path:"/v1/jobs" ~body:ok_job) in
  Alcotest.(check int) "server still serving" 200 status

let test_backpressure () =
  with_server
    ~cfg:{ Server.default_config with Server.workers = 1; queue_depth = 1 }
  @@ fun t ->
  (* Saturate: one job running (delayed), one queued, the rest must be
     rejected with 429 + Retry-After. *)
  let port = Server.port t in
  let results = Array.make 5 (0, false) in
  let threads =
    List.init 5 (fun i ->
        Thread.create
          (fun () ->
            let c = Client.connect ~host:"127.0.0.1" ~port in
            let body =
              job_body ~qasm:(ghz 2) ~delay_ms:300 ~timeout_ms:5000 sample_job
            in
            (match Client.request c ~meth:"POST" ~path:"/v1/jobs" ~body () with
            | Ok (status, headers, _) ->
                results.(i) <-
                  (status, List.mem_assoc "retry-after" headers)
            | Error _ -> results.(i) <- (-1, false));
            Client.close c)
          ())
  in
  List.iter Thread.join threads;
  let count s =
    Array.fold_left (fun n (st, _) -> if st = s then n + 1 else n) 0 results
  in
  Alcotest.(check bool) "some jobs completed" true (count 200 >= 1);
  Alcotest.(check bool) "overload rejected" true (count 429 >= 1);
  Array.iter
    (fun (st, ra) ->
      if st = 429 && not ra then Alcotest.fail "429 without Retry-After")
    results

let test_batch () =
  with_server @@ fun t ->
  with_client t @@ fun c ->
  let good = job_body ~qasm:(ghz 2) ~session:"b" sample_job in
  let body = good ^ "\n" ^ "{\"broken\"\n" ^ good ^ "\n" in
  let status, resp = ok_or_fail "batch" (Client.post c ~path:"/v1/batch" ~body) in
  Alcotest.(check int) "status" 200 status;
  let lines =
    String.split_on_char '\n' resp |> List.filter (fun l -> String.trim l <> "")
  in
  Alcotest.(check int) "one response line per job line" 3 (List.length lines);
  let ok_of line =
    match Json.member "ok" (parse_ok ~what:"batch line" line) with
    | Some (Json.Bool b) -> b
    | _ -> Alcotest.fail "batch line lacks ok"
  in
  (match List.map ok_of lines with
  | [ true; false; true ] -> ()
  | other ->
      Alcotest.failf "batch order broken: %s"
        (String.concat ","
           (List.map string_of_bool other)))

(* ------------------------------------------------------------------ *)
(* Session close over HTTP                                             *)
(* ------------------------------------------------------------------ *)

let test_session_close_endpoint () =
  with_server @@ fun t ->
  with_client t @@ fun c ->
  let body = job_body ~qasm:(ghz 2) ~session:"gone" sample_job in
  ignore (ok_or_fail "open" (Client.post c ~path:"/v1/jobs" ~body));
  let close () =
    ok_or_fail "close"
      (Client.post c ~path:"/v1/sessions/close"
         ~body:"{\"session\": \"gone\"}")
  in
  let _, resp = close () in
  (match Json.member "closed" (parse_ok ~what:"close" resp) with
  | Some (Json.Bool true) -> ()
  | _ -> Alcotest.fail "close did not report closed");
  (* Closing again is a no-op, and the name is reusable afterwards. *)
  let _, resp = close () in
  (match Json.member "closed" (parse_ok ~what:"re-close" resp) with
  | Some (Json.Bool false) -> ()
  | _ -> Alcotest.fail "second close should find nothing");
  let status, _ = ok_or_fail "reuse" (Client.post c ~path:"/v1/jobs" ~body) in
  Alcotest.(check int) "name reusable after close" 200 status

(* ------------------------------------------------------------------ *)
(* Concurrent session use (ISSUE 10 satellite 3)                       *)
(* ------------------------------------------------------------------ *)

let bell =
  Qdt_circuit.Qasm.of_string
    "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n"

(* A job every backend can execute (capability-dependent). *)
let job_for name =
  match Qdt.Registry.capabilities_of name with
  | Some caps when caps.Qdt.Backend.sample ->
      Qdt.Job.Sample { seed = 7; shots = 20 }
  | _ -> Qdt.Job.Amplitude 0

(* Parallel submits against ONE warm session, per backend: the pool
   must serialise them onto the engine and every job must come back
   with a definite outcome (no crash, no lost submission). *)
let test_parallel_submits_one_session () =
  List.iter
    (fun name ->
      let pool = Session_pool.create ~max_sessions:8 in
      let job = job_for name in
      let errors = Atomic.make 0 and ok = Atomic.make 0 in
      let domains =
        List.init 4 (fun _ ->
            Domain.spawn (fun () ->
                for _ = 1 to 5 do
                  match
                    Session_pool.submit pool ~session:"shared" ~backend:name
                      bell job
                  with
                  | Ok (Ok _) -> Atomic.incr ok
                  | Ok (Error _) | Error _ -> Atomic.incr errors
                done))
      in
      List.iter Domain.join domains;
      Session_pool.close_all pool;
      Alcotest.(check int)
        (name ^ ": all submissions accounted for") 20
        (Atomic.get ok + Atomic.get errors);
      Alcotest.(check int) (name ^ ": no typed errors") 0 (Atomic.get errors))
    (Qdt.Registry.names ())

(* Submit-after-close races, per backend: close the session while other
   domains are mid-submit loop.  Every submit must return either a
   success or the typed session-closed/fresh-session outcome — never
   crash — and the server-side pattern (fresh engine under the same
   name after close) must keep working. *)
let test_submit_close_races () =
  List.iter
    (fun name ->
      let pool = Session_pool.create ~max_sessions:8 in
      let job = job_for name in
      let stop = Atomic.make false in
      let outcomes = Atomic.make 0 in
      let submitters =
        List.init 2 (fun _ ->
            Domain.spawn (fun () ->
                while not (Atomic.get stop) do
                  match
                    Session_pool.submit pool ~session:"racy" ~backend:name bell
                      job
                  with
                  | Ok (Ok _) | Ok (Error _) -> Atomic.incr outcomes
                  | Error e ->
                      Alcotest.failf "%s: pool error %s" name
                        (Session_pool.error_message e)
                done))
      in
      (* Keep closing until real submissions have interleaved with the
         closes, so the race window is actually exercised. *)
      let spins = ref 0 in
      while Atomic.get outcomes < 10 && !spins < 200_000 do
        incr spins;
        ignore (Session_pool.close pool ~session:"racy");
        Domain.cpu_relax ()
      done;
      Atomic.set stop true;
      List.iter Domain.join submitters;
      Session_pool.close_all pool;
      Alcotest.(check bool)
        (name ^ ": submissions kept flowing through closes") true
        (Atomic.get outcomes > 0))
    (Qdt.Registry.names ())

let () =
  Alcotest.run "qdt_serve"
    [
      ( "endpoints",
        [
          Alcotest.test_case "healthz + keep-alive" `Quick test_healthz;
          Alcotest.test_case "job + warm session" `Quick
            test_job_and_warm_session;
          Alcotest.test_case "typed errors" `Quick test_errors;
          Alcotest.test_case "batch JSONL" `Quick test_batch;
          Alcotest.test_case "session close" `Quick test_session_close_endpoint;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "metrics exposition" `Quick test_metrics_exposition;
          Alcotest.test_case "report snapshots" `Quick test_report_endpoint;
          Alcotest.test_case "access log + spans" `Quick
            test_access_log_and_spans;
        ] );
      ( "overload",
        [
          Alcotest.test_case "timeout then recovery" `Quick
            test_timeout_then_recovery;
          Alcotest.test_case "backpressure 429" `Quick test_backpressure;
        ] );
      ( "sessions",
        [
          Alcotest.test_case "parallel submits, one session" `Quick
            test_parallel_submits_one_session;
          Alcotest.test_case "submit/close races" `Quick
            test_submit_close_races;
        ] );
    ]
