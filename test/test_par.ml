(* Qdt_par contract tests: multi-domain vs single-domain amplitude
   agreement on circuits straddling the serial cutoff, job-count-invariant
   seeded shot/trajectory results, pool reuse/resize/restart, and
   exception propagation out of worker domains. *)

open Qdt_circuit
module Cx = Qdt_linalg.Cx
module Sv = Qdt_arraysim.Statevector
module Traj = Qdt_arraysim.Trajectories

(* ------------------------------------------------------------------ *)
(* Amplitude agreement across job counts                               *)
(* ------------------------------------------------------------------ *)

(* The default chunk is 2^14 indices, so 14 qubits is the largest state
   that always runs serially: 6..14q exercise the cutoff's serial side at
   any job count, 15..16q split into 2 and 4 chunks. *)
let agreement_workloads =
  List.map
    (fun n -> (Printf.sprintf "random%d" n, Generators.random_circuit ~seed:(60 + n) ~depth:3 n))
    [ 6; 10; 14; 15; 16 ]

let amplitudes ~jobs c =
  Qdt_par.set_jobs jobs;
  let sv = Sv.run_unitary c in
  Array.init (1 lsl (Circuit.num_qubits c)) (Sv.amplitude sv)

let test_amplitude_agreement () =
  List.iter
    (fun (name, c) ->
      let serial = amplitudes ~jobs:1 c in
      let par2 = amplitudes ~jobs:2 c in
      let par4 = amplitudes ~jobs:4 c in
      Array.iteri
        (fun k a ->
          if Cx.norm (Cx.sub a par2.(k)) > 1e-12 then
            Alcotest.failf "%s: amplitude %d: jobs=2 differs from serial by > 1e-12" name k;
          (* jobs >= 2 share chunk boundaries, so they agree exactly. *)
          if par2.(k) <> par4.(k) then
            Alcotest.failf "%s: amplitude %d: jobs=2 and jobs=4 not bit-identical" name k)
        serial)
    agreement_workloads

let test_reductions_agree () =
  let c = Generators.random_circuit ~seed:91 ~depth:3 16 in
  let at jobs f =
    Qdt_par.set_jobs jobs;
    f (Sv.run_unitary c)
  in
  List.iter
    (fun (what, f) ->
      let serial = at 1 f and par2 = at 2 f and par4 = at 4 f in
      Alcotest.(check (float 1e-12)) (what ^ ": jobs=2 vs serial") serial par2;
      Alcotest.(check bool) (what ^ ": jobs=2 == jobs=4") true (par2 = par4))
    [
      ("norm", Sv.norm);
      ("kraus_weight", fun sv -> Sv.kraus_weight sv Qdt_linalg.Gates.h ~target:3);
      ("expectation_z", fun sv -> Sv.expectation_z sv 5);
    ]

(* ------------------------------------------------------------------ *)
(* Seeded shots and trajectories: invariant in the job count           *)
(* ------------------------------------------------------------------ *)

let counts ~jobs ~backend c =
  Qdt_par.set_jobs jobs;
  Qdt.sample ~backend ~seed:11 ~shots:400 c

let total = List.fold_left (fun acc (_, n) -> acc + n) 0

let test_dynamic_counts_arrays () =
  let teleport = Generators.teleportation () in
  let c1 = counts ~jobs:1 ~backend:Qdt.Arrays_backend teleport in
  let c1' = counts ~jobs:1 ~backend:Qdt.Arrays_backend teleport in
  Alcotest.(check (list (pair int int))) "jobs=1 reproducible" c1 c1';
  let c2 = counts ~jobs:2 ~backend:Qdt.Arrays_backend teleport in
  let c4 = counts ~jobs:4 ~backend:Qdt.Arrays_backend teleport in
  Alcotest.(check (list (pair int int))) "jobs=2 == jobs=4" c2 c4;
  Alcotest.(check int) "same shot total" (total c1) (total c2)

let test_dynamic_counts_stabilizer () =
  let repetition = Generators.repetition_code ~cycles:2 () in
  let c1 = counts ~jobs:1 ~backend:Qdt.Stabilizer_backend repetition in
  let c1' = counts ~jobs:1 ~backend:Qdt.Stabilizer_backend repetition in
  Alcotest.(check (list (pair int int))) "jobs=1 reproducible" c1 c1';
  let c2 = counts ~jobs:2 ~backend:Qdt.Stabilizer_backend repetition in
  let c4 = counts ~jobs:4 ~backend:Qdt.Stabilizer_backend repetition in
  Alcotest.(check (list (pair int int))) "jobs=2 == jobs=4" c2 c4;
  Alcotest.(check int) "same shot total" (total c1) (total c2)

let test_trajectories_jobs_invariant () =
  let c = Generators.ghz 6 in
  let noise = Traj.depolarizing 0.02 in
  let avg jobs =
    Qdt_par.set_jobs jobs;
    Traj.average_probabilities ~seed:7 ~noise ~trajectories:64 c
  in
  let a1 = avg 1 and a2 = avg 2 and a4 = avg 4 in
  Alcotest.(check bool) "jobs=2 == jobs=4 (bit-identical)" true (a2 = a4);
  Array.iteri
    (fun k p ->
      if Float.abs (p -. a2.(k)) > 1e-12 then
        Alcotest.failf "probability %d: jobs=2 differs from serial by > 1e-12" k)
    a1;
  let fid jobs =
    Qdt_par.set_jobs jobs;
    Traj.average_fidelity ~seed:7 ~noise ~trajectories:64 c
  in
  let f1 = fid 1 and f2 = fid 2 and f4 = fid 4 in
  Alcotest.(check bool) "fidelity: jobs=2 == jobs=4" true (f2 = f4);
  Alcotest.(check (float 1e-12)) "fidelity: jobs=2 vs serial" f1 f2

(* ------------------------------------------------------------------ *)
(* Pool lifecycle and primitives                                       *)
(* ------------------------------------------------------------------ *)

let test_pool_reuse_and_restart () =
  Qdt_par.shutdown ();
  Alcotest.(check int) "down after shutdown" 0 (Qdt_par.spawned_domains ());
  Qdt_par.set_jobs 4;
  Qdt_par.parallel_for ~chunk:1 0 64 (fun _ _ -> ());
  Alcotest.(check int) "jobs=4 spawns 3 workers" 3 (Qdt_par.spawned_domains ());
  Qdt_par.parallel_for ~chunk:1 0 64 (fun _ _ -> ());
  Alcotest.(check int) "same size reuses the pool" 3 (Qdt_par.spawned_domains ());
  Qdt_par.set_jobs 2;
  Qdt_par.parallel_for ~chunk:1 0 64 (fun _ _ -> ());
  Alcotest.(check int) "resize drains and respawns" 1 (Qdt_par.spawned_domains ());
  Qdt_par.shutdown ();
  Alcotest.(check int) "explicit shutdown joins all" 0 (Qdt_par.spawned_domains ());
  Qdt_par.parallel_for ~chunk:1 0 64 (fun _ _ -> ());
  Alcotest.(check int) "next region restarts the pool" 1 (Qdt_par.spawned_domains ())

let test_parallel_for_covers_range () =
  Qdt_par.set_jobs 4;
  let n = 10_000 in
  let hits = Array.make n 0 in
  Qdt_par.parallel_for ~chunk:64 0 n (fun lo hi ->
      for i = lo to hi - 1 do
        hits.(i) <- hits.(i) + 1
      done);
  Array.iteri
    (fun i h -> if h <> 1 then Alcotest.failf "index %d visited %d times" i h)
    hits

let test_map_matches_serial () =
  Qdt_par.set_jobs 4;
  let arr = Array.init 999 (fun i -> i - 500) in
  let f x = (x * x) + (3 * x) in
  Alcotest.(check (array int)) "map == Array.map" (Array.map f arr) (Qdt_par.map f arr)

let test_exception_propagation () =
  Qdt_par.set_jobs 4;
  let raised =
    try
      Qdt_par.parallel_for ~chunk:8 0 1024 (fun lo _hi ->
          if lo >= 512 then failwith "boom");
      false
    with Failure msg when msg = "boom" -> true
  in
  Alcotest.(check bool) "worker exception re-raised on caller" true raised;
  (* The pool must survive the failed region. *)
  let arr = Array.init 100 Fun.id in
  Alcotest.(check (array int)) "pool usable after exception"
    (Array.map (fun x -> 2 * x) arr)
    (Qdt_par.map (fun x -> 2 * x) arr)

let test_nested_regions_run_serially () =
  Qdt_par.set_jobs 4;
  let inner_ran = Atomic.make 0 in
  Qdt_par.parallel_for ~chunk:1 0 8 (fun _ _ ->
      (* Inner region while the outer is active: must run inline, not
         deadlock on the busy pool. *)
      Qdt_par.parallel_for ~chunk:1 0 4 (fun lo hi ->
          ignore (Atomic.fetch_and_add inner_ran (hi - lo))));
  Alcotest.(check int) "inner iterations all ran" 32 (Atomic.get inner_ran)

let () =
  (* Leave a clean slate whatever order alcotest ran things in. *)
  at_exit (fun () -> Qdt_par.set_jobs 1);
  Alcotest.run "par"
    [
      ( "agreement",
        [
          Alcotest.test_case "amplitudes across job counts" `Quick test_amplitude_agreement;
          Alcotest.test_case "reductions across job counts" `Quick test_reductions_agree;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "dynamic counts (arrays)" `Quick test_dynamic_counts_arrays;
          Alcotest.test_case "dynamic counts (stabilizer)" `Quick test_dynamic_counts_stabilizer;
          Alcotest.test_case "trajectory averages" `Quick test_trajectories_jobs_invariant;
        ] );
      ( "pool",
        [
          Alcotest.test_case "reuse, resize, restart" `Quick test_pool_reuse_and_restart;
          Alcotest.test_case "parallel_for covers range" `Quick test_parallel_for_covers_range;
          Alcotest.test_case "map matches serial" `Quick test_map_matches_serial;
          Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
          Alcotest.test_case "nested regions serialize" `Quick test_nested_regions_run_serially;
        ] );
    ]
