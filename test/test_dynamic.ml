(* Tests for dynamic circuits: the If IR node and its validation, QASM
   round-tripping of measure/reset/barrier/if, the static/dynamic shot
   plan, per-shot execution semantics on arrays, decision diagrams and
   the stabilizer tableau, and the typed declines of the backends that
   cannot run classical control. *)

open Qdt_circuit
module Backend = Qdt.Backend
module Registry = Qdt.Registry
module Shot_engine = Qdt.Shot_engine
module Sv = Qdt_arraysim.Statevector

let get name =
  match Registry.find name with
  | Some m -> m
  | None -> Alcotest.failf "backend %s not registered" name

let check_invalid name f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name

let shots_of counts = List.fold_left (fun acc (_, n) -> acc + n) 0 counts

(* Probability that bit [bit] of the counts key is 1. *)
let p_bit counts bit =
  let total = shots_of counts in
  let ones =
    List.fold_left
      (fun acc (k, n) -> if (k lsr bit) land 1 = 1 then acc + n else acc)
      0 counts
  in
  float_of_int ones /. float_of_int (max 1 total)

let sample backend ?(seed = 11) ?(shots = 2000) c =
  Qdt.sample ~backend ~seed ~shots c

(* ------------------------------------------------------------------ *)
(* Construction-time validation                                        *)
(* ------------------------------------------------------------------ *)

let test_validation () =
  let c = Circuit.empty 2 ~clbits:2 in
  let no_creg = Circuit.empty 2 in
  check_invalid "if without creg" (fun () ->
      Circuit.if_eq 1 (Circuit.Apply { gate = Gate.X; controls = []; target = 0 }) no_creg);
  check_invalid "negative guard value" (fun () -> Circuit.if_x (-1) 0 c);
  check_invalid "guard value exceeds register" (fun () -> Circuit.if_x 4 0 c);
  check_invalid "nested if" (fun () ->
      Circuit.add
        (Circuit.If
           { value = 1; instr = Circuit.If { value = 0; instr = Circuit.Reset 0 } })
        c);
  check_invalid "conditional barrier" (fun () ->
      Circuit.if_eq 1 (Circuit.Barrier [ 0 ]) c);
  check_invalid "guarded qubit out of range" (fun () -> Circuit.if_x 1 5 c);
  (* Satellite: clbit and qubit indices are validated at construction. *)
  check_invalid "measure clbit out of range" (fun () ->
      Circuit.measure ~qubit:0 ~clbit:2 c);
  check_invalid "measure qubit out of range" (fun () ->
      Circuit.measure ~qubit:2 ~clbit:0 c);
  check_invalid "measure without creg" (fun () ->
      Circuit.measure ~qubit:0 ~clbit:0 no_creg);
  (* Legal constructions are accepted. *)
  let ok = c |> Circuit.if_x 3 1 |> Circuit.if_eq 2 (Circuit.Reset 0) in
  Alcotest.(check int) "two conditionals" 2 (Circuit.length ok)

let test_ir_predicates () =
  let unitary = Circuit.empty 2 |> Circuit.h 0 |> Circuit.cx 0 1 in
  Alcotest.(check bool) "unitary not dynamic" false (Circuit.is_dynamic unitary);
  let terminal =
    Circuit.empty 2 ~clbits:2 |> Circuit.h 0 |> Circuit.cx 0 1
    |> Circuit.measure ~qubit:0 ~clbit:0
    |> Circuit.measure ~qubit:1 ~clbit:1
  in
  Alcotest.(check bool) "terminal measure not dynamic" false
    (Circuit.is_dynamic terminal);
  let midcircuit =
    Circuit.empty 2 ~clbits:1
    |> Circuit.measure ~qubit:0 ~clbit:0
    |> Circuit.x 0
  in
  Alcotest.(check bool) "measured qubit reused" true (Circuit.is_dynamic midcircuit);
  let with_reset = Circuit.empty 1 |> Circuit.reset 0 in
  Alcotest.(check bool) "reset is dynamic" true (Circuit.is_dynamic with_reset);
  let with_if = Circuit.empty 1 ~clbits:1 |> Circuit.if_x 1 0 in
  Alcotest.(check bool) "if is dynamic" true (Circuit.is_dynamic with_if);
  Alcotest.(check bool) "has_conditionals" true (Circuit.has_conditionals with_if);
  Alcotest.(check bool) "no conditionals" false (Circuit.has_conditionals terminal);
  Alcotest.(check int) "creg packs bit k" 5 (Circuit.creg_value [| 1; 0; 1 |]);
  check_invalid "adjoint rejects if" (fun () -> Circuit.adjoint with_if)

let test_shot_plan () =
  let unitary = Circuit.empty 2 |> Circuit.h 0 |> Circuit.cx 0 1 in
  (match Shot_engine.plan unitary with
  | Shot_engine.Static_unitary -> ()
  | _ -> Alcotest.fail "unitary circuit should plan Static_unitary");
  let terminal =
    Circuit.empty 2 ~clbits:2 |> Circuit.h 0 |> Circuit.cx 0 1
    |> Circuit.measure ~qubit:0 ~clbit:0
    |> Circuit.measure ~qubit:1 ~clbit:1
  in
  (match Shot_engine.plan terminal with
  | Shot_engine.Static_final { unitary; map } ->
      Alcotest.(check int) "stripped to gates" 2 (Circuit.length unitary);
      Alcotest.(check (list (pair int int))) "wiring" [ (0, 0); (1, 1) ] map
  | _ -> Alcotest.fail "terminal measurements should plan Static_final");
  (match Shot_engine.plan (Generators.teleportation ()) with
  | Shot_engine.Dynamic -> ()
  | _ -> Alcotest.fail "teleportation should plan Dynamic");
  (* Remapping swaps sampled qubit bits onto clbits; later writes win. *)
  Alcotest.(check (list (pair int int)))
    "remap aggregates" [ (0, 3); (1, 7) ]
    (Shot_engine.remap_counts ~map:[ (0, 0); (1, 0) ] [ (1, 3); (2, 4); (3, 3) ])

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_draw_marker () =
  let c = Circuit.empty 2 ~clbits:2 |> Circuit.h 0 |> Circuit.if_x 2 1 in
  let text = Draw.render c in
  Alcotest.(check bool) "guard tag rendered" true (contains text "?2")

(* ------------------------------------------------------------------ *)
(* QASM                                                                *)
(* ------------------------------------------------------------------ *)

let test_qasm_if_parse () =
  let c =
    Qasm.of_string
      "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\ncreg c[2];\n\
       if(c==3) x q[2];\nif(c==1) measure q[0] -> c[1];\nif(c==2) reset q[1];\n"
  in
  match Circuit.instructions c with
  | [
   Circuit.If { value = 3; instr = Circuit.Apply { gate = Gate.X; controls = []; target = 2 } };
   Circuit.If { value = 1; instr = Circuit.Measure { qubit = 0; clbit = 1 } };
   Circuit.If { value = 2; instr = Circuit.Reset 1 };
  ] ->
      ()
  | _ -> Alcotest.failf "unexpected parse:\n%s" (Qasm.to_string c)

let test_qasm_single_equals_rejected () =
  match
    Qasm.of_string
      "OPENQASM 2.0;\nqreg q[1];\ncreg c[1];\nif(c=1) x q[0];\n"
  with
  | exception Qasm.Parse_error msg ->
      Alcotest.(check bool) "mentions ==" true (contains msg "==")
  | _ -> Alcotest.fail "single '=' must be rejected"

let roundtrip c =
  let text = Qasm.to_string c in
  let c' = Qasm.of_string text in
  if not (Circuit.equal c c') then
    Alcotest.failf "round-trip mismatch:\n%s\nreparsed:\n%s" text
      (Qasm.to_string c')

let test_qasm_roundtrip_workloads () =
  roundtrip (Generators.teleportation ());
  roundtrip (Generators.repeat_until_success ~rounds:2 ());
  roundtrip (Generators.repetition_code ~cycles:2 ());
  roundtrip (Generators.repetition_code ~error:true ())

(* Randomized print-then-parse identity over circuits that mix gates,
   measurements, resets, barriers and classical control. *)
let random_dynamic_circuit =
  let open QCheck.Gen in
  let n = 3 and clbits = 2 in
  let instr =
    frequency
      [
        ( 5,
          let* g = oneofl [ Gate.H; Gate.X; Gate.Z; Gate.S; Gate.T ] in
          let* q = int_bound (n - 1) in
          return (Circuit.Apply { gate = g; controls = []; target = q }) );
        ( 2,
          let* q = int_bound (n - 2) in
          return (Circuit.Apply { gate = Gate.X; controls = [ q ]; target = q + 1 }) );
        ( 1,
          let* theta = oneofl [ 0.25; 1.0; Float.pi /. 3.0 ] in
          let* q = int_bound (n - 1) in
          return (Circuit.Apply { gate = Gate.Rz theta; controls = []; target = q }) );
        ( 2,
          let* q = int_bound (n - 1) in
          let* k = int_bound (clbits - 1) in
          return (Circuit.Measure { qubit = q; clbit = k }) );
        ( 1,
          let* q = int_bound (n - 1) in
          return (Circuit.Reset q) );
        (1, return (Circuit.Barrier [ 0; 2 ]));
      ]
  in
  let guarded =
    let* i = instr in
    let* v = int_bound ((1 lsl clbits) - 1) in
    match i with
    | Circuit.Barrier _ -> return i
    | _ -> return (Circuit.If { value = v; instr = i })
  in
  let* len = int_range 0 12 in
  let* instrs = list_size (return len) (frequency [ (3, instr); (1, guarded) ]) in
  return
    (List.fold_left
       (fun acc i -> Circuit.add i acc)
       (Circuit.empty n ~clbits)
       instrs)

let qasm_roundtrip_prop =
  QCheck.Test.make ~count:200 ~name:"qasm print/parse identity"
    (QCheck.make random_dynamic_circuit)
    (fun c -> Circuit.equal c (Qasm.of_string (Qasm.to_string c)))

(* ------------------------------------------------------------------ *)
(* Execution semantics                                                 *)
(* ------------------------------------------------------------------ *)

(* Static circuits must keep the historical RNG stream: backend sampling
   of a unitary circuit is bit-identical to running the statevector at
   [seed] and sampling the final state at [seed + 1]. *)
let test_static_rng_stream () =
  let c = Generators.ghz 4 in
  let seed = 17 and shots = 500 in
  let counts = sample Qdt.Arrays_backend ~seed ~shots c in
  let sv, _clbits = Sv.run ~seed c in
  let expected = Sv.sample ~seed:(seed + 1) sv ~shots in
  Alcotest.(check (list (pair int int))) "bit-identical counts" expected counts

let test_teleportation_backends () =
  let c = Generators.teleportation () in
  List.iter
    (fun backend ->
      let counts = sample backend ~shots:2000 c in
      Alcotest.(check int) "all shots kept" 2000 (shots_of counts);
      List.iter
        (fun (k, _) ->
          if k < 0 || k > 7 then Alcotest.failf "key %d out of creg range" k)
        counts;
      (* The teleported |+>-prep qubit measures 1 with probability 1/2. *)
      let p = p_bit counts 2 in
      if Float.abs (p -. 0.5) > 0.05 then
        Alcotest.failf "p(c2=1) = %.3f, expected 0.5" p)
    [ Qdt.Arrays_backend; Qdt.Decision_diagrams; Qdt.Stabilizer_backend ]

(* Cross-backend agreement: same physics, so the teleported marginal of
   every backend lands within statistical tolerance of the others. *)
let test_teleportation_agreement () =
  let c = Generators.teleportation () in
  let marginals =
    List.map
      (fun backend -> p_bit (sample backend ~seed:7 ~shots:2000 c) 2)
      [ Qdt.Arrays_backend; Qdt.Decision_diagrams; Qdt.Stabilizer_backend ]
  in
  List.iter
    (fun p ->
      List.iter
        (fun p' ->
          if Float.abs (p -. p') > 0.06 then
            Alcotest.failf "backend marginals disagree: %.3f vs %.3f" p p')
        marginals)
    marginals

let test_teleportation_theta_prep () =
  (* ry(theta) |0> has |1|^2 = sin^2(theta/2); pick p = 0.2. *)
  let p_target = 0.2 in
  let theta = 2.0 *. Float.asin (Float.sqrt p_target) in
  let c = Generators.teleportation ~prep:(Circuit.ry theta 0) () in
  List.iter
    (fun backend ->
      let p = p_bit (sample backend ~seed:23 ~shots:4000 c) 2 in
      if Float.abs (p -. p_target) > 0.04 then
        Alcotest.failf "p(c2=1) = %.3f, expected %.3f" p p_target)
    [ Qdt.Arrays_backend; Qdt.Decision_diagrams ]

let test_repeat_until_success () =
  let rounds = 3 in
  let c = Generators.repeat_until_success ~rounds () in
  let p_round = Float.pow (Float.sin (Float.pi /. 8.0)) 2.0 in
  let p_success = 1.0 -. Float.pow (1.0 -. p_round) (float_of_int rounds) in
  List.iter
    (fun backend ->
      let counts = sample backend ~seed:3 ~shots:4000 c in
      List.iter
        (fun (k, _) ->
          if k <> 0 && k <> 3 then Alcotest.failf "unexpected RUS key %d" k)
        counts;
      let p =
        float_of_int (Option.value ~default:0 (List.assoc_opt 3 counts))
        /. 4000.0
      in
      if Float.abs (p -. p_success) > 0.04 then
        Alcotest.failf "p(success) = %.3f, expected %.3f" p p_success)
    [ Qdt.Arrays_backend; Qdt.Decision_diagrams ]

let test_repetition_code () =
  List.iter
    (fun error ->
      let c = Generators.repetition_code ~cycles:2 ~error () in
      List.iter
        (fun backend ->
          let counts = sample backend ~shots:300 c in
          Alcotest.(check (list (pair int int)))
            (Printf.sprintf "error=%b corrected to |000>" error)
            [ (0, 300) ] counts)
        [ Qdt.Arrays_backend; Qdt.Decision_diagrams; Qdt.Stabilizer_backend ])
    [ false; true ]

(* Trajectories execute dynamic circuits through the statevector's
   conditional-aware instruction loop; with a zero-strength channel the
   teleported marginal matches the ideal 1/2. *)
let test_trajectories_dynamic () =
  let c = Generators.teleportation () in
  let noise = Qdt_arraysim.Trajectories.bit_flip 0.0 in
  let trials = 400 in
  let ones = ref 0 in
  for t = 0 to trials - 1 do
    let sv = Qdt_arraysim.Trajectories.run_single ~seed:t ~noise c in
    (* After the terminal measurement the state is collapsed; read the
       teleported qubit's population directly. *)
    if Sv.expectation_z sv 2 < 0.0 then incr ones
  done;
  let p = float_of_int !ones /. float_of_int trials in
  if Float.abs (p -. 0.5) > 0.1 then
    Alcotest.failf "trajectories p(q2=1) = %.3f, expected 0.5" p

let test_seed_reproducibility () =
  let c = Generators.teleportation () in
  List.iter
    (fun backend ->
      let a = sample backend ~seed:42 ~shots:400 c in
      let b = sample backend ~seed:42 ~shots:400 c in
      Alcotest.(check (list (pair int int))) "same seed, same counts" a b)
    [ Qdt.Arrays_backend; Qdt.Decision_diagrams; Qdt.Stabilizer_backend ]

(* ------------------------------------------------------------------ *)
(* Capabilities and routing                                            *)
(* ------------------------------------------------------------------ *)

let test_dynamic_capability_flags () =
  let dyn name = (Option.get (Registry.capabilities_of name)).Backend.dynamic in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " dynamic") true (dyn name))
    [ "arrays"; "decision-diagrams"; "stabilizer"; "auto" ];
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " not dynamic") false (dyn name))
    [ "mps"; "tensor-network" ]

let test_typed_declines () =
  let c = Generators.teleportation () in
  (* tensor-network cannot sample at all, so probe it through an
     operation it does support to reach the dynamic-circuit guard. *)
  let probes =
    [
      ("mps", fun (module B : Backend.BACKEND) -> Result.map ignore (B.sample ~seed:0 ~shots:10 c));
      ("tensor-network", fun (module B : Backend.BACKEND) -> Result.map ignore (B.expectation_z ~seed:0 c 0));
    ]
  in
  List.iter
    (fun (name, probe) ->
      let (module B : Backend.BACKEND) = get name in
      match probe (module B : Backend.BACKEND) with
      | Ok () -> Alcotest.failf "%s must decline dynamic circuits" name
      | Error e ->
          Alcotest.(check string) "error names backend" name e.Backend.backend;
          Alcotest.(check bool) "reason mentions classical control" true
            (contains e.Backend.reason "classically-controlled"))
    probes

let test_auto_routes_dynamic () =
  let counts = sample Qdt.Auto_backend ~shots:500 (Generators.teleportation ()) in
  Alcotest.(check int) "auto keeps all shots" 500 (shots_of counts);
  (* T-heavy dynamic circuit: auto must avoid MPS/TN and still succeed. *)
  let counts = sample Qdt.Auto_backend ~shots:500 (Generators.repeat_until_success ()) in
  Alcotest.(check int) "auto handles non-Clifford dynamic" 500 (shots_of counts)

let () =
  Alcotest.run "dynamic"
    [
      ( "ir",
        [
          Alcotest.test_case "construction validation" `Quick test_validation;
          Alcotest.test_case "predicates" `Quick test_ir_predicates;
          Alcotest.test_case "shot plan" `Quick test_shot_plan;
          Alcotest.test_case "draw guard marker" `Quick test_draw_marker;
        ] );
      ( "qasm",
        [
          Alcotest.test_case "if parse" `Quick test_qasm_if_parse;
          Alcotest.test_case "single = rejected" `Quick
            test_qasm_single_equals_rejected;
          Alcotest.test_case "workload round-trips" `Quick
            test_qasm_roundtrip_workloads;
          QCheck_alcotest.to_alcotest qasm_roundtrip_prop;
        ] );
      ( "execution",
        [
          Alcotest.test_case "static RNG stream" `Quick test_static_rng_stream;
          Alcotest.test_case "teleportation backends" `Quick
            test_teleportation_backends;
          Alcotest.test_case "teleportation agreement" `Quick
            test_teleportation_agreement;
          Alcotest.test_case "teleportation theta prep" `Quick
            test_teleportation_theta_prep;
          Alcotest.test_case "repeat-until-success" `Quick
            test_repeat_until_success;
          Alcotest.test_case "repetition code" `Quick test_repetition_code;
          Alcotest.test_case "trajectories dynamic" `Quick
            test_trajectories_dynamic;
          Alcotest.test_case "seed reproducibility" `Quick
            test_seed_reproducibility;
        ] );
      ( "capabilities",
        [
          Alcotest.test_case "dynamic flags" `Quick test_dynamic_capability_flags;
          Alcotest.test_case "typed declines" `Quick test_typed_declines;
          Alcotest.test_case "auto routes dynamic" `Quick test_auto_routes_dynamic;
        ] );
    ]
